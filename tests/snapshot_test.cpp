//===- tests/snapshot_test.cpp - snapshot store round trip + faults -------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
//
// The correctness bar for the snapshot store (DESIGN.md §13): a corpus
// reconstituted from a snapshot must answer every query *bit-identically*
// to the same corpus built cold, for every ranking configuration, serially
// and from many threads (the concurrent case runs under ThreadSanitizer in
// scripts/ci.sh); and every way a snapshot file can be wrong — truncated,
// bit-flipped in any section, version-skewed, or stale relative to its
// embedded corpus — must be detected by loadSnapshot() with a diagnostic,
// after which a full build still works (the fallback petal_serve takes).
// The fault cases run under AddressSanitizer in ci.sh: validation must
// reject corrupt images before any table is adopted, never by crashing.
//
//===----------------------------------------------------------------------===//

#include "TestCorpora.h"

#include "service/Session.h"
#include "support/Checksum.h"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace petal;

namespace {

/// GeometryCorpus plus a second body-bearing class — the same corpus the
/// incremental-build property test uses, so the two suites police the same
/// sharing machinery from both ends.
std::string baseText() {
  return std::string(corpora::GeometryCorpus) +
         "class Scratch {\n"
         "  void Play(System.Windows.Point point,\n"
         "            DynamicGeometry.ShapeStyle style) {\n"
         "    return;\n"
         "  }\n"
         "}\n";
}

/// Replaces the last occurrence of \p From in \p S with \p To.
std::string replaceLast(std::string S, const std::string &From,
                        const std::string &To) {
  size_t At = S.rfind(From);
  EXPECT_NE(At, std::string::npos) << From;
  if (At != std::string::npos)
    S.replace(At, From.size(), To);
  return S;
}

CompleteSpec spec(const std::string &Class, const std::string &Method,
                  const std::string &Query) {
  CompleteSpec S;
  S.Class = Class;
  S.Method = Method;
  S.Query = Query;
  S.N = 10;
  return S;
}

/// The query battery, crossed with every ranking shape the snapshot can
/// influence: the full default, no ranking at all, one ordinary term off,
/// and *only* the two terms whose inputs live in the snapshot (type
/// distance reads the mapped distance matrix, abstract types the
/// deserialized solution).
std::vector<CompleteSpec> queryBattery() {
  std::vector<CompleteSpec> Qs;
  for (const char *RankSpec : {"all", "none", "-d", "+ta"}) {
    RankingOptions Rank = RankingOptions::fromSpec(RankSpec);
    CompleteSpec A = spec("EllipseArc", "Examine", "?({point})");
    A.Opts.Rank = Rank;
    Qs.push_back(A);
    CompleteSpec B = spec("EllipseArc", "Examine", "Distance(point, ?)");
    B.Opts.Rank = Rank;
    Qs.push_back(B);
    CompleteSpec C = spec("Scratch", "Play", "?({point})");
    C.Opts.Rank = Rank;
    Qs.push_back(C);
  }
  CompleteSpec Explained = spec("EllipseArc", "Examine", "?({point})");
  Explained.Opts.Explain = true;
  Qs.push_back(Explained);
  CompleteSpec NoAbs = spec("EllipseArc", "Examine", "?({point})");
  NoAbs.Opts.UseAbstractTypes = false;
  Qs.push_back(NoAbs);
  return Qs;
}

/// Builds \p Text cold and writes its snapshot to \p Path, exactly as
/// corpus_explorer --save-snapshot does. \p Shape defaults to the parse's
/// own shape; tests pass a mismatched one to manufacture a stale file.
bool writeCorpusSnapshot(const std::string &Text, const std::string &Path,
                         std::string &Error,
                         const DocumentShape *ForcedShape = nullptr) {
  DiagnosticEngine Diags;
  SynFile File;
  if (!parseSourceFile(Text, File, Diags)) {
    Error = "parse failed";
    return false;
  }
  DocumentShape Shape = shapeOfFile(File);
  TypeSystem TS;
  Program P(TS);
  if (!resolveParsedFile(File, P, Diags)) {
    Error = "resolve failed";
    return false;
  }
  CompletionIndexes Idx(P);
  Idx.freeze(FreezeOptions{});
  AbsTypeSolution Solution = Idx.Infer.solve();
  return snapshot::writeSnapshot(Path, Text, ForcedShape ? *ForcedShape
                                                         : Shape,
                                 Idx, Solution, Error);
}

std::string tmpPath(const std::string &Name) {
  return testing::TempDir() + "petal_" + Name;
}

std::vector<char> readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::vector<char>(std::istreambuf_iterator<char>(In),
                           std::istreambuf_iterator<char>());
}

void writeFileBytes(const std::string &Path, const std::vector<char> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

/// Recomputes Header::HeaderCrc per the documented rule (crc32 over the
/// header with HeaderCrc and Pad zeroed, continued over the section
/// table), so header-surgery tests corrupt exactly the field they mean to.
void restampHeaderCrc(std::vector<char> &Bytes) {
  ASSERT_GE(Bytes.size(), sizeof(snapshot::Header));
  snapshot::Header Hdr;
  std::memcpy(&Hdr, Bytes.data(), sizeof(Hdr));
  size_t TableBytes = Hdr.NumSections * sizeof(snapshot::SectionEntry);
  ASSERT_GE(Bytes.size(), sizeof(Hdr) + TableBytes);
  snapshot::Header Clean = Hdr;
  Clean.HeaderCrc = 0;
  Clean.Pad = 0;
  uint32_t Crc = crc32(&Clean, sizeof(Clean));
  Crc = crc32(Bytes.data() + sizeof(Hdr), TableBytes, Crc);
  Hdr.HeaderCrc = Crc;
  std::memcpy(Bytes.data(), &Hdr, sizeof(Hdr));
}

std::unique_ptr<DocumentState> build(const std::string &Text, int64_t V,
                                     const DocumentState *Prev) {
  std::string Error;
  std::unique_ptr<DocumentState> Doc =
      buildDocumentState("doc.cs", Text, V, /*DocThreads=*/1, Error, Prev);
  EXPECT_NE(Doc, nullptr) << Error;
  return Doc;
}

/// Writes a snapshot of baseText() and loads it back. Asserts on failure.
std::shared_ptr<const snapshot::LoadedSnapshot>
savedAndLoaded(const std::string &Name, bool ForceBufferedRead = false) {
  const std::string Path = tmpPath(Name);
  std::string Error;
  EXPECT_TRUE(writeCorpusSnapshot(baseText(), Path, Error)) << Error;
  auto Snap = snapshot::loadSnapshot(Path, Error, ForceBufferedRead);
  EXPECT_NE(Snap, nullptr) << Error;
  return Snap;
}

//===----------------------------------------------------------------------===//
// Round trip: snapshot-loaded corpus == cold-built corpus, bit for bit
//===----------------------------------------------------------------------===//

TEST(SnapshotTest, WarmStartOpenMatchesFullBuildBitForBit) {
  auto Snap = savedAndLoaded("roundtrip.snap");
  ASSERT_NE(Snap, nullptr);
  std::shared_ptr<const DocumentState> Warm =
      documentFromSnapshot(*Snap, /*DocThreads=*/1);
  ASSERT_NE(Warm, nullptr);

  // Opening the snapshot corpus verbatim takes the incremental-noop path:
  // the mapped TypeSystem, the frozen tables, and the deserialized
  // abstract-type solution are all adopted, none rebuilt.
  std::unique_ptr<DocumentState> Inc = build(baseText(), 1, Warm.get());
  ASSERT_NE(Inc, nullptr);
  EXPECT_EQ(Inc->Kind, DocumentState::BuildKind::IncrementalNoop);
  EXPECT_EQ(Inc->TS.get(), Snap->TS.get());
  EXPECT_TRUE(Inc->Idx->sharesTypeGraphTables());
  EXPECT_EQ(Inc->Exec->sharedSolution(), Warm->Exec->sharedSolution());

  std::unique_ptr<DocumentState> Fresh = build(baseText(), 1, nullptr);
  ASSERT_NE(Fresh, nullptr);
  EXPECT_EQ(Fresh->Kind, DocumentState::BuildKind::Full);

  for (const CompleteSpec &Q : queryBattery()) {
    SCOPED_TRACE(Q.Class + "." + Q.Method + " " + Q.Query + " rank=" +
                 Q.Opts.Rank.spec());
    QueryOutcome A = runCompletion(*Inc, Q);
    QueryOutcome B = runCompletion(*Fresh, Q);
    ASSERT_TRUE(A.Ok && B.Ok) << A.ErrMsg << " / " << B.ErrMsg;
    EXPECT_EQ(A.Completions.write(), B.Completions.write());
    EXPECT_EQ(A.ClassQualName, B.ClassQualName);
  }
}

TEST(SnapshotTest, EditedOpenOverSnapshotStaysBitIdentical) {
  // A body edit relative to the snapshot corpus: the mapped type-graph
  // tables still carry the query, only the code layer and the solution are
  // rebuilt. A type-graph edit must fall all the way back to a full build.
  auto Snap = savedAndLoaded("edited.snap");
  ASSERT_NE(Snap, nullptr);
  std::shared_ptr<const DocumentState> Warm =
      documentFromSnapshot(*Snap, /*DocThreads=*/1);

  const std::string BodyEdit =
      replaceLast(baseText(), "return;", "var tmp = point;\n    return;");
  const std::string GraphEdit = baseText() + "class Extra {\n"
                                             "  System.Windows.Point Spot;\n"
                                             "}\n";

  struct Case {
    const char *Name;
    const std::string *Text;
    DocumentState::BuildKind Want;
  } Cases[] = {
      {"body-edit", &BodyEdit, DocumentState::BuildKind::IncrementalBody},
      {"graph-edit", &GraphEdit, DocumentState::BuildKind::Full},
  };
  for (const Case &C : Cases) {
    SCOPED_TRACE(C.Name);
    std::unique_ptr<DocumentState> Inc = build(*C.Text, 1, Warm.get());
    std::unique_ptr<DocumentState> Fresh = build(*C.Text, 1, nullptr);
    ASSERT_TRUE(Inc && Fresh);
    EXPECT_EQ(Inc->Kind, C.Want);
    if (Inc->incremental())
      EXPECT_EQ(Inc->TS.get(), Snap->TS.get());
    else
      EXPECT_NE(Inc->TS.get(), Snap->TS.get());
    for (const CompleteSpec &Q : queryBattery()) {
      SCOPED_TRACE(Q.Class + "." + Q.Method + " " + Q.Query + " rank=" +
                   Q.Opts.Rank.spec());
      QueryOutcome A = runCompletion(*Inc, Q);
      QueryOutcome B = runCompletion(*Fresh, Q);
      ASSERT_TRUE(A.Ok && B.Ok) << A.ErrMsg << " / " << B.ErrMsg;
      EXPECT_EQ(A.Completions.write(), B.Completions.write());
    }
  }
}

TEST(SnapshotTest, AdoptedTablesAliasTheMappingZeroCopy) {
  auto Snap = savedAndLoaded("zerocopy.snap");
  ASSERT_NE(Snap, nullptr);
  ASSERT_TRUE(Snap->Mapped);
  ASSERT_NE(Snap->File, nullptr);
  EXPECT_TRUE(Snap->Idx->frozen());
  EXPECT_TRUE(Snap->TS->denseDistancesFrozen());

  // The dense distance matrix must point *into* the file image — adopted,
  // not copied. (The other tables go through the same adoption plumbing;
  // this is the observable witness.)
  const char *Begin = Snap->File->data();
  const char *End = Begin + Snap->File->size();
  const auto *Dist =
      reinterpret_cast<const char *>(Snap->TS->denseDistanceTable().data());
  EXPECT_GE(Dist, Begin);
  EXPECT_LT(Dist, End);
}

TEST(SnapshotTest, BufferedReadFallbackMatchesTheMapping) {
  // Exercise the no-mmap path end to end: identical answers, just a copy
  // instead of a mapping.
  auto Mapped = savedAndLoaded("buffered.snap");
  ASSERT_NE(Mapped, nullptr);
  std::string Error;
  auto Buffered = snapshot::loadSnapshot(tmpPath("buffered.snap"), Error,
                                         /*ForceBufferedRead=*/true);
  ASSERT_NE(Buffered, nullptr) << Error;
  EXPECT_FALSE(Buffered->Mapped);
  EXPECT_TRUE(Mapped->Mapped);
  EXPECT_EQ(Buffered->Bytes, Mapped->Bytes);

  std::shared_ptr<const DocumentState> WarmA =
      documentFromSnapshot(*Mapped, 1);
  std::shared_ptr<const DocumentState> WarmB =
      documentFromSnapshot(*Buffered, 1);
  std::unique_ptr<DocumentState> A = build(baseText(), 1, WarmA.get());
  std::unique_ptr<DocumentState> B = build(baseText(), 1, WarmB.get());
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->Kind, DocumentState::BuildKind::IncrementalNoop);
  EXPECT_EQ(B->Kind, DocumentState::BuildKind::IncrementalNoop);
  for (const CompleteSpec &Q : queryBattery()) {
    QueryOutcome RA = runCompletion(*A, Q);
    QueryOutcome RB = runCompletion(*B, Q);
    ASSERT_TRUE(RA.Ok && RB.Ok);
    EXPECT_EQ(RA.Completions.write(), RB.Completions.write());
  }
}

TEST(SnapshotTest, ConcurrentQueriesOverOneMappingStayIdentical) {
  // Eight DocumentStates all aliasing one snapshot's mapped tables, each
  // queried from its own thread (sessions are strands: concurrency is
  // across DocumentStates, never within one), checked against fresh-built
  // twins computed serially beforehand. TSan must observe no races on the
  // mapped tables or the shared solution.
  auto Snap = savedAndLoaded("concurrent.snap");
  ASSERT_NE(Snap, nullptr);
  std::shared_ptr<const DocumentState> Warm =
      documentFromSnapshot(*Snap, /*DocThreads=*/1);

  constexpr int NumThreads = 8;
  const std::vector<CompleteSpec> Qs = queryBattery();

  std::vector<std::unique_ptr<DocumentState>> Docs;
  std::vector<std::vector<std::string>> Want(NumThreads);
  for (int I = 0; I != NumThreads; ++I) {
    std::string Text = baseText();
    if (I != 0) { // thread 0 queries the snapshot corpus verbatim
      std::string Body = "var tmp = point;\n    ";
      for (int J = 1; J != I; ++J)
        Body += "var extra" + std::to_string(J) + " = point;\n    ";
      Text = replaceLast(Text, "return;", Body + "return;");
    }
    std::unique_ptr<DocumentState> D = build(Text, 1, Warm.get());
    ASSERT_NE(D, nullptr);
    ASSERT_TRUE(D->incremental());
    ASSERT_EQ(D->TS.get(), Snap->TS.get());
    std::unique_ptr<DocumentState> Fresh = build(Text, 1, nullptr);
    ASSERT_NE(Fresh, nullptr);
    for (const CompleteSpec &Q : Qs) {
      QueryOutcome O = runCompletion(*Fresh, Q);
      ASSERT_TRUE(O.Ok) << O.ErrMsg;
      Want[I].push_back(O.Completions.write());
    }
    Docs.push_back(std::move(D));
  }

  std::vector<std::thread> Threads;
  for (int I = 0; I != NumThreads; ++I)
    Threads.emplace_back([&, I] {
      for (int Round = 0; Round != 3; ++Round)
        for (size_t Q = 0; Q != Qs.size(); ++Q) {
          QueryOutcome O = runCompletion(*Docs[I], Qs[Q]);
          ASSERT_TRUE(O.Ok) << O.ErrMsg;
          EXPECT_EQ(O.Completions.write(), Want[I][Q])
              << "thread " << I << " query " << Q << " round " << Round;
        }
    });
  for (std::thread &T : Threads)
    T.join();
}

//===----------------------------------------------------------------------===//
// Fault injection: every defect is detected, every detection falls back
//===----------------------------------------------------------------------===//

/// After any load failure the caller's recourse is a cold build; assert it
/// actually works so "detected" always composes into "recovered".
void expectColdFallbackWorks() {
  std::unique_ptr<DocumentState> Doc = build(baseText(), 1, nullptr);
  ASSERT_NE(Doc, nullptr);
  QueryOutcome O =
      runCompletion(*Doc, spec("EllipseArc", "Examine", "?({point})"));
  EXPECT_TRUE(O.Ok) << O.ErrMsg;
}

TEST(SnapshotTest, TruncationAtEveryLayerIsDetected) {
  const std::string Good = tmpPath("trunc_good.snap");
  std::string Error;
  ASSERT_TRUE(writeCorpusSnapshot(baseText(), Good, Error)) << Error;
  const std::vector<char> Bytes = readFileBytes(Good);
  ASSERT_GT(Bytes.size(), sizeof(snapshot::Header) + 64);

  const size_t Cuts[] = {
      8,                            // not even a header
      sizeof(snapshot::Header) - 4, // header itself cut
      sizeof(snapshot::Header) + 4, // section table cut
      Bytes.size() / 2,             // mid-payload
      Bytes.size() - 3,             // last section short
  };
  const std::string Path = tmpPath("trunc.snap");
  for (size_t Cut : Cuts) {
    SCOPED_TRACE("cut at " + std::to_string(Cut));
    writeFileBytes(Path,
                   std::vector<char>(Bytes.begin(), Bytes.begin() + Cut));
    std::string LoadError;
    auto Snap = snapshot::loadSnapshot(Path, LoadError);
    EXPECT_EQ(Snap, nullptr);
    EXPECT_NE(LoadError.find("snapshot:"), std::string::npos) << LoadError;
  }
  expectColdFallbackWorks();
}

TEST(SnapshotTest, FlippedByteInEverySectionIsDetected) {
  const std::string Good = tmpPath("flip_good.snap");
  std::string Error;
  ASSERT_TRUE(writeCorpusSnapshot(baseText(), Good, Error)) << Error;
  snapshot::SnapshotInfo Info;
  ASSERT_TRUE(snapshot::readSnapshotInfo(Good, Info, Error)) << Error;
  ASSERT_EQ(Info.Sections.size(), 12u);

  const std::vector<char> Bytes = readFileBytes(Good);
  const std::string Path = tmpPath("flip.snap");
  for (const snapshot::SectionEntry &S : Info.Sections) {
    const char *Name = snapshot::sectionKindName(S.Kind);
    SCOPED_TRACE(Name);
    ASSERT_GT(S.Size, 0u);
    std::vector<char> Corrupt = Bytes;
    Corrupt[S.Offset + S.Size / 2] ^= 0x5A;
    writeFileBytes(Path, Corrupt);
    std::string LoadError;
    auto Snap = snapshot::loadSnapshot(Path, LoadError);
    EXPECT_EQ(Snap, nullptr);
    // The per-section CRC must finger the section it caught.
    EXPECT_NE(LoadError.find("checksum mismatch in section"),
              std::string::npos)
        << LoadError;
    EXPECT_NE(LoadError.find(Name), std::string::npos) << LoadError;
  }
  expectColdFallbackWorks();
}

TEST(SnapshotTest, HeaderFaultsAreDetected) {
  const std::string Good = tmpPath("hdr_good.snap");
  std::string Error;
  ASSERT_TRUE(writeCorpusSnapshot(baseText(), Good, Error)) << Error;
  const std::vector<char> Bytes = readFileBytes(Good);
  const std::string Path = tmpPath("hdr.snap");

  auto LoadExpectingFailure = [&](const std::vector<char> &Image,
                                  const char *WantInError) {
    writeFileBytes(Path, Image);
    std::string LoadError;
    auto Snap = snapshot::loadSnapshot(Path, LoadError);
    EXPECT_EQ(Snap, nullptr);
    EXPECT_NE(LoadError.find(WantInError), std::string::npos) << LoadError;
  };
  auto Patched = [&](auto &&Mutate) {
    std::vector<char> Image = Bytes;
    snapshot::Header Hdr;
    std::memcpy(&Hdr, Image.data(), sizeof(Hdr));
    Mutate(Hdr);
    std::memcpy(Image.data(), &Hdr, sizeof(Hdr));
    restampHeaderCrc(Image); // corrupt the field, not the checksum
    return Image;
  };

  LoadExpectingFailure(
      Patched([](snapshot::Header &H) { H.Version += 1; }),
      "format version mismatch");
  LoadExpectingFailure(
      Patched([](snapshot::Header &H) { H.TypeGraphHash ^= 1; }), "stale");
  LoadExpectingFailure(
      Patched([](snapshot::Header &H) { H.CodeHash ^= 1; }), "stale");
  LoadExpectingFailure(
      Patched([](snapshot::Header &H) { H.Endian = 0x04030201; }),
      "endianness mismatch");

  // Magic is checked before any checksum; no restamp needed.
  {
    std::vector<char> Image = Bytes;
    Image[0] = 'X';
    LoadExpectingFailure(Image, "bad magic");
  }
  // A corrupted checksum itself is also a detected fault.
  {
    std::vector<char> Image = Bytes;
    snapshot::Header Hdr;
    std::memcpy(&Hdr, Image.data(), sizeof(Hdr));
    Hdr.HeaderCrc ^= 0xDEADBEEF;
    std::memcpy(Image.data(), &Hdr, sizeof(Hdr));
    LoadExpectingFailure(Image, "header checksum mismatch");
  }
  expectColdFallbackWorks();
}

TEST(SnapshotTest, StaleShapeHashesAreDetected) {
  // A writer bug (or a file paired with the wrong corpus): the embedded
  // source parses fine but its hashes disagree with the header.
  DiagnosticEngine Diags;
  SynFile File;
  const std::string Other = std::string(corpora::GeometryCorpus);
  ASSERT_TRUE(parseSourceFile(Other, File, Diags));
  DocumentShape WrongShape = shapeOfFile(File);

  const std::string Path = tmpPath("stale.snap");
  std::string Error;
  ASSERT_TRUE(writeCorpusSnapshot(baseText(), Path, Error, &WrongShape))
      << Error;
  std::string LoadError;
  auto Snap = snapshot::loadSnapshot(Path, LoadError);
  EXPECT_EQ(Snap, nullptr);
  EXPECT_NE(LoadError.find("stale"), std::string::npos) << LoadError;
  expectColdFallbackWorks();
}

TEST(SnapshotTest, MissingAndGarbageFilesAreDetected) {
  std::string Error;
  EXPECT_EQ(snapshot::loadSnapshot(tmpPath("does_not_exist.snap"), Error),
            nullptr);
  EXPECT_FALSE(Error.empty());

  const std::string Path = tmpPath("garbage.snap");
  std::vector<char> Garbage(4096);
  for (size_t I = 0; I != Garbage.size(); ++I)
    Garbage[I] = static_cast<char>(I * 37 + 11);
  writeFileBytes(Path, Garbage);
  std::string LoadError;
  EXPECT_EQ(snapshot::loadSnapshot(Path, LoadError), nullptr);
  EXPECT_NE(LoadError.find("bad magic"), std::string::npos) << LoadError;
  expectColdFallbackWorks();
}

TEST(SnapshotTest, InfoReportsTheFullSectionTable) {
  const std::string Path = tmpPath("info.snap");
  std::string Error;
  ASSERT_TRUE(writeCorpusSnapshot(baseText(), Path, Error)) << Error;
  snapshot::SnapshotInfo Info;
  ASSERT_TRUE(snapshot::readSnapshotInfo(Path, Info, Error)) << Error;
  EXPECT_EQ(Info.Hdr.Version, snapshot::FormatVersion);
  EXPECT_EQ(Info.Sections.size(), 12u);
  EXPECT_GT(Info.FileBytes, sizeof(snapshot::Header));
  for (const snapshot::SectionEntry &S : Info.Sections) {
    EXPECT_EQ(S.Offset % 8, 0u) << snapshot::sectionKindName(S.Kind);
    EXPECT_LE(S.Offset + S.Size, Info.FileBytes);
    EXPECT_STRNE(snapshot::sectionKindName(S.Kind), "unknown");
  }
}

} // namespace
