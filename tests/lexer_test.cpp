//===- tests/lexer_test.cpp - Tokenizer unit tests ------------------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include <gtest/gtest.h>

using namespace petal;

namespace {

std::vector<Token> lex(const char *Src, DiagnosticEngine *D = nullptr) {
  DiagnosticEngine Local;
  Lexer L(Src, D ? *D : Local);
  return L.lexAll();
}

std::vector<TokKind> kinds(const char *Src) {
  std::vector<TokKind> Out;
  for (const Token &T : lex(Src))
    Out.push_back(T.Kind);
  return Out;
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto Toks = lex("");
  ASSERT_EQ(Toks.size(), 1u);
  EXPECT_TRUE(Toks[0].is(TokKind::Eof));
}

TEST(LexerTest, IdentifiersAndKeywords) {
  auto Toks = lex("class Foo namespace bar_2 static var this");
  EXPECT_TRUE(Toks[0].is(TokKind::KwClass));
  EXPECT_TRUE(Toks[1].is(TokKind::Ident));
  EXPECT_EQ(Toks[1].Text, "Foo");
  EXPECT_TRUE(Toks[2].is(TokKind::KwNamespace));
  EXPECT_EQ(Toks[3].Text, "bar_2");
  EXPECT_TRUE(Toks[4].is(TokKind::KwStatic));
  EXPECT_TRUE(Toks[5].is(TokKind::KwVar));
  EXPECT_TRUE(Toks[6].is(TokKind::KwThis));
}

TEST(LexerTest, NumericLiterals) {
  auto Toks = lex("42 3.5 0");
  EXPECT_TRUE(Toks[0].is(TokKind::IntLit));
  EXPECT_EQ(Toks[0].IntValue, 42);
  EXPECT_TRUE(Toks[1].is(TokKind::FloatLit));
  EXPECT_DOUBLE_EQ(Toks[1].FloatValue, 3.5);
  EXPECT_TRUE(Toks[2].is(TokKind::IntLit));
  EXPECT_EQ(Toks[2].IntValue, 0);
}

TEST(LexerTest, DotAfterIntIsMemberAccessNotFloat) {
  // `1.ToString` style: dot not followed by a digit stays a Dot token.
  auto K = kinds("1.x");
  EXPECT_EQ(K[0], TokKind::IntLit);
  EXPECT_EQ(K[1], TokKind::Dot);
  EXPECT_EQ(K[2], TokKind::Ident);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto Toks = lex(R"("hello" "a\"b")");
  EXPECT_TRUE(Toks[0].is(TokKind::StringLit));
  EXPECT_EQ(Toks[0].Text, "hello");
  EXPECT_EQ(Toks[1].Text, "a\"b");
}

TEST(LexerTest, UnterminatedStringIsDiagnosed) {
  DiagnosticEngine D;
  lex("\"oops", &D);
  EXPECT_TRUE(D.hasErrors());
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto K = kinds("{ } ( ) , ; . ? * : = == != < <= > >=");
  std::vector<TokKind> Expected = {
      TokKind::LBrace, TokKind::RBrace, TokKind::LParen, TokKind::RParen,
      TokKind::Comma,  TokKind::Semi,   TokKind::Dot,    TokKind::Question,
      TokKind::Star,   TokKind::Colon,  TokKind::Assign, TokKind::EqEq,
      TokKind::NotEq,  TokKind::Lt,     TokKind::Le,     TokKind::Gt,
      TokKind::Ge,     TokKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(LexerTest, PartialExpressionSuffixLexesAsFourTokens) {
  // `.?*m` must lex as DOT QUESTION STAR IDENT for the query parser.
  auto K = kinds("p.?*m");
  std::vector<TokKind> Expected = {TokKind::Ident, TokKind::Dot,
                                   TokKind::Question, TokKind::Star,
                                   TokKind::Ident, TokKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(LexerTest, CommentsAreSkipped) {
  auto K = kinds("a // line comment\n b /* block\n comment */ c");
  std::vector<TokKind> Expected = {TokKind::Ident, TokKind::Ident,
                                   TokKind::Ident, TokKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(LexerTest, UnterminatedBlockCommentIsDiagnosed) {
  DiagnosticEngine D;
  lex("a /* never closed", &D);
  EXPECT_TRUE(D.hasErrors());
}

TEST(LexerTest, TracksLineAndColumn) {
  auto Toks = lex("a\n  b");
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[0].Loc.Col, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[1].Loc.Col, 3u);
}

TEST(LexerTest, UnknownCharacterIsDiagnosed) {
  DiagnosticEngine D;
  auto Toks = lex("a @ b", &D);
  EXPECT_TRUE(D.hasErrors());
  // Error tokens are produced but lexing continues.
  EXPECT_EQ(Toks.back().Kind, TokKind::Eof);
}

TEST(LexerTest, BoolAndNullKeywords) {
  auto K = kinds("true false null comparable");
  std::vector<TokKind> Expected = {TokKind::KwTrue, TokKind::KwFalse,
                                   TokKind::KwNull, TokKind::KwComparable,
                                   TokKind::Eof};
  EXPECT_EQ(K, Expected);
}

} // namespace
