//===- tests/TestCorpora.h - Shared mini-corpora for tests ------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#ifndef PETAL_TESTS_TESTCORPORA_H
#define PETAL_TESTS_TESTCORPORA_H

#include "corpus/MiniFrameworks.h"

#endif // PETAL_TESTS_TESTCORPORA_H
