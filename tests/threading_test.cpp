//===- tests/threading_test.cpp - Concurrency layer tests -----------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
//
// Covers the parallel batch-query layer: the ThreadPool primitive, the
// BatchExecutor (parallel results must be bit-identical to serial ones),
// the parallel experiment drivers, and a multi-threaded stress over the
// frozen shared indexes. The stress cases are most valuable under
// ThreadSanitizer (cmake -DPETAL_SANITIZE=thread; see scripts/ci.sh) but
// also assert determinism in regular builds.
//
//===----------------------------------------------------------------------===//

#include "TestCorpora.h"

#include "code/ExprPrinter.h"
#include "complete/BatchExecutor.h"
#include "corpus/Generator.h"
#include "eval/Experiments.h"
#include "parser/Frontend.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <thread>

using namespace petal;

namespace {

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4u);

  constexpr size_t N = 10000;
  std::vector<std::atomic<int>> Seen(N);
  std::atomic<size_t> MaxWorker{0};
  Pool.parallelFor(N, [&](size_t I, size_t W) {
    Seen[I].fetch_add(1, std::memory_order_relaxed);
    size_t Prev = MaxWorker.load(std::memory_order_relaxed);
    while (W > Prev &&
           !MaxWorker.compare_exchange_weak(Prev, W, std::memory_order_relaxed))
      ;
  });
  for (size_t I = 0; I != N; ++I)
    ASSERT_EQ(Seen[I].load(), 1) << "index " << I;
  EXPECT_LT(MaxWorker.load(), 4u);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInlineOnCaller) {
  ThreadPool Pool(1);
  std::thread::id Caller = std::this_thread::get_id();
  size_t Calls = 0;
  Pool.parallelFor(64, [&](size_t, size_t W) {
    EXPECT_EQ(W, 0u);
    EXPECT_EQ(std::this_thread::get_id(), Caller);
    ++Calls; // safe: inline execution
  });
  EXPECT_EQ(Calls, 64u);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool Pool(3);
  for (int Round = 0; Round != 20; ++Round) {
    std::atomic<size_t> Sum{0};
    Pool.parallelFor(100, [&](size_t I, size_t) {
      Sum.fetch_add(I, std::memory_order_relaxed);
    });
    EXPECT_EQ(Sum.load(), 100u * 99u / 2);
  }
}

TEST(ThreadPoolTest, PropagatesBodyException) {
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(256,
                                [&](size_t I, size_t) {
                                  if (I == 57)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<size_t> Count{0};
  Pool.parallelFor(32, [&](size_t, size_t) { ++Count; });
  EXPECT_EQ(Count.load(), 32u);
}

TEST(ThreadPoolTest, CountsBodyExceptionsAndKeepsTheLastMessage) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.exceptionCount(), 0u);
  EXPECT_EQ(Pool.lastError(), "");

  // One throwing index per job (a second same-job throw is an assert in
  // debug builds); the counters accumulate across jobs on the same pool.
  EXPECT_THROW(Pool.parallelFor(64,
                                [&](size_t I, size_t) {
                                  if (I == 7)
                                    throw std::runtime_error("first boom");
                                }),
               std::runtime_error);
  EXPECT_EQ(Pool.exceptionCount(), 1u);
  EXPECT_NE(Pool.lastError().find("first boom"), std::string::npos);

  EXPECT_THROW(Pool.parallelFor(64,
                                [&](size_t I, size_t) {
                                  if (I == 9)
                                    throw std::runtime_error("second boom");
                                }),
               std::runtime_error);
  EXPECT_EQ(Pool.exceptionCount(), 2u);
  EXPECT_NE(Pool.lastError().find("second boom"), std::string::npos);

  // A clean job leaves the forensic state untouched.
  std::atomic<size_t> Count{0};
  Pool.parallelFor(32, [&](size_t, size_t) { ++Count; });
  EXPECT_EQ(Count.load(), 32u);
  EXPECT_EQ(Pool.exceptionCount(), 2u);
  EXPECT_NE(Pool.lastError().find("second boom"), std::string::npos);
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvOverride) {
  ::setenv("PETAL_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);
  ::setenv("PETAL_THREADS", "0", 1); // invalid: fall back to hardware
  EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
  ::unsetenv("PETAL_THREADS");
  EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

//===----------------------------------------------------------------------===//
// BatchExecutor vs serial engine
//===----------------------------------------------------------------------===//

/// Loads the built-in geometry corpus and prepares parsed queries at the
/// scope of EllipseArc::Examine (the paper's Fig. 3/4 running example).
class BatchExecutorTest : public ::testing::Test {
protected:
  void SetUp() override {
    TS = std::make_unique<TypeSystem>();
    P = std::make_unique<Program>(*TS);
    ASSERT_TRUE(loadProgramText(corpora::GeometryCorpus, *P, Diags));
    Class = findCodeClass(*P, "EllipseArc");
    ASSERT_NE(Class, nullptr);
    Method = findCodeMethod(*P, *Class, "Examine");
    ASSERT_NE(Method, nullptr);
    Site = {Class, Method, Method->body().size()};
    Idx = std::make_unique<CompletionIndexes>(*P);
  }

  const PartialExpr *query(const char *Text) {
    QueryScope Scope{Class, Method, Site.StmtIndex};
    const PartialExpr *Q = parseQueryText(Text, *P, Scope, Diags);
    EXPECT_NE(Q, nullptr);
    return Q;
  }

  /// Renders results as "[score] expr" lines for structural comparison.
  std::string render(const std::vector<Completion> &Results) {
    std::ostringstream OS;
    for (const Completion &C : Results)
      OS << "[" << C.Score << "] " << printExpr(*TS, C.E) << "\n";
    return OS.str();
  }

  DiagnosticEngine Diags;
  std::unique_ptr<TypeSystem> TS;
  std::unique_ptr<Program> P;
  std::unique_ptr<CompletionIndexes> Idx;
  const CodeClass *Class = nullptr;
  const CodeMethod *Method = nullptr;
  CodeSite Site;
};

TEST_F(BatchExecutorTest, BatchedResultsMatchSerialEngine) {
  const char *Texts[] = {"?", "Distance(point, ?)", "point.?*m >= this.?*m",
                         "?({point})", "this.?*f"};

  // Serial reference: one engine, queries run back to back. Render each
  // result before the next query recycles the engine's arena.
  std::vector<std::string> Serial;
  {
    CompletionEngine Engine(*P, *Idx);
    for (const char *T : Texts)
      Serial.push_back(render(Engine.complete(query(T), Site, 10)));
  }

  // Parallel: many copies of the query list, fanned out over 4 workers.
  BatchExecutor Exec(*P, *Idx, 4);
  EXPECT_TRUE(Idx->frozen());
  std::vector<BatchExecutor::Request> Requests;
  constexpr size_t Copies = 16;
  for (size_t C = 0; C != Copies; ++C)
    for (const char *T : Texts)
      Requests.push_back({query(T), Site, 10, {}, nullptr});

  BatchExecutor::BatchResult Batch = Exec.completeBatch(Requests);
  ASSERT_EQ(Batch.Results.size(), Requests.size());
  for (size_t R = 0; R != Batch.Results.size(); ++R)
    EXPECT_EQ(render(Batch.Results[R]), Serial[R % std::size(Texts)])
        << "request " << R;
}

TEST_F(BatchExecutorTest, ResultsOutliveLaterBatches) {
  BatchExecutor Exec(*P, *Idx, 2);
  BatchExecutor::BatchResult First =
      Exec.completeBatch({{query("?"), Site, 5, {}, nullptr}});
  ASSERT_FALSE(First.Results[0].empty());
  std::string Before = render(First.Results[0]);

  // Run more batches through the same workers; the first batch's arena
  // ownership must keep its expressions alive and unchanged.
  for (int I = 0; I != 4; ++I)
    Exec.completeBatch({{query("this.?*m"), Site, 10, {}, nullptr}});
  EXPECT_EQ(render(First.Results[0]), Before);
}

//===----------------------------------------------------------------------===//
// Parallel experiment drivers
//===----------------------------------------------------------------------===//

TEST(EvaluatorParallelTest, RankDistributionsBitIdenticalToSerial) {
  ProjectProfile Prof = paperProjectProfiles(0.15)[5];
  TypeSystem TS;
  Program P(TS);
  CorpusGenerator Gen(Prof);
  Gen.generate(P);
  CompletionIndexes Idx(P);

  Evaluator Serial(P, Idx, RankingOptions::all(), 100, /*Threads=*/1);
  Evaluator Parallel(P, Idx, RankingOptions::all(), 100, /*Threads=*/4);

  MethodPredictionData MS = Serial.runMethodPrediction(true, true);
  MethodPredictionData MP = Parallel.runMethodPrediction(true, true);
  EXPECT_EQ(MS.Best.ranks(), MP.Best.ranks());
  EXPECT_EQ(MS.Instance.ranks(), MP.Instance.ranks());
  EXPECT_EQ(MS.Static.ranks(), MP.Static.ranks());
  EXPECT_EQ(MS.BestKnownReturn.ranks(), MP.BestKnownReturn.ranks());
  EXPECT_EQ(MS.RankDiff, MP.RankDiff);
  EXPECT_EQ(MS.RankDiffKnownReturn, MP.RankDiffKnownReturn);
  EXPECT_EQ(MS.SkippedNoGuessableArgs, MP.SkippedNoGuessableArgs);
  ASSERT_EQ(MS.ByArity.size(), MP.ByArity.size());
  for (const auto &[Arity, Stats] : MS.ByArity) {
    ASSERT_TRUE(MP.ByArity.count(Arity));
    EXPECT_EQ(Stats.Calls, MP.ByArity.at(Arity).Calls);
    EXPECT_EQ(Stats.SolvedWith1, MP.ByArity.at(Arity).SolvedWith1);
    EXPECT_EQ(Stats.SolvedWith2, MP.ByArity.at(Arity).SolvedWith2);
  }

  ArgumentPredictionData AS = Serial.runArgumentPrediction();
  ArgumentPredictionData AP = Parallel.runArgumentPrediction();
  EXPECT_EQ(AS.All.ranks(), AP.All.ranks());
  EXPECT_EQ(AS.NoVars.ranks(), AP.NoVars.ranks());
  EXPECT_EQ(AS.TotalArgs, AP.TotalArgs);
  EXPECT_EQ(AS.NotGuessable, AP.NotGuessable);
  for (size_t F = 0; F != 6; ++F)
    EXPECT_EQ(AS.FormCounts[F], AP.FormCounts[F]) << "form " << F;

  AssignmentData SS = Serial.runAssignments();
  AssignmentData SP = Parallel.runAssignments();
  EXPECT_EQ(SS.Target.ranks(), SP.Target.ranks());
  EXPECT_EQ(SS.Source.ranks(), SP.Source.ranks());
  EXPECT_EQ(SS.Both.ranks(), SP.Both.ranks());

  ComparisonData CS = Serial.runComparisons();
  ComparisonData CP = Parallel.runComparisons();
  EXPECT_EQ(CS.Left.ranks(), CP.Left.ranks());
  EXPECT_EQ(CS.Right.ranks(), CP.Right.ranks());
  EXPECT_EQ(CS.Both.ranks(), CP.Both.ranks());
  EXPECT_EQ(CS.TwoLeft.ranks(), CP.TwoLeft.ranks());
  EXPECT_EQ(CS.TwoRight.ranks(), CP.TwoRight.ranks());

  // Latencies are wall-clock and differ, but the per-query structure (one
  // entry per executed query, in trial order) must be identical.
  EXPECT_EQ(Serial.latency().Millis.size(), Parallel.latency().Millis.size());
}

//===----------------------------------------------------------------------===//
// Index stress (run under TSan to detect races: scripts/ci.sh)
//===----------------------------------------------------------------------===//

TEST(IndexStressTest, EightThreadsHammerFrozenIndexes) {
  ProjectProfile Prof = paperProjectProfiles(0.1)[0];
  TypeSystem TS;
  Program P(TS);
  CorpusGenerator Gen(Prof);
  Gen.generate(P);
  CompletionIndexes Idx(P);
  Idx.freeze();
  Idx.freeze(); // idempotent

  // One shared, compressed solution read by every thread.
  AbsTypeSolution Shared = Idx.Infer.solve();

  constexpr size_t NumThreads = 8;
  std::vector<uint64_t> Checksums(NumThreads, 0);
  std::vector<std::thread> Threads;
  for (size_t T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      uint64_t Sum = 0;
      size_t N = TS.numTypes();
      // Offset the starting type per thread so threads collide on
      // different entries at different times.
      for (size_t Round = 0; Round != 3; ++Round) {
        for (size_t I = 0; I != N; ++I) {
          TypeId From = static_cast<TypeId>((I + T * 7) % N);
          TypeId To = static_cast<TypeId>((I * 13 + T) % N);
          Sum += Idx.Members.edges(From).size();
          Sum += Idx.Methods.candidatesForArgType(From).size();
          Sum += static_cast<uint64_t>(
              Idx.Reach.minLookups(From, To, true).value_or(-1) + 2);
          Sum += static_cast<uint64_t>(
              Idx.Reach.minLookupsToConvertible(From, To, (I + T) % 2 == 0)
                      .value_or(-1) +
              2);
          Sum += TS.implicitlyConvertible(From, To);
          Sum += static_cast<uint64_t>(TS.typeDistance(From, To).value_or(-1) +
                                       2);
          if (Shared.numClasses() > 0)
            Sum += Shared.sameAbstractType(
                static_cast<uint32_t>(I % Idx.Infer.numVars()),
                static_cast<uint32_t>((I * 31 + T) % Idx.Infer.numVars()));
        }
      }
      Checksums[T] = Sum;
    });
  }
  for (std::thread &Th : Threads)
    Th.join();

  // Threads with the same access pattern would produce the same checksum;
  // here patterns differ per thread, so just recompute thread 0's pattern
  // serially and require an exact match (catches torn lazy fills).
  uint64_t Serial = 0;
  size_t N = TS.numTypes();
  for (size_t Round = 0; Round != 3; ++Round) {
    for (size_t I = 0; I != N; ++I) {
      TypeId From = static_cast<TypeId>(I % N);
      TypeId To = static_cast<TypeId>((I * 13) % N);
      Serial += Idx.Members.edges(From).size();
      Serial += Idx.Methods.candidatesForArgType(From).size();
      Serial += static_cast<uint64_t>(
          Idx.Reach.minLookups(From, To, true).value_or(-1) + 2);
      Serial += static_cast<uint64_t>(
          Idx.Reach.minLookupsToConvertible(From, To, I % 2 == 0)
                  .value_or(-1) +
          2);
      Serial += TS.implicitlyConvertible(From, To);
      Serial +=
          static_cast<uint64_t>(TS.typeDistance(From, To).value_or(-1) + 2);
      if (Shared.numClasses() > 0)
        Serial += Shared.sameAbstractType(
            static_cast<uint32_t>(I % Idx.Infer.numVars()),
            static_cast<uint32_t>((I * 31) % Idx.Infer.numVars()));
    }
  }
  EXPECT_EQ(Checksums[0], Serial);
}

TEST(IndexStressTest, ConcurrentEnginesProduceIdenticalAnswers) {
  ProjectProfile Prof = paperProjectProfiles(0.1)[0];
  TypeSystem TS;
  Program P(TS);
  CorpusGenerator Gen(Prof);
  Gen.generate(P);
  CompletionIndexes Idx(P);
  HarvestResult Sites = harvestProgram(P);
  ASSERT_FALSE(Sites.Calls.empty());

  // Build one ?({arg}) query per call site with a guessable receiver/arg.
  Arena &A = P.arena();
  std::vector<BatchExecutor::Request> Requests;
  for (const CallSiteInfo &CS : Sites.Calls) {
    const Expr *Arg = nullptr;
    if (CS.Call->receiver() && isGuessableExpr(CS.Call->receiver()))
      Arg = CS.Call->receiver();
    for (const Expr *E : CS.Call->args())
      if (!Arg && isGuessableExpr(E))
        Arg = E;
    if (!Arg)
      continue;
    const PartialExpr *Q = A.create<UnknownCallPE>(
        std::vector<const PartialExpr *>{A.create<ConcretePE>(Arg)});
    Requests.push_back({Q, CS.Site, 10, {}, nullptr});
  }
  ASSERT_GT(Requests.size(), 10u);

  BatchExecutor Wide(P, Idx, 8);
  BatchExecutor Narrow(P, Idx, 1);
  BatchExecutor::BatchResult W = Wide.completeBatch(Requests);
  BatchExecutor::BatchResult S = Narrow.completeBatch(Requests);
  ASSERT_EQ(W.Results.size(), S.Results.size());
  for (size_t I = 0; I != W.Results.size(); ++I) {
    ASSERT_EQ(W.Results[I].size(), S.Results[I].size()) << "request " << I;
    for (size_t R = 0; R != W.Results[I].size(); ++R) {
      EXPECT_EQ(W.Results[I][R].Score, S.Results[I][R].Score);
      EXPECT_EQ(printExpr(TS, W.Results[I][R].E),
                printExpr(TS, S.Results[I][R].E));
    }
  }
}

} // namespace
