//===- tests/semantics_test.cpp - Fig. 6 derivability tests ---------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "TestCorpora.h"

#include "code/ExprPrinter.h"
#include "complete/Engine.h"
#include "parser/Frontend.h"
#include "partial/Semantics.h"
#include "rank/ScoreCard.h"

#include <gtest/gtest.h>

using namespace petal;

namespace {

class SemanticsTest : public ::testing::Test {
protected:
  void SetUp() override {
    TS = std::make_unique<TypeSystem>();
    P = std::make_unique<Program>(*TS);
    ASSERT_TRUE(loadProgramText(corpora::GeometryCorpus, *P, Diags));
    Class = findCodeClass(*P, "EllipseArc");
    Method = findCodeMethod(*P, *Class, "Examine");
    Site = {Class, Method, Method->body().size()};
    Idx = std::make_unique<CompletionIndexes>(*P);
    Engine = std::make_unique<CompletionEngine>(*P, *Idx);
  }

  const PartialExpr *query(const char *Text) {
    QueryScope Scope{Class, Method, Site.StmtIndex};
    const PartialExpr *Q = parseQueryText(Text, *P, Scope, Diags);
    EXPECT_NE(Q, nullptr);
    return Q;
  }

  /// Resolves a concrete expression through the query parser.
  const Expr *expr(const char *Text) {
    const PartialExpr *Q = query(Text);
    EXPECT_TRUE(Q && isa<ConcretePE>(Q)) << Text;
    return cast<ConcretePE>(Q)->expr();
  }

  DiagnosticEngine Diags;
  std::unique_ptr<TypeSystem> TS;
  std::unique_ptr<Program> P;
  const CodeClass *Class = nullptr;
  const CodeMethod *Method = nullptr;
  CodeSite Site;
  std::unique_ptr<CompletionIndexes> Idx;
  std::unique_ptr<CompletionEngine> Engine;
};

TEST_F(SemanticsTest, SuffixRules) {
  // e.? may be dropped; ?m admits one field or nullary method; stars admit
  // arbitrarily many.
  EXPECT_TRUE(isDerivableCompletion(*P, Site, query("point.?m"),
                                    expr("point")));
  EXPECT_TRUE(isDerivableCompletion(*P, Site, query("point.?m"),
                                    expr("point.X")));
  EXPECT_TRUE(isDerivableCompletion(*P, Site, query("shapeStyle.?m"),
                                    expr("shapeStyle.GetSampleGlyph()")));
  // ?f admits no methods.
  EXPECT_FALSE(isDerivableCompletion(*P, Site, query("shapeStyle.?f"),
                                     expr("shapeStyle.GetSampleGlyph()")));
  // Non-star suffixes take at most one step.
  EXPECT_FALSE(isDerivableCompletion(*P, Site, query("this.?f"),
                                     expr("this.shape.RenderTransformOrigin")));
  EXPECT_TRUE(isDerivableCompletion(*P, Site, query("this.?*f"),
                                    expr("this.shape.RenderTransformOrigin")));
  // A different root is never derivable.
  EXPECT_FALSE(isDerivableCompletion(*P, Site, query("point.?*m"),
                                     expr("this.Center")));
}

TEST_F(SemanticsTest, HoleRule) {
  // ? ~> v.?*m for live locals and globals.
  EXPECT_TRUE(isDerivableCompletion(*P, Site, query("?"), expr("point")));
  EXPECT_TRUE(isDerivableCompletion(*P, Site, query("?"), expr("this")));
  EXPECT_TRUE(isDerivableCompletion(*P, Site, query("?"),
                                    expr("this.Center.X")));
  EXPECT_TRUE(isDerivableCompletion(
      *P, Site, query("?"), expr("DynamicGeometry.Math.InfinitePoint")));
  // A literal is not a variable.
  Arena A;
  ExprFactory F(*TS, A);
  EXPECT_FALSE(isDerivableCompletion(*P, Site, query("?"), F.intLit(3)));
}

TEST_F(SemanticsTest, UnknownCallRule) {
  // ?({point, this.Center}) ~> Distance(point, this.Center) — both args
  // placed, in either order, nothing else filled.
  const PartialExpr *Q = query("?({point, this.Center})");
  EXPECT_TRUE(isDerivableCompletion(*P, Site, Q,
                                    expr("Distance(point, this.Center)")));
  EXPECT_TRUE(isDerivableCompletion(*P, Site, Q,
                                    expr("Distance(this.Center, point)")));
  // Dropping a given argument is not derivable.
  EXPECT_FALSE(isDerivableCompletion(*P, Site, Q,
                                     expr("Distance(point, point)")));
}

TEST_F(SemanticsTest, DontCareStaysInert) {
  // ?({point, 0}): the extra position must remain 0.
  Arena &A = P->arena();
  const PartialExpr *Q = A.create<UnknownCallPE>(
      std::vector<const PartialExpr *>{
          A.create<ConcretePE>(expr("point")), A.create<DontCarePE>()});
  // Build Distance(point, 0) manually.
  ExprFactory F(*TS, A);
  TypeId MathTy = TS->findType("DynamicGeometry.Math");
  MethodId Dist = TS->findMethods(MathTy, "Distance")[0];
  const Expr *WithZero =
      F.call(Dist, nullptr, {expr("point"), F.dontCare()});
  EXPECT_TRUE(isDerivableCompletion(*P, Site, Q, WithZero));
  // Filling the 0 in is NOT derivable.
  const Expr *Filled = F.call(Dist, nullptr, {expr("point"), expr("point")});
  std::string Why;
  EXPECT_FALSE(isDerivableCompletion(*P, Site, Q, Filled, &Why));
  EXPECT_FALSE(Why.empty());
}

/// The headline property: everything the engine emits is derivable under
/// the Fig. 6 relation.
TEST_F(SemanticsTest, EveryEngineCompletionIsDerivable) {
  for (const char *QT :
       {"?", "Distance(point, ?)", "?({point, this})",
        "point.?*m >= this.?*m", "this.?f = point.?f", "shapeStyle.?*m"}) {
    const PartialExpr *Q = query(QT);
    for (const Completion &C : Engine->complete(Q, Site, 150)) {
      std::string Why;
      ASSERT_TRUE(isDerivableCompletion(*P, Site, Q, C.E, &Why))
          << QT << " ~> " << printExpr(*TS, C.E) << ": " << Why;
    }
  }
}

//===----------------------------------------------------------------------===//
// Score explanations
//===----------------------------------------------------------------------===//

TEST_F(SemanticsTest, BreakdownTermsSumToTheFullScore) {
  AbsTypeSolution Sol = Idx->Infer.solve();
  Ranker R(*TS, RankingOptions::all());
  R.setSelfType(Class->type());
  R.setAbstractTypes(&Idx->Infer, &Sol, Method);

  for (const char *QT : {"?", "Distance(point, ?)", "?({point, this})"}) {
    const PartialExpr *Q = query(QT);
    for (const Completion &C : Engine->complete(Q, Site, 60)) {
      ScoreCard B = R.scoreCard(C.E);
      ASSERT_EQ(B.total(), C.Score)
          << printExpr(*TS, C.E) << ": " << B.toString();
    }
  }
}

TEST_F(SemanticsTest, BreakdownRendersReadably) {
  ScoreCard B;
  B.term(ScoreTerm::Depth) = 4;
  B.term(ScoreTerm::Namespace) = 3;
  EXPECT_EQ(B.toString(), "depth 4 + ns 3 = 7");
  ScoreCard Zero;
  EXPECT_EQ(Zero.toString(), "0 = 0");
}

} // namespace
