//===- tests/sourcewriter_test.cpp - Round-trip serialization tests -------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "corpus/Generator.h"
#include "corpus/SourceWriter.h"
#include "eval/Harvest.h"
#include "parser/Frontend.h"

#include <gtest/gtest.h>

using namespace petal;

namespace {

TEST(SourceWriterTest, WritesDeclarationsAndBodies) {
  DiagnosticEngine D;
  TypeSystem TS;
  Program P(TS);
  ASSERT_TRUE(loadProgramText(R"(
    namespace Geo {
      comparable struct Stamp { }
      enum Edge { Top, Bottom }
      interface IShape { }
      class Shape : IShape {
        double Area { get; set; }
        static Shape Empty;
      }
      class Rect : Shape {
        double W;
        void Grow(double by) {
          W = by;
          var t = W;
          Touch(t);
        }
        void Touch(double v);
      }
    }
  )", P, D));

  std::string Src = writeProgramSource(P);
  EXPECT_NE(Src.find("namespace Geo {"), std::string::npos);
  EXPECT_NE(Src.find("comparable struct Stamp"), std::string::npos);
  EXPECT_NE(Src.find("enum Edge { Top, Bottom }"), std::string::npos);
  EXPECT_NE(Src.find("class Rect : Geo.Shape"), std::string::npos);
  EXPECT_NE(Src.find("double Area { get; set; }"), std::string::npos);
  EXPECT_NE(Src.find("static Geo.Shape Empty;"), std::string::npos);
  EXPECT_NE(Src.find("this.W = by;"), std::string::npos);
  EXPECT_NE(Src.find("double t = this.W;"), std::string::npos);
  EXPECT_NE(Src.find("this.Touch(t);"), std::string::npos);
}

/// Round-trip property on generated corpora: write -> parse -> write is a
/// fixpoint, and the re-parsed model has identical entity counts and
/// harvest counts.
class RoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripTest, WriteParseWriteIsAFixpoint) {
  ProjectProfile Prof = paperProjectProfiles(0.2)[GetParam()];
  TypeSystem TS1;
  Program P1(TS1);
  CorpusGenerator Gen(Prof);
  Gen.generate(P1);
  std::string Src1 = writeProgramSource(P1);

  DiagnosticEngine D;
  TypeSystem TS2;
  Program P2(TS2);
  std::ostringstream OS;
  bool Ok = loadProgramText(Src1, P2, D);
  D.print(OS);
  ASSERT_TRUE(Ok) << Prof.Name << ":\n" << OS.str().substr(0, 2000);

  EXPECT_EQ(TS2.numTypes(), TS1.numTypes());
  EXPECT_EQ(TS2.numMethods(), TS1.numMethods());
  EXPECT_EQ(TS2.numFields(), TS1.numFields());
  EXPECT_EQ(P2.numStatements(), P1.numStatements());

  HarvestResult H1 = harvestProgram(P1);
  HarvestResult H2 = harvestProgram(P2);
  EXPECT_EQ(H2.Calls.size(), H1.Calls.size());
  EXPECT_EQ(H2.Assigns.size(), H1.Assigns.size());
  EXPECT_EQ(H2.Compares.size(), H1.Compares.size());

  std::string Src2 = writeProgramSource(P2);
  EXPECT_EQ(Src1, Src2) << "write . parse . write is not a fixpoint";
}

INSTANTIATE_TEST_SUITE_P(AllProjects, RoundTripTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6));

} // namespace
