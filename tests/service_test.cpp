//===- tests/service_test.cpp - petald service + wire-layer tests ---------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
//
// Covers the completion service end to end: Content-Length framing
// (round-trips, truncated and oversized lengths), the JSON-RPC dispatch,
// session/version lifecycle, the result cache (hits byte-identical,
// invalidation on edit), interleaved cancellation and deadlines via the
// deterministic $/test gates, and a multi-client stress that checks every
// service answer against a direct CompletionEngine::complete on the same
// text. The concurrency cases run under ThreadSanitizer in scripts/ci.sh.
//
//===----------------------------------------------------------------------===//

#include "TestCorpora.h"

#include "code/ExprPrinter.h"
#include "complete/Engine.h"
#include "service/Client.h"
#include "service/Transport.h"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <sstream>
#include <thread>

#include <unistd.h>

using namespace petal;
using json::Value;

namespace {

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

TEST(FramingTest, RoundTripsSeveralMessages) {
  std::stringstream SS;
  FramedWriter W(SS);
  W.write("{\"a\":1}");
  W.write("");
  std::string Big(100000, 'x');
  W.write(Big);

  FramedReader R(SS);
  std::string P;
  ASSERT_EQ(R.read(P), FramedReader::Status::Ok);
  EXPECT_EQ(P, "{\"a\":1}");
  ASSERT_EQ(R.read(P), FramedReader::Status::Ok);
  EXPECT_EQ(P, "");
  ASSERT_EQ(R.read(P), FramedReader::Status::Ok);
  EXPECT_EQ(P, Big);
  EXPECT_EQ(R.read(P), FramedReader::Status::Eof);
}

TEST(FramingTest, ToleratesExtraHeadersAndBareNewlines) {
  std::stringstream SS;
  SS << "Content-Type: application/vscode-jsonrpc\r\n"
     << "Content-Length: 2\r\n\r\nhi";
  FramedReader R(SS);
  std::string P;
  ASSERT_EQ(R.read(P), FramedReader::Status::Ok);
  EXPECT_EQ(P, "hi");

  std::stringstream SS2("Content-Length: 3\n\nabc"); // bare LF client
  FramedReader R2(SS2);
  ASSERT_EQ(R2.read(P), FramedReader::Status::Ok);
  EXPECT_EQ(P, "abc");
}

TEST(FramingTest, TruncatedPayloadIsAnError) {
  std::stringstream SS("Content-Length: 50\r\n\r\nonly-10-by");
  FramedReader R(SS);
  std::string P;
  EXPECT_EQ(R.read(P), FramedReader::Status::Error);
  EXPECT_NE(R.message().find("truncated"), std::string::npos);
}

TEST(FramingTest, TruncatedHeaderBlockIsAnError) {
  std::stringstream SS("Content-Length: 5\r\n"); // EOF before blank line
  FramedReader R(SS);
  std::string P;
  EXPECT_EQ(R.read(P), FramedReader::Status::Error);
}

TEST(FramingTest, MissingContentLengthIsAnError) {
  std::stringstream SS("Content-Type: text/json\r\n\r\n{}");
  FramedReader R(SS);
  std::string P;
  EXPECT_EQ(R.read(P), FramedReader::Status::Error);
  EXPECT_NE(R.message().find("Content-Length"), std::string::npos);
}

TEST(FramingTest, NonNumericAndDuplicateLengthsAreErrors) {
  {
    std::stringstream SS("Content-Length: twelve\r\n\r\n");
    FramedReader R(SS);
    std::string P;
    EXPECT_EQ(R.read(P), FramedReader::Status::Error);
    EXPECT_NE(R.message().find("non-numeric"), std::string::npos);
  }
  {
    std::stringstream SS("Content-Length: 2\r\nContent-Length: 2\r\n\r\nhi");
    FramedReader R(SS);
    std::string P;
    EXPECT_EQ(R.read(P), FramedReader::Status::Error);
    EXPECT_NE(R.message().find("duplicate"), std::string::npos);
  }
}

TEST(FramingTest, OversizedContentLengthIsRejectedBeforeAllocation) {
  std::stringstream SS("Content-Length: 99999999999999999999\r\n\r\n");
  FramedReader R(SS);
  std::string P;
  EXPECT_EQ(R.read(P), FramedReader::Status::Error);
  EXPECT_NE(R.message().find("cap"), std::string::npos);
}

TEST(FramingTest, CleanEofAtMessageBoundary) {
  std::stringstream SS("");
  FramedReader R(SS);
  std::string P;
  EXPECT_EQ(R.read(P), FramedReader::Status::Eof);
}

//===----------------------------------------------------------------------===//
// Service harness
//===----------------------------------------------------------------------===//

PetalService::Options testOptions(size_t Workers = 2,
                                  bool TestHooks = false) {
  PetalService::Options O;
  O.Workers = Workers;
  O.DocThreads = 1;
  O.CacheCapacity = 64;
  O.EnableTestHooks = TestHooks;
  return O;
}

Value openParams(const std::string &Doc, const std::string &Text,
                 int64_t V) {
  Value P = Value::object();
  P.set("doc", Doc);
  P.set("text", Text);
  P.set("version", V);
  return P;
}

Value completeParams(const std::string &Doc, const std::string &Class,
                     const std::string &Method, const std::string &Query,
                     int64_t N = 10, int64_t Version = -1) {
  Value P = Value::object();
  P.set("doc", Doc);
  P.set("class", Class);
  P.set("method", Method);
  P.set("query", Query);
  P.set("n", N);
  if (Version >= 0)
    P.set("version", Version);
  return P;
}

int errorCode(const Value &Response) {
  const Value *E = Response.find("error");
  return E ? static_cast<int>(E->getInt("code", 0)) : 0;
}

/// (expr, score) pairs from a petal/complete response.
std::vector<std::pair<std::string, int>> completionsOf(const Value &Resp) {
  std::vector<std::pair<std::string, int>> Out;
  const Value *R = Resp.find("result");
  if (!R)
    return Out;
  const Value *List = R->find("completions");
  if (!List || !List->isArray())
    return Out;
  for (const Value &Item : List->elements())
    Out.emplace_back(Item.getString("expr"),
                     static_cast<int>(Item.getInt("score", -1)));
  return Out;
}

/// The reference answer: a direct CompletionEngine::complete over a
/// private parse of the same text — what the service must be
/// bit-identical to.
std::vector<std::pair<std::string, int>>
directComplete(const char *Text, const std::string &Class,
               const std::string &Method, const std::string &Query,
               size_t N) {
  TypeSystem TS;
  Program P(TS);
  DiagnosticEngine Diags;
  EXPECT_TRUE(loadProgramText(Text, P, Diags));
  CompletionIndexes Idx(P);
  CompletionEngine Engine(P, Idx);

  const CodeClass *CC = findCodeClass(P, Class);
  EXPECT_NE(CC, nullptr);
  const CodeMethod *CM = findCodeMethod(P, *CC, Method);
  EXPECT_NE(CM, nullptr);
  QueryScope Scope = scopeAtEnd(CC, CM);
  const PartialExpr *Q = parseQueryText(Query, P, Scope, Diags);
  EXPECT_NE(Q, nullptr);

  std::vector<std::pair<std::string, int>> Out;
  CodeSite Site{CC, CM, Scope.StmtIndex};
  for (const Completion &C : Engine.complete(Q, Site, N))
    Out.emplace_back(printExpr(TS, C.E), C.Score);
  return Out;
}

//===----------------------------------------------------------------------===//
// Sessions, versions, cache
//===----------------------------------------------------------------------===//

TEST(ServiceTest, CompleteMatchesDirectEngineBitForBit) {
  InProcessClient C(testOptions());
  Value OpenResp =
      C.call("petal/open", openParams("geo.cs", corpora::GeometryCorpus, 1));
  ASSERT_EQ(errorCode(OpenResp), 0) << OpenResp.write();
  EXPECT_EQ(OpenResp.find("result")->getInt("version", -1), 1);

  Value Resp = C.call("petal/complete",
                      completeParams("geo.cs", "EllipseArc", "Examine",
                                     "Distance(point, ?)", 10));
  ASSERT_EQ(errorCode(Resp), 0) << Resp.write();
  auto Got = completionsOf(Resp);
  auto Want = directComplete(corpora::GeometryCorpus, "EllipseArc",
                             "Examine", "Distance(point, ?)", 10);
  EXPECT_EQ(Got, Want);
  ASSERT_FALSE(Got.empty());
  EXPECT_EQ(Got.front().first, "DynamicGeometry.Math.Distance(point, point)");
}

TEST(ServiceTest, CacheHitIsByteIdenticalAndCounted) {
  InProcessClient C(testOptions());
  C.call("petal/open", openParams("geo.cs", corpora::GeometryCorpus, 1));

  Value P = completeParams("geo.cs", "EllipseArc", "Examine", "?({point})");
  Value First = C.call("petal/complete", P);
  Value Second = C.call("petal/complete", P);
  ASSERT_EQ(errorCode(First), 0);
  // The replayed result must be byte-identical, not merely equivalent.
  EXPECT_EQ(First.find("result")->write(), Second.find("result")->write());

  Value Stats = C.callResult("$/stats", Value::object());
  EXPECT_EQ(Stats.find("cache")->getInt("hits", -1), 1);
  EXPECT_EQ(Stats.find("cache")->getInt("misses", -1), 1);
  EXPECT_EQ(Stats.getInt("queries", -1), 2);
}

TEST(ServiceTest, DifferentOptionsMissTheCache) {
  InProcessClient C(testOptions());
  C.call("petal/open", openParams("geo.cs", corpora::GeometryCorpus, 1));

  Value P1 = completeParams("geo.cs", "EllipseArc", "Examine", "?({point})");
  Value P2 = completeParams("geo.cs", "EllipseArc", "Examine", "?({point})");
  P2.set("rank", "none");
  C.call("petal/complete", P1);
  C.call("petal/complete", P2);
  Value Stats = C.callResult("$/stats", Value::object());
  EXPECT_EQ(Stats.find("cache")->getInt("hits", -1), 0);
  EXPECT_EQ(Stats.find("cache")->getInt("misses", -1), 2);
}

TEST(ServiceTest, NoopEditRetargetsCacheEntriesToTheNewVersion) {
  InProcessClient C(testOptions());
  C.call("petal/open", openParams("geo.cs", corpora::GeometryCorpus, 1));
  Value P = completeParams("geo.cs", "EllipseArc", "Examine", "?({point})");
  Value First = C.call("petal/complete", P);
  ASSERT_EQ(errorCode(First), 0);

  // Full-text change to version 2 with token-identical text: an
  // incremental no-op build. Scoped invalidation keeps the entry (the
  // abstract-type solution carried over), re-keyed to version 2.
  Value ChangeResp = C.call(
      "petal/change", openParams("geo.cs", corpora::GeometryCorpus, 2));
  ASSERT_EQ(errorCode(ChangeResp), 0);
  EXPECT_EQ(ChangeResp.find("result")->getString("build"),
            "incremental-noop");
  EXPECT_EQ(ChangeResp.find("result")->getInt("cacheRetained", -1), 1);

  Value Resp = C.call("petal/complete", P);
  ASSERT_EQ(errorCode(Resp), 0);
  // Replayed from cache with the *new* version stamped in, completions
  // untouched.
  EXPECT_EQ(Resp.find("result")->getInt("version", -1), 2);
  EXPECT_EQ(completionsOf(Resp), completionsOf(First));

  Value Stats = C.callResult("$/stats", Value::object());
  EXPECT_EQ(Stats.find("cache")->getInt("hits", -1), 1);
  EXPECT_EQ(Stats.find("cache")->getInt("misses", -1), 1);
  EXPECT_EQ(Stats.find("cache")->getInt("size", -1), 1);
}

TEST(ServiceTest, TypeGraphEditInvalidatesCacheAndBumpsVersion) {
  InProcessClient C(testOptions());
  C.call("petal/open", openParams("geo.cs", corpora::GeometryCorpus, 1));
  Value P = completeParams("geo.cs", "EllipseArc", "Examine", "?({point})");
  C.call("petal/complete", P);

  // Adding a class changes the type graph: full rebuild, blanket
  // invalidation of the document's entries.
  std::string Edited = std::string(corpora::GeometryCorpus) +
                       "class Probe {\n"
                       "  System.Windows.Point Origin;\n"
                       "}\n";
  Value ChangeResp = C.call("petal/change", openParams("geo.cs", Edited, 2));
  ASSERT_EQ(errorCode(ChangeResp), 0);
  EXPECT_EQ(ChangeResp.find("result")->getString("build"), "full");
  EXPECT_EQ(ChangeResp.find("result")->getInt("cacheRetained", -1), 0);

  Value Resp = C.call("petal/complete", P);
  ASSERT_EQ(errorCode(Resp), 0);
  EXPECT_EQ(Resp.find("result")->getInt("version", -1), 2);

  Value Stats = C.callResult("$/stats", Value::object());
  // Both queries computed: the edit dropped the version-1 entry.
  EXPECT_EQ(Stats.find("cache")->getInt("hits", -1), 0);
  EXPECT_EQ(Stats.find("cache")->getInt("misses", -1), 2);
  EXPECT_EQ(Stats.find("cache")->getInt("size", -1), 1);
}

TEST(ServiceTest, BodyEditKeepsEntriesOfUntouchedUnits) {
  // Two body-bearing classes so a body edit can touch one declaration
  // unit and leave the other's cache entries provably unaffected.
  const std::string Scratch = "class Scratch {\n"
                              "  void Play(System.Windows.Point point) {\n"
                              "    return;\n"
                              "  }\n"
                              "}\n";
  const std::string ScratchEdited =
      "class Scratch {\n"
      "  void Play(System.Windows.Point point) {\n"
      "    var tmp = point;\n"
      "    return;\n"
      "  }\n"
      "}\n";
  const std::string Base = std::string(corpora::GeometryCorpus) + Scratch;
  const std::string Edited =
      std::string(corpora::GeometryCorpus) + ScratchEdited;

  InProcessClient C(testOptions());
  C.call("petal/open", openParams("geo.cs", Base, 1));

  // Entry A: untouched unit, ranking does not read the abstract-type
  // solution -> must survive the body edit.
  Value A = completeParams("geo.cs", "EllipseArc", "Examine", "?({point})");
  A.set("abstractTypes", false);
  // Entry B: same options but in the edited unit -> must be dropped.
  Value B = completeParams("geo.cs", "Scratch", "Play", "?({point})");
  B.set("abstractTypes", false);
  // Entry C: untouched unit but default options read the corpus-wide
  // abstract-type solution, which a body edit rebuilds -> dropped.
  Value Cq = completeParams("geo.cs", "EllipseArc", "Examine", "?({point})");
  ASSERT_EQ(errorCode(C.call("petal/complete", A)), 0);
  ASSERT_EQ(errorCode(C.call("petal/complete", B)), 0);
  ASSERT_EQ(errorCode(C.call("petal/complete", Cq)), 0);

  Value ChangeResp = C.call("petal/change", openParams("geo.cs", Edited, 2));
  ASSERT_EQ(errorCode(ChangeResp), 0) << ChangeResp.write();
  EXPECT_EQ(ChangeResp.find("result")->getString("build"),
            "incremental-body");
  EXPECT_EQ(ChangeResp.find("result")->getInt("cacheRetained", -1), 1);

  // A replays from the cache; the payload must be byte-identical to what
  // a cold service computes over the edited text at the same version.
  Value AResp = C.call("petal/complete", A);
  ASSERT_EQ(errorCode(AResp), 0);
  EXPECT_EQ(AResp.find("result")->getInt("version", -1), 2);
  InProcessClient Fresh(testOptions());
  Fresh.call("petal/open", openParams("geo.cs", Edited, 2));
  Value AFresh = Fresh.call("petal/complete", A);
  ASSERT_EQ(errorCode(AFresh), 0);
  EXPECT_EQ(AResp.find("result")->write(), AFresh.find("result")->write());

  Value Stats = C.callResult("$/stats", Value::object());
  EXPECT_EQ(Stats.find("cache")->getInt("hits", -1), 1);
  EXPECT_EQ(Stats.find("cache")->getInt("misses", -1), 3);
}

TEST(ServiceTest, PlainQueryIsServedFromExplainEntry) {
  InProcessClient C(testOptions());
  C.call("petal/open", openParams("geo.cs", corpora::GeometryCorpus, 1));

  Value Plain = completeParams("geo.cs", "EllipseArc", "Examine",
                               "?({point})");
  Value Explained = Plain;
  Explained.set("explain", true);

  // Explain first: its payload strictly contains the plain answer, so the
  // later plain request replays from it with the breakdowns stripped.
  ASSERT_EQ(errorCode(C.call("petal/complete", Explained)), 0);
  Value PR = C.call("petal/complete", Plain);
  ASSERT_EQ(errorCode(PR), 0);
  const Value *List = PR.find("result")->find("completions");
  ASSERT_TRUE(List && !List->elements().empty());
  for (const Value &Item : List->elements())
    EXPECT_EQ(Item.find("terms"), nullptr) << Item.write();

  Value Stats = C.callResult("$/stats", Value::object());
  EXPECT_EQ(Stats.find("cache")->getInt("hits", -1), 1);
  EXPECT_EQ(Stats.find("cache")->getInt("misses", -1), 1);
  EXPECT_EQ(Stats.find("cache")->getInt("size", -1), 1);

  // The stripped replay is byte-identical to a computed plain answer.
  InProcessClient Fresh(testOptions());
  Fresh.call("petal/open", openParams("geo.cs", corpora::GeometryCorpus, 1));
  Value PFresh = Fresh.call("petal/complete", Plain);
  ASSERT_EQ(errorCode(PFresh), 0);
  EXPECT_EQ(PR.find("result")->write(), PFresh.find("result")->write());
}

TEST(ServiceTest, DocumentBuildTelemetryInStats) {
  InProcessClient C(testOptions());
  C.call("petal/open", openParams("geo.cs", corpora::GeometryCorpus, 1));
  // No-op edit: shares typesystem, indexes, and the abstract solution.
  C.call("petal/change", openParams("geo.cs", corpora::GeometryCorpus, 2));
  // Body edit: shares typesystem and indexes, rebuilds the solution.
  std::string BodyEdit = corpora::GeometryCorpus;
  size_t At = BodyEdit.find("return;");
  ASSERT_NE(At, std::string::npos);
  BodyEdit.replace(At, 7, "var tmp = point; return;");
  Value R3 = C.call("petal/change", openParams("geo.cs", BodyEdit, 3));
  ASSERT_EQ(errorCode(R3), 0) << R3.write();
  EXPECT_EQ(R3.find("result")->getString("build"), "incremental-body");

  Value Stats = C.callResult("$/stats", Value::object());
  const Value *Docs = Stats.find("documents");
  ASSERT_NE(Docs, nullptr);
  EXPECT_EQ(Docs->find("builds")->getInt("total", -1), 3);
  EXPECT_EQ(Docs->find("builds")->getInt("full", -1), 1);
  EXPECT_EQ(Docs->find("builds")->getInt("incremental", -1), 2);
  EXPECT_EQ(Docs->find("reuse")->getInt("typesystem", -1), 2);
  EXPECT_EQ(Docs->find("reuse")->getInt("indexes", -1), 2);
  EXPECT_EQ(Docs->find("reuse")->getInt("solution", -1), 1);
  EXPECT_EQ(Docs->find("buildMs")->getInt("count", -1), 3);
  EXPECT_GE(Docs->find("buildMs")->getNumber("p50", -1), 0.0);
  EXPECT_GE(Docs->find("buildMs")->getNumber("p95", -1),
            Docs->find("buildMs")->getNumber("p50", -1));
  EXPECT_EQ(Docs->getInt("cacheRetained", -1), 0);
}

TEST(ServiceTest, StaleVersionIsRejected) {
  InProcessClient C(testOptions());
  C.call("petal/open", openParams("geo.cs", corpora::GeometryCorpus, 1));
  C.call("petal/change", openParams("geo.cs", corpora::GeometryCorpus, 5));

  Value Resp = C.call("petal/complete",
                      completeParams("geo.cs", "EllipseArc", "Examine",
                                     "?({point})", 10, /*Version=*/1));
  EXPECT_EQ(errorCode(Resp), rpc::ContentModified);

  Value Ok = C.call("petal/complete",
                    completeParams("geo.cs", "EllipseArc", "Examine",
                                   "?({point})", 10, /*Version=*/5));
  EXPECT_EQ(errorCode(Ok), 0);
  Value Stats = C.callResult("$/stats", Value::object());
  EXPECT_EQ(Stats.getInt("staleRejected", -1), 1);
}

TEST(ServiceTest, NonMonotonicChangeIsRejected) {
  InProcessClient C(testOptions());
  C.call("petal/open", openParams("geo.cs", corpora::GeometryCorpus, 3));
  Value Resp =
      C.call("petal/change", openParams("geo.cs", corpora::GeometryCorpus, 3));
  EXPECT_EQ(errorCode(Resp), rpc::InvalidParams);
}

TEST(ServiceTest, LifecycleErrors) {
  InProcessClient C(testOptions());
  // Complete before open.
  EXPECT_EQ(errorCode(C.call("petal/complete",
                             completeParams("nope.cs", "A", "B", "?"))),
            rpc::UnknownDocument);
  // Change before open.
  EXPECT_EQ(errorCode(C.call("petal/change",
                             openParams("nope.cs", "class A {}", 1))),
            rpc::UnknownDocument);
  // Unknown method.
  EXPECT_EQ(errorCode(C.call("petal/frobnicate", Value::object())),
            rpc::MethodNotFound);
  // Double open.
  C.call("petal/open", openParams("geo.cs", corpora::GeometryCorpus, 1));
  EXPECT_EQ(errorCode(C.call("petal/open",
                             openParams("geo.cs", corpora::GeometryCorpus, 2))),
            rpc::InvalidParams);
  // Close, then the document is gone and its cache entries with it.
  Value CloseParams = Value::object();
  CloseParams.set("doc", "geo.cs");
  EXPECT_EQ(errorCode(C.call("petal/close", CloseParams)), 0);
  EXPECT_EQ(errorCode(C.call("petal/complete",
                             completeParams("geo.cs", "EllipseArc", "Examine",
                                            "?({point})"))),
            rpc::UnknownDocument);
  Value Stats = C.callResult("$/stats", Value::object());
  EXPECT_EQ(Stats.getInt("sessions", -1), 0);
  EXPECT_EQ(Stats.find("cache")->getInt("size", -1), 0);
}

TEST(ServiceTest, MaxSessionsEvictsTheLeastRecentlyUsedIdleSession) {
  PetalService::Options O = testOptions();
  O.MaxSessions = 2;
  InProcessClient C(O);
  C.call("petal/open", openParams("a.cs", corpora::GeometryCorpus, 1));
  C.call("petal/open", openParams("b.cs", corpora::GeometryCorpus, 1));
  // Touch a.cs so b.cs is the least recently used when the cap trips.
  ASSERT_EQ(errorCode(C.call("petal/complete",
                             completeParams("a.cs", "EllipseArc", "Examine",
                                            "?({point})"))),
            0);

  // Eviction spares sessions whose strand is still winding down (the
  // worker clears its scheduled flag after the response is written), so
  // drain the daemon before tripping the cap to make the victim — the
  // LRU among *idle* sessions — deterministic.
  C.service().waitIdle();
  Value Third = C.call("petal/open", openParams("c.cs",
                                                corpora::GeometryCorpus, 1));
  ASSERT_EQ(errorCode(Third), 0) << Third.write();
  Value Stats = C.callResult("$/stats", Value::object());
  EXPECT_EQ(Stats.getInt("sessions", -1), 2);
  EXPECT_EQ(Stats.getInt("maxSessions", -1), 2);
  EXPECT_EQ(Stats.getInt("evictions", -1), 1);

  // b.cs was evicted exactly as if closed; a.cs (recently used) and c.cs
  // (the newcomer) still answer.
  EXPECT_EQ(errorCode(C.call("petal/complete",
                             completeParams("b.cs", "EllipseArc", "Examine",
                                            "?({point})"))),
            rpc::UnknownDocument);
  EXPECT_EQ(errorCode(C.call("petal/complete",
                             completeParams("a.cs", "EllipseArc", "Examine",
                                            "?({point})"))),
            0);
  EXPECT_EQ(errorCode(C.call("petal/complete",
                             completeParams("c.cs", "EllipseArc", "Examine",
                                            "?({point})"))),
            0);

  // An evicted document reopens cleanly (displacing the next victim).
  C.service().waitIdle();
  EXPECT_EQ(errorCode(C.call("petal/open",
                             openParams("b.cs", corpora::GeometryCorpus, 5))),
            0);
  Stats = C.callResult("$/stats", Value::object());
  EXPECT_EQ(Stats.getInt("sessions", -1), 2);
  EXPECT_EQ(Stats.getInt("evictions", -1), 2);
}

TEST(ServiceTest, StatsSplitMemoryIntoSharedBaseAndPerSessionOverlay) {
  PetalService::Options O = testOptions();
  std::string Error;
  O.Base = baseCorpusFromSource(corpora::GeometryCorpus, Error);
  ASSERT_NE(O.Base, nullptr) << Error;
  InProcessClient C(O);

  const std::string Doc =
      "class Scratch {\n"
      "  void Play(System.Windows.Point point) {\n"
      "    return;\n"
      "  }\n"
      "}\n";
  ASSERT_EQ(errorCode(C.call("petal/open", openParams("doc.cs", Doc, 1))), 0);
  // A small edit: the session's accounted footprint is the overlay delta
  // of the *current* build, never a re-count of the shared base.
  const std::string Edited =
      "class Scratch {\n"
      "  void Play(System.Windows.Point point) {\n"
      "    var tmp = point;\n"
      "    return;\n"
      "  }\n"
      "}\n";
  ASSERT_EQ(errorCode(C.call("petal/change", openParams("doc.cs", Edited, 2))),
            0);

  Value Stats = C.callResult("$/stats", Value::object());
  const Value *Mem = Stats.find("memory");
  ASSERT_NE(Mem, nullptr);
  int64_t BaseBytes = Mem->getInt("baseBytes", 0);
  int64_t OverlayBytes = Mem->getInt("overlayBytes", 0);
  EXPECT_GT(BaseBytes, 0);
  EXPECT_GT(OverlayBytes, 0);
  EXPECT_EQ(Mem->getInt("totalBytes", 0), BaseBytes + OverlayBytes);
  // The point of the overlay design: a session costs a small fraction of
  // the shared corpus it reads.
  EXPECT_LT(OverlayBytes * 4, BaseBytes);

  // Closing the session releases its overlay accounting; the base stays.
  Value CloseParams = Value::object();
  CloseParams.set("doc", "doc.cs");
  ASSERT_EQ(errorCode(C.call("petal/close", CloseParams)), 0);
  Stats = C.callResult("$/stats", Value::object());
  EXPECT_EQ(Stats.find("memory")->getInt("overlayBytes", -1), 0);
  EXPECT_EQ(Stats.find("memory")->getInt("baseBytes", 0), BaseBytes);
}

TEST(ServiceTest, MalformedJsonGetsParseErrorResponse) {
  InProcessClient C(testOptions());
  EXPECT_TRUE(C.service().handleMessage("{\"jsonrpc\": oops"));
  // The error response carries a null id, which the client counts as a
  // stray rather than matching it to a call.
  EXPECT_EQ(C.strayResponses(), 1u);
}

TEST(ServiceTest, ShutdownRejectsNewWork) {
  InProcessClient C(testOptions());
  EXPECT_EQ(errorCode(C.call("shutdown", Value())), 0);
  EXPECT_EQ(errorCode(C.call("petal/open",
                             openParams("geo.cs", corpora::GeometryCorpus, 1))),
            rpc::ShuttingDown);
}

//===----------------------------------------------------------------------===//
// Explain mode and the score ceiling
//===----------------------------------------------------------------------===//

TEST(ServiceTest, ExplainAttachesTermBreakdownsThatSumToTheScore) {
  InProcessClient C(testOptions());
  C.call("petal/open", openParams("geo.cs", corpora::GeometryCorpus, 1));

  Value P = completeParams("geo.cs", "EllipseArc", "Examine",
                           "Distance(point, ?)");
  P.set("explain", true);
  Value Resp = C.call("petal/complete", P);
  ASSERT_EQ(errorCode(Resp), 0) << Resp.write();

  const Value *List = Resp.find("result")->find("completions");
  ASSERT_TRUE(List && List->isArray() && !List->elements().empty());
  const char *Letters[] = {"t", "a", "d", "s", "n", "m"};
  std::map<std::string, int64_t> WantTotals;
  for (const Value &Item : List->elements()) {
    const Value *Terms = Item.find("terms");
    ASSERT_NE(Terms, nullptr) << Item.write();
    int64_t Sum = 0;
    for (const char *L : Letters) {
      int64_t T = Terms->getInt(L, -1);
      ASSERT_GE(T, 0) << Item.write(); // all six keys always present
      Sum += T;
      WantTotals[L] += T;
    }
    // The breakdown decomposes the reported score exactly; the subexpr
    // rollup is informational, not part of the sum.
    EXPECT_EQ(Sum, Item.getInt("score", -1)) << Item.write();
    EXPECT_GE(Item.getInt("subexpr", -1), 0) << Item.write();
  }

  // $/stats aggregates the same totals.
  Value Stats = C.callResult("$/stats", Value::object());
  const Value *Explain = Stats.find("explain");
  ASSERT_NE(Explain, nullptr);
  EXPECT_EQ(Explain->getInt("queries", -1), 1);
  const Value *Totals = Explain->find("termTotals");
  ASSERT_NE(Totals, nullptr);
  for (const char *L : Letters)
    EXPECT_EQ(Totals->getInt(L, -1), WantTotals[L]) << L;
}

TEST(ServiceTest, ExplainAndPlainQueriesCacheSeparately) {
  InProcessClient C(testOptions());
  C.call("petal/open", openParams("geo.cs", corpora::GeometryCorpus, 1));

  Value Plain = completeParams("geo.cs", "EllipseArc", "Examine",
                               "?({point})");
  Value Explained = Plain;
  Explained.set("explain", true);

  Value P1 = C.call("petal/complete", Plain);
  Value E1 = C.call("petal/complete", Explained);
  ASSERT_EQ(errorCode(P1), 0);
  ASSERT_EQ(errorCode(E1), 0);

  // Same query text, different payload shape: two distinct cache entries.
  Value Stats = C.callResult("$/stats", Value::object());
  EXPECT_EQ(Stats.find("cache")->getInt("hits", -1), 0);
  EXPECT_EQ(Stats.find("cache")->getInt("misses", -1), 2);

  // Plain responses carry no breakdown, and each variant replays
  // byte-identical from the cache.
  const Value *PlainList = P1.find("result")->find("completions");
  ASSERT_TRUE(PlainList && !PlainList->elements().empty());
  for (const Value &Item : PlainList->elements())
    EXPECT_EQ(Item.find("terms"), nullptr) << Item.write();
  Value E2 = C.call("petal/complete", Explained);
  EXPECT_EQ(E1.find("result")->write(), E2.find("result")->write());

  // Cache replays do not inflate the explain aggregates.
  Value Stats2 = C.callResult("$/stats", Value::object());
  EXPECT_EQ(Stats2.find("explain")->getInt("queries", -1), 1);
}

TEST(ServiceTest, MaxScoreAboveTheCeilingIsReportedInStats) {
  InProcessClient C(testOptions());
  C.call("petal/open", openParams("geo.cs", corpora::GeometryCorpus, 1));

  // A hostile maxScore cannot drive bucket growth past the engine's score
  // ceiling; asking for more results than exist under the ceiling reports
  // the truncation.
  Value P = completeParams("geo.cs", "EllipseArc", "Examine", "?({point})",
                           /*N=*/1000);
  P.set("maxScore", int64_t(1) << 40);
  Value Resp = C.call("petal/complete", P);
  ASSERT_EQ(errorCode(Resp), 0) << Resp.write();
  ASSERT_LT(Resp.find("result")->find("completions")->elements().size(),
            1000u);

  Value Stats = C.callResult("$/stats", Value::object());
  EXPECT_EQ(Stats.getInt("scoreCeilingHits", -1), 1);

  // Equivalent oversized values canonicalize to one cache entry.
  P.set("maxScore", int64_t(123456789));
  C.call("petal/complete", P);
  Value Stats2 = C.callResult("$/stats", Value::object());
  EXPECT_EQ(Stats2.find("cache")->getInt("hits", -1), 1);
  // The replay is not recounted as a ceiling hit.
  EXPECT_EQ(Stats2.getInt("scoreCeilingHits", -1), 1);
}

//===----------------------------------------------------------------------===//
// Cancellation and deadlines (deterministic via $/test gates)
//===----------------------------------------------------------------------===//

TEST(ServiceTest, InterleavedCancellationCancelsQueuedRequest) {
  // One worker: the gate occupies it, so the complete stays queued while
  // the cancel arrives — the interleaving the LSP flow produces.
  InProcessClient C(testOptions(/*Workers=*/1, /*TestHooks=*/true));
  C.call("petal/open", openParams("geo.cs", corpora::GeometryCorpus, 1));

  Value Block = Value::object();
  Block.set("token", "gate1");
  int64_t BlockId = C.send("$/test/block", std::move(Block));

  int64_t CompleteId = C.send(
      "petal/complete",
      completeParams("geo.cs", "EllipseArc", "Examine", "?({point})"));

  Value Cancel = Value::object();
  Cancel.set("id", CompleteId);
  C.notify("$/cancelRequest", std::move(Cancel));

  C.service().releaseGate("gate1");
  EXPECT_EQ(errorCode(C.await(BlockId)), 0);
  EXPECT_EQ(errorCode(C.await(CompleteId)), rpc::RequestCancelled);

  // The session is unaffected; later queries still work.
  Value Resp = C.call("petal/complete",
                      completeParams("geo.cs", "EllipseArc", "Examine",
                                     "?({point})"));
  EXPECT_EQ(errorCode(Resp), 0);
  Value Stats = C.callResult("$/stats", Value::object());
  EXPECT_EQ(Stats.getInt("cancelled", -1), 1);
}

TEST(ServiceTest, CancellingFinishedRequestIsANoop) {
  InProcessClient C(testOptions());
  C.call("petal/open", openParams("geo.cs", corpora::GeometryCorpus, 1));
  Value Resp = C.call("petal/complete",
                      completeParams("geo.cs", "EllipseArc", "Examine",
                                     "?({point})"));
  ASSERT_EQ(errorCode(Resp), 0);
  Value Cancel = Value::object();
  Cancel.set("id", Resp.find("id")->intValue());
  C.notify("$/cancelRequest", std::move(Cancel));
  C.service().waitIdle();
  Value Stats = C.callResult("$/stats", Value::object());
  EXPECT_EQ(Stats.getInt("cancelled", -1), 0);
}

TEST(ServiceTest, DeadlineExpiresWhileQueued) {
  InProcessClient C(testOptions(/*Workers=*/1, /*TestHooks=*/true));
  C.call("petal/open", openParams("geo.cs", corpora::GeometryCorpus, 1));

  Value Block = Value::object();
  Block.set("token", "gate2");
  int64_t BlockId = C.send("$/test/block", std::move(Block));

  Value P = completeParams("geo.cs", "EllipseArc", "Examine", "?({point})");
  P.set("deadlineMs", 1.0);
  int64_t CompleteId = C.send("petal/complete", std::move(P));

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  C.service().releaseGate("gate2");
  C.await(BlockId);
  EXPECT_EQ(errorCode(C.await(CompleteId)), rpc::DeadlineExceeded);
  Value Stats = C.callResult("$/stats", Value::object());
  EXPECT_EQ(Stats.getInt("deadlineExpired", -1), 1);
}

//===----------------------------------------------------------------------===//
// Concurrency: many clients, answers checked against the direct engine
//===----------------------------------------------------------------------===//

TEST(ServiceTest, ConcurrentClientsGetDirectEngineAnswers) {
  constexpr size_t NumClients = 4;
  constexpr size_t QueriesPerClient = 6;
  const char *Queries[] = {"?({point})", "Distance(point, ?)",
                           "?({point, shapeStyle})"};

  InProcessClient C(testOptions(/*Workers=*/4));
  for (size_t I = 0; I != NumClients; ++I)
    ASSERT_EQ(errorCode(C.call("petal/open",
                               openParams("doc" + std::to_string(I) + ".cs",
                                          corpora::GeometryCorpus, 1))),
              0);

  // Reference answers, one per query family.
  std::vector<std::vector<std::pair<std::string, int>>> Want;
  for (const char *Q : Queries)
    Want.push_back(
        directComplete(corpora::GeometryCorpus, "EllipseArc", "Examine", Q,
                       10));

  std::vector<std::thread> Clients;
  std::vector<int> Failures(NumClients, 0);
  for (size_t I = 0; I != NumClients; ++I)
    Clients.emplace_back([&, I] {
      std::string Doc = "doc" + std::to_string(I) + ".cs";
      for (size_t K = 0; K != QueriesPerClient; ++K) {
        size_t QIdx = (I + K) % 3;
        Value Resp = C.call(
            "petal/complete",
            completeParams(Doc, "EllipseArc", "Examine", Queries[QIdx]));
        if (errorCode(Resp) != 0 || completionsOf(Resp) != Want[QIdx])
          ++Failures[I];
      }
    });
  for (std::thread &T : Clients)
    T.join();
  for (size_t I = 0; I != NumClients; ++I)
    EXPECT_EQ(Failures[I], 0) << "client " << I;

  Value Stats = C.callResult("$/stats", Value::object());
  EXPECT_EQ(Stats.getInt("queries", -1),
            static_cast<int64_t>(NumClients * QueriesPerClient));
  EXPECT_GT(Stats.find("cache")->getInt("hits", -1), 0);
}

TEST(ServiceTest, ConcurrentEditsAndQueriesStayConsistent) {
  // Two documents: one is edited continuously while the other is queried;
  // every answer must carry the version it was computed against. Run
  // under TSan this exercises dispatch/worker handoff and the cache.
  InProcessClient C(testOptions(/*Workers=*/3));
  C.call("petal/open", openParams("edit.cs", corpora::GeometryCorpus, 1));
  C.call("petal/open", openParams("read.cs", corpora::GeometryCorpus, 1));

  std::thread Editor([&] {
    for (int64_t V = 2; V <= 8; ++V)
      ASSERT_EQ(errorCode(C.call("petal/change",
                                 openParams("edit.cs",
                                            corpora::GeometryCorpus, V))),
                0);
  });
  std::thread Reader([&] {
    for (int K = 0; K != 10; ++K) {
      Value Resp = C.call("petal/complete",
                          completeParams("read.cs", "EllipseArc", "Examine",
                                         "?({point})"));
      EXPECT_EQ(errorCode(Resp), 0);
      EXPECT_EQ(Resp.find("result")->getInt("version", -1), 1);
    }
  });
  std::thread EditQuerier([&] {
    for (int K = 0; K != 10; ++K) {
      Value Resp = C.call("petal/complete",
                          completeParams("edit.cs", "EllipseArc", "Examine",
                                         "?({point})"));
      // Either a real answer at some version, or (never, with full-text
      // changes serialized per session) an error.
      EXPECT_EQ(errorCode(Resp), 0);
      EXPECT_GE(Resp.find("result")->getInt("version", -1), 1);
    }
  });
  Editor.join();
  Reader.join();
  EditQuerier.join();
}

//===----------------------------------------------------------------------===//
// Snapshot warm start
//===----------------------------------------------------------------------===//

/// Builds \p Text cold, snapshots it to a temp file, and loads it back —
/// the corpus_explorer --save-snapshot / petal_serve --snapshot round trip
/// in-process.
std::shared_ptr<const snapshot::LoadedSnapshot>
loadedSnapshotOf(const std::string &Text, const std::string &Name) {
  DiagnosticEngine Diags;
  SynFile File;
  EXPECT_TRUE(parseSourceFile(Text, File, Diags));
  DocumentShape Shape = shapeOfFile(File);
  TypeSystem TS;
  Program P(TS);
  EXPECT_TRUE(resolveParsedFile(File, P, Diags));
  CompletionIndexes Idx(P);
  Idx.freeze(FreezeOptions{});
  AbsTypeSolution Solution = Idx.Infer.solve();

  const std::string Path = testing::TempDir() + "petal_svc_" + Name;
  std::string Error;
  EXPECT_TRUE(
      snapshot::writeSnapshot(Path, Text, Shape, Idx, Solution, Error))
      << Error;
  auto Snap = snapshot::loadSnapshot(Path, Error);
  EXPECT_NE(Snap, nullptr) << Error;
  return Snap;
}

PetalService::Options warmOptions(
    const std::shared_ptr<const snapshot::LoadedSnapshot> &Snap) {
  PetalService::Options O = testOptions();
  O.Snapshot.WarmStart = documentFromSnapshot(*Snap, O.DocThreads);
  O.Snapshot.Loaded = true;
  O.Snapshot.LoadMillis = Snap->LoadMillis;
  O.Snapshot.Bytes = Snap->Bytes;
  O.Snapshot.Mapped = Snap->Mapped;
  return O;
}

TEST(ServiceSnapshotTest, WarmStartOpenIsIncrementalAndCountedInStats) {
  auto Snap = loadedSnapshotOf(corpora::GeometryCorpus, "warm.snap");
  ASSERT_NE(Snap, nullptr);
  InProcessClient C(warmOptions(Snap));

  // Opening the snapshot corpus verbatim rides the incremental path — no
  // cold build anywhere — and the answer still matches the direct engine
  // bit for bit.
  Value OpenResp =
      C.call("petal/open", openParams("geo.cs", corpora::GeometryCorpus, 1));
  ASSERT_EQ(errorCode(OpenResp), 0) << OpenResp.write();
  EXPECT_EQ(OpenResp.find("result")->getString("build"), "incremental-noop");

  Value Resp = C.call("petal/complete",
                      completeParams("geo.cs", "EllipseArc", "Examine",
                                     "Distance(point, ?)", 10));
  ASSERT_EQ(errorCode(Resp), 0) << Resp.write();
  EXPECT_EQ(completionsOf(Resp),
            directComplete(corpora::GeometryCorpus, "EllipseArc", "Examine",
                           "Distance(point, ?)", 10));

  Value Stats = C.callResult("$/stats", Value::object());
  const Value *SnapV = Stats.find("snapshot");
  ASSERT_NE(SnapV, nullptr) << Stats.write();
  EXPECT_TRUE(SnapV->getBool("loaded", false));
  EXPECT_GT(SnapV->getInt("bytes", 0), 0);
  EXPECT_EQ(SnapV->getInt("warmStarts", -1), 1);
  EXPECT_EQ(SnapV->find("fallbackReason"), nullptr);
  EXPECT_EQ(Stats.find("documents")
                ->find("builds")
                ->getInt("incremental", -1),
            1);
}

TEST(ServiceSnapshotTest, MismatchedOpenFallsBackToAFullBuild) {
  auto Snap = loadedSnapshotOf(corpora::GeometryCorpus, "mismatch.snap");
  ASSERT_NE(Snap, nullptr);
  InProcessClient C(warmOptions(Snap));

  // A document whose type graph differs from the snapshot corpus must get
  // an ordinary full build — correct answers, zero warm starts claimed.
  const std::string Other = std::string(corpora::GeometryCorpus) +
                            "class Extra {\n"
                            "  System.Windows.Point Spot;\n"
                            "}\n";
  Value OpenResp = C.call("petal/open", openParams("other.cs", Other, 1));
  ASSERT_EQ(errorCode(OpenResp), 0) << OpenResp.write();
  EXPECT_EQ(OpenResp.find("result")->getString("build"), "full");

  Value Resp = C.call("petal/complete",
                      completeParams("other.cs", "EllipseArc", "Examine",
                                     "?({point})", 10));
  ASSERT_EQ(errorCode(Resp), 0) << Resp.write();

  Value Stats = C.callResult("$/stats", Value::object());
  EXPECT_EQ(Stats.find("snapshot")->getInt("warmStarts", -1), 0);
}

TEST(ServiceSnapshotTest, FallbackReasonIsReportedWhenRunningCold) {
  // petal_serve with a rejected --snapshot: no warm-start state, but the
  // reason is preserved for $/stats so the operator can see why the
  // daemon is cold.
  PetalService::Options O = testOptions();
  O.Snapshot.FallbackReason = "snapshot: bad magic (not a snapshot file)";
  InProcessClient C(O);

  Value OpenResp =
      C.call("petal/open", openParams("geo.cs", corpora::GeometryCorpus, 1));
  ASSERT_EQ(errorCode(OpenResp), 0);
  EXPECT_EQ(OpenResp.find("result")->getString("build"), "full");

  Value Stats = C.callResult("$/stats", Value::object());
  const Value *SnapV = Stats.find("snapshot");
  ASSERT_NE(SnapV, nullptr);
  EXPECT_FALSE(SnapV->getBool("loaded", true));
  EXPECT_EQ(SnapV->getInt("warmStarts", -1), 0);
  EXPECT_EQ(SnapV->getString("fallbackReason"),
            "snapshot: bad magic (not a snapshot file)");
}

//===----------------------------------------------------------------------===//
// FdStreamBuf: the fd <-> iostream bridge petal_serve's TCP mode uses
//===----------------------------------------------------------------------===//

TEST(FramingTest, FdStreamBufRoundTripsFramesOverAPipe) {
  // A payload much larger than both the 16 KiB FdStreamBuf buffer and the
  // kernel pipe buffer, so the writer must flush repeatedly and absorb
  // short writes while the reader drains concurrently.
  int Fds[2];
  ASSERT_EQ(::pipe(Fds), 0);

  std::string Big(1 << 20, 'x');
  for (size_t I = 0; I < Big.size(); I += 97)
    Big[I] = static_cast<char>('a' + (I / 97) % 26);
  const std::string Small = "{\"jsonrpc\":\"2.0\"}";

  std::thread Writer([&] {
    FdStreamBuf WB(Fds[1]);
    std::ostream Out(&WB);
    FramedWriter W(Out);
    W.write(Big);
    W.write(Small);
    W.write("");
    Out.flush();
    ::close(Fds[1]);
  });

  FdStreamBuf RB(Fds[0]);
  std::istream In(&RB);
  FramedReader R(In);
  std::string P;
  ASSERT_EQ(R.read(P), FramedReader::Status::Ok);
  EXPECT_EQ(P, Big);
  ASSERT_EQ(R.read(P), FramedReader::Status::Ok);
  EXPECT_EQ(P, Small);
  ASSERT_EQ(R.read(P), FramedReader::Status::Ok);
  EXPECT_EQ(P, "");
  EXPECT_EQ(R.read(P), FramedReader::Status::Eof);

  Writer.join();
  ::close(Fds[0]);
}

} // namespace
