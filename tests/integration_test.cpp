//===- tests/integration_test.cpp - End-to-end pipeline tests -------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
//
// Whole-pipeline scenarios over a larger hand-written program: parse ->
// resolve -> infer -> index -> complete -> evaluate, with the invariants
// (type-correctness, Fig. 6 derivability, score additivity, determinism)
// checked at the end of the chain.
//
//===----------------------------------------------------------------------===//

#include "code/ExprPrinter.h"
#include "code/Verify.h"
#include "complete/Engine.h"
#include "corpus/SourceWriter.h"
#include "eval/Experiments.h"
#include "parser/Frontend.h"
#include "partial/Semantics.h"

#include <gtest/gtest.h>

using namespace petal;

namespace {

/// A file-store application: two library namespaces, inheritance, enums,
/// interfaces, statics, overloads, and client code exercising all statement
/// forms — deliberately trickier than the generator's output.
const char *AppCorpus = R"(
namespace Store.IO {
  enum OpenMode { Read, Write, Append }
  interface IClosable { }
  class Stream : IClosable {
    long Position;
    long Length;
    void Close();
  }
  class FileStream : Store.IO.Stream {
    string PathName;
  }
  class File {
    static Store.IO.FileStream Open(string path, Store.IO.OpenMode mode);
    static bool Exists(string path);
    static string ReadAll(string path);
  }
  class Path {
    static string Combine(string a, string b);
    static string GetExtension(string path);
  }
}

namespace Store.Data {
  class Record {
    int Id;
    string Title;
    long Timestamp;
  }
  class Table {
    string Name;
    int Count;
    Store.Data.Record Find(int id);
    Store.Data.Record First();
    void Insert(Store.Data.Record record);
  }
  class Db {
    static Store.Data.Table OpenTable(string name);
    static Store.Data.Db Connect(string path);
    Store.Data.Table Main;
  }
}

class App {
  Store.Data.Db db;
  string rootDir;

  void Sync(string fileName, Store.Data.Record rec) {
    string full = Store.IO.Path.Combine(rootDir, fileName);
    var exists = Store.IO.File.Exists(full);
    var stream = Store.IO.File.Open(full, Store.IO.OpenMode.Read);
    var table = Store.Data.Db.OpenTable(fileName);
    table.Insert(rec);
    rec.Timestamp = stream.Length;
    rec.Id < table.Count;
    stream.Close();
  }
}
)";

class IntegrationTest : public ::testing::Test {
protected:
  void SetUp() override {
    TS = std::make_unique<TypeSystem>();
    P = std::make_unique<Program>(*TS);
    std::ostringstream OS;
    bool Ok = loadProgramText(AppCorpus, *P, Diags);
    Diags.print(OS);
    ASSERT_TRUE(Ok) << OS.str();
    Class = findCodeClass(*P, "App");
    Method = findCodeMethod(*P, *Class, "Sync");
    ASSERT_NE(Method, nullptr);
    Site = {Class, Method, Method->body().size()};
    Idx = std::make_unique<CompletionIndexes>(*P);
    Engine = std::make_unique<CompletionEngine>(*P, *Idx);
  }

  const PartialExpr *query(const char *Text,
                           size_t StmtIndex = static_cast<size_t>(-1)) {
    QueryScope Scope{Class, Method, StmtIndex};
    const PartialExpr *Q = parseQueryText(Text, *P, Scope, Diags);
    EXPECT_NE(Q, nullptr);
    return Q;
  }

  DiagnosticEngine Diags;
  std::unique_ptr<TypeSystem> TS;
  std::unique_ptr<Program> P;
  const CodeClass *Class = nullptr;
  const CodeMethod *Method = nullptr;
  CodeSite Site;
  std::unique_ptr<CompletionIndexes> Idx;
  std::unique_ptr<CompletionEngine> Engine;
};

TEST_F(IntegrationTest, BodiesResolvedAndTypeCorrect) {
  EXPECT_EQ(Method->body().size(), 8u);
  for (const Stmt &St : Method->body()) {
    if (!St.Value)
      continue;
    std::string Why;
    EXPECT_TRUE(verifyExpr(*TS, St.Value, &Why))
        << printExpr(*TS, St.Value) << ": " << Why;
  }
}

TEST_F(IntegrationTest, MethodDiscoveryAcrossNamespaces) {
  // "I have a path and a mode — what can I call?"
  std::vector<Completion> Results =
      Engine->complete(query("?({full, Store.IO.OpenMode.Read})"), Site, 10);
  ASSERT_FALSE(Results.empty());
  EXPECT_EQ(printExpr(*TS, Results[0].E),
            "Store.IO.File.Open(full, Store.IO.OpenMode.Read)");
}

TEST_F(IntegrationTest, AbstractTypesSeparatePathsFromTitles) {
  // `full` flows through Path.Combine/File.Exists/File.Open — its abstract
  // type is "path-like". Argument prediction for ReadAll(?) should rank
  // path-flavoured strings above Record.Title.
  std::vector<Completion> Results =
      Engine->complete(query("ReadAll(?)"), Site, 20);
  ASSERT_FALSE(Results.empty());
  auto RankOf = [&](const char *S) -> int {
    for (size_t I = 0; I != Results.size(); ++I)
      if (printExpr(*TS, Results[I].E).find(S) != std::string::npos)
        return static_cast<int>(I);
    return 1000;
  };
  int Full = RankOf("ReadAll(full)");
  int Title = RankOf("rec.Title");
  ASSERT_NE(Full, 1000);
  ASSERT_NE(Title, 1000);
  EXPECT_LT(Full, Title);
}

TEST_F(IntegrationTest, ScopeRespectsTheQuerySite) {
  // Before statement 0, `full`/`stream`/`table` do not exist: the hole can
  // only use the parameters and fields.
  std::vector<Completion> Early =
      Engine->complete(query("?", 0), {Class, Method, 0}, 50);
  for (const Completion &C : Early) {
    std::string S = printExpr(*TS, C.E);
    EXPECT_EQ(S.find("full"), std::string::npos) << S;
    EXPECT_EQ(S.rfind("stream", 0), std::string::npos) << S;
  }
}

TEST_F(IntegrationTest, LookupCompletionThroughInheritedMembers) {
  // stream is a FileStream; Length/Position are inherited from Stream.
  std::vector<Completion> Results =
      Engine->complete(query("stream.?f"), Site, 20);
  std::vector<std::string> Strs;
  for (const Completion &C : Results)
    Strs.push_back(printExpr(*TS, C.E));
  EXPECT_NE(std::find(Strs.begin(), Strs.end(), "stream.Length"),
            Strs.end());
  EXPECT_NE(std::find(Strs.begin(), Strs.end(), "stream.PathName"),
            Strs.end());
}

TEST_F(IntegrationTest, ComparisonCompletionPrefersMatchingConcepts) {
  std::vector<Completion> Results =
      Engine->complete(query("rec.?m < table.?m"), Site, 10);
  ASSERT_FALSE(Results.empty());
  // rec.Id < table.Count is the only same-flavour int pair; it must beat
  // cross-typed pairs like rec.Timestamp < table.Count.
  EXPECT_EQ(printExpr(*TS, Results[0].E), "rec.Id < table.Count");
}

TEST_F(IntegrationTest, EverythingTheEngineEmitsIsSound) {
  for (const char *QT :
       {"?", "?({rec})", "Combine(rootDir, ?)", "rec.?m < table.?m",
        "rec.Timestamp = stream.?m", "db.?*m"}) {
    const PartialExpr *Q = query(QT);
    for (const Completion &C : Engine->complete(Q, Site, 120)) {
      std::string Why;
      ASSERT_TRUE(verifyExpr(*TS, C.E, &Why))
          << QT << ": " << printExpr(*TS, C.E) << ": " << Why;
      ASSERT_TRUE(isDerivableCompletion(*P, Site, Q, C.E, &Why))
          << QT << ": " << printExpr(*TS, C.E) << ": " << Why;
    }
  }
}

TEST_F(IntegrationTest, EvaluatorReplaysTheWholeProgram) {
  Evaluator Ev(*P, *Idx, RankingOptions::all());
  MethodPredictionData MP = Ev.runMethodPrediction(true, true);
  EXPECT_EQ(MP.Best.total(), 6u); // six harvested calls (Close included)
  EXPECT_GE(MP.Best.withinTop(10), 5u);
  ArgumentPredictionData AP = Ev.runArgumentPrediction();
  EXPECT_GT(AP.TotalArgs, 5u);
  AssignmentData AS = Ev.runAssignments();
  EXPECT_EQ(AS.Source.total(), 1u); // rec.Timestamp = stream.Length
  ComparisonData CP = Ev.runComparisons();
  EXPECT_EQ(CP.Both.total(), 1u); // rec.Id < table.Count
  EXPECT_EQ(CP.Both.withinTop(10), 1u);
}

TEST_F(IntegrationTest, SourceRoundTripPreservesTheProgram) {
  std::string Src1 = writeProgramSource(*P);
  DiagnosticEngine D2;
  TypeSystem TS2;
  Program P2(TS2);
  std::ostringstream OS;
  bool Ok = loadProgramText(Src1, P2, D2);
  D2.print(OS);
  ASSERT_TRUE(Ok) << OS.str();
  EXPECT_EQ(writeProgramSource(P2), Src1);
}

} // namespace
