//===- tests/rank_test.cpp - Fig. 7 ranking-function tests ----------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "infer/AbstractTypes.h"
#include "parser/Frontend.h"
#include "rank/Ranking.h"

#include <gtest/gtest.h>

using namespace petal;

namespace {

//===----------------------------------------------------------------------===//
// RankingOptions specs
//===----------------------------------------------------------------------===//

TEST(RankingOptionsTest, FromSpecAllAndNone) {
  RankingOptions All = RankingOptions::fromSpec("all");
  EXPECT_TRUE(All.UseDepth && All.UseTypeDistance && All.UseAbstractTypes &&
              All.UseNamespace && All.UseInScopeStatic && All.UseMatchingName);
  RankingOptions None = RankingOptions::fromSpec("none");
  EXPECT_FALSE(None.UseDepth || None.UseTypeDistance ||
               None.UseAbstractTypes || None.UseNamespace ||
               None.UseInScopeStatic || None.UseMatchingName);
}

TEST(RankingOptionsTest, MinusAndPlusSpecs) {
  RankingOptions MinusD = RankingOptions::fromSpec("-d");
  EXPECT_FALSE(MinusD.UseDepth);
  EXPECT_TRUE(MinusD.UseTypeDistance);

  RankingOptions PlusTA = RankingOptions::fromSpec("+ta");
  EXPECT_TRUE(PlusTA.UseTypeDistance);
  EXPECT_TRUE(PlusTA.UseAbstractTypes);
  EXPECT_FALSE(PlusTA.UseDepth);
  EXPECT_FALSE(PlusTA.UseNamespace);
}

TEST(RankingOptionsTest, CheckingFromSpecRejectsBadSpecs) {
  RankingOptions O;
  std::string Error;
  // Unknown term letter, named in the message.
  EXPECT_FALSE(RankingOptions::fromSpec("-x", O, Error));
  EXPECT_NE(Error.find("unknown ranking term letter 'x'"), std::string::npos)
      << Error;
  EXPECT_FALSE(RankingOptions::fromSpec("+tz", O, Error));
  EXPECT_NE(Error.find("'z'"), std::string::npos) << Error;
  // Missing +/- prefix.
  EXPECT_FALSE(RankingOptions::fromSpec("bogus", O, Error));
  EXPECT_NE(Error.find("'+'/'-'"), std::string::npos) << Error;
  // A sign with no letters.
  EXPECT_FALSE(RankingOptions::fromSpec("+", O, Error));
  EXPECT_NE(Error.find("names no terms"), std::string::npos) << Error;
  // A failed parse leaves the output untouched.
  RankingOptions Before = RankingOptions::fromSpec("-d");
  RankingOptions Out = Before;
  EXPECT_FALSE(RankingOptions::fromSpec("-q", Out, Error));
  EXPECT_EQ(Out.spec(), Before.spec());
}

TEST(RankingOptionsTest, CheckingFromSpecNormalizesDuplicates) {
  RankingOptions O;
  std::string Error;
  ASSERT_TRUE(RankingOptions::fromSpec("-ddd", O, Error)) << Error;
  EXPECT_EQ(O.spec(), RankingOptions::fromSpec("-d").spec());
  ASSERT_TRUE(RankingOptions::fromSpec("+tat", O, Error)) << Error;
  EXPECT_EQ(O.spec(), RankingOptions::fromSpec("+ta").spec());
}

class SpecRoundTripTest : public ::testing::TestWithParam<const char *> {};

TEST_P(SpecRoundTripTest, SpecSurvivesRoundTrip) {
  RankingOptions O = RankingOptions::fromSpec(GetParam());
  RankingOptions O2 = RankingOptions::fromSpec(O.spec());
  EXPECT_EQ(O.UseNamespace, O2.UseNamespace);
  EXPECT_EQ(O.UseInScopeStatic, O2.UseInScopeStatic);
  EXPECT_EQ(O.UseDepth, O2.UseDepth);
  EXPECT_EQ(O.UseMatchingName, O2.UseMatchingName);
  EXPECT_EQ(O.UseTypeDistance, O2.UseTypeDistance);
  EXPECT_EQ(O.UseAbstractTypes, O2.UseAbstractTypes);
}

INSTANTIATE_TEST_SUITE_P(AllTable2Variants, SpecRoundTripTest,
                         ::testing::Values("all", "-n", "-s", "-d", "-m",
                                           "-t", "-a", "-at", "+n", "+s",
                                           "+d", "+m", "+t", "+a", "+at",
                                           "none"));

//===----------------------------------------------------------------------===//
// Scoring fixture
//===----------------------------------------------------------------------===//

class RankFixture : public ::testing::Test {
protected:
  void SetUp() override {
    NsA = TS.getOrAddNamespace("Proj.Core");
    NsB = TS.getOrAddNamespace("Proj.UI");
    NsFar = TS.getOrAddNamespace("Other.Lib");

    Doc = TS.addType("Doc", NsA, TypeKind::Class);
    Size = TS.addType("Size", NsA, TypeKind::Struct);
    Widget = TS.addType("Widget", NsB, TypeKind::Class);
    Far = TS.addType("Far", NsFar, TypeKind::Class);

    DocW = TS.addField(Doc, "Width", TS.intType());
    DocBounds = TS.addField(Doc, "Bounds", Size);
    SizeW = TS.addField(Size, "Width", TS.intType());
    GetSize = TS.addMethod(Doc, "GetSize", Size, {});

    // Same-namespace static: Proj.Core.Doc + Proj.Core.Size args.
    ResizeNear = TS.addMethod(Doc, "ResizeNear", TS.voidType(),
                              {{"d", Doc}, {"s", Size}}, /*IsStatic=*/true);
    // Cross-namespace static.
    ResizeFar = TS.addMethod(Far, "ResizeFar", TS.voidType(),
                             {{"d", Doc}, {"s", Size}}, /*IsStatic=*/true);
    // Instance method on Doc.
    ApplyInst = TS.addMethod(Doc, "Apply", TS.voidType(), {{"s", Size}});

    P = std::make_unique<Program>(TS);
    CodeClass &CC = P->addClass(Widget);
    MethodId Decl =
        TS.addMethod(Widget, "Run", TS.voidType(), {{"d", Doc}, {"s", Size}});
    Method = &CC.addMethod(Decl);
    Method->addLocal("d", Doc, true);
    Method->addLocal("s", Size, true);
    F = std::make_unique<ExprFactory>(TS, P->arena());
  }

  /// A ranker with the given spec; abstract types disabled unless set up.
  Ranker makeRanker(const char *Spec, TypeId SelfType = InvalidId) {
    Ranker R(TS, RankingOptions::fromSpec(Spec));
    R.setSelfType(isValidId(SelfType) ? SelfType : Widget);
    return R;
  }

  TypeSystem TS;
  NamespaceId NsA, NsB, NsFar;
  TypeId Doc, Size, Widget, Far;
  FieldId DocW, DocBounds, SizeW;
  MethodId GetSize, ResizeNear, ResizeFar, ApplyInst;
  std::unique_ptr<Program> P;
  CodeMethod *Method = nullptr;
  std::unique_ptr<ExprFactory> F;
};

//===----------------------------------------------------------------------===//
// Depth (dots) — the paper's worked example
//===----------------------------------------------------------------------===//

TEST_F(RankFixture, DotsCostTwoPerLookup) {
  Ranker R = makeRanker("+d");
  const Expr *D = F->var(*Method, 0);
  // "dots('this.foo') = 1 so it would get a cost of 2 while
  //  dots('this.bar.ToBaz()') = 2 so it would get a cost of 4" (§4.1).
  EXPECT_EQ(R.scoreExpr(D), 0);
  EXPECT_EQ(R.scoreExpr(F->fieldAccess(D, DocW)), 2);
  const Expr *Chain = F->fieldAccess(F->fieldAccess(D, DocBounds), SizeW);
  EXPECT_EQ(R.scoreExpr(Chain), 4);
  // Zero-arg method steps cost the same as field steps.
  const Expr *ViaCall = F->fieldAccess(F->call(GetSize, D, {}), SizeW);
  EXPECT_EQ(R.scoreExpr(ViaCall), 4);
}

TEST_F(RankFixture, DepthDisabledZeroesLookups) {
  Ranker R = makeRanker("none");
  const Expr *Chain = F->fieldAccess(
      F->fieldAccess(F->var(*Method, 0), DocBounds), SizeW);
  EXPECT_EQ(R.scoreExpr(Chain), 0);
  EXPECT_EQ(R.lookupStepCost(), 0);
}

//===----------------------------------------------------------------------===//
// Type distance
//===----------------------------------------------------------------------===//

TEST_F(RankFixture, TypeDistanceSumsOverArguments) {
  Ranker R = makeRanker("+t");
  const Expr *D = F->var(*Method, 0);
  const Expr *S = F->var(*Method, 1);
  // Exact types: td 0 everywhere.
  EXPECT_EQ(R.scoreExpr(F->call(ResizeNear, nullptr, {D, S})), 0);

  // Now pass the args where object is expected: Pair-style method.
  MethodId TakesObj = TS.addMethod(Far, "TakesObj", TS.voidType(),
                                   {{"a", TS.objectType()}},
                                   /*IsStatic=*/true);
  // Doc -> object = 1.
  EXPECT_EQ(R.scoreExpr(F->call(TakesObj, nullptr, {D})), 1);
  // Size (struct) -> object = 1.
  EXPECT_EQ(R.scoreExpr(F->call(TakesObj, nullptr, {S})), 1);
}

TEST_F(RankFixture, DontCareArgumentsCostNothing) {
  Ranker R = makeRanker("+t");
  const Expr *D = F->var(*Method, 0);
  const Expr *Call = F->call(ResizeNear, nullptr, {D, F->dontCare()});
  EXPECT_EQ(R.scoreExpr(Call), 0);
}

//===----------------------------------------------------------------------===//
// In-scope statics
//===----------------------------------------------------------------------===//

TEST_F(RankFixture, InScopeStaticCost) {
  const Expr *D = F->var(*Method, 0);
  const Expr *S = F->var(*Method, 1);

  // From inside Widget, Doc::ResizeNear is an out-of-scope static: +1.
  Ranker RW = makeRanker("+s", Widget);
  EXPECT_EQ(RW.scoreExpr(F->call(ResizeNear, nullptr, {D, S})), 1);
  // Instance calls also pay +1.
  EXPECT_EQ(RW.scoreExpr(F->call(ApplyInst, D, {S})), 1);

  // From inside Doc itself the static is in scope: 0.
  Ranker RD = makeRanker("+s", Doc);
  EXPECT_EQ(RD.scoreExpr(F->call(ResizeNear, nullptr, {D, S})), 0);
}

//===----------------------------------------------------------------------===//
// Common namespace
//===----------------------------------------------------------------------===//

TEST_F(RankFixture, NamespaceTermRewardsCommonPrefix) {
  Ranker R = makeRanker("+n");
  const Expr *D = F->var(*Method, 0);
  const Expr *S = F->var(*Method, 1);

  // ResizeNear: owner Proj.Core, args Proj.Core + Proj.Core -> prefix 2,
  // capped term = 3 - 2 = 1.
  EXPECT_EQ(R.scoreExpr(F->call(ResizeNear, nullptr, {D, S})), 1);
  // ResizeFar: owner Other.Lib vs Proj.Core args -> prefix 0 -> term 3.
  EXPECT_EQ(R.scoreExpr(F->call(ResizeFar, nullptr, {D, S})), 3);
}

TEST_F(RankFixture, NamespaceSimilarityZeroWithOneNonPrimitiveArg) {
  Ranker R = makeRanker("+n");
  const Expr *D = F->var(*Method, 0);
  // Apply is an instance call Doc.Apply(Size): two non-primitive args
  // (receiver + Size) -> prefix(owner=Proj.Core, Doc, Size) = 2 -> term 1.
  const Expr *S = F->var(*Method, 1);
  EXPECT_EQ(R.scoreExpr(F->call(ApplyInst, D, {S})), 1);

  // GetWidth(Doc): only ONE non-primitive argument -> similarity forced to
  // 0 -> term 3, even though the namespaces match perfectly.
  MethodId OneArg = TS.addMethod(Doc, "GetWidth", TS.intType(), {{"d", Doc}},
                                 /*IsStatic=*/true);
  EXPECT_EQ(R.scoreExpr(F->call(OneArg, nullptr, {D})), 3);
}

TEST_F(RankFixture, PrimitiveAndStringArgsIgnoredByNamespaceTerm) {
  Ranker R = makeRanker("+n");
  MethodId Mixed = TS.addMethod(Doc, "Mixed", TS.voidType(),
                                {{"d", Doc}, {"s", Size}, {"n", TS.intType()},
                                 {"t", TS.stringType()}},
                                /*IsStatic=*/true);
  const Expr *Call = F->call(Mixed, nullptr,
                             {F->var(*Method, 0), F->var(*Method, 1),
                              F->intLit(1), F->stringLit("x")});
  // int/string args are invisible; prefix over {owner, Doc, Size} = 2.
  EXPECT_EQ(R.scoreExpr(Call), 1);
}

//===----------------------------------------------------------------------===//
// Matching name (comparisons)
//===----------------------------------------------------------------------===//

TEST_F(RankFixture, MatchingNamePenalty) {
  Ranker R = makeRanker("+m");
  const Expr *D = F->var(*Method, 0);
  const Expr *S = F->var(*Method, 1);
  const Expr *DW = F->fieldAccess(D, DocW);
  const Expr *SW = F->fieldAccess(F->fieldAccess(D, DocBounds), SizeW);
  (void)S;

  // Width vs Width: names match, no penalty.
  EXPECT_EQ(R.scoreExpr(F->compare(CompareOp::Ge, DW, SW)), 0);
  // Width vs a constant: no name on the right -> +3 (§5.3 notes constants
  // defeat the name feature).
  EXPECT_EQ(R.scoreExpr(F->compare(CompareOp::Ge, DW, F->intLit(3))), 3);
}

TEST_F(RankFixture, MatchingNameAppliesOnlyToComparisons) {
  Ranker R = makeRanker("+m");
  const Expr *D = F->var(*Method, 0);
  const Expr *DW = F->fieldAccess(D, DocW);
  // Assignments never pay the name penalty.
  EXPECT_EQ(R.scoreExpr(F->assign(DW, F->intLit(2))), 0);
}

//===----------------------------------------------------------------------===//
// Abstract types
//===----------------------------------------------------------------------===//

TEST_F(RankFixture, AbstractTypeMismatchCostsOne) {
  // Build usage: ResizeNear(d, s) appears once in a body, unifying the
  // locals with the parameters.
  CodeClass &CC = P->addClass(Doc);
  MethodId Decl = TS.addMethod(Doc, "Use", TS.voidType(),
                               {{"d2", Doc}, {"s2", Size}});
  CodeMethod &Use = CC.addMethod(Decl);
  unsigned SD = Use.addLocal("d2", Doc, true);
  unsigned SS = Use.addLocal("s2", Size, true);
  Use.addStmt({StmtKind::ExprStmt, 0,
               F->call(ResizeNear, nullptr,
                       {F->var(Use, SD), F->var(Use, SS)})});

  AbstractTypeInference Infer(*P);
  AbsTypeSolution Sol = Infer.solve();

  Ranker R(TS, RankingOptions::fromSpec("+a"));
  R.setSelfType(Doc);
  R.setAbstractTypes(&Infer, &Sol, &Use);

  // The same call again: both args share the params' abstract types -> 0.
  const Expr *Again = F->call(ResizeNear, nullptr,
                              {F->var(Use, SD), F->var(Use, SS)});
  EXPECT_EQ(R.scoreExpr(Again), 0);

  // Calling ResizeFar with them: its params were never unified -> +2.
  const Expr *Other = F->call(ResizeFar, nullptr,
                              {F->var(Use, SD), F->var(Use, SS)});
  EXPECT_EQ(R.scoreExpr(Other), 2);
}

//===----------------------------------------------------------------------===//
// Full function composition
//===----------------------------------------------------------------------===//

TEST_F(RankFixture, AllTermsSum) {
  Ranker R = makeRanker("all");
  const Expr *D = F->var(*Method, 0);
  const Expr *S = F->var(*Method, 1);
  // ResizeNear(d, s) from Widget with no abstract-type setup:
  //   td 0 + depth 2 (the call's dot) + static-not-in-scope 1
  //   + namespace (prefix 2 -> 1) + no abstract info configured (0) = 4.
  EXPECT_EQ(R.scoreExpr(F->call(ResizeNear, nullptr, {D, S})), 4);

  // Subexpression scores add: same call with s.Bounds-style chain arg.
  const Expr *Chain = F->fieldAccess(D, DocBounds);
  EXPECT_EQ(R.scoreExpr(F->call(ResizeNear, nullptr, {D, Chain})),
            4 + 2);
}

} // namespace
