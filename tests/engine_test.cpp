//===- tests/engine_test.cpp - Completion-engine behavior tests -----------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "TestCorpora.h"

#include "code/ExprPrinter.h"
#include "code/Verify.h"
#include "complete/Engine.h"
#include "parser/Frontend.h"

#include <gtest/gtest.h>

using namespace petal;

namespace {

class EngineTest : public ::testing::Test {
protected:
  void load(const char *Source, const char *ClassName,
            const char *MethodName) {
    TS = std::make_unique<TypeSystem>();
    P = std::make_unique<Program>(*TS);
    ASSERT_TRUE(loadProgramText(Source, *P, Diags)) << diagText();
    Class = findCodeClass(*P, ClassName);
    ASSERT_NE(Class, nullptr);
    Method = findCodeMethod(*P, *Class, MethodName);
    ASSERT_NE(Method, nullptr);
    Site = {Class, Method, Method->body().size()};
    Idx = std::make_unique<CompletionIndexes>(*P);
    Engine = std::make_unique<CompletionEngine>(*P, *Idx);
  }

  const PartialExpr *query(const char *Text) {
    QueryScope Scope{Class, Method, Site.StmtIndex};
    const PartialExpr *Q = parseQueryText(Text, *P, Scope, Diags);
    EXPECT_NE(Q, nullptr) << diagText();
    return Q;
  }

  std::vector<Completion> run(const char *Text, size_t N,
                              CompletionOptions Opts = {}) {
    const PartialExpr *Q = query(Text);
    if (!Q)
      return {};
    return Engine->complete(Q, Site, N, Opts);
  }

  std::string diagText() const {
    std::ostringstream OS;
    Diags.print(OS);
    return OS.str();
  }

  DiagnosticEngine Diags;
  std::unique_ptr<TypeSystem> TS;
  std::unique_ptr<Program> P;
  const CodeClass *Class = nullptr;
  const CodeMethod *Method = nullptr;
  CodeSite Site;
  std::unique_ptr<CompletionIndexes> Idx;
  std::unique_ptr<CompletionEngine> Engine;
};

//===----------------------------------------------------------------------===//
// Core invariants
//===----------------------------------------------------------------------===//

TEST_F(EngineTest, ScoresAreNonDecreasing) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  for (const char *Q : {"?", "Distance(point, ?)", "point.?*m >= this.?*m",
                        "?({point})", "this.?*f"}) {
    std::vector<Completion> Results = run(Q, 200);
    for (size_t I = 1; I < Results.size(); ++I)
      ASSERT_LE(Results[I - 1].Score, Results[I].Score) << Q;
  }
}

TEST_F(EngineTest, EveryCompletionTypeChecks) {
  // Fig. 6: "The final result must type-check in the context of the query,
  // treating 0 as having any type."
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  for (const char *Q : {"?", "Distance(point, ?)", "point.?*m >= this.?*m",
                        "?({point, this})", "this.?*m"}) {
    for (const Completion &C : run(Q, 300)) {
      std::string Why;
      ASSERT_TRUE(verifyExpr(*TS, C.E, &Why))
          << Q << " -> " << printExpr(*TS, C.E) << ": " << Why;
    }
  }
}

TEST_F(EngineTest, ReportedScoresMatchTheStandaloneScorer) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  // Mirror the engine's configuration exactly, including the abstract-type
  // solution it uses by default (the full-corpus one).
  AbsTypeSolution Sol = Idx->Infer.solve();
  Ranker R(*TS, RankingOptions::all());
  R.setSelfType(Class->type());
  R.setAbstractTypes(&Idx->Infer, &Sol, Method);
  for (const char *Q : {"?", "Distance(point, ?)", "?({point})"}) {
    for (const Completion &C : run(Q, 100))
      ASSERT_EQ(C.Score, R.scoreExpr(C.E)) << printExpr(*TS, C.E);
  }
}

TEST_F(EngineTest, DeterministicAcrossRuns) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  auto Print = [this](const std::vector<Completion> &Results) {
    std::string Out;
    for (const Completion &C : Results)
      Out += std::to_string(C.Score) + " " + printExpr(*TS, C.E) + "\n";
    return Out;
  };
  std::string First = Print(run("point.?*m >= this.?*m", 50));
  std::string Second = Print(run("point.?*m >= this.?*m", 50));
  EXPECT_EQ(First, Second);

  // And across engine instances.
  CompletionEngine Fresh(*P, *Idx);
  std::string Third = Print(Fresh.complete(
      query("point.?*m >= this.?*m"), Site, 50));
  EXPECT_EQ(First, Third);
}

TEST_F(EngineTest, RespectsN) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  EXPECT_EQ(run("?", 3).size(), 3u);
  EXPECT_EQ(run("?", 1).size(), 1u);
}

//===----------------------------------------------------------------------===//
// Suffix semantics
//===----------------------------------------------------------------------===//

TEST_F(EngineTest, NonStarSuffixTakesAtMostOneStep) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  // this.?f: `this` itself (suffix omitted) plus exactly one field lookup.
  for (const Completion &C : run("this.?f", 100)) {
    std::string S = printExpr(*TS, C.E);
    size_t Dots = std::count(S.begin(), S.end(), '.');
    ASSERT_LE(Dots, 1u) << S;
    ASSERT_EQ(S.find("("), std::string::npos) << "?f admits no calls: " << S;
  }
}

TEST_F(EngineTest, MemberSuffixAdmitsZeroArgMethods) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  bool SawCall = false;
  for (const Completion &C : run("shapeStyle.?m", 100))
    SawCall |= printExpr(*TS, C.E) == "shapeStyle.GetSampleGlyph()";
  EXPECT_TRUE(SawCall);
}

TEST_F(EngineTest, StarSuffixReachesDeepChains) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  bool SawTwoStep = false;
  for (const Completion &C : run("shapeStyle.?*m", 200))
    SawTwoStep |= printExpr(*TS, C.E) ==
                  "shapeStyle.GetSampleGlyph().RenderTransformOrigin";
  EXPECT_TRUE(SawTwoStep);
}

TEST_F(EngineTest, SuffixOmittedCompletionComesFirst) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  std::vector<Completion> Results = run("point.?*m", 10);
  ASSERT_FALSE(Results.empty());
  EXPECT_EQ(printExpr(*TS, Results[0].E), "point");
  EXPECT_EQ(Results[0].Score, 0);
}

//===----------------------------------------------------------------------===//
// Holes and expected types
//===----------------------------------------------------------------------===//

TEST_F(EngineTest, HoleEnumeratesLocalsThisAndGlobals) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  std::vector<std::string> Seen;
  for (const Completion &C : run("?", 60))
    Seen.push_back(printExpr(*TS, C.E));
  auto Has = [&Seen](const char *S) {
    return std::find(Seen.begin(), Seen.end(), S) != Seen.end();
  };
  EXPECT_TRUE(Has("point"));
  EXPECT_TRUE(Has("shapeStyle"));
  EXPECT_TRUE(Has("this"));
  EXPECT_TRUE(Has("DynamicGeometry.Math.InfinitePoint"));
}

TEST_F(EngineTest, ExpectedTypeFiltersResults) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  CompletionOptions Opts;
  Opts.ExpectedType = TS->findType("System.Windows.Point");
  for (const Completion &C : run("?", 100, Opts))
    ASSERT_TRUE(TS->implicitlyConvertible(C.E->type(), Opts.ExpectedType))
        << printExpr(*TS, C.E);
}

TEST_F(EngineTest, VoidExpectedTypeKeepsOnlyVoidCalls) {
  load(corpora::PaintCorpus, "Client", "Work");
  CompletionOptions Opts;
  Opts.ExpectedType = TS->voidType();
  std::vector<Completion> Results = run("?({img, size})", 50, Opts);
  ASSERT_FALSE(Results.empty());
  for (const Completion &C : Results)
    ASSERT_EQ(C.E->type(), TS->voidType()) << printExpr(*TS, C.E);
}

//===----------------------------------------------------------------------===//
// Unknown calls
//===----------------------------------------------------------------------===//

TEST_F(EngineTest, UnknownCallPlacesArgumentsInjectively) {
  load(corpora::PaintCorpus, "Client", "Work");
  for (const Completion &C : run("?({img, size})", 50)) {
    const auto *Call = dyn_cast<CallExpr>(C.E);
    ASSERT_NE(Call, nullptr);
    // Each given argument appears exactly once across the call signature.
    std::string S = printExpr(*TS, C.E);
    size_t ImgCount = 0, Pos = 0;
    while ((Pos = S.find("img", Pos)) != std::string::npos) {
      ++ImgCount;
      Pos += 3;
    }
    ASSERT_EQ(ImgCount, 1u) << S;
  }
}

TEST_F(EngineTest, InstanceReceiverIsNeverDontCare) {
  load(corpora::PaintCorpus, "Client", "Work");
  for (const Completion &C : run("?({img, size})", 100)) {
    const auto *Call = cast<CallExpr>(C.E);
    if (Call->receiver()) {
      ASSERT_FALSE(isa<DontCareExpr>(Call->receiver()))
          << printExpr(*TS, C.E);
    }
  }
}

TEST_F(EngineTest, UnknownCallHonorsDontCareArgs) {
  load(corpora::PaintCorpus, "Client", "Work");
  // ?({img, 0}): the 0 reserves an extra position but constrains nothing.
  std::vector<Completion> Results = run("?({img, 0})", 50);
  ASSERT_FALSE(Results.empty());
  for (const Completion &C : Results) {
    const auto *Call = cast<CallExpr>(C.E);
    ASSERT_GE(TS->numCallParams(Call->method()), 2u)
        << printExpr(*TS, C.E);
  }
}

//===----------------------------------------------------------------------===//
// Known calls
//===----------------------------------------------------------------------===//

TEST_F(EngineTest, KnownCallKeepsConcreteArgsFixed) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  for (const Completion &C : run("Distance(point, ?)", 50)) {
    const auto *Call = cast<CallExpr>(C.E);
    ASSERT_EQ(TS->method(Call->method()).Name, "Distance");
    ASSERT_EQ(printExpr(*TS, Call->args()[0]), "point");
  }
}

TEST_F(EngineTest, KnownCallWithBothArgsConcreteYieldsOneResult) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  std::vector<Completion> Results = run("Distance(point, point)", 10);
  ASSERT_EQ(Results.size(), 1u);
  EXPECT_EQ(printExpr(*TS, Results[0].E),
            "DynamicGeometry.Math.Distance(point, point)");
}

//===----------------------------------------------------------------------===//
// Binary queries
//===----------------------------------------------------------------------===//

TEST_F(EngineTest, AssignTargetsMustBeLValues) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  // LHS candidates include zero-arg method calls, which are not assignable;
  // none may survive.
  for (const Completion &C : run("shapeStyle.?m = ?", 100)) {
    const auto *A = cast<AssignExpr>(C.E);
    ASSERT_TRUE(isLValue(A->lhs())) << printExpr(*TS, C.E);
  }
}

TEST_F(EngineTest, ComparisonsOnlyPairComparableTypes) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  for (const Completion &C : run("point.?*m >= this.?*m", 200)) {
    const auto *Cmp = cast<CompareExpr>(C.E);
    ASSERT_TRUE(TS->comparable(Cmp->lhs()->type(), Cmp->rhs()->type()))
        << printExpr(*TS, C.E);
  }
}

TEST_F(EngineTest, AssignmentRequiresConvertibleSides) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  for (const Completion &C : run("this.?f = point.?f", 200)) {
    const auto *A = cast<AssignExpr>(C.E);
    ASSERT_TRUE(TS->assignable(A->lhs()->type(), A->rhs()->type()))
        << printExpr(*TS, C.E);
  }
}

//===----------------------------------------------------------------------===//
// Options
//===----------------------------------------------------------------------===//

TEST_F(EngineTest, DepthDisabledStillTerminatesAndFinds) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  CompletionOptions Opts;
  Opts.Rank = RankingOptions::fromSpec("-d");
  std::vector<Completion> Results = run("Distance(point, ?)", 40, Opts);
  ASSERT_FALSE(Results.empty());
  bool SawChain = false;
  for (const Completion &C : Results)
    SawChain |= printExpr(*TS, C.E).find("this.Center") != std::string::npos;
  EXPECT_TRUE(SawChain);
}

TEST_F(EngineTest, ReachabilityPruningDoesNotChangeResults) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  CompletionOptions NoPrune;
  NoPrune.UseReachabilityPruning = false;

  const PartialExpr *Q = query("Distance(point, ?)");
  std::vector<Completion> With = Engine->complete(Q, Site, 30);
  std::vector<std::string> WithStrs;
  for (const Completion &C : With)
    WithStrs.push_back(printExpr(*TS, C.E));

  std::vector<Completion> Without = Engine->complete(Q, Site, 30, NoPrune);
  std::vector<std::string> WithoutStrs;
  for (const Completion &C : Without)
    WithoutStrs.push_back(printExpr(*TS, C.E));

  EXPECT_EQ(WithStrs, WithoutStrs);
}

TEST_F(EngineTest, RankOfFindsTheGroundTruth) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  // Ground truth: Distance(point, this.Center).
  DiagnosticEngine D2;
  QueryScope Scope{Class, Method, Site.StmtIndex};
  const PartialExpr *Truth =
      parseQueryText("Distance(point, this.Center)", *P, Scope, D2);
  ASSERT_NE(Truth, nullptr);
  const Expr *TruthExpr = cast<ConcretePE>(Truth)->expr();

  size_t Rank = Engine->rankOf(query("Distance(point, ?)"), Site, TruthExpr,
                               50);
  EXPECT_GE(Rank, 1u);
  EXPECT_LE(Rank, 10u);
  // An absent expression ranks 0.
  const PartialExpr *Other = parseQueryText("this.Center", *P, Scope, D2);
  ASSERT_NE(Other, nullptr);
  EXPECT_EQ(Engine->rankOf(query("Distance(point, ?)"), Site,
                           cast<ConcretePE>(Other)->expr(), 50),
            0u);
}

} // namespace
