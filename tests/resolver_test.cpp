//===- tests/resolver_test.cpp - Name resolution and lowering tests -------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "code/ExprPrinter.h"
#include "parser/Frontend.h"

#include <gtest/gtest.h>

using namespace petal;

namespace {

class ResolverTest : public ::testing::Test {
protected:
  bool load(const char *Src) {
    TS = std::make_unique<TypeSystem>();
    P = std::make_unique<Program>(*TS);
    return loadProgramText(Src, *P, Diags);
  }

  std::string diagText() const {
    std::ostringstream OS;
    Diags.print(OS);
    return OS.str();
  }

  /// Returns the printed form of statement \p Idx of Class::Method.
  std::string stmtText(const char *Class, const char *Method, size_t Idx) {
    const CodeClass *CC = findCodeClass(*P, Class);
    if (!CC)
      return "<no class>";
    const CodeMethod *CM = findCodeMethod(*P, *CC, Method);
    if (!CM || Idx >= CM->body().size())
      return "<no stmt>";
    return printExpr(*TS, CM->body()[Idx].Value);
  }

  DiagnosticEngine Diags;
  std::unique_ptr<TypeSystem> TS;
  std::unique_ptr<Program> P;
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

TEST_F(ResolverTest, RegistersTypesBasesAndMembers) {
  ASSERT_TRUE(load(R"(
    namespace Geo {
      interface IShape { }
      class Shape : IShape { double Area; }
      class Rect : Shape { double Width; }
    }
  )")) << diagText();
  TypeId Shape = TS->findType("Geo.Shape");
  TypeId Rect = TS->findType("Geo.Rect");
  ASSERT_TRUE(isValidId(Shape));
  ASSERT_TRUE(isValidId(Rect));
  EXPECT_EQ(TS->type(Rect).BaseClass, Shape);
  EXPECT_EQ(TS->type(Shape).Interfaces.size(), 1u);
  EXPECT_EQ(TS->typeDistance(Rect, TS->objectType()), 2);
  EXPECT_TRUE(isValidId(TS->findField(Rect, "Area"))); // inherited
}

TEST_F(ResolverTest, ForwardReferencesResolve) {
  // `Uses` references `Defined` before its declaration appears.
  ASSERT_TRUE(load(R"(
    class Uses { Defined d; }
    class Defined { int X; }
  )")) << diagText();
  TypeId Uses = TS->findType("Uses");
  FieldId D = TS->findField(Uses, "d");
  EXPECT_EQ(TS->field(D).Type, TS->findType("Defined"));
}

TEST_F(ResolverTest, EnumMembersBecomeStaticFields) {
  ASSERT_TRUE(load("namespace N { enum Edge { Top, Bottom } }"))
      << diagText();
  TypeId Edge = TS->findType("N.Edge");
  FieldId Top = TS->findDeclaredField(Edge, "Top");
  ASSERT_TRUE(isValidId(Top));
  EXPECT_TRUE(TS->field(Top).IsStatic);
  EXPECT_EQ(TS->field(Top).Type, Edge);
}

TEST_F(ResolverTest, DuplicateTypeIsAnError) {
  EXPECT_FALSE(load("class A { } class A { }"));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(ResolverTest, UnknownBaseIsAnError) {
  EXPECT_FALSE(load("class A : Missing { }"));
}

//===----------------------------------------------------------------------===//
// Body resolution
//===----------------------------------------------------------------------===//

TEST_F(ResolverTest, NameResolutionPrecedence) {
  // A local shadows a field; a field is found before a type name.
  ASSERT_TRUE(load(R"(
    class C {
      int value;
      void M(int value) {
        var x = value;
      }
      void N() {
        var y = value;
      }
    }
  )")) << diagText();
  EXPECT_EQ(stmtText("C", "M", 0), "value");       // the parameter
  EXPECT_EQ(stmtText("C", "N", 0), "this.value");  // the field
}

TEST_F(ResolverTest, StaticAccessThroughTypeAndNamespace) {
  ASSERT_TRUE(load(R"(
    namespace Sys.IO {
      class Directory {
        static bool Exists(string path);
      }
    }
    class C {
      void M(string p) {
        Sys.IO.Directory.Exists(p);
      }
    }
  )")) << diagText();
  EXPECT_EQ(stmtText("C", "M", 0), "Sys.IO.Directory.Exists(p)");
}

TEST_F(ResolverTest, InstanceCallsAndChains) {
  ASSERT_TRUE(load(R"(
    class Point { double X; }
    class Line {
      Point p1;
      Point GetEnd();
      void M() {
        var a = p1.X;
        var b = GetEnd().X;
      }
    }
  )")) << diagText();
  EXPECT_EQ(stmtText("Line", "M", 0), "this.p1.X");
  EXPECT_EQ(stmtText("Line", "M", 1), "this.GetEnd().X");
}

TEST_F(ResolverTest, OverloadSelectionPrefersExactMatch) {
  ASSERT_TRUE(load(R"(
    class Shape { }
    class Rect : Shape { }
    class U {
      static int Use(Shape s);
      static int Use(Rect r);
      void M(Rect r) {
        Use(r);
      }
    }
  )")) << diagText();
  // The Rect overload has td 0, the Shape one td 1.
  const CodeClass *CC = findCodeClass(*P, "U");
  const CodeMethod *CM = findCodeMethod(*P, *CC, "M");
  const auto *Call = cast<CallExpr>(CM->body()[0].Value);
  EXPECT_EQ(TS->method(Call->method()).Params[0].Type, TS->findType("Rect"));
}

TEST_F(ResolverTest, ThisInStaticContextIsAnError) {
  EXPECT_FALSE(load(R"(
    class C {
      int f;
      static void M() { var x = this.f; }
    }
  )"));
}

TEST_F(ResolverTest, InstanceFieldInStaticContextIsAnError) {
  EXPECT_FALSE(load(R"(
    class C {
      int f;
      static void M() { var x = f; }
    }
  )"));
}

TEST_F(ResolverTest, NullAssignsToReferenceTypes) {
  ASSERT_TRUE(load(R"(
    class C {
      C next;
      void M() {
        next = null;
        var s = null;
      }
    }
  )")) << diagText();
  EXPECT_EQ(stmtText("C", "M", 0), "this.next = null");
}

TEST_F(ResolverTest, ReturnTypeIsChecked) {
  EXPECT_FALSE(load(R"(
    class C {
      int M() { return "nope"; }
    }
  )"));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(ResolverTest, ComparisonTypeRules) {
  ASSERT_TRUE(load(R"(
    class C {
      void M(int a, double b) {
        a < b;
      }
    }
  )")) << diagText();
  EXPECT_FALSE(load(R"(
    class C {
      void M(string a, int b) {
        a < b;
      }
    }
  )"));
}

TEST_F(ResolverTest, UndeclaredIdentifierIsAnError) {
  EXPECT_FALSE(load("class C { void M() { var x = missing; } }"));
}

//===----------------------------------------------------------------------===//
// Query resolution
//===----------------------------------------------------------------------===//

class QueryResolveTest : public ResolverTest {
protected:
  void loadGeo() {
    ASSERT_TRUE(load(R"(
      namespace G {
        class Point { double X; }
        class Util {
          static double Distance(G.Point a, G.Point b);
        }
      }
      class C {
        G.Point field;
        void M(G.Point p) {
          var d = p.X;
        }
      }
    )")) << diagText();
    Class = findCodeClass(*P, "C");
    Method = findCodeMethod(*P, *Class, "M");
  }

  const PartialExpr *query(const char *Text, size_t StmtIndex = SIZE_MAX) {
    QueryScope Scope{Class, Method, StmtIndex};
    return parseQueryText(Text, *P, Scope, Diags);
  }

  const CodeClass *Class = nullptr;
  const CodeMethod *Method = nullptr;
};

TEST_F(QueryResolveTest, ConcretePartsResolveAgainstScope) {
  loadGeo();
  const PartialExpr *Q = query("?({p, field})");
  ASSERT_NE(Q, nullptr) << diagText();
  const auto *U = cast<UnknownCallPE>(Q);
  ASSERT_EQ(U->args().size(), 2u);
  EXPECT_EQ(printExpr(*TS, cast<ConcretePE>(U->args()[0])->expr()), "p");
  EXPECT_EQ(printExpr(*TS, cast<ConcretePE>(U->args()[1])->expr()),
            "this.field");
}

TEST_F(QueryResolveTest, KnownCallResolvesOverloadSet) {
  loadGeo();
  const PartialExpr *Q = query("Distance(p, ?)");
  ASSERT_NE(Q, nullptr) << diagText();
  const auto *K = cast<KnownCallPE>(Q);
  ASSERT_EQ(K->resolved().size(), 1u);
  EXPECT_EQ(TS->method(K->resolved()[0]).Name, "Distance");
  EXPECT_EQ(K->args().size(), 2u);
}

TEST_F(QueryResolveTest, FullyConcreteCallBecomesConcrete) {
  loadGeo();
  const PartialExpr *Q = query("Distance(p, p)");
  ASSERT_NE(Q, nullptr) << diagText();
  ASSERT_TRUE(isa<ConcretePE>(Q));
  EXPECT_EQ(printExpr(*TS, cast<ConcretePE>(Q)->expr()),
            "G.Util.Distance(p, p)");
}

TEST_F(QueryResolveTest, LocalsRespectTheStatementIndex) {
  loadGeo();
  // At statement 0 the local `d` does not exist yet.
  EXPECT_EQ(query("d.?m", 0), nullptr);
  Diags.clear();
  EXPECT_NE(query("d.?m", 1), nullptr) << diagText();
}

TEST_F(QueryResolveTest, ZeroLiteralIsDontCareInQueries) {
  loadGeo();
  const PartialExpr *Q = query("?({p, 0})");
  ASSERT_NE(Q, nullptr) << diagText();
  const auto *U = cast<UnknownCallPE>(Q);
  EXPECT_TRUE(isa<DontCarePE>(U->args()[1]));
}

TEST_F(QueryResolveTest, UnknownMethodNameIsAnError) {
  loadGeo();
  EXPECT_EQ(query("NoSuchMethod(p, ?)"), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(QueryResolveTest, InstanceReceiverBecomesFirstArgument) {
  ASSERT_TRUE(load(R"(
    class Buf {
      Buf Append(string s);
      void M(Buf b, string s) {
      }
    }
  )")) << diagText();
  Class = findCodeClass(*P, "Buf");
  Method = findCodeMethod(*P, *Class, "M");
  const PartialExpr *Q = query("b.Append(?)");
  ASSERT_NE(Q, nullptr) << diagText();
  const auto *K = cast<KnownCallPE>(Q);
  // Receiver-as-first-argument: 2 call-signature args.
  ASSERT_EQ(K->args().size(), 2u);
  EXPECT_TRUE(isa<ConcretePE>(K->args()[0]));
  EXPECT_TRUE(isa<HolePE>(K->args()[1]));
}

} // namespace
