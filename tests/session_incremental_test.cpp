//===- tests/session_incremental_test.cpp - incremental build property ---===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
//
// The correctness bar for incremental document rebuilds (DESIGN.md §12):
// for every edit shape, a DocumentState built incrementally on top of the
// previous version must produce completions *bit-identical* to a
// DocumentState built from scratch over the same text — and must be
// classified correctly (shared layers are recorded exactly, never
// optimistically). The concurrency case — many incremental states aliasing
// one version's frozen index tables, queried from 8 threads — runs under
// ThreadSanitizer in scripts/ci.sh.
//
//===----------------------------------------------------------------------===//

#include "TestCorpora.h"

#include "service/Session.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace petal;

namespace {

/// GeometryCorpus plus a second body-bearing class, so edits can touch one
/// declaration unit and leave the other's completions provably unchanged.
std::string baseText() {
  return std::string(corpora::GeometryCorpus) +
         "class Scratch {\n"
         "  void Play(System.Windows.Point point,\n"
         "            DynamicGeometry.ShapeStyle style) {\n"
         "    return;\n"
         "  }\n"
         "}\n";
}

/// Replaces the first occurrence of \p From in \p S with \p To.
std::string replaceFirst(std::string S, const std::string &From,
                         const std::string &To) {
  size_t At = S.find(From);
  EXPECT_NE(At, std::string::npos) << From;
  if (At != std::string::npos)
    S.replace(At, From.size(), To);
  return S;
}

/// Replaces the last occurrence of \p From in \p S with \p To.
std::string replaceLast(std::string S, const std::string &From,
                        const std::string &To) {
  size_t At = S.rfind(From);
  EXPECT_NE(At, std::string::npos) << From;
  if (At != std::string::npos)
    S.replace(At, From.size(), To);
  return S;
}

struct EditShape {
  const char *Name;
  std::string Text;
  DocumentState::BuildKind Want;
};

/// Every edit shape the service distinguishes, with the classification the
/// incremental builder must assign. The last `return;` in baseText() is
/// Scratch.Play's body; the first is EllipseArc.Examine's.
std::vector<EditShape> editShapes() {
  using BK = DocumentState::BuildKind;
  const std::string Base = baseText();
  std::vector<EditShape> Shapes;
  // Token-identical: whitespace only. Everything is shareable.
  Shapes.push_back({"noop-whitespace",
                    "\n\n  " + replaceLast(Base, "return;", "return  ;") +
                        "   \n",
                    BK::IncrementalNoop});
  // Body-only edits: the type graph is untouched, the code layer and the
  // corpus-wide abstract-type solution are not.
  Shapes.push_back({"body-edit-scratch",
                    replaceLast(Base, "return;",
                                "var tmp = point;\n    return;"),
                    BK::IncrementalBody});
  Shapes.push_back({"body-edit-examine",
                    replaceFirst(Base, "return;",
                                 "var q = point;\n      return;"),
                    BK::IncrementalBody});
  // Signature change (parameter rename participates in the unit's
  // signature hash): full rebuild.
  Shapes.push_back({"sig-edit-param-rename",
                    replaceFirst(Base, "System.Windows.Point point,",
                                 "System.Windows.Point pt,"),
                    BK::Full});
  Shapes.push_back({"add-class",
                    Base + "class Extra {\n"
                           "  System.Windows.Point Spot;\n"
                           "}\n",
                    BK::Full});
  Shapes.push_back({"remove-class", std::string(corpora::GeometryCorpus),
                    BK::Full});
  Shapes.push_back({"add-field",
                    replaceFirst(Base, "class Scratch {\n",
                                 "class Scratch {\n  double Weight;\n"),
                    BK::Full});
  Shapes.push_back({"remove-field",
                    replaceFirst(Base,
                                 "    System.Windows.Point BeginLocation;\n",
                                 ""),
                    BK::Full});
  return Shapes;
}

CompleteSpec spec(const std::string &Class, const std::string &Method,
                  const std::string &Query) {
  CompleteSpec S;
  S.Class = Class;
  S.Method = Method;
  S.Query = Query;
  S.N = 10;
  return S;
}

/// The query battery run against every edit shape: both classes, with the
/// abstract-type term (the only corpus-wide ranking input) on, off, and
/// explained.
std::vector<CompleteSpec> queryBattery() {
  std::vector<CompleteSpec> Qs;
  Qs.push_back(spec("EllipseArc", "Examine", "?({point})"));
  Qs.push_back(spec("EllipseArc", "Examine", "Distance(point, ?)"));
  Qs.push_back(spec("Scratch", "Play", "?({point})"));
  CompleteSpec Explained = spec("EllipseArc", "Examine", "?({point})");
  Explained.Opts.Explain = true;
  Qs.push_back(Explained);
  CompleteSpec NoAbs = spec("EllipseArc", "Examine", "?({point})");
  NoAbs.Opts.UseAbstractTypes = false;
  Qs.push_back(NoAbs);
  return Qs;
}

std::unique_ptr<DocumentState> build(const std::string &Text, int64_t V,
                                     const DocumentState *Prev) {
  std::string Error;
  std::unique_ptr<DocumentState> Doc =
      buildDocumentState("doc.cs", Text, V, /*DocThreads=*/1, Error, Prev);
  EXPECT_NE(Doc, nullptr) << Error;
  return Doc;
}

TEST(SessionIncrementalTest, EveryEditShapeMatchesAFreshBuildBitForBit) {
  std::unique_ptr<DocumentState> Base = build(baseText(), 1, nullptr);
  ASSERT_NE(Base, nullptr);
  EXPECT_EQ(Base->Kind, DocumentState::BuildKind::Full);

  for (const EditShape &Shape : editShapes()) {
    SCOPED_TRACE(Shape.Name);
    std::unique_ptr<DocumentState> Inc =
        build(Shape.Text, 2, Base.get());
    // The fresh twin: same text, built from scratch.
    std::unique_ptr<DocumentState> Fresh = build(Shape.Text, 2, nullptr);
    ASSERT_NE(Inc, nullptr);
    ASSERT_NE(Fresh, nullptr);

    // Classification is exact, and the sharing it claims is real.
    EXPECT_EQ(Inc->Kind, Shape.Want);
    EXPECT_EQ(Fresh->Kind, DocumentState::BuildKind::Full);
    if (Inc->incremental()) {
      EXPECT_EQ(Inc->TS.get(), Base->TS.get());
      EXPECT_TRUE(Inc->Idx->sharesTypeGraphTables());
      EXPECT_NE(Inc->P.get(), Base->P.get());
    } else {
      EXPECT_NE(Inc->TS.get(), Base->TS.get());
      EXPECT_FALSE(Inc->Idx->sharesTypeGraphTables());
    }
    EXPECT_EQ(Inc->sharedSolution(),
              Inc->Exec->sharedSolution() == Base->Exec->sharedSolution());

    for (const CompleteSpec &Q : queryBattery()) {
      SCOPED_TRACE(Q.Class + "." + Q.Method + " " + Q.Query);
      QueryOutcome A = runCompletion(*Inc, Q);
      QueryOutcome B = runCompletion(*Fresh, Q);
      // Shapes that delete the queried class must fail identically.
      ASSERT_EQ(A.Ok, B.Ok);
      if (!A.Ok) {
        EXPECT_EQ(A.ErrCode, B.ErrCode);
        continue;
      }
      EXPECT_EQ(A.Completions.write(), B.Completions.write());
      EXPECT_EQ(A.ClassQualName, B.ClassQualName);
    }
  }
}

TEST(SessionIncrementalTest, ChainedEditsStayBitIdentical) {
  // Incremental states stacked on incremental states: v1 full, v2 body
  // edit, v3 no-op over v2, v4 body edit over v3. Each link must still
  // match its fresh twin.
  const std::string V2 =
      replaceLast(baseText(), "return;", "var tmp = point;\n    return;");
  const std::string V3 = V2 + "\n\n";
  const std::string V4 = replaceFirst(V3, "return;",
                                      "var q = shapeStyle;\n      return;");

  std::unique_ptr<DocumentState> D1 = build(baseText(), 1, nullptr);
  std::unique_ptr<DocumentState> D2 = build(V2, 2, D1.get());
  std::unique_ptr<DocumentState> D3 = build(V3, 3, D2.get());
  std::unique_ptr<DocumentState> D4 = build(V4, 4, D3.get());
  ASSERT_TRUE(D1 && D2 && D3 && D4);
  EXPECT_EQ(D2->Kind, DocumentState::BuildKind::IncrementalBody);
  EXPECT_EQ(D3->Kind, DocumentState::BuildKind::IncrementalNoop);
  EXPECT_EQ(D4->Kind, DocumentState::BuildKind::IncrementalBody);
  // The frozen tables alias all the way down the chain.
  EXPECT_EQ(D4->TS.get(), D1->TS.get());
  // The no-op link adopted its predecessor's solution; the body edit after
  // it did not.
  EXPECT_EQ(D3->Exec->sharedSolution(), D2->Exec->sharedSolution());
  EXPECT_NE(D4->Exec->sharedSolution(), D3->Exec->sharedSolution());

  std::unique_ptr<DocumentState> F4 = build(V4, 4, nullptr);
  for (const CompleteSpec &Q : queryBattery()) {
    SCOPED_TRACE(Q.Class + "." + Q.Method + " " + Q.Query);
    QueryOutcome A = runCompletion(*D4, Q);
    QueryOutcome B = runCompletion(*F4, Q);
    ASSERT_TRUE(A.Ok && B.Ok) << A.ErrMsg << " / " << B.ErrMsg;
    EXPECT_EQ(A.Completions.write(), B.Completions.write());
  }
}

TEST(SessionIncrementalTest, SharedFrozenTablesSurviveConcurrentQueries) {
  // Eight incremental successors of one base version, all aliasing its
  // TypeSystem and frozen index tables, each queried from its own thread
  // (sessions are strands: concurrency is *across* DocumentStates, never
  // within one). TSan must observe no races on the shared tables.
  std::unique_ptr<DocumentState> Base = build(baseText(), 1, nullptr);
  ASSERT_NE(Base, nullptr);

  constexpr int NumThreads = 8;
  std::vector<std::unique_ptr<DocumentState>> Docs;
  for (int I = 0; I != NumThreads; ++I) {
    std::string Body = "var tmp = point;\n    ";
    for (int J = 0; J != I; ++J)
      Body += "var extra" + std::to_string(J) + " = point;\n    ";
    std::unique_ptr<DocumentState> D = build(
        replaceLast(baseText(), "return;", Body + "return;"), 2, Base.get());
    ASSERT_NE(D, nullptr);
    ASSERT_EQ(D->Kind, DocumentState::BuildKind::IncrementalBody);
    ASSERT_EQ(D->TS.get(), Base->TS.get());
    Docs.push_back(std::move(D));
  }

  const std::vector<CompleteSpec> Qs = queryBattery();
  std::vector<std::string> FirstAnswer(NumThreads);
  std::vector<std::thread> Threads;
  for (int I = 0; I != NumThreads; ++I)
    Threads.emplace_back([&, I] {
      for (int Round = 0; Round != 3; ++Round)
        for (const CompleteSpec &Q : Qs) {
          QueryOutcome O = runCompletion(*Docs[I], Q);
          ASSERT_TRUE(O.Ok) << O.ErrMsg;
          std::string Bytes = Q.Query + "|" + O.Completions.write();
          if (Round == 0 && &Q == &Qs.front())
            FirstAnswer[I] = Bytes;
          else if (&Q == &Qs.front())
            EXPECT_EQ(Bytes, FirstAnswer[I]);
        }
    });
  for (std::thread &T : Threads)
    T.join();
}

} // namespace
