//===- tests/partial_test.cpp - Partial-expression AST tests --------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "TestCorpora.h"

#include "parser/Frontend.h"
#include "partial/PartialExpr.h"

#include <gtest/gtest.h>

using namespace petal;

namespace {

TEST(PartialExprTest, SuffixSpellings) {
  EXPECT_STREQ(suffixSpelling(SuffixKind::Field), ".?f");
  EXPECT_STREQ(suffixSpelling(SuffixKind::FieldStar), ".?*f");
  EXPECT_STREQ(suffixSpelling(SuffixKind::Member), ".?m");
  EXPECT_STREQ(suffixSpelling(SuffixKind::MemberStar), ".?*m");
}

TEST(PartialExprTest, SuffixPredicates) {
  EXPECT_TRUE(isStarSuffix(SuffixKind::FieldStar));
  EXPECT_TRUE(isStarSuffix(SuffixKind::MemberStar));
  EXPECT_FALSE(isStarSuffix(SuffixKind::Field));
  EXPECT_TRUE(suffixAllowsMethods(SuffixKind::Member));
  EXPECT_TRUE(suffixAllowsMethods(SuffixKind::MemberStar));
  EXPECT_FALSE(suffixAllowsMethods(SuffixKind::FieldStar));
}

/// Round-trip fixture: parse a query, print it, expect the original text
/// (modulo resolved qualification).
class QueryPrintTest : public ::testing::Test {
protected:
  void SetUp() override {
    TS = std::make_unique<TypeSystem>();
    P = std::make_unique<Program>(*TS);
    ASSERT_TRUE(loadProgramText(corpora::GeometryCorpus, *P, Diags));
    Class = findCodeClass(*P, "EllipseArc");
    Method = findCodeMethod(*P, *Class, "Examine");
  }

  std::string printQuery(const char *Text) {
    QueryScope Scope{Class, Method, static_cast<size_t>(-1)};
    const PartialExpr *Q = parseQueryText(Text, *P, Scope, Diags);
    if (!Q) {
      std::ostringstream OS;
      Diags.print(OS);
      return "<error: " + OS.str() + ">";
    }
    return printPartialExpr(*TS, Q);
  }

  DiagnosticEngine Diags;
  std::unique_ptr<TypeSystem> TS;
  std::unique_ptr<Program> P;
  const CodeClass *Class = nullptr;
  const CodeMethod *Method = nullptr;
};

TEST_F(QueryPrintTest, RoundTripsTheMainForms) {
  EXPECT_EQ(printQuery("?"), "?");
  EXPECT_EQ(printQuery("point.?*m"), "point.?*m");
  EXPECT_EQ(printQuery("this.?f"), "this.?f");
  EXPECT_EQ(printQuery("?({point, this})"), "?({point, this})");
  EXPECT_EQ(printQuery("point.?*m >= this.?*m"),
            "point.?*m >= this.?*m");
  EXPECT_EQ(printQuery("Distance(point, ?)"), "Distance(point, ?)");
  EXPECT_EQ(printQuery("point.?m.?m"), "point.?m.?m");
}

TEST_F(QueryPrintTest, ConcretePartsPrintResolved) {
  // `shape` resolves to the implicit-this field.
  EXPECT_EQ(printQuery("shape.?f"), "this.shape.?f");
}

TEST_F(QueryPrintTest, IsFullyConcrete) {
  QueryScope Scope{Class, Method, static_cast<size_t>(-1)};
  const PartialExpr *Hole = parseQueryText("?", *P, Scope, Diags);
  EXPECT_FALSE(isFullyConcrete(Hole));
  const PartialExpr *Conc = parseQueryText("point", *P, Scope, Diags);
  EXPECT_TRUE(isFullyConcrete(Conc));
  const PartialExpr *Cmp =
      parseQueryText("point.X >= point.Y", *P, Scope, Diags);
  EXPECT_TRUE(isFullyConcrete(Cmp));
  const PartialExpr *Mixed =
      parseQueryText("point.?f >= point.Y", *P, Scope, Diags);
  EXPECT_FALSE(isFullyConcrete(Mixed));
}

} // namespace
