//===- tests/eval_test.cpp - Evaluation-harness tests ---------------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "corpus/Generator.h"
#include "eval/Attribution.h"
#include "eval/Experiments.h"
#include "eval/Intellisense.h"
#include "parser/Frontend.h"

#include <gtest/gtest.h>

using namespace petal;

namespace {

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(MetricsTest, RankDistributionCounts) {
  RankDistribution D;
  D.add(1);
  D.add(5);
  D.add(15);
  D.add(0); // not found
  EXPECT_EQ(D.total(), 4u);
  EXPECT_EQ(D.withinTop(1), 1u);
  EXPECT_EQ(D.withinTop(10), 2u);
  EXPECT_EQ(D.withinTop(20), 3u);
  EXPECT_DOUBLE_EQ(D.fracWithin(10), 0.5);

  RankDistribution E;
  E.add(2);
  D.merge(E);
  EXPECT_EQ(D.total(), 5u);
  EXPECT_EQ(D.withinTop(10), 3u);
}

TEST(MetricsTest, EmptyDistribution) {
  RankDistribution D;
  EXPECT_EQ(D.total(), 0u);
  EXPECT_DOUBLE_EQ(D.fracWithin(10), 0.0);
}

TEST(MetricsTest, LatencyPercentiles) {
  LatencyData L;
  for (double V : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0})
    L.add(V);
  EXPECT_DOUBLE_EQ(L.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(L.percentile(100), 10.0);
  EXPECT_NEAR(L.percentile(50), 5.5, 1e-9);
  EXPECT_DOUBLE_EQ(L.fracUnder(5.5), 0.5);
  EXPECT_DOUBLE_EQ(L.fracUnder(100), 1.0);
}

//===----------------------------------------------------------------------===//
// Harvest and classification
//===----------------------------------------------------------------------===//

class HarvestTest : public ::testing::Test {
protected:
  void load(const char *Src) {
    TS = std::make_unique<TypeSystem>();
    P = std::make_unique<Program>(*TS);
    std::ostringstream OS;
    bool Ok = loadProgramText(Src, *P, Diags);
    Diags.print(OS);
    ASSERT_TRUE(Ok) << OS.str();
  }

  DiagnosticEngine Diags;
  std::unique_ptr<TypeSystem> TS;
  std::unique_ptr<Program> P;
};

TEST_F(HarvestTest, CollectsTopLevelSites) {
  load(R"(
    class Point { double X; }
    class C {
      Point p;
      static void Consume(Point q);
      void M(Point a) {
        Consume(a);
        p = a;
        a.X < p.X;
        var t = a.X;
      }
    }
  )");
  HarvestResult H = harvestProgram(*P);
  EXPECT_EQ(H.Calls.size(), 1u);
  EXPECT_EQ(H.Assigns.size(), 1u);
  EXPECT_EQ(H.Compares.size(), 1u);
  EXPECT_EQ(H.Calls[0].Site.StmtIndex, 0u);
  EXPECT_EQ(H.Compares[0].Site.StmtIndex, 2u);
}

TEST_F(HarvestTest, ClassifiesArgumentForms) {
  load(R"(
    class Point { double X; Point Mirror(); }
    class C {
      Point field;
      static Point Global;
      void M(Point a) {
        var t = a.X;
      }
    }
  )");
  const CodeClass *CC = findCodeClass(*P, "C");
  const CodeMethod *CM = findCodeMethod(*P, *CC, "M");
  Arena A;
  ExprFactory F(*TS, A);
  TypeId PointTy = TS->findType("Point");
  TypeId CTy = TS->findType("C");
  FieldId FieldF = TS->findField(CTy, "field");
  FieldId GlobalF = TS->findField(CTy, "Global");
  FieldId XF = TS->findField(PointTy, "X");
  MethodId Mirror = TS->findMethods(PointTy, "Mirror")[0];

  const Expr *Var = F.var(*CM, 0);
  EXPECT_EQ(classifyExprForm(Var), ExprForm::LocalVar);
  EXPECT_EQ(classifyExprForm(F.thisRef(CTy)), ExprForm::This);
  const Expr *ThisField = F.fieldAccess(F.thisRef(CTy), FieldF);
  EXPECT_EQ(classifyExprForm(ThisField), ExprForm::FieldLookup);
  EXPECT_EQ(classifyExprForm(F.fieldAccess(Var, XF)), ExprForm::FieldLookup);
  EXPECT_EQ(classifyExprForm(F.fieldAccess(ThisField, XF)),
            ExprForm::DeepLookup);
  EXPECT_EQ(classifyExprForm(F.call(Mirror, Var, {})), ExprForm::DeepLookup);
  EXPECT_EQ(classifyExprForm(F.fieldAccess(F.typeRef(CTy), GlobalF)),
            ExprForm::Global);
  EXPECT_EQ(classifyExprForm(F.intLit(3)), ExprForm::NotGuessable);
  EXPECT_EQ(classifyExprForm(F.nullLit()), ExprForm::NotGuessable);
}

//===----------------------------------------------------------------------===//
// Intellisense baseline
//===----------------------------------------------------------------------===//

TEST_F(HarvestTest, IntellisenseRankIsAlphabetic) {
  load(R"(
    class Widget {
      void Apply();
      void Zap();
      void Move(int dx);
      int Size;
      static void Ignore();
    }
    class C {
      void M(Widget w) {
        w.Move(3);
        w.Zap();
      }
    }
  )");
  HarvestResult H = harvestProgram(*P);
  ASSERT_EQ(H.Calls.size(), 2u);
  // Instance members of Widget, alphabetized: Apply, Move, Size, Zap.
  EXPECT_EQ(intellisenseRank(*TS, H.Calls[0].Call), 2u); // Move
  EXPECT_EQ(intellisenseRank(*TS, H.Calls[1].Call), 4u); // Zap
}

TEST_F(HarvestTest, IntellisenseStaticCallsListStaticMembers) {
  load(R"(
    class Util {
      static void Alpha();
      static void Beta();
      void Instance();
    }
    class C {
      void M() {
        Util.Beta();
      }
    }
  )");
  HarvestResult H = harvestProgram(*P);
  ASSERT_EQ(H.Calls.size(), 1u);
  // Static members: Alpha, Beta — Instance is not listed.
  EXPECT_EQ(intellisenseRank(*TS, H.Calls[0].Call), 2u);
}

//===----------------------------------------------------------------------===//
// Experiment drivers on a miniature corpus
//===----------------------------------------------------------------------===//

class ExperimentTest : public ::testing::Test {
protected:
  void SetUp() override {
    TS = std::make_unique<TypeSystem>();
    P = std::make_unique<Program>(*TS);
    ASSERT_TRUE(loadProgramText(R"(
      namespace App {
        class Point {
          double X;
          double Y;
        }
        class Rect {
          Point TopLeft;
          Point Size;
        }
        class Util {
          static double Distance(App.Point a, App.Point b);
          static App.Point Middle(App.Point a, App.Point b);
          static bool Check(object o);
        }
      }
      class Client {
        App.Rect box;
        void M(App.Point p, App.Point q) {
          App.Util.Distance(p, q);
          App.Util.Middle(q, p);
          box.TopLeft = p;
          p.X < q.X;
          p.Y >= box.TopLeft.Y;
        }
      }
    )", *P, Diags));
    Idx = std::make_unique<CompletionIndexes>(*P);
  }

  DiagnosticEngine Diags;
  std::unique_ptr<TypeSystem> TS;
  std::unique_ptr<Program> P;
  std::unique_ptr<CompletionIndexes> Idx;
};

TEST_F(ExperimentTest, MethodPredictionFindsTheCallees) {
  Evaluator Ev(*P, *Idx, RankingOptions::all());
  MethodPredictionData Data = Ev.runMethodPrediction(true, true);
  ASSERT_EQ(Data.Best.total(), 2u);
  // Both calls should be easily in the top 10 of this tiny corpus.
  EXPECT_EQ(Data.Best.withinTop(10), 2u);
  EXPECT_EQ(Data.Static.total(), 2u);
  EXPECT_EQ(Data.Instance.total(), 0u);
  EXPECT_EQ(Data.RankDiff.size(), 2u);
  EXPECT_EQ(Data.BestKnownReturn.total(), 2u);
  // Known return type can only help.
  EXPECT_GE(Data.BestKnownReturn.withinTop(10), Data.Best.withinTop(10));
  // Fig. 10 bookkeeping: both calls have 2 call-signature args.
  ASSERT_TRUE(Data.ByArity.count(2));
  EXPECT_EQ(Data.ByArity.at(2).Calls, 2u);
}

TEST_F(ExperimentTest, ArgumentPredictionReplaysEveryGuessableArg) {
  Evaluator Ev(*P, *Idx, RankingOptions::all());
  ArgumentPredictionData Data = Ev.runArgumentPrediction();
  // 2 calls x 2 args, all guessable locals.
  EXPECT_EQ(Data.TotalArgs, 4u);
  EXPECT_EQ(Data.NotGuessable, 0u);
  EXPECT_EQ(Data.All.total(), 4u);
  EXPECT_EQ(Data.All.withinTop(10), 4u);
  // All four answers are bare locals, so NoVars is empty.
  EXPECT_EQ(Data.NoVars.total(), 0u);
}

TEST_F(ExperimentTest, AssignmentExperimentStripsTheTargetLookup) {
  Evaluator Ev(*P, *Idx, RankingOptions::all());
  AssignmentData Data = Ev.runAssignments();
  // box.TopLeft = p: target ends in a lookup, source is a bare local.
  EXPECT_EQ(Data.Target.total(), 1u);
  EXPECT_EQ(Data.Source.total(), 0u);
  EXPECT_EQ(Data.Both.total(), 0u);
  EXPECT_GE(Data.Target.withinTop(10), 1u);
}

TEST_F(ExperimentTest, ComparisonExperimentHandlesBothDepths) {
  Evaluator Ev(*P, *Idx, RankingOptions::all());
  ComparisonData Data = Ev.runComparisons();
  // p.X < q.X: one lookup each side. p.Y >= box.TopLeft.Y: one left, two
  // right.
  EXPECT_EQ(Data.Left.total(), 2u);
  EXPECT_EQ(Data.Right.total(), 2u);
  EXPECT_EQ(Data.Both.total(), 2u);
  EXPECT_EQ(Data.TwoLeft.total(), 0u);
  EXPECT_EQ(Data.TwoRight.total(), 1u);
  EXPECT_EQ(Data.Left.withinTop(10), 2u);
}

TEST_F(ExperimentTest, LatencyIsRecordedPerQuery) {
  Evaluator Ev(*P, *Idx, RankingOptions::all());
  Ev.runMethodPrediction(false, false);
  EXPECT_GT(Ev.latency().Millis.size(), 0u);
}

TEST_F(ExperimentTest, TermAttributionLedgerIsConsistent) {
  TermAttributionReport R =
      runTermAttribution(*P, *Idx, RankingOptions::all());
  // Every replayed site lands in exactly one outcome bucket.
  EXPECT_EQ(R.Sites,
            R.OracleAtRank1 + R.OracleTied + R.OracleBelow + R.OracleMissing);
  EXPECT_EQ(R.Sites, 2u); // the two Util calls have guessable args
  // Margins and separating sites exist only when something ranked below.
  for (ScoreTerm Term : AllScoreTerms) {
    size_t I = static_cast<size_t>(Term);
    if (R.OracleBelow == 0) {
      EXPECT_EQ(R.SeparatingSites[I], 0u);
      EXPECT_EQ(R.MarginSum[I], 0);
    }
    EXPECT_LE(R.SeparatingSites[I], R.OracleBelow);
    EXPECT_GE(R.MarginSum[I], 0);
    EXPECT_GE(R.SavingsSum[I], 0);
  }
  EXPECT_NE(R.toString().find("term attribution over 2 call sites"),
            std::string::npos);
}

TEST(AttributionOnGeneratedCorpus, ThreadCountIndependent) {
  ProjectProfile Prof = paperProjectProfiles(0.15)[5];
  TypeSystem TS;
  Program P(TS);
  CorpusGenerator Gen(Prof);
  Gen.generate(P);
  CompletionIndexes Idx(P);
  TermAttributionReport Serial =
      runTermAttribution(P, Idx, RankingOptions::all(), 20, 1);
  TermAttributionReport Threaded =
      runTermAttribution(P, Idx, RankingOptions::all(), 20, 4);
  EXPECT_GT(Serial.Sites, 0u);
  EXPECT_EQ(Serial.toString(), Threaded.toString());
}

TEST(EvaluatorOnGeneratedCorpus, DeterministicResults) {
  ProjectProfile Prof = paperProjectProfiles(0.15)[5];
  auto RunOnce = [&Prof]() {
    TypeSystem TS;
    Program P(TS);
    CorpusGenerator Gen(Prof);
    Gen.generate(P);
    CompletionIndexes Idx(P);
    Evaluator Ev(P, Idx, RankingOptions::all());
    MethodPredictionData Data = Ev.runMethodPrediction(false, false);
    return Data.Best.ranks();
  };
  EXPECT_EQ(RunOnce(), RunOnce());
}

} // namespace
