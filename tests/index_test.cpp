//===- tests/index_test.cpp - Method/member/reachability index tests ------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "corpus/Generator.h"
#include "index/MemberCache.h"
#include "index/MethodIndex.h"
#include "index/ReachabilityIndex.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace petal;

namespace {

//===----------------------------------------------------------------------===//
// MethodIndex
//===----------------------------------------------------------------------===//

class MethodIndexTest : public ::testing::Test {
protected:
  void SetUp() override {
    Ns = TS.getOrAddNamespace("M");
    Shape = TS.addType("Shape", Ns, TypeKind::Class);
    Rect = TS.addType("Rect", Ns, TypeKind::Class, Shape);
    Other = TS.addType("Other", Ns, TypeKind::Class);
    TakesShape = TS.addMethod(Other, "TakesShape", TS.voidType(),
                              {{"s", Shape}}, /*IsStatic=*/true);
    TakesRect = TS.addMethod(Other, "TakesRect", TS.voidType(), {{"r", Rect}},
                             /*IsStatic=*/true);
    TakesObject = TS.addMethod(Other, "TakesObject", TS.voidType(),
                               {{"o", TS.objectType()}}, /*IsStatic=*/true);
    OnShape = TS.addMethod(Shape, "Scale", TS.voidType(),
                           {{"by", TS.doubleType()}});
  }

  TypeSystem TS;
  NamespaceId Ns;
  TypeId Shape, Rect, Other;
  MethodId TakesShape, TakesRect, TakesObject, OnShape;
};

TEST_F(MethodIndexTest, ExactBucketsKeyOnDeclaredTypes) {
  MethodIndex Idx(TS);
  const auto &ShapeBucket = Idx.exactBucket(Shape);
  // Shape appears as TakesShape's param and as Scale's receiver slot.
  EXPECT_NE(std::find(ShapeBucket.begin(), ShapeBucket.end(), TakesShape),
            ShapeBucket.end());
  EXPECT_NE(std::find(ShapeBucket.begin(), ShapeBucket.end(), OnShape),
            ShapeBucket.end());
  EXPECT_EQ(std::find(ShapeBucket.begin(), ShapeBucket.end(), TakesRect),
            ShapeBucket.end());
}

TEST_F(MethodIndexTest, CandidatesWalkSupertypes) {
  MethodIndex Idx(TS);
  const auto &ForRect = Idx.candidatesForArgType(Rect);
  std::set<MethodId> S(ForRect.begin(), ForRect.end());
  // A Rect argument fits Rect, Shape, and Object parameters.
  EXPECT_TRUE(S.count(TakesRect));
  EXPECT_TRUE(S.count(TakesShape));
  EXPECT_TRUE(S.count(TakesObject));
  EXPECT_TRUE(S.count(OnShape)); // receiver position

  const auto &ForShape = Idx.candidatesForArgType(Shape);
  std::set<MethodId> S2(ForShape.begin(), ForShape.end());
  EXPECT_FALSE(S2.count(TakesRect)); // Shape does not fit a Rect param
}

TEST_F(MethodIndexTest, NearerBucketsComeFirst) {
  MethodIndex Idx(TS);
  const auto &ForRect = Idx.candidatesForArgType(Rect);
  auto Pos = [&](MethodId M) {
    return std::find(ForRect.begin(), ForRect.end(), M) - ForRect.begin();
  };
  // "each method index visited will give progressively worse ranked
  // results" — exact-type methods precede supertype methods.
  EXPECT_LT(Pos(TakesRect), Pos(TakesShape));
  EXPECT_LT(Pos(TakesShape), Pos(TakesObject));
}

/// Property: over a generated corpus, candidatesForArgType(T) equals the
/// brute-force set of methods with >= 1 call-signature parameter T converts
/// to.
TEST(MethodIndexPropertyTest, MatchesBruteForceOnGeneratedCorpus) {
  ProjectProfile Prof = paperProjectProfiles(0.2)[0];
  TypeSystem TS;
  Program P(TS);
  CorpusGenerator Gen(Prof);
  Gen.generate(P);
  MethodIndex Idx(TS);

  for (size_t T = 0; T != TS.numTypes(); ++T) {
    TypeId Ty = static_cast<TypeId>(T);
    // void has no values; the null pseudo-type converts via a special rule,
    // not via supertype edges, and the engine never indexes on it.
    if (TS.type(Ty).Kind == TypeKind::Void || Ty == TS.nullType())
      continue;
    std::set<MethodId> Expected;
    for (size_t M = 0; M != TS.numMethods(); ++M) {
      MethodId Id = static_cast<MethodId>(M);
      for (size_t I = 0, N = TS.numCallParams(Id); I != N; ++I)
        if (TS.implicitlyConvertible(Ty, TS.callParamType(Id, I))) {
          Expected.insert(Id);
          break;
        }
    }
    const auto &Got = Idx.candidatesForArgType(Ty);
    std::set<MethodId> GotSet(Got.begin(), Got.end());
    ASSERT_EQ(GotSet, Expected) << "type " << TS.qualifiedName(Ty);
    ASSERT_EQ(Got.size(), GotSet.size()) << "duplicates for type " << T;
  }
}

//===----------------------------------------------------------------------===//
// MemberCache
//===----------------------------------------------------------------------===//

TEST(MemberCacheTest, FieldsFirstThenZeroArgMethods) {
  TypeSystem TS;
  NamespaceId Ns = TS.getOrAddNamespace("N");
  TypeId C = TS.addType("C", Ns, TypeKind::Class);
  TS.addField(C, "F", TS.intType());
  TS.addField(C, "S", TS.intType(), /*IsStatic=*/true); // excluded
  TS.addMethod(C, "Get", TS.intType(), {});
  TS.addMethod(C, "WithArg", TS.intType(), {{"x", TS.intType()}}); // excluded
  TS.addMethod(C, "Void", TS.voidType(), {});                      // excluded
  TS.addMethod(C, "Static", TS.intType(), {}, /*IsStatic=*/true);  // excluded

  MemberCache MC(TS);
  const auto &Edges = MC.edges(C);
  ASSERT_EQ(Edges.size(), 2u);
  EXPECT_TRUE(Edges[0].IsField);
  EXPECT_FALSE(Edges[1].IsField);
  EXPECT_EQ(MC.numFieldEdges(C), 1u);
}

TEST(MemberCacheTest, IncludesInheritedMembers) {
  TypeSystem TS;
  NamespaceId Ns = TS.getOrAddNamespace("N");
  TypeId Base = TS.addType("Base", Ns, TypeKind::Class);
  TypeId Derived = TS.addType("Derived", Ns, TypeKind::Class, Base);
  TS.addField(Base, "F", TS.intType());
  TS.addMethod(Base, "Get", TS.intType(), {});

  MemberCache MC(TS);
  EXPECT_EQ(MC.edges(Derived).size(), 2u);
  EXPECT_TRUE(MC.edges(TS.intType()).empty());
}

//===----------------------------------------------------------------------===//
// ReachabilityIndex
//===----------------------------------------------------------------------===//

class ReachTest : public ::testing::Test {
protected:
  void SetUp() override {
    // Line --p1--> Point --x--> double; Line --GetStyle()--> Style.
    Ns = TS.getOrAddNamespace("R");
    Point = TS.addType("Point", Ns, TypeKind::Struct);
    TS.addField(Point, "X", TS.doubleType());
    Style = TS.addType("Style", Ns, TypeKind::Class);
    TS.addField(Style, "Origin", Point);
    Line = TS.addType("Line", Ns, TypeKind::Class);
    TS.addField(Line, "P1", Point);
    TS.addMethod(Line, "GetStyle", Style, {});
    MC = std::make_unique<MemberCache>(TS);
    RI = std::make_unique<ReachabilityIndex>(TS, *MC);
  }

  TypeSystem TS;
  NamespaceId Ns;
  TypeId Point, Style, Line;
  std::unique_ptr<MemberCache> MC;
  std::unique_ptr<ReachabilityIndex> RI;
};

TEST_F(ReachTest, MinLookupCounts) {
  EXPECT_EQ(RI->minLookups(Line, Line, true), 0);
  EXPECT_EQ(RI->minLookups(Line, Point, true), 1);
  EXPECT_EQ(RI->minLookups(Line, TS.doubleType(), true), 2);
  // Style only reachable through the GetStyle() method edge.
  EXPECT_EQ(RI->minLookups(Line, Style, true), 1);
  EXPECT_FALSE(RI->minLookups(Line, Style, false).has_value());
  // Fields-only still reaches double through P1.X.
  EXPECT_EQ(RI->minLookups(Line, TS.doubleType(), false), 2);
  EXPECT_FALSE(RI->minLookups(Point, Line, true).has_value());
}

TEST_F(ReachTest, ConvertibleTargets) {
  // Anything reaches a value convertible to Object immediately.
  EXPECT_EQ(RI->minLookupsToConvertible(Line, TS.objectType(), true), 0);
  // double is convertible to double only; from Point that is one lookup.
  EXPECT_EQ(RI->minLookupsToConvertible(Point, TS.doubleType(), true), 1);
  EXPECT_FALSE(
      RI->minLookupsToConvertible(Point, Style, true).has_value());
}

TEST_F(ReachTest, DepthCapBoundsTheSearch) {
  // A self-referential chain: Node.Next.Next... never reaches Missing.
  TypeId Node = TS.addType("Node", Ns, TypeKind::Class);
  TS.addField(Node, "Next", Node);
  MemberCache MC2(TS);
  ReachabilityIndex Shallow(TS, MC2, /*MaxDepth=*/3);
  EXPECT_EQ(Shallow.minLookups(Node, Node, true), 0);
  EXPECT_FALSE(Shallow.minLookups(Node, Point, true).has_value());
}

/// Property: minLookups agrees with an independent BFS oracle on a
/// generated corpus.
TEST(ReachabilityPropertyTest, AgreesWithBfsOracle) {
  ProjectProfile Prof = paperProjectProfiles(0.15)[2];
  TypeSystem TS;
  Program P(TS);
  CorpusGenerator Gen(Prof);
  Gen.generate(P);
  MemberCache MC(TS);
  ReachabilityIndex RI(TS, MC, /*MaxDepth=*/4);

  Rng R(99);
  for (int Trial = 0; Trial != 40; ++Trial) {
    TypeId From = static_cast<TypeId>(R.below(TS.numTypes()));
    if (TS.type(From).Kind == TypeKind::Void)
      continue;
    // Oracle BFS over edges.
    std::unordered_map<TypeId, int> Dist{{From, 0}};
    std::vector<TypeId> Work{From};
    for (size_t I = 0; I != Work.size(); ++I) {
      TypeId Cur = Work[I];
      if (Dist[Cur] >= 4)
        continue;
      for (const LookupEdge &E : MC.edges(Cur))
        if (!Dist.count(E.ResultType)) {
          Dist[E.ResultType] = Dist[Cur] + 1;
          Work.push_back(E.ResultType);
        }
    }
    for (size_t T = 0; T != TS.numTypes(); ++T) {
      TypeId To = static_cast<TypeId>(T);
      auto Got = RI.minLookups(From, To, true);
      auto It = Dist.find(To);
      if (It == Dist.end())
        ASSERT_FALSE(Got.has_value());
      else
        ASSERT_EQ(Got, It->second);
    }
  }
}

} // namespace
