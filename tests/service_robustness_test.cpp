//===- tests/service_robustness_test.cpp - Backpressure, faults, chaos ----===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
//
// The robustness layer end to end (DESIGN.md §15): deterministic fault
// injection (seed-replayable firing, spec parsing), admission control and
// shedding (FIFO-fair under a wedged worker, retryAfterMs hints, strand
// depth caps, shed-then-cache-replay), crash-safe isolation (build
// exceptions confined to one request, watchdog strikes, in-flight
// cancellation), every fault kind's degradation ladder rung (garbage
// frames, short reads, EINTR storms, snapshot truncation/bit-flip/mmap
// failure, build throws, overlay and dense-freeze fallbacks), and a
// 10k-request chaos run over a real socketpair transport — zero crashes,
// exactly one response per request, injected == recovered. The chaos and
// backpressure suites run under TSan and ASan in scripts/ci.sh; the chaos
// leg re-runs them with several PETAL_FAULTS seeds.
//
//===----------------------------------------------------------------------===//

#include "TestCorpora.h"

#include "code/ExprPrinter.h"
#include "complete/Engine.h"
#include "service/Client.h"
#include "service/Session.h"
#include "service/Transport.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace petal;
using json::Value;

namespace {

//===----------------------------------------------------------------------===//
// Harness (mirrors service_test.cpp so the suites stay comparable)
//===----------------------------------------------------------------------===//

/// Arms the process-wide injector for the faults in \p Faults only, and
/// disarms on scope exit so one test's faults never leak into another
/// (each TEST also runs as its own ctest process, belt and braces).
struct FaultGuard {
  FaultGuard(uint64_t Seed, unsigned Permille,
             std::initializer_list<Fault> Faults) {
    uint32_t Mask = 0;
    for (Fault F : Faults)
      Mask |= 1u << static_cast<unsigned>(F);
    FaultInjector::instance().arm(Seed, Permille, Mask);
  }
  ~FaultGuard() { FaultInjector::instance().disarm(); }
};

PetalService::Options testOptions(size_t Workers = 2,
                                  bool TestHooks = false) {
  PetalService::Options O;
  O.Workers = Workers;
  O.DocThreads = 1;
  O.CacheCapacity = 64;
  O.EnableTestHooks = TestHooks;
  return O;
}

Value openParams(const std::string &Doc, const std::string &Text,
                 int64_t V) {
  Value P = Value::object();
  P.set("doc", Doc);
  P.set("text", Text);
  P.set("version", V);
  return P;
}

Value completeParams(const std::string &Doc, const std::string &Class,
                     const std::string &Method, const std::string &Query,
                     int64_t N = 10) {
  Value P = Value::object();
  P.set("doc", Doc);
  P.set("class", Class);
  P.set("method", Method);
  P.set("query", Query);
  P.set("n", N);
  return P;
}

int errorCode(const Value &Response) {
  const Value *E = Response.find("error");
  return E ? static_cast<int>(E->getInt("code", 0)) : 0;
}

std::string errorMessage(const Value &Response) {
  const Value *E = Response.find("error");
  return E ? E->getString("message") : "";
}

std::vector<std::pair<std::string, int>> completionsOf(const Value &Resp) {
  std::vector<std::pair<std::string, int>> Out;
  const Value *R = Resp.find("result");
  if (!R)
    return Out;
  const Value *List = R->find("completions");
  if (!List || !List->isArray())
    return Out;
  for (const Value &Item : List->elements())
    Out.emplace_back(Item.getString("expr"),
                     static_cast<int>(Item.getInt("score", -1)));
  return Out;
}

/// The reference answer: a direct CompletionEngine::complete over a
/// private parse of the same text.
std::vector<std::pair<std::string, int>>
directComplete(const std::string &Text, const std::string &Class,
               const std::string &Method, const std::string &Query,
               size_t N) {
  TypeSystem TS;
  Program P(TS);
  DiagnosticEngine Diags;
  EXPECT_TRUE(loadProgramText(Text, P, Diags));
  CompletionIndexes Idx(P);
  CompletionEngine Engine(P, Idx);

  const CodeClass *CC = findCodeClass(P, Class);
  EXPECT_NE(CC, nullptr) << Class;
  const CodeMethod *CM = findCodeMethod(P, *CC, Method);
  EXPECT_NE(CM, nullptr) << Method;
  QueryScope Scope = scopeAtEnd(CC, CM);
  const PartialExpr *Q = parseQueryText(Query, P, Scope, Diags);
  EXPECT_NE(Q, nullptr) << Query;

  std::vector<std::pair<std::string, int>> Out;
  CodeSite Site{CC, CM, Scope.StmtIndex};
  for (const Completion &C : Engine.complete(Q, Site, N))
    Out.emplace_back(printExpr(TS, C.E), C.Score);
  return Out;
}

Value healthOf(InProcessClient &C) {
  Value Stats = C.callResult("$/stats", Value::object());
  const Value *H = Stats.find("health");
  EXPECT_NE(H, nullptr);
  return H ? *H : Value();
}

/// Outstanding is decremented *after* a response is delivered, so right
/// after a synchronous call the counter may still briefly include it.
/// Admission decisions are a pure function of Outstanding; tests that rely
/// on exact shed counts drain it to zero first ($/stats is answered
/// inline, off the queue, so polling it does not perturb the counter).
void drainOutstanding(InProcessClient &C) {
  for (int Spin = 0;; ++Spin) {
    ASSERT_LT(Spin, 5000) << "queue never drained";
    if (C.callResult("$/stats", Value::object()).getInt("outstanding", -1) ==
        0)
      return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

//===----------------------------------------------------------------------===//
// FaultInjector: spec grammar + deterministic replay
//===----------------------------------------------------------------------===//

TEST(FaultInjectorTest, SpecGrammarAcceptsAndRejects) {
  FaultInjector &FI = FaultInjector::instance();
  std::string Error;
  EXPECT_TRUE(FI.armFromSpec("42", Error)) << Error;
  EXPECT_TRUE(FaultInjector::armed());
  EXPECT_TRUE(FI.armFromSpec("42:250", Error)) << Error;
  EXPECT_TRUE(FI.armFromSpec("42:1000:build,snapshot-crc", Error)) << Error;
  EXPECT_TRUE(FI.armFromSpec("7:100:all", Error)) << Error;

  EXPECT_FALSE(FI.armFromSpec("", Error));
  EXPECT_FALSE(FI.armFromSpec("notanumber", Error));
  EXPECT_FALSE(FI.armFromSpec("42:1001", Error));
  EXPECT_FALSE(FI.armFromSpec("42:100:no-such-fault", Error));
  EXPECT_NE(Error.find("no-such-fault"), std::string::npos);
  FI.disarm();
  EXPECT_FALSE(FaultInjector::armed());
}

TEST(FaultInjectorTest, FiringIsAPureFunctionOfSeedAndOccurrence) {
  FaultInjector &FI = FaultInjector::instance();
  auto Pattern = [&](uint64_t Seed) {
    FI.arm(Seed, 500, 1u << static_cast<unsigned>(Fault::BuildThrow));
    std::vector<bool> P;
    for (int I = 0; I != 256; ++I)
      P.push_back(FI.fire(Fault::BuildThrow));
    return P;
  };
  std::vector<bool> A = Pattern(7);
  uint64_t InjectedA = FI.injected(Fault::BuildThrow);
  std::vector<bool> B = Pattern(7);
  EXPECT_EQ(A, B); // same seed -> identical schedule
  EXPECT_EQ(FI.injected(Fault::BuildThrow), InjectedA);
  EXPECT_GT(InjectedA, 0u);
  EXPECT_LT(InjectedA, 256u); // permille 500: some fire, some do not
  EXPECT_NE(A, Pattern(8));   // different seed -> different schedule
  FI.disarm();
}

TEST(FaultInjectorTest, PerFaultCountersAreIndependent) {
  // Interleaving occurrences of another fault must not shift a fault's
  // own schedule: each kind owns its occurrence counter.
  FaultInjector &FI = FaultInjector::instance();
  FI.arm(7, 500, ~uint32_t(0));
  std::vector<bool> Alone;
  for (int I = 0; I != 64; ++I)
    Alone.push_back(FI.fire(Fault::SnapshotCrcFlip));
  FI.arm(7, 500, ~uint32_t(0)); // reset counters
  std::vector<bool> Interleaved;
  for (int I = 0; I != 64; ++I) {
    FI.fire(Fault::TransportEintr); // noise on a different counter
    Interleaved.push_back(FI.fire(Fault::SnapshotCrcFlip));
  }
  EXPECT_EQ(Alone, Interleaved);
  FI.disarm();
  EXPECT_FALSE(FI.fire(Fault::SnapshotCrcFlip)); // disarmed: never fires
}

//===----------------------------------------------------------------------===//
// Backpressure: admission control and shedding
//===----------------------------------------------------------------------===//

TEST(BackpressureTest, QueueFullShedsDeterministicallyInArrivalOrder) {
  // One worker wedged on a gate makes admission a pure function of
  // arrival order: Outstanding is bumped at enqueue (on this thread) and
  // only drops when a task *finishes*, so no worker timing can change
  // which of these requests is admitted.
  PetalService::Options O = testOptions(/*Workers=*/1, /*TestHooks=*/true);
  O.MaxQueue = 2;
  InProcessClient C(O);
  ASSERT_EQ(errorCode(C.call("petal/open",
                             openParams("geo.cs", corpora::GeometryCorpus,
                                        1))),
            0);
  drainOutstanding(C);

  Value Block = Value::object();
  Block.set("token", "bp1");
  int64_t BlockId = C.send("$/test/block", std::move(Block)); // outstanding 1

  Value Q = completeParams("geo.cs", "EllipseArc", "Examine", "?({point})");
  int64_t Admitted = C.send("petal/complete", Q); // outstanding 2 == cap

  Value Shed1 = C.call("petal/complete", Q); // dispatched inline: shed
  Value Shed2 = C.call("petal/complete", Q);
  EXPECT_EQ(errorCode(Shed1), rpc::ServerOverloaded);
  EXPECT_EQ(errorCode(Shed2), rpc::ServerOverloaded);
  const Value *E = Shed1.find("error");
  ASSERT_NE(E, nullptr);
  const Value *Data = E->find("data");
  ASSERT_NE(Data, nullptr) << "shed errors must carry a retry hint";
  EXPECT_GE(Data->getNumber("retryAfterMs", 0), 1.0);

  C.service().releaseGate("bp1");
  EXPECT_EQ(errorCode(C.await(BlockId)), 0);
  EXPECT_EQ(errorCode(C.await(Admitted)), 0) << "admitted request answers";

  Value H = healthOf(C);
  EXPECT_EQ(H.getInt("shedRequests", -1), 2);
  EXPECT_GE(H.getInt("queueHighWater", -1), 2);
}

TEST(BackpressureTest, StrandDepthCapShedsTheHotDocumentOnly) {
  PetalService::Options O = testOptions(/*Workers=*/1, /*TestHooks=*/true);
  O.MaxStrandDepth = 1;
  InProcessClient C(O);
  ASSERT_EQ(errorCode(C.call("petal/open",
                             openParams("hot.cs", corpora::GeometryCorpus,
                                        1))),
            0);
  ASSERT_EQ(errorCode(C.call("petal/open",
                             openParams("cold.cs", corpora::GeometryCorpus,
                                        1))),
            0);
  drainOutstanding(C);

  Value Block = Value::object();
  Block.set("token", "bp2");
  int64_t BlockId = C.send("$/test/block", std::move(Block));

  Value Q = completeParams("hot.cs", "EllipseArc", "Examine", "?({point})");
  int64_t Admitted = C.send("petal/complete", Q); // hot strand depth 1
  Value Shed = C.call("petal/complete", Q);       // depth at cap: shed
  EXPECT_EQ(errorCode(Shed), rpc::ServerOverloaded);
  EXPECT_NE(errorMessage(Shed).find("strand"), std::string::npos);

  // The other document's strand is empty — it is not shed.
  int64_t ColdId = C.send(
      "petal/complete",
      completeParams("cold.cs", "EllipseArc", "Examine", "?({point})"));

  C.service().releaseGate("bp2");
  C.await(BlockId);
  EXPECT_EQ(errorCode(C.await(Admitted)), 0);
  EXPECT_EQ(errorCode(C.await(ColdId)), 0);

  Value H = healthOf(C);
  EXPECT_EQ(H.getInt("shedRequests", -1), 1);
  EXPECT_GE(H.getInt("strandHighWater", -1), 1);
}

TEST(BackpressureTest, ShedThenRetryReplaysFromCacheByteIdentical) {
  PetalService::Options O = testOptions(/*Workers=*/1, /*TestHooks=*/true);
  O.MaxQueue = 2;
  InProcessClient C(O);
  ASSERT_EQ(errorCode(C.call("petal/open",
                             openParams("geo.cs", corpora::GeometryCorpus,
                                        1))),
            0);
  Value Q = completeParams("geo.cs", "EllipseArc", "Examine", "?({point})");
  Value First = C.call("petal/complete", Q);
  ASSERT_EQ(errorCode(First), 0);
  drainOutstanding(C);

  // Wedge the worker and fill the queue so the retry loop gets shed at
  // least once before the release lets it through to the cache.
  Value Block = Value::object();
  Block.set("token", "bp3");
  int64_t BlockId = C.send("$/test/block", std::move(Block));
  int64_t Admitted = C.send("petal/complete", Q);

  Value RetriedResp;
  std::thread Retrier(
      [&] { RetriedResp = C.callWithRetry("petal/complete", Q, 1000); });
  while (C.overloadRetries() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  C.service().releaseGate("bp3");
  Retrier.join();
  C.await(BlockId);
  C.await(Admitted);

  ASSERT_EQ(errorCode(RetriedResp), 0) << RetriedResp.write();
  // Served from the result cache after the overload clears: byte-identical
  // to the pre-overload answer.
  EXPECT_EQ(RetriedResp.find("result")->write(),
            First.find("result")->write());
  EXPECT_GE(C.overloadRetries(), 1u);
  Value Stats = C.callResult("$/stats", Value::object());
  EXPECT_GE(Stats.find("cache")->getInt("hits", -1), 1);
}

//===----------------------------------------------------------------------===//
// Isolation: cancellation in flight, deadlines mid-build, watchdog,
// exceptions confined to one request
//===----------------------------------------------------------------------===//

TEST(IsolationTest, CancelRequestAbortsACurrentlyExecutingTask) {
  InProcessClient C(testOptions(/*Workers=*/1, /*TestHooks=*/true));
  Value Block = Value::object();
  Block.set("token", "inflight");
  int64_t BlockId = C.send("$/test/block", std::move(Block));

  // Wait until the task is *executing* (published in the health block),
  // then cancel it — the old queued-only path could not touch it.
  for (int Spin = 0; healthOf(C).getInt("executing", 0) == 0; ++Spin) {
    ASSERT_LT(Spin, 5000) << "block task never started executing";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Value Cancel = Value::object();
  Cancel.set("id", BlockId);
  C.notify("$/cancelRequest", std::move(Cancel));

  Value Resp = C.await(BlockId); // without the abort this would hang
  EXPECT_EQ(errorCode(Resp), rpc::RequestCancelled);
  EXPECT_NE(errorMessage(Resp).find("abandoned mid-execution"),
            std::string::npos);
  EXPECT_EQ(healthOf(C).getInt("cancelledInFlight", -1), 1);

  // The worker is free again; the gate was never released.
  ASSERT_EQ(errorCode(C.call("petal/open",
                             openParams("geo.cs", corpora::GeometryCorpus,
                                        1))),
            0);
}

TEST(IsolationTest, DeadlineAbandonedBuildLeavesSessionConsistent) {
  InProcessClient C(testOptions(/*Workers=*/1));
  ASSERT_EQ(errorCode(C.call("petal/open",
                             openParams("geo.cs", corpora::GeometryCorpus,
                                        1))),
            0);
  Value Q = completeParams("geo.cs", "EllipseArc", "Examine", "?({point})");
  Value Before = C.call("petal/complete", Q);
  ASSERT_EQ(errorCode(Before), 0);

  // A v2 text big enough that its build cannot finish inside the deadline:
  // the deadline passes the pickup check (the worker is idle), then
  // expires at one of the build's phase boundaries.
  std::string Big(corpora::GeometryCorpus);
  for (int I = 0; I != 800; ++I) {
    std::string N = std::to_string(I);
    Big += "class Filler" + N + " {\n"
           "  System.Windows.Point Origin" + N + ";\n"
           "  DynamicGeometry.ShapeStyle Style" + N + ";\n"
           "  void Touch" + N + "(System.Windows.Point p) { return; }\n"
           "}\n";
  }
  Value Change = openParams("geo.cs", Big, 2);
  Change.set("deadlineMs", 10.0);
  Value Resp = C.call("petal/change", std::move(Change));
  EXPECT_EQ(errorCode(Resp), rpc::DeadlineExceeded) << Resp.write();
  EXPECT_NE(errorMessage(Resp).find("abandoned"), std::string::npos)
      << "deadline should expire mid-build, not while queued: "
      << Resp.write();

  // The abandoned change left no trace: still version 1, answers
  // byte-identical to the pre-change ones (replayed from cache).
  Value QV = completeParams("geo.cs", "EllipseArc", "Examine", "?({point})");
  QV.set("version", 1);
  Value After = C.call("petal/complete", QV);
  ASSERT_EQ(errorCode(After), 0) << After.write();
  EXPECT_EQ(After.find("result")->getInt("version", -1), 1);
  EXPECT_EQ(completionsOf(After), completionsOf(Before));

  Value H = healthOf(C);
  EXPECT_EQ(H.getInt("deadlineAbandoned", -1), 1);
}

TEST(IsolationTest, BuildExceptionIsConfinedToItsRequest) {
  InProcessClient C(testOptions(/*Workers=*/2));
  {
    FaultGuard G(1, 1000, {Fault::BuildThrow});
    Value Resp = C.call("petal/open",
                        openParams("geo.cs", corpora::GeometryCorpus, 1));
    EXPECT_EQ(errorCode(Resp), rpc::InternalError);
    EXPECT_NE(errorMessage(Resp).find("injected fault"), std::string::npos);
  }
  // The daemon survived and the failed open left no zombie session: the
  // same name opens cleanly once the fault is disarmed.
  ASSERT_EQ(errorCode(C.call("petal/open",
                             openParams("geo.cs", corpora::GeometryCorpus,
                                        1))),
            0);
  {
    FaultGuard G(1, 1000, {Fault::BuildThrow});
    Value Resp = C.call("petal/change",
                        openParams("geo.cs", corpora::GeometryCorpus, 2));
    EXPECT_EQ(errorCode(Resp), rpc::InternalError);
    EXPECT_NE(errorMessage(Resp).find("keeps version 1"),
              std::string::npos);
  }
  // The change that threw kept the session on version 1.
  Value Q = completeParams("geo.cs", "EllipseArc", "Examine", "?({point})");
  Q.set("version", 1);
  Value Resp = C.call("petal/complete", Q);
  ASSERT_EQ(errorCode(Resp), 0) << Resp.write();
  EXPECT_EQ(completionsOf(Resp),
            directComplete(corpora::GeometryCorpus, "EllipseArc", "Examine",
                           "?({point})", 10));

  Value H = healthOf(C);
  EXPECT_EQ(H.getInt("isolatedErrors", -1), 2);
  // Arming resets the injector's counters, so only the second guard's
  // injection is still on the books — and it was recovered.
  EXPECT_EQ(H.getInt("faultsInjected", -1), 1);
  EXPECT_EQ(H.getInt("faultsRecovered", -1), 1);
}

TEST(IsolationTest, WatchdogFailsAHungTaskAndTheDaemonServesOn) {
  PetalService::Options O = testOptions(/*Workers=*/1, /*TestHooks=*/true);
  O.WatchdogMs = 40;
  InProcessClient C(O);

  Value Block = Value::object();
  Block.set("token", "hung"); // never released: a wedged task
  int64_t BlockId = C.send("$/test/block", std::move(Block));
  Value Resp = C.await(BlockId);
  EXPECT_EQ(errorCode(Resp), rpc::InternalError);
  EXPECT_NE(errorMessage(Resp).find("watchdog"), std::string::npos);

  // The watchdog's abort also freed the worker (execBlock polls the
  // signal), so the pool is healthy again.
  ASSERT_EQ(errorCode(C.call("petal/open",
                             openParams("geo.cs", corpora::GeometryCorpus,
                                        1))),
            0);
  Value Q = completeParams("geo.cs", "EllipseArc", "Examine", "?({point})");
  EXPECT_EQ(errorCode(C.call("petal/complete", Q)), 0);
  EXPECT_EQ(healthOf(C).getInt("watchdogFired", -1), 1);
  EXPECT_EQ(C.strayResponses(), 0u) << "exactly one response per request";
}

//===----------------------------------------------------------------------===//
// Fault recovery: every injection point's degradation rung
//===----------------------------------------------------------------------===//

TEST(FaultRecoveryTest, ShortReadsReassemblePayloadsByteForByte) {
  FaultGuard G(3, 1000, {Fault::TransportShortRead});
  std::stringstream SS;
  FramedWriter W(SS);
  W.write("{\"a\":1}");
  std::string Big(100000, 'x');
  W.write(Big);
  W.write("");

  FramedReader R(SS);
  std::string P;
  ASSERT_EQ(R.read(P), FramedReader::Status::Ok);
  EXPECT_EQ(P, "{\"a\":1}");
  ASSERT_EQ(R.read(P), FramedReader::Status::Ok);
  EXPECT_EQ(P, Big);
  ASSERT_EQ(R.read(P), FramedReader::Status::Ok);
  EXPECT_EQ(P, "");
  EXPECT_EQ(R.read(P), FramedReader::Status::Eof);

  FaultInjector &FI = FaultInjector::instance();
  EXPECT_GT(FI.injected(Fault::TransportShortRead), 0u);
  EXPECT_EQ(FI.injected(Fault::TransportShortRead),
            FI.recovered(Fault::TransportShortRead));
}

TEST(FaultRecoveryTest, EintrStormsAreRetriedInvisibly) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  constexpr size_t NumMessages = 50;
  const std::string Payload(8192, 'p');
  std::thread Writer([&] {
    FdStreamBuf WB(Fds[1]);
    std::ostream Out(&WB);
    FramedWriter W(Out);
    for (size_t I = 0; I != NumMessages; ++I)
      W.write(Payload + std::to_string(I));
    Out.flush();
    ::close(Fds[1]); // EOF for the reader
  });

  FaultGuard G(5, 500, {Fault::TransportEintr});
  FdStreamBuf RB(Fds[0]);
  std::istream In(&RB);
  FramedReader R(In);
  std::string P;
  for (size_t I = 0; I != NumMessages; ++I) {
    ASSERT_EQ(R.read(P), FramedReader::Status::Ok) << "message " << I;
    EXPECT_EQ(P, Payload + std::to_string(I));
  }
  EXPECT_EQ(R.read(P), FramedReader::Status::Eof);
  Writer.join();
  ::close(Fds[0]);

  FaultInjector &FI = FaultInjector::instance();
  EXPECT_GT(FI.injected(Fault::TransportEintr), 0u);
  EXPECT_EQ(FI.injected(Fault::TransportEintr),
            FI.recovered(Fault::TransportEintr));
}

TEST(FaultRecoveryTest, GarbageFramesGetParseErrorsAndTheLoopContinues) {
  std::stringstream In, Out;
  {
    FramedWriter W(In);
    Value Init = rpc::makeRequest(
        [] {
          rpc::RequestId Id;
          Id.Present = true;
          Id.Num = 1;
          return Id;
        }(),
        "initialize", Value::object());
    W.write(Init.write());
    Value Stats = rpc::makeRequest(
        [] {
          rpc::RequestId Id;
          Id.Present = true;
          Id.Num = 2;
          return Id;
        }(),
        "$/stats", Value::object());
    W.write(Stats.write());
    W.write(rpc::makeRequest(rpc::RequestId(), "exit", Value::object())
                .write());
  }

  // The firing schedule is a pure function of (seed, occurrence), so probe
  // for a seed whose first two occurrences include a hit — guaranteeing at
  // least one garbage frame lands before the exit notification is read.
  uint64_t SeedPick = 0;
  for (uint64_t S = 1; S != 64 && !SeedPick; ++S) {
    FaultInjector::instance().arm(
        S, 400, 1u << static_cast<unsigned>(Fault::TransportGarbageFrame));
    for (int I = 0; I != 2; ++I)
      if (FaultInjector::instance().fire(Fault::TransportGarbageFrame))
        SeedPick = S;
  }
  FaultInjector::instance().disarm();
  ASSERT_NE(SeedPick, 0u);

  uint64_t Garbage;
  {
    // Permille below 1000: a garbage injection does not consume the
    // stream, so the real messages are delivered on the next non-firing
    // read — the loop terminates with every request answered.
    FaultGuard G(SeedPick, 400, {Fault::TransportGarbageFrame});
    serveStream(In, Out, testOptions(/*Workers=*/1));
    FaultInjector &FI = FaultInjector::instance();
    Garbage = FI.injected(Fault::TransportGarbageFrame);
    EXPECT_GT(Garbage, 0u);
    EXPECT_EQ(Garbage, FI.recovered(Fault::TransportGarbageFrame));
  }

  // Every garbage frame was answered with a ParseError (null id); the
  // real requests were still answered with results.
  FramedReader R(Out);
  std::string P;
  size_t ParseErrors = 0;
  std::set<int64_t> AnsweredIds;
  while (R.read(P) == FramedReader::Status::Ok) {
    Value Msg;
    std::string Error;
    ASSERT_TRUE(json::parse(P, Msg, Error)) << P;
    const Value *Id = Msg.find("id");
    if (Id && Id->isNumber()) {
      AnsweredIds.insert(Id->intValue());
      EXPECT_NE(Msg.find("result"), nullptr);
    } else {
      EXPECT_EQ(static_cast<int>(
                    Msg.find("error")->getInt("code", 0)),
                rpc::ParseError);
      ++ParseErrors;
    }
  }
  EXPECT_EQ(ParseErrors, Garbage);
  EXPECT_EQ(AnsweredIds, (std::set<int64_t>{1, 2}));
}

/// Builds \p Text cold and writes its snapshot to \p Path (the same
/// pipeline corpus_explorer --save-snapshot runs).
bool writeCorpusSnapshot(const std::string &Text, const std::string &Path,
                         std::string &Error) {
  DiagnosticEngine Diags;
  SynFile File;
  if (!parseSourceFile(Text, File, Diags)) {
    Error = "parse failed";
    return false;
  }
  DocumentShape Shape = shapeOfFile(File);
  TypeSystem TS;
  Program P(TS);
  if (!resolveParsedFile(File, P, Diags)) {
    Error = "resolve failed";
    return false;
  }
  CompletionIndexes Idx(P);
  Idx.freeze(FreezeOptions{});
  AbsTypeSolution Solution = Idx.Infer.solve();
  return snapshot::writeSnapshot(Path, Text, Shape, Idx, Solution, Error);
}

std::string tmpPath(const std::string &Name) {
  return testing::TempDir() + "petal_" + Name;
}

TEST(FaultRecoveryTest, SnapshotTruncationIsRejectedNeverTrusted) {
  const std::string Path = tmpPath("fault_trunc.snap");
  std::string Error;
  ASSERT_TRUE(writeCorpusSnapshot(corpora::GeometryCorpus, Path, Error))
      << Error;
  {
    FaultGuard G(1, 1000, {Fault::SnapshotTruncate});
    std::string LoadError;
    EXPECT_EQ(snapshot::loadSnapshot(Path, LoadError), nullptr);
    EXPECT_FALSE(LoadError.empty());
    FaultInjector &FI = FaultInjector::instance();
    EXPECT_EQ(FI.injected(Fault::SnapshotTruncate), 1u);
    EXPECT_EQ(FI.recovered(Fault::SnapshotTruncate), 1u);
  }
  // The file itself is intact — the fault was in the reader's view of it.
  std::string LoadError;
  EXPECT_NE(snapshot::loadSnapshot(Path, LoadError), nullptr) << LoadError;
}

TEST(FaultRecoveryTest, SnapshotBitFlipIsCaughtByTheChecksums) {
  const std::string Path = tmpPath("fault_flip.snap");
  std::string Error;
  ASSERT_TRUE(writeCorpusSnapshot(corpora::GeometryCorpus, Path, Error))
      << Error;
  {
    FaultGuard G(1, 1000, {Fault::SnapshotCrcFlip});
    std::string LoadError;
    EXPECT_EQ(snapshot::loadSnapshot(Path, LoadError), nullptr);
    FaultInjector &FI = FaultInjector::instance();
    EXPECT_EQ(FI.injected(Fault::SnapshotCrcFlip), 1u);
    EXPECT_EQ(FI.recovered(Fault::SnapshotCrcFlip), 1u);
  }
  std::string LoadError;
  EXPECT_NE(snapshot::loadSnapshot(Path, LoadError), nullptr) << LoadError;
}

TEST(FaultRecoveryTest, MmapFailureFallsBackToBufferedRead) {
  const std::string Path = tmpPath("fault_mmap.snap");
  std::string Error;
  ASSERT_TRUE(writeCorpusSnapshot(corpora::GeometryCorpus, Path, Error))
      << Error;
  FaultGuard G(1, 1000, {Fault::SnapshotMmapFail});
  std::string LoadError;
  auto Snap = snapshot::loadSnapshot(Path, LoadError);
  ASSERT_NE(Snap, nullptr) << LoadError;
  EXPECT_FALSE(Snap->Mapped) << "must have degraded to the buffered path";
  EXPECT_EQ(Snap->SourceText, corpora::GeometryCorpus);
  FaultInjector &FI = FaultInjector::instance();
  EXPECT_EQ(FI.injected(Fault::SnapshotMmapFail), 1u);
  EXPECT_EQ(FI.recovered(Fault::SnapshotMmapFail), 1u);
}

TEST(FaultRecoveryTest, FreezeBudgetFaultFallsBackToLazyIndexes) {
  // Reference computed before arming so it is untouched by the fault.
  auto Want = directComplete(corpora::GeometryCorpus, "EllipseArc",
                             "Examine", "Distance(point, ?)", 10);
  FaultGuard G(9, 1000, {Fault::FreezeDenseBudget});
  InProcessClient C(testOptions(/*Workers=*/1));
  ASSERT_EQ(errorCode(C.call("petal/open",
                             openParams("geo.cs", corpora::GeometryCorpus,
                                        1))),
            0);
  Value Resp = C.call("petal/complete",
                      completeParams("geo.cs", "EllipseArc", "Examine",
                                     "Distance(point, ?)"));
  ASSERT_EQ(errorCode(Resp), 0) << Resp.write();
  // Lazy tables answer bit-identically to dense ones — the budget rung of
  // the ladder costs latency, never correctness.
  EXPECT_EQ(completionsOf(Resp), Want);
  Value H = healthOf(C);
  EXPECT_EQ(H.getInt("faultsInjected", -1), 1);
  EXPECT_EQ(H.getInt("faultsRecovered", -1), 1);
}

TEST(FaultRecoveryTest, OverlayBuildFaultDegradesToMonolithicThenHeals) {
  const std::string DocText =
      "class Scratch {\n"
      "  void Play(System.Windows.Point point,\n"
      "            DynamicGeometry.ShapeStyle style) {\n"
      "    return;\n"
      "  }\n"
      "}\n";
  // The degraded build resolves base text + "\n" + document text as one
  // monolithic program; the reference is a direct engine over exactly
  // that.
  auto Want = directComplete(std::string(corpora::GeometryCorpus) + "\n" +
                                 DocText,
                             "Scratch", "Play", "?({point})", 10);

  std::string Error;
  PetalService::Options O = testOptions(/*Workers=*/1);
  O.Base = baseCorpusFromSource(corpora::GeometryCorpus, Error);
  ASSERT_NE(O.Base, nullptr) << Error;
  InProcessClient C(O);

  {
    FaultGuard G(2, 1000, {Fault::OverlayBuild});
    Value Resp = C.call("petal/open", openParams("doc.cs", DocText, 1));
    ASSERT_EQ(errorCode(Resp), 0) << Resp.write();
    EXPECT_EQ(Resp.find("result")->getString("degraded"), "monolithic");
  }
  Value Resp = C.call("petal/complete",
                      completeParams("doc.cs", "Scratch", "Play",
                                     "?({point})"));
  ASSERT_EQ(errorCode(Resp), 0) << Resp.write();
  EXPECT_EQ(completionsOf(Resp), Want);
  Value H = healthOf(C);
  EXPECT_EQ(H.getInt("degradedBuilds", -1), 1);
  EXPECT_EQ(H.getInt("faultsInjected", -1), 1);
  EXPECT_EQ(H.getInt("faultsRecovered", -1), 1);

  // Self-heal: the next change (fault disarmed) rebuilds as a true
  // overlay — the degraded state does not stick to the session — and the
  // answers stay bit-identical to the monolithic twin.
  Value Change = C.call("petal/change", openParams("doc.cs", DocText, 2));
  ASSERT_EQ(errorCode(Change), 0) << Change.write();
  EXPECT_EQ(Change.find("result")->find("degraded"), nullptr);
  Value Resp2 = C.call("petal/complete",
                       completeParams("doc.cs", "Scratch", "Play",
                                      "?({point})"));
  ASSERT_EQ(errorCode(Resp2), 0);
  EXPECT_EQ(completionsOf(Resp2), Want);
}

//===----------------------------------------------------------------------===//
// Chaos: 10k requests, 4 clients, one real socketpair transport
//===----------------------------------------------------------------------===//

/// A framed JSON-RPC client over an fd, shared by several writer threads:
/// one reader thread routes responses by id; null-id messages (ParseError
/// replies to injected garbage frames) count as strays.
class WireClient {
public:
  explicit WireClient(int Fd)
      : Buf(Fd), In(&Buf), Out(&Buf), W(Out),
        Reader([this] { readLoop(); }) {}

  ~WireClient() { Reader.join(); }

  int64_t send(int64_t Id, std::string_view Method, Value Params) {
    rpc::RequestId Rid;
    Rid.Present = true;
    Rid.Num = Id;
    W.write(rpc::makeRequest(Rid, Method, std::move(Params)).write());
    return Id;
  }

  void notify(std::string_view Method, Value Params) {
    W.write(
        rpc::makeRequest(rpc::RequestId(), Method, std::move(Params))
            .write());
  }

  /// Blocks for the response to \p Id; a Lost() bump instead of a hang if
  /// it never arrives (the exactly-once property this harness verifies).
  Value await(int64_t Id) {
    std::unique_lock<std::mutex> L(M);
    if (!CV.wait_for(L, std::chrono::seconds(120),
                     [&] { return Ready.count(Id) != 0; })) {
      ++LostCount;
      return Value();
    }
    Value V = std::move(Ready[Id]);
    Ready.erase(Id);
    return V;
  }

  size_t strays() const {
    std::lock_guard<std::mutex> L(M);
    return StrayCount;
  }
  size_t duplicates() const {
    std::lock_guard<std::mutex> L(M);
    return DuplicateCount;
  }
  size_t lost() const {
    std::lock_guard<std::mutex> L(M);
    return LostCount;
  }
  size_t unclaimed() const {
    std::lock_guard<std::mutex> L(M);
    return Ready.size();
  }

private:
  void readLoop() {
    FramedReader R(In);
    std::string P;
    while (R.read(P) == FramedReader::Status::Ok) {
      Value Msg;
      std::string Error;
      if (!json::parse(P, Msg, Error))
        continue; // cannot happen: the service writes valid JSON
      std::lock_guard<std::mutex> L(M);
      const Value *Id = Msg.find("id");
      if (!Id || !Id->isNumber()) {
        ++StrayCount;
      } else if (!Seen.insert(Id->intValue()).second) {
        ++DuplicateCount;
      } else {
        Ready[Id->intValue()] = std::move(Msg);
      }
      CV.notify_all();
    }
  }

  FdStreamBuf Buf;
  std::istream In;
  std::ostream Out;
  FramedWriter W;
  mutable std::mutex M;
  std::condition_variable CV;
  std::map<int64_t, Value> Ready;
  std::set<int64_t> Seen;
  size_t StrayCount = 0;
  size_t DuplicateCount = 0;
  size_t LostCount = 0;
  std::thread Reader;
};

struct ChaosOutcome {
  size_t Sent = 0;
  size_t Answered = 0;
  size_t Errors = 0;
  size_t Mismatches = 0;
  size_t Strays = 0;
  size_t Duplicates = 0;
  size_t Lost = 0;
};

/// Drives \p RequestsPerClient requests from each of 4 client threads
/// through one socketpair into a 4-worker daemon. Every id-bearing request
/// must be answered exactly once; with \p Faults off, every completion
/// must additionally be bit-identical to the direct engine.
ChaosOutcome runChaos(bool Faults, size_t RequestsPerClient) {
  constexpr size_t NumClients = 4;
  const char *Queries[] = {"?({point})", "Distance(point, ?)",
                           "?({point, shapeStyle})"};
  std::vector<std::vector<std::pair<std::string, int>>> Want;
  for (const char *Q : Queries)
    Want.push_back(directComplete(corpora::GeometryCorpus, "EllipseArc",
                                  "Examine", Q, 10));

  if (Faults) {
    // An externally provided PETAL_FAULTS spec (the ci.sh chaos leg
    // sweeps several seeds) wins; otherwise use a fixed default.
    if (!FaultInjector::armed())
      FaultInjector::instance().arm(20260808, 15);
  } else {
    FaultInjector::instance().disarm();
  }

  int Fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  std::thread Server([&] {
    FdStreamBuf SB(Fds[0]);
    std::istream SIn(&SB);
    std::ostream SOut(&SB);
    PetalService::Options O = testOptions(/*Workers=*/4);
    O.MaxQueue = 64;
    O.CacheCapacity = 1024;
    serveStream(SIn, SOut, O);
  });

  ChaosOutcome Outcome;
  {
    WireClient C(Fds[1]);
    std::vector<std::thread> Clients;
    std::mutex OM; // guards Outcome
    for (size_t I = 0; I != NumClients; ++I)
      Clients.emplace_back([&, I] {
        ChaosOutcome Mine;
        int64_t NextId = static_cast<int64_t>(I + 1) * 1000000;
        std::string Doc = "chaos" + std::to_string(I) + ".cs";
        int64_t Version = 0;
        auto Call = [&](std::string_view Method, Value Params) {
          ++Mine.Sent;
          Value Resp =
              C.await(C.send(NextId++, Method, std::move(Params)));
          if (Resp.find("id"))
            ++Mine.Answered;
          return Resp;
        };
        // Open, retrying while injected build faults reject it. The open
        // and each retry all count toward the request budget.
        size_t Budget = RequestsPerClient;
        while (Budget != 0) {
          --Budget;
          Value Resp =
              Call("petal/open",
                   openParams(Doc, corpora::GeometryCorpus, ++Version));
          if (Resp.find("result"))
            break;
          ++Mine.Errors;
          Version = 0; // the failed open removed the session
        }
        for (size_t K = 0; K != Budget; ++K) {
          if (K % 97 == 31) {
            Value Resp = Call(
                "petal/change",
                openParams(Doc, corpora::GeometryCorpus, ++Version));
            if (!Resp.find("result")) {
              ++Mine.Errors;
              --Version; // kept the previous version
            }
          } else if (K % 53 == 17) {
            if (!Call("$/stats", Value::object()).find("result"))
              ++Mine.Errors;
          } else {
            size_t QIdx = (I + K) % 3;
            Value Resp =
                Call("petal/complete",
                     completeParams(Doc, "EllipseArc", "Examine",
                                    Queries[QIdx]));
            if (!Resp.find("result"))
              ++Mine.Errors;
            else if (completionsOf(Resp) != Want[QIdx])
              ++Mine.Mismatches;
          }
        }
        std::lock_guard<std::mutex> L(OM);
        Outcome.Sent += Mine.Sent;
        Outcome.Answered += Mine.Answered;
        Outcome.Errors += Mine.Errors;
        Outcome.Mismatches += Mine.Mismatches;
      });
    for (std::thread &T : Clients)
      T.join();
    C.notify("exit", Value::object());
    Server.join();
    ::close(Fds[0]); // server side first: the reader sees EOF and stops
    Outcome.Strays = C.strays();
    Outcome.Duplicates = C.duplicates();
    Outcome.Lost = C.lost();
    EXPECT_EQ(C.unclaimed(), 0u);
  }
  ::close(Fds[1]);
  FaultInjector::instance().disarm();
  return Outcome;
}

TEST(ChaosTest, TenThousandFaultyRequestsZeroCrashesExactlyOneResponse) {
  ChaosOutcome O = runChaos(/*Faults=*/true, /*RequestsPerClient=*/2500);
  EXPECT_EQ(O.Sent, 10000u);
  EXPECT_EQ(O.Answered, O.Sent) << "every request got exactly one response";
  EXPECT_EQ(O.Duplicates, 0u);
  EXPECT_EQ(O.Lost, 0u);
  EXPECT_EQ(O.Mismatches, 0u)
      << "failures are honest errors, never wrong answers";
  // Every injected fault engaged its recovery path.
  FaultInjector &FI = FaultInjector::instance();
  EXPECT_EQ(FI.injectedTotal(), FI.recoveredTotal());
}

TEST(ChaosTest, WithFaultsDisabledEveryAnswerIsBitIdenticalToSerial) {
  ChaosOutcome O = runChaos(/*Faults=*/false, /*RequestsPerClient=*/500);
  EXPECT_EQ(O.Sent, 2000u);
  EXPECT_EQ(O.Answered, O.Sent);
  EXPECT_EQ(O.Errors, 0u);
  EXPECT_EQ(O.Mismatches, 0u);
  EXPECT_EQ(O.Strays, 0u); // no garbage frames -> no ParseErrors
  EXPECT_EQ(O.Duplicates, 0u);
  EXPECT_EQ(O.Lost, 0u);
  EXPECT_EQ(FaultInjector::instance().injectedTotal(), 0u);
}

} // namespace
