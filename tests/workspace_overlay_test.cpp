//===- tests/workspace_overlay_test.cpp - base/overlay fresh-twin property ===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
//
// The correctness bar for the base/overlay workspace (DESIGN.md §14): a
// document built as an overlay over a shared frozen base corpus must
// produce completions *bit-identical* to a monolithic build of the same
// sources (base text + document text resolved into one TypeSystem), for
// every ranking spec — and overlay incremental rebuilds must preserve that
// through edits. The concurrency case — many overlay documents reading one
// base's frozen tables from 8 threads — runs under ThreadSanitizer in
// scripts/ci.sh; the whole file also runs under ASan (overlay spans alias
// base-owned storage, so lifetime bugs surface here first).
//
//===----------------------------------------------------------------------===//

#include "TestCorpora.h"

#include "service/Client.h"
#include "service/Session.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace petal;
using json::Value;

namespace {

/// The shared framework corpus every overlay layers over.
std::string baseText() { return corpora::GeometryCorpus; }

/// A client document: uses framework types but adds its own class.
std::string docText() {
  return "class Scratch {\n"
         "  void Play(System.Windows.Point point,\n"
         "            DynamicGeometry.ShapeStyle style) {\n"
         "    return;\n"
         "  }\n"
         "}\n";
}

/// The monolithic twin's source: base first, then the document, so entity
/// ids are assigned in exactly the order the overlay build produces them
/// (base ids, then document ids continuing after).
std::string monolithicText(const std::string &Doc) {
  return baseText() + Doc;
}

/// Replaces the first occurrence of \p From in \p S with \p To.
std::string replaceFirst(std::string S, const std::string &From,
                         const std::string &To) {
  size_t At = S.find(From);
  EXPECT_NE(At, std::string::npos) << From;
  if (At != std::string::npos)
    S.replace(At, From.size(), To);
  return S;
}

std::shared_ptr<const BaseCorpus> buildBase() {
  std::string Error;
  std::shared_ptr<const BaseCorpus> Base =
      baseCorpusFromSource(baseText(), Error);
  EXPECT_NE(Base, nullptr) << Error;
  return Base;
}

std::unique_ptr<DocumentState>
buildOverlay(const std::string &Text, int64_t V,
             const std::shared_ptr<const BaseCorpus> &Base,
             const DocumentState *Prev = nullptr) {
  std::string Error;
  std::unique_ptr<DocumentState> Doc = buildDocumentState(
      "doc.cs", Text, V, /*DocThreads=*/1, Error, Prev, Base);
  EXPECT_NE(Doc, nullptr) << Error;
  return Doc;
}

std::unique_ptr<DocumentState> buildMonolithic(const std::string &DocSrc,
                                               int64_t V) {
  std::string Error;
  std::unique_ptr<DocumentState> Doc = buildDocumentState(
      "doc.cs", monolithicText(DocSrc), V, /*DocThreads=*/1, Error);
  EXPECT_NE(Doc, nullptr) << Error;
  return Doc;
}

CompleteSpec spec(const std::string &Query) {
  CompleteSpec S;
  S.Class = "Scratch";
  S.Method = "Play";
  S.Query = Query;
  S.N = 10;
  return S;
}

/// Queries at the document's code site (the only kind an overlay serves:
/// the base corpus carries the vocabulary, the document carries the code),
/// across every ranking dimension the engine distinguishes: the abstract
/// term (whose overlay solution merely *extends* the frozen base
/// solution), reachability pruning (whose overlay matrices cover only
/// overlay rows), explain, and spec-string ablations.
std::vector<CompleteSpec> queryBattery() {
  std::vector<CompleteSpec> Qs;
  Qs.push_back(spec("?({point})"));
  Qs.push_back(spec("?({point, style})"));
  Qs.push_back(spec("Distance(point, ?)"));
  CompleteSpec Explained = spec("?({point})");
  Explained.Opts.Explain = true;
  Qs.push_back(Explained);
  CompleteSpec NoAbs = spec("?({point})");
  NoAbs.Opts.UseAbstractTypes = false;
  Qs.push_back(NoAbs);
  CompleteSpec NoReach = spec("?({point})");
  NoReach.Opts.UseReachabilityPruning = false;
  Qs.push_back(NoReach);
  CompleteSpec RankNone = spec("?({point})");
  RankNone.Opts.Rank = RankingOptions::fromSpec("none");
  Qs.push_back(RankNone);
  CompleteSpec RankNoDepth = spec("?({point, style})");
  RankNoDepth.Opts.Rank = RankingOptions::fromSpec("-d");
  Qs.push_back(RankNoDepth);
  return Qs;
}

void expectBitIdentical(DocumentState &Overlay, DocumentState &Mono) {
  for (const CompleteSpec &Q : queryBattery()) {
    SCOPED_TRACE(Q.Query + " rank=" + Q.Opts.Rank.spec());
    QueryOutcome A = runCompletion(Overlay, Q);
    QueryOutcome B = runCompletion(Mono, Q);
    ASSERT_TRUE(A.Ok && B.Ok) << A.ErrMsg << " / " << B.ErrMsg;
    EXPECT_EQ(A.Completions.write(), B.Completions.write());
    EXPECT_EQ(A.ClassQualName, B.ClassQualName);
  }
}

TEST(WorkspaceOverlayTest, OverlayMatchesMonolithicTwinBitForBit) {
  std::shared_ptr<const BaseCorpus> Base = buildBase();
  ASSERT_NE(Base, nullptr);
  std::unique_ptr<DocumentState> Overlay = buildOverlay(docText(), 1, Base);
  std::unique_ptr<DocumentState> Mono = buildMonolithic(docText(), 1);
  ASSERT_TRUE(Overlay && Mono);

  // The overlay really is an overlay: it layers over the base TypeSystem,
  // id-continues its entity spaces (total counts match the monolithic
  // twin's), and owns only the document-sized delta.
  EXPECT_EQ(Overlay->Base.get(), Base.get());
  EXPECT_EQ(Overlay->TS->baseLayer(), Base->TS.get());
  EXPECT_EQ(Overlay->TS->numTypes(), Mono->TS->numTypes());
  EXPECT_EQ(Overlay->TS->numMethods(), Mono->TS->numMethods());
  EXPECT_EQ(Overlay->TS->numFields(), Mono->TS->numFields());
  EXPECT_LT(Overlay->memoryBytes(), Base->memoryBytes());
  EXPECT_EQ(Mono->Base, nullptr);

  expectBitIdentical(*Overlay, *Mono);
}

TEST(WorkspaceOverlayTest, EditedOverlaysRebuildIncrementallyAndStayIdentical) {
  std::shared_ptr<const BaseCorpus> Base = buildBase();
  ASSERT_NE(Base, nullptr);
  std::unique_ptr<DocumentState> V1 = buildOverlay(docText(), 1, Base);
  ASSERT_NE(V1, nullptr);

  // Body-only edit: the overlay TypeSystem and frozen overlay tables carry
  // over (the PR's reclassification of the §12 incremental path — reuse is
  // now overlay-layer reuse; the base was never per-document to begin
  // with).
  const std::string V2Text =
      replaceFirst(docText(), "return;", "var tmp = point;\n    return;");
  std::unique_ptr<DocumentState> V2 = buildOverlay(V2Text, 2, Base, V1.get());
  ASSERT_NE(V2, nullptr);
  EXPECT_EQ(V2->Kind, DocumentState::BuildKind::IncrementalBody);
  EXPECT_EQ(V2->TS.get(), V1->TS.get());
  EXPECT_EQ(V2->Base.get(), Base.get());
  std::unique_ptr<DocumentState> M2 = buildMonolithic(V2Text, 2);
  ASSERT_NE(M2, nullptr);
  expectBitIdentical(*V2, *M2);

  // Token-identical edit on top: the overlay abstract-type solution (the
  // base extension) carries over too.
  const std::string V3Text = V2Text + "\n\n";
  std::unique_ptr<DocumentState> V3 = buildOverlay(V3Text, 3, Base, V2.get());
  ASSERT_NE(V3, nullptr);
  EXPECT_EQ(V3->Kind, DocumentState::BuildKind::IncrementalNoop);
  EXPECT_EQ(V3->Exec->sharedSolution(), V2->Exec->sharedSolution());
  std::unique_ptr<DocumentState> M3 = buildMonolithic(V3Text, 3);
  ASSERT_NE(M3, nullptr);
  expectBitIdentical(*V3, *M3);

  // Type-graph edit: a fresh overlay (not a fresh monolith) — the rebuild
  // is full relative to the *document*, still a delta relative to the
  // workspace.
  const std::string V4Text =
      replaceFirst(V3Text, "class Scratch {\n",
                   "class Scratch {\n  double Weight;\n");
  std::unique_ptr<DocumentState> V4 = buildOverlay(V4Text, 4, Base, V3.get());
  ASSERT_NE(V4, nullptr);
  EXPECT_EQ(V4->Kind, DocumentState::BuildKind::Full);
  EXPECT_NE(V4->TS.get(), V3->TS.get());
  EXPECT_EQ(V4->TS->baseLayer(), Base->TS.get());
  std::unique_ptr<DocumentState> M4 = buildMonolithic(V4Text, 4);
  ASSERT_NE(M4, nullptr);
  expectBitIdentical(*V4, *M4);
}

TEST(WorkspaceOverlayTest, SharedBaseSurvivesConcurrentOverlayQueries) {
  // Eight overlay documents over ONE base corpus, each queried from its
  // own thread (sessions are strands: concurrency is across documents,
  // never within one). Every shared structure the threads touch — the base
  // TypeSystem's dense matrix, the frozen CSR tables, the base solution
  // parents — is read-only; TSan must observe no races, and every answer
  // must match the serially computed monolithic twin.
  std::shared_ptr<const BaseCorpus> Base = buildBase();
  ASSERT_NE(Base, nullptr);

  constexpr int NumThreads = 8;
  std::vector<std::unique_ptr<DocumentState>> Docs;
  std::vector<std::vector<std::string>> Want(NumThreads);
  const std::vector<CompleteSpec> Qs = queryBattery();
  for (int I = 0; I != NumThreads; ++I) {
    std::string Body = "var tmp = point;\n    ";
    for (int J = 0; J != I; ++J)
      Body += "var extra" + std::to_string(J) + " = point;\n    ";
    const std::string Text =
        replaceFirst(docText(), "return;", Body + "return;");
    std::unique_ptr<DocumentState> D = buildOverlay(Text, 1, Base);
    ASSERT_NE(D, nullptr);
    std::unique_ptr<DocumentState> M = buildMonolithic(Text, 1);
    ASSERT_NE(M, nullptr);
    for (const CompleteSpec &Q : Qs) {
      QueryOutcome O = runCompletion(*M, Q);
      ASSERT_TRUE(O.Ok) << O.ErrMsg;
      Want[I].push_back(O.Completions.write());
    }
    Docs.push_back(std::move(D));
  }

  std::vector<std::thread> Threads;
  for (int I = 0; I != NumThreads; ++I)
    Threads.emplace_back([&, I] {
      for (int Round = 0; Round != 3; ++Round)
        for (size_t Q = 0; Q != Qs.size(); ++Q) {
          QueryOutcome O = runCompletion(*Docs[I], Qs[Q]);
          ASSERT_TRUE(O.Ok) << O.ErrMsg;
          EXPECT_EQ(O.Completions.write(), Want[I][Q]);
        }
    });
  for (std::thread &T : Threads)
    T.join();
}

TEST(WorkspaceOverlayTest, ServiceServesOverlaySessionsAgainstOneBase) {
  // End to end through petald: Options::Base makes every open an overlay
  // build, and the answers match a direct monolithic engine run over the
  // concatenated sources.
  PetalService::Options Opts;
  Opts.Workers = 2;
  Opts.DocThreads = 1;
  Opts.CacheCapacity = 64;
  Opts.Base = buildBase();
  ASSERT_NE(Opts.Base, nullptr);
  InProcessClient C(Opts);

  Value P = Value::object();
  P.set("doc", "doc.cs");
  P.set("text", docText());
  P.set("version", static_cast<int64_t>(1));
  Value OpenResp = C.call("petal/open", P);
  ASSERT_EQ(OpenResp.find("error"), nullptr) << OpenResp.write();
  // The reported entity counts are workspace totals (base + overlay).
  EXPECT_GT(OpenResp.find("result")->getInt("types", -1), 10);

  Value Q = Value::object();
  Q.set("doc", "doc.cs");
  Q.set("class", "Scratch");
  Q.set("method", "Play");
  Q.set("query", "?({point})");
  Q.set("n", static_cast<int64_t>(10));
  Value Resp = C.call("petal/complete", Q);
  ASSERT_EQ(Resp.find("error"), nullptr) << Resp.write();

  std::unique_ptr<DocumentState> Mono = buildMonolithic(docText(), 1);
  ASSERT_NE(Mono, nullptr);
  QueryOutcome O = runCompletion(*Mono, spec("?({point})"));
  ASSERT_TRUE(O.Ok) << O.ErrMsg;
  EXPECT_EQ(Resp.find("result")->find("completions")->write(),
            O.Completions.write());

  Value Stats = C.callResult("$/stats", Value::object());
  const Value *Mem = Stats.find("memory");
  ASSERT_NE(Mem, nullptr);
  EXPECT_GT(Mem->getInt("baseBytes", 0), 0);
  EXPECT_GT(Mem->getInt("overlayBytes", 0), 0);
  EXPECT_LT(Mem->getInt("overlayBytes", 0), Mem->getInt("baseBytes", 0));
}

} // namespace
