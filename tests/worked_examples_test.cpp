//===- tests/worked_examples_test.cpp - The paper's §2 examples -----------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
//
// End-to-end reproductions of the three illustrative examples in §2:
// Fig. 2 (?({img, size})), Fig. 3 (Distance(point, ?)), and Fig. 4
// (point.?*m >= this.?*m).
//
//===----------------------------------------------------------------------===//

#include "TestCorpora.h"

#include "code/ExprPrinter.h"
#include "complete/Engine.h"
#include "parser/Frontend.h"

#include <gtest/gtest.h>

using namespace petal;

namespace {

/// Fixture loading a corpus and preparing an engine + query context.
class WorkedExampleTest : public ::testing::Test {
protected:
  void load(const char *Source, const char *ClassName,
            const char *MethodName) {
    TS = std::make_unique<TypeSystem>();
    P = std::make_unique<Program>(*TS);
    ASSERT_TRUE(loadProgramText(Source, *P, Diags)) << diagText();
    Class = findCodeClass(*P, ClassName);
    ASSERT_NE(Class, nullptr);
    Method = findCodeMethod(*P, *Class, MethodName);
    ASSERT_NE(Method, nullptr);
    Site = {Class, Method, Method->body().size()};
    Idx = std::make_unique<CompletionIndexes>(*P);
    Engine = std::make_unique<CompletionEngine>(*P, *Idx);
  }

  const PartialExpr *query(const char *Text) {
    QueryScope Scope{Class, Method, Site.StmtIndex};
    const PartialExpr *Q = parseQueryText(Text, *P, Scope, Diags);
    EXPECT_NE(Q, nullptr) << diagText();
    return Q;
  }

  std::vector<std::string> topStrings(const char *QueryText, size_t N) {
    const PartialExpr *Q = query(QueryText);
    if (!Q)
      return {};
    std::vector<std::string> Out;
    for (const Completion &C : Engine->complete(Q, Site, N))
      Out.push_back(printExpr(*TS, C.E));
    return Out;
  }

  std::string diagText() const {
    std::ostringstream OS;
    Diags.print(OS);
    return OS.str();
  }

  DiagnosticEngine Diags;
  std::unique_ptr<TypeSystem> TS;
  std::unique_ptr<Program> P;
  const CodeClass *Class = nullptr;
  const CodeMethod *Method = nullptr;
  CodeSite Site;
  std::unique_ptr<CompletionIndexes> Idx;
  std::unique_ptr<CompletionEngine> Engine;
};

// Fig. 2: the unknown-method query ?({img, size}) must rank the intended
// ResizeDocument call first, ahead of the generic Pair/Triple/Quadruple
// distractors.
TEST_F(WorkedExampleTest, Fig2ResizeDocumentRanksFirst) {
  load(corpora::PaintCorpus, "Client", "Work");
  std::vector<std::string> Top = topStrings("?({img, size})", 10);
  ASSERT_FALSE(Top.empty());
  EXPECT_EQ(Top[0],
            "PaintDotNet.Actions.CanvasSizeAction.ResizeDocument(img, size, "
            "0, 0)");

  // The distractors from Fig. 2 appear, but strictly later.
  auto Find = [&Top](const std::string &Needle) -> int {
    for (size_t I = 0; I != Top.size(); ++I)
      if (Top[I].find(Needle) != std::string::npos)
        return static_cast<int>(I);
    return -1;
  };
  int Resize = Find("ResizeDocument");
  int PairCreate = Find("Pair.Create");
  EXPECT_EQ(Resize, 0);
  ASSERT_GE(PairCreate, 0) << "Pair.Create should be among the candidates";
  EXPECT_LT(Resize, PairCreate);
  // The instance-method distractor ranks between them (score 9 vs 8 vs 10).
  int OnDeser = Find("OnDeserialization");
  ASSERT_GE(OnDeser, 0);
  EXPECT_LT(Resize, OnDeser);
}

// Fig. 2 footnote: Triple.Create(0, size, img) is a *valid* completion —
// extra arguments are left as 0, not filled.
TEST_F(WorkedExampleTest, Fig2ExtraArgumentsStayDontCare) {
  load(corpora::PaintCorpus, "Client", "Work");
  std::vector<std::string> Top = topStrings("?({img, size})", 20);
  bool FoundTriple = false;
  for (const std::string &S : Top)
    if (S.find("Triple.Create") != std::string::npos) {
      FoundTriple = true;
      EXPECT_NE(S.find("0"), std::string::npos)
          << "unfilled Triple.Create argument must print as 0: " << S;
    }
  EXPECT_TRUE(FoundTriple);
}

// Fig. 3: Distance(point, ?) — the hole completes to every reachable Point:
// the local first (score 0), then one-lookup fields and the global
// Math.InfinitePoint (score 2), then two-lookup chains (score 4), including
// the method-call chain shapeStyle.GetSampleGlyph().RenderTransformOrigin.
TEST_F(WorkedExampleTest, Fig3DistanceHole) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  std::vector<std::string> Top = topStrings("Distance(point, ?)", 16);
  ASSERT_GE(Top.size(), 10u);

  // All results are Distance calls with the hole filled in second position.
  for (const std::string &S : Top)
    EXPECT_EQ(S.find("DynamicGeometry.Math.Distance(point, "), 0u) << S;

  EXPECT_EQ(Top[0], "DynamicGeometry.Math.Distance(point, point)");

  auto Rank = [&Top](const std::string &Needle) -> int {
    for (size_t I = 0; I != Top.size(); ++I)
      if (Top[I].find(Needle) != std::string::npos)
        return static_cast<int>(I);
    return 1000;
  };
  // One-lookup candidates precede two-lookup chains.
  EXPECT_LT(Rank("this.Center)"), Rank("this.shape.RenderTransformOrigin"));
  EXPECT_LT(Rank("Math.InfinitePoint"),
            Rank("shapeStyle.GetSampleGlyph().RenderTransformOrigin"));
  // All of Fig. 3's entries are present.
  EXPECT_NE(Rank("this.BeginLocation)"), 1000);
  EXPECT_NE(Rank("this.EndLocation)"), 1000);
  EXPECT_NE(Rank("this.ArcShape.Point"), 1000);
  EXPECT_NE(Rank("this.FigureField.StartPoint"), 1000);
  EXPECT_NE(Rank("shapeStyle.GetSampleGlyph().RenderTransformOrigin"), 1000);
}

// Fig. 4: point.?*m >= this.?*m — both sides complete simultaneously and
// only type-compatible pairs appear; same-named field pairs rank first.
TEST_F(WorkedExampleTest, Fig4ComparisonCompletion) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  std::vector<std::string> Top = topStrings("point.?*m >= this.?*m", 14);
  ASSERT_GE(Top.size(), 8u);

  auto Rank = [&Top](const std::string &Needle) -> int {
    for (size_t I = 0; I != Top.size(); ++I)
      if (Top[I] == Needle)
        return static_cast<int>(I);
    return 1000;
  };

  // Matching-name completions come first (Fig. 4 lists point.X >= this.P1.X
  // etc. before point.X >= this.Length).
  EXPECT_LT(Rank("point.X >= this.P1.X"), Rank("point.X >= this.Length"));
  EXPECT_LT(Rank("point.Y >= this.P2.Y"), Rank("point.Y >= this.Length"));
  EXPECT_NE(Rank("point.X >= this.Midpoint.X"), 1000);
  EXPECT_NE(Rank("point.Y >= this.FirstValidValue().Y"), 1000);

  // Mismatched-name pairs like point.X >= this.P1.Y must rank beneath the
  // matched ones (they cost +3).
  int Matched = Rank("point.X >= this.P1.X");
  ASSERT_NE(Matched, 1000);
  for (const std::string &S : Top)
    EXPECT_EQ(S.find("point.X >= this.P1.Y"), std::string::npos)
        << "mismatched pair should not outrank the matched ones";
}

} // namespace
