//===- tests/dense_index_test.cpp - Frozen dense index equivalence --------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
//
// The frozen dense tables (TypeId×TypeId distance matrices, CSR member
// edges, pre-merged method-index spans — see DESIGN.md §11) are a pure
// representation change: every query they answer must be *value-identical*
// to the legacy lazy path. These tests enforce that exhaustively — every
// (type, type) pair, every member-edge list, every method-candidate list —
// on two identically generated corpora, one frozen dense and one kept on
// the warmed lazy path (FreezeOptions::MaxDenseBytes = 0). A concurrent
// stress case (run under TSan via scripts/ci.sh; the suite name matches
// the IndexStress regex) hammers the lock-free tables from eight threads.
//
//===----------------------------------------------------------------------===//

#include "TestCorpora.h"

#include "code/ExprPrinter.h"
#include "complete/Engine.h"
#include "corpus/Generator.h"
#include "parser/Frontend.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

using namespace petal;

namespace {

/// Two identically generated corpora (same profile, same seed): Dense is
/// frozen into the flat tables, Legacy is warmed but kept on the lazy
/// hash/vector path. Every index query must agree between the two.
class DenseEquivalenceTest : public ::testing::Test {
protected:
  void SetUp() override {
    ProjectProfile Prof = paperProjectProfiles(0.15)[2];

    DenseTS = std::make_unique<TypeSystem>();
    DenseP = std::make_unique<Program>(*DenseTS);
    CorpusGenerator(Prof).generate(*DenseP);
    Dense = std::make_unique<CompletionIndexes>(*DenseP);
    Dense->freeze(); // default budget: dense tables

    LegacyTS = std::make_unique<TypeSystem>();
    LegacyP = std::make_unique<Program>(*LegacyTS);
    CorpusGenerator(Prof).generate(*LegacyP);
    Legacy = std::make_unique<CompletionIndexes>(*LegacyP);
    Legacy->freeze(FreezeOptions{/*MaxDenseBytes=*/0}); // warmed lazy path

    ASSERT_EQ(DenseTS->numTypes(), LegacyTS->numTypes());
  }

  std::unique_ptr<TypeSystem> DenseTS, LegacyTS;
  std::unique_ptr<Program> DenseP, LegacyP;
  std::unique_ptr<CompletionIndexes> Dense, Legacy;
};

TEST_F(DenseEquivalenceTest, FreezeModesTakeTheIntendedRepresentation) {
  EXPECT_TRUE(Dense->frozen());
  EXPECT_TRUE(DenseTS->denseDistancesFrozen());
  EXPECT_TRUE(Dense->Members.frozen());
  EXPECT_TRUE(Dense->Methods.frozen());
  EXPECT_TRUE(Dense->Reach.frozen());

  // Budget 0 keeps every index on the (warmed) lazy representation.
  EXPECT_TRUE(Legacy->frozen());
  EXPECT_FALSE(LegacyTS->denseDistancesFrozen());
  EXPECT_FALSE(Legacy->Members.frozen());
  EXPECT_FALSE(Legacy->Methods.frozen());
  EXPECT_FALSE(Legacy->Reach.frozen());
}

TEST_F(DenseEquivalenceTest, TypeDistancesMatchLegacyOnEveryPair) {
  size_t N = DenseTS->numTypes();
  for (size_t F = 0; F != N; ++F)
    for (size_t T = 0; T != N; ++T) {
      TypeId From = static_cast<TypeId>(F), To = static_cast<TypeId>(T);
      ASSERT_EQ(DenseTS->implicitlyConvertible(From, To),
                LegacyTS->implicitlyConvertible(From, To))
          << DenseTS->qualifiedName(From) << " -> "
          << DenseTS->qualifiedName(To);
      ASSERT_EQ(DenseTS->typeDistance(From, To),
                LegacyTS->typeDistance(From, To))
          << DenseTS->qualifiedName(From) << " -> "
          << DenseTS->qualifiedName(To);
    }
}

TEST_F(DenseEquivalenceTest, ReachabilityMatchesLegacyOnEveryPair) {
  size_t N = DenseTS->numTypes();
  for (size_t F = 0; F != N; ++F)
    for (size_t T = 0; T != N; ++T) {
      TypeId From = static_cast<TypeId>(F), To = static_cast<TypeId>(T);
      for (bool Methods : {false, true}) {
        ASSERT_EQ(Dense->Reach.minLookups(From, To, Methods),
                  Legacy->Reach.minLookups(From, To, Methods))
            << "minLookups " << F << " -> " << T << " methods=" << Methods;
        ASSERT_EQ(Dense->Reach.minLookupsToConvertible(From, To, Methods),
                  Legacy->Reach.minLookupsToConvertible(From, To, Methods))
            << "minLookupsToConvertible " << F << " -> " << T
            << " methods=" << Methods;
      }
    }
}

TEST_F(DenseEquivalenceTest, MemberEdgeListsMatchLegacyElementwise) {
  size_t N = DenseTS->numTypes();
  for (size_t T = 0; T != N; ++T) {
    TypeId Ty = static_cast<TypeId>(T);
    auto D = Dense->Members.edges(Ty);
    auto L = Legacy->Members.edges(Ty);
    ASSERT_EQ(D.size(), L.size()) << "type " << T;
    ASSERT_EQ(Dense->Members.numFieldEdges(Ty),
              Legacy->Members.numFieldEdges(Ty));
    for (size_t I = 0; I != D.size(); ++I) {
      ASSERT_EQ(D[I].IsField, L[I].IsField) << "type " << T << " edge " << I;
      ASSERT_EQ(D[I].Field, L[I].Field);
      ASSERT_EQ(D[I].Method, L[I].Method);
      ASSERT_EQ(D[I].ResultType, L[I].ResultType);
    }
  }
}

TEST_F(DenseEquivalenceTest, MethodCandidateListsMatchLegacyInOrder) {
  size_t N = DenseTS->numTypes();
  for (size_t T = 0; T != N; ++T) {
    TypeId Ty = static_cast<TypeId>(T);
    auto D = Dense->Methods.candidatesForArgType(Ty);
    auto L = Legacy->Methods.candidatesForArgType(Ty);
    ASSERT_EQ(D.size(), L.size()) << "type " << T;
    // Order is part of the contract: the pre-merged spans must preserve
    // the nearer-supertype-first BFS order the ranking relies on.
    for (size_t I = 0; I != D.size(); ++I)
      ASSERT_EQ(D[I], L[I]) << "type " << T << " slot " << I;
  }
}

//===----------------------------------------------------------------------===//
// Engine-level equivalence on the parsed running-example corpus
//===----------------------------------------------------------------------===//

/// Completions (expressions, scores, and explain cards) must be
/// bit-identical whether the engine runs on dense-frozen or legacy-lazy
/// indexes.
TEST(DenseEngineEquivalenceTest, CompletionsIdenticalDenseVsLegacy) {
  const char *Queries[] = {"?", "Distance(point, ?)",
                           "point.?*m >= this.?*m", "?({point})", "this.?*f"};

  auto Run = [&](size_t MaxDenseBytes) {
    DiagnosticEngine Diags;
    TypeSystem TS;
    Program P(TS);
    EXPECT_TRUE(loadProgramText(corpora::GeometryCorpus, P, Diags));
    const CodeClass *Class = findCodeClass(P, "EllipseArc");
    const CodeMethod *Method = findCodeMethod(P, *Class, "Examine");
    CodeSite Site{Class, Method, Method->body().size()};

    CompletionIndexes Idx(P);
    Idx.freeze(FreezeOptions{MaxDenseBytes});
    CompletionEngine Engine(P, Idx);

    CompletionOptions Opts;
    Opts.Explain = true;
    std::ostringstream OS;
    for (const char *Text : Queries) {
      QueryScope Scope{Class, Method, Site.StmtIndex};
      const PartialExpr *Q = parseQueryText(Text, P, Scope, Diags);
      EXPECT_NE(Q, nullptr);
      for (const Completion &C : Engine.complete(Q, Site, 10, Opts))
        OS << C.Score << ' ' << printExpr(TS, C.E) << ' '
           << C.Card->toString() << '\n';
    }
    return OS.str();
  };

  std::string DenseOut = Run(/*MaxDenseBytes=*/256u << 20);
  std::string LegacyOut = Run(/*MaxDenseBytes=*/0);
  EXPECT_FALSE(DenseOut.empty());
  EXPECT_EQ(DenseOut, LegacyOut);
}

/// An over-tight budget must refuse dense compilation and fall back to the
/// lazy path rather than building partial tables.
TEST(DenseEngineEquivalenceTest, TinyBudgetFallsBackToLazyAndStillAnswers) {
  TypeSystem TS;
  Program P(TS);
  CorpusGenerator(paperProjectProfiles(0.1)[0]).generate(P);
  CompletionIndexes Idx(P);
  Idx.freeze(FreezeOptions{/*MaxDenseBytes=*/1});
  EXPECT_TRUE(Idx.frozen());
  EXPECT_FALSE(TS.denseDistancesFrozen());
  EXPECT_FALSE(Idx.Reach.frozen());
  // CSR compaction is not byte-budgeted (it shrinks storage); it still runs.
  EXPECT_TRUE(Idx.Members.frozen());
  EXPECT_TRUE(Idx.Methods.frozen());
  // And the index still answers.
  size_t Total = 0;
  for (size_t T = 0; T != TS.numTypes(); ++T)
    Total += Idx.Methods.candidatesForArgType(static_cast<TypeId>(T)).size();
  EXPECT_GT(Total, 0u);
}

//===----------------------------------------------------------------------===//
// Concurrent stress over the lock-free dense tables (TSan: scripts/ci.sh)
//===----------------------------------------------------------------------===//

/// Eight threads hammer the dense matrices and CSR spans with the *same*
/// access pattern: every per-thread checksum must agree with a serial
/// recompute (a torn read or partially published table would diverge).
/// The suite name contains "IndexStress" so the TSan CI leg picks it up.
TEST(DenseIndexStressTest, EightThreadsReadLockFreeTablesConsistently) {
  TypeSystem TS;
  Program P(TS);
  CorpusGenerator(paperProjectProfiles(0.1)[0]).generate(P);
  CompletionIndexes Idx(P);
  Idx.freeze();
  ASSERT_TRUE(Idx.Reach.frozen());
  ASSERT_TRUE(TS.denseDistancesFrozen());

  auto Checksum = [&] {
    uint64_t Sum = 0;
    size_t N = TS.numTypes();
    for (size_t Round = 0; Round != 3; ++Round)
      for (size_t I = 0; I != N; ++I) {
        TypeId From = static_cast<TypeId>((I * 7 + Round) % N);
        TypeId To = static_cast<TypeId>((I * 13 + 5) % N);
        Sum += Idx.Members.edges(From).size();
        Sum += Idx.Methods.candidatesForArgType(From).size();
        for (bool Methods : {false, true}) {
          Sum += static_cast<uint64_t>(
              Idx.Reach.minLookups(From, To, Methods).value_or(-1) + 2);
          Sum += static_cast<uint64_t>(
              Idx.Reach.minLookupsToConvertible(From, To, Methods)
                      .value_or(-1) +
              2);
        }
        Sum += TS.implicitlyConvertible(From, To);
        Sum +=
            static_cast<uint64_t>(TS.typeDistance(From, To).value_or(-1) + 2);
      }
    return Sum;
  };

  uint64_t Expected = Checksum();
  constexpr size_t NumThreads = 8;
  std::vector<uint64_t> Got(NumThreads, 0);
  std::vector<std::thread> Threads;
  for (size_t T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] { Got[T] = Checksum(); });
  for (std::thread &Th : Threads)
    Th.join();
  for (size_t T = 0; T != NumThreads; ++T)
    EXPECT_EQ(Got[T], Expected) << "thread " << T;
}

} // namespace
