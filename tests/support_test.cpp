//===- tests/support_test.cpp - Support-library unit tests ----------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Diagnostics.h"
#include "support/Rng.h"
#include "support/StrUtil.h"
#include "support/Table.h"
#include "support/UnionFind.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

using namespace petal;

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

namespace {
struct DtorCounter {
  explicit DtorCounter(int *Count) : Count(Count) {}
  ~DtorCounter() { ++*Count; }
  int *Count;
};
} // namespace

TEST(ArenaTest, AllocatesDistinctObjects) {
  Arena A;
  int *X = A.create<int>(1);
  int *Y = A.create<int>(2);
  EXPECT_NE(X, Y);
  EXPECT_EQ(*X, 1);
  EXPECT_EQ(*Y, 2);
}

TEST(ArenaTest, RunsDestructorsOnArenaDestruction) {
  int Count = 0;
  {
    Arena A;
    for (int I = 0; I != 100; ++I)
      A.create<DtorCounter>(&Count);
    EXPECT_EQ(Count, 0);
    EXPECT_EQ(A.numManagedObjects(), 100u);
  }
  EXPECT_EQ(Count, 100);
}

TEST(ArenaTest, TriviallyDestructibleTypesAreNotTracked) {
  Arena A;
  A.create<int>(7);
  A.create<double>(3.5);
  EXPECT_EQ(A.numManagedObjects(), 0u);
}

TEST(ArenaTest, HandlesLargeAllocations) {
  Arena A;
  // Larger than the initial slab; must not crash or overlap.
  struct Big {
    char Data[100000];
  };
  Big *B1 = A.create<Big>();
  Big *B2 = A.create<Big>();
  B1->Data[0] = 'x';
  B2->Data[0] = 'y';
  EXPECT_EQ(B1->Data[0], 'x');
  EXPECT_GE(A.bytesReserved(), 2 * sizeof(Big));
}

TEST(ArenaTest, RespectsAlignment) {
  Arena A;
  A.allocate(1, 1);
  void *P = A.allocate(16, 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 16, 0u);
  A.allocate(3, 1);
  void *Q = A.allocate(32, 32);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Q) % 32, 0u);
}

TEST(ArenaTest, StringsSurviveAndAreFreed) {
  Arena A;
  auto *S = A.create<std::string>(1000, 'a');
  EXPECT_EQ(S->size(), 1000u);
  EXPECT_EQ(A.numManagedObjects(), 1u);
}

//===----------------------------------------------------------------------===//
// UnionFind
//===----------------------------------------------------------------------===//

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind UF(5);
  for (uint32_t I = 0; I != 5; ++I)
    EXPECT_EQ(UF.find(I), I);
  EXPECT_EQ(UF.numSets(), 5u);
}

TEST(UnionFindTest, UniteMergesClasses) {
  UnionFind UF(6);
  UF.unite(0, 1);
  UF.unite(2, 3);
  EXPECT_TRUE(UF.connected(0, 1));
  EXPECT_TRUE(UF.connected(2, 3));
  EXPECT_FALSE(UF.connected(1, 2));
  UF.unite(1, 2);
  EXPECT_TRUE(UF.connected(0, 3));
  EXPECT_EQ(UF.numSets(), 3u); // {0,1,2,3}, {4}, {5}
}

TEST(UnionFindTest, GrowPreservesExistingSets) {
  UnionFind UF(2);
  UF.unite(0, 1);
  UF.grow(10);
  EXPECT_TRUE(UF.connected(0, 1));
  EXPECT_FALSE(UF.connected(0, 9));
  EXPECT_EQ(UF.size(), 10u);
}

/// Property: union-find agrees with a naive set-partition oracle under a
/// deterministic random workload.
TEST(UnionFindTest, MatchesNaivePartitionOracle) {
  constexpr uint32_t N = 200;
  UnionFind UF(N);
  std::vector<uint32_t> Label(N);
  for (uint32_t I = 0; I != N; ++I)
    Label[I] = I;

  Rng R(42);
  for (int Step = 0; Step != 500; ++Step) {
    uint32_t A = static_cast<uint32_t>(R.below(N));
    uint32_t B = static_cast<uint32_t>(R.below(N));
    UF.unite(A, B);
    uint32_t LA = Label[A], LB = Label[B];
    if (LA != LB)
      for (uint32_t I = 0; I != N; ++I)
        if (Label[I] == LB)
          Label[I] = LA;
    // Spot-check a few pairs after each step.
    for (int Check = 0; Check != 5; ++Check) {
      uint32_t X = static_cast<uint32_t>(R.below(N));
      uint32_t Y = static_cast<uint32_t>(R.below(N));
      ASSERT_EQ(UF.connected(X, Y), Label[X] == Label[Y]);
    }
  }
  std::set<uint32_t> Labels(Label.begin(), Label.end());
  EXPECT_EQ(UF.numSets(), Labels.size());
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(RngTest, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.below(13), 13u);
}

TEST(RngTest, RangeIsInclusive) {
  Rng R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.range(3, 5);
    EXPECT_GE(V, 3);
    EXPECT_LE(V, 5);
    SawLo |= V == 3;
    SawHi |= V == 5;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, WeightedNeverPicksZeroWeight) {
  Rng R(11);
  for (int I = 0; I != 500; ++I) {
    size_t Pick = R.weighted({0.0, 1.0, 0.0, 2.0});
    EXPECT_TRUE(Pick == 1 || Pick == 3);
  }
}

TEST(RngTest, UnitInHalfOpenInterval) {
  Rng R(13);
  for (int I = 0; I != 1000; ++I) {
    double U = R.unit();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng A(5), B(5);
  Rng FA = A.fork(), FB = B.fork();
  for (int I = 0; I != 16; ++I)
    EXPECT_EQ(FA.next(), FB.next());
}

//===----------------------------------------------------------------------===//
// StrUtil
//===----------------------------------------------------------------------===//

TEST(StrUtilTest, SplitBasics) {
  EXPECT_EQ(splitString("a.b.c", '.'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(splitString("", '.').empty());
  EXPECT_EQ(splitString("abc", '.'), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(splitString("a..b", '.'),
            (std::vector<std::string>{"a", "", "b"}));
}

TEST(StrUtilTest, JoinInvertsSplit) {
  std::vector<std::string> Parts = {"System", "Collections", "Generic"};
  EXPECT_EQ(splitString(joinStrings(Parts, '.'), '.'), Parts);
}

TEST(StrUtilTest, CommonPrefixLength) {
  using V = std::vector<std::string>;
  EXPECT_EQ(commonPrefixLength(V{"a", "b"}, V{"a", "c"}), 1u);
  EXPECT_EQ(commonPrefixLength(V{"a", "b"}, V{"a", "b"}), 2u);
  EXPECT_EQ(commonPrefixLength(V{}, V{"a"}), 0u);
  EXPECT_EQ(commonPrefixLength(V{"x"}, V{"y"}), 0u);
}

TEST(StrUtilTest, FormatHelpers) {
  EXPECT_EQ(formatFixed(1.2345, 2), "1.23");
  EXPECT_EQ(formatPercent(1, 2), "50.00%");
  EXPECT_EQ(formatPercent(0, 0), "n/a");
}

//===----------------------------------------------------------------------===//
// TextTable
//===----------------------------------------------------------------------===//

TEST(TextTableTest, AlignsColumns) {
  TextTable T;
  T.setHeader({"Name", "N"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "22"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("Name    N"), std::string::npos);
  EXPECT_NE(Out.find("longer  22"), std::string::npos);
}

TEST(TextTableTest, ShortRowsArePadded) {
  TextTable T;
  T.setHeader({"A", "B", "C"});
  T.addRow({"1"});
  std::ostringstream OS;
  T.print(OS);
  EXPECT_NE(OS.str().find("1"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, CountsOnlyErrors) {
  DiagnosticEngine D;
  D.warning({1, 1}, "something odd");
  EXPECT_FALSE(D.hasErrors());
  D.error({2, 3}, "something wrong");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.diagnostics().size(), 2u);
}

TEST(DiagnosticsTest, PrintIncludesLocationAndKind) {
  DiagnosticEngine D;
  D.error({12, 5}, "unexpected token");
  std::ostringstream OS;
  D.print(OS);
  EXPECT_EQ(OS.str(), "12:5: error: unexpected token\n");
}
