//===- tests/support_test.cpp - Support-library unit tests ----------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Checksum.h"
#include "support/CliArgs.h"
#include "support/Diagnostics.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/StrUtil.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "support/UnionFind.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <set>
#include <sstream>
#include <thread>

using namespace petal;

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

namespace {
struct DtorCounter {
  explicit DtorCounter(int *Count) : Count(Count) {}
  ~DtorCounter() { ++*Count; }
  int *Count;
};
} // namespace

TEST(ArenaTest, AllocatesDistinctObjects) {
  Arena A;
  int *X = A.create<int>(1);
  int *Y = A.create<int>(2);
  EXPECT_NE(X, Y);
  EXPECT_EQ(*X, 1);
  EXPECT_EQ(*Y, 2);
}

TEST(ArenaTest, RunsDestructorsOnArenaDestruction) {
  int Count = 0;
  {
    Arena A;
    for (int I = 0; I != 100; ++I)
      A.create<DtorCounter>(&Count);
    EXPECT_EQ(Count, 0);
    EXPECT_EQ(A.numManagedObjects(), 100u);
  }
  EXPECT_EQ(Count, 100);
}

TEST(ArenaTest, TriviallyDestructibleTypesAreNotTracked) {
  Arena A;
  A.create<int>(7);
  A.create<double>(3.5);
  EXPECT_EQ(A.numManagedObjects(), 0u);
}

TEST(ArenaTest, HandlesLargeAllocations) {
  Arena A;
  // Larger than the initial slab; must not crash or overlap.
  struct Big {
    char Data[100000];
  };
  Big *B1 = A.create<Big>();
  Big *B2 = A.create<Big>();
  B1->Data[0] = 'x';
  B2->Data[0] = 'y';
  EXPECT_EQ(B1->Data[0], 'x');
  EXPECT_GE(A.bytesReserved(), 2 * sizeof(Big));
}

TEST(ArenaTest, RespectsAlignment) {
  Arena A;
  A.allocate(1, 1);
  void *P = A.allocate(16, 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 16, 0u);
  A.allocate(3, 1);
  void *Q = A.allocate(32, 32);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Q) % 32, 0u);
}

TEST(ArenaTest, StringsSurviveAndAreFreed) {
  Arena A;
  auto *S = A.create<std::string>(1000, 'a');
  EXPECT_EQ(S->size(), 1000u);
  EXPECT_EQ(A.numManagedObjects(), 1u);
}

//===----------------------------------------------------------------------===//
// UnionFind
//===----------------------------------------------------------------------===//

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind UF(5);
  for (uint32_t I = 0; I != 5; ++I)
    EXPECT_EQ(UF.find(I), I);
  EXPECT_EQ(UF.numSets(), 5u);
}

TEST(UnionFindTest, UniteMergesClasses) {
  UnionFind UF(6);
  UF.unite(0, 1);
  UF.unite(2, 3);
  EXPECT_TRUE(UF.connected(0, 1));
  EXPECT_TRUE(UF.connected(2, 3));
  EXPECT_FALSE(UF.connected(1, 2));
  UF.unite(1, 2);
  EXPECT_TRUE(UF.connected(0, 3));
  EXPECT_EQ(UF.numSets(), 3u); // {0,1,2,3}, {4}, {5}
}

TEST(UnionFindTest, GrowPreservesExistingSets) {
  UnionFind UF(2);
  UF.unite(0, 1);
  UF.grow(10);
  EXPECT_TRUE(UF.connected(0, 1));
  EXPECT_FALSE(UF.connected(0, 9));
  EXPECT_EQ(UF.size(), 10u);
}

/// Property: union-find agrees with a naive set-partition oracle under a
/// deterministic random workload.
TEST(UnionFindTest, MatchesNaivePartitionOracle) {
  constexpr uint32_t N = 200;
  UnionFind UF(N);
  std::vector<uint32_t> Label(N);
  for (uint32_t I = 0; I != N; ++I)
    Label[I] = I;

  Rng R(42);
  for (int Step = 0; Step != 500; ++Step) {
    uint32_t A = static_cast<uint32_t>(R.below(N));
    uint32_t B = static_cast<uint32_t>(R.below(N));
    UF.unite(A, B);
    uint32_t LA = Label[A], LB = Label[B];
    if (LA != LB)
      for (uint32_t I = 0; I != N; ++I)
        if (Label[I] == LB)
          Label[I] = LA;
    // Spot-check a few pairs after each step.
    for (int Check = 0; Check != 5; ++Check) {
      uint32_t X = static_cast<uint32_t>(R.below(N));
      uint32_t Y = static_cast<uint32_t>(R.below(N));
      ASSERT_EQ(UF.connected(X, Y), Label[X] == Label[Y]);
    }
  }
  std::set<uint32_t> Labels(Label.begin(), Label.end());
  EXPECT_EQ(UF.numSets(), Labels.size());
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(RngTest, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.below(13), 13u);
}

TEST(RngTest, RangeIsInclusive) {
  Rng R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.range(3, 5);
    EXPECT_GE(V, 3);
    EXPECT_LE(V, 5);
    SawLo |= V == 3;
    SawHi |= V == 5;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, WeightedNeverPicksZeroWeight) {
  Rng R(11);
  for (int I = 0; I != 500; ++I) {
    size_t Pick = R.weighted({0.0, 1.0, 0.0, 2.0});
    EXPECT_TRUE(Pick == 1 || Pick == 3);
  }
}

TEST(RngTest, UnitInHalfOpenInterval) {
  Rng R(13);
  for (int I = 0; I != 1000; ++I) {
    double U = R.unit();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng A(5), B(5);
  Rng FA = A.fork(), FB = B.fork();
  for (int I = 0; I != 16; ++I)
    EXPECT_EQ(FA.next(), FB.next());
}

//===----------------------------------------------------------------------===//
// StrUtil
//===----------------------------------------------------------------------===//

TEST(StrUtilTest, SplitBasics) {
  EXPECT_EQ(splitString("a.b.c", '.'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(splitString("", '.').empty());
  EXPECT_EQ(splitString("abc", '.'), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(splitString("a..b", '.'),
            (std::vector<std::string>{"a", "", "b"}));
}

TEST(StrUtilTest, JoinInvertsSplit) {
  std::vector<std::string> Parts = {"System", "Collections", "Generic"};
  EXPECT_EQ(splitString(joinStrings(Parts, '.'), '.'), Parts);
}

TEST(StrUtilTest, CommonPrefixLength) {
  using V = std::vector<std::string>;
  EXPECT_EQ(commonPrefixLength(V{"a", "b"}, V{"a", "c"}), 1u);
  EXPECT_EQ(commonPrefixLength(V{"a", "b"}, V{"a", "b"}), 2u);
  EXPECT_EQ(commonPrefixLength(V{}, V{"a"}), 0u);
  EXPECT_EQ(commonPrefixLength(V{"x"}, V{"y"}), 0u);
}

TEST(StrUtilTest, FormatHelpers) {
  EXPECT_EQ(formatFixed(1.2345, 2), "1.23");
  EXPECT_EQ(formatPercent(1, 2), "50.00%");
  EXPECT_EQ(formatPercent(0, 0), "n/a");
}

//===----------------------------------------------------------------------===//
// TextTable
//===----------------------------------------------------------------------===//

TEST(TextTableTest, AlignsColumns) {
  TextTable T;
  T.setHeader({"Name", "N"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "22"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("Name    N"), std::string::npos);
  EXPECT_NE(Out.find("longer  22"), std::string::npos);
}

TEST(TextTableTest, ShortRowsArePadded) {
  TextTable T;
  T.setHeader({"A", "B", "C"});
  T.addRow({"1"});
  std::ostringstream OS;
  T.print(OS);
  EXPECT_NE(OS.str().find("1"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, CountsOnlyErrors) {
  DiagnosticEngine D;
  D.warning({1, 1}, "something odd");
  EXPECT_FALSE(D.hasErrors());
  D.error({2, 3}, "something wrong");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.diagnostics().size(), 2u);
}

TEST(DiagnosticsTest, PrintIncludesLocationAndKind) {
  DiagnosticEngine D;
  D.error({12, 5}, "unexpected token");
  std::ostringstream OS;
  D.print(OS);
  EXPECT_EQ(OS.str(), "12:5: error: unexpected token\n");
}

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

namespace {

json::Value parseOk(const std::string &Text) {
  json::Value V;
  std::string Err;
  EXPECT_TRUE(json::parse(Text, V, Err)) << Text << ": " << Err;
  return V;
}

std::string parseErr(const std::string &Text) {
  json::Value V;
  std::string Err;
  EXPECT_FALSE(json::parse(Text, V, Err)) << Text;
  return Err;
}

} // namespace

TEST(JsonTest, ParsesScalarsAndContainers) {
  EXPECT_TRUE(parseOk("null").isNull());
  EXPECT_EQ(parseOk("true").boolValue(), true);
  EXPECT_EQ(parseOk("-42").intValue(), -42);
  EXPECT_DOUBLE_EQ(parseOk("2.5e2").numberValue(), 250.0);
  EXPECT_EQ(parseOk("\"hi\\n\\\"there\\\"\"").stringValue(), "hi\n\"there\"");
  json::Value A = parseOk("[1, [2, 3], {\"k\": false}]");
  ASSERT_TRUE(A.isArray());
  ASSERT_EQ(A.elements().size(), 3u);
  EXPECT_EQ(A.elements()[1].elements()[1].intValue(), 3);
  EXPECT_EQ(A.elements()[2].getBool("k", true), false);
}

TEST(JsonTest, ParsesUnicodeEscapes) {
  EXPECT_EQ(parseOk("\"\\u0041\"").stringValue(), "A");
  EXPECT_EQ(parseOk("\"\\u00e9\"").stringValue(), "\xc3\xa9"); // é
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parseOk("\"\\ud83d\\ude00\"").stringValue(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_NE(parseErr(""), "");
  EXPECT_NE(parseErr("{"), "");
  EXPECT_NE(parseErr("[1, 2,]"), "");
  EXPECT_NE(parseErr("{\"a\" 1}"), "");
  EXPECT_NE(parseErr("\"unterminated"), "");
  EXPECT_NE(parseErr("01"), "");
  EXPECT_NE(parseErr("{} trailing"), "");
  EXPECT_NE(parseErr("nul"), "");
  // Nesting past the depth cap.
  std::string Deep(100, '[');
  Deep += std::string(100, ']');
  EXPECT_NE(parseErr(Deep).find("deep"), std::string::npos);
}

TEST(JsonTest, WriteIsDeterministicAndRoundTrips) {
  json::Value O = json::Value::object();
  O.set("zeta", 1);
  O.set("alpha", json::Value::array());
  O.set("text", "a\\b\"c\n");
  O.set("pi", 3.5);
  O.set("count", 7.0); // integral double prints as integer
  std::string Wire = O.write();
  // Insertion order, not alphabetical.
  EXPECT_EQ(Wire, "{\"zeta\":1,\"alpha\":[],\"text\":\"a\\\\b\\\"c\\n\","
                  "\"pi\":3.5,\"count\":7}");
  EXPECT_EQ(parseOk(Wire), O);
}

//===----------------------------------------------------------------------===//
// ThreadPool PETAL_THREADS hardening
//===----------------------------------------------------------------------===//

namespace {

/// Sets PETAL_THREADS for one test and restores the old value after.
class ThreadsEnvGuard {
public:
  explicit ThreadsEnvGuard(const char *Value) {
    if (const char *Old = std::getenv("PETAL_THREADS")) {
      HadOld = true;
      OldValue = Old;
    }
    if (Value)
      setenv("PETAL_THREADS", Value, 1);
    else
      unsetenv("PETAL_THREADS");
  }
  ~ThreadsEnvGuard() {
    if (HadOld)
      setenv("PETAL_THREADS", OldValue.c_str(), 1);
    else
      unsetenv("PETAL_THREADS");
  }

private:
  bool HadOld = false;
  std::string OldValue;
};

size_t hardwareFallback() {
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

} // namespace

TEST(ThreadPoolEnvTest, UnsetFallsBackToHardwareConcurrency) {
  ThreadsEnvGuard G(nullptr);
  EXPECT_EQ(ThreadPool::defaultThreadCount(), hardwareFallback());
}

TEST(ThreadPoolEnvTest, ValidValueIsUsed) {
  ThreadsEnvGuard G("3");
  EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);
}

TEST(ThreadPoolEnvTest, GarbageValuesFallBack) {
  for (const char *Bad : {"abc", "", "8x", "3.5", " 4", "-3", "0",
                          "999999", "99999999999999999999"}) {
    ThreadsEnvGuard G(Bad);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), hardwareFallback())
        << "PETAL_THREADS='" << Bad << "'";
  }
}

TEST(ThreadPoolEnvTest, PoolConstructionHonorsHardenedCount) {
  ThreadsEnvGuard G("not-a-number");
  ThreadPool Pool(0); // 0 = use the environment/default
  EXPECT_EQ(Pool.numThreads(), hardwareFallback());
}

//===----------------------------------------------------------------------===//
// CliArgs
//===----------------------------------------------------------------------===//

namespace {

/// Runs a FlagParser over the given argv words; returns parse()'s result.
bool runParser(FlagParser &Flags, std::initializer_list<const char *> Words) {
  std::vector<std::string> Storage{"prog"};
  Storage.insert(Storage.end(), Words.begin(), Words.end());
  std::vector<char *> Argv;
  for (std::string &W : Storage)
    Argv.push_back(W.data());
  return Flags.parse(static_cast<int>(Argv.size()), Argv.data());
}

} // namespace

TEST(CliArgsTest, ParsesFlagsAndPositional) {
  size_t Threads = 0;
  std::string File;
  FlagParser Flags("prog", "test tool", "[file]");
  Flags.addFlag("threads", "N", "thread count", [&](const std::string &V) {
    return parseCount(V, "threads", Threads);
  });
  Flags.addPositional("the input file", [&](const std::string &V) {
    File = V;
    return true;
  });
  EXPECT_TRUE(runParser(Flags, {"--threads", "4", "input.cs"}));
  EXPECT_EQ(Threads, 4u);
  EXPECT_EQ(File, "input.cs");
}

TEST(CliArgsTest, UnknownFlagIsAHardError) {
  FlagParser Flags("prog", "test tool");
  EXPECT_FALSE(runParser(Flags, {"--bogus"}));
  EXPECT_EQ(Flags.exitCode(), 1);
}

TEST(CliArgsTest, HelpStopsParsingWithSuccessExit) {
  FlagParser Flags("prog", "test tool");
  EXPECT_FALSE(runParser(Flags, {"--help"}));
  EXPECT_EQ(Flags.exitCode(), 0);
}

TEST(CliArgsTest, MissingValueAndExtraPositionalFail) {
  size_t N = 0;
  FlagParser Flags("prog", "test tool", "[x]");
  Flags.addFlag("n", "N", "a count", [&](const std::string &V) {
    return parseCount(V, "n", N);
  });
  Flags.addPositional("x", [](const std::string &) { return true; });
  EXPECT_FALSE(runParser(Flags, {"--n"}));
  EXPECT_EQ(Flags.exitCode(), 1);

  FlagParser Flags2("prog", "test tool", "[x]");
  Flags2.addPositional("x", [](const std::string &) { return true; });
  EXPECT_FALSE(runParser(Flags2, {"one", "two"}));
  EXPECT_EQ(Flags2.exitCode(), 1);
}

namespace {

/// The textbook bit-at-a-time CRC32, the definition the sliced
/// implementation must match bit for bit (snapshot files checksummed by
/// either must verify under the other).
uint32_t referenceCrc32(const void *Data, size_t Size, uint32_t Seed = 0) {
  const auto *P = static_cast<const uint8_t *>(Data);
  uint32_t C = ~Seed;
  for (size_t I = 0; I != Size; ++I) {
    C ^= P[I];
    for (int K = 0; K != 8; ++K)
      C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
  }
  return ~C;
}

} // namespace

TEST(ChecksumTest, MatchesTheStandardTestVector) {
  // The IEEE 802.3 / zlib check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(ChecksumTest, SlicedFormMatchesTheReferenceAtEveryLength) {
  // Every length 0..64 plus a large buffer, so all alignments of the
  // 8-byte main loop and the byte tail are covered.
  std::vector<uint8_t> Buf(8192);
  uint32_t X = 0x12345678;
  for (uint8_t &B : Buf) {
    X = X * 1664525u + 1013904223u;
    B = static_cast<uint8_t>(X >> 24);
  }
  for (size_t Len = 0; Len <= 64; ++Len)
    EXPECT_EQ(crc32(Buf.data(), Len), referenceCrc32(Buf.data(), Len))
        << "length " << Len;
  EXPECT_EQ(crc32(Buf.data(), Buf.size()),
            referenceCrc32(Buf.data(), Buf.size()));
}

TEST(ChecksumTest, SeedContinuationEqualsOneShot) {
  const char *Text = "the quick brown fox jumps over the lazy dog";
  size_t N = std::strlen(Text);
  uint32_t Whole = crc32(Text, N);
  for (size_t Split = 0; Split <= N; ++Split) {
    uint32_t Part = crc32(Text, Split);
    EXPECT_EQ(crc32(Text + Split, N - Split, Part), Whole)
        << "split at " << Split;
  }
}

TEST(CliArgsTest, EqualsFormCarriesTheValueInline) {
  size_t Threads = 0;
  std::string Out;
  FlagParser Flags("prog", "test tool");
  Flags.addFlag("threads", "N", "thread count", [&](const std::string &V) {
    return parseCount(V, "threads", Threads);
  });
  Flags.addFlag("out", "FILE", "output path", [&](const std::string &V) {
    Out = V;
    return true;
  });
  EXPECT_TRUE(runParser(Flags, {"--threads=4", "--out=a.json"}));
  EXPECT_EQ(Threads, 4u);
  EXPECT_EQ(Out, "a.json");
}

TEST(CliArgsTest, EqualsFormValueMayBeEmptyOrContainEquals) {
  std::string Out = "unset";
  FlagParser Flags("prog", "test tool");
  Flags.addFlag("out", "FILE", "output path", [&](const std::string &V) {
    Out = V;
    return true;
  });
  // An inline value containing '=' splits at the *first* '=' only.
  EXPECT_TRUE(runParser(Flags, {"--out=key=value"}));
  EXPECT_EQ(Out, "key=value");
  // "--out=" passes an (explicitly present) empty value to the callback,
  // unlike "--out" alone which would consume the next word.
  EXPECT_TRUE(runParser(Flags, {"--out="}));
  EXPECT_EQ(Out, "");
}

TEST(CliArgsTest, EqualsFormOnASwitchIsAHardError) {
  bool Hit = false;
  FlagParser Flags("prog", "test tool");
  Flags.addSwitch("verbose", "say more", [&] {
    Hit = true;
    return true;
  });
  EXPECT_FALSE(runParser(Flags, {"--verbose=yes"}));
  EXPECT_EQ(Flags.exitCode(), 1);
  EXPECT_FALSE(Hit);

  FlagParser Flags2("prog", "test tool");
  bool Hit2 = false;
  Flags2.addSwitch("verbose", "say more", [&] {
    Hit2 = true;
    return true;
  });
  EXPECT_TRUE(runParser(Flags2, {"--verbose"}));
  EXPECT_TRUE(Hit2);
}

TEST(CliArgsTest, ParseCountRejectsGarbage) {
  size_t Out = 7;
  EXPECT_TRUE(parseCount("12", "n", Out));
  EXPECT_EQ(Out, 12u);
  for (const char *Bad : {"", "x", "1.5", "-2", "12abc"})
    EXPECT_FALSE(parseCount(Bad, "n", Out)) << Bad;
}
