//===- tests/bruteforce_test.cpp - Engine vs reference enumerator ---------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
//
// An independent, brute-force implementation of the Fig. 6 semantics: it
// enumerates every completion by structural recursion (no indexes, no
// score-ordered streams), scores each with the standalone Ranker, and sorts.
// The engine must agree with it exactly — same completion sets, same
// scores — on small corpora where exhaustive enumeration is feasible.
//
//===----------------------------------------------------------------------===//

#include "TestCorpora.h"

#include "corpus/Generator.h"
#include "eval/Harvest.h"

#include "code/ExprPrinter.h"
#include "code/Verify.h"
#include "complete/Engine.h"
#include "parser/Frontend.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

using namespace petal;

namespace {

/// Exhaustive reference enumerator for partial expressions.
class ReferenceEnumerator {
public:
  ReferenceEnumerator(Program &P, const CodeSite &Site, const Ranker &Rank,
                      int MaxChainLen)
      : TS(P.typeSystem()), F(P.typeSystem(), P.arena()), Site(Site),
        Rank(Rank), MaxChainLen(MaxChainLen) {}

  /// All completions of \p PE, scored and sorted by score (stable on ties).
  std::vector<Completion> enumerate(const PartialExpr *PE) {
    std::vector<const Expr *> Exprs = complete(PE);
    std::vector<Completion> Out;
    for (const Expr *E : Exprs)
      Out.push_back({E, Rank.scoreExpr(E)});
    std::stable_sort(Out.begin(), Out.end(),
                     [](const Completion &A, const Completion &B) {
                       return A.Score < B.Score;
                     });
    return Out;
  }

private:
  std::vector<const Expr *> complete(const PartialExpr *PE) {
    switch (PE->kind()) {
    case PartialKind::Hole: {
      // vars.?*m (§4.2).
      std::vector<const Expr *> Out;
      for (const Expr *V : vars())
        appendChains(V, MaxChainLen, /*Methods=*/true, Out);
      return Out;
    }
    case PartialKind::DontCare:
      return {F.dontCare()};
    case PartialKind::Concrete:
      return {cast<ConcretePE>(PE)->expr()};
    case PartialKind::Suffix: {
      const auto *S = cast<SuffixPE>(PE);
      std::vector<const Expr *> Out;
      for (const Expr *Base : complete(S->base())) {
        int Len = isStarSuffix(S->suffix()) ? MaxChainLen : 1;
        appendChains(Base, Len, suffixAllowsMethods(S->suffix()), Out);
      }
      return Out;
    }
    case PartialKind::UnknownCall:
      return completeUnknownCall(cast<UnknownCallPE>(PE));
    case PartialKind::KnownCall:
      return completeKnownCall(cast<KnownCallPE>(PE));
    case PartialKind::Compare: {
      const auto *C = cast<ComparePE>(PE);
      std::vector<const Expr *> Out;
      for (const Expr *L : complete(C->lhs()))
        for (const Expr *R : complete(C->rhs())) {
          bool LW = isa<DontCareExpr>(L), RW = isa<DontCareExpr>(R);
          if (!LW && !RW && !TS.comparable(L->type(), R->type()))
            continue;
          Out.push_back(F.arena().create<CompareExpr>(C->op(), L, R,
                                                      TS.boolType()));
        }
      return Out;
    }
    case PartialKind::Assign: {
      const auto *A = cast<AssignPE>(PE);
      std::vector<const Expr *> Out;
      for (const Expr *L : complete(A->lhs())) {
        if (!isa<DontCareExpr>(L) && !isLValue(L))
          continue;
        for (const Expr *R : complete(A->rhs())) {
          bool LW = isa<DontCareExpr>(L), RW = isa<DontCareExpr>(R);
          if (!LW && !RW && !TS.assignable(L->type(), R->type()))
            continue;
          Out.push_back(F.arena().create<AssignExpr>(L, R));
        }
      }
      return Out;
    }
    }
    return {};
  }

  /// Locals, parameters, `this`, and globals.
  std::vector<const Expr *> vars() {
    std::vector<const Expr *> Out;
    if (Site.Method) {
      size_t Limit = std::min(Site.StmtIndex, Site.Method->body().size());
      for (unsigned Slot : Site.Method->localsInScopeAt(Limit))
        Out.push_back(F.var(*Site.Method, Slot));
      if (!TS.method(Site.Method->decl()).IsStatic)
        Out.push_back(F.thisRef(Site.Method->owner()));
    }
    for (size_t FI = 0; FI != TS.numFields(); ++FI) {
      const FieldInfo &Info = TS.field(static_cast<FieldId>(FI));
      if (Info.IsStatic)
        Out.push_back(F.fieldAccess(F.typeRef(Info.Owner),
                                    static_cast<FieldId>(FI)));
    }
    for (size_t M = 0; M != TS.numMethods(); ++M) {
      const MethodInfo &MI = TS.method(static_cast<MethodId>(M));
      if (MI.IsStatic && MI.Params.empty() && MI.ReturnType != TS.voidType())
        Out.push_back(F.call(static_cast<MethodId>(M), nullptr, {}));
    }
    return Out;
  }

  /// \p Base plus every lookup chain of length <= MaxLen over it.
  void appendChains(const Expr *Base, int MaxLen, bool Methods,
                    std::vector<const Expr *> &Out) {
    Out.push_back(Base);
    if (MaxLen == 0 || isa<DontCareExpr>(Base) || !isValidId(Base->type()))
      return;
    for (FieldId FI : TS.visibleFields(Base->type())) {
      if (TS.field(FI).IsStatic)
        continue;
      appendChains(F.fieldAccess(Base, FI), MaxLen - 1, Methods, Out);
    }
    if (!Methods)
      return;
    for (MethodId M : TS.visibleMethods(Base->type())) {
      const MethodInfo &MI = TS.method(M);
      if (MI.IsStatic || !MI.Params.empty() || MI.ReturnType == TS.voidType())
        continue;
      appendChains(F.call(M, Base, {}), MaxLen - 1, Methods, Out);
    }
  }

  std::vector<const Expr *> completeUnknownCall(const UnknownCallPE *U) {
    // Cartesian product of argument completions.
    std::vector<std::vector<const Expr *>> ArgSets;
    for (const PartialExpr *A : U->args())
      ArgSets.push_back(complete(A));

    std::vector<const Expr *> Out;
    std::vector<const Expr *> Combo(ArgSets.size());
    std::function<void(size_t)> Rec = [&](size_t I) {
      if (I == ArgSets.size()) {
        // Every method, best injective placement (mirrors the engine's
        // one-completion-per-method policy).
        for (size_t M = 0; M != TS.numMethods(); ++M)
          tryMethod(static_cast<MethodId>(M), Combo, Out);
        return;
      }
      for (const Expr *E : ArgSets[I]) {
        Combo[I] = E;
        Rec(I + 1);
      }
    };
    Rec(0);
    return Out;
  }

  void tryMethod(MethodId M, const std::vector<const Expr *> &Combo,
                 std::vector<const Expr *> &Out) {
    const MethodInfo &MI = TS.method(M);
    size_t NP = TS.numCallParams(M);
    if (NP < Combo.size())
      return;

    // Minimal-cost injective placement via exhaustive permutation search.
    std::optional<std::pair<int, std::vector<int>>> Best;
    std::vector<int> Pos(Combo.size(), -1);
    std::vector<bool> Used(NP, false);
    std::function<void(size_t, int)> Search = [&](size_t I, int Cost) {
      if (I == Combo.size()) {
        if (!MI.IsStatic && !Used[0])
          return;
        if (!Best || Cost < Best->first)
          Best = {Cost, Pos};
        return;
      }
      for (size_t Pi = 0; Pi != NP; ++Pi) {
        if (Used[Pi])
          continue;
        int StepCost = 0;
        if (!isa<DontCareExpr>(Combo[I])) {
          auto D = TS.typeDistance(Combo[I]->type(), TS.callParamType(M, Pi));
          if (!D)
            continue;
          StepCost = Rank.options().UseTypeDistance ? *D : 0;
          StepCost += Rank.abstractArgCost(Combo[I], M, Pi, MI.Owner);
        }
        Used[Pi] = true;
        Pos[I] = static_cast<int>(Pi);
        Search(I + 1, Cost + StepCost);
        Used[Pi] = false;
      }
    };
    Search(0, 0);
    if (!Best)
      return;

    std::vector<const Expr *> CallArgs(NP, nullptr);
    for (size_t I = 0; I != Combo.size(); ++I)
      CallArgs[Best->second[I]] = Combo[I];
    for (const Expr *&Slot : CallArgs)
      if (!Slot)
        Slot = F.dontCare();
    const Expr *Receiver = nullptr;
    std::vector<const Expr *> DeclArgs;
    if (!MI.IsStatic) {
      Receiver = CallArgs[0];
      DeclArgs.assign(CallArgs.begin() + 1, CallArgs.end());
    } else {
      DeclArgs = CallArgs;
    }
    Out.push_back(F.call(M, Receiver, DeclArgs));
  }

  std::vector<const Expr *> completeKnownCall(const KnownCallPE *K) {
    std::vector<std::vector<const Expr *>> ArgSets;
    for (const PartialExpr *A : K->args())
      ArgSets.push_back(complete(A));

    std::vector<const Expr *> Out;
    for (MethodId M : K->resolved()) {
      if (TS.numCallParams(M) != K->args().size())
        continue;
      const MethodInfo &MI = TS.method(M);
      std::vector<const Expr *> Combo(ArgSets.size());
      std::function<void(size_t)> Rec = [&](size_t I) {
        if (I == ArgSets.size()) {
          const Expr *Receiver = nullptr;
          std::vector<const Expr *> DeclArgs;
          if (!MI.IsStatic) {
            Receiver = Combo[0];
            DeclArgs.assign(Combo.begin() + 1, Combo.end());
          } else {
            DeclArgs = Combo;
          }
          Out.push_back(F.call(M, Receiver, DeclArgs));
          return;
        }
        for (const Expr *E : ArgSets[I]) {
          if (!isa<DontCareExpr>(E) &&
              !TS.implicitlyConvertible(E->type(), TS.callParamType(M, I)))
            continue;
          Combo[I] = E;
          Rec(I + 1);
        }
      };
      Rec(0);
    }
    return Out;
  }

  TypeSystem &TS;
  ExprFactory F;
  CodeSite Site;
  const Ranker &Rank;
  int MaxChainLen;
};

//===----------------------------------------------------------------------===//
// The equivalence fixture
//===----------------------------------------------------------------------===//

class BruteForceTest : public ::testing::TestWithParam<const char *> {
protected:
  void SetUp() override {
    TS = std::make_unique<TypeSystem>();
    P = std::make_unique<Program>(*TS);
    ASSERT_TRUE(loadProgramText(corpora::GeometryCorpus, *P, Diags));
    Class = findCodeClass(*P, "EllipseArc");
    Method = findCodeMethod(*P, *Class, "Examine");
    Site = {Class, Method, Method->body().size()};
    Idx = std::make_unique<CompletionIndexes>(*P);
  }

  DiagnosticEngine Diags;
  std::unique_ptr<TypeSystem> TS;
  std::unique_ptr<Program> P;
  const CodeClass *Class = nullptr;
  const CodeMethod *Method = nullptr;
  CodeSite Site;
  std::unique_ptr<CompletionIndexes> Idx;
};

TEST_P(BruteForceTest, EngineMatchesReferenceEnumerator) {
  const char *QueryText = GetParam();
  QueryScope Scope{Class, Method, Site.StmtIndex};
  const PartialExpr *Q = parseQueryText(QueryText, *P, Scope, Diags);
  ASSERT_NE(Q, nullptr);

  // Shared ranking configuration (abstract term through the full solution,
  // exactly as the engine defaults).
  AbsTypeSolution Sol = Idx->Infer.solve();
  Ranker Rank(*TS, RankingOptions::all());
  Rank.setSelfType(Class->type());
  Rank.setAbstractTypes(&Idx->Infer, &Sol, Method);

  ReferenceEnumerator Ref(*P, Site, Rank, /*MaxChainLen=*/4);
  std::vector<Completion> Expected = Ref.enumerate(Q);

  CompletionEngine Engine(*P, *Idx);
  CompletionOptions Opts;
  Opts.MaxScore = 64;
  std::vector<Completion> Got =
      Engine.complete(Q, Site, Expected.size() + 50, Opts, &Sol);

  // Same completion multiset: (score, printed form) pairs.
  auto Key = [this](const std::vector<Completion> &V) {
    std::multiset<std::pair<int, std::string>> S;
    for (const Completion &C : V)
      S.insert({C.Score, printExpr(*TS, C.E)});
    return S;
  };
  auto ExpectedKeys = Key(Expected);
  auto GotKeys = Key(Got);

  // Report a readable diff on mismatch.
  if (ExpectedKeys != GotKeys) {
    std::string Msg;
    for (const auto &K : ExpectedKeys)
      if (!GotKeys.count(K))
        Msg += "missing: [" + std::to_string(K.first) + "] " + K.second + "\n";
    for (const auto &K : GotKeys)
      if (!ExpectedKeys.count(K))
        Msg += "extra:   [" + std::to_string(K.first) + "] " + K.second + "\n";
    FAIL() << "engine/oracle mismatch for " << QueryText << ":\n" << Msg;
  }

  // And the engine's order is by score.
  for (size_t I = 1; I < Got.size(); ++I)
    ASSERT_LE(Got[I - 1].Score, Got[I].Score);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, BruteForceTest,
    ::testing::Values("point.?f", "point.?m", "this.?f", "shapeStyle.?*m",
                      "Distance(point, ?)", "Distance(?, point.?f)",
                      "?({point})", "?({point, this})",
                      "point.?m >= this.?m.?m", "this.?f = point.?f",
                      "point.X >= this.?m.?m"));

//===----------------------------------------------------------------------===//
// Oracle sweep over a generated corpus
//===----------------------------------------------------------------------===//

/// Replays harvested call sites of a small synthetic project as the §5.1
/// and §5.2 query forms and checks the engine against the reference
/// enumerator at every site. This exercises realistic hierarchies,
/// overloads, enums, and interfaces that the hand-written corpus lacks.
class GeneratedOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratedOracleTest, EngineMatchesOracleOnHarvestedSites) {
  ProjectProfile Prof = paperProjectProfiles(0.15)[3]; // Banshee, small
  Prof.Seed ^= GetParam();
  TypeSystem TS;
  Program P(TS);
  CorpusGenerator Gen(Prof);
  Gen.generate(P);
  CompletionIndexes Idx(P);
  HarvestResult Sites = harvestProgram(P);

  AbsTypeSolution Sol = Idx.Infer.solve();
  CompletionEngine Engine(P, Idx);
  CompletionOptions Opts;
  Opts.MaxScore = 64;
  Opts.MaxChainLen = 2; // keep exhaustive enumeration feasible

  size_t Checked = 0;
  for (const CallSiteInfo &CS : Sites.Calls) {
    if (Checked == 6)
      break;

    Ranker Rank(TS, RankingOptions::all());
    Rank.setSelfType(CS.Site.Class->type());
    Rank.setAbstractTypes(&Idx.Infer, &Sol, CS.Site.Method);
    ReferenceEnumerator Ref(P, CS.Site, Rank, /*MaxChainLen=*/2);
    Arena &A = P.arena();

    // Build both query forms from the ground truth.
    std::vector<const Expr *> Args;
    if (CS.Call->receiver() && isGuessableExpr(CS.Call->receiver()))
      Args.push_back(CS.Call->receiver());
    for (const Expr *Arg : CS.Call->args())
      if (isGuessableExpr(Arg) && Args.size() < 2)
        Args.push_back(Arg);
    if (Args.size() < 2)
      continue;
    ++Checked;

    std::vector<const PartialExpr *> Queries;
    // ?({a, b})
    Queries.push_back(A.create<UnknownCallPE>(
        std::vector<const PartialExpr *>{A.create<ConcretePE>(Args[0]),
                                         A.create<ConcretePE>(Args[1])}));
    // M(a, ?, ...) with the first guessable declared argument replaced.
    {
      std::vector<const PartialExpr *> PEArgs;
      bool HoleUsed = false;
      if (CS.Call->receiver())
        PEArgs.push_back(A.create<ConcretePE>(CS.Call->receiver()));
      for (const Expr *Arg : CS.Call->args()) {
        if (!HoleUsed && isGuessableExpr(Arg)) {
          PEArgs.push_back(A.create<HolePE>());
          HoleUsed = true;
        } else {
          PEArgs.push_back(A.create<ConcretePE>(Arg));
        }
      }
      if (HoleUsed)
        Queries.push_back(A.create<KnownCallPE>(
            TS.method(CS.Call->method()).Name, std::move(PEArgs),
            std::vector<MethodId>{CS.Call->method()}));
    }

    for (const PartialExpr *Q : Queries) {
      std::vector<Completion> Expected = Ref.enumerate(Q);
      std::vector<Completion> Got =
          Engine.complete(Q, CS.Site, Expected.size() + 50, Opts, &Sol);

      std::multiset<std::pair<int, std::string>> EK, GK;
      for (const Completion &C : Expected)
        EK.insert({C.Score, printExpr(TS, C.E)});
      for (const Completion &C : Got)
        GK.insert({C.Score, printExpr(TS, C.E)});
      ASSERT_EQ(EK.size(), GK.size())
          << printPartialExpr(TS, Q) << " at site in "
          << TS.qualifiedName(CS.Site.Class->type());
      ASSERT_EQ(EK, GK) << printPartialExpr(TS, Q);
    }
  }
  EXPECT_GE(Checked, 2u) << "corpus too small to exercise the sweep";
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedOracleTest,
                         ::testing::Values(0, 0x1111, 0x2222, 0x3333));

} // namespace
