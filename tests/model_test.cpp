//===- tests/model_test.cpp - TypeSystem unit + property tests ------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "model/TypeSystem.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace petal;

namespace {

/// Builds the paper's running hierarchy: Rectangle <: Shape <: Object.
class ShapesFixture : public ::testing::Test {
protected:
  void SetUp() override {
    Ns = TS.getOrAddNamespace("Geo");
    Shape = TS.addType("Shape", Ns, TypeKind::Class);
    Rectangle = TS.addType("Rectangle", Ns, TypeKind::Class, Shape);
    Circle = TS.addType("Circle", Ns, TypeKind::Class, Shape);
    IDrawable = TS.addType("IDrawable", Ns, TypeKind::Interface);
    TS.addInterface(Rectangle, IDrawable);
  }

  TypeSystem TS;
  NamespaceId Ns;
  TypeId Shape, Rectangle, Circle, IDrawable;
};

//===----------------------------------------------------------------------===//
// Namespaces
//===----------------------------------------------------------------------===//

TEST(TypeSystemTest, NamespaceInterningCreatesAncestors) {
  TypeSystem TS;
  NamespaceId N = TS.getOrAddNamespace("System.Collections.Generic");
  EXPECT_EQ(TS.nspace(N).FullName, "System.Collections.Generic");
  EXPECT_EQ(TS.nspace(N).Segments.size(), 3u);
  NamespaceId Parent = TS.nspace(N).Parent;
  EXPECT_EQ(TS.nspace(Parent).FullName, "System.Collections");
  // Interning: same name, same id.
  EXPECT_EQ(TS.getOrAddNamespace("System.Collections.Generic"), N);
}

TEST(TypeSystemTest, RootNamespaceIsEmpty) {
  TypeSystem TS;
  EXPECT_EQ(TS.getOrAddNamespace(""), 0);
  EXPECT_TRUE(TS.nspace(0).Segments.empty());
}

//===----------------------------------------------------------------------===//
// Built-ins and the widening chain
//===----------------------------------------------------------------------===//

TEST(TypeSystemTest, BuiltinsExist) {
  TypeSystem TS;
  EXPECT_EQ(TS.findType("object"), TS.objectType());
  EXPECT_EQ(TS.findType("int"), TS.intType());
  EXPECT_EQ(TS.findType("string"), TS.stringType());
  EXPECT_TRUE(TS.isPrimitive(TS.intType()));
  EXPECT_FALSE(TS.isPrimitive(TS.stringType()));
  EXPECT_TRUE(TS.isPrimitiveLike(TS.stringType()));
}

TEST(TypeSystemTest, PrimitiveWideningChain) {
  TypeSystem TS;
  EXPECT_TRUE(TS.implicitlyConvertible(TS.byteType(), TS.doubleType()));
  EXPECT_TRUE(TS.implicitlyConvertible(TS.intType(), TS.longType()));
  EXPECT_TRUE(TS.implicitlyConvertible(TS.charType(), TS.intType()));
  EXPECT_FALSE(TS.implicitlyConvertible(TS.longType(), TS.intType()));
  EXPECT_FALSE(TS.implicitlyConvertible(TS.doubleType(), TS.floatType()));
  EXPECT_FALSE(TS.implicitlyConvertible(TS.boolType(), TS.intType()));

  // td follows the chain: byte -> short -> int -> long -> float -> double.
  EXPECT_EQ(TS.typeDistance(TS.byteType(), TS.doubleType()), 5);
  EXPECT_EQ(TS.typeDistance(TS.intType(), TS.longType()), 1);
  EXPECT_EQ(TS.typeDistance(TS.intType(), TS.intType()), 0);
  EXPECT_FALSE(TS.typeDistance(TS.longType(), TS.intType()).has_value());
}

TEST(TypeSystemTest, EverythingBoxesToObject) {
  TypeSystem TS;
  EXPECT_TRUE(TS.implicitlyConvertible(TS.intType(), TS.objectType()));
  EXPECT_TRUE(TS.implicitlyConvertible(TS.boolType(), TS.objectType()));
  EXPECT_TRUE(TS.implicitlyConvertible(TS.stringType(), TS.objectType()));
  EXPECT_FALSE(TS.implicitlyConvertible(TS.voidType(), TS.objectType()));
}

TEST(TypeSystemTest, NullConvertsToReferenceTypesOnly) {
  TypeSystem TS;
  NamespaceId Ns = TS.getOrAddNamespace("A");
  TypeId C = TS.addType("C", Ns, TypeKind::Class);
  TypeId S = TS.addType("S", Ns, TypeKind::Struct);
  EXPECT_TRUE(TS.implicitlyConvertible(TS.nullType(), C));
  EXPECT_TRUE(TS.implicitlyConvertible(TS.nullType(), TS.stringType()));
  EXPECT_TRUE(TS.implicitlyConvertible(TS.nullType(), TS.objectType()));
  EXPECT_FALSE(TS.implicitlyConvertible(TS.nullType(), S));
  EXPECT_FALSE(TS.implicitlyConvertible(TS.nullType(), TS.intType()));
  EXPECT_EQ(TS.typeDistance(TS.nullType(), C), 0);
}

//===----------------------------------------------------------------------===//
// Class hierarchies and type distance (the paper's td examples)
//===----------------------------------------------------------------------===//

TEST_F(ShapesFixture, PaperTypeDistanceExample) {
  // "if Rectangle extends Shape which extends Object,
  //  td(Rectangle, Shape) = 1 and td(Rectangle, Object) = 2" (§4.1).
  EXPECT_EQ(TS.typeDistance(Rectangle, Shape), 1);
  EXPECT_EQ(TS.typeDistance(Rectangle, TS.objectType()), 2);
  EXPECT_EQ(TS.typeDistance(Rectangle, Rectangle), 0);
  EXPECT_FALSE(TS.typeDistance(Shape, Rectangle).has_value());
  EXPECT_FALSE(TS.typeDistance(Rectangle, Circle).has_value());
}

TEST_F(ShapesFixture, InterfaceDistance) {
  EXPECT_EQ(TS.typeDistance(Rectangle, IDrawable), 1);
  EXPECT_TRUE(TS.implicitlyConvertible(Rectangle, IDrawable));
  EXPECT_FALSE(TS.implicitlyConvertible(Circle, IDrawable));
  // An interface value is an Object.
  EXPECT_EQ(TS.typeDistance(IDrawable, TS.objectType()), 1);
}

TEST_F(ShapesFixture, OperandDistanceUsesTheMoreGeneralSide) {
  EXPECT_EQ(TS.operandDistance(Rectangle, Shape), 1);
  EXPECT_EQ(TS.operandDistance(Shape, Rectangle), 1);
  EXPECT_EQ(TS.operandDistance(Shape, Shape), 0);
  EXPECT_FALSE(TS.operandDistance(Rectangle, Circle).has_value());
}

TEST_F(ShapesFixture, QualifiedNamesAndLookup) {
  EXPECT_EQ(TS.qualifiedName(Rectangle), "Geo.Rectangle");
  EXPECT_EQ(TS.findType("Geo.Rectangle"), Rectangle);
  EXPECT_EQ(TS.findType("Geo.Missing"), InvalidId);
}

//===----------------------------------------------------------------------===//
// Members: declaration, inheritance, shadowing, overriding
//===----------------------------------------------------------------------===//

TEST_F(ShapesFixture, FieldInheritanceAndShadowing) {
  TS.addField(Shape, "Area", TS.doubleType());
  TS.addField(Shape, "Name", TS.stringType());
  FieldId Shadow = TS.addField(Rectangle, "Name", TS.stringType());

  EXPECT_EQ(TS.findField(Rectangle, "Area"),
            TS.findDeclaredField(Shape, "Area"));
  EXPECT_EQ(TS.findField(Rectangle, "Name"), Shadow);

  std::vector<FieldId> Visible = TS.visibleFields(Rectangle);
  ASSERT_EQ(Visible.size(), 2u);
  // The derived declaration shadows the base one.
  EXPECT_EQ(Visible[0], Shadow);
}

TEST_F(ShapesFixture, MethodOverridingCollapsesInVisibleMethods) {
  TS.addMethod(Shape, "Draw", TS.voidType(), {});
  MethodId Derived = TS.addMethod(Rectangle, "Draw", TS.voidType(), {});
  MethodId Overload =
      TS.addMethod(Rectangle, "Draw", TS.voidType(), {{"depth", TS.intType()}});

  std::vector<MethodId> Visible = TS.visibleMethods(Rectangle);
  ASSERT_EQ(Visible.size(), 2u);
  EXPECT_EQ(Visible[0], Derived);
  EXPECT_EQ(Visible[1], Overload);

  // findMethods returns every declaration up the chain (overloads + base).
  EXPECT_EQ(TS.findMethods(Rectangle, "Draw").size(), 3u);
}

TEST_F(ShapesFixture, CallSignatureIncludesReceiver) {
  MethodId Inst =
      TS.addMethod(Shape, "Scale", TS.voidType(), {{"by", TS.doubleType()}});
  MethodId Stat = TS.addMethod(Shape, "Merge", Shape,
                               {{"a", Shape}, {"b", Shape}}, /*IsStatic=*/true);
  EXPECT_EQ(TS.numCallParams(Inst), 2u);
  EXPECT_EQ(TS.callParamType(Inst, 0), Shape); // the receiver
  EXPECT_EQ(TS.callParamType(Inst, 1), TS.doubleType());
  EXPECT_EQ(TS.numCallParams(Stat), 2u);
  EXPECT_EQ(TS.callParamType(Stat, 0), Shape);
}

//===----------------------------------------------------------------------===//
// Comparability and assignability
//===----------------------------------------------------------------------===//

TEST(TypeSystemTest, NumericsCompareAcrossTypes) {
  TypeSystem TS;
  EXPECT_TRUE(TS.comparable(TS.intType(), TS.doubleType()));
  EXPECT_TRUE(TS.comparable(TS.charType(), TS.intType()));
  EXPECT_FALSE(TS.comparable(TS.boolType(), TS.intType()));
  EXPECT_FALSE(TS.comparable(TS.stringType(), TS.stringType()));
}

TEST(TypeSystemTest, EnumsCompareToThemselvesOnly) {
  TypeSystem TS;
  NamespaceId Ns = TS.getOrAddNamespace("E");
  TypeId E1 = TS.addType("Kind", Ns, TypeKind::Enum);
  TypeId E2 = TS.addType("Other", Ns, TypeKind::Enum);
  EXPECT_TRUE(TS.comparable(E1, E1));
  EXPECT_FALSE(TS.comparable(E1, E2));
  EXPECT_FALSE(TS.comparable(E1, TS.intType()));
}

TEST(TypeSystemTest, FlaggedComparableClassFollowsHierarchy) {
  // The paper's DateTime example: Timestamp >= Timestamp type-checks only
  // because DateTime supports comparison (§3).
  TypeSystem TS;
  NamespaceId Ns = TS.getOrAddNamespace("Sys");
  TypeId DateTime = TS.addType("DateTime", Ns, TypeKind::Struct);
  TS.setComparable(DateTime);
  TypeId Point = TS.addType("Point", Ns, TypeKind::Struct);
  EXPECT_TRUE(TS.comparable(DateTime, DateTime));
  EXPECT_FALSE(TS.comparable(Point, Point));
  EXPECT_FALSE(TS.comparable(DateTime, Point));
}

TEST_F(ShapesFixture, Assignability) {
  EXPECT_TRUE(TS.assignable(Shape, Rectangle));
  EXPECT_FALSE(TS.assignable(Rectangle, Shape));
  EXPECT_TRUE(TS.assignable(TS.objectType(), Rectangle));
  EXPECT_FALSE(TS.assignable(TS.voidType(), Rectangle));
  EXPECT_FALSE(TS.assignable(Shape, TS.voidType()));
}

//===----------------------------------------------------------------------===//
// Property tests over random hierarchies
//===----------------------------------------------------------------------===//

class TypeDistancePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TypeDistancePropertyTest, DistanceLawsHold) {
  Rng R(GetParam());
  TypeSystem TS;
  NamespaceId Ns = TS.getOrAddNamespace("P");

  std::vector<TypeId> Types = {TS.objectType(), TS.intType(), TS.doubleType(),
                               TS.stringType()};
  for (int I = 0; I != 30; ++I) {
    TypeId Base = InvalidId;
    if (R.chance(0.5))
      Base = Types[R.below(Types.size())];
    if (isValidId(Base) && TS.type(Base).Kind != TypeKind::Class)
      Base = TS.objectType();
    Types.push_back(
        TS.addType("T" + std::to_string(I), Ns, TypeKind::Class, Base));
  }

  for (TypeId A : Types) {
    // Reflexivity: td(a, a) == 0.
    ASSERT_EQ(TS.typeDistance(A, A), 0);
    for (TypeId B : Types) {
      auto D = TS.typeDistance(A, B);
      // td is defined exactly when an implicit conversion exists.
      ASSERT_EQ(D.has_value(), TS.implicitlyConvertible(A, B));
      if (!D)
        continue;
      ASSERT_GE(*D, 0);
      // One supertype step costs exactly 1 more, minimized over parents:
      // td(a, b) <= 1 + td(parent(a), b).
      if (A != B)
        for (TypeId S : TS.immediateSupertypes(A)) {
          auto DS = TS.typeDistance(S, B);
          if (DS) {
            ASSERT_LE(*D, 1 + *DS);
          }
        }
      // Triangle-ish: going through any supertype cannot beat td.
      ASSERT_TRUE(A == B || *D >= 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomHierarchies, TypeDistancePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
