//===- tests/infer_test.cpp - Abstract type inference tests ---------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "infer/AbstractTypes.h"
#include "parser/Frontend.h"

#include <gtest/gtest.h>

using namespace petal;

namespace {

class InferTest : public ::testing::Test {
protected:
  void load(const char *Src) {
    TS = std::make_unique<TypeSystem>();
    P = std::make_unique<Program>(*TS);
    std::ostringstream OS;
    bool Ok = loadProgramText(Src, *P, Diags);
    Diags.print(OS);
    ASSERT_TRUE(Ok) << OS.str();
    Infer = std::make_unique<AbstractTypeInference>(*P);
  }

  const CodeMethod *method(const char *Class, const char *Name) {
    const CodeClass *CC = findCodeClass(*P, Class);
    return CC ? findCodeMethod(*P, *CC, Name) : nullptr;
  }

  /// The abstract var of local slot \p Slot of \p M.
  uint32_t localVar(const CodeMethod *M, unsigned Slot) {
    Arena A;
    ExprFactory F(*TS, A);
    return Infer->varOfExpr(F.var(*M, Slot), M);
  }

  DiagnosticEngine Diags;
  std::unique_ptr<TypeSystem> TS;
  std::unique_ptr<Program> P;
  std::unique_ptr<AbstractTypeInference> Infer;
};

// The paper's Family.Show example (§4.1): appLocation flows into
// Directory.Exists, Directory.CreateDirectory, and Path.Combine's first
// parameter, so all of those share one abstract type ("directory name"),
// while Path.Combine's *second* parameter groups with the file-name
// constants instead.
TEST_F(InferTest, PaperPathCombineExample) {
  load(R"(
    class Path {
      static string Combine(string a, string b);
    }
    class Directory {
      static bool Exists(string path);
      static string CreateDirectory(string path);
    }
    class App { static string ApplicationFolderName; }
    class Const { static string DataFileName; }
    class Environment { static string GetFolderPath(string which); }

    class FamilyShow {
      string Run(string special) {
        var appLocation = Path.Combine(Environment.GetFolderPath(special),
                                       App.ApplicationFolderName);
        Directory.Exists(appLocation);
        Directory.CreateDirectory(appLocation);
        return Path.Combine(appLocation, Const.DataFileName);
      }
    }
  )");

  AbsTypeSolution Sol = Infer->solve();

  TypeId PathTy = TS->findType("Path");
  TypeId DirTy = TS->findType("Directory");
  MethodId Combine = TS->findMethods(PathTy, "Combine")[0];
  MethodId Exists = TS->findMethods(DirTy, "Exists")[0];
  MethodId Create = TS->findMethods(DirTy, "CreateDirectory")[0];

  uint32_t CombineA = Infer->varOfCallParam(Combine, 0, PathTy);
  uint32_t CombineB = Infer->varOfCallParam(Combine, 1, PathTy);
  uint32_t ExistsPath = Infer->varOfCallParam(Exists, 0, DirTy);
  uint32_t CreatePath = Infer->varOfCallParam(Create, 0, DirTy);

  // "their first arguments are all the same abstract type."
  EXPECT_TRUE(Sol.sameAbstractType(CombineA, ExistsPath));
  EXPECT_TRUE(Sol.sameAbstractType(CombineA, CreatePath));
  // "that must also be the abstract type of the return values of
  //  Path.Combine and Environment.GetFolderPath."
  uint32_t CombineRet = Infer->varOfReturn(Combine, PathTy);
  EXPECT_TRUE(Sol.sameAbstractType(CombineA, CombineRet));
  // "no evidence ... the second argument of Path.Combine is of that type."
  EXPECT_FALSE(Sol.sameAbstractType(CombineA, CombineB));

  // The file-name side: App.ApplicationFolderName and Const.DataFileName
  // share the second-parameter class.
  FieldId AppName = TS->findField(TS->findType("App"),
                                  "ApplicationFolderName");
  FieldId DataName = TS->findField(TS->findType("Const"), "DataFileName");
  Arena A;
  ExprFactory F(*TS, A);
  const Expr *AppExpr =
      F.fieldAccess(F.typeRef(TS->findType("App")), AppName);
  const Expr *DataExpr =
      F.fieldAccess(F.typeRef(TS->findType("Const")), DataName);
  uint32_t AppVar = Infer->varOfExpr(AppExpr, nullptr);
  uint32_t DataVar = Infer->varOfExpr(DataExpr, nullptr);
  EXPECT_TRUE(Sol.sameAbstractType(CombineB, AppVar));
  EXPECT_TRUE(Sol.sameAbstractType(CombineB, DataVar));
  EXPECT_FALSE(Sol.sameAbstractType(AppVar, CombineA));
}

TEST_F(InferTest, AssignmentsAndDeclsUnify) {
  load(R"(
    class C {
      int total;
      void M(int amount) {
        var copy = amount;
        total = copy;
      }
    }
  )");
  AbsTypeSolution Sol = Infer->solve();
  const CodeMethod *M = method("C", "M");
  ASSERT_NE(M, nullptr);
  uint32_t Amount = localVar(M, 0);
  uint32_t Copy = localVar(M, 1);
  FieldId Total = TS->findField(TS->findType("C"), "total");
  Arena A;
  ExprFactory F(*TS, A);
  uint32_t TotalVar = Infer->varOfExpr(
      F.fieldAccess(F.thisRef(TS->findType("C")), Total), M);
  EXPECT_TRUE(Sol.sameAbstractType(Amount, Copy));
  EXPECT_TRUE(Sol.sameAbstractType(Copy, TotalVar));
}

TEST_F(InferTest, UnrelatedLocalsStayDistinct) {
  load(R"(
    class C {
      void M(int a, int b) {
        var x = a;
        var y = b;
      }
    }
  )");
  AbsTypeSolution Sol = Infer->solve();
  const CodeMethod *M = method("C", "M");
  EXPECT_FALSE(Sol.sameAbstractType(localVar(M, 0), localVar(M, 1)));
  // Undefined vars are never "equal", even to themselves-as-undefined.
  EXPECT_FALSE(Sol.sameAbstractType(AbstractTypeInference::NoVar,
                                    AbstractTypeInference::NoVar));
}

TEST_F(InferTest, OverridesShareTheBaseDeclarationSlots) {
  load(R"(
    class Base {
      int Compute(int seed);
    }
    class Derived : Base {
      int Compute(int seed);
    }
    class C {
      void M(Base b, Derived d, int s1, int s2) {
        b.Compute(s1);
        d.Compute(s2);
      }
    }
  )");
  TypeId BaseTy = TS->findType("Base");
  TypeId DerivedTy = TS->findType("Derived");
  MethodId BaseM = TS->type(BaseTy).Methods[0];
  MethodId DerM = TS->type(DerivedTy).Methods[0];
  EXPECT_EQ(Infer->baseDeclaration(DerM), BaseM);
  EXPECT_EQ(Infer->baseDeclaration(BaseM), BaseM);

  // Arguments to either override unify through the shared parameter slot.
  AbsTypeSolution Sol = Infer->solve();
  const CodeMethod *M = method("C", "M");
  EXPECT_TRUE(Sol.sameAbstractType(localVar(M, 2), localVar(M, 3)));
}

TEST_F(InferTest, ObjectMethodsSpecializePerReceiverType) {
  load(R"(
    class A { }
    class B { }
    class C {
      void M(A a, B b, object o1, object o2) {
        Describe(a, o1);
        Describe(b, o2);
      }
      static void Describe(object target, object extra);
    }
  )");
  // Describe is declared on C (not Object), so both calls share slots and
  // o1/o2 unify. This guards the *absence* of specialization for normal
  // types...
  AbsTypeSolution Sol = Infer->solve();
  const CodeMethod *M = method("C", "M");
  EXPECT_TRUE(Sol.sameAbstractType(localVar(M, 2), localVar(M, 3)));
}

TEST_F(InferTest, MethodsDeclaredOnObjectDoNotMergeAcrossTypes) {
  // ...and this guards its presence: ToString-like methods declared on the
  // Object builtin get per-receiver-type slots (§4.1).
  TypeSystem TS2;
  TS2.addMethod(TS2.objectType(), "ToString", TS2.stringType(), {});
  Program P2(TS2);
  NamespaceId Ns = TS2.getOrAddNamespace("N");
  TypeId A = TS2.addType("A", Ns, TypeKind::Class);
  TypeId B = TS2.addType("B", Ns, TypeKind::Class);
  MethodId ToString = TS2.type(TS2.objectType()).Methods[0];

  MethodId MDecl = TS2.addMethod(A, "M", TS2.voidType(),
                                 {{"a", A}, {"b", B}});
  CodeClass &CC = P2.addClass(A);
  CodeMethod &CM = CC.addMethod(MDecl);
  unsigned SA = CM.addLocal("a", A, true);
  unsigned SB = CM.addLocal("b", B, true);
  ExprFactory F(TS2, P2.arena());
  // a.ToString(); b.ToString();
  CM.addStmt({StmtKind::ExprStmt, 0, F.call(ToString, F.var(CM, SA), {})});
  CM.addStmt({StmtKind::ExprStmt, 0, F.call(ToString, F.var(CM, SB), {})});

  AbstractTypeInference Inf(P2);
  AbsTypeSolution Sol = Inf.solve();
  // The receivers do NOT unify: each receiver type has its own ToString.
  uint32_t VA = Inf.varOfExpr(F.var(CM, SA), &CM);
  uint32_t VB = Inf.varOfExpr(F.var(CM, SB), &CM);
  EXPECT_FALSE(Sol.sameAbstractType(VA, VB));
  // And the per-type return slots are distinct variables.
  EXPECT_NE(Inf.varOfReturn(ToString, A), Inf.varOfReturn(ToString, B));
}

TEST_F(InferTest, ExclusionRemovesTheQuerySiteEvidence) {
  load(R"(
    class Util {
      static void Consume(int amount);
    }
    class C {
      void M(int a, int b) {
        Util.Consume(a);
        Util.Consume(b);
      }
    }
  )");
  MethodId Consume = TS->findMethods(TS->findType("Util"), "Consume")[0];
  uint32_t Param = Infer->varOfCallParam(Consume, 0, TS->findType("Util"));
  const CodeMethod *M = method("C", "M");
  uint32_t VA = localVar(M, 0);
  uint32_t VB = localVar(M, 1);

  // Full solution: both arguments unify with the parameter.
  AbsTypeSolution Full = Infer->solve();
  EXPECT_TRUE(Full.sameAbstractType(VA, Param));
  EXPECT_TRUE(Full.sameAbstractType(VB, Param));

  // Excluding from statement 1 on: the b-call never happened, so only a
  // unifies ("the expression does not exist yet", §5).
  AbsTypeSolution Partial = Infer->solveExcluding(M, 1);
  EXPECT_TRUE(Partial.sameAbstractType(VA, Param));
  EXPECT_FALSE(Partial.sameAbstractType(VB, Param));

  // Excluding everything: no call evidence at all.
  AbsTypeSolution None = Infer->solveExcluding(M, 0);
  EXPECT_FALSE(None.sameAbstractType(VA, Param));
}

TEST_F(InferTest, ReturnsUnifyWithReturnSlot) {
  load(R"(
    class C {
      int counter;
      int Get() {
        return counter;
      }
      void M() {
        var v = Get();
      }
    }
  )");
  AbsTypeSolution Sol = Infer->solve();
  const CodeMethod *M = method("C", "M");
  const CodeMethod *Get = method("C", "Get");
  ASSERT_NE(Get, nullptr);
  uint32_t V = localVar(M, 0);
  FieldId Counter = TS->findField(TS->findType("C"), "counter");
  Arena A;
  ExprFactory F(*TS, A);
  uint32_t CounterVar = Infer->varOfExpr(
      F.fieldAccess(F.thisRef(TS->findType("C")), Counter), Get);
  // v = Get() and return counter connect v to the field through the
  // return slot.
  EXPECT_TRUE(Sol.sameAbstractType(V, CounterVar));
}

} // namespace
