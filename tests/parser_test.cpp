//===- tests/parser_test.cpp - Declaration/query parser tests -------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace petal;

namespace {

SynFile parseFileOk(const char *Src) {
  DiagnosticEngine D;
  Lexer L(Src, D);
  Parser P(L.lexAll(), D);
  SynFile File;
  bool Ok = P.parseFile(File);
  std::ostringstream OS;
  D.print(OS);
  EXPECT_TRUE(Ok) << OS.str();
  return File;
}

bool parseFails(const char *Src) {
  DiagnosticEngine D;
  Lexer L(Src, D);
  Parser P(L.lexAll(), D);
  SynFile File;
  return !P.parseFile(File);
}

SynExprPtr parseQueryOk(const char *Src) {
  DiagnosticEngine D;
  Lexer L(Src, D);
  Parser P(L.lexAll(), D);
  SynExprPtr Q = P.parseQuery();
  std::ostringstream OS;
  D.print(OS);
  EXPECT_NE(Q, nullptr) << OS.str();
  return Q;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

TEST(ParserTest, EmptyFile) {
  SynFile F = parseFileOk("");
  EXPECT_TRUE(F.Types.empty());
}

TEST(ParserTest, ClassWithMembers) {
  SynFile F = parseFileOk(R"(
    class Point {
      double X;
      double Y;
      string Name { get; set; }
      static Point Origin;
      double DistanceTo(Point other);
      void Reset() { }
    }
  )");
  ASSERT_EQ(F.Types.size(), 1u);
  const SynType &T = F.Types[0];
  EXPECT_EQ(T.Name, "Point");
  EXPECT_EQ(T.Kind, TypeKind::Class);
  ASSERT_EQ(T.Members.size(), 6u);
  EXPECT_EQ(T.Members[0].Kind, SynMember::Field);
  EXPECT_EQ(T.Members[2].Kind, SynMember::Property);
  EXPECT_TRUE(T.Members[3].IsStatic);
  EXPECT_EQ(T.Members[4].Kind, SynMember::Method);
  ASSERT_EQ(T.Members[4].Params.size(), 1u);
  EXPECT_EQ(T.Members[4].Params[0].Name, "other");
  EXPECT_TRUE(T.Members[5].IsVoid);
  EXPECT_TRUE(T.Members[5].HasBody);
}

TEST(ParserTest, NamespacesDottedAndNested) {
  SynFile F = parseFileOk(R"(
    namespace A.B {
      class C { }
      namespace D {
        class E { }
      }
    }
    class Root { }
  )");
  ASSERT_EQ(F.Types.size(), 3u);
  EXPECT_EQ(F.Types[0].NamespaceName, "A.B");
  EXPECT_EQ(F.Types[1].NamespaceName, "A.B.D");
  EXPECT_EQ(F.Types[2].NamespaceName, "");
}

TEST(ParserTest, BasesAndComparableFlag) {
  SynFile F = parseFileOk(R"(
    comparable struct DateTime { }
    interface IShape { }
    class Square : Base.Shape, IShape { }
  )");
  EXPECT_TRUE(F.Types[0].Comparable);
  EXPECT_EQ(F.Types[1].Kind, TypeKind::Interface);
  ASSERT_EQ(F.Types[2].Bases.size(), 2u);
  EXPECT_EQ(F.Types[2].Bases[0],
            (std::vector<std::string>{"Base", "Shape"}));
}

TEST(ParserTest, EnumDeclaration) {
  SynFile F = parseFileOk("enum Edge { Top, Bottom, Left, }");
  ASSERT_EQ(F.Types.size(), 1u);
  EXPECT_EQ(F.Types[0].Kind, TypeKind::Enum);
  EXPECT_EQ(F.Types[0].Enumerators,
            (std::vector<std::string>{"Top", "Bottom", "Left"}));
}

TEST(ParserTest, StatementForms) {
  SynFile F = parseFileOk(R"(
    class C {
      int M(int x) {
        var a = x;
        System.Point p = x;
        a = x;
        Helper(x);
        return a;
      }
    }
  )");
  const auto &Body = F.Types[0].Members[0].Body;
  ASSERT_EQ(Body.size(), 5u);
  EXPECT_EQ(Body[0].Kind, SynStmtKind::VarDecl);
  EXPECT_EQ(Body[1].Kind, SynStmtKind::TypedDecl);
  EXPECT_EQ(Body[1].DeclTypeSegs,
            (std::vector<std::string>{"System", "Point"}));
  EXPECT_EQ(Body[2].Kind, SynStmtKind::ExprStmt);
  EXPECT_EQ(Body[2].Value->Kind, SynExprKind::Assign);
  EXPECT_EQ(Body[3].Kind, SynStmtKind::ExprStmt);
  EXPECT_EQ(Body[3].Value->Kind, SynExprKind::Call);
  EXPECT_EQ(Body[4].Kind, SynStmtKind::Return);
}

TEST(ParserTest, TypedDeclVsExpressionDisambiguation) {
  // `a.b = c;` is an assignment, `a.b x = c;` a declaration.
  SynFile F = parseFileOk(R"(
    class C {
      void M() {
        a.b = c;
        a.b x = c;
      }
    }
  )");
  const auto &Body = F.Types[0].Members[0].Body;
  ASSERT_EQ(Body.size(), 2u);
  EXPECT_EQ(Body[0].Kind, SynStmtKind::ExprStmt);
  EXPECT_EQ(Body[1].Kind, SynStmtKind::TypedDecl);
}

TEST(ParserTest, ErrorsAreReported) {
  EXPECT_TRUE(parseFails("class { }"));           // missing name
  EXPECT_TRUE(parseFails("class C { int ; }"));   // missing member name
  EXPECT_TRUE(parseFails("enum E { 1, 2 }"));     // bad enumerator
  EXPECT_TRUE(parseFails("class C { void M() { var = 3; } }"));
}

TEST(ParserTest, RecoversAfterBadMember) {
  // One bad member must not swallow the rest of the file.
  DiagnosticEngine D;
  Lexer L("class C { int ; int Good; } class D { }", D);
  Parser P(L.lexAll(), D);
  SynFile File;
  P.parseFile(File);
  EXPECT_TRUE(D.hasErrors());
  ASSERT_EQ(File.Types.size(), 2u);
  EXPECT_EQ(File.Types[1].Name, "D");
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

TEST(ParserTest, QueryHole) {
  SynExprPtr Q = parseQueryOk("?");
  EXPECT_EQ(Q->Kind, SynExprKind::Hole);
}

TEST(ParserTest, QueryUnknownCall) {
  SynExprPtr Q = parseQueryOk("?({img, size})");
  ASSERT_EQ(Q->Kind, SynExprKind::UnknownCall);
  ASSERT_EQ(Q->Args.size(), 2u);
  EXPECT_EQ(Q->Args[0]->Kind, SynExprKind::Name);
  EXPECT_EQ(Q->Args[0]->Name, "img");
}

TEST(ParserTest, QueryUnknownCallNestedPartials) {
  // ?({strBuilder.?*m, e.?*m}) from §3.
  SynExprPtr Q = parseQueryOk("?({strBuilder.?*m, e.?*m})");
  ASSERT_EQ(Q->Kind, SynExprKind::UnknownCall);
  ASSERT_EQ(Q->Args.size(), 2u);
  EXPECT_EQ(Q->Args[0]->Kind, SynExprKind::Suffix);
  EXPECT_EQ(Q->Args[0]->Sfx, SuffixKind::MemberStar);
}

TEST(ParserTest, QuerySuffixForms) {
  struct Case {
    const char *Text;
    SuffixKind Kind;
  } Cases[] = {
      {"x.?f", SuffixKind::Field},
      {"x.?*f", SuffixKind::FieldStar},
      {"x.?m", SuffixKind::Member},
      {"x.?*m", SuffixKind::MemberStar},
  };
  for (const Case &C : Cases) {
    SynExprPtr Q = parseQueryOk(C.Text);
    ASSERT_EQ(Q->Kind, SynExprKind::Suffix) << C.Text;
    EXPECT_EQ(Q->Sfx, C.Kind) << C.Text;
    EXPECT_EQ(Q->Base->Kind, SynExprKind::Name);
  }
}

TEST(ParserTest, QueryStackedSuffixes) {
  SynExprPtr Q = parseQueryOk("p.?m.?m");
  ASSERT_EQ(Q->Kind, SynExprKind::Suffix);
  ASSERT_EQ(Q->Base->Kind, SynExprKind::Suffix);
  EXPECT_EQ(Q->Base->Base->Kind, SynExprKind::Name);
}

TEST(ParserTest, QueryComparisonOfSuffixes) {
  SynExprPtr Q = parseQueryOk("point.?*m >= this.?*m");
  ASSERT_EQ(Q->Kind, SynExprKind::Compare);
  EXPECT_EQ(Q->CmpOp, CompareOp::Ge);
  EXPECT_EQ(Q->Base->Kind, SynExprKind::Suffix);
  EXPECT_EQ(Q->Rhs->Kind, SynExprKind::Suffix);
  EXPECT_EQ(Q->Rhs->Base->Kind, SynExprKind::This);
}

TEST(ParserTest, QueryKnownCallWithHole) {
  SynExprPtr Q = parseQueryOk("Distance(point, ?)");
  ASSERT_EQ(Q->Kind, SynExprKind::Call);
  EXPECT_EQ(Q->Name, "Distance");
  ASSERT_EQ(Q->Args.size(), 2u);
  EXPECT_EQ(Q->Args[1]->Kind, SynExprKind::Hole);
}

TEST(ParserTest, QueryAssignment) {
  SynExprPtr Q = parseQueryOk("this.shape.?f = point.?f");
  ASSERT_EQ(Q->Kind, SynExprKind::Assign);
  EXPECT_EQ(Q->Base->Kind, SynExprKind::Suffix);
}

TEST(ParserTest, QueryRejectsTrailingTokens) {
  DiagnosticEngine D;
  Lexer L("? ?", D);
  Parser P(L.lexAll(), D);
  EXPECT_EQ(P.parseQuery(), nullptr);
  EXPECT_TRUE(D.hasErrors());
}

TEST(ParserTest, QuerySyntaxRejectedInBodies) {
  EXPECT_TRUE(parseFails("class C { void M() { x.?f; } }"));
  EXPECT_TRUE(parseFails("class C { void M() { Foo(?); } }"));
}

TEST(ParserTest, QueryBadSuffixLetter) {
  DiagnosticEngine D;
  Lexer L("x.?z", D);
  Parser P(L.lexAll(), D);
  EXPECT_EQ(P.parseQuery(), nullptr);
  EXPECT_TRUE(D.hasErrors());
}

} // namespace
