//===- tests/corpus_test.cpp - Synthetic-corpus generator tests -----------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "code/ExprPrinter.h"
#include "code/Verify.h"
#include "corpus/Generator.h"
#include "eval/Harvest.h"

#include <gtest/gtest.h>

using namespace petal;

namespace {

//===----------------------------------------------------------------------===//
// Profiles
//===----------------------------------------------------------------------===//

TEST(ProfilesTest, SevenPaperProjects) {
  auto Profiles = paperProjectProfiles();
  ASSERT_EQ(Profiles.size(), 7u);
  std::vector<std::string> Names;
  for (const auto &P : Profiles)
    Names.push_back(P.Name);
  EXPECT_EQ(Names, (std::vector<std::string>{
                       "PaintNet", "Wix", "GnomeDo", "Banshee", "DotNet",
                       "FamilyShow", "LiveGeometry"}));
}

TEST(ProfilesTest, ScaleShrinksProjects) {
  auto Full = paperProjectProfiles(1.0);
  auto Half = paperProjectProfiles(0.5);
  for (size_t I = 0; I != Full.size(); ++I) {
    EXPECT_LE(Half[I].NumClasses, Full[I].NumClasses);
    EXPECT_GE(Half[I].NumClasses, 1);
    EXPECT_EQ(Half[I].Seed, Full[I].Seed); // scale never changes the seed
  }
}

//===----------------------------------------------------------------------===//
// Generation
//===----------------------------------------------------------------------===//

struct CorpusSummary {
  size_t Types, Methods, Fields, Stmts, Calls, Assigns, Compares;
  std::string FirstStmts;
};

static CorpusSummary summarize(const ProjectProfile &Prof) {
  TypeSystem TS;
  Program P(TS);
  CorpusGenerator Gen(Prof);
  Gen.generate(P);
  HarvestResult H = harvestProgram(P);
  CorpusSummary S{TS.numTypes(),  TS.numMethods(),    TS.numFields(),
                  P.numStatements(), H.Calls.size(),  H.Assigns.size(),
                  H.Compares.size(), {}};
  // A textual fingerprint of the first few statements.
  size_t Shown = 0;
  for (const auto &CC : P.classes()) {
    for (const auto &CM : CC->methods())
      for (const Stmt &St : CM->body()) {
        if (St.Value)
          S.FirstStmts += printExpr(TS, St.Value) + ";";
        if (++Shown == 25)
          return S;
      }
  }
  return S;
}

TEST(GeneratorTest, DeterministicForTheSameProfile) {
  ProjectProfile Prof = paperProjectProfiles(0.2)[0];
  CorpusSummary A = summarize(Prof);
  CorpusSummary B = summarize(Prof);
  EXPECT_EQ(A.Types, B.Types);
  EXPECT_EQ(A.Methods, B.Methods);
  EXPECT_EQ(A.Stmts, B.Stmts);
  EXPECT_EQ(A.FirstStmts, B.FirstStmts);
}

TEST(GeneratorTest, DifferentSeedsProduceDifferentCorpora) {
  ProjectProfile Prof = paperProjectProfiles(0.2)[0];
  CorpusSummary A = summarize(Prof);
  Prof.Seed ^= 0xDEADBEEF;
  CorpusSummary B = summarize(Prof);
  EXPECT_NE(A.FirstStmts, B.FirstStmts);
}

TEST(GeneratorTest, ProducesAllStatementKinds) {
  ProjectProfile Prof = paperProjectProfiles(0.3)[0];
  TypeSystem TS;
  Program P(TS);
  CorpusGenerator Gen(Prof);
  Gen.generate(P);
  HarvestResult H = harvestProgram(P);
  EXPECT_GT(H.Calls.size(), 10u);
  EXPECT_GT(H.Assigns.size(), 5u);
  EXPECT_GT(H.Compares.size(), 5u);
}

/// The strongest generator property: every generated statement type-checks
/// under the independent verifier.
TEST(GeneratorTest, EveryGeneratedStatementTypeChecks) {
  for (const ProjectProfile &Prof : paperProjectProfiles(0.25)) {
    TypeSystem TS;
    Program P(TS);
    CorpusGenerator Gen(Prof);
    Gen.generate(P);
    for (const auto &CC : P.classes())
      for (const auto &CM : CC->methods())
        for (const Stmt &St : CM->body()) {
          if (!St.Value)
            continue;
          std::string Why;
          ASSERT_TRUE(verifyExpr(TS, St.Value, &Why))
              << Prof.Name << ": " << printExpr(TS, St.Value) << ": " << Why;
        }
  }
}

TEST(GeneratorTest, ConceptFieldsShareTypesAcrossClasses) {
  // Same-named primitive fields must have identical types everywhere —
  // the invariant the matching-name term relies on.
  ProjectProfile Prof = paperProjectProfiles(0.3)[1];
  TypeSystem TS;
  Program P(TS);
  CorpusGenerator Gen(Prof);
  Gen.generate(P);

  std::unordered_map<std::string, TypeId> ByName;
  for (size_t F = 0; F != TS.numFields(); ++F) {
    const FieldInfo &FI = TS.field(static_cast<FieldId>(F));
    if (!TS.isPrimitive(FI.Type) && FI.Type != TS.stringType())
      continue;
    if (TS.type(FI.Owner).Kind == TypeKind::Enum)
      continue;
    auto [It, Inserted] = ByName.emplace(FI.Name, FI.Type);
    if (!Inserted) {
      ASSERT_EQ(It->second, FI.Type) << "field " << FI.Name;
    }
  }
}

TEST(GeneratorTest, CallSitesHaveGuessableArguments) {
  ProjectProfile Prof = paperProjectProfiles(0.25)[0];
  TypeSystem TS;
  Program P(TS);
  CorpusGenerator Gen(Prof);
  Gen.generate(P);
  HarvestResult H = harvestProgram(P);
  size_t WithGuessable = 0;
  for (const CallSiteInfo &CS : H.Calls) {
    bool Any = CS.Call->receiver() && isGuessableExpr(CS.Call->receiver());
    for (const Expr *A : CS.Call->args())
      Any |= isGuessableExpr(A);
    WithGuessable += Any;
  }
  // Nearly every call should be usable by the method-prediction experiment.
  EXPECT_GT(WithGuessable * 10, H.Calls.size() * 9);
}

TEST(GeneratorTest, GenerateTwiceIsRejected) {
  ProjectProfile Prof = paperProjectProfiles(0.1)[3];
  TypeSystem TS;
  Program P(TS);
  CorpusGenerator Gen(Prof);
  Gen.generate(P);
  EXPECT_DEATH(Gen.generate(P), "generate");
}

} // namespace
