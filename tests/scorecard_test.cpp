//===- tests/scorecard_test.cpp - ScoreCard decomposition properties ------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
//
// The structured cost model's central invariant: for every completion the
// engine emits, the per-term ScoreCard decomposes the scalar ranking score
// exactly — ScoreCard::total() == Completion::Score == Ranker::scoreExpr —
// under every Table 2 ablation, in serial and threaded batch execution.
// Also covers the score ceiling (satellite of the same refactor): bucket
// growth stops at the ceiling, the engine reports when the ceiling (not
// the caller's MaxScore) terminated enumeration, and a ceiling-bound run
// equals a MaxScore-bound run at the same cutoff.
//
//===----------------------------------------------------------------------===//

#include "TestCorpora.h"

#include "code/ExprPrinter.h"
#include "complete/BatchExecutor.h"
#include "corpus/Generator.h"
#include "eval/Harvest.h"
#include "parser/Frontend.h"
#include "rank/ScoreCard.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace petal;

namespace {

/// "all", "none", and each Fig. 7 term disabled on its own.
const char *AblationSpecs[] = {"all", "none", "-t", "-a",
                               "-d",  "-s",   "-n", "-m"};

//===----------------------------------------------------------------------===//
// Card arithmetic
//===----------------------------------------------------------------------===//

TEST(ScoreCardTest, AccumulationAndEquality) {
  ScoreCard A;
  A.term(ScoreTerm::Depth) = 2;
  A.term(ScoreTerm::Namespace) = 3;
  EXPECT_EQ(A.total(), 5);

  ScoreCard B;
  B.term(ScoreTerm::Depth) = 1;
  B.Subexpr = 7; // informational: never part of total()
  A += B;
  EXPECT_EQ(A.term(ScoreTerm::Depth), 3);
  EXPECT_EQ(A.Subexpr, 7);
  EXPECT_EQ(A.total(), 6);

  ScoreCard C = A;
  EXPECT_EQ(A, C);
  C.term(ScoreTerm::MatchingName) = 1;
  EXPECT_NE(A, C);
}

//===----------------------------------------------------------------------===//
// Direct engine: cards match the standalone scorer under every ablation
//===----------------------------------------------------------------------===//

class ExplainEngineTest : public ::testing::Test {
protected:
  void load(const char *Source, const char *ClassName,
            const char *MethodName) {
    TS = std::make_unique<TypeSystem>();
    P = std::make_unique<Program>(*TS);
    ASSERT_TRUE(loadProgramText(Source, *P, Diags));
    Class = findCodeClass(*P, ClassName);
    ASSERT_NE(Class, nullptr);
    Method = findCodeMethod(*P, *Class, MethodName);
    ASSERT_NE(Method, nullptr);
    Site = {Class, Method, Method->body().size()};
    Idx = std::make_unique<CompletionIndexes>(*P);
    Engine = std::make_unique<CompletionEngine>(*P, *Idx);
  }

  const PartialExpr *query(const char *Text) {
    QueryScope Scope{Class, Method, Site.StmtIndex};
    const PartialExpr *Q = parseQueryText(Text, *P, Scope, Diags);
    EXPECT_NE(Q, nullptr);
    return Q;
  }

  DiagnosticEngine Diags;
  std::unique_ptr<TypeSystem> TS;
  std::unique_ptr<Program> P;
  const CodeClass *Class = nullptr;
  const CodeMethod *Method = nullptr;
  CodeSite Site;
  std::unique_ptr<CompletionIndexes> Idx;
  std::unique_ptr<CompletionEngine> Engine;
};

class ExplainAblationTest : public ExplainEngineTest,
                            public ::testing::WithParamInterface<const char *> {
};

TEST_P(ExplainAblationTest, CardsDecomposeAndMatchStandaloneScorer) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  CompletionOptions Opts;
  Opts.Rank = RankingOptions::fromSpec(GetParam());
  Opts.Explain = true;

  // Mirror the engine's scoring configuration exactly, including the
  // full-corpus abstract-type solution it uses by default.
  AbsTypeSolution Sol = Idx->Infer.solve();
  Ranker R(*TS, Opts.Rank);
  R.setSelfType(Class->type());
  if (Opts.Rank.UseAbstractTypes)
    R.setAbstractTypes(&Idx->Infer, &Sol, Method);

  size_t Checked = 0;
  for (const char *Q : {"?", "Distance(point, ?)", "?({point})",
                        "point.?*m >= this.?*m"}) {
    for (const Completion &C : Engine->complete(query(Q), Site, 50, Opts)) {
      ASSERT_NE(C.Card, nullptr) << Q;
      EXPECT_EQ(C.Card->total(), C.Score) << printExpr(*TS, C.E);
      EXPECT_EQ(*C.Card, R.scoreCard(C.E)) << printExpr(*TS, C.E);
      EXPECT_EQ(R.scoreExpr(C.E), C.Score) << printExpr(*TS, C.E);
      ++Checked;
    }
  }
  EXPECT_GT(Checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllAblations, ExplainAblationTest,
                         ::testing::ValuesIn(AblationSpecs));

TEST_F(ExplainEngineTest, ExplainOffLeavesResultsUntouched) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");
  CompletionOptions Off; // Explain defaults to false
  CompletionOptions On;
  On.Explain = true;

  auto Render = [this](const std::vector<Completion> &Results) {
    std::ostringstream OS;
    for (const Completion &C : Results)
      OS << C.Score << ' ' << printExpr(*TS, C.E) << '\n';
    return OS.str();
  };
  for (const char *Q : {"?", "Distance(point, ?)", "?({point})"}) {
    std::vector<Completion> Plain = Engine->complete(query(Q), Site, 30, Off);
    for (const Completion &C : Plain)
      EXPECT_EQ(C.Card, nullptr);
    std::string Want = Render(Plain);
    EXPECT_EQ(Render(Engine->complete(query(Q), Site, 30, On)), Want) << Q;
  }
}

//===----------------------------------------------------------------------===//
// Batched property over a generated corpus, serial vs. threaded
//===----------------------------------------------------------------------===//

class BatchExplainProperty : public ::testing::TestWithParam<const char *> {};

TEST_P(BatchExplainProperty, EveryEmittedCandidateDecomposesExactly) {
  ProjectProfile Prof = paperProjectProfiles(0.15)[5];
  TypeSystem TS;
  Program P(TS);
  CorpusGenerator Gen(Prof);
  Gen.generate(P);
  CompletionIndexes Idx(P);

  // Replay harvested call sites as §5.1-style unknown-method queries.
  HarvestResult Sites = harvestProgram(P);
  Arena &A = P.arena();
  CompletionOptions Opts;
  Opts.Rank = RankingOptions::fromSpec(GetParam());
  Opts.Explain = true;
  std::vector<BatchExecutor::Request> Reqs;
  for (const CallSiteInfo &CS : Sites.Calls) {
    std::vector<const PartialExpr *> Args;
    if (CS.Call->receiver() && isGuessableExpr(CS.Call->receiver()))
      Args.push_back(A.create<ConcretePE>(CS.Call->receiver()));
    for (const Expr *Arg : CS.Call->args())
      if (isGuessableExpr(Arg))
        Args.push_back(A.create<ConcretePE>(Arg));
    if (Args.empty())
      continue;
    Reqs.push_back({A.create<UnknownCallPE>(std::move(Args)), CS.Site, 10,
                    Opts, nullptr});
    if (Reqs.size() == 24)
      break;
  }
  ASSERT_FALSE(Reqs.empty());

  // The invariant holds per candidate, and the full (expr, score, card)
  // sequence is thread-count independent.
  auto Render = [&](const BatchExecutor::BatchResult &Batch) {
    std::ostringstream OS;
    for (const std::vector<Completion> &Results : Batch.Results)
      for (const Completion &C : Results) {
        EXPECT_NE(C.Card, nullptr);
        EXPECT_EQ(C.Card->total(), C.Score) << printExpr(TS, C.E);
        OS << C.Score << ' ' << printExpr(TS, C.E) << ' '
           << C.Card->toString() << '\n';
      }
    return OS.str();
  };

  BatchExecutor Serial(P, Idx, 1);
  std::string Want = Render(Serial.completeBatch(Reqs));
  EXPECT_FALSE(Want.empty());

  BatchExecutor Threaded(P, Idx, 4);
  EXPECT_EQ(Render(Threaded.completeBatch(Reqs)), Want);
}

INSTANTIATE_TEST_SUITE_P(AllAblations, BatchExplainProperty,
                         ::testing::ValuesIn(AblationSpecs));

//===----------------------------------------------------------------------===//
// Score ceiling
//===----------------------------------------------------------------------===//

/// One candidate per bucket, recording the highest bucket materialized.
struct CountingStream : CandidateStream {
  void fillBucket(int S, CandidateVec &Out) override {
    Filled = S;
    Out.push_back(Candidate{nullptr, S, InvalidId, 0});
  }
  int Filled = -1;
};

TEST(ScoreCeilingTest, BucketsBeyondTheCeilingAreEmptyAndLatch) {
  CountingStream S;
  S.setCeiling(3);
  for (int I = 0; I <= 3; ++I)
    EXPECT_EQ(S.bucket(I).size(), 1u);
  EXPECT_FALSE(S.ceilingHit());

  // Past the ceiling: permanently empty, nothing materialized, flag latches.
  EXPECT_TRUE(S.bucket(4).empty());
  EXPECT_TRUE(S.bucket(1000).empty());
  EXPECT_EQ(S.Filled, 3);
  EXPECT_TRUE(S.ceilingHit());

  // Buckets at or below the ceiling still replay from cache.
  EXPECT_EQ(S.bucket(2).front().Score, 2);
}

TEST_F(ExplainEngineTest, CeilingBoundsExplorationAndReportsTheHit) {
  load(corpora::GeometryCorpus, "EllipseArc", "Examine");

  // A hostile MaxScore must not drive exploration past the ceiling, and
  // the truncation must be reported.
  CompletionOptions Tight;
  Tight.MaxScore = 1000000;
  Tight.ScoreCeiling = 2;
  std::vector<Completion> Bounded =
      Engine->complete(query("?"), Site, 500, Tight);
  for (const Completion &C : Bounded)
    EXPECT_LE(C.Score, 2);
  ASSERT_LT(Bounded.size(), 500u);
  EXPECT_TRUE(Engine->lastQueryStats().ScoreCeilingHit);
  EXPECT_LE(Engine->lastQueryStats().LastBucket, 2);

  // The ceiling-bound run is exactly the MaxScore-bound run at the same
  // cutoff.
  CompletionOptions SameCut;
  SameCut.MaxScore = 2;
  std::vector<Completion> Want =
      Engine->complete(query("?"), Site, 500, SameCut);
  ASSERT_EQ(Bounded.size(), Want.size());
  for (size_t I = 0; I != Want.size(); ++I) {
    EXPECT_EQ(Bounded[I].Score, Want[I].Score);
    EXPECT_EQ(printExpr(*TS, Bounded[I].E), printExpr(*TS, Want[I].E));
  }
  // Running out at the caller's own MaxScore is not a ceiling hit.
  EXPECT_FALSE(Engine->lastQueryStats().ScoreCeilingHit);
}

} // namespace
