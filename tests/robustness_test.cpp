//===- tests/robustness_test.cpp - Parser fuzz + report tests -------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "TestCorpora.h"

#include "eval/Report.h"
#include "parser/Frontend.h"
#include "service/Client.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <fstream>

using namespace petal;

namespace {

//===----------------------------------------------------------------------===//
// CsvReport
//===----------------------------------------------------------------------===//

TEST(CsvReportTest, BuildsHeaderAndRows) {
  CsvReport R({"a", "b"});
  R.addRow({"1", "2"});
  EXPECT_EQ(R.text(), "a,b\n1,2\n");
}

TEST(CsvReportTest, EscapesSpecialCharacters) {
  CsvReport R({"name", "value"});
  R.addRow({"has,comma", "has\"quote"});
  EXPECT_EQ(R.text(), "name,value\n\"has,comma\",\"has\"\"quote\"\n");
}

TEST(CsvReportTest, CdfRows) {
  RankDistribution D;
  D.add(1);
  D.add(3);
  D.add(0);
  CsvReport R(CsvReport::cdfColumns());
  R.addCdfRow("series1", D);
  // Header + one row, ending with the trial count.
  EXPECT_NE(R.text().find("series1"), std::string::npos);
  EXPECT_NE(R.text().find(",3\n"), std::string::npos);
}

TEST(CsvReportTest, NoFileWithoutEnvVar) {
  unsetenv("PETAL_CSV_DIR");
  CsvReport R({"x"});
  EXPECT_FALSE(R.writeIfRequested("nope"));
}

TEST(CsvReportTest, WritesWhenRequested) {
  setenv("PETAL_CSV_DIR", "/tmp", 1);
  CsvReport R({"x"});
  R.addRow({"1"});
  EXPECT_TRUE(R.writeIfRequested("petal_csv_test"));
  std::ifstream In("/tmp/petal_csv_test.csv");
  std::string Line;
  ASSERT_TRUE(std::getline(In, Line));
  EXPECT_EQ(Line, "x");
  unsetenv("PETAL_CSV_DIR");
}

//===----------------------------------------------------------------------===//
// Parser robustness: mutated inputs must produce diagnostics, not crashes
//===----------------------------------------------------------------------===//

/// Mutation fuzz-lite: randomly delete/duplicate/replace characters of a
/// valid corpus and require the frontend to terminate with diagnostics (or
/// succeed) — never crash or hang.
class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, MutatedSourcesNeverCrashTheFrontend) {
  std::string Base = corpora::GeometryCorpus;
  Rng R(GetParam());
  static const char Junk[] = "{}();.?*<>=,\"0x ";

  for (int Trial = 0; Trial != 60; ++Trial) {
    std::string Src = Base;
    int Mutations = static_cast<int>(R.range(1, 8));
    for (int M = 0; M != Mutations && !Src.empty(); ++M) {
      size_t Pos = R.below(Src.size());
      switch (R.below(3)) {
      case 0: // delete
        Src.erase(Pos, 1);
        break;
      case 1: // duplicate
        Src.insert(Pos, 1, Src[Pos]);
        break;
      default: // replace with junk
        Src[Pos] = Junk[R.below(sizeof(Junk) - 1)];
        break;
      }
    }
    DiagnosticEngine Diags;
    TypeSystem TS;
    Program P(TS);
    bool Ok = loadProgramText(Src, P, Diags);
    // Either it still parses, or it reports at least one diagnostic.
    ASSERT_TRUE(Ok || !Diags.diagnostics().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(101, 202, 303, 404));

/// Query-parser fuzz: mutated queries never crash and always either resolve
/// or diagnose.
class QueryFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryFuzzTest, MutatedQueriesNeverCrash) {
  DiagnosticEngine LoadDiags;
  TypeSystem TS;
  Program P(TS);
  ASSERT_TRUE(loadProgramText(corpora::GeometryCorpus, P, LoadDiags));
  const CodeClass *Class = findCodeClass(P, "EllipseArc");
  const CodeMethod *Method = findCodeMethod(P, *Class, "Examine");
  QueryScope Scope{Class, Method, static_cast<size_t>(-1)};

  static const char *Bases[] = {
      "?({point, this})", "Distance(point, ?)", "point.?*m >= this.?*m",
      "this.?f = point.?f", "shapeStyle.?m.?m",
  };
  static const char Junk[] = "{}();.?*<>=, ";
  Rng R(GetParam());

  for (int Trial = 0; Trial != 120; ++Trial) {
    std::string Q = Bases[R.below(5)];
    int Mutations = static_cast<int>(R.range(1, 4));
    for (int M = 0; M != Mutations && !Q.empty(); ++M) {
      size_t Pos = R.below(Q.size());
      if (R.chance(0.5))
        Q.erase(Pos, 1);
      else
        Q[Pos] = Junk[R.below(sizeof(Junk) - 1)];
    }
    DiagnosticEngine Diags;
    const PartialExpr *PE = parseQueryText(Q, P, Scope, Diags);
    ASSERT_TRUE(PE != nullptr || !Diags.diagnostics().empty()) << Q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryFuzzTest,
                         ::testing::Values(7, 77, 777));

//===----------------------------------------------------------------------===//
// Service sessions under malformed edits
//===----------------------------------------------------------------------===//

namespace servicefuzz {

json::Value docParams(const char *Doc, const std::string &Text, int64_t V) {
  json::Value P = json::Value::object();
  P.set("doc", Doc);
  P.set("text", Text);
  P.set("version", V);
  return P;
}

json::Value geoComplete(const char *Doc, int64_t Version = -1) {
  json::Value P = json::Value::object();
  P.set("doc", Doc);
  P.set("class", "EllipseArc");
  P.set("method", "Examine");
  P.set("query", "?({point})");
  if (Version >= 0)
    P.set("version", Version);
  return P;
}

int errCode(const json::Value &Resp) {
  const json::Value *E = Resp.find("error");
  return E ? static_cast<int>(E->getInt("code", 0)) : 0;
}

} // namespace servicefuzz

TEST(ServiceRobustnessTest, MalformedChangeKeepsPreviousDocumentAlive) {
  using namespace servicefuzz;
  PetalService::Options Opts;
  Opts.Workers = 2;
  InProcessClient C(Opts);
  ASSERT_EQ(errCode(C.call("petal/open",
                           docParams("geo.cs", corpora::GeometryCorpus, 1))),
            0);
  json::Value Before = C.call("petal/complete", geoComplete("geo.cs"));
  ASSERT_EQ(errCode(Before), 0);

  // A change whose text does not parse must fail the request but leave the
  // session answering against version 1.
  json::Value Bad = C.call(
      "petal/change", docParams("geo.cs", "class Broken { oops((((", 2));
  EXPECT_EQ(errCode(Bad), rpc::BuildFailed);
  // The error names the version still being served.
  EXPECT_NE(Bad.find("error")->getString("message").find("1"),
            std::string::npos);

  json::Value After = C.call("petal/complete", geoComplete("geo.cs"));
  ASSERT_EQ(errCode(After), 0);
  EXPECT_EQ(After.find("result")->getInt("version", -1), 1);
  EXPECT_EQ(Before.find("result")->write(), After.find("result")->write());
  // Pinning the surviving version explicitly also still works.
  EXPECT_EQ(errCode(C.call("petal/complete", geoComplete("geo.cs", 1))), 0);

  json::Value Stats = C.callResult("$/stats", json::Value::object());
  EXPECT_EQ(Stats.getInt("sessions", -1), 1);
  EXPECT_EQ(Stats.getInt("buildFailures", -1), 1);
}

TEST(ServiceRobustnessTest, MalformedChangeParamsKeepSessionAndVersion) {
  using namespace servicefuzz;
  PetalService::Options Opts;
  InProcessClient C(Opts);
  C.call("petal/open", docParams("geo.cs", corpora::GeometryCorpus, 1));

  // Structurally broken change requests: wrong/missing fields. None of
  // them may tear down the session or bump the version.
  json::Value NoText = json::Value::object();
  NoText.set("doc", "geo.cs");
  NoText.set("version", 2);
  EXPECT_EQ(errCode(C.call("petal/change", NoText)), rpc::InvalidParams);

  json::Value NumberText = json::Value::object();
  NumberText.set("doc", "geo.cs");
  NumberText.set("text", 12345);
  NumberText.set("version", 2);
  EXPECT_EQ(errCode(C.call("petal/change", NumberText)),
            rpc::InvalidParams);

  json::Value NoVersion = json::Value::object();
  NoVersion.set("doc", "geo.cs");
  NoVersion.set("text", corpora::GeometryCorpus);
  EXPECT_EQ(errCode(C.call("petal/change", NoVersion)), rpc::InvalidParams);

  json::Value Resp = C.call("petal/complete", geoComplete("geo.cs"));
  ASSERT_EQ(errCode(Resp), 0);
  EXPECT_EQ(Resp.find("result")->getInt("version", -1), 1);
}

TEST(ServiceRobustnessTest, FailedOpenLeavesNoSessionBehind) {
  using namespace servicefuzz;
  PetalService::Options Opts;
  InProcessClient C(Opts);
  json::Value Resp = C.call(
      "petal/open", docParams("bad.cs", "this is not mini-C# at all", 1));
  EXPECT_EQ(errCode(Resp), rpc::BuildFailed);
  EXPECT_EQ(errCode(C.call("petal/complete", geoComplete("bad.cs"))),
            rpc::UnknownDocument);
  json::Value Stats = C.callResult("$/stats", json::Value::object());
  EXPECT_EQ(Stats.getInt("sessions", -1), 0);
  // A later open of the same name starts cleanly.
  EXPECT_EQ(errCode(C.call("petal/open",
                           docParams("bad.cs", corpora::GeometryCorpus, 1))),
            0);
  EXPECT_EQ(errCode(C.call("petal/complete", geoComplete("bad.cs"))), 0);
}

} // namespace
