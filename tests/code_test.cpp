//===- tests/code_test.cpp - Expression AST, printer, verifier ------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "code/ExprFactory.h"
#include "code/ExprPrinter.h"
#include "code/Verify.h"

#include <gtest/gtest.h>

using namespace petal;

namespace {

/// Small fixture: a Point struct, a Line class with Point fields, a static
/// utility, and a method body with locals.
class CodeFixture : public ::testing::Test {
protected:
  void SetUp() override {
    Ns = TS.getOrAddNamespace("Geo");
    Point = TS.addType("Point", Ns, TypeKind::Struct);
    X = TS.addField(Point, "X", TS.doubleType());
    Y = TS.addField(Point, "Y", TS.doubleType());

    Line = TS.addType("Line", Ns, TypeKind::Class);
    P1 = TS.addField(Line, "P1", Point);
    GetLength = TS.addMethod(Line, "GetLength", TS.doubleType(), {});
    Origin = TS.addField(Line, "Origin", Point, /*IsStatic=*/true);

    MathTy = TS.addType("MathUtil", Ns, TypeKind::Class);
    Dist = TS.addMethod(MathTy, "Distance", TS.doubleType(),
                        {{"a", Point}, {"b", Point}}, /*IsStatic=*/true);

    P = std::make_unique<Program>(TS);
    CodeClass &CC = P->addClass(Line);
    MethodId Decl = TS.addMethod(Line, "Demo", TS.voidType(), {{"p", Point}});
    Method = &CC.addMethod(Decl);
    Method->addLocal("p", Point, /*IsParam=*/true);

    F = std::make_unique<ExprFactory>(TS, P->arena());
  }

  TypeSystem TS;
  NamespaceId Ns;
  TypeId Point, Line, MathTy;
  FieldId X, Y, P1, Origin;
  MethodId GetLength, Dist;
  std::unique_ptr<Program> P;
  CodeMethod *Method = nullptr;
  std::unique_ptr<ExprFactory> F;
};

//===----------------------------------------------------------------------===//
// Construction and typing
//===----------------------------------------------------------------------===//

TEST_F(CodeFixture, FactoryTypesNodes) {
  const Expr *V = F->var(*Method, 0);
  EXPECT_EQ(V->type(), Point);
  const Expr *FA = F->fieldAccess(V, X);
  EXPECT_EQ(FA->type(), TS.doubleType());
  const Expr *This = F->thisRef(Line);
  const Expr *Call = F->call(GetLength, This, {});
  EXPECT_EQ(Call->type(), TS.doubleType());
  const Expr *Static = F->call(Dist, nullptr, {V, V});
  EXPECT_EQ(Static->type(), TS.doubleType());
  const Expr *Cmp = F->compare(CompareOp::Ge, FA, F->intLit(3));
  EXPECT_EQ(Cmp->type(), TS.boolType());
}

TEST_F(CodeFixture, LocalsInScopeRespectsDeclarationOrder) {
  unsigned Slot = Method->addLocal("d", TS.doubleType());
  Method->addStmt({StmtKind::LocalDecl, Slot, F->floatLit(1.0)});
  // Before the declaration statement only the parameter is visible.
  EXPECT_EQ(Method->localsInScopeAt(0).size(), 1u);
  EXPECT_EQ(Method->localsInScopeAt(1).size(), 2u);
}

//===----------------------------------------------------------------------===//
// Structural equality
//===----------------------------------------------------------------------===//

TEST_F(CodeFixture, ExprEqualsIsStructural) {
  const Expr *A = F->fieldAccess(F->var(*Method, 0), X);
  const Expr *B = F->fieldAccess(F->var(*Method, 0), X);
  const Expr *C = F->fieldAccess(F->var(*Method, 0), Y);
  EXPECT_TRUE(exprEquals(A, B));
  EXPECT_FALSE(exprEquals(A, C));

  unsigned QSlot = Method->addLocal("q", Point, /*IsParam=*/true);
  const Expr *V = F->var(*Method, 0);
  const Expr *Q = F->var(*Method, QSlot);
  const Expr *CallA = F->call(Dist, nullptr, {V, Q});
  const Expr *CallB = F->call(Dist, nullptr, {V, Q});
  const Expr *CallC = F->call(Dist, nullptr, {Q, V});
  EXPECT_TRUE(exprEquals(CallA, CallB));
  EXPECT_FALSE(exprEquals(CallA, CallC)); // argument order matters
}

TEST_F(CodeFixture, LiteralEquality) {
  EXPECT_TRUE(exprEquals(F->intLit(4), F->intLit(4)));
  EXPECT_FALSE(exprEquals(F->intLit(4), F->intLit(5)));
  EXPECT_FALSE(exprEquals(F->intLit(1), F->boolLit(true)));
  EXPECT_TRUE(exprEquals(F->stringLit("a"), F->stringLit("a")));
  EXPECT_TRUE(exprEquals(F->nullLit(), F->nullLit()));
  EXPECT_TRUE(exprEquals(F->dontCare(), F->dontCare()));
}

//===----------------------------------------------------------------------===//
// LValues and final lookup names
//===----------------------------------------------------------------------===//

TEST_F(CodeFixture, LValueClassification) {
  const Expr *V = F->var(*Method, 0);
  EXPECT_TRUE(isLValue(V));
  EXPECT_TRUE(isLValue(F->fieldAccess(V, X)));
  EXPECT_FALSE(isLValue(F->intLit(3)));
  EXPECT_FALSE(isLValue(F->call(Dist, nullptr, {V, V})));
  EXPECT_FALSE(isLValue(F->call(GetLength, F->thisRef(Line), {})));
}

TEST_F(CodeFixture, FinalLookupNames) {
  const Expr *V = F->var(*Method, 0);
  EXPECT_EQ(finalLookupName(TS, V), "p");
  EXPECT_EQ(finalLookupName(TS, F->fieldAccess(V, X)), "X");
  EXPECT_EQ(finalLookupName(TS, F->call(GetLength, F->thisRef(Line), {})),
            "GetLength");
  EXPECT_EQ(finalLookupName(TS, F->intLit(1)), "");
}

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

TEST_F(CodeFixture, PrintsPaperSyntax) {
  const Expr *V = F->var(*Method, 0);
  EXPECT_EQ(printExpr(TS, V), "p");
  EXPECT_EQ(printExpr(TS, F->fieldAccess(V, X)), "p.X");
  EXPECT_EQ(printExpr(TS, F->fieldAccess(F->typeRef(Line), Origin)),
            "Geo.Line.Origin");
  EXPECT_EQ(printExpr(TS, F->call(Dist, nullptr, {V, F->dontCare()})),
            "Geo.MathUtil.Distance(p, 0)");
  EXPECT_EQ(printExpr(TS, F->call(GetLength, F->thisRef(Line), {})),
            "this.GetLength()");
  EXPECT_EQ(printExpr(TS, F->compare(CompareOp::Ge,
                                     F->fieldAccess(V, X),
                                     F->fieldAccess(V, Y))),
            "p.X >= p.Y");
  const Expr *Target = F->fieldAccess(V, X);
  EXPECT_EQ(printExpr(TS, F->assign(Target, F->intLit(2))), "p.X = 2");
  EXPECT_EQ(printExpr(TS, F->nullLit()), "null");
  EXPECT_EQ(printExpr(TS, F->boolLit(true)), "true");
  EXPECT_EQ(printExpr(TS, F->stringLit("hi")), "\"hi\"");
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

TEST_F(CodeFixture, VerifierAcceptsFactoryBuiltExprs) {
  const Expr *V = F->var(*Method, 0);
  std::string Why;
  EXPECT_TRUE(verifyExpr(TS, F->fieldAccess(V, X), &Why)) << Why;
  EXPECT_TRUE(verifyExpr(TS, F->call(Dist, nullptr, {V, V}), &Why)) << Why;
  EXPECT_TRUE(
      verifyExpr(TS, F->call(Dist, nullptr, {V, F->dontCare()}), &Why))
      << Why;
  EXPECT_TRUE(verifyExpr(
      TS, F->compare(CompareOp::Lt, F->fieldAccess(V, X), F->intLit(1)),
      &Why))
      << Why;
}

TEST_F(CodeFixture, VerifierRejectsIllTypedExprs) {
  Arena &A = P->arena();
  const Expr *V = F->var(*Method, 0);

  // Wrong argument type: Distance(p, 3) — int is not a Point.
  const Expr *BadCall = A.create<CallExpr>(
      nullptr, Dist, std::vector<const Expr *>{V, F->intLit(3)},
      TS.doubleType());
  std::string Why;
  EXPECT_FALSE(verifyExpr(TS, BadCall, &Why));
  EXPECT_NE(Why.find("argument"), std::string::npos);

  // Instance field accessed through a type name.
  const Expr *BadAccess =
      A.create<FieldAccessExpr>(F->typeRef(Point), X, TS.doubleType());
  EXPECT_FALSE(verifyExpr(TS, BadAccess, &Why));

  // Comparison between incomparable types (Point vs Point, not flagged).
  const Expr *BadCmp =
      A.create<CompareExpr>(CompareOp::Lt, V, V, TS.boolType());
  EXPECT_FALSE(verifyExpr(TS, BadCmp, &Why));

  // Assignment into a call result.
  const Expr *Call = F->call(GetLength, F->thisRef(Line), {});
  const Expr *BadAssign = A.create<AssignExpr>(Call, F->floatLit(2.0));
  EXPECT_FALSE(verifyExpr(TS, BadAssign, &Why));

  // A bare type reference is not a value.
  EXPECT_FALSE(verifyExpr(TS, F->typeRef(Point), &Why));
}

TEST_F(CodeFixture, VerifierTreatsDontCareAsWildcard) {
  // "the final result must type-check ... treating 0 as having any type"
  // (Fig. 6).
  std::string Why;
  const Expr *V = F->var(*Method, 0);
  Arena &A = P->arena();
  const Expr *Cmp = A.create<CompareExpr>(CompareOp::Ge, F->dontCare(),
                                          F->fieldAccess(V, X),
                                          TS.boolType());
  EXPECT_TRUE(verifyExpr(TS, Cmp, &Why)) << Why;
}

} // namespace
