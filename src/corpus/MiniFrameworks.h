//===- corpus/MiniFrameworks.h - Hand-written worked-example corpora ------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written mini-frameworks mirroring the paper's worked examples:
/// the Paint.NET resize scenario (§2.1 / Fig. 2), the DynamicGeometry
/// Distance scenario (Fig. 3), and the comparison scenario (Fig. 4).
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_CORPUS_MINIFRAMEWORKS_H
#define PETAL_CORPUS_MINIFRAMEWORKS_H

namespace petal::corpora {

/// Paint.NET-like mini-framework plus a client method with `img` and
/// `size` locals (parameters), for the ?({img, size}) example.
inline const char *PaintCorpus = R"(
namespace System.Drawing {
  struct Size {
    int Width;
    int Height;
  }
}
namespace PaintDotNet {
  enum AnchorEdge { TopLeft, Top, TopRight, Left }
  struct ColorBgra {
    byte B;
    byte G;
    byte R;
    byte A;
  }
  class Document {
    int Width;
    int Height;
    void OnDeserialization(object context);
  }
  class Pair {
    static object Create(object first, object second);
  }
  class Triple {
    static object Create(object first, object second, object third);
  }
  class Quadruple {
    static object Create(object a, object b, object c, object d);
  }
}
namespace PaintDotNet.Actions {
  class CanvasSizeAction {
    static PaintDotNet.Document ResizeDocument(PaintDotNet.Document document,
                                               System.Drawing.Size newSize,
                                               PaintDotNet.AnchorEdge edge,
                                               PaintDotNet.ColorBgra background);
  }
}
class Client {
  void Work(PaintDotNet.Document img, System.Drawing.Size size) {
    return;
  }
}
)";

/// DynamicGeometry-like corpus for Distance(point, ?) (Fig. 3) and
/// point.?*m >= this.?*m (Fig. 4).
inline const char *GeometryCorpus = R"(
namespace System.Windows {
  struct Point {
    double X;
    double Y;
  }
}
namespace DynamicGeometry {
  class Math {
    static System.Windows.Point InfinitePoint;
    static double Distance(System.Windows.Point p1, System.Windows.Point p2);
  }
  class Glyph {
    System.Windows.Point RenderTransformOrigin;
  }
  class ShapeStyle {
    Glyph GetSampleGlyph();
  }
  class Shape {
    System.Windows.Point RenderTransformOrigin;
  }
  class ArcShape {
    System.Windows.Point Point;
  }
  class Figure {
    System.Windows.Point StartPoint;
  }
  class LineBase {
    System.Windows.Point P1;
    System.Windows.Point P2;
    System.Windows.Point Midpoint;
    double Length;
    System.Windows.Point FirstValidValue();
  }
  class EllipseArc : LineBase {
    System.Windows.Point BeginLocation;
    System.Windows.Point Center;
    System.Windows.Point EndLocation;
    Shape shape;
    ArcShape ArcShape;
    Figure FigureField;
    void Examine(System.Windows.Point point, ShapeStyle shapeStyle) {
      return;
    }
  }
}
)";

} // namespace petal::corpora

#endif // PETAL_CORPUS_MINIFRAMEWORKS_H
