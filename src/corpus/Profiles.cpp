//===- corpus/Profiles.cpp - Synthetic project profiles -------------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "corpus/Profiles.h"

#include <algorithm>
#include <cmath>

using namespace petal;

static int scaled(int Base, double Scale, int Min = 1) {
  return std::max(Min, static_cast<int>(std::lround(Base * Scale)));
}

std::vector<ProjectProfile> petal::paperProjectProfiles(double Scale) {
  std::vector<ProjectProfile> Profiles;

  // Paint.NET: a large GUI application, instance-heavy, deep namespaces.
  {
    ProjectProfile P;
    P.Name = "PaintNet";
    P.Seed = 0xA11CE001;
    P.NumNamespaces = 8;
    P.NumClasses = scaled(110, Scale);
    P.NumEnums = 6;
    P.NumInterfaces = 5;
    P.StaticMethodFraction = 0.25;
    P.NumClientClasses = scaled(10, Scale);
    P.MethodsPerClientClass = 6;
    Profiles.push_back(P);
  }

  // WiX: the largest project in the paper (13k calls), utility-flavoured,
  // more statics.
  {
    ProjectProfile P;
    P.Name = "Wix";
    P.Seed = 0xA11CE002;
    P.NumNamespaces = 10;
    P.NumClasses = scaled(150, Scale);
    P.NumEnums = 8;
    P.StaticMethodFraction = 0.45;
    P.NumClientClasses = scaled(20, Scale);
    P.MethodsPerClientClass = 7;
    P.StmtsPerMethod = 9;
    Profiles.push_back(P);
  }

  // GNOME Do: small application launcher.
  {
    ProjectProfile P;
    P.Name = "GnomeDo";
    P.Seed = 0xA11CE003;
    P.NumNamespaces = 4;
    P.NumClasses = scaled(70, Scale);
    P.NumEnums = 3;
    P.StaticMethodFraction = 0.3;
    P.NumClientClasses = scaled(3, Scale);
    P.MethodsPerClientClass = 4;
    P.StmtsPerMethod = 6;
    Profiles.push_back(P);
  }

  // Banshee: the smallest slice in the paper (91 calls).
  {
    ProjectProfile P;
    P.Name = "Banshee";
    P.Seed = 0xA11CE004;
    P.NumNamespaces = 3;
    P.NumClasses = scaled(36, Scale);
    P.NumEnums = 2;
    P.StaticMethodFraction = 0.3;
    P.NumClientClasses = scaled(2, Scale);
    P.MethodsPerClientClass = 4;
    P.StmtsPerMethod = 5;
    Profiles.push_back(P);
  }

  // .NET BCL slice (System.Core + mscorlib): static-heavy library code
  // with deep, regular namespaces.
  {
    ProjectProfile P;
    P.Name = "DotNet";
    P.Seed = 0xA11CE005;
    P.NumNamespaces = 12;
    P.NumClasses = scaled(130, Scale);
    P.NumEnums = 8;
    P.NumInterfaces = 8;
    P.StaticMethodFraction = 0.55;
    P.StaticFieldFraction = 0.15;
    P.NumClientClasses = scaled(9, Scale);
    P.MethodsPerClientClass = 6;
    Profiles.push_back(P);
  }

  // Family.Show: mid-size WPF sample application.
  {
    ProjectProfile P;
    P.Name = "FamilyShow";
    P.Seed = 0xA11CE006;
    P.NumNamespaces = 5;
    P.NumClasses = scaled(65, Scale);
    P.NumEnums = 4;
    P.StaticMethodFraction = 0.3;
    P.NumClientClasses = scaled(5, Scale);
    P.MethodsPerClientClass = 5;
    Profiles.push_back(P);
  }

  // LiveGeometry: geometry visualizer; comparison-heavy client code.
  {
    ProjectProfile P;
    P.Name = "LiveGeometry";
    P.Seed = 0xA11CE007;
    P.NumNamespaces = 5;
    P.NumClasses = scaled(70, Scale);
    P.NumEnums = 3;
    P.StaticMethodFraction = 0.3;
    P.NumClientClasses = scaled(7, Scale);
    P.MethodsPerClientClass = 6;
    P.CompareWeight = 0.3;
    P.AssignWeight = 0.25;
    P.CallWeight = 0.45;
    Profiles.push_back(P);
  }

  return Profiles;
}
