//===- corpus/SourceWriter.cpp - Dump a Program back to source ------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "corpus/SourceWriter.h"

#include "code/ExprPrinter.h"

#include <map>
#include <unordered_map>

using namespace petal;

namespace {

/// Streams declarations grouped by namespace, with all type references
/// fully qualified so re-parsing cannot mis-resolve them.
class Writer {
public:
  explicit Writer(const Program &P) : P(P), TS(P.typeSystem()) {
    for (const auto &CC : P.classes())
      CodeByType[CC->type()] = CC.get();
  }

  std::string run() {
    // Group user types by namespace, preserving declaration order within.
    std::map<NamespaceId, std::vector<TypeId>> ByNs;
    for (size_t T = 0; T != TS.numTypes(); ++T) {
      TypeId Id = static_cast<TypeId>(T);
      if (TS.isBuiltinType(Id))
        continue;
      ByNs[TS.type(Id).Namespace].push_back(Id);
    }
    for (const auto &[Ns, Types] : ByNs) {
      const std::string &Name = TS.nspace(Ns).FullName;
      bool Wrapped = !Name.empty();
      if (Wrapped)
        Out += "namespace " + Name + " {\n";
      for (TypeId T : Types)
        writeType(T, Wrapped ? 1 : 0);
      if (Wrapped)
        Out += "}\n";
    }
    return Out;
  }

private:
  void indent(int Level) { Out.append(static_cast<size_t>(Level) * 2, ' '); }

  /// A type reference: builtins by simple name, user types fully qualified.
  std::string typeRef(TypeId T) const {
    return TS.isBuiltinType(T) ? TS.type(T).Name : TS.qualifiedName(T);
  }

  void writeType(TypeId T, int Level) {
    const TypeInfo &TI = TS.type(T);
    indent(Level);

    if (TI.Kind == TypeKind::Enum) {
      Out += "enum " + TI.Name + " { ";
      bool First = true;
      for (FieldId F : TI.Fields) {
        if (!First)
          Out += ", ";
        First = false;
        Out += TS.field(F).Name;
      }
      Out += " }\n";
      return;
    }

    if (TI.IsComparable && TI.Kind != TypeKind::Enum)
      Out += "comparable ";
    switch (TI.Kind) {
    case TypeKind::Class:
      Out += "class ";
      break;
    case TypeKind::Interface:
      Out += "interface ";
      break;
    case TypeKind::Struct:
      Out += "struct ";
      break;
    default:
      break;
    }
    Out += TI.Name;

    // Bases: the class base (if not Object) then interfaces.
    std::vector<std::string> Bases;
    if (isValidId(TI.BaseClass) && TI.BaseClass != TS.objectType() &&
        TI.Kind != TypeKind::Interface)
      Bases.push_back(typeRef(TI.BaseClass));
    for (TypeId I : TI.Interfaces)
      Bases.push_back(typeRef(I));
    for (size_t I = 0; I != Bases.size(); ++I)
      Out += (I == 0 ? " : " : ", ") + Bases[I];

    Out += " {\n";
    for (FieldId F : TI.Fields)
      writeField(F, Level + 1);
    for (MethodId M : TI.Methods)
      writeMethod(M, Level + 1);
    indent(Level);
    Out += "}\n";
  }

  void writeField(FieldId F, int Level) {
    const FieldInfo &FI = TS.field(F);
    indent(Level);
    if (FI.IsStatic)
      Out += "static ";
    Out += typeRef(FI.Type) + " " + FI.Name;
    Out += FI.IsProperty ? " { get; set; }\n" : ";\n";
  }

  void writeMethod(MethodId M, int Level) {
    const MethodInfo &MI = TS.method(M);
    indent(Level);
    if (MI.IsStatic)
      Out += "static ";
    Out += (MI.ReturnType == TS.voidType() ? std::string("void")
                                           : typeRef(MI.ReturnType));
    Out += " " + MI.Name + "(";
    for (size_t I = 0; I != MI.Params.size(); ++I) {
      if (I)
        Out += ", ";
      Out += typeRef(MI.Params[I].Type) + " " + MI.Params[I].Name;
    }
    Out += ")";

    // Signature-only methods and empty bodies both print as declarations;
    // the resolver creates an (empty) CodeMethod for every declared method,
    // so this keeps write . parse . write a fixpoint.
    const CodeMethod *Body = findBody(M);
    if (!Body || Body->body().empty()) {
      Out += ";\n";
      return;
    }
    Out += " {\n";
    for (const Stmt &St : Body->body())
      writeStmt(St, *Body, Level + 1);
    indent(Level);
    Out += "}\n";
  }

  const CodeMethod *findBody(MethodId M) const {
    auto It = CodeByType.find(TS.method(M).Owner);
    if (It == CodeByType.end())
      return nullptr;
    for (const auto &CM : It->second->methods())
      if (CM->decl() == M)
        return CM.get();
    return nullptr;
  }

  void writeStmt(const Stmt &St, const CodeMethod &CM, int Level) {
    indent(Level);
    switch (St.Kind) {
    case StmtKind::LocalDecl: {
      const LocalVar &L = CM.locals()[St.LocalSlot];
      // Always emit a typed declaration: unambiguous to re-parse and exact
      // even when the initializer type is more specific than the local's.
      Out += typeRef(L.Type) + " " + L.Name + " = " +
             printExpr(TS, St.Value) + ";\n";
      return;
    }
    case StmtKind::ExprStmt:
      Out += printExpr(TS, St.Value) + ";\n";
      return;
    case StmtKind::Return:
      Out += St.Value ? "return " + printExpr(TS, St.Value) + ";\n"
                      : "return;\n";
      return;
    }
  }

  const Program &P;
  const TypeSystem &TS;
  std::unordered_map<TypeId, const CodeClass *> CodeByType;
  std::string Out;
};

} // namespace

std::string petal::writeProgramSource(const Program &P) {
  return Writer(P).run();
}
