//===- corpus/SourceWriter.h - Dump a Program back to source ----*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a TypeSystem/Program back into the mini-C# surface language,
/// such that re-parsing the output reproduces an equivalent model
/// (round-trip property: write . parse . write is a fixpoint; the tests
/// verify this on generated corpora). Useful for exporting synthetic
/// corpora as human-readable text and for debugging generated code.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_CORPUS_SOURCEWRITER_H
#define PETAL_CORPUS_SOURCEWRITER_H

#include "code/Code.h"
#include "model/TypeSystem.h"

#include <string>

namespace petal {

/// Renders every user-declared type of \p P's TypeSystem (grouped by
/// namespace) together with all method bodies as parseable source text.
std::string writeProgramSource(const Program &P);

} // namespace petal

#endif // PETAL_CORPUS_SOURCEWRITER_H
