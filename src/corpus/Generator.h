//===- corpus/Generator.h - Deterministic synthetic corpora -----*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates a synthetic project — a framework (namespaces, class
/// hierarchies, enums, interfaces, fields, methods) plus client code whose
/// method bodies contain calls, assignments, and comparisons — from a
/// ProjectProfile. The paper evaluated on seven mature C# codebases read
/// through the CCI decompiler; petal has no C# frontend, so these corpora
/// stand in (see DESIGN.md §2 for why the substitution preserves the
/// experiments' behaviour).
///
/// Design choices that matter for fidelity:
///  * primitive-typed field names come from a fixed concept pool (X ->
///    double, Width -> int, ...), so same-named fields have equal types
///    across classes — the signal the matching-name term exploits;
///  * call arguments are drawn from in-scope locals, field lookups of
///    locals/this, globals, and (with configurable probability) literals —
///    reproducing the argument-form distribution of Fig. 14;
///  * all draws come from a single SplitMix64 stream seeded by the profile,
///    so a given profile always produces the identical corpus.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_CORPUS_GENERATOR_H
#define PETAL_CORPUS_GENERATOR_H

#include "code/Code.h"
#include "code/ExprFactory.h"
#include "corpus/Profiles.h"
#include "support/Rng.h"

#include <string>
#include <unordered_set>
#include <vector>

namespace petal {

/// Generates one synthetic project into a Program.
class CorpusGenerator {
public:
  explicit CorpusGenerator(const ProjectProfile &Prof)
      : Prof(Prof), R(Prof.Seed) {}

  /// Extends \p P's type system with the framework and adds the client
  /// classes with method bodies. May be called once per generator.
  void generate(Program &P);

private:
  // Framework generation.
  void genNamespaces();
  void genEnums();
  void genInterfaces();
  void genClasses();
  void genMembers();

  // Client generation.
  void genClients();
  void genClientMethod(CodeClass &CC, MethodId Decl);

  /// One statement into \p CM; returns false when nothing could be
  /// synthesized (scope too poor).
  bool genStatement(CodeMethod &CM);
  bool genCallStmt(CodeMethod &CM);
  bool genAssignStmt(CodeMethod &CM);
  bool genCompareStmt(CodeMethod &CM);

  /// Synthesizes a value of a type convertible to \p T from the current
  /// scope (locals, this-fields, lookups, globals, literals); null if
  /// impossible.
  const Expr *synthValue(TypeId T, bool AllowLiteral);

  /// A literal of type \p T, or null if \p T has no literal form.
  const Expr *synthLiteral(TypeId T);

  /// Picks a field type: concept primitives, classes, enums, string.
  TypeId pickFieldType();
  TypeId pickParamType();
  TypeId pickReturnType(bool AllowVoid);

  std::string freshTypeName(const std::string &Hint);
  std::string freshMethodName(TypeId Owner);

  const ProjectProfile Prof;
  Rng R;

  TypeSystem *TS = nullptr;
  Program *Prog = nullptr;
  std::unique_ptr<ExprFactory> F;

  std::vector<NamespaceId> Namespaces; ///< root first
  std::vector<TypeId> Classes;         ///< framework classes
  std::vector<TypeId> Interfaces;
  std::vector<TypeId> Enums;
  std::vector<MethodId> FrameworkMethods;
  std::unordered_set<std::string> UsedTypeNames;

  // Per-client-method scope.
  CodeMethod *CurMethod = nullptr;
  TypeId CurSelf = InvalidId;
};

} // namespace petal

#endif // PETAL_CORPUS_GENERATOR_H
