//===- corpus/Generator.cpp - Deterministic synthetic corpora -------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "corpus/Generator.h"

#include <algorithm>
#include <cassert>

using namespace petal;

namespace {

/// Primitive "concepts": same-named fields always share a type, giving the
/// matching-name ranking term a realistic signal.
struct Concept {
  const char *Name;
  enum Prim { Int, Long, Double, Bool, Str } Ty;
};

constexpr Concept PrimConcepts[] = {
    {"X", Concept::Double},       {"Y", Concept::Double},
    {"Width", Concept::Int},      {"Height", Concept::Int},
    {"Length", Concept::Double},  {"Count", Concept::Int},
    {"Id", Concept::Int},         {"Value", Concept::Double},
    {"Timestamp", Concept::Long}, {"Weight", Concept::Double},
    {"Index", Concept::Int},      {"Depth", Concept::Int},
    {"Name", Concept::Str},       {"Title", Concept::Str},
    {"Enabled", Concept::Bool},   {"Visible", Concept::Bool},
};

constexpr const char *ClassFieldNames[] = {
    "Location", "Center",  "Origin", "Bounds", "Style",  "Source",
    "Target",   "Data",    "Item",   "Context", "Owner", "ParentNode",
    "Settings", "Handle",  "Anchor", "Content", "Result", "State",
};

constexpr const char *TypeNouns[] = {
    "Document", "Canvas",  "Layer",   "Brush",   "Image",   "Buffer",
    "Stream",   "Widget",  "Panel",   "Window",  "Shape",   "Path",
    "Matrix",   "Vector",  "Palette", "Filter",  "Effect",  "Tool",
    "Session",  "Config",  "Registry", "Command", "Event",  "Handler",
    "Queue",    "Cache",   "Index",   "Table",   "Record",  "Schema",
    "Query",    "Cursor",  "Token",   "Node",    "Tree",    "Graph",
    "Edge",     "Vertex",  "Grid",    "Cell",    "Row",     "Column",
    "Range",    "Span",    "Region",  "Zone",    "Block",   "Chunk",
    "Frame",    "Packet",  "Message", "Channel", "Socket",  "Router",
    "Agent",    "Worker",  "Job",     "Task",    "Plan",    "Step",
    "Stage",    "Unit",    "Module",  "Plugin",  "Engine",  "Driver",
    "Device",   "Sensor",  "Monitor", "Display", "Screen",  "View",
    "Scene",    "Camera",  "Light",   "Mesh",    "Texture", "Shader",
    "Sprite",   "Font",    "Glyph",   "Icon",    "Marker",  "Badge",
};

constexpr const char *MethodVerbs[] = {
    "Get",     "Create", "Compute", "Find",   "Make",   "Load",
    "Resolve", "Build",  "Update",  "Apply",  "Convert", "Measure",
    "Attach",  "Merge",  "Extract", "Render", "Scale",  "Translate",
};

constexpr const char *NamespaceSuffixes[] = {
    "Core",  "UI",      "Data",        "Utils", "Drawing", "Actions",
    "IO",    "Text",    "Collections", "Media", "Controls", "Model",
    "Forms", "Layout",  "Render",      "Net",
};

constexpr const char *EnumMemberNames[] = {
    "None", "Default", "Left", "Right", "Top",  "Bottom",
    "Auto", "Manual",  "High", "Low",   "Alpha", "Beta",
};

template <typename T, size_t N> size_t countOf(T (&)[N]) { return N; }

} // namespace

//===----------------------------------------------------------------------===//
// Framework generation
//===----------------------------------------------------------------------===//

void CorpusGenerator::generate(Program &P) {
  assert(!Prog && "generate() may be called only once");
  Prog = &P;
  TS = &P.typeSystem();
  F = std::make_unique<ExprFactory>(*TS, P.arena());

  genNamespaces();
  genEnums();
  genInterfaces();
  genClasses();
  genMembers();
  genClients();
}

void CorpusGenerator::genNamespaces() {
  Namespaces.push_back(TS->getOrAddNamespace(Prof.Name));
  for (int I = 0; I < Prof.NumNamespaces; ++I) {
    std::string Suffix = NamespaceSuffixes[I % countOf(NamespaceSuffixes)];
    std::string Full = Prof.Name + "." + Suffix;
    // A third of the namespaces gain an extra level, mirroring the deep
    // namespaces the paper's namespace term rewards.
    if (R.chance(0.33))
      Full += "." + std::string(NamespaceSuffixes[R.below(
                        countOf(NamespaceSuffixes))]);
    NamespaceId Ns = TS->getOrAddNamespace(Full);
    if (std::find(Namespaces.begin(), Namespaces.end(), Ns) ==
        Namespaces.end())
      Namespaces.push_back(Ns);
  }
}

std::string CorpusGenerator::freshTypeName(const std::string &Hint) {
  std::string Base = Hint.empty()
                         ? std::string(TypeNouns[R.below(countOf(TypeNouns))])
                         : Hint;
  std::string Name = Base;
  int Counter = 2;
  // Qualified names must be unique per namespace; the generator keeps
  // simple names unique project-wide so client code can reference them
  // unambiguously.
  while (UsedTypeNames.count(Name)) {
    if (R.chance(0.5) && Counter == 2) {
      Name = std::string(TypeNouns[R.below(countOf(TypeNouns))]) + Base;
      if (!UsedTypeNames.count(Name))
        break;
    }
    Name = Base + std::to_string(Counter++);
  }
  UsedTypeNames.insert(Name);
  return Name;
}

void CorpusGenerator::genEnums() {
  for (int I = 0; I < Prof.NumEnums; ++I) {
    NamespaceId Ns = Namespaces[R.below(Namespaces.size())];
    TypeId E = TS->addType(freshTypeName("") + "Kind", Ns, TypeKind::Enum);
    int NumMembers = static_cast<int>(R.range(3, 6));
    size_t Offset = R.below(countOf(EnumMemberNames));
    for (int M = 0; M < NumMembers; ++M)
      TS->addField(E, EnumMemberNames[(Offset + M) % countOf(EnumMemberNames)],
                   E, /*IsStatic=*/true);
    Enums.push_back(E);
  }
}

void CorpusGenerator::genInterfaces() {
  for (int I = 0; I < Prof.NumInterfaces; ++I) {
    NamespaceId Ns = Namespaces[R.below(Namespaces.size())];
    TypeId Iface =
        TS->addType("I" + freshTypeName(""), Ns, TypeKind::Interface);
    Interfaces.push_back(Iface);
  }
}

void CorpusGenerator::genClasses() {
  for (int I = 0; I < Prof.NumClasses; ++I) {
    NamespaceId Ns = Namespaces[R.below(Namespaces.size())];
    TypeId Base = InvalidId;
    if (!Classes.empty() && R.chance(Prof.DeriveFraction))
      Base = Classes[R.below(Classes.size())];
    TypeId C = TS->addType(freshTypeName(""), Ns, TypeKind::Class, Base);
    if (!Interfaces.empty() && R.chance(0.2))
      TS->addInterface(C, Interfaces[R.below(Interfaces.size())]);
    Classes.push_back(C);
  }
}

TypeId CorpusGenerator::pickFieldType() {
  double Roll = R.unit();
  if (Roll < 0.55) {
    const Concept &C = PrimConcepts[R.below(countOf(PrimConcepts))];
    switch (C.Ty) {
    case Concept::Int:
      return TS->intType();
    case Concept::Long:
      return TS->longType();
    case Concept::Double:
      return TS->doubleType();
    case Concept::Bool:
      return TS->boolType();
    case Concept::Str:
      return TS->stringType();
    }
  }
  if (Roll < 0.85 && !Classes.empty())
    return Classes[R.below(Classes.size())];
  if (!Enums.empty())
    return Enums[R.below(Enums.size())];
  return TS->intType();
}

TypeId CorpusGenerator::pickParamType() {
  double Roll = R.unit();
  // A small set of "popular" types shows up in many signatures, mirroring
  // real frameworks (Document, Size, ...). This is what makes the method
  // index buckets of common argument types large — the distractor pool the
  // ranking has to sift.
  if (Roll < 0.3 && !Classes.empty())
    return Classes[R.below(std::min<size_t>(Classes.size(), 12))];
  if (Roll < 0.5 && !Classes.empty())
    return Classes[R.below(Classes.size())];
  if (Roll < 0.68)
    return R.chance(0.5) ? TS->intType() : TS->doubleType();
  if (Roll < 0.76)
    return TS->stringType();
  if (Roll < 0.82)
    return TS->objectType(); // utility parameters accept everything
  if (Roll < 0.9 && !Enums.empty())
    return Enums[R.below(Enums.size())];
  if (!Interfaces.empty() && R.chance(0.4))
    return Interfaces[R.below(Interfaces.size())];
  return TS->boolType();
}

TypeId CorpusGenerator::pickReturnType(bool AllowVoid) {
  double Roll = R.unit();
  if (AllowVoid && Roll < 0.25)
    return TS->voidType();
  if (Roll < 0.65 && !Classes.empty())
    return Classes[R.below(Classes.size())];
  if (Roll < 0.85)
    return R.chance(0.5) ? TS->intType() : TS->doubleType();
  if (Roll < 0.92)
    return TS->stringType();
  return TS->boolType();
}

std::string CorpusGenerator::freshMethodName(TypeId Owner) {
  // Method names may repeat across types (realistic: resolution by simple
  // name finds several candidates) but stay unique within one type.
  for (int Attempt = 0; Attempt != 32; ++Attempt) {
    std::string Name =
        std::string(MethodVerbs[R.below(countOf(MethodVerbs))]) +
        TypeNouns[R.below(countOf(TypeNouns))];
    bool Clash = false;
    for (MethodId M : TS->type(Owner).Methods)
      Clash |= TS->method(M).Name == Name;
    if (!Clash)
      return Name;
  }
  return "Member" + std::to_string(TS->numMethods());
}

void CorpusGenerator::genMembers() {
  for (TypeId C : Classes) {
    // Fields/properties.
    int NumFields = static_cast<int>(
        R.range(std::max(1, Prof.FieldsPerClass - 2), Prof.FieldsPerClass + 2));
    for (int I = 0; I < NumFields; ++I) {
      TypeId FT = pickFieldType();
      std::string Name;
      if (TS->isPrimitiveLike(FT) && TS->type(FT).Kind != TypeKind::Enum) {
        // Pick a concept whose type matches FT so names stay consistent.
        std::vector<const Concept *> Matching;
        for (const Concept &Con : PrimConcepts) {
          TypeId CT = TS->intType();
          switch (Con.Ty) {
          case Concept::Int:
            CT = TS->intType();
            break;
          case Concept::Long:
            CT = TS->longType();
            break;
          case Concept::Double:
            CT = TS->doubleType();
            break;
          case Concept::Bool:
            CT = TS->boolType();
            break;
          case Concept::Str:
            CT = TS->stringType();
            break;
          }
          if (CT == FT)
            Matching.push_back(&Con);
        }
        if (!Matching.empty())
          Name = Matching[R.below(Matching.size())]->Name;
      }
      if (Name.empty())
        Name = ClassFieldNames[R.below(countOf(ClassFieldNames))];
      if (isValidId(TS->findDeclaredField(C, Name)))
        continue; // skip duplicates rather than rename
      bool IsStatic = R.chance(Prof.StaticFieldFraction);
      bool IsProperty = R.chance(0.4);
      TS->addField(C, Name, FT, IsStatic, IsProperty);
    }

    // Methods.
    int NumMethods = static_cast<int>(R.range(
        std::max(1, Prof.MethodsPerClass - 2), Prof.MethodsPerClass + 2));
    for (int I = 0; I < NumMethods; ++I) {
      bool IsStatic = R.chance(Prof.StaticMethodFraction);
      TypeId Ret = pickReturnType(/*AllowVoid=*/true);
      int NumParams;
      double Roll = R.unit();
      if (Roll < 0.15)
        NumParams = 0;
      else if (Roll < 0.5)
        NumParams = 1;
      else if (Roll < 0.8)
        NumParams = 2;
      else if (Roll < 0.95)
        NumParams = std::min(3, Prof.MaxParams);
      else
        NumParams = Prof.MaxParams;
      // Static nullary void methods are useless in this model; give them a
      // parameter or a result.
      if (IsStatic && NumParams == 0 && Ret == TS->voidType())
        Ret = pickReturnType(/*AllowVoid=*/false);
      std::vector<ParamInfo> Params;
      for (int PI = 0; PI < NumParams; ++PI)
        Params.push_back({"p" + std::to_string(PI), pickParamType()});
      FrameworkMethods.push_back(TS->addMethod(
          C, freshMethodName(C), Ret, std::move(Params), IsStatic));
    }

    // Guarantee a zero-argument getter so `.?m` chains have method edges.
    if (R.chance(0.6)) {
      TypeId Ret = pickReturnType(/*AllowVoid=*/false);
      FrameworkMethods.push_back(
          TS->addMethod(C, freshMethodName(C), Ret, {}, /*IsStatic=*/false));
    }

    // Object-typed utility methods (Pair.Create, ReferenceEquals, ...):
    // they accept *any* argument, so every unknown-call query has to rank
    // past them — the paper's Fig. 2 distractors.
    if (R.chance(0.3))
      FrameworkMethods.push_back(TS->addMethod(
          C, freshMethodName(C), TS->objectType(),
          {{"first", TS->objectType()}, {"second", TS->objectType()}},
          /*IsStatic=*/true));
    if (R.chance(0.2))
      FrameworkMethods.push_back(TS->addMethod(
          C, freshMethodName(C), TS->boolType(),
          {{"value", TS->objectType()}}, /*IsStatic=*/true));
  }

  // A couple of method signatures per interface.
  for (TypeId I : Interfaces) {
    int N = static_cast<int>(R.range(1, 2));
    for (int M = 0; M < N; ++M)
      FrameworkMethods.push_back(TS->addMethod(
          I, freshMethodName(I), pickReturnType(/*AllowVoid=*/false),
          {{"value", pickParamType()}}, /*IsStatic=*/false));
  }
}

//===----------------------------------------------------------------------===//
// Client generation
//===----------------------------------------------------------------------===//

void CorpusGenerator::genClients() {
  NamespaceId RootNs = Namespaces[0];
  for (int I = 0; I < Prof.NumClientClasses; ++I) {
    TypeId CT = TS->addType(Prof.Name + "Client" + std::to_string(I), RootNs,
                            TypeKind::Class);
    // Client fields give `this.field` argument forms.
    int NumFields = static_cast<int>(R.range(2, 4));
    for (int FI = 0; FI < NumFields; ++FI) {
      if (Classes.empty())
        break;
      TypeId FT = Classes[R.below(Classes.size())];
      std::string Name = "m" +
                         std::string(ClassFieldNames[R.below(
                             countOf(ClassFieldNames))]);
      if (!isValidId(TS->findDeclaredField(CT, Name)))
        TS->addField(CT, Name, FT);
    }

    CodeClass &CC = Prog->addClass(CT);
    int NumMethods = Prof.MethodsPerClientClass;
    for (int MI = 0; MI < NumMethods; ++MI) {
      // Client methods are void and instance; their parameters seed the
      // scope with framework values.
      std::vector<ParamInfo> Params;
      int NumParams = static_cast<int>(R.range(1, 3));
      for (int PI = 0; PI < NumParams; ++PI) {
        TypeId PT = Classes.empty() ? TS->intType()
                                    : Classes[R.below(Classes.size())];
        Params.push_back({"arg" + std::to_string(PI), PT});
      }
      if (R.chance(0.4))
        Params.push_back({"count", TS->intType()});
      MethodId Decl = TS->addMethod(CT, "Run" + std::to_string(MI),
                                    TS->voidType(), Params, false);
      genClientMethod(CC, Decl);
    }
  }
}

void CorpusGenerator::genClientMethod(CodeClass &CC, MethodId Decl) {
  CodeMethod &CM = CC.addMethod(Decl);
  CurMethod = &CM;
  CurSelf = CC.type();
  for (const ParamInfo &PI : TS->method(Decl).Params)
    CM.addLocal(PI.Name, PI.Type, /*IsParam=*/true);

  int NumStmts = static_cast<int>(
      R.range(std::max(2, Prof.StmtsPerMethod - 3), Prof.StmtsPerMethod + 3));
  int Failures = 0;
  for (int S = 0; S < NumStmts && Failures < 12; ++S)
    if (!genStatement(CM)) {
      ++Failures;
      --S;
    }
  CurMethod = nullptr;
  CurSelf = InvalidId;
}

bool CorpusGenerator::genStatement(CodeMethod &CM) {
  size_t Kind = R.weighted(
      {Prof.CallWeight, Prof.AssignWeight, Prof.CompareWeight});
  switch (Kind) {
  case 0:
    return genCallStmt(CM);
  case 1:
    return genAssignStmt(CM);
  default:
    return genCompareStmt(CM);
  }
}

bool CorpusGenerator::genCallStmt(CodeMethod &CM) {
  if (FrameworkMethods.empty())
    return false;
  for (int Attempt = 0; Attempt != 24; ++Attempt) {
    MethodId M = FrameworkMethods[R.below(FrameworkMethods.size())];
    const MethodInfo &MI = TS->method(M);

    const Expr *Receiver = nullptr;
    if (!MI.IsStatic) {
      Receiver = synthValue(MI.Owner, /*AllowLiteral=*/false);
      if (!Receiver)
        continue;
    }
    std::vector<const Expr *> Args;
    bool Ok = true;
    for (const ParamInfo &PI : MI.Params) {
      // A fixed fraction of arguments are constants — the "not guessable"
      // forms of Fig. 14.
      const Expr *Arg = nullptr;
      if (R.chance(Prof.LiteralArgChance))
        Arg = synthLiteral(PI.Type);
      if (!Arg)
        Arg = synthValue(PI.Type, /*AllowLiteral=*/false);
      if (!Arg) {
        Ok = false;
        break;
      }
      Args.push_back(Arg);
    }
    if (!Ok)
      continue;

    const Expr *Call = F->call(M, Receiver, Args);
    if (MI.ReturnType != TS->voidType() && R.chance(0.45)) {
      // Bind the result so later statements can use it.
      unsigned Slot = CM.addLocal("v" + std::to_string(CM.locals().size()),
                                  MI.ReturnType, /*IsParam=*/false);
      CM.addStmt({StmtKind::LocalDecl, Slot, Call});
    } else {
      CM.addStmt({StmtKind::ExprStmt, 0, Call});
    }
    return true;
  }
  return false;
}

bool CorpusGenerator::genAssignStmt(CodeMethod &CM) {
  for (int Attempt = 0; Attempt != 24; ++Attempt) {
    // Target: an instance-field lookup (one or two levels) on an in-scope
    // value — assignments whose sides end in field lookups drive Fig. 15.
    const Expr *Base = synthValue(TS->objectType(), /*AllowLiteral=*/false);
    if (!Base || !isValidId(Base->type()))
      continue;
    std::vector<FieldId> Fields;
    for (FieldId FI : TS->visibleFields(Base->type()))
      if (!TS->field(FI).IsStatic)
        Fields.push_back(FI);
    if (Fields.empty())
      continue;
    FieldId Target = Fields[R.below(Fields.size())];
    const Expr *Lhs = F->fieldAccess(Base, Target);

    const Expr *Rhs = nullptr;
    if (R.chance(Prof.LiteralArgChance))
      Rhs = synthLiteral(TS->field(Target).Type);
    if (!Rhs)
      Rhs = synthValue(TS->field(Target).Type, /*AllowLiteral=*/false);
    if (!Rhs)
      continue;
    CM.addStmt({StmtKind::ExprStmt, 0, F->assign(Lhs, Rhs)});
    return true;
  }
  return false;
}

bool CorpusGenerator::genCompareStmt(CodeMethod &CM) {
  // Build a numeric field chain: value.field with a numeric concept type.
  auto SynthNumericChain = [&](const std::string &PreferName) -> const Expr * {
    for (int Attempt = 0; Attempt != 16; ++Attempt) {
      const Expr *Base = synthValue(TS->objectType(), /*AllowLiteral=*/false);
      if (!Base || !isValidId(Base->type()))
        continue;
      std::vector<FieldId> Numeric;
      for (FieldId FI : TS->visibleFields(Base->type())) {
        const FieldInfo &Info = TS->field(FI);
        if (Info.IsStatic || !TS->isNumeric(Info.Type))
          continue;
        if (!PreferName.empty() && Info.Name != PreferName)
          continue;
        Numeric.push_back(FI);
      }
      if (Numeric.empty())
        continue;
      return F->fieldAccess(Base, Numeric[R.below(Numeric.size())]);
    }
    return nullptr;
  };

  const Expr *Lhs = SynthNumericChain("");
  if (!Lhs)
    return false;
  std::string LhsName =
      TS->field(cast<FieldAccessExpr>(Lhs)->field()).Name;

  const Expr *Rhs = nullptr;
  if (R.chance(Prof.MatchingNameChance))
    Rhs = SynthNumericChain(LhsName);
  if (!Rhs && R.chance(0.25)) {
    // Comparison against a constant (the paper notes these are common and
    // immune to the matching-name feature).
    Rhs = F->intLit(R.range(0, 100));
  }
  if (!Rhs)
    Rhs = SynthNumericChain("");
  if (!Rhs)
    return false;

  static constexpr CompareOp Ops[] = {CompareOp::Lt, CompareOp::Le,
                                      CompareOp::Gt, CompareOp::Ge,
                                      CompareOp::Eq};
  CompareOp Op = Ops[R.below(5)];
  CM.addStmt({StmtKind::ExprStmt, 0, F->compare(Op, Lhs, Rhs)});
  return true;
}

//===----------------------------------------------------------------------===//
// Value synthesis
//===----------------------------------------------------------------------===//

const Expr *CorpusGenerator::synthLiteral(TypeId T) {
  if (T == TS->objectType())
    return F->nullLit();
  if (T == TS->intType() || T == TS->longType())
    return F->intLit(R.range(0, 512));
  if (T == TS->doubleType() || T == TS->floatType())
    return F->intLit(R.range(0, 64)); // int converts up the widening chain
  if (T == TS->boolType())
    return F->boolLit(R.chance(0.5));
  if (T == TS->stringType())
    return F->stringLit("s" + std::to_string(R.below(100)));
  return nullptr;
}

const Expr *CorpusGenerator::synthValue(TypeId T, bool AllowLiteral) {
  assert(CurMethod && "value synthesis requires an open client method");

  // Collect candidates per argument-form category, then draw the category
  // first (with Fig. 14-like weights) and a member uniformly within it;
  // otherwise option-rich categories (globals, field lookups) would drown
  // out locals regardless of weights.
  std::vector<const Expr *> Locals, Lookups, Deep, Globals;

  std::vector<unsigned> Scope =
      CurMethod->localsInScopeAt(CurMethod->body().size());
  for (unsigned Slot : Scope) {
    TypeId LT = CurMethod->locals()[Slot].Type;
    if (TS->implicitlyConvertible(LT, T))
      Locals.push_back(F->var(*CurMethod, Slot));
  }

  auto AddFieldLookups = [&](const Expr *Base, std::vector<const Expr *> &Out) {
    if (!isValidId(Base->type()))
      return;
    for (FieldId FI : TS->visibleFields(Base->type())) {
      const FieldInfo &Info = TS->field(FI);
      if (Info.IsStatic || !TS->implicitlyConvertible(Info.Type, T))
        continue;
      Out.push_back(F->fieldAccess(Base, FI));
    }
  };
  for (unsigned Slot : Scope)
    AddFieldLookups(F->var(*CurMethod, Slot), Lookups);
  if (isValidId(CurSelf))
    AddFieldLookups(F->thisRef(CurSelf), Lookups);

  // Two-lookup chains through one class-typed field of one local.
  if (!Scope.empty()) {
    unsigned Slot = Scope[R.below(Scope.size())];
    const Expr *Base = F->var(*CurMethod, Slot);
    for (FieldId FI : TS->visibleFields(Base->type())) {
      const FieldInfo &Info = TS->field(FI);
      if (Info.IsStatic || TS->isPrimitiveLike(Info.Type))
        continue;
      AddFieldLookups(F->fieldAccess(Base, FI), Deep);
    }
  }

  for (size_t FI = 0; FI != TS->numFields(); ++FI) {
    const FieldInfo &Info = TS->field(static_cast<FieldId>(FI));
    if (!Info.IsStatic || !TS->implicitlyConvertible(Info.Type, T))
      continue;
    Globals.push_back(
        F->fieldAccess(F->typeRef(Info.Owner), static_cast<FieldId>(FI)));
  }

  const Expr *Literal = AllowLiteral ? synthLiteral(T) : nullptr;

  std::vector<double> Weights = {
      Locals.empty() ? 0.0 : 0.55, Lookups.empty() ? 0.0 : 0.24,
      Deep.empty() ? 0.0 : 0.05,   Globals.empty() ? 0.0 : 0.08,
      Literal ? 0.08 : 0.0,
  };
  double Total = 0;
  for (double W : Weights)
    Total += W;
  if (Total <= 0)
    return nullptr;
  switch (R.weighted(Weights)) {
  case 0:
    return Locals[R.below(Locals.size())];
  case 1:
    return Lookups[R.below(Lookups.size())];
  case 2:
    return Deep[R.below(Deep.size())];
  case 3:
    return Globals[R.below(Globals.size())];
  default:
    return Literal;
  }
}
