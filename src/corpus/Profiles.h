//===- corpus/Profiles.h - Synthetic project profiles -----------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameters of the synthetic projects that stand in for the paper's seven
/// C# codebases (Table 1): Paint.NET, WiX, GNOME Do, Banshee, the .NET BCL
/// slice, Family.Show, and LiveGeometry. Sizes are scaled down from the
/// paper's (21,176 calls total) to keep the benchmark harness fast; the
/// *relative* sizes and the instance/static mixes mirror the originals.
/// See EXPERIMENTS.md for the scaling discussion.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_CORPUS_PROFILES_H
#define PETAL_CORPUS_PROFILES_H

#include <cstdint>
#include <string>
#include <vector>

namespace petal {

/// Knobs of one synthetic project.
struct ProjectProfile {
  std::string Name;       ///< project name (also the root namespace)
  uint64_t Seed = 1;      ///< RNG seed; everything is deterministic

  // Framework shape.
  int NumNamespaces = 6;       ///< sub-namespaces under the root
  int NumClasses = 60;         ///< framework classes
  int NumInterfaces = 4;
  int NumEnums = 5;
  double DeriveFraction = 0.35;  ///< classes deriving from an earlier class
  int FieldsPerClass = 6;        ///< mean declared fields/properties
  int MethodsPerClass = 6;       ///< mean declared methods
  double StaticMethodFraction = 0.3;
  double StaticFieldFraction = 0.1;
  int MaxParams = 4;

  // Client code shape (the code whose expressions the evaluation strips).
  int NumClientClasses = 8;
  int MethodsPerClientClass = 6;
  int StmtsPerMethod = 8;        ///< mean statements per client method
  double CallWeight = 0.55;      ///< mix of generated statement kinds
  double AssignWeight = 0.25;
  double CompareWeight = 0.20;
  double LiteralArgChance = 0.28;   ///< "not guessable" argument fraction
  double MatchingNameChance = 0.6;  ///< comparisons with same-named fields
};

/// The seven paper projects at the given scale factor (1.0 = the default
/// bench size; Table 2's ablation uses a smaller scale).
std::vector<ProjectProfile> paperProjectProfiles(double Scale = 1.0);

} // namespace petal

#endif // PETAL_CORPUS_PROFILES_H
