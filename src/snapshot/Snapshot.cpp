//===- snapshot/Snapshot.cpp - Persistent frozen-index store --------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "snapshot/Snapshot.h"

#include "support/Checksum.h"
#include "support/FaultInjector.h"

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace petal;
using namespace petal::snapshot;

static_assert(sizeof(MethodId) == 4 && sizeof(TypeId) == 4,
              "snapshot CSR payloads assume 32-bit ids");
static_assert(sizeof(int16_t) == 2, "sanity");

const char *snapshot::sectionKindName(uint32_t Kind) {
  switch (Kind) {
  case SecSourceText:
    return "sourceText";
  case SecTypeDist:
    return "typeDist";
  case SecReachDistF:
    return "reachDistFields";
  case SecReachDistM:
    return "reachDistMethods";
  case SecReachConvF:
    return "reachConvFields";
  case SecReachConvM:
    return "reachConvMethods";
  case SecMemberOffsets:
    return "memberOffsets";
  case SecMemberEdges:
    return "memberEdges";
  case SecMemberFieldCounts:
    return "memberFieldCounts";
  case SecUnionOffsets:
    return "unionOffsets";
  case SecUnionData:
    return "unionData";
  case SecSolution:
    return "solution";
  default:
    return "unknown";
  }
}

static uint32_t headerCrc(const Header &Hdr,
                          const std::vector<SectionEntry> &Table) {
  Header Tmp = Hdr;
  Tmp.HeaderCrc = 0;
  Tmp.Pad = 0;
  uint32_t C = crc32(&Tmp, sizeof(Tmp));
  return crc32(Table.data(), Table.size() * sizeof(SectionEntry), C);
}

static size_t alignTo8(size_t N) { return (N + 7) & ~size_t(7); }

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

bool snapshot::writeSnapshot(const std::string &Path,
                             const std::string &SourceText,
                             const DocumentShape &Shape,
                             const CompletionIndexes &Idx,
                             const AbsTypeSolution &Solution,
                             std::string &Error) {
  const TypeSystem &TS = Idx.typeSystem();
  if (!Idx.frozen() || !TS.denseDistancesFrozen() || !Idx.Members.frozen() ||
      !Idx.Methods.frozen() || !Idx.Reach.frozen()) {
    Error = "snapshot: corpus is not fully frozen (dense tables missing); "
            "freeze() with a sufficient MaxDenseBytes budget first";
    return false;
  }
  if (Solution.parents().size() != Idx.Infer.numVars()) {
    Error = "snapshot: solution variable count does not match the corpus";
    return false;
  }

  size_t N = TS.numTypes();

  // Member edges are structs with padding holes; rebuild each through a
  // zeroed temporary so the file bytes are a pure function of the corpus
  // (byte-identical snapshots for identical sources).
  Span<const LookupEdge> Edges = Idx.Members.frozenEdges();
  std::vector<LookupEdge> CleanEdges(Edges.size());
  for (size_t I = 0; I != Edges.size(); ++I) {
    LookupEdge Tmp;
    std::memset(&Tmp, 0, sizeof(Tmp));
    Tmp.IsField = Edges[I].IsField;
    Tmp.Field = Edges[I].Field;
    Tmp.Method = Edges[I].Method;
    Tmp.ResultType = Edges[I].ResultType;
    CleanEdges[I] = Tmp;
  }

  // FieldCounts are size_t in memory; the file stores u64 so the format is
  // identical across 32/64-bit builds.
  Span<const size_t> FC = Idx.Members.frozenFieldCounts();
  std::vector<uint64_t> FieldCounts64(FC.begin(), FC.end());

  Span<const int16_t> TypeDist = TS.denseDistanceTable();
  Span<const int16_t> RDistF = Idx.Reach.denseDistTable(false);
  Span<const int16_t> RDistM = Idx.Reach.denseDistTable(true);
  Span<const int16_t> RConvF = Idx.Reach.denseConvTable(false);
  Span<const int16_t> RConvM = Idx.Reach.denseConvTable(true);
  Span<const uint32_t> MemberOffs = Idx.Members.frozenOffsets();
  Span<const uint32_t> UnionOffs = Idx.Methods.frozenUnionOffsets();
  Span<const MethodId> UnionData = Idx.Methods.frozenUnionData();
  Span<const uint32_t> Parents = Solution.parents();

  struct Payload {
    uint32_t Kind;
    const void *Data;
    size_t Size;
  };
  const Payload Payloads[] = {
      {SecSourceText, SourceText.data(), SourceText.size()},
      {SecTypeDist, TypeDist.data(), TypeDist.size() * sizeof(int16_t)},
      {SecReachDistF, RDistF.data(), RDistF.size() * sizeof(int16_t)},
      {SecReachDistM, RDistM.data(), RDistM.size() * sizeof(int16_t)},
      {SecReachConvF, RConvF.data(), RConvF.size() * sizeof(int16_t)},
      {SecReachConvM, RConvM.data(), RConvM.size() * sizeof(int16_t)},
      {SecMemberOffsets, MemberOffs.data(),
       MemberOffs.size() * sizeof(uint32_t)},
      {SecMemberEdges, CleanEdges.data(),
       CleanEdges.size() * sizeof(LookupEdge)},
      {SecMemberFieldCounts, FieldCounts64.data(),
       FieldCounts64.size() * sizeof(uint64_t)},
      {SecUnionOffsets, UnionOffs.data(),
       UnionOffs.size() * sizeof(uint32_t)},
      {SecUnionData, UnionData.data(), UnionData.size() * sizeof(MethodId)},
      {SecSolution, Parents.data(), Parents.size() * sizeof(uint32_t)},
  };
  constexpr size_t NumSecs = sizeof(Payloads) / sizeof(Payloads[0]);

  Header Hdr = {};
  std::memcpy(Hdr.Mag, Magic, sizeof(Magic));
  Hdr.Version = FormatVersion;
  Hdr.Endian = EndianTag;
  Hdr.LookupEdgeSize = static_cast<uint32_t>(sizeof(LookupEdge));
  Hdr.NumSections = static_cast<uint32_t>(NumSecs);
  Hdr.TypeGraphHash = Shape.TypeGraphHash;
  Hdr.CodeHash = Shape.CodeHash;
  Hdr.NumTypes = N;
  Hdr.NumFields = TS.numFields();
  Hdr.NumMethods = TS.numMethods();
  Hdr.NumNamespaces = TS.numNamespaces();
  Hdr.NumAbsVars = Parents.size();

  std::vector<SectionEntry> Table(NumSecs);
  size_t Offset = alignTo8(sizeof(Header) + NumSecs * sizeof(SectionEntry));
  for (size_t I = 0; I != NumSecs; ++I) {
    Table[I].Kind = Payloads[I].Kind;
    Table[I].Crc = crc32(Payloads[I].Data, Payloads[I].Size);
    Table[I].Offset = Offset;
    Table[I].Size = Payloads[I].Size;
    Offset = alignTo8(Offset + Payloads[I].Size);
  }
  Hdr.HeaderCrc = headerCrc(Hdr, Table);

  // Assemble the whole image in memory (zero-filled, so alignment padding
  // is deterministic), then write it in one go.
  std::vector<char> Image(Offset, 0);
  std::memcpy(Image.data(), &Hdr, sizeof(Hdr));
  std::memcpy(Image.data() + sizeof(Hdr), Table.data(),
              NumSecs * sizeof(SectionEntry));
  for (size_t I = 0; I != NumSecs; ++I)
    std::memcpy(Image.data() + Table[I].Offset, Payloads[I].Data,
                Payloads[I].Size);

  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  if (!OS) {
    Error = "snapshot: cannot open '" + Path + "' for writing";
    return false;
  }
  OS.write(Image.data(), static_cast<std::streamsize>(Image.size()));
  OS.flush();
  if (!OS) {
    Error = "snapshot: write to '" + Path + "' failed";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Validation shared by the loader and readSnapshotInfo
//===----------------------------------------------------------------------===//

/// Validates everything that can be checked without reconstituting the
/// corpus: header fields, header checksum, section bounds/alignment, and
/// every section checksum. On success \p Hdr and \p Table are filled.
static bool validateImage(const char *Data, size_t Size, Header &Hdr,
                          std::vector<SectionEntry> &Table,
                          std::string &Error) {
  if (Size < sizeof(Header)) {
    Error = "snapshot: truncated file (smaller than the header)";
    return false;
  }
  std::memcpy(&Hdr, Data, sizeof(Hdr));
  if (std::memcmp(Hdr.Mag, Magic, sizeof(Magic)) != 0) {
    Error = "snapshot: bad magic (not a snapshot file)";
    return false;
  }
  if (Hdr.Version != FormatVersion) {
    Error = "snapshot: format version mismatch (file has " +
            std::to_string(Hdr.Version) + ", this build reads " +
            std::to_string(FormatVersion) + ")";
    return false;
  }
  if (Hdr.Endian != EndianTag) {
    Error = "snapshot: endianness mismatch";
    return false;
  }
  if (Hdr.LookupEdgeSize != sizeof(LookupEdge)) {
    Error = "snapshot: LookupEdge layout mismatch";
    return false;
  }
  if (Hdr.NumSections == 0 || Hdr.NumSections > 64) {
    Error = "snapshot: implausible section count";
    return false;
  }
  size_t TableBytes = Hdr.NumSections * sizeof(SectionEntry);
  if (Size < sizeof(Header) + TableBytes) {
    Error = "snapshot: truncated file (section table cut off)";
    return false;
  }
  Table.resize(Hdr.NumSections);
  std::memcpy(Table.data(), Data + sizeof(Header), TableBytes);
  if (headerCrc(Hdr, Table) != Hdr.HeaderCrc) {
    Error = "snapshot: header checksum mismatch";
    return false;
  }
  for (const SectionEntry &S : Table) {
    if (S.Offset % 8 != 0 || S.Offset > Size || Size - S.Offset < S.Size) {
      Error = std::string("snapshot: truncated or corrupt section '") +
              sectionKindName(S.Kind) + "'";
      return false;
    }
    if (crc32(Data + S.Offset, S.Size) != S.Crc) {
      Error = std::string("snapshot: checksum mismatch in section '") +
              sectionKindName(S.Kind) + "'";
      return false;
    }
  }
  return true;
}

static const SectionEntry *findSection(const std::vector<SectionEntry> &Table,
                                       uint32_t Kind) {
  for (const SectionEntry &S : Table)
    if (S.Kind == Kind)
      return &S;
  return nullptr;
}

bool snapshot::readSnapshotInfo(const std::string &Path, SnapshotInfo &Out,
                                std::string &Error) {
  auto File = MappedFile::open(Path, Error);
  if (!File)
    return false;
  if (!validateImage(File->data(), File->size(), Out.Hdr, Out.Sections,
                     Error))
    return false;
  Out.FileBytes = File->size();
  return true;
}

//===----------------------------------------------------------------------===//
// Loader
//===----------------------------------------------------------------------===//

std::shared_ptr<const LoadedSnapshot>
snapshot::loadSnapshot(const std::string &Path, std::string &Error,
                       bool ForceBufferedRead) {
  auto Start = std::chrono::steady_clock::now();

  // Fault: mmap "unavailable". Recovery is the buffered-read path the
  // loader already supports — same bytes, no mapping.
  bool Buffered = ForceBufferedRead;
  if (!Buffered && FaultInjector::armed() &&
      FaultInjector::instance().fire(Fault::SnapshotMmapFail)) {
    FaultInjector::instance().noteRecovered(Fault::SnapshotMmapFail);
    Buffered = true;
  }

  auto File = MappedFile::open(Path, Error, Buffered);
  if (!File)
    return nullptr;
  const char *Data = File->data();
  size_t Size = File->size();

  // Fault: the image appears cut in half (a partial write / partial
  // download). Validation must reject it; the caller's cold build is the
  // recovery. If the half-image somehow validated, adopting it would be a
  // correctness bug, so the injected case always rejects.
  bool Truncated = FaultInjector::armed() && Size > 1 &&
                   FaultInjector::instance().fire(Fault::SnapshotTruncate);
  if (Truncated)
    Size /= 2;

  Header Hdr;
  std::vector<SectionEntry> Table;

  // Fault: one flipped payload bit. Corrupt a local *copy* — the mapping
  // may be shared — and require the checksums to catch it; the clean
  // rejection (and the caller's cold build) is the recovery. The copy is
  // never adopted: even if the flip landed in slack the CRCs don't cover,
  // handing out corrupt-capable state would defeat the exercise.
  if (!Truncated && FaultInjector::armed() && Size > 0 &&
      FaultInjector::instance().fire(Fault::SnapshotCrcFlip)) {
    std::string Corrupt(Data, Size);
    Corrupt[Size / 2] = static_cast<char>(Corrupt[Size / 2] ^ 0x40);
    if (validateImage(Corrupt.data(), Size, Hdr, Table, Error))
      Error = "snapshot: injected bit flip landed outside checksummed "
              "payload";
    FaultInjector::instance().noteRecovered(Fault::SnapshotCrcFlip);
    return nullptr;
  }

  bool Valid = validateImage(Data, Size, Hdr, Table, Error);
  if (Truncated) {
    if (Valid)
      Error = "snapshot: truncated image unexpectedly validated";
    FaultInjector::instance().noteRecovered(Fault::SnapshotTruncate);
    return nullptr;
  }
  if (!Valid)
    return nullptr;

  // Every kind must appear exactly once.
  const SectionEntry *Secs[13] = {};
  for (uint32_t K = SecSourceText; K <= SecSolution; ++K) {
    const SectionEntry *S = findSection(Table, K);
    if (!S) {
      Error = std::string("snapshot: missing section '") +
              sectionKindName(K) + "'";
      return nullptr;
    }
    Secs[K] = S;
  }

  auto Snap = std::make_shared<LoadedSnapshot>();
  Snap->Path = Path;
  Snap->SourceText.assign(Data + Secs[SecSourceText]->Offset,
                          Secs[SecSourceText]->Size);

  // Re-parse and re-resolve the embedded source. Id assignment is
  // deterministic, so the resulting TypeSystem matches the serialized
  // tables cell for cell — which the shape hashes and entity counts below
  // double-check before anything is adopted.
  DiagnosticEngine Diags;
  SynFile SF;
  if (!parseSourceFile(Snap->SourceText, SF, Diags)) {
    Error = "snapshot: embedded source failed to parse";
    return nullptr;
  }
  Snap->Shape = shapeOfFile(SF);
  if (Snap->Shape.TypeGraphHash != Hdr.TypeGraphHash ||
      Snap->Shape.CodeHash != Hdr.CodeHash) {
    Error = "snapshot: stale — embedded corpus hashes do not match the "
            "header";
    return nullptr;
  }

  Snap->TS = std::make_shared<TypeSystem>();
  Snap->P = std::make_shared<Program>(*Snap->TS);
  if (!resolveParsedFile(SF, *Snap->P, Diags)) {
    Error = "snapshot: embedded source failed to resolve";
    return nullptr;
  }

  size_t N = Snap->TS->numTypes();
  if (N != Hdr.NumTypes || Snap->TS->numFields() != Hdr.NumFields ||
      Snap->TS->numMethods() != Hdr.NumMethods ||
      Snap->TS->numNamespaces() != Hdr.NumNamespaces) {
    Error = "snapshot: stale — entity counts do not match the header";
    return nullptr;
  }

  // Shape-check every table against the resolved corpus before adoption.
  size_t MatrixBytes = N * N * sizeof(int16_t);
  for (uint32_t K :
       {SecTypeDist, SecReachDistF, SecReachDistM, SecReachConvF,
        SecReachConvM})
    if (Secs[K]->Size != MatrixBytes) {
      Error = std::string("snapshot: section '") + sectionKindName(K) +
              "' has the wrong size for this corpus";
      return nullptr;
    }
  if (Secs[SecMemberOffsets]->Size != (N + 1) * sizeof(uint32_t) ||
      Secs[SecUnionOffsets]->Size != (N + 1) * sizeof(uint32_t) ||
      Secs[SecMemberFieldCounts]->Size != N * sizeof(uint64_t)) {
    Error = "snapshot: CSR offset sections have the wrong size for this "
            "corpus";
    return nullptr;
  }

  const auto *MemberOffs = reinterpret_cast<const uint32_t *>(
      Data + Secs[SecMemberOffsets]->Offset);
  const auto *UnionOffs = reinterpret_cast<const uint32_t *>(
      Data + Secs[SecUnionOffsets]->Offset);
  auto monotone = [N](const uint32_t *Offs) {
    for (size_t I = 0; I != N; ++I)
      if (Offs[I] > Offs[I + 1])
        return false;
    return true;
  };
  if (MemberOffs[0] != 0 || UnionOffs[0] != 0 || !monotone(MemberOffs) ||
      !monotone(UnionOffs) ||
      Secs[SecMemberEdges]->Size !=
          size_t(MemberOffs[N]) * sizeof(LookupEdge) ||
      Secs[SecUnionData]->Size != size_t(UnionOffs[N]) * sizeof(MethodId)) {
    Error = "snapshot: CSR payload inconsistent with its offsets";
    return nullptr;
  }

  // The solution parents array: one u32 per abstract-type variable, every
  // entry in range. The variable count must match the freshly harvested
  // inference (deterministic numbering) — checked after the indexes exist.
  const auto *Parents =
      reinterpret_cast<const uint32_t *>(Data + Secs[SecSolution]->Offset);
  size_t NumVars = Secs[SecSolution]->Size / sizeof(uint32_t);
  if (Secs[SecSolution]->Size % sizeof(uint32_t) != 0 ||
      NumVars != Hdr.NumAbsVars) {
    Error = "snapshot: solution section has the wrong size";
    return nullptr;
  }
  for (size_t I = 0; I != NumVars; ++I)
    if (Parents[I] >= NumVars) {
      Error = "snapshot: corrupt solution (parent out of range)";
      return nullptr;
    }

  Snap->Idx = std::make_shared<CompletionIndexes>(*Snap->P);
  if (Snap->Idx->Infer.numVars() != NumVars) {
    Error = "snapshot: stale — abstract-type variable count does not match "
            "this corpus";
    return nullptr;
  }

  // Everything checks out: adopt the mapped tables zero-copy. Each index
  // pins the mapping; the LoadedSnapshot's own File handle is for
  // telemetry, not lifetime.
  Snap->TS->adoptDenseDistances(
      reinterpret_cast<const int16_t *>(Data + Secs[SecTypeDist]->Offset), N,
      File);
  Snap->Idx->Reach.adoptFrozen(
      reinterpret_cast<const int16_t *>(Data + Secs[SecReachDistF]->Offset),
      reinterpret_cast<const int16_t *>(Data + Secs[SecReachDistM]->Offset),
      reinterpret_cast<const int16_t *>(Data + Secs[SecReachConvF]->Offset),
      reinterpret_cast<const int16_t *>(Data + Secs[SecReachConvM]->Offset),
      N, File);
  const auto *Counts64 = reinterpret_cast<const uint64_t *>(
      Data + Secs[SecMemberFieldCounts]->Offset);
  Snap->Idx->Members.adoptFrozen(
      reinterpret_cast<const LookupEdge *>(Data +
                                           Secs[SecMemberEdges]->Offset),
      MemberOffs[N], MemberOffs, N,
      std::vector<size_t>(Counts64, Counts64 + N), File);
  Snap->Idx->Methods.adoptFrozen(
      reinterpret_cast<const MethodId *>(Data + Secs[SecUnionData]->Offset),
      UnionOffs[N], UnionOffs, N, File);
  Snap->Idx->adoptFrozenTables();

  Snap->Solution = std::make_shared<AbsTypeSolution>(
      std::vector<uint32_t>(Parents, Parents + NumVars));

  Snap->File = File;
  Snap->Bytes = File->size();
  Snap->Mapped = File->mapped();
  Snap->LoadMillis = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
  return Snap;
}

//===----------------------------------------------------------------------===//
// Base-corpus builders (base/overlay workspace, DESIGN.md §14)
//===----------------------------------------------------------------------===//

std::shared_ptr<const BaseCorpus>
petal::baseCorpusFromSource(const std::string &Source, std::string &Error,
                            const FreezeOptions &Opts) {
  auto Start = std::chrono::steady_clock::now();
  DiagnosticEngine Diags;
  SynFile File;
  if (!parseSourceFile(Source, File, Diags)) {
    std::ostringstream OS;
    Diags.print(OS);
    Error = OS.str();
    if (Error.empty())
      Error = "base corpus failed to parse";
    return nullptr;
  }

  auto Base = std::make_shared<BaseCorpus>();
  Base->SourceText = Source;
  Base->Shape = shapeOfFile(File);
  Base->TS = std::make_shared<TypeSystem>();
  Base->P = std::make_shared<Program>(*Base->TS);
  if (!resolveParsedFile(File, *Base->P, Diags)) {
    std::ostringstream OS;
    Diags.print(OS);
    Error = OS.str();
    if (Error.empty())
      Error = "base corpus failed to resolve";
    return nullptr;
  }

  Base->Idx = std::make_shared<CompletionIndexes>(*Base->P);
  Base->Idx->freeze(Opts);
  if (!Base->TS->denseDistancesFrozen() || !Base->Idx->Reach.frozen()) {
    // Overlays read the base through its dense matrices only; the lazy
    // fallbacks mutate caches that would then be shared across session
    // threads. Refuse rather than build an unshareable base.
    Error = "base corpus exceeds the dense freeze budget (" +
            std::to_string(Opts.MaxDenseBytes) +
            " bytes); raise FreezeOptions::MaxDenseBytes";
    return nullptr;
  }
  Base->Solution = std::make_shared<AbsTypeSolution>(Base->Idx->Infer.solve());
  Base->BuildMillis = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - Start)
                          .count();
  return Base;
}

std::shared_ptr<const BaseCorpus> petal::baseCorpusFromSnapshot(
    std::shared_ptr<const snapshot::LoadedSnapshot> Snap) {
  if (!Snap)
    return nullptr;
  auto Base = std::make_shared<BaseCorpus>();
  Base->SourceText = Snap->SourceText;
  Base->Shape = Snap->Shape;
  Base->TS = Snap->TS;
  Base->P = Snap->P;
  Base->Idx = Snap->Idx;
  Base->Solution = Snap->Solution;
  Base->Backing = Snap; // pins the file mapping alongside the indexes
  Base->BuildMillis = Snap->LoadMillis;
  return Base;
}
