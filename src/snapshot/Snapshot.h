//===- snapshot/Snapshot.h - Persistent frozen-index store ------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The snapshot store: a versioned, checksummed, relocatable binary image of
/// a fully frozen corpus, written once (corpus_explorer --save-snapshot,
/// petal_snapshot_tool --from) and mapped read-only by any number of petald
/// processes afterwards (petal_serve --snapshot). Loading skips everything
/// that makes a cold start expensive — the relation-cache warm-up, the O(N²)
/// dense distance matrices, the four reachability BFS matrices, the member
/// and method-union CSR compactions, and the whole-corpus abstract-type
/// solve — by adopting those tables straight out of the file mapping
/// (zero-copy; the indexes pin the mapping via shared_ptr keep-alives).
///
/// What the file does NOT contain is the AST: the Program and the
/// abstract-type constraint sets are pointer-keyed arena structures with no
/// stable serial form. The snapshot therefore embeds the corpus *source
/// text*, and the loader re-parses and re-resolves it — deterministic id
/// assignment guarantees the freshly resolved TypeSystem matches the tables
/// cell for cell, and the declaration-unit hashes stored in the header
/// (parser/DeclUnits.h) verify it. See DESIGN.md §13 for the layout and the
/// safety argument.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SNAPSHOT_SNAPSHOT_H
#define PETAL_SNAPSHOT_SNAPSHOT_H

#include "complete/BaseCorpus.h"
#include "complete/Engine.h"
#include "parser/DeclUnits.h"
#include "parser/Frontend.h"
#include "support/MappedFile.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace petal {
namespace snapshot {

/// Bumped on any incompatible layout change; a mismatch makes the loader
/// refuse (the caller falls back to a full build).
inline constexpr uint32_t FormatVersion = 1;

/// First eight bytes of every snapshot file.
inline constexpr char Magic[8] = {'P', 'E', 'T', 'A', 'L', 'S', 'N', 'P'};

/// Stored in Header::Endian; a byte-swapped value means the file was
/// written on a machine with different endianness and cannot be adopted.
inline constexpr uint32_t EndianTag = 0x01020304;

/// The fixed-size file header. Public (rather than an implementation
/// detail) so tests can perform byte surgery — flip the version, plant a
/// stale hash — and recompute the checksum per the rule below.
///
/// HeaderCrc is crc32 over the header bytes with HeaderCrc and Pad zeroed,
/// continued (incremental seed) over the section table that immediately
/// follows the header.
struct Header {
  char Mag[8];             ///< Magic
  uint32_t Version;        ///< FormatVersion
  uint32_t Endian;         ///< EndianTag
  uint32_t LookupEdgeSize; ///< sizeof(LookupEdge) of the writer
  uint32_t NumSections;
  uint64_t TypeGraphHash; ///< DocumentShape::TypeGraphHash of the corpus
  uint64_t CodeHash;      ///< DocumentShape::CodeHash of the corpus
  uint64_t NumTypes;
  uint64_t NumFields;
  uint64_t NumMethods;
  uint64_t NumNamespaces;
  uint64_t NumAbsVars; ///< abstract-type variable count of the solution
  uint32_t HeaderCrc;
  uint32_t Pad; ///< zero; keeps the header 8-byte sized
};
static_assert(sizeof(Header) == 88, "snapshot header layout drifted");

/// Section identifiers, in file order. Every section payload is 8-byte
/// aligned in the file, so mapped pointers satisfy the alignment of every
/// element type they are reinterpreted as.
enum SectionKind : uint32_t {
  SecSourceText = 1,   ///< the corpus source (bytes, not NUL-terminated)
  SecTypeDist = 2,     ///< TypeSystem dense distances, N²×int16
  SecReachDistF = 3,   ///< reachability minLookups, fields-only, N²×int16
  SecReachDistM = 4,   ///< reachability minLookups, fields+methods
  SecReachConvF = 5,   ///< minLookupsToConvertible, fields-only
  SecReachConvM = 6,   ///< minLookupsToConvertible, fields+methods
  SecMemberOffsets = 7,    ///< member CSR offsets, (N+1)×uint32
  SecMemberEdges = 8,      ///< member CSR payload, E×LookupEdge
  SecMemberFieldCounts = 9, ///< leading-field-edge counts, N×uint64
  SecUnionOffsets = 10,    ///< method-union CSR offsets, (N+1)×uint32
  SecUnionData = 11,       ///< method-union CSR payload, U×MethodId
  SecSolution = 12,        ///< abstract-type solution parents, V×uint32
};

/// One entry of the section table (follows the header, NumSections rows).
struct SectionEntry {
  uint32_t Kind; ///< SectionKind
  uint32_t Crc;  ///< crc32 of the section payload bytes
  uint64_t Offset; ///< from file start; 8-byte aligned
  uint64_t Size;   ///< payload bytes (alignment padding not included)
};
static_assert(sizeof(SectionEntry) == 24, "section entry layout drifted");

/// Serializes a fully frozen corpus. \p Idx must be frozen with every dense
/// store populated (the default FreezeOptions guarantee this for any corpus
/// whose matrices fit the budget), \p Solution must be the full-corpus
/// solve with Idx.Infer.numVars() variables, and \p Shape must be
/// shapeOfFile() of (the parse of) \p SourceText. Returns false with a
/// description in \p Error on I/O failure or unmet preconditions.
bool writeSnapshot(const std::string &Path, const std::string &SourceText,
                   const DocumentShape &Shape, const CompletionIndexes &Idx,
                   const AbsTypeSolution &Solution, std::string &Error);

/// Everything loadSnapshot() reconstitutes: a query-ready corpus whose
/// expensive tables alias the (pinned) file mapping. Immutable; share
/// freely across threads — the indexes are frozen and the solution is
/// compressed.
struct LoadedSnapshot {
  std::string Path;
  std::string SourceText;
  DocumentShape Shape;
  std::shared_ptr<TypeSystem> TS;
  std::shared_ptr<Program> P;
  std::shared_ptr<CompletionIndexes> Idx;
  std::shared_ptr<const AbsTypeSolution> Solution;
  std::shared_ptr<const MappedFile> File; ///< pinned by the indexes too
  double LoadMillis = 0; ///< validate + parse + resolve + adopt time
  size_t Bytes = 0;      ///< file size
  bool Mapped = false;   ///< mmap'd (vs the buffered-read fallback)
};

/// Opens, validates, and reconstitutes a snapshot. Null with a reason in
/// \p Error on *any* defect — truncation, bad magic, version or endian
/// mismatch, checksum failure, or a corpus whose hashes disagree with the
/// header ("stale") — so the caller can always fall back to a full build.
/// \p ForceBufferedRead exercises the no-mmap path.
std::shared_ptr<const LoadedSnapshot>
loadSnapshot(const std::string &Path, std::string &Error,
             bool ForceBufferedRead = false);

/// Header + section table of a snapshot, validated (magic, version,
/// checksums) but without reconstituting the corpus. For tooling
/// (petal_snapshot_tool --info).
struct SnapshotInfo {
  Header Hdr;
  std::vector<SectionEntry> Sections;
  size_t FileBytes = 0;
};
bool readSnapshotInfo(const std::string &Path, SnapshotInfo &Out,
                      std::string &Error);

/// Human-readable name of a SectionKind ("sourceText", "typeDist", ...).
const char *sectionKindName(uint32_t Kind);

} // namespace snapshot

/// Parses, resolves, freezes, and solves \p Source as a base/overlay
/// workspace's shared base layer (complete/BaseCorpus.h). Fails — null with
/// a reason in \p Error — on parse/resolve errors, and also when the corpus
/// exceeds \p Opts' dense budget: overlays answer base-layer queries from
/// the base's dense matrices, and falling back to the base's lazy caches
/// would mutate shared state under concurrent readers.
std::shared_ptr<const BaseCorpus>
baseCorpusFromSource(const std::string &Source, std::string &Error,
                     const FreezeOptions &Opts = {});

/// Wraps a loaded snapshot as a base layer, zero-copy: the snapshot's
/// mapped TypeSystem, frozen tables, and deserialized solution become the
/// base's, and \p Snap is pinned for the base's lifetime. This is the
/// "a snapshot *is* the base layer" path — petald can serve any number of
/// overlay documents milliseconds after start.
std::shared_ptr<const BaseCorpus>
baseCorpusFromSnapshot(std::shared_ptr<const snapshot::LoadedSnapshot> Snap);

} // namespace petal

#endif // PETAL_SNAPSHOT_SNAPSHOT_H
