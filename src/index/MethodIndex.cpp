//===- index/MethodIndex.cpp - Param-type-keyed method index --------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "index/MethodIndex.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_set>

using namespace petal;

MethodIndex::MethodIndex(const TypeSystem &TS) : TS(TS) {
  Buckets.resize(TS.numTypes());
  All.reserve(TS.numMethods());
  for (size_t M = 0; M != TS.numMethods(); ++M) {
    MethodId Id = static_cast<MethodId>(M);
    All.push_back(Id);
    // Insert the method once per *distinct* parameter type.
    std::unordered_set<TypeId> Seen;
    size_t N = TS.numCallParams(Id);
    for (size_t I = 0; I != N; ++I) {
      TypeId T = TS.callParamType(Id, I);
      if (Seen.insert(T).second)
        Buckets[T].push_back(Id);
    }
  }
  UnionCache.resize(TS.numTypes());
  UnionCacheValid.assign(TS.numTypes(), false);
}

MethodIndex::MethodIndex(const TypeSystem &TS,
                         std::shared_ptr<const MethodIndex> BaseIdxIn)
    : TS(TS), BaseIdx(std::move(BaseIdxIn)),
      NumBaseTypes(TS.numBaseTypes()) {
  assert(BaseIdx && "overlay constructor requires a base index");
  assert(BaseIdx->frozen() && "the base index must be frozen before overlays "
                              "attach (concurrent readers)");
  // Bucket only this layer's methods; base methods stay in the shared base
  // buckets. Bucket vectors are still indexed by absolute TypeId (an
  // overlay method may well take base-typed parameters).
  size_t NumBaseMethods = TS.numBaseMethods();
  Buckets.resize(TS.numTypes());
  All.reserve(TS.numMethods() - NumBaseMethods);
  for (size_t M = NumBaseMethods; M != TS.numMethods(); ++M) {
    MethodId Id = static_cast<MethodId>(M);
    All.push_back(Id);
    std::unordered_set<TypeId> Seen;
    size_t N = TS.numCallParams(Id);
    for (size_t I = 0; I != N; ++I) {
      TypeId T = TS.callParamType(Id, I);
      if (Seen.insert(T).second)
        Buckets[T].push_back(Id);
    }
  }
  UnionCache.resize(TS.numTypes() - NumBaseTypes);
  UnionCacheValid.assign(TS.numTypes() - NumBaseTypes, false);
  AppCache.resize(NumBaseTypes);
  AppCacheValid.assign(NumBaseTypes, false);
}

void MethodIndex::warmAll() const {
  if (frozen())
    return;
  if (BaseIdx) {
    for (size_t T = 0; T != NumBaseTypes; ++T)
      overlayAppendage(static_cast<TypeId>(T));
    for (size_t T = NumBaseTypes; T != TS.numTypes(); ++T)
      overlayUnion(static_cast<TypeId>(T));
    return;
  }
  for (size_t T = 0; T != TS.numTypes(); ++T)
    candidatesForArgType(static_cast<TypeId>(T));
}

namespace {
/// Compacts per-slot vectors into CSR (Data, Offs) storage.
void compactCsr(const std::vector<std::vector<MethodId>> &Slots,
                std::vector<MethodId> &Data, std::vector<uint32_t> &Offs) {
  size_t N = Slots.size();
  Offs.assign(N + 1, 0);
  size_t Total = 0;
  for (size_t T = 0; T != N; ++T) {
    Offs[T] = static_cast<uint32_t>(Total);
    Total += Slots[T].size();
  }
  assert(Total <= UINT32_MAX && "method-union size overflows CSR offsets");
  Offs[N] = static_cast<uint32_t>(Total);
  Data.clear();
  Data.reserve(Total);
  for (size_t T = 0; T != N; ++T)
    Data.insert(Data.end(), Slots[T].begin(), Slots[T].end());
}
} // namespace

void MethodIndex::freeze() const {
  if (frozen())
    return;
  warmAll();

  if (BaseIdx)
    compactCsr(AppCache, AppData, AppOffsets);
  std::vector<uint32_t> Offs;
  compactCsr(UnionCache, UnionData, Offs);
  UnionOffsets = std::move(Offs);
  UnionV = UnionData.data();
  NumUnion = UnionData.size();
  NumTypesFrozen = UnionCache.size();
  // Publish UOffV last: frozen() keys off it, and once it is non-null
  // candidatesForArgType never touches the lazy representation.
  UOffV = UnionOffsets.data();
  UnionCache.clear();
  UnionCache.shrink_to_fit();
  UnionCacheValid.clear();
  UnionCacheValid.shrink_to_fit();
  AppCache.clear();
  AppCache.shrink_to_fit();
  AppCacheValid.clear();
  AppCacheValid.shrink_to_fit();
}

void MethodIndex::adoptFrozen(
    const MethodId *Data, size_t DataCount, const uint32_t *Offs,
    size_t NumTypes, std::shared_ptr<const void> KeepAliveHandle) const {
  assert(!frozen() && "method index already frozen");
  assert(!BaseIdx && "snapshot tables adopt into the base layer, not overlays");
  assert(NumTypes == TS.numTypes() &&
         "snapshot method unions sized for a different type population");
  UnionV = Data;
  NumUnion = DataCount;
  NumTypesFrozen = NumTypes;
  KeepAlive = std::move(KeepAliveHandle);
  UOffV = Offs;
  UnionCache.clear();
  UnionCache.shrink_to_fit();
  UnionCacheValid.clear();
  UnionCacheValid.shrink_to_fit();
}

MethodCandidates MethodIndex::exactBucket(TypeId T) const {
  if (BaseIdx)
    return MethodCandidates(BaseIdx->bucketSpan(T), bucketSpan(T));
  return MethodCandidates(bucketSpan(T));
}

Span<const MethodId> MethodIndex::unionSpan(TypeId T) const {
  assert(!BaseIdx && "unionSpan is the monolithic accessor");
  if (frozen()) {
    if (T < 0 || static_cast<size_t>(T) >= NumTypesFrozen)
      return Empty;
    uint32_t B = UOffV[T], E = UOffV[static_cast<size_t>(T) + 1];
    return Span<const MethodId>(UnionV + B, E - B);
  }

  if (T < 0 || static_cast<size_t>(T) >= Buckets.size())
    return Empty;
  if (UnionCacheValid[T])
    return UnionCache[T];

  // Walk T and all transitive supertypes (BFS), merging their exact
  // buckets. The BFS order makes results from closer types (lower type
  // distance) appear first, which matches the paper's observation that
  // "each method index visited gives progressively worse ranked results".
  std::vector<MethodId> Result;
  std::unordered_set<TypeId> Visited;
  std::unordered_set<MethodId> SeenMethods;
  std::deque<TypeId> Work;
  Work.push_back(T);
  Visited.insert(T);
  while (!Work.empty()) {
    TypeId Cur = Work.front();
    Work.pop_front();
    for (MethodId M : Buckets[Cur])
      if (SeenMethods.insert(M).second)
        Result.push_back(M);
    for (TypeId S : TS.immediateSupertypes(Cur))
      if (Visited.insert(S).second)
        Work.push_back(S);
  }
  UnionCache[T] = std::move(Result);
  UnionCacheValid[T] = true;
  return UnionCache[T];
}

Span<const MethodId> MethodIndex::overlayAppendage(TypeId T) const {
  assert(BaseIdx && static_cast<size_t>(T) < NumBaseTypes);
  if (frozen()) {
    uint32_t B = AppOffsets[T], E = AppOffsets[static_cast<size_t>(T) + 1];
    return Span<const MethodId>(AppData.data() + B, E - B);
  }
  if (AppCacheValid[T])
    return AppCache[T];

  // An overlay method joins base type T's candidates iff one of its
  // distinct call-parameter types S lies in T's supertype closure. The
  // closure of a base type is sealed inside the base layer, so only base
  // S qualify, and (for T != null) membership is exactly "td(T, S) is
  // defined". The null literal is the one base type whose dense distance
  // row (0 to every reference type) is *wider* than its closure ({null}
  // itself — null has no supertype edges), so it gets no appendage.
  std::vector<MethodId> Result;
  if (T != TS.nullType()) {
    for (MethodId M : All) {
      std::unordered_set<TypeId> Seen;
      size_t N = TS.numCallParams(M);
      for (size_t I = 0; I != N; ++I) {
        TypeId S = TS.callParamType(M, I);
        if (!Seen.insert(S).second)
          continue;
        if (static_cast<size_t>(S) < NumBaseTypes &&
            TS.typeDistance(T, S).has_value()) {
          Result.push_back(M);
          break;
        }
      }
    }
  }
  AppCache[T] = std::move(Result);
  AppCacheValid[T] = true;
  return AppCache[T];
}

Span<const MethodId> MethodIndex::overlayUnion(TypeId T) const {
  assert(BaseIdx && static_cast<size_t>(T) >= NumBaseTypes);
  size_t Slot = static_cast<size_t>(T) - NumBaseTypes;
  if (frozen()) {
    assert(Slot < NumTypesFrozen && "bad TypeId");
    uint32_t B = UOffV[Slot], E = UOffV[Slot + 1];
    return Span<const MethodId>(UnionV + B, E - B);
  }
  if (UnionCacheValid[Slot])
    return UnionCache[Slot];

  // The monolithic BFS, with each visited type's bucket being the base
  // bucket followed by the overlay bucket — which is exactly the id-order
  // bucket content a monolithic build would hold.
  std::vector<MethodId> Result;
  std::unordered_set<TypeId> Visited;
  std::unordered_set<MethodId> SeenMethods;
  std::deque<TypeId> Work;
  Work.push_back(T);
  Visited.insert(T);
  while (!Work.empty()) {
    TypeId Cur = Work.front();
    Work.pop_front();
    for (MethodId M : BaseIdx->bucketSpan(Cur))
      if (SeenMethods.insert(M).second)
        Result.push_back(M);
    for (MethodId M : bucketSpan(Cur))
      if (SeenMethods.insert(M).second)
        Result.push_back(M);
    for (TypeId S : TS.immediateSupertypes(Cur))
      if (Visited.insert(S).second)
        Work.push_back(S);
  }
  UnionCache[Slot] = std::move(Result);
  UnionCacheValid[Slot] = true;
  return UnionCache[Slot];
}

MethodCandidates MethodIndex::candidatesForArgType(TypeId T) const {
  if (!BaseIdx)
    return MethodCandidates(unionSpan(T));
  if (T < 0 || static_cast<size_t>(T) >= TS.numTypes())
    return MethodCandidates();
  if (static_cast<size_t>(T) < NumBaseTypes)
    return MethodCandidates(BaseIdx->unionSpan(T), overlayAppendage(T));
  return MethodCandidates(overlayUnion(T));
}

size_t MethodIndex::memoryBytes() const {
  size_t Bytes = Buckets.capacity() * sizeof(std::vector<MethodId>) +
                 All.capacity() * sizeof(MethodId) +
                 UnionData.capacity() * sizeof(MethodId) +
                 UnionOffsets.capacity() * sizeof(uint32_t) +
                 AppData.capacity() * sizeof(MethodId) +
                 AppOffsets.capacity() * sizeof(uint32_t);
  for (const auto &B : Buckets)
    Bytes += B.capacity() * sizeof(MethodId);
  for (const auto &U : UnionCache)
    Bytes += U.capacity() * sizeof(MethodId);
  for (const auto &A : AppCache)
    Bytes += A.capacity() * sizeof(MethodId);
  return Bytes;
}
