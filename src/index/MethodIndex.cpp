//===- index/MethodIndex.cpp - Param-type-keyed method index --------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "index/MethodIndex.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_set>

using namespace petal;

MethodIndex::MethodIndex(const TypeSystem &TS) : TS(TS) {
  Buckets.resize(TS.numTypes());
  All.reserve(TS.numMethods());
  for (size_t M = 0; M != TS.numMethods(); ++M) {
    MethodId Id = static_cast<MethodId>(M);
    All.push_back(Id);
    // Insert the method once per *distinct* parameter type.
    std::unordered_set<TypeId> Seen;
    size_t N = TS.numCallParams(Id);
    for (size_t I = 0; I != N; ++I) {
      TypeId T = TS.callParamType(Id, I);
      if (Seen.insert(T).second)
        Buckets[T].push_back(Id);
    }
  }
  UnionCache.resize(TS.numTypes());
  UnionCacheValid.assign(TS.numTypes(), false);
}

void MethodIndex::warmAll() const {
  if (frozen())
    return;
  for (size_t T = 0; T != TS.numTypes(); ++T)
    candidatesForArgType(static_cast<TypeId>(T));
}

void MethodIndex::freeze() const {
  if (frozen())
    return;
  warmAll();

  size_t N = UnionCache.size();
  std::vector<uint32_t> Offs(N + 1, 0);
  size_t Total = 0;
  for (size_t T = 0; T != N; ++T) {
    Offs[T] = static_cast<uint32_t>(Total);
    Total += UnionCache[T].size();
  }
  assert(Total <= UINT32_MAX && "method-union size overflows CSR offsets");
  Offs[N] = static_cast<uint32_t>(Total);

  std::vector<MethodId> Data;
  Data.reserve(Total);
  for (size_t T = 0; T != N; ++T)
    Data.insert(Data.end(), UnionCache[T].begin(), UnionCache[T].end());

  UnionData = std::move(Data);
  UnionOffsets = std::move(Offs);
  UnionV = UnionData.data();
  NumUnion = UnionData.size();
  NumTypesFrozen = N;
  // Publish UOffV last: frozen() keys off it, and once it is non-null
  // candidatesForArgType never touches the lazy representation.
  UOffV = UnionOffsets.data();
  UnionCache.clear();
  UnionCache.shrink_to_fit();
  UnionCacheValid.clear();
  UnionCacheValid.shrink_to_fit();
}

void MethodIndex::adoptFrozen(
    const MethodId *Data, size_t DataCount, const uint32_t *Offs,
    size_t NumTypes, std::shared_ptr<const void> KeepAliveHandle) const {
  assert(!frozen() && "method index already frozen");
  assert(NumTypes == TS.numTypes() &&
         "snapshot method unions sized for a different type population");
  UnionV = Data;
  NumUnion = DataCount;
  NumTypesFrozen = NumTypes;
  KeepAlive = std::move(KeepAliveHandle);
  UOffV = Offs;
  UnionCache.clear();
  UnionCache.shrink_to_fit();
  UnionCacheValid.clear();
  UnionCacheValid.shrink_to_fit();
}

Span<const MethodId> MethodIndex::exactBucket(TypeId T) const {
  if (T < 0 || static_cast<size_t>(T) >= Buckets.size())
    return Empty;
  return Buckets[T];
}

Span<const MethodId> MethodIndex::candidatesForArgType(TypeId T) const {
  if (frozen()) {
    if (T < 0 || static_cast<size_t>(T) >= NumTypesFrozen)
      return Empty;
    uint32_t B = UOffV[T], E = UOffV[static_cast<size_t>(T) + 1];
    return Span<const MethodId>(UnionV + B, E - B);
  }

  if (T < 0 || static_cast<size_t>(T) >= Buckets.size())
    return Empty;
  if (UnionCacheValid[T])
    return UnionCache[T];

  // Walk T and all transitive supertypes (BFS), merging their exact
  // buckets. The BFS order makes results from closer types (lower type
  // distance) appear first, which matches the paper's observation that
  // "each method index visited gives progressively worse ranked results".
  std::vector<MethodId> Result;
  std::unordered_set<TypeId> Visited;
  std::unordered_set<MethodId> SeenMethods;
  std::deque<TypeId> Work;
  Work.push_back(T);
  Visited.insert(T);
  while (!Work.empty()) {
    TypeId Cur = Work.front();
    Work.pop_front();
    for (MethodId M : Buckets[Cur])
      if (SeenMethods.insert(M).second)
        Result.push_back(M);
    for (TypeId S : TS.immediateSupertypes(Cur))
      if (Visited.insert(S).second)
        Work.push_back(S);
  }
  UnionCache[T] = std::move(Result);
  UnionCacheValid[T] = true;
  return UnionCache[T];
}
