//===- index/ReachabilityIndex.h - Type reachability via lookups -*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper describes (but did not implement) an index that records, for
/// each type, which types are reachable through `.?*f` / `.?*m` lookup
/// chains and in how many steps (§4.2, "queries for multiple field lookups
/// could also be made more efficient..."). petal implements it: the
/// completion engine uses it to prune star-suffix expansion states that can
/// never reach a value convertible to a known expected type within the
/// remaining score budget. Its effect is measured as an ablation in
/// bench/speed_latency.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_INDEX_REACHABILITYINDEX_H
#define PETAL_INDEX_REACHABILITYINDEX_H

#include "index/MemberCache.h"
#include "model/TypeSystem.h"

#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

namespace petal {

/// Lazily computed per-source-type reachability: the minimum number of
/// lookup steps from a value of one type to a value of another.
///
/// Concurrency: the per-source distance maps are lazily filled with no
/// locking; call warmAll() (done by CompletionIndexes::freeze()) before
/// sharing an instance across query threads, after which minLookups /
/// reachableFrom are pure reads. The convertible-target memo is keyed by
/// (source, target) *pairs* — a quadratic key space that cannot sensibly be
/// pre-enumerated — so it alone stays lazy behind a shared_mutex
/// double-checked path (reads take the shared lock, a miss recomputes
/// outside the lock from the warmed distance maps, then inserts under the
/// exclusive lock).
class ReachabilityIndex {
public:
  ReachabilityIndex(const TypeSystem &TS, const MemberCache &Members,
                    int MaxDepth = 8)
      : TS(TS), Members(Members), MaxDepth(MaxDepth) {}

  /// Minimum number of lookups (0 = the value itself) from a value of type
  /// \p From to a value of exactly type \p To; nullopt if unreachable
  /// within MaxDepth. \p MethodsAllowed selects the `.?*m` edge set
  /// (fields + zero-arg methods) vs `.?*f` (fields only).
  std::optional<int> minLookups(TypeId From, TypeId To,
                                bool MethodsAllowed) const;

  /// Minimum number of lookups from \p From to any value *implicitly
  /// convertible to* \p Target; nullopt if none within MaxDepth.
  std::optional<int> minLookupsToConvertible(TypeId From, TypeId Target,
                                             bool MethodsAllowed) const;

  /// The full distance map from \p From (type -> min lookups).
  const std::unordered_map<TypeId, int> &reachableFrom(TypeId From,
                                                       bool MethodsAllowed) const;

  /// Eagerly computes the distance map of every type for both edge sets;
  /// idempotent. Requires the MemberCache to be warm (or warms it as a
  /// side effect of the BFS).
  void warmAll() const;

private:
  const TypeSystem &TS;
  const MemberCache &Members;
  int MaxDepth;
  // Index 0: fields only; index 1: fields + methods.
  mutable std::unordered_map<TypeId, std::unordered_map<TypeId, int>>
      Cache[2];
  mutable std::unordered_map<uint64_t, std::optional<int>> ConvCache[2];
  /// Guards ConvCache (only); see the class comment.
  mutable std::shared_mutex ConvMutex;
};

} // namespace petal

#endif // PETAL_INDEX_REACHABILITYINDEX_H
