//===- index/ReachabilityIndex.h - Type reachability via lookups -*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper describes (but did not implement) an index that records, for
/// each type, which types are reachable through `.?*f` / `.?*m` lookup
/// chains and in how many steps (§4.2, "queries for multiple field lookups
/// could also be made more efficient..."). petal implements it: the
/// completion engine uses it to prune star-suffix expansion states that can
/// never reach a value convertible to a known expected type within the
/// remaining score budget. Its effect is measured as an ablation in
/// bench/speed_latency.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_INDEX_REACHABILITYINDEX_H
#define PETAL_INDEX_REACHABILITYINDEX_H

#include "index/MemberCache.h"
#include "model/TypeSystem.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

namespace petal {

/// Lazily computed per-source-type reachability: the minimum number of
/// lookup steps from a value of one type to a value of another.
///
/// Concurrency: the lazy representation (per-source hash maps, filled on
/// first touch) is single-threaded. freeze() — called by
/// CompletionIndexes::freeze() — compiles both queries into dense
/// TypeId×TypeId int16 matrices (distance-to-exact-type and
/// distance-to-convertible-target, one pair per edge set), after which
/// every accessor is a branch-free load from immutable flat storage with
/// no locking whatsoever. This retired the old (source,target)-pair-keyed
/// hash memo and the shared_mutex that guarded it: the dense matrix *is*
/// the fully enumerated pair space, so there is nothing left to memoize
/// and nothing left to lock.
/// In overlay mode (base/overlay workspace, DESIGN.md §14) the dense
/// matrices cover only the document's types (one delta row per overlay
/// type, each row spanning the full type population); base-source queries
/// forward to the shared base index. Base-type closures are sealed inside
/// the base layer — every lookup edge from a base type lands on a base
/// type — so the only cross-layer answer is the null literal converting to
/// overlay reference types.
class ReachabilityIndex {
public:
  ReachabilityIndex(const TypeSystem &TS, const MemberCache &Members,
                    int MaxDepth = 8)
      : TS(TS), Members(Members), MaxDepth(MaxDepth) {}

  /// Overlay constructor: \p BaseReachIn was built over TS.baseLayer() and
  /// dense-frozen; this instance computes delta rows for overlay types only.
  ReachabilityIndex(const TypeSystem &TS, const MemberCache &Members,
                    std::shared_ptr<const ReachabilityIndex> BaseReachIn,
                    int MaxDepth = 8)
      : TS(TS), Members(Members), MaxDepth(MaxDepth),
        BaseReach(std::move(BaseReachIn)), NumBaseTypes(TS.numBaseTypes()) {
    assert(BaseReach && "overlay constructor requires a base index");
    assert(BaseReach->frozen() &&
           "the base reachability index must be dense-frozen before overlays "
           "attach (its lazy path mutates shared caches)");
  }

  /// Minimum number of lookups (0 = the value itself) from a value of type
  /// \p From to a value of exactly type \p To; nullopt if unreachable
  /// within MaxDepth. \p MethodsAllowed selects the `.?*m` edge set
  /// (fields + zero-arg methods) vs `.?*f` (fields only).
  std::optional<int> minLookups(TypeId From, TypeId To,
                                bool MethodsAllowed) const;

  /// Minimum number of lookups from \p From to any value *implicitly
  /// convertible to* \p Target; nullopt if none within MaxDepth.
  std::optional<int> minLookupsToConvertible(TypeId From, TypeId Target,
                                             bool MethodsAllowed) const;

  /// The full distance map from \p From (type -> min lookups).
  const std::unordered_map<TypeId, int> &reachableFrom(TypeId From,
                                                       bool MethodsAllowed) const;

  /// Eagerly computes the distance map of every type for both edge sets;
  /// idempotent. Requires the MemberCache to be warm (or warms it as a
  /// side effect of the BFS).
  void warmAll() const;

  /// Compiles the lazy caches into the dense matrices described in the
  /// class comment. Returns false (leaving the lazy path in place) when
  /// the four N×N int16 matrices would exceed \p MaxDenseBytes; idempotent.
  /// Once frozen the index is a pure function of the TypeSystem and the
  /// (equally frozen) MemberCache, which is what allows incremental
  /// document rebuilds to share it across versions.
  bool freeze(size_t MaxDenseBytes) const;
  bool frozen() const { return DenseN != 0; }

  /// The frozen minLookups matrix for one edge set, flat row-major
  /// (numTypes()² int16 in monolithic mode, one row per overlay type in
  /// overlay mode; sentinel -1); empty before freeze().
  /// Snapshot-writer access (base layer only; an overlay is never
  /// snapshotted).
  Span<const int16_t> denseDistTable(bool MethodsAllowed) const {
    return Span<const int16_t>(DistV[MethodsAllowed ? 1 : 0],
                               (DenseN - NumBaseTypes) * DenseN);
  }
  /// Same for the minLookupsToConvertible matrix.
  Span<const int16_t> denseConvTable(bool MethodsAllowed) const {
    return Span<const int16_t>(ConvV[MethodsAllowed ? 1 : 0],
                               (DenseN - NumBaseTypes) * DenseN);
  }

  /// Installs the four externally owned matrices (the snapshot loader's
  /// zero-copy path; each pointer aims into the read-only mapping
  /// \p KeepAlive pins, fields-only tables first). Same contract as
  /// TypeSystem::adoptDenseDistances: \p N must equal the TypeSystem's
  /// type count and the tables must have been computed over identical
  /// source, which the snapshot's content hashes guarantee.
  void adoptFrozen(const int16_t *DistFields, const int16_t *DistMethods,
                   const int16_t *ConvFields, const int16_t *ConvMethods,
                   size_t N, std::shared_ptr<const void> KeepAlive) const;

  /// Approximate heap bytes owned by this layer (the shared base is not
  /// re-counted).
  size_t memoryBytes() const;

private:
  /// Sentinel for "not reachable within MaxDepth" in the dense matrices.
  /// MaxDepth is tiny (default 8), so real distances always fit int16.
  static constexpr int16_t NoReach = -1;

  const TypeSystem &TS;
  const MemberCache &Members;
  int MaxDepth;
  /// Overlay mode: the shared base index and the number of types it covers.
  /// Frozen rows below are indexed From - NumBaseTypes (0 in monolithic
  /// mode); every row still spans the full DenseN-wide type population.
  std::shared_ptr<const ReachabilityIndex> BaseReach;
  size_t NumBaseTypes = 0;
  // Index 0: fields only; index 1: fields + methods.
  mutable std::unordered_map<TypeId, std::unordered_map<TypeId, int>>
      Cache[2];
  // Frozen dense representation, row-major (From-NumBaseTypes)*DenseN+To.
  // DistM answers minLookups, ConvM answers minLookupsToConvertible. DenseN
  // is published last so frozen() only reads fully-built matrices. Readers
  // go through the view pointers, which alias the owned vectors (in-process
  // freeze) or an adopted snapshot mapping pinned by KeepAlive.
  mutable std::vector<int16_t> DistM[2];
  mutable std::vector<int16_t> ConvM[2];
  mutable const int16_t *DistV[2] = {nullptr, nullptr};
  mutable const int16_t *ConvV[2] = {nullptr, nullptr};
  mutable size_t DenseN = 0;
  mutable std::shared_ptr<const void> KeepAlive;
};

} // namespace petal

#endif // PETAL_INDEX_REACHABILITYINDEX_H
