//===- index/MemberCache.h - Cached lookup edges per type -------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// For each type, the lookup steps a `.?f` / `.?m` suffix may take from a
/// value of that type: instance fields/properties (including inherited) and,
/// for the `m` forms, zero-argument non-void instance methods. Cached per
/// type; shared by the completion engine's star expansion and the
/// reachability index.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_INDEX_MEMBERCACHE_H
#define PETAL_INDEX_MEMBERCACHE_H

#include "model/TypeSystem.h"

#include <vector>

namespace petal {

/// One possible lookup step from a value: `.field` or `.method()`.
struct LookupEdge {
  bool IsField = true;
  FieldId Field = InvalidId;
  MethodId Method = InvalidId;
  TypeId ResultType = InvalidId;
};

/// Lazily caches the lookup edges of every type. Field edges always precede
/// method edges, so `.?f` consumers can stop at the first method edge.
///
/// Concurrency: the lazy fill is single-threaded; call warmAll() (done by
/// CompletionIndexes::freeze()) before sharing one instance across query
/// threads, after which every accessor is a pure read.
class MemberCache {
public:
  explicit MemberCache(const TypeSystem &TS) : TS(TS) {}

  /// All edges from a value of type \p T (fields first, then zero-arg
  /// methods), in deterministic declaration order.
  const std::vector<LookupEdge> &edges(TypeId T) const;

  /// Eagerly fills the edge cache of every type; idempotent.
  void warmAll() const;

  /// Number of leading field edges of edges(T).
  size_t numFieldEdges(TypeId T) const {
    edges(T);
    return FieldCounts[T];
  }

private:
  const TypeSystem &TS;
  mutable std::vector<std::vector<LookupEdge>> Cache;
  mutable std::vector<size_t> FieldCounts;
  mutable std::vector<bool> Valid;
};

} // namespace petal

#endif // PETAL_INDEX_MEMBERCACHE_H
