//===- index/MemberCache.h - Cached lookup edges per type -------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// For each type, the lookup steps a `.?f` / `.?m` suffix may take from a
/// value of that type: instance fields/properties (including inherited) and,
/// for the `m` forms, zero-argument non-void instance methods. Cached per
/// type; shared by the completion engine's star expansion and the
/// reachability index.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_INDEX_MEMBERCACHE_H
#define PETAL_INDEX_MEMBERCACHE_H

#include "model/TypeSystem.h"
#include "support/Span.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace petal {

/// One possible lookup step from a value: `.field` or `.method()`.
struct LookupEdge {
  bool IsField = true;
  FieldId Field = InvalidId;
  MethodId Method = InvalidId;
  TypeId ResultType = InvalidId;
};

/// Caches the lookup edges of every type. Field edges always precede
/// method edges, so `.?f` consumers can stop at the first method edge.
///
/// Two representations share one accessor: the lazy per-type vectors fill
/// on first touch (single-threaded only), and freeze() — called by
/// CompletionIndexes::freeze() — compacts everything into one CSR array
/// (all edges contiguous, per-type [Offsets[T], Offsets[T+1]) windows).
/// After freeze() every accessor is a pure read of immutable flat storage,
/// safe for any number of concurrent readers, and a whole-frontier star
/// expansion walks memory linearly instead of chasing per-type heap
/// vectors. A frozen instance depends only on the TypeSystem it was built
/// over, so incremental document rebuilds share it wholesale across
/// versions whose type graph is unchanged (CompletionIndexes' sharing
/// constructor); frozen() is the reuse precondition.
/// An overlay MemberCache (base/overlay workspace, DESIGN.md §14) layers
/// over a warmed base instance: base-type lookups forward to the shared
/// base storage (documents cannot add members to base types, so those edge
/// lists are final), and only overlay types get local entries, indexed
/// T - numBaseTypes(). Freezing an overlay compacts just the local edges.
class MemberCache {
public:
  explicit MemberCache(const TypeSystem &TS) : TS(TS) {}

  /// Overlay constructor: \p BaseCacheIn was built over TS.baseLayer() and
  /// warmed (or frozen), and answers every base-type lookup.
  MemberCache(const TypeSystem &TS, std::shared_ptr<const MemberCache> BaseCacheIn)
      : TS(TS), BaseCache(std::move(BaseCacheIn)),
        NumBaseTypes(TS.numBaseTypes()) {
    assert(BaseCache && "overlay constructor requires a base cache");
  }

  /// All edges from a value of type \p T (fields first, then zero-arg
  /// methods), in deterministic declaration order.
  Span<const LookupEdge> edges(TypeId T) const;

  /// Eagerly fills the edge cache of every type; idempotent.
  void warmAll() const;

  /// Compacts the per-type edge vectors into the CSR layout (warming any
  /// still-unfilled entries first) and frees the lazy storage; idempotent.
  void freeze() const;
  bool frozen() const { return OffV != nullptr; }

  /// Number of leading field edges of edges(T).
  size_t numFieldEdges(TypeId T) const {
    if (static_cast<size_t>(T) < NumBaseTypes)
      return BaseCache->numFieldEdges(T);
    if (!frozen())
      edges(T);
    return FieldCounts[T - NumBaseTypes];
  }

  /// The frozen CSR arrays: all edges contiguous, and the numTypes()+1
  /// offsets windowing them per type. Empty before freeze().
  /// Snapshot-writer access.
  Span<const LookupEdge> frozenEdges() const {
    return Span<const LookupEdge>(EdgeV, NumEdges);
  }
  Span<const uint32_t> frozenOffsets() const {
    return Span<const uint32_t>(OffV, frozen() ? NumTypesFrozen + 1 : 0);
  }
  /// Per-type leading-field-edge counts (frozen access only).
  Span<const size_t> frozenFieldCounts() const { return FieldCounts; }

  /// Installs externally owned CSR arrays (the snapshot loader's
  /// zero-copy path: \p Edges and \p Offs point into the read-only
  /// mapping \p KeepAlive pins; \p Offs holds \p NumTypes + 1 entries).
  /// FieldCounts is copied rather than aliased — it is O(numTypes), and
  /// owning it keeps the on-disk width (u64) independent of size_t.
  /// The snapshot's content hashes guarantee the arrays describe this
  /// TypeSystem exactly.
  void adoptFrozen(const LookupEdge *Edges, size_t EdgeCount,
                   const uint32_t *Offs, size_t NumTypes,
                   std::vector<size_t> FieldCountsIn,
                   std::shared_ptr<const void> KeepAliveHandle) const;

  /// Approximate heap bytes owned by this layer (the shared base is not
  /// re-counted).
  size_t memoryBytes() const;

private:
  const TypeSystem &TS;
  /// Overlay mode: the shared base cache and the number of types it
  /// covers. Local storage below is indexed T - NumBaseTypes.
  std::shared_ptr<const MemberCache> BaseCache;
  size_t NumBaseTypes = 0;
  // Lazy (pre-freeze) representation.
  mutable std::vector<std::vector<LookupEdge>> Cache;
  mutable std::vector<bool> Valid;
  // Frozen CSR representation: edges of type T are
  // EdgeData[Offsets[T] .. Offsets[T+1]). Readers go through the view
  // pointers, which alias the owned vectors (in-process freeze) or an
  // adopted snapshot mapping pinned by KeepAlive; OffV doubles as the
  // frozen() flag and is published last.
  mutable std::vector<LookupEdge> EdgeData;
  mutable std::vector<uint32_t> Offsets;
  mutable const LookupEdge *EdgeV = nullptr;
  mutable const uint32_t *OffV = nullptr;
  mutable size_t NumEdges = 0;
  mutable size_t NumTypesFrozen = 0;
  mutable std::shared_ptr<const void> KeepAlive;
  // Shared by both representations.
  mutable std::vector<size_t> FieldCounts;
};

} // namespace petal

#endif // PETAL_INDEX_MEMBERCACHE_H
