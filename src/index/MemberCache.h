//===- index/MemberCache.h - Cached lookup edges per type -------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// For each type, the lookup steps a `.?f` / `.?m` suffix may take from a
/// value of that type: instance fields/properties (including inherited) and,
/// for the `m` forms, zero-argument non-void instance methods. Cached per
/// type; shared by the completion engine's star expansion and the
/// reachability index.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_INDEX_MEMBERCACHE_H
#define PETAL_INDEX_MEMBERCACHE_H

#include "model/TypeSystem.h"
#include "support/Span.h"

#include <cstdint>
#include <vector>

namespace petal {

/// One possible lookup step from a value: `.field` or `.method()`.
struct LookupEdge {
  bool IsField = true;
  FieldId Field = InvalidId;
  MethodId Method = InvalidId;
  TypeId ResultType = InvalidId;
};

/// Caches the lookup edges of every type. Field edges always precede
/// method edges, so `.?f` consumers can stop at the first method edge.
///
/// Two representations share one accessor: the lazy per-type vectors fill
/// on first touch (single-threaded only), and freeze() — called by
/// CompletionIndexes::freeze() — compacts everything into one CSR array
/// (all edges contiguous, per-type [Offsets[T], Offsets[T+1]) windows).
/// After freeze() every accessor is a pure read of immutable flat storage,
/// safe for any number of concurrent readers, and a whole-frontier star
/// expansion walks memory linearly instead of chasing per-type heap
/// vectors. A frozen instance depends only on the TypeSystem it was built
/// over, so incremental document rebuilds share it wholesale across
/// versions whose type graph is unchanged (CompletionIndexes' sharing
/// constructor); frozen() is the reuse precondition.
class MemberCache {
public:
  explicit MemberCache(const TypeSystem &TS) : TS(TS) {}

  /// All edges from a value of type \p T (fields first, then zero-arg
  /// methods), in deterministic declaration order.
  Span<const LookupEdge> edges(TypeId T) const;

  /// Eagerly fills the edge cache of every type; idempotent.
  void warmAll() const;

  /// Compacts the per-type edge vectors into the CSR layout (warming any
  /// still-unfilled entries first) and frees the lazy storage; idempotent.
  void freeze() const;
  bool frozen() const { return !Offsets.empty(); }

  /// Number of leading field edges of edges(T).
  size_t numFieldEdges(TypeId T) const {
    if (!frozen())
      edges(T);
    return FieldCounts[T];
  }

private:
  const TypeSystem &TS;
  // Lazy (pre-freeze) representation.
  mutable std::vector<std::vector<LookupEdge>> Cache;
  mutable std::vector<bool> Valid;
  // Frozen CSR representation: edges of type T are
  // EdgeData[Offsets[T] .. Offsets[T+1]).
  mutable std::vector<LookupEdge> EdgeData;
  mutable std::vector<uint32_t> Offsets;
  // Shared by both representations.
  mutable std::vector<size_t> FieldCounts;
};

} // namespace petal

#endif // PETAL_INDEX_MEMBERCACHE_H
