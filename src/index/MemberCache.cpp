//===- index/MemberCache.cpp - Cached lookup edges per type ---------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "index/MemberCache.h"

using namespace petal;

void MemberCache::warmAll() const {
  for (size_t T = 0; T != TS.numTypes(); ++T)
    edges(static_cast<TypeId>(T));
}

const std::vector<LookupEdge> &MemberCache::edges(TypeId T) const {
  if (Cache.size() < TS.numTypes()) {
    Cache.resize(TS.numTypes());
    FieldCounts.resize(TS.numTypes(), 0);
    Valid.resize(TS.numTypes(), false);
  }
  if (Valid[T])
    return Cache[T];

  std::vector<LookupEdge> Edges;
  for (FieldId F : TS.visibleFields(T)) {
    const FieldInfo &FI = TS.field(F);
    if (FI.IsStatic)
      continue;
    LookupEdge E;
    E.IsField = true;
    E.Field = F;
    E.ResultType = FI.Type;
    Edges.push_back(E);
  }
  FieldCounts[T] = Edges.size();

  for (MethodId M : TS.visibleMethods(T)) {
    const MethodInfo &MI = TS.method(M);
    if (MI.IsStatic || !MI.Params.empty() || MI.ReturnType == TS.voidType())
      continue;
    LookupEdge E;
    E.IsField = false;
    E.Method = M;
    E.ResultType = MI.ReturnType;
    Edges.push_back(E);
  }

  Cache[T] = std::move(Edges);
  Valid[T] = true;
  return Cache[T];
}
