//===- index/MemberCache.cpp - Cached lookup edges per type ---------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "index/MemberCache.h"

#include <cassert>

using namespace petal;

void MemberCache::warmAll() const {
  if (frozen())
    return;
  // Overlay: warm the local types only; the base layer was warmed before
  // any overlay attached.
  for (size_t T = NumBaseTypes; T != TS.numTypes(); ++T)
    edges(static_cast<TypeId>(T));
}

void MemberCache::freeze() const {
  if (frozen())
    return;
  warmAll();

  // In overlay mode the CSR covers local types only (slot T - NumBaseTypes);
  // base-type queries keep forwarding to the shared base arrays.
  size_t N = TS.numTypes() - NumBaseTypes;
  std::vector<uint32_t> Offs(N + 1, 0);
  size_t Total = 0;
  for (size_t T = 0; T != N; ++T) {
    Offs[T] = static_cast<uint32_t>(Total);
    Total += Cache[T].size();
  }
  assert(Total <= UINT32_MAX && "member edge count overflows CSR offsets");
  Offs[N] = static_cast<uint32_t>(Total);

  std::vector<LookupEdge> Data;
  Data.reserve(Total);
  for (size_t T = 0; T != N; ++T)
    Data.insert(Data.end(), Cache[T].begin(), Cache[T].end());

  EdgeData = std::move(Data);
  Offsets = std::move(Offs);
  EdgeV = EdgeData.data();
  NumEdges = EdgeData.size();
  NumTypesFrozen = N;
  // Publish OffV last: frozen() keys off it, and once it is non-null
  // edges() never touches the lazy representation again.
  OffV = Offsets.data();
  Cache.clear();
  Cache.shrink_to_fit();
  Valid.clear();
  Valid.shrink_to_fit();
}

void MemberCache::adoptFrozen(
    const LookupEdge *Edges, size_t EdgeCount, const uint32_t *Offs,
    size_t NumTypes, std::vector<size_t> FieldCountsIn,
    std::shared_ptr<const void> KeepAliveHandle) const {
  assert(!frozen() && "member cache already frozen");
  assert(!BaseCache && "snapshot tables adopt into the base layer, not overlays");
  assert(NumTypes == TS.numTypes() &&
         "snapshot member CSR sized for a different type population");
  assert(FieldCountsIn.size() == NumTypes && "field counts mis-sized");
  FieldCounts = std::move(FieldCountsIn);
  EdgeV = Edges;
  NumEdges = EdgeCount;
  NumTypesFrozen = NumTypes;
  KeepAlive = std::move(KeepAliveHandle);
  OffV = Offs;
  Cache.clear();
  Cache.shrink_to_fit();
  Valid.clear();
  Valid.shrink_to_fit();
}

Span<const LookupEdge> MemberCache::edges(TypeId T) const {
  // Base types delegate to the shared base cache: a document cannot add
  // members to a base type, so its edge list is exactly the base's.
  if (static_cast<size_t>(T) < NumBaseTypes)
    return BaseCache->edges(T);
  size_t Slot = static_cast<size_t>(T) - NumBaseTypes;

  if (frozen()) {
    assert(Slot < NumTypesFrozen && "bad TypeId");
    uint32_t B = OffV[Slot], E = OffV[Slot + 1];
    return Span<const LookupEdge>(EdgeV + B, E - B);
  }

  size_t NumLocal = TS.numTypes() - NumBaseTypes;
  if (Cache.size() < NumLocal) {
    Cache.resize(NumLocal);
    FieldCounts.resize(NumLocal, 0);
    Valid.resize(NumLocal, false);
  }
  if (Valid[Slot])
    return Cache[Slot];

  // visibleFields/visibleMethods run over the layered TypeSystem, so an
  // overlay type's edges include its inherited base members in exactly the
  // order a monolithic build would produce.
  std::vector<LookupEdge> Edges;
  for (FieldId F : TS.visibleFields(T)) {
    const FieldInfo &FI = TS.field(F);
    if (FI.IsStatic)
      continue;
    LookupEdge E;
    E.IsField = true;
    E.Field = F;
    E.ResultType = FI.Type;
    Edges.push_back(E);
  }
  FieldCounts[Slot] = Edges.size();

  for (MethodId M : TS.visibleMethods(T)) {
    const MethodInfo &MI = TS.method(M);
    if (MI.IsStatic || !MI.Params.empty() || MI.ReturnType == TS.voidType())
      continue;
    LookupEdge E;
    E.IsField = false;
    E.Method = M;
    E.ResultType = MI.ReturnType;
    Edges.push_back(E);
  }

  Cache[Slot] = std::move(Edges);
  Valid[Slot] = true;
  return Cache[Slot];
}

size_t MemberCache::memoryBytes() const {
  size_t Bytes = EdgeData.capacity() * sizeof(LookupEdge) +
                 Offsets.capacity() * sizeof(uint32_t) +
                 FieldCounts.capacity() * sizeof(size_t);
  for (const auto &V : Cache)
    Bytes += V.capacity() * sizeof(LookupEdge);
  return Bytes;
}
