//===- index/MemberCache.cpp - Cached lookup edges per type ---------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "index/MemberCache.h"

#include <cassert>

using namespace petal;

void MemberCache::warmAll() const {
  if (frozen())
    return;
  for (size_t T = 0; T != TS.numTypes(); ++T)
    edges(static_cast<TypeId>(T));
}

void MemberCache::freeze() const {
  if (frozen())
    return;
  warmAll();

  size_t N = TS.numTypes();
  std::vector<uint32_t> Offs(N + 1, 0);
  size_t Total = 0;
  for (size_t T = 0; T != N; ++T) {
    Offs[T] = static_cast<uint32_t>(Total);
    Total += Cache[T].size();
  }
  assert(Total <= UINT32_MAX && "member edge count overflows CSR offsets");
  Offs[N] = static_cast<uint32_t>(Total);

  std::vector<LookupEdge> Data;
  Data.reserve(Total);
  for (size_t T = 0; T != N; ++T)
    Data.insert(Data.end(), Cache[T].begin(), Cache[T].end());

  EdgeData = std::move(Data);
  Offsets = std::move(Offs);
  EdgeV = EdgeData.data();
  NumEdges = EdgeData.size();
  NumTypesFrozen = N;
  // Publish OffV last: frozen() keys off it, and once it is non-null
  // edges() never touches the lazy representation again.
  OffV = Offsets.data();
  Cache.clear();
  Cache.shrink_to_fit();
  Valid.clear();
  Valid.shrink_to_fit();
}

void MemberCache::adoptFrozen(
    const LookupEdge *Edges, size_t EdgeCount, const uint32_t *Offs,
    size_t NumTypes, std::vector<size_t> FieldCountsIn,
    std::shared_ptr<const void> KeepAliveHandle) const {
  assert(!frozen() && "member cache already frozen");
  assert(NumTypes == TS.numTypes() &&
         "snapshot member CSR sized for a different type population");
  assert(FieldCountsIn.size() == NumTypes && "field counts mis-sized");
  FieldCounts = std::move(FieldCountsIn);
  EdgeV = Edges;
  NumEdges = EdgeCount;
  NumTypesFrozen = NumTypes;
  KeepAlive = std::move(KeepAliveHandle);
  OffV = Offs;
  Cache.clear();
  Cache.shrink_to_fit();
  Valid.clear();
  Valid.shrink_to_fit();
}

Span<const LookupEdge> MemberCache::edges(TypeId T) const {
  if (frozen()) {
    assert(static_cast<size_t>(T) < NumTypesFrozen && "bad TypeId");
    uint32_t B = OffV[T], E = OffV[static_cast<size_t>(T) + 1];
    return Span<const LookupEdge>(EdgeV + B, E - B);
  }

  if (Cache.size() < TS.numTypes()) {
    Cache.resize(TS.numTypes());
    FieldCounts.resize(TS.numTypes(), 0);
    Valid.resize(TS.numTypes(), false);
  }
  if (Valid[T])
    return Cache[T];

  std::vector<LookupEdge> Edges;
  for (FieldId F : TS.visibleFields(T)) {
    const FieldInfo &FI = TS.field(F);
    if (FI.IsStatic)
      continue;
    LookupEdge E;
    E.IsField = true;
    E.Field = F;
    E.ResultType = FI.Type;
    Edges.push_back(E);
  }
  FieldCounts[T] = Edges.size();

  for (MethodId M : TS.visibleMethods(T)) {
    const MethodInfo &MI = TS.method(M);
    if (MI.IsStatic || !MI.Params.empty() || MI.ReturnType == TS.voidType())
      continue;
    LookupEdge E;
    E.IsField = false;
    E.Method = M;
    E.ResultType = MI.ReturnType;
    Edges.push_back(E);
  }

  Cache[T] = std::move(Edges);
  Valid[T] = true;
  return Cache[T];
}
