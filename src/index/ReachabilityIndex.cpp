//===- index/ReachabilityIndex.cpp - Type reachability via lookups --------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "index/ReachabilityIndex.h"

#include <cassert>
#include <deque>

using namespace petal;

// The retired lazy convertible-target memo packed (From, Target) into a
// uint64_t as (From << 32) | Target, which silently aliased keys on any
// platform where TypeId widened past 32 bits. The dense matrices index by
// From * DenseN + Target in size_t and have no such hazard, but keep the
// assumption visible for anything else that packs id pairs:
static_assert(sizeof(TypeId) == 4,
              "TypeId must stay 32-bit; pair-packed and dense row-major "
              "indexes assume it");

const std::unordered_map<TypeId, int> &
ReachabilityIndex::reachableFrom(TypeId From, bool MethodsAllowed) const {
  auto &CacheMap = Cache[MethodsAllowed ? 1 : 0];
  auto It = CacheMap.find(From);
  if (It != CacheMap.end())
    return It->second;

  std::unordered_map<TypeId, int> Dist;
  std::deque<TypeId> Work;
  Dist[From] = 0;
  Work.push_back(From);
  while (!Work.empty()) {
    TypeId Cur = Work.front();
    Work.pop_front();
    int D = Dist[Cur];
    if (D >= MaxDepth)
      continue;
    const auto Edges = Members.edges(Cur);
    size_t Limit = MethodsAllowed ? Edges.size() : Members.numFieldEdges(Cur);
    for (size_t I = 0; I != Limit; ++I) {
      TypeId Next = Edges[I].ResultType;
      if (Dist.count(Next))
        continue;
      Dist[Next] = D + 1;
      Work.push_back(Next);
    }
  }
  return CacheMap.emplace(From, std::move(Dist)).first->second;
}

void ReachabilityIndex::warmAll() const {
  // Overlay: only the local types get rows; base-source queries forward to
  // the already-frozen base matrices.
  for (size_t T = NumBaseTypes; T != TS.numTypes(); ++T) {
    reachableFrom(static_cast<TypeId>(T), /*MethodsAllowed=*/false);
    reachableFrom(static_cast<TypeId>(T), /*MethodsAllowed=*/true);
  }
}

bool ReachabilityIndex::freeze(size_t MaxDenseBytes) const {
  if (DenseN != 0)
    return true;
  size_t N = TS.numTypes();
  size_t Rows = N - NumBaseTypes;
  if (N == 0 || 4 * Rows * N * sizeof(int16_t) > MaxDenseBytes)
    return false;
  warmAll();

  // Per-type convertible-target adjacency, computed once up front so the
  // ConvM fill below is a relaxation over precomputed lists instead of N³
  // implicitlyConvertible calls. With the TypeSystem's own dense distance
  // matrix frozen, each check is a single int16 load. An overlay only needs
  // the lists of types its rows actually reach, which keeps its freeze
  // O(reach × N) instead of the base's O(N²).
  std::vector<std::vector<TypeId>> ConvTargets(N);
  std::vector<bool> Needed(N, !BaseReach);
  if (BaseReach)
    for (size_t F = NumBaseTypes; F != N; ++F)
      for (int K = 0; K != 2; ++K)
        for (const auto &[To, D] :
             reachableFrom(static_cast<TypeId>(F), /*MethodsAllowed=*/K == 1))
          Needed[To] = true;
  for (size_t Ty = 0; Ty != N; ++Ty) {
    if (!Needed[Ty])
      continue;
    for (size_t Tgt = 0; Tgt != N; ++Tgt)
      if (TS.implicitlyConvertible(static_cast<TypeId>(Ty),
                                   static_cast<TypeId>(Tgt)))
        ConvTargets[Ty].push_back(static_cast<TypeId>(Tgt));
  }

  for (int K = 0; K != 2; ++K) {
    std::vector<int16_t> DM(Rows * N, NoReach);
    std::vector<int16_t> CM(Rows * N, NoReach);
    for (size_t F = NumBaseTypes; F != N; ++F) {
      int16_t *DRow = DM.data() + (F - NumBaseTypes) * N;
      int16_t *CRow = CM.data() + (F - NumBaseTypes) * N;
      for (const auto &[To, D] : reachableFrom(static_cast<TypeId>(F),
                                               /*MethodsAllowed=*/K == 1)) {
        assert(D >= 0 && D <= INT16_MAX && "lookup distance overflows int16");
        auto D16 = static_cast<int16_t>(D);
        DRow[To] = D16;
        for (TypeId Tgt : ConvTargets[To])
          if (CRow[Tgt] == NoReach || D16 < CRow[Tgt])
            CRow[Tgt] = D16;
      }
    }
    DistM[K] = std::move(DM);
    ConvM[K] = std::move(CM);
    DistV[K] = DistM[K].data();
    ConvV[K] = ConvM[K].data();
  }
  for (auto &CacheMap : Cache)
    CacheMap.clear();
  DenseN = N;
  return true;
}

void ReachabilityIndex::adoptFrozen(
    const int16_t *DistFields, const int16_t *DistMethods,
    const int16_t *ConvFields, const int16_t *ConvMethods, size_t N,
    std::shared_ptr<const void> KeepAliveHandle) const {
  assert(DenseN == 0 && "reachability index already frozen");
  assert(!BaseReach &&
         "snapshot tables adopt into the base layer, not overlays");
  assert(N == TS.numTypes() &&
         "snapshot reachability matrices sized for a different type "
         "population");
  DistV[0] = DistFields;
  DistV[1] = DistMethods;
  ConvV[0] = ConvFields;
  ConvV[1] = ConvMethods;
  KeepAlive = std::move(KeepAliveHandle);
  DenseN = N;
}

std::optional<int> ReachabilityIndex::minLookups(TypeId From, TypeId To,
                                                 bool MethodsAllowed) const {
  if (BaseReach && static_cast<size_t>(From) < NumBaseTypes) {
    // Base-type closures are sealed inside the base layer: every lookup
    // edge from a base type lands on a base type, so overlay targets are
    // unreachable. Check To's layer *before* delegating — the base matrix
    // has no row or column for overlay ids.
    if (static_cast<size_t>(To) >= NumBaseTypes)
      return std::nullopt;
    return BaseReach->minLookups(From, To, MethodsAllowed);
  }
  if (DenseN != 0) {
    assert(static_cast<size_t>(From) < DenseN &&
           static_cast<size_t>(To) < DenseN && "bad TypeId");
    int16_t D = DistV[MethodsAllowed ? 1 : 0]
                     [(static_cast<size_t>(From) - NumBaseTypes) * DenseN +
                      static_cast<size_t>(To)];
    if (D == NoReach)
      return std::nullopt;
    return static_cast<int>(D);
  }
  const auto &Dist = reachableFrom(From, MethodsAllowed);
  auto It = Dist.find(To);
  if (It == Dist.end())
    return std::nullopt;
  return It->second;
}

std::optional<int>
ReachabilityIndex::minLookupsToConvertible(TypeId From, TypeId Target,
                                           bool MethodsAllowed) const {
  if (BaseReach && static_cast<size_t>(From) < NumBaseTypes) {
    if (static_cast<size_t>(Target) >= NumBaseTypes) {
      // The only base-layer values convertible to an overlay target are
      // null literals (reference targets only), so the answer is the
      // distance from From to the null type — 0 when From *is* null,
      // unreachable otherwise (no member has the null type).
      if (!TS.isReferenceType(Target))
        return std::nullopt;
      return BaseReach->minLookups(From, TS.nullType(), MethodsAllowed);
    }
    return BaseReach->minLookupsToConvertible(From, Target, MethodsAllowed);
  }
  if (DenseN != 0) {
    assert(static_cast<size_t>(From) < DenseN &&
           static_cast<size_t>(Target) < DenseN && "bad TypeId");
    int16_t D = ConvV[MethodsAllowed ? 1 : 0]
                     [(static_cast<size_t>(From) - NumBaseTypes) * DenseN +
                      static_cast<size_t>(Target)];
    if (D == NoReach)
      return std::nullopt;
    return static_cast<int>(D);
  }

  // Lazy (pre-freeze, single-threaded) path: scan the warmed distance map.
  // No memo — the dense matrix is the memo, and freeze() builds it before
  // any concurrent or repeated querying starts.
  std::optional<int> Best;
  for (const auto &[Ty, D] : reachableFrom(From, MethodsAllowed)) {
    if (!TS.implicitlyConvertible(Ty, Target))
      continue;
    if (!Best || D < *Best)
      Best = D;
  }
  return Best;
}

size_t ReachabilityIndex::memoryBytes() const {
  size_t Bytes = 0;
  for (int K = 0; K != 2; ++K)
    Bytes += (DistM[K].capacity() + ConvM[K].capacity()) * sizeof(int16_t);
  for (const auto &CacheMap : Cache) {
    for (const auto &[From, Dist] : CacheMap)
      Bytes += Dist.size() * (sizeof(TypeId) + sizeof(int) + sizeof(void *));
    Bytes += CacheMap.size() * (sizeof(TypeId) + sizeof(void *) +
                                sizeof(std::unordered_map<TypeId, int>));
  }
  return Bytes;
}
