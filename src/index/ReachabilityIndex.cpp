//===- index/ReachabilityIndex.cpp - Type reachability via lookups --------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "index/ReachabilityIndex.h"

#include <deque>
#include <mutex>

using namespace petal;

const std::unordered_map<TypeId, int> &
ReachabilityIndex::reachableFrom(TypeId From, bool MethodsAllowed) const {
  auto &CacheMap = Cache[MethodsAllowed ? 1 : 0];
  auto It = CacheMap.find(From);
  if (It != CacheMap.end())
    return It->second;

  std::unordered_map<TypeId, int> Dist;
  std::deque<TypeId> Work;
  Dist[From] = 0;
  Work.push_back(From);
  while (!Work.empty()) {
    TypeId Cur = Work.front();
    Work.pop_front();
    int D = Dist[Cur];
    if (D >= MaxDepth)
      continue;
    const auto &Edges = Members.edges(Cur);
    size_t Limit = MethodsAllowed ? Edges.size() : Members.numFieldEdges(Cur);
    for (size_t I = 0; I != Limit; ++I) {
      TypeId Next = Edges[I].ResultType;
      if (Dist.count(Next))
        continue;
      Dist[Next] = D + 1;
      Work.push_back(Next);
    }
  }
  return CacheMap.emplace(From, std::move(Dist)).first->second;
}

void ReachabilityIndex::warmAll() const {
  for (size_t T = 0; T != TS.numTypes(); ++T) {
    reachableFrom(static_cast<TypeId>(T), /*MethodsAllowed=*/false);
    reachableFrom(static_cast<TypeId>(T), /*MethodsAllowed=*/true);
  }
}

std::optional<int> ReachabilityIndex::minLookups(TypeId From, TypeId To,
                                                 bool MethodsAllowed) const {
  const auto &Dist = reachableFrom(From, MethodsAllowed);
  auto It = Dist.find(To);
  if (It == Dist.end())
    return std::nullopt;
  return It->second;
}

std::optional<int>
ReachabilityIndex::minLookupsToConvertible(TypeId From, TypeId Target,
                                           bool MethodsAllowed) const {
  auto &CacheMap = ConvCache[MethodsAllowed ? 1 : 0];
  uint64_t Key = (static_cast<uint64_t>(static_cast<uint32_t>(From)) << 32) |
                 static_cast<uint32_t>(Target);
  {
    std::shared_lock<std::shared_mutex> Lock(ConvMutex);
    auto CIt = CacheMap.find(Key);
    if (CIt != CacheMap.end())
      return CIt->second;
  }

  // Recompute outside the lock (the distance map is warm / thread-local to
  // the lazy single-threaded phase); a racing duplicate computes the same
  // value and the second emplace is a no-op.
  std::optional<int> Best;
  for (const auto &[Ty, D] : reachableFrom(From, MethodsAllowed)) {
    if (!TS.implicitlyConvertible(Ty, Target))
      continue;
    if (!Best || D < *Best)
      Best = D;
  }
  std::unique_lock<std::shared_mutex> Lock(ConvMutex);
  CacheMap.emplace(Key, Best);
  return Best;
}
