//===- index/MethodIndex.h - Param-type-keyed method index ------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's method index (§4.2, Fig. 8): a map from every type to the set
/// of methods with at least one call-signature parameter (receiver included)
/// of *exactly* that type, organized so that looking up a type also walks
/// the indexes of its supertypes. Given `?({e1, e2})`, the engine looks up
/// each argument type and scans only the smallest candidate set, which is
/// "almost always orders of magnitude smaller than the set of all methods".
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_INDEX_METHODINDEX_H
#define PETAL_INDEX_METHODINDEX_H

#include "model/TypeSystem.h"
#include "support/Span.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <vector>

namespace petal {

/// A possibly two-segment view over method candidates: a head span (the
/// base layer's frozen CSR window, or the whole answer for a monolithic
/// index) followed by an optional tail span (the overlay appendage). The
/// segments are concatenated, never interleaved — the engine's candidate
/// consumers depend only on the *set* (smallest-set selection compares
/// sizes; same-score ordering ties break on method id, not visit order),
/// so base-type candidates need not reproduce the monolithic BFS
/// interleaving. Cheap to copy; never owns.
class MethodCandidates {
public:
  MethodCandidates() = default;
  /*implicit*/ MethodCandidates(Span<const MethodId> Head) : Head(Head) {}
  MethodCandidates(Span<const MethodId> Head, Span<const MethodId> Tail)
      : Head(Head), Tail(Tail) {}

  size_t size() const { return Head.size() + Tail.size(); }
  bool empty() const { return Head.empty() && Tail.empty(); }

  MethodId operator[](size_t I) const {
    assert(I < size() && "candidate index out of range");
    return I < Head.size() ? Head[I] : Tail[I - Head.size()];
  }

  /// Forward iterator walking head then tail. Carries its position so
  /// iterators over the two segments compare and subtract like pointers
  /// into one contiguous array.
  class iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = MethodId;
    using difference_type = std::ptrdiff_t;
    using pointer = const MethodId *;
    using reference = const MethodId &;

    iterator(const MethodId *P, const MethodId *HeadEnd,
             const MethodId *TailBegin, size_t Idx)
        : P(P), HeadEnd(HeadEnd), TailBegin(TailBegin), Idx(Idx) {}
    reference operator*() const { return *P; }
    iterator &operator++() {
      ++P;
      ++Idx;
      if (P == HeadEnd)
        P = TailBegin;
      return *this;
    }
    iterator operator++(int) {
      iterator Tmp = *this;
      ++*this;
      return Tmp;
    }
    bool operator==(const iterator &O) const { return Idx == O.Idx; }
    bool operator!=(const iterator &O) const { return Idx != O.Idx; }
    difference_type operator-(const iterator &O) const {
      return static_cast<difference_type>(Idx) -
             static_cast<difference_type>(O.Idx);
    }

  private:
    const MethodId *P;
    const MethodId *HeadEnd;
    const MethodId *TailBegin;
    size_t Idx;
  };
  iterator begin() const {
    const MethodId *Start = Head.empty() ? Tail.begin() : Head.begin();
    return iterator(Start, Head.end(), Tail.begin(), 0);
  }
  iterator end() const {
    return iterator(Tail.end(), Head.end(), Tail.begin(), size());
  }

private:
  Span<const MethodId> Head;
  Span<const MethodId> Tail;
};

/// Immutable method index built over a finished TypeSystem.
///
/// The per-type supertype-union candidate lists start as lazily memoized
/// heap vectors (single-threaded fills). freeze() — called by
/// CompletionIndexes::freeze() — pre-merges every supertype chain into one
/// contiguous CSR array with per-type [UnionOffsets[T], UnionOffsets[T+1])
/// spans; afterwards every accessor is a lock-free read of immutable flat
/// storage. Like the other type-graph indexes, a frozen instance reads
/// nothing but its TypeSystem, so body-only document edits share it
/// across versions via CompletionIndexes' sharing constructor.
///
/// In overlay mode (base/overlay workspace, DESIGN.md §14) the index holds
/// only the document's methods: a base type's candidates are the shared
/// base CSR span plus a small appendage of overlay methods reachable from
/// that type, and an overlay type's candidates are a locally memoized full
/// union over the layered supertype closure. Both are served through
/// MethodCandidates, so the engine never sees the layering.
class MethodIndex {
public:
  explicit MethodIndex(const TypeSystem &TS);

  /// Overlay constructor: \p BaseIdxIn was built over TS.baseLayer() and
  /// frozen; this instance buckets only the overlay methods.
  MethodIndex(const TypeSystem &TS, std::shared_ptr<const MethodIndex> BaseIdxIn);

  /// Methods with a call-signature parameter of exactly type \p T.
  MethodCandidates exactBucket(TypeId T) const;

  /// Methods usable with an argument of type \p T in some position: the
  /// union of the exact buckets of \p T and all its transitive supertypes
  /// (deduplicated; nearer-supertype buckets first in monolithic mode,
  /// base-then-overlay segments in overlay mode — same set either way).
  /// Memoized per type; a pure flat-array read once frozen.
  MethodCandidates candidatesForArgType(TypeId T) const;

  /// Eagerly memoizes candidatesForArgType for every type; idempotent.
  void warmAll() const;

  /// Compacts the memoized union lists into the CSR layout (warming any
  /// still-unfilled entries first) and frees the lazy storage; idempotent.
  void freeze() const;
  bool frozen() const { return UOffV != nullptr; }

  /// The frozen CSR arrays: all pre-merged supertype-union candidate
  /// lists contiguous, and the numTypes()+1 offsets windowing them per
  /// type. Empty before freeze(). Snapshot-writer access (base layer
  /// only; an overlay is never snapshotted).
  Span<const MethodId> frozenUnionData() const {
    return Span<const MethodId>(UnionV, NumUnion);
  }
  Span<const uint32_t> frozenUnionOffsets() const {
    return Span<const uint32_t>(UOffV, frozen() ? NumTypesFrozen + 1 : 0);
  }

  /// Installs externally owned CSR arrays (the snapshot loader's
  /// zero-copy path: both pointers aim into the read-only mapping
  /// \p KeepAlive pins; \p Offs holds \p NumTypes + 1 entries). The
  /// exact-bucket layer (Buckets/All) is rebuilt cheaply by the
  /// constructor from the TypeSystem; only the pre-merged unions — the
  /// O(types × supertype chain) part — come from the snapshot.
  void adoptFrozen(const MethodId *Data, size_t DataCount,
                   const uint32_t *Offs, size_t NumTypes,
                   std::shared_ptr<const void> KeepAliveHandle) const;

  /// Size of candidatesForArgType(T) without forcing full materialization
  /// cost twice (it memoizes anyway; provided for readability).
  size_t candidateCount(TypeId T) const {
    return candidatesForArgType(T).size();
  }

  /// All methods in id order (base segment then overlay segment, which is
  /// exactly monolithic id order), for brute-force comparison baselines
  /// and the engine's unconstrained fallback.
  MethodCandidates allMethods() const {
    if (BaseIdx)
      return MethodCandidates(BaseIdx->All, All);
    return MethodCandidates(All);
  }

  /// Approximate heap bytes owned by this layer (the shared base is not
  /// re-counted).
  size_t memoryBytes() const;

private:
  /// The monolithic / base-layer union accessor (CSR window or memoized
  /// vector). Must not be called in overlay mode.
  Span<const MethodId> unionSpan(TypeId T) const;
  /// Overlay methods usable with an argument of base type \p T (lazy,
  /// memoized; CSR after freeze).
  Span<const MethodId> overlayAppendage(TypeId T) const;
  /// Full layered union for overlay type \p T (lazy, memoized; CSR after
  /// freeze), in monolithic BFS order.
  Span<const MethodId> overlayUnion(TypeId T) const;

  Span<const MethodId> bucketSpan(TypeId T) const {
    if (T < 0 || static_cast<size_t>(T) >= Buckets.size())
      return Empty;
    return Buckets[T];
  }

  const TypeSystem &TS;
  /// Overlay mode: the shared base index and the entity counts it covers.
  std::shared_ptr<const MethodIndex> BaseIdx;
  size_t NumBaseTypes = 0;
  /// Buckets are indexed by absolute TypeId (sized numTypes() in both
  /// modes) but hold only this layer's methods.
  std::vector<std::vector<MethodId>> Buckets;
  // Lazy (pre-freeze) union representation. Monolithic: indexed by TypeId.
  // Overlay: indexed T - NumBaseTypes (overlay types' full unions).
  mutable std::vector<std::vector<MethodId>> UnionCache;
  mutable std::vector<bool> UnionCacheValid;
  // Overlay mode only: per-base-type appendages, indexed by TypeId < NumBaseTypes.
  mutable std::vector<std::vector<MethodId>> AppCache;
  mutable std::vector<bool> AppCacheValid;
  // Frozen CSR representation: candidates of slot T are
  // UnionData[UnionOffsets[T] .. UnionOffsets[T+1]). Readers go through
  // the view pointers, which alias the owned vectors (in-process freeze)
  // or an adopted snapshot mapping pinned by KeepAlive; UOffV doubles as
  // the frozen() flag and is published last.
  mutable std::vector<MethodId> UnionData;
  mutable std::vector<uint32_t> UnionOffsets;
  mutable const MethodId *UnionV = nullptr;
  mutable const uint32_t *UOffV = nullptr;
  mutable size_t NumUnion = 0;
  mutable size_t NumTypesFrozen = 0;
  // Overlay mode only: frozen appendage CSR over base types.
  mutable std::vector<MethodId> AppData;
  mutable std::vector<uint32_t> AppOffsets;
  mutable std::shared_ptr<const void> KeepAlive;
  /// This layer's method ids in ascending order.
  std::vector<MethodId> All;
  std::vector<MethodId> Empty;
};

} // namespace petal

#endif // PETAL_INDEX_METHODINDEX_H
