//===- index/MethodIndex.h - Param-type-keyed method index ------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's method index (§4.2, Fig. 8): a map from every type to the set
/// of methods with at least one call-signature parameter (receiver included)
/// of *exactly* that type, organized so that looking up a type also walks
/// the indexes of its supertypes. Given `?({e1, e2})`, the engine looks up
/// each argument type and scans only the smallest candidate set, which is
/// "almost always orders of magnitude smaller than the set of all methods".
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_INDEX_METHODINDEX_H
#define PETAL_INDEX_METHODINDEX_H

#include "model/TypeSystem.h"
#include "support/Span.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace petal {

/// Immutable method index built over a finished TypeSystem.
///
/// The per-type supertype-union candidate lists start as lazily memoized
/// heap vectors (single-threaded fills). freeze() — called by
/// CompletionIndexes::freeze() — pre-merges every supertype chain into one
/// contiguous CSR array with per-type [UnionOffsets[T], UnionOffsets[T+1])
/// spans; afterwards every accessor is a lock-free read of immutable flat
/// storage. Like the other type-graph indexes, a frozen instance reads
/// nothing but its TypeSystem, so body-only document edits share it
/// across versions via CompletionIndexes' sharing constructor.
class MethodIndex {
public:
  explicit MethodIndex(const TypeSystem &TS);

  /// Methods with a call-signature parameter of exactly type \p T.
  Span<const MethodId> exactBucket(TypeId T) const;

  /// Methods usable with an argument of type \p T in some position: the
  /// union of the exact buckets of \p T and all its transitive supertypes
  /// (deduplicated, deterministic nearer-supertype-first order). Memoized
  /// per type; a pure flat-array read once frozen.
  Span<const MethodId> candidatesForArgType(TypeId T) const;

  /// Eagerly memoizes candidatesForArgType for every type; idempotent.
  void warmAll() const;

  /// Compacts the memoized union lists into the CSR layout (warming any
  /// still-unfilled entries first) and frees the lazy storage; idempotent.
  void freeze() const;
  bool frozen() const { return UOffV != nullptr; }

  /// The frozen CSR arrays: all pre-merged supertype-union candidate
  /// lists contiguous, and the numTypes()+1 offsets windowing them per
  /// type. Empty before freeze(). Snapshot-writer access.
  Span<const MethodId> frozenUnionData() const {
    return Span<const MethodId>(UnionV, NumUnion);
  }
  Span<const uint32_t> frozenUnionOffsets() const {
    return Span<const uint32_t>(UOffV, frozen() ? NumTypesFrozen + 1 : 0);
  }

  /// Installs externally owned CSR arrays (the snapshot loader's
  /// zero-copy path: both pointers aim into the read-only mapping
  /// \p KeepAlive pins; \p Offs holds \p NumTypes + 1 entries). The
  /// exact-bucket layer (Buckets/All) is rebuilt cheaply by the
  /// constructor from the TypeSystem; only the pre-merged unions — the
  /// O(types × supertype chain) part — come from the snapshot.
  void adoptFrozen(const MethodId *Data, size_t DataCount,
                   const uint32_t *Offs, size_t NumTypes,
                   std::shared_ptr<const void> KeepAliveHandle) const;

  /// Size of candidatesForArgType(T) without forcing full materialization
  /// cost twice (it memoizes anyway; provided for readability).
  size_t candidateCount(TypeId T) const {
    return candidatesForArgType(T).size();
  }

  /// All methods, for brute-force comparison baselines.
  const std::vector<MethodId> &allMethods() const { return All; }

private:
  const TypeSystem &TS;
  std::vector<std::vector<MethodId>> Buckets; // per TypeId
  // Lazy (pre-freeze) union representation.
  mutable std::vector<std::vector<MethodId>> UnionCache;
  mutable std::vector<bool> UnionCacheValid;
  // Frozen CSR representation: candidates of type T are
  // UnionData[UnionOffsets[T] .. UnionOffsets[T+1]). Readers go through
  // the view pointers, which alias the owned vectors (in-process freeze)
  // or an adopted snapshot mapping pinned by KeepAlive; UOffV doubles as
  // the frozen() flag and is published last.
  mutable std::vector<MethodId> UnionData;
  mutable std::vector<uint32_t> UnionOffsets;
  mutable const MethodId *UnionV = nullptr;
  mutable const uint32_t *UOffV = nullptr;
  mutable size_t NumUnion = 0;
  mutable size_t NumTypesFrozen = 0;
  mutable std::shared_ptr<const void> KeepAlive;
  std::vector<MethodId> All;
  std::vector<MethodId> Empty;
};

} // namespace petal

#endif // PETAL_INDEX_METHODINDEX_H
