//===- infer/AbstractTypes.h - Usage-based abstract type inference -*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's abstract type inference (§4.1), in the style of Lackwit
/// [O'Callahan & Jackson, ICSE'97]: an abstract-type variable is assigned to
/// every local variable, formal parameter, formal return type, and field;
/// an equality constraint is added whenever a value is assigned or used as a
/// method-call argument. All constraints are equalities on atoms, so the
/// solution is a union-find.
///
/// Special cases from the paper:
///  * methods defined on Object (ToString, GetHashCode, ...) are treated as
///    distinct methods for every receiver type, so calling ToString does not
///    merge everything;
///  * overriding methods share their parameter/return variables with the
///    base-most declaration.
///
/// The evaluation harness re-runs inference for each query site, excluding
/// the query statement and everything after it in the enclosing method (the
/// expression "does not exist yet"); constraints therefore carry their
/// origin, and solving takes an exclusion filter.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_INFER_ABSTRACTTYPES_H
#define PETAL_INFER_ABSTRACTTYPES_H

#include "code/Code.h"
#include "model/TypeSystem.h"
#include "support/Span.h"
#include "support/UnionFind.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace petal {

/// A solved abstract-type assignment: a partition of the abstract-type
/// variables into usage classes.
///
/// The forest is fully compressed at construction, so sameAbstractType()
/// performs no writes and one solution may be shared by any number of
/// concurrent query threads (BatchExecutor relies on this).
class AbsTypeSolution {
public:
  AbsTypeSolution() = default;
  explicit AbsTypeSolution(UnionFind UF) : UF(std::move(UF)) {
    this->UF.compress();
  }

  /// Reconstructs a solution from a serialized parent array (the snapshot
  /// store's whole-corpus solution section). The caller must have validated
  /// every entry is < Parents.size(); the constructor re-compresses, so the
  /// no-writes-in-find invariant holds regardless of how flat the stored
  /// forest was.
  explicit AbsTypeSolution(std::vector<uint32_t> Parents)
      : UF(std::move(Parents)) {
    UF.compress();
  }

  /// The fully compressed parent array (what the snapshot store persists).
  Span<const uint32_t> parents() const { return UF.parents(); }

  /// True if both variables exist and were unified. Per the paper's note on
  /// Fig. 7, two "undefined" abstract types are NOT considered equal, so any
  /// missing variable compares unequal.
  bool sameAbstractType(uint32_t A, uint32_t B) const;

  size_t numClasses() const { return UF.numSets(); }

private:
  UnionFind UF;
};

/// Builds abstract-type variables and equality constraints for a whole
/// program, and solves them (optionally excluding a suffix of one method).
///
/// In overlay mode (base/overlay workspace, DESIGN.md §14) the object
/// harvests only the document's methods: variable numbering continues
/// after the shared base inference's (base entities keep their base
/// variables), declaration slots and field variables of base entities
/// forward to the base inference, and solving extends the frozen base
/// solution with the local constraints instead of replaying the base
/// corpus's constraint set.
class AbstractTypeInference {
public:
  /// Sentinel for "no abstract-type variable" (literals, don't-cares,
  /// unseen Object-method specializations).
  static constexpr uint32_t NoVar = 0xFFFFFFFFu;

  /// Harvests variables and constraints from \p P. The program must outlive
  /// this object.
  explicit AbstractTypeInference(const Program &P);

  /// Overlay constructor: \p P holds only the document's classes, resolved
  /// against the base layer; \p BaseInferIn / \p BaseSolutionIn are the
  /// shared base inference and its fully-solved partition. Both must
  /// outlive this object.
  AbstractTypeInference(const Program &P,
                        std::shared_ptr<const AbstractTypeInference> BaseInferIn,
                        std::shared_ptr<const AbsTypeSolution> BaseSolutionIn);

  /// Solves with every constraint included.
  AbsTypeSolution solve() const;

  /// Solves excluding constraints originating from statements
  /// [FromStmt, end) of \p M — the evaluation's "the query expression and
  /// everything after it do not exist yet" rule (§5).
  AbsTypeSolution solveExcluding(const CodeMethod *M, size_t FromStmt) const;

  /// The abstract-type variable of expression \p E occurring in method
  /// \p Ctx; NoVar when the expression has none (literals, comparisons,
  /// don't-cares).
  uint32_t varOfExpr(const Expr *E, const CodeMethod *Ctx) const;

  /// The variable of call-signature parameter \p CallParamIdx of \p M
  /// (index 0 of an instance method is the receiver). \p ReceiverTy selects
  /// the per-type specialization for methods declared on Object; pass the
  /// static receiver type (or InvalidId when unknown).
  uint32_t varOfCallParam(MethodId M, size_t CallParamIdx,
                          TypeId ReceiverTy) const;

  /// The variable of the return value of \p M (same Object-method rule).
  uint32_t varOfReturn(MethodId M, TypeId ReceiverTy) const;

  size_t numVars() const { return NumVars; }
  size_t numConstraints() const { return Constraints.size(); }

  /// The base-most declaration that \p M overrides (or \p M itself).
  MethodId baseDeclaration(MethodId M) const {
    if (static_cast<size_t>(M) < NumBaseMethods)
      return BaseInfer->baseDeclaration(M);
    return BaseDecl[M - NumBaseMethods];
  }

  /// Approximate heap bytes owned by this layer (the shared base is not
  /// re-counted).
  size_t memoryBytes() const;

private:
  struct MethodSlots {
    uint32_t Receiver = NoVar;
    std::vector<uint32_t> Params;
    uint32_t Return = NoVar;
  };

  struct Constraint {
    uint32_t A;
    uint32_t B;
    const CodeMethod *Origin;
    uint32_t StmtIndex;
  };

  uint32_t freshVar() { return NumVars++; }

  /// Slots of \p M resolved through baseDeclaration(), with the
  /// Object-method specialization applied for \p ReceiverTy (base-layer
  /// specializations win; a document cannot re-specialize a pair the base
  /// corpus already materialized). Null if no slots exist (e.g. an
  /// Object-method specialization never materialized).
  const MethodSlots *slotsFor(MethodId M, TypeId ReceiverTy) const;
  const MethodSlots &materializeSlots(MethodId M, TypeId ReceiverTy);

  /// The abstract-type variable of field \p F, in whichever layer owns it.
  uint32_t fieldVar(FieldId F) const {
    if (static_cast<size_t>(F) < NumBaseFields)
      return BaseInfer->fieldVar(F);
    return FieldVars[F - NumBaseFields];
  }

  /// The starting union-find for a solve: empty (monolithic) or a copy of
  /// the solved base partition grown to numVars() (overlay).
  UnionFind seedForest() const;

  void computeBaseDecls();
  void allocateDeclaredSlots();
  void harvestMethod(const CodeMethod &CM);
  void addConstraint(uint32_t A, uint32_t B, const CodeMethod *Origin,
                     uint32_t StmtIndex);

  /// Walks \p E, emits constraints for calls/assignments inside it, and
  /// returns its variable (NoVar if none).
  uint32_t harvestExpr(const Expr *E, const CodeMethod &CM,
                       uint32_t StmtIndex);

  const Program &P;
  const TypeSystem &TS;
  /// Overlay mode: the shared base inference/solution and the entity counts
  /// they cover. The per-entity vectors below are indexed by
  /// id - NumBase{Methods,Fields} (0 in monolithic mode).
  std::shared_ptr<const AbstractTypeInference> BaseInfer;
  std::shared_ptr<const AbsTypeSolution> BaseSolution;
  size_t NumBaseMethods = 0;
  size_t NumBaseFields = 0;
  /// Total variable count; overlay numbering starts at the base's numVars()
  /// so base variables keep their ids.
  uint32_t NumVars = 0;

  std::vector<MethodId> BaseDecl;     // per local MethodId
  std::vector<MethodSlots> DeclSlots; // per local MethodId (base decls only)
  std::vector<bool> HasDeclSlots;     // per local MethodId
  std::vector<uint32_t> FieldVars;    // per local FieldId
  std::unordered_map<const CodeMethod *, std::vector<uint32_t>> LocalVars;
  /// Object-declared methods: (base decl, receiver type) -> slots. Holds
  /// only this layer's specializations; lookups consult the base map first.
  std::unordered_map<uint64_t, MethodSlots> ObjectMethodSlots;
  /// This layer's constraints only; the base corpus's constraints are
  /// already folded into BaseSolution.
  std::vector<Constraint> Constraints;
};

} // namespace petal

#endif // PETAL_INFER_ABSTRACTTYPES_H
