//===- infer/AbstractTypes.cpp - Usage-based abstract type inference ------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "infer/AbstractTypes.h"

#include <cassert>

using namespace petal;

bool AbsTypeSolution::sameAbstractType(uint32_t A, uint32_t B) const {
  if (A == AbstractTypeInference::NoVar || B == AbstractTypeInference::NoVar)
    return false;
  if (A >= UF.size() || B >= UF.size())
    return false;
  return UF.connected(A, B);
}

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

AbstractTypeInference::AbstractTypeInference(const Program &P)
    : P(P), TS(P.typeSystem()) {
  computeBaseDecls();
  allocateDeclaredSlots();
  for (const auto &C : P.classes())
    for (const auto &M : C->methods())
      harvestMethod(*M);
}

AbstractTypeInference::AbstractTypeInference(
    const Program &P, std::shared_ptr<const AbstractTypeInference> BaseInferIn,
    std::shared_ptr<const AbsTypeSolution> BaseSolutionIn)
    : P(P), TS(P.typeSystem()), BaseInfer(std::move(BaseInferIn)),
      BaseSolution(std::move(BaseSolutionIn)),
      NumBaseMethods(TS.numBaseMethods()), NumBaseFields(TS.numBaseFields()),
      NumVars(static_cast<uint32_t>(BaseInfer->numVars())) {
  assert(BaseInfer && BaseSolution &&
         "overlay constructor requires the base inference and its solution");
  computeBaseDecls();
  allocateDeclaredSlots();
  for (const auto &C : P.classes())
    for (const auto &M : C->methods())
      harvestMethod(*M);
}

/// True if \p Derived overrides \p Base (same name, parameter types, and
/// staticness; static methods never override but hiding shares no slots, so
/// require instance).
static bool overrides(const TypeSystem &TS, const MethodInfo &Derived,
                      const MethodInfo &Base) {
  if (Derived.IsStatic || Base.IsStatic)
    return false;
  if (Derived.Name != Base.Name ||
      Derived.Params.size() != Base.Params.size())
    return false;
  for (size_t I = 0; I != Derived.Params.size(); ++I)
    if (Derived.Params[I].Type != Base.Params[I].Type)
      return false;
  (void)TS;
  return true;
}

void AbstractTypeInference::computeBaseDecls() {
  // Overlay: only the local methods get entries; a base method's base-most
  // declaration is whatever the base inference computed. An overlay method
  // overriding a base method records the *base* method id here, which is
  // how its call sites share the base declaration's variables.
  BaseDecl.resize(TS.numMethods() - NumBaseMethods);
  for (size_t M = NumBaseMethods; M != TS.numMethods(); ++M) {
    MethodId Id = static_cast<MethodId>(M);
    const MethodInfo &MI = TS.method(Id);
    MethodId Top = Id;
    // Walk the base-class chain upward; the highest matching declaration
    // wins, so overriding methods share its variables.
    TypeId Cur = TS.type(MI.Owner).BaseClass;
    while (isValidId(Cur)) {
      for (MethodId BM : TS.type(Cur).Methods)
        if (overrides(TS, MI, TS.method(BM)))
          Top = BM;
      Cur = TS.type(Cur).BaseClass;
    }
    BaseDecl[M - NumBaseMethods] = Top;
  }
}

void AbstractTypeInference::allocateDeclaredSlots() {
  size_t NumLocal = TS.numMethods() - NumBaseMethods;
  DeclSlots.resize(NumLocal);
  HasDeclSlots.assign(NumLocal, false);
  for (size_t M = NumBaseMethods; M != TS.numMethods(); ++M) {
    MethodId Id = static_cast<MethodId>(M);
    if (baseDeclaration(Id) != Id)
      continue; // shares the base declaration's slots
    const MethodInfo &MI = TS.method(Id);
    if (MI.Owner == TS.objectType())
      continue; // per-receiver-type slots, allocated lazily
    MethodSlots &S = DeclSlots[M - NumBaseMethods];
    if (!MI.IsStatic)
      S.Receiver = freshVar();
    S.Params.resize(MI.Params.size());
    for (uint32_t &V : S.Params)
      V = freshVar();
    S.Return = freshVar();
    HasDeclSlots[M - NumBaseMethods] = true;
  }

  FieldVars.resize(TS.numFields() - NumBaseFields);
  for (uint32_t &V : FieldVars)
    V = freshVar();
}

const AbstractTypeInference::MethodSlots *
AbstractTypeInference::slotsFor(MethodId M, TypeId ReceiverTy) const {
  MethodId Base = baseDeclaration(M);
  const MethodInfo &MI = TS.method(Base);
  if (MI.Owner == TS.objectType()) {
    if (!isValidId(ReceiverTy))
      return nullptr;
    uint64_t Key = (static_cast<uint64_t>(Base) << 32) |
                   static_cast<uint32_t>(ReceiverTy);
    if (BaseInfer) {
      auto BIt = BaseInfer->ObjectMethodSlots.find(Key);
      if (BIt != BaseInfer->ObjectMethodSlots.end())
        return &BIt->second;
    }
    auto It = ObjectMethodSlots.find(Key);
    return It == ObjectMethodSlots.end() ? nullptr : &It->second;
  }
  if (static_cast<size_t>(Base) < NumBaseMethods)
    return BaseInfer->slotsFor(Base, ReceiverTy);
  size_t Slot = static_cast<size_t>(Base) - NumBaseMethods;
  return HasDeclSlots[Slot] ? &DeclSlots[Slot] : nullptr;
}

const AbstractTypeInference::MethodSlots &
AbstractTypeInference::materializeSlots(MethodId M, TypeId ReceiverTy) {
  MethodId Base = baseDeclaration(M);
  const MethodInfo &MI = TS.method(Base);
  assert(MI.Owner == TS.objectType() &&
         "materializeSlots is only for Object-declared methods");
  uint64_t Key = (static_cast<uint64_t>(Base) << 32) |
                 static_cast<uint32_t>(ReceiverTy);
  // A specialization the base corpus already materialized is shared, not
  // shadowed — the document's call sites must unify with the base's uses.
  if (BaseInfer) {
    auto BIt = BaseInfer->ObjectMethodSlots.find(Key);
    if (BIt != BaseInfer->ObjectMethodSlots.end())
      return BIt->second;
  }
  auto It = ObjectMethodSlots.find(Key);
  if (It != ObjectMethodSlots.end())
    return It->second;
  MethodSlots S;
  if (!MI.IsStatic)
    S.Receiver = freshVar();
  S.Params.resize(MI.Params.size());
  for (uint32_t &V : S.Params)
    V = freshVar();
  S.Return = freshVar();
  return ObjectMethodSlots.emplace(Key, std::move(S)).first->second;
}

//===----------------------------------------------------------------------===//
// Constraint harvesting
//===----------------------------------------------------------------------===//

void AbstractTypeInference::addConstraint(uint32_t A, uint32_t B,
                                          const CodeMethod *Origin,
                                          uint32_t StmtIndex) {
  if (A == NoVar || B == NoVar || A == B)
    return;
  Constraints.push_back({A, B, Origin, StmtIndex});
}

void AbstractTypeInference::harvestMethod(const CodeMethod &CM) {
  // One variable per local (parameters included). Parameters additionally
  // unify with the declaration's parameter slots so that call sites and the
  // body see the same abstract types.
  std::vector<uint32_t> &Vars = LocalVars[&CM];
  Vars.resize(CM.locals().size());
  for (uint32_t &V : Vars)
    V = freshVar();

  const MethodInfo &MI = TS.method(CM.decl());
  const MethodSlots *S = slotsFor(CM.decl(), MI.Owner);
  if (!S && TS.method(baseDeclaration(CM.decl())).Owner == TS.objectType())
    S = &materializeSlots(CM.decl(), MI.Owner);
  if (S) {
    size_t ParamIdx = 0;
    for (size_t L = 0; L != CM.locals().size(); ++L) {
      if (!CM.locals()[L].IsParam)
        continue;
      if (ParamIdx < S->Params.size())
        addConstraint(Vars[L], S->Params[ParamIdx], &CM, 0);
      ++ParamIdx;
    }
  }

  for (size_t SI = 0; SI != CM.body().size(); ++SI) {
    const Stmt &St = CM.body()[SI];
    uint32_t Idx = static_cast<uint32_t>(SI);
    switch (St.Kind) {
    case StmtKind::LocalDecl: {
      uint32_t Init = harvestExpr(St.Value, CM, Idx);
      addConstraint(Vars[St.LocalSlot], Init, &CM, Idx);
      break;
    }
    case StmtKind::ExprStmt:
      harvestExpr(St.Value, CM, Idx);
      break;
    case StmtKind::Return: {
      if (!St.Value)
        break;
      uint32_t V = harvestExpr(St.Value, CM, Idx);
      const MethodSlots *Slots = slotsFor(CM.decl(), MI.Owner);
      if (Slots)
        addConstraint(Slots->Return, V, &CM, Idx);
      break;
    }
    }
  }
}

uint32_t AbstractTypeInference::harvestExpr(const Expr *E,
                                            const CodeMethod &CM,
                                            uint32_t StmtIndex) {
  switch (E->kind()) {
  case ExprKind::Var:
    return LocalVars.find(&CM)->second[cast<VarExpr>(E)->slot()];

  case ExprKind::This: {
    const MethodSlots *S = slotsFor(CM.decl(), TS.method(CM.decl()).Owner);
    return S ? S->Receiver : NoVar;
  }

  case ExprKind::TypeRef:
    return NoVar;

  case ExprKind::FieldAccess: {
    const auto *FA = cast<FieldAccessExpr>(E);
    harvestExpr(FA->base(), CM, StmtIndex);
    return fieldVar(FA->field());
  }

  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(E);
    MethodId Callee = C->method();
    TypeId RecvTy = C->receiver() && isValidId(C->receiver()->type())
                        ? C->receiver()->type()
                        : TS.method(Callee).Owner;
    // Materialize Object-method specializations on first use.
    const MethodSlots *S;
    if (TS.method(baseDeclaration(Callee)).Owner == TS.objectType())
      S = &materializeSlots(Callee, RecvTy);
    else
      S = slotsFor(Callee, RecvTy);

    if (C->receiver()) {
      uint32_t RV = harvestExpr(C->receiver(), CM, StmtIndex);
      if (S)
        addConstraint(S->Receiver, RV, &CM, StmtIndex);
    }
    for (size_t I = 0; I != C->args().size(); ++I) {
      uint32_t AV = harvestExpr(C->args()[I], CM, StmtIndex);
      if (S && I < S->Params.size())
        addConstraint(S->Params[I], AV, &CM, StmtIndex);
    }
    return S ? S->Return : NoVar;
  }

  case ExprKind::Literal:
  case ExprKind::DontCare:
    return NoVar;

  case ExprKind::Compare: {
    const auto *C = cast<CompareExpr>(E);
    harvestExpr(C->lhs(), CM, StmtIndex);
    harvestExpr(C->rhs(), CM, StmtIndex);
    // The paper adds constraints for assignments and call arguments only;
    // comparisons contribute none.
    return NoVar;
  }

  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    uint32_t L = harvestExpr(A->lhs(), CM, StmtIndex);
    uint32_t R = harvestExpr(A->rhs(), CM, StmtIndex);
    addConstraint(L, R, &CM, StmtIndex);
    return L;
  }
  }
  return NoVar;
}

//===----------------------------------------------------------------------===//
// Solving and lookup
//===----------------------------------------------------------------------===//

/// The starting forest for a solve: empty in monolithic mode; in overlay
/// mode, a copy of the solved base partition grown to the full variable
/// count. Extending the base solution is equivalent to replaying the base
/// corpus's constraints (union-find is order-insensitive) and costs O(base
/// vars) instead of O(base constraints). The exclusion filter only ever
/// names document methods — the base source has no query sites — so base
/// constraints are never filtered and folding them in is always sound.
UnionFind AbstractTypeInference::seedForest() const {
  if (!BaseInfer)
    return UnionFind(NumVars);
  Span<const uint32_t> Parents = BaseSolution->parents();
  UnionFind UF(std::vector<uint32_t>(Parents.begin(), Parents.end()));
  UF.grow(NumVars);
  return UF;
}

AbsTypeSolution AbstractTypeInference::solve() const {
  UnionFind UF = seedForest();
  for (const Constraint &C : Constraints)
    UF.unite(C.A, C.B);
  return AbsTypeSolution(std::move(UF));
}

AbsTypeSolution AbstractTypeInference::solveExcluding(const CodeMethod *M,
                                                      size_t FromStmt) const {
  UnionFind UF = seedForest();
  for (const Constraint &C : Constraints) {
    if (C.Origin == M && C.StmtIndex >= FromStmt)
      continue;
    UF.unite(C.A, C.B);
  }
  return AbsTypeSolution(std::move(UF));
}

uint32_t AbstractTypeInference::varOfExpr(const Expr *E,
                                          const CodeMethod *Ctx) const {
  switch (E->kind()) {
  case ExprKind::Var: {
    auto It = LocalVars.find(Ctx);
    if (It == LocalVars.end())
      return NoVar;
    unsigned Slot = cast<VarExpr>(E)->slot();
    return Slot < It->second.size() ? It->second[Slot] : NoVar;
  }
  case ExprKind::This: {
    if (!Ctx)
      return NoVar;
    const MethodSlots *S =
        slotsFor(Ctx->decl(), TS.method(Ctx->decl()).Owner);
    return S ? S->Receiver : NoVar;
  }
  case ExprKind::FieldAccess:
    return fieldVar(cast<FieldAccessExpr>(E)->field());
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(E);
    TypeId RecvTy = C->receiver() && isValidId(C->receiver()->type())
                        ? C->receiver()->type()
                        : TS.method(C->method()).Owner;
    return varOfReturn(C->method(), RecvTy);
  }
  default:
    return NoVar;
  }
}

uint32_t AbstractTypeInference::varOfCallParam(MethodId M, size_t CallParamIdx,
                                               TypeId ReceiverTy) const {
  const MethodSlots *S = slotsFor(M, ReceiverTy);
  if (!S)
    return NoVar;
  const MethodInfo &MI = TS.method(M);
  if (!MI.IsStatic) {
    if (CallParamIdx == 0)
      return S->Receiver;
    --CallParamIdx;
  }
  return CallParamIdx < S->Params.size() ? S->Params[CallParamIdx] : NoVar;
}

uint32_t AbstractTypeInference::varOfReturn(MethodId M,
                                            TypeId ReceiverTy) const {
  const MethodSlots *S = slotsFor(M, ReceiverTy);
  return S ? S->Return : NoVar;
}

size_t AbstractTypeInference::memoryBytes() const {
  size_t Bytes = BaseDecl.capacity() * sizeof(MethodId) +
                 DeclSlots.capacity() * sizeof(MethodSlots) +
                 HasDeclSlots.capacity() / 8 +
                 FieldVars.capacity() * sizeof(uint32_t) +
                 Constraints.capacity() * sizeof(Constraint);
  for (const MethodSlots &S : DeclSlots)
    Bytes += S.Params.capacity() * sizeof(uint32_t);
  for (const auto &[CM, Vars] : LocalVars)
    Bytes += sizeof(void *) * 2 + Vars.capacity() * sizeof(uint32_t);
  for (const auto &[Key, S] : ObjectMethodSlots)
    Bytes += sizeof(uint64_t) + sizeof(MethodSlots) +
             S.Params.capacity() * sizeof(uint32_t);
  return Bytes;
}
