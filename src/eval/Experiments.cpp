//===- eval/Experiments.cpp - The paper's experiment drivers --------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"

#include "eval/Intellisense.h"

#include <algorithm>
#include <chrono>
#include <functional>

using namespace petal;

double LatencyData::fracUnder(double Ms) const {
  if (Millis.empty())
    return 0.0;
  size_t N = 0;
  for (double M : Millis)
    if (M < Ms)
      ++N;
  return static_cast<double>(N) / static_cast<double>(Millis.size());
}

double LatencyData::percentile(double P) const {
  if (Millis.empty())
    return 0.0;
  std::vector<double> Sorted = Millis;
  std::sort(Sorted.begin(), Sorted.end());
  double Idx = P / 100.0 * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Idx);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Idx - static_cast<double>(Lo);
  return Sorted[Lo] * (1 - Frac) + Sorted[Hi] * Frac;
}

Evaluator::Evaluator(Program &P, CompletionIndexes &Idx, RankingOptions Opts,
                     size_t SearchLimit)
    : P(P), TS(P.typeSystem()), Idx(Idx), Engine(P, Idx), Opts(Opts),
      SearchLimit(SearchLimit), Sites(harvestProgram(P)) {}

const AbsTypeSolution *Evaluator::solutionFor(const CodeSite &Site) {
  if (!Opts.UseAbstractTypes)
    return nullptr;
  auto &PerMethod = SolutionCache[Site.Method];
  auto It = PerMethod.find(Site.StmtIndex);
  if (It == PerMethod.end())
    It = PerMethod
             .emplace(Site.StmtIndex,
                      Idx.Infer.solveExcluding(Site.Method, Site.StmtIndex))
             .first;
  return &It->second;
}

size_t Evaluator::rankWhere(const PartialExpr *Query, const CodeSite &Site,
                            const std::function<bool(const Expr *)> &Match,
                            TypeId ExpectedType) {
  CompletionOptions CO;
  CO.Rank = Opts;
  CO.ExpectedType = ExpectedType;
  const AbsTypeSolution *Sol = solutionFor(Site);

  auto Start = std::chrono::steady_clock::now();
  std::vector<Completion> Results =
      Engine.complete(Query, Site, SearchLimit, CO, Sol);
  auto End = std::chrono::steady_clock::now();
  Latency.add(std::chrono::duration<double, std::milli>(End - Start).count());

  for (size_t I = 0; I != Results.size(); ++I)
    if (Match(Results[I].E))
      return I + 1;
  return 0;
}

std::vector<const Expr *>
Evaluator::callSignatureArgs(const CallExpr *Call) const {
  std::vector<const Expr *> Args;
  if (Call->receiver())
    Args.push_back(Call->receiver());
  Args.insert(Args.end(), Call->args().begin(), Call->args().end());
  return Args;
}

//===----------------------------------------------------------------------===//
// §5.1 Predicting method names
//===----------------------------------------------------------------------===//

MethodPredictionData Evaluator::runMethodPrediction(bool WithIntellisense,
                                                    bool WithKnownReturn) {
  MethodPredictionData Data;
  Arena &A = P.arena();

  for (const CallSiteInfo &CS : Sites.Calls) {
    std::vector<const Expr *> Args = callSignatureArgs(CS.Call);
    std::vector<const Expr *> Guessable;
    for (const Expr *Arg : Args)
      if (isGuessableExpr(Arg))
        Guessable.push_back(Arg);
    if (Guessable.empty()) {
      ++Data.SkippedNoGuessableArgs;
      continue;
    }
    if (Guessable.size() > 6)
      Guessable.resize(6); // cap the subset search

    MethodId Target = CS.Call->method();
    auto MatchMethod = [Target](const Expr *E) {
      const auto *C = dyn_cast<CallExpr>(E);
      return C && C->method() == Target;
    };

    // All argument subsets of size 1 and 2 (the paper: "giving one or two
    // of the call's arguments"); keep the best rank per size class.
    auto QueryWith =
        [&](std::vector<const Expr *> Subset, TypeId Expected) -> size_t {
      std::vector<const PartialExpr *> PEArgs;
      for (const Expr *E : Subset)
        PEArgs.push_back(A.create<ConcretePE>(E));
      const PartialExpr *Q = A.create<UnknownCallPE>(std::move(PEArgs));
      return rankWhere(Q, CS.Site, MatchMethod, Expected);
    };

    size_t Best1 = 0, Best2 = 0;
    auto Improve = [](size_t &Best, size_t Rank) {
      if (Rank != 0 && (Best == 0 || Rank < Best))
        Best = Rank;
    };
    for (size_t I = 0; I != Guessable.size(); ++I)
      Improve(Best1, QueryWith({Guessable[I]}, InvalidId));
    for (size_t I = 0; I != Guessable.size(); ++I)
      for (size_t J = I + 1; J != Guessable.size(); ++J)
        Improve(Best2, QueryWith({Guessable[I], Guessable[J]}, InvalidId));
    size_t Best = Best1;
    Improve(Best, Best2);

    Data.Best.add(Best);
    if (TS.method(Target).IsStatic)
      Data.Static.add(Best);
    else
      Data.Instance.add(Best);

    ArityStats &AS = Data.ByArity[Args.size()];
    ++AS.Calls;
    AS.SolvedWith1 += Best1 >= 1 && Best1 <= 20;
    AS.SolvedWith2 += Best >= 1 && Best <= 20;

    if (WithIntellisense) {
      size_t Ours = Best == 0 ? SearchLimit + 1 : Best;
      size_t Intelli = intellisenseRank(TS, CS.Call);
      Data.RankDiff.push_back(static_cast<long>(Ours) -
                              static_cast<long>(Intelli));
    }

    if (WithKnownReturn) {
      TypeId Expected = TS.method(Target).ReturnType;
      size_t BestRet = 0;
      for (size_t I = 0; I != Guessable.size(); ++I)
        Improve(BestRet, QueryWith({Guessable[I]}, Expected));
      for (size_t I = 0; I != Guessable.size(); ++I)
        for (size_t J = I + 1; J != Guessable.size(); ++J)
          Improve(BestRet, QueryWith({Guessable[I], Guessable[J]}, Expected));
      Data.BestKnownReturn.add(BestRet);
      if (WithIntellisense) {
        size_t Ours = BestRet == 0 ? SearchLimit + 1 : BestRet;
        size_t Intelli = intellisenseRank(TS, CS.Call);
        Data.RankDiffKnownReturn.push_back(static_cast<long>(Ours) -
                                           static_cast<long>(Intelli));
      }
    }
  }
  return Data;
}

//===----------------------------------------------------------------------===//
// §5.2 Predicting method arguments
//===----------------------------------------------------------------------===//

ArgumentPredictionData Evaluator::runArgumentPrediction() {
  ArgumentPredictionData Data;
  Arena &A = P.arena();

  for (const CallSiteInfo &CS : Sites.Calls) {
    std::vector<const Expr *> Args = callSignatureArgs(CS.Call);
    const Expr *Original = CS.Call;
    for (size_t Pos = 0; Pos != Args.size(); ++Pos) {
      ++Data.TotalArgs;
      ExprForm Form = classifyExprForm(Args[Pos]);
      ++Data.FormCounts[static_cast<size_t>(Form)];
      if (Form == ExprForm::NotGuessable) {
        ++Data.NotGuessable;
        continue;
      }

      // Replace this argument with `?`; the method name (and hence the
      // overload set) is known.
      std::vector<const PartialExpr *> PEArgs;
      for (size_t I = 0; I != Args.size(); ++I) {
        if (I == Pos)
          PEArgs.push_back(A.create<HolePE>());
        else
          PEArgs.push_back(A.create<ConcretePE>(Args[I]));
      }
      const MethodInfo &MI = TS.method(CS.Call->method());
      const PartialExpr *Q = A.create<KnownCallPE>(
          MI.Name, std::move(PEArgs), std::vector<MethodId>{CS.Call->method()});

      size_t Rank = rankWhere(
          Q, CS.Site,
          [&](const Expr *E) { return exprEquals(E, Original); });
      Data.All.add(Rank);
      if (!isa<VarExpr>(Args[Pos]) && !isa<ThisExpr>(Args[Pos]))
        Data.NoVars.add(Rank);
    }
  }
  return Data;
}

//===----------------------------------------------------------------------===//
// §5.3 Predicting field lookups
//===----------------------------------------------------------------------===//

/// Strips \p N trailing lookups (field accesses or nullary calls) from the
/// spine of \p E; null when the expression does not end in N strippable
/// lookups over a value base.
static const Expr *stripLookups(const Expr *E, int N) {
  while (N-- > 0) {
    const Expr *Base = nullptr;
    if (const auto *FA = dyn_cast<FieldAccessExpr>(E))
      Base = FA->base();
    else if (const auto *C = dyn_cast<CallExpr>(E);
             C && C->args().empty() && C->receiver())
      Base = C->receiver();
    if (!Base || isa<TypeRefExpr>(Base))
      return nullptr; // not a strippable lookup / static access root
    E = Base;
  }
  return E;
}

AssignmentData Evaluator::runAssignments() {
  AssignmentData Data;
  Arena &A = P.arena();

  auto Query = [&](const CodeSite &Site, const Expr *Lhs, const Expr *Rhs,
                   const Expr *Original) {
    // ".?m added to the end of both sides" (§5.3).
    const PartialExpr *L = A.create<SuffixPE>(A.create<ConcretePE>(Lhs),
                                              SuffixKind::Member);
    const PartialExpr *R = A.create<SuffixPE>(A.create<ConcretePE>(Rhs),
                                              SuffixKind::Member);
    const PartialExpr *Q = A.create<AssignPE>(L, R);
    return rankWhere(Q, Site,
                     [&](const Expr *E) { return exprEquals(E, Original); });
  };

  for (const AssignSiteInfo &AS : Sites.Assigns) {
    const Expr *Lhs = AS.Assign->lhs();
    const Expr *Rhs = AS.Assign->rhs();
    const Expr *LhsBase = stripLookups(Lhs, 1);
    const Expr *RhsBase = stripLookups(Rhs, 1);

    if (LhsBase)
      Data.Target.add(Query(AS.Site, LhsBase, Rhs, AS.Assign));
    if (RhsBase)
      Data.Source.add(Query(AS.Site, Lhs, RhsBase, AS.Assign));
    if (LhsBase && RhsBase)
      Data.Both.add(Query(AS.Site, LhsBase, RhsBase, AS.Assign));
  }
  return Data;
}

ComparisonData Evaluator::runComparisons() {
  ComparisonData Data;
  Arena &A = P.arena();

  auto Query = [&](const CodeSite &Site, CompareOp Op, const Expr *Lhs,
                   const Expr *Rhs, const Expr *Original) {
    // ".?m.?m added to the end of both sides" (§5.3).
    auto Wrap = [&](const Expr *E) -> const PartialExpr * {
      const PartialExpr *P0 = A.create<ConcretePE>(E);
      const PartialExpr *P1 = A.create<SuffixPE>(P0, SuffixKind::Member);
      return A.create<SuffixPE>(P1, SuffixKind::Member);
    };
    const PartialExpr *Q = A.create<ComparePE>(Op, Wrap(Lhs), Wrap(Rhs));
    return rankWhere(Q, Site,
                     [&](const Expr *E) { return exprEquals(E, Original); });
  };

  for (const CompareSiteInfo &CS : Sites.Compares) {
    const Expr *Lhs = CS.Compare->lhs();
    const Expr *Rhs = CS.Compare->rhs();
    CompareOp Op = CS.Compare->op();

    const Expr *L1 = stripLookups(Lhs, 1);
    const Expr *R1 = stripLookups(Rhs, 1);
    const Expr *L2 = stripLookups(Lhs, 2);
    const Expr *R2 = stripLookups(Rhs, 2);

    if (L1)
      Data.Left.add(Query(CS.Site, Op, L1, Rhs, CS.Compare));
    if (R1)
      Data.Right.add(Query(CS.Site, Op, Lhs, R1, CS.Compare));
    if (L1 && R1)
      Data.Both.add(Query(CS.Site, Op, L1, R1, CS.Compare));
    if (L2)
      Data.TwoLeft.add(Query(CS.Site, Op, L2, Rhs, CS.Compare));
    if (R2)
      Data.TwoRight.add(Query(CS.Site, Op, Lhs, R2, CS.Compare));
  }
  return Data;
}
