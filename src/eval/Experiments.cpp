//===- eval/Experiments.cpp - The paper's experiment drivers --------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"

#include "eval/Intellisense.h"

#include <algorithm>
#include <chrono>
#include <functional>

using namespace petal;

double LatencyData::fracUnder(double Ms) const {
  if (Millis.empty())
    return 0.0;
  size_t N = 0;
  for (double M : Millis)
    if (M < Ms)
      ++N;
  return static_cast<double>(N) / static_cast<double>(Millis.size());
}

double LatencyData::percentile(double P) const {
  if (Millis.empty())
    return 0.0;
  std::vector<double> Sorted = Millis;
  std::sort(Sorted.begin(), Sorted.end());
  double Idx = P / 100.0 * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Idx);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Idx - static_cast<double>(Lo);
  return Sorted[Lo] * (1 - Frac) + Sorted[Hi] * Frac;
}

Evaluator::Evaluator(Program &P, CompletionIndexes &Idx, RankingOptions Opts,
                     size_t SearchLimit, size_t Threads)
    : P(P), TS(P.typeSystem()), Idx(Idx), Opts(Opts),
      SearchLimit(SearchLimit), Batch(P, Idx, Threads),
      Sites(harvestProgram(P)) {}

void Evaluator::prepareSolutions(const std::vector<CodeSite> &SiteList) {
  if (!Opts.UseAbstractTypes)
    return;
  // Reserve a slot per distinct (method, statement) site serially, then
  // solve the missing ones in parallel: solveExcluding only reads the
  // inference, and each task writes its own pre-inserted slot, so no map
  // node is created or moved during the fan-out.
  std::vector<std::pair<const CodeMethod *, size_t>> Missing;
  for (const CodeSite &S : SiteList)
    if (SolutionCache[S.Method].emplace(S.StmtIndex, AbsTypeSolution()).second)
      Missing.push_back({S.Method, S.StmtIndex});
  Batch.pool().parallelFor(Missing.size(), [&](size_t I, size_t) {
    auto [Method, Stmt] = Missing[I];
    SolutionCache.find(Method)->second.find(Stmt)->second =
        Idx.Infer.solveExcluding(Method, Stmt);
  });
}

const AbsTypeSolution *Evaluator::solutionFor(const CodeSite &Site) const {
  if (!Opts.UseAbstractTypes)
    return nullptr;
  auto MIt = SolutionCache.find(Site.Method);
  assert(MIt != SolutionCache.end() && "site not covered by prepareSolutions");
  auto It = MIt->second.find(Site.StmtIndex);
  assert(It != MIt->second.end() && "site not covered by prepareSolutions");
  return &It->second;
}

size_t Evaluator::rankWhere(QueryCtx &Q, const PartialExpr *Query,
                            const CodeSite &Site,
                            const std::function<bool(const Expr *)> &Match,
                            TypeId ExpectedType) const {
  CompletionOptions CO;
  CO.Rank = Opts;
  CO.ExpectedType = ExpectedType;
  const AbsTypeSolution *Sol = solutionFor(Site);

  auto Start = std::chrono::steady_clock::now();
  std::vector<Completion> Results =
      Q.Engine.complete(Query, Site, SearchLimit, CO, Sol);
  auto End = std::chrono::steady_clock::now();
  Q.Lat.push_back(
      std::chrono::duration<double, std::milli>(End - Start).count());

  for (size_t I = 0; I != Results.size(); ++I)
    if (Match(Results[I].E))
      return I + 1;
  return 0;
}

std::vector<const Expr *>
Evaluator::callSignatureArgs(const CallExpr *Call) const {
  std::vector<const Expr *> Args;
  if (Call->receiver())
    Args.push_back(Call->receiver());
  Args.insert(Args.end(), Call->args().begin(), Call->args().end());
  return Args;
}

//===----------------------------------------------------------------------===//
// §5.1 Predicting method names
//===----------------------------------------------------------------------===//

namespace {
/// Per-call-site outcome of the §5.1 trial fan-out, folded into
/// MethodPredictionData in input order afterwards.
struct CallTrial {
  bool Skipped = false; ///< no guessable argument
  size_t NumArgs = 0;
  size_t Best1 = 0, Best2 = 0, BestRet = 0;
  size_t IntelliRank = 0;
  std::vector<double> Lat;
};
} // namespace

MethodPredictionData Evaluator::runMethodPrediction(bool WithIntellisense,
                                                    bool WithKnownReturn) {
  MethodPredictionData Data;

  std::vector<CodeSite> SiteList;
  SiteList.reserve(Sites.Calls.size());
  for (const CallSiteInfo &CS : Sites.Calls)
    SiteList.push_back(CS.Site);
  prepareSolutions(SiteList);

  std::vector<CallTrial> Trials(Sites.Calls.size());
  Batch.forEach(Sites.Calls.size(), [&](BatchExecutor::TaskContext &Ctx,
                                        size_t Index) {
    const CallSiteInfo &CS = Sites.Calls[Index];
    CallTrial &T = Trials[Index];
    QueryCtx Q{Ctx.Engine, Ctx.Scratch, T.Lat};

    std::vector<const Expr *> Args = callSignatureArgs(CS.Call);
    T.NumArgs = Args.size();
    std::vector<const Expr *> Guessable;
    for (const Expr *Arg : Args)
      if (isGuessableExpr(Arg))
        Guessable.push_back(Arg);
    if (Guessable.empty()) {
      T.Skipped = true;
      return;
    }
    if (Guessable.size() > 6)
      Guessable.resize(6); // cap the subset search

    MethodId Target = CS.Call->method();
    auto MatchMethod = [Target](const Expr *E) {
      const auto *C = dyn_cast<CallExpr>(E);
      return C && C->method() == Target;
    };

    // All argument subsets of size 1 and 2 (the paper: "giving one or two
    // of the call's arguments"); keep the best rank per size class.
    auto QueryWith =
        [&](std::vector<const Expr *> Subset, TypeId Expected) -> size_t {
      std::vector<const PartialExpr *> PEArgs;
      for (const Expr *E : Subset)
        PEArgs.push_back(Ctx.Scratch.create<ConcretePE>(E));
      const PartialExpr *Query =
          Ctx.Scratch.create<UnknownCallPE>(std::move(PEArgs));
      return rankWhere(Q, Query, CS.Site, MatchMethod, Expected);
    };

    auto Improve = [](size_t &Best, size_t Rank) {
      if (Rank != 0 && (Best == 0 || Rank < Best))
        Best = Rank;
    };
    for (size_t I = 0; I != Guessable.size(); ++I)
      Improve(T.Best1, QueryWith({Guessable[I]}, InvalidId));
    for (size_t I = 0; I != Guessable.size(); ++I)
      for (size_t J = I + 1; J != Guessable.size(); ++J)
        Improve(T.Best2, QueryWith({Guessable[I], Guessable[J]}, InvalidId));

    if (WithIntellisense)
      T.IntelliRank = intellisenseRank(TS, CS.Call);

    if (WithKnownReturn) {
      TypeId Expected = TS.method(Target).ReturnType;
      for (size_t I = 0; I != Guessable.size(); ++I)
        Improve(T.BestRet, QueryWith({Guessable[I]}, Expected));
      for (size_t I = 0; I != Guessable.size(); ++I)
        for (size_t J = I + 1; J != Guessable.size(); ++J)
          Improve(T.BestRet, QueryWith({Guessable[I], Guessable[J]}, Expected));
    }
  });

  // Fold in input order: identical accumulation to the serial loop.
  for (size_t Index = 0; Index != Trials.size(); ++Index) {
    const CallTrial &T = Trials[Index];
    const CallSiteInfo &CS = Sites.Calls[Index];
    Latency.addAll(T.Lat);
    if (T.Skipped) {
      ++Data.SkippedNoGuessableArgs;
      continue;
    }

    size_t Best = T.Best1;
    if (T.Best2 != 0 && (Best == 0 || T.Best2 < Best))
      Best = T.Best2;

    Data.Best.add(Best);
    if (TS.method(CS.Call->method()).IsStatic)
      Data.Static.add(Best);
    else
      Data.Instance.add(Best);

    ArityStats &AS = Data.ByArity[T.NumArgs];
    ++AS.Calls;
    AS.SolvedWith1 += T.Best1 >= 1 && T.Best1 <= 20;
    AS.SolvedWith2 += Best >= 1 && Best <= 20;

    if (WithIntellisense) {
      size_t Ours = Best == 0 ? SearchLimit + 1 : Best;
      Data.RankDiff.push_back(static_cast<long>(Ours) -
                              static_cast<long>(T.IntelliRank));
    }

    if (WithKnownReturn) {
      Data.BestKnownReturn.add(T.BestRet);
      if (WithIntellisense) {
        size_t Ours = T.BestRet == 0 ? SearchLimit + 1 : T.BestRet;
        Data.RankDiffKnownReturn.push_back(static_cast<long>(Ours) -
                                           static_cast<long>(T.IntelliRank));
      }
    }
  }
  return Data;
}

//===----------------------------------------------------------------------===//
// §5.2 Predicting method arguments
//===----------------------------------------------------------------------===//

namespace {
/// Per-argument-position outcome of one §5.2 call-site trial.
struct ArgOutcome {
  ExprForm Form = ExprForm::NotGuessable;
  bool HasRank = false; ///< false for not-guessable positions
  bool NoVar = false;   ///< counted into the "ignoring variables" slice
  size_t Rank = 0;
};

struct ArgTrial {
  std::vector<ArgOutcome> Outcomes;
  std::vector<double> Lat;
};
} // namespace

ArgumentPredictionData Evaluator::runArgumentPrediction() {
  ArgumentPredictionData Data;

  std::vector<CodeSite> SiteList;
  SiteList.reserve(Sites.Calls.size());
  for (const CallSiteInfo &CS : Sites.Calls)
    SiteList.push_back(CS.Site);
  prepareSolutions(SiteList);

  std::vector<ArgTrial> Trials(Sites.Calls.size());
  Batch.forEach(Sites.Calls.size(), [&](BatchExecutor::TaskContext &Ctx,
                                        size_t Index) {
    const CallSiteInfo &CS = Sites.Calls[Index];
    ArgTrial &T = Trials[Index];
    QueryCtx Q{Ctx.Engine, Ctx.Scratch, T.Lat};

    std::vector<const Expr *> Args = callSignatureArgs(CS.Call);
    const Expr *Original = CS.Call;
    T.Outcomes.resize(Args.size());
    for (size_t Pos = 0; Pos != Args.size(); ++Pos) {
      ArgOutcome &O = T.Outcomes[Pos];
      O.Form = classifyExprForm(Args[Pos]);
      if (O.Form == ExprForm::NotGuessable)
        continue;

      // Replace this argument with `?`; the method name (and hence the
      // overload set) is known.
      std::vector<const PartialExpr *> PEArgs;
      for (size_t I = 0; I != Args.size(); ++I) {
        if (I == Pos)
          PEArgs.push_back(Ctx.Scratch.create<HolePE>());
        else
          PEArgs.push_back(Ctx.Scratch.create<ConcretePE>(Args[I]));
      }
      const MethodInfo &MI = TS.method(CS.Call->method());
      const PartialExpr *Query = Ctx.Scratch.create<KnownCallPE>(
          MI.Name, std::move(PEArgs), std::vector<MethodId>{CS.Call->method()});

      O.HasRank = true;
      O.Rank = rankWhere(
          Q, Query, CS.Site,
          [&](const Expr *E) { return exprEquals(E, Original); });
      O.NoVar = !isa<VarExpr>(Args[Pos]) && !isa<ThisExpr>(Args[Pos]);
    }
  });

  for (const ArgTrial &T : Trials) {
    Latency.addAll(T.Lat);
    for (const ArgOutcome &O : T.Outcomes) {
      ++Data.TotalArgs;
      ++Data.FormCounts[static_cast<size_t>(O.Form)];
      if (!O.HasRank) {
        ++Data.NotGuessable;
        continue;
      }
      Data.All.add(O.Rank);
      if (O.NoVar)
        Data.NoVars.add(O.Rank);
    }
  }
  return Data;
}

//===----------------------------------------------------------------------===//
// §5.3 Predicting field lookups
//===----------------------------------------------------------------------===//

/// Strips \p N trailing lookups (field accesses or nullary calls) from the
/// spine of \p E; null when the expression does not end in N strippable
/// lookups over a value base.
static const Expr *stripLookups(const Expr *E, int N) {
  while (N-- > 0) {
    const Expr *Base = nullptr;
    if (const auto *FA = dyn_cast<FieldAccessExpr>(E))
      Base = FA->base();
    else if (const auto *C = dyn_cast<CallExpr>(E);
             C && C->args().empty() && C->receiver())
      Base = C->receiver();
    if (!Base || isa<TypeRefExpr>(Base))
      return nullptr; // not a strippable lookup / static access root
    E = Base;
  }
  return E;
}

namespace {
/// One optionally-run query slot of a §5.3 trial.
struct MaybeRank {
  bool Ran = false;
  size_t Rank = 0;
};

/// Per-assignment-site outcome: target / source / both variants.
struct AssignTrial {
  MaybeRank Target, Source, Both;
  std::vector<double> Lat;
};

/// Per-comparison-site outcome: the five stripped variants of Fig. 16.
struct CompareTrial {
  MaybeRank Left, Right, Both, TwoLeft, TwoRight;
  std::vector<double> Lat;
};
} // namespace

AssignmentData Evaluator::runAssignments() {
  AssignmentData Data;

  std::vector<CodeSite> SiteList;
  SiteList.reserve(Sites.Assigns.size());
  for (const AssignSiteInfo &AS : Sites.Assigns)
    SiteList.push_back(AS.Site);
  prepareSolutions(SiteList);

  std::vector<AssignTrial> Trials(Sites.Assigns.size());
  Batch.forEach(Sites.Assigns.size(), [&](BatchExecutor::TaskContext &Ctx,
                                          size_t Index) {
    const AssignSiteInfo &AS = Sites.Assigns[Index];
    AssignTrial &T = Trials[Index];
    QueryCtx Q{Ctx.Engine, Ctx.Scratch, T.Lat};
    Arena &A = Ctx.Scratch;

    auto Query = [&](MaybeRank &Out, const Expr *Lhs, const Expr *Rhs) {
      // ".?m added to the end of both sides" (§5.3).
      const PartialExpr *L = A.create<SuffixPE>(A.create<ConcretePE>(Lhs),
                                                SuffixKind::Member);
      const PartialExpr *R = A.create<SuffixPE>(A.create<ConcretePE>(Rhs),
                                                SuffixKind::Member);
      const PartialExpr *PE = A.create<AssignPE>(L, R);
      Out.Ran = true;
      Out.Rank = rankWhere(Q, PE, AS.Site, [&](const Expr *E) {
        return exprEquals(E, AS.Assign);
      });
    };

    const Expr *Lhs = AS.Assign->lhs();
    const Expr *Rhs = AS.Assign->rhs();
    const Expr *LhsBase = stripLookups(Lhs, 1);
    const Expr *RhsBase = stripLookups(Rhs, 1);

    if (LhsBase)
      Query(T.Target, LhsBase, Rhs);
    if (RhsBase)
      Query(T.Source, Lhs, RhsBase);
    if (LhsBase && RhsBase)
      Query(T.Both, LhsBase, RhsBase);
  });

  for (const AssignTrial &T : Trials) {
    Latency.addAll(T.Lat);
    if (T.Target.Ran)
      Data.Target.add(T.Target.Rank);
    if (T.Source.Ran)
      Data.Source.add(T.Source.Rank);
    if (T.Both.Ran)
      Data.Both.add(T.Both.Rank);
  }
  return Data;
}

ComparisonData Evaluator::runComparisons() {
  ComparisonData Data;

  std::vector<CodeSite> SiteList;
  SiteList.reserve(Sites.Compares.size());
  for (const CompareSiteInfo &CS : Sites.Compares)
    SiteList.push_back(CS.Site);
  prepareSolutions(SiteList);

  std::vector<CompareTrial> Trials(Sites.Compares.size());
  Batch.forEach(Sites.Compares.size(), [&](BatchExecutor::TaskContext &Ctx,
                                           size_t Index) {
    const CompareSiteInfo &CS = Sites.Compares[Index];
    CompareTrial &T = Trials[Index];
    QueryCtx Q{Ctx.Engine, Ctx.Scratch, T.Lat};
    Arena &A = Ctx.Scratch;

    auto Query = [&](MaybeRank &Out, CompareOp Op, const Expr *Lhs,
                     const Expr *Rhs) {
      // ".?m.?m added to the end of both sides" (§5.3).
      auto Wrap = [&](const Expr *E) -> const PartialExpr * {
        const PartialExpr *P0 = A.create<ConcretePE>(E);
        const PartialExpr *P1 = A.create<SuffixPE>(P0, SuffixKind::Member);
        return A.create<SuffixPE>(P1, SuffixKind::Member);
      };
      const PartialExpr *PE = A.create<ComparePE>(Op, Wrap(Lhs), Wrap(Rhs));
      Out.Ran = true;
      Out.Rank = rankWhere(Q, PE, CS.Site, [&](const Expr *E) {
        return exprEquals(E, CS.Compare);
      });
    };

    const Expr *Lhs = CS.Compare->lhs();
    const Expr *Rhs = CS.Compare->rhs();
    CompareOp Op = CS.Compare->op();

    const Expr *L1 = stripLookups(Lhs, 1);
    const Expr *R1 = stripLookups(Rhs, 1);
    const Expr *L2 = stripLookups(Lhs, 2);
    const Expr *R2 = stripLookups(Rhs, 2);

    if (L1)
      Query(T.Left, Op, L1, Rhs);
    if (R1)
      Query(T.Right, Op, Lhs, R1);
    if (L1 && R1)
      Query(T.Both, Op, L1, R1);
    if (L2)
      Query(T.TwoLeft, Op, L2, Rhs);
    if (R2)
      Query(T.TwoRight, Op, Lhs, R2);
  });

  for (const CompareTrial &T : Trials) {
    Latency.addAll(T.Lat);
    if (T.Left.Ran)
      Data.Left.add(T.Left.Rank);
    if (T.Right.Ran)
      Data.Right.add(T.Right.Rank);
    if (T.Both.Ran)
      Data.Both.add(T.Both.Rank);
    if (T.TwoLeft.Ran)
      Data.TwoLeft.add(T.TwoLeft.Rank);
    if (T.TwoRight.Ran)
      Data.TwoRight.add(T.TwoRight.Rank);
  }
  return Data;
}
