//===- eval/Intellisense.h - The paper's Intellisense baseline --*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper compares against a model of Visual Studio Intellisense (§5.1):
/// "given the receiver (or receiver type for static calls)", it lists the
/// receiver's members in alphabetic order — instance members for instance
/// receivers, static members for static receivers — and the baseline rank
/// is the alphabetic position of the intended method.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_EVAL_INTELLISENSE_H
#define PETAL_EVAL_INTELLISENSE_H

#include "code/Expr.h"
#include "model/TypeSystem.h"

#include <cstddef>

namespace petal {

/// The 1-based alphabetic rank of the callee of \p Call among the members
/// (methods, fields, properties) Intellisense would list for its receiver.
/// Instance calls list the receiver type's instance members; static calls
/// list the owner type's static members.
size_t intellisenseRank(const TypeSystem &TS, const CallExpr *Call);

} // namespace petal

#endif // PETAL_EVAL_INTELLISENSE_H
