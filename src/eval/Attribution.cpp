//===- eval/Attribution.cpp - Term attribution of ranking misses ----------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "eval/Attribution.h"

#include "complete/BatchExecutor.h"
#include "eval/Harvest.h"
#include "partial/PartialExpr.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

using namespace petal;

namespace {

/// Per-site outcome of the trial fan-out, folded in site order.
struct AttributionTrial {
  enum Kind { Skipped, Rank1, Tied, Below, Missing } What = Skipped;
  ScoreCard Truth;  ///< card of the ground-truth completion (Below only)
  ScoreCard Winner; ///< card of the rank-1 candidate (Below only)
};

} // namespace

TermAttributionReport petal::runTermAttribution(Program &P,
                                                CompletionIndexes &Idx,
                                                RankingOptions Opts,
                                                size_t SearchLimit,
                                                size_t Threads) {
  BatchExecutor Batch(P, Idx, Threads);
  HarvestResult Sites = harvestProgram(P);

  // Per-site abstract-type solutions (the site statement and everything
  // after it excluded), precomputed in parallel over distinct sites.
  std::map<std::pair<const CodeMethod *, size_t>, AbsTypeSolution> Solutions;
  if (Opts.UseAbstractTypes) {
    for (const CallSiteInfo &CS : Sites.Calls)
      Solutions.try_emplace({CS.Site.Method, CS.Site.StmtIndex});
    std::vector<std::pair<const CodeMethod *, size_t>> Keys;
    Keys.reserve(Solutions.size());
    for (const auto &[Key, Sol] : Solutions)
      Keys.push_back(Key);
    Batch.pool().parallelFor(Keys.size(), [&](size_t I, size_t) {
      Solutions.find(Keys[I])->second =
          Idx.Infer.solveExcluding(Keys[I].first, Keys[I].second);
    });
  }

  std::vector<AttributionTrial> Trials(Sites.Calls.size());
  Batch.forEach(Sites.Calls.size(), [&](BatchExecutor::TaskContext &Ctx,
                                        size_t Index) {
    const CallSiteInfo &CS = Sites.Calls[Index];
    AttributionTrial &T = Trials[Index];

    std::vector<const Expr *> Guessable;
    if (CS.Call->receiver() && isGuessableExpr(CS.Call->receiver()))
      Guessable.push_back(CS.Call->receiver());
    for (const Expr *Arg : CS.Call->args())
      if (isGuessableExpr(Arg))
        Guessable.push_back(Arg);
    if (Guessable.empty())
      return; // Skipped
    if (Guessable.size() > 6)
      Guessable.resize(6); // same cap as the §5.1 subset search

    std::vector<const PartialExpr *> PEArgs;
    for (const Expr *E : Guessable)
      PEArgs.push_back(Ctx.Scratch.create<ConcretePE>(E));
    const PartialExpr *Query =
        Ctx.Scratch.create<UnknownCallPE>(std::move(PEArgs));

    CompletionOptions CO;
    CO.Rank = Opts;
    CO.Explain = true;
    const AbsTypeSolution *Sol = nullptr;
    if (Opts.UseAbstractTypes)
      Sol = &Solutions.find({CS.Site.Method, CS.Site.StmtIndex})->second;

    std::vector<Completion> Results =
        Ctx.Engine.complete(Query, CS.Site, SearchLimit, CO, Sol);

    MethodId Target = CS.Call->method();
    size_t TruthIdx = Results.size();
    for (size_t I = 0; I != Results.size(); ++I) {
      const auto *C = dyn_cast<CallExpr>(Results[I].E);
      if (C && C->method() == Target) {
        TruthIdx = I;
        break;
      }
    }

    if (TruthIdx == Results.size()) {
      T.What = AttributionTrial::Missing;
      return;
    }
    assert(Results[TruthIdx].Card && Results.front().Card &&
           "explain mode attaches a card to every result");
    if (TruthIdx == 0) {
      T.What = AttributionTrial::Rank1;
      return;
    }
    if (Results[TruthIdx].Score == Results.front().Score) {
      T.What = AttributionTrial::Tied;
      return;
    }
    T.What = AttributionTrial::Below;
    T.Truth = *Results[TruthIdx].Card;
    T.Winner = *Results.front().Card;
  });

  TermAttributionReport R;
  for (const AttributionTrial &T : Trials) {
    switch (T.What) {
    case AttributionTrial::Skipped:
      continue;
    case AttributionTrial::Rank1:
      ++R.OracleAtRank1;
      break;
    case AttributionTrial::Tied:
      ++R.OracleTied;
      break;
    case AttributionTrial::Missing:
      ++R.OracleMissing;
      break;
    case AttributionTrial::Below: {
      ++R.OracleBelow;
      for (ScoreTerm Term : AllScoreTerms) {
        int Diff = T.Truth.term(Term) - T.Winner.term(Term);
        size_t I = static_cast<size_t>(Term);
        if (Diff > 0) {
          ++R.SeparatingSites[I];
          R.MarginSum[I] += Diff;
        } else if (Diff < 0) {
          R.SavingsSum[I] += -Diff;
        }
      }
      break;
    }
    }
    ++R.Sites;
  }
  return R;
}

std::string TermAttributionReport::toString() const {
  std::ostringstream OS;
  auto Pct = [&](size_t N) {
    if (Sites == 0)
      return std::string("-");
    std::ostringstream P;
    P.precision(1);
    P << std::fixed
      << (100.0 * static_cast<double>(N) / static_cast<double>(Sites)) << "%";
    return P.str();
  };
  OS << "term attribution over " << Sites << " call sites\n";
  OS << "  ground truth at rank 1 : " << OracleAtRank1 << " ("
     << Pct(OracleAtRank1) << ")\n";
  OS << "  tied with the winner   : " << OracleTied << " (" << Pct(OracleTied)
     << ")\n";
  OS << "  ranked below           : " << OracleBelow << " (" << Pct(OracleBelow)
     << ")\n";
  OS << "  not in the top list    : " << OracleMissing << " ("
     << Pct(OracleMissing) << ")\n";
  if (OracleBelow != 0) {
    OS << "  terms separating the truth from rank 1 (sites / total margin / "
          "total savings):\n";
    for (ScoreTerm Term : AllScoreTerms) {
      size_t I = static_cast<size_t>(Term);
      OS << "    " << scoreTermName(Term) << " (" << scoreTermLetter(Term)
         << "): " << SeparatingSites[I] << " / " << MarginSum[I] << " / "
         << SavingsSum[I] << "\n";
    }
  }
  return OS.str();
}
