//===- eval/Harvest.h - Ground-truth site collection ------------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's experiments "take existing codebases and run the tool after
/// automatically replacing existing method calls, assignments, and
/// comparisons with appropriate partial expressions" (§1). This module
/// walks a Program and collects those ground-truth sites, plus the
/// guessability classification of expressions (§5.2: expressions whose form
/// the completer can synthesize — variables, this, field/property chains,
/// zero-argument method chains — vs constants and computations).
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_EVAL_HARVEST_H
#define PETAL_EVAL_HARVEST_H

#include "code/Code.h"

#include <vector>

namespace petal {

/// A harvested ground-truth method call.
struct CallSiteInfo {
  CodeSite Site;
  const CallExpr *Call = nullptr;
};

/// A harvested ground-truth assignment.
struct AssignSiteInfo {
  CodeSite Site;
  const AssignExpr *Assign = nullptr;
};

/// A harvested ground-truth comparison.
struct CompareSiteInfo {
  CodeSite Site;
  const CompareExpr *Compare = nullptr;
};

/// Everything the experiments replay.
struct HarvestResult {
  std::vector<CallSiteInfo> Calls;
  std::vector<AssignSiteInfo> Assigns;
  std::vector<CompareSiteInfo> Compares;
};

/// Collects the top-level calls, assignments, and comparisons of every
/// method body in \p P.
HarvestResult harvestProgram(const Program &P);

/// The expression-form classes of Fig. 14.
enum class ExprForm {
  LocalVar,     ///< a bare local/parameter
  This,         ///< `this`
  FieldLookup,  ///< one field/property lookup on a guessable base
  DeepLookup,   ///< two or more lookups, or a zero-arg method chain
  Global,       ///< static field or nullary static method access
  NotGuessable, ///< literals, calls with arguments, anything else
};

/// Classifies \p E per Fig. 14.
ExprForm classifyExprForm(const Expr *E);

/// True if the completion engine could synthesize \p E for a hole: locals,
/// this, globals, and field/nullary-method chains over them.
bool isGuessableExpr(const Expr *E);

} // namespace petal

#endif // PETAL_EVAL_HARVEST_H
