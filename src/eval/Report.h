//===- eval/Report.h - Machine-readable experiment exports ------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CSV emitters for the experiment data, so the paper's figures can be
/// re-plotted from bench output. The bench binaries write these files when
/// the PETAL_CSV_DIR environment variable is set; the text tables on
/// stdout remain the primary human-readable output.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_EVAL_REPORT_H
#define PETAL_EVAL_REPORT_H

#include "eval/Metrics.h"

#include <string>
#include <utility>
#include <vector>

namespace petal {

/// Builds CSV text and optionally writes it under PETAL_CSV_DIR.
class CsvReport {
public:
  /// Starts a report with the given column names.
  explicit CsvReport(std::vector<std::string> Columns);

  /// Appends a data row (quoted/escaped as needed).
  void addRow(const std::vector<std::string> &Cells);

  /// A row of a rank CDF: label, then the fraction within each cutoff of
  /// cdfHeaderCells(), then the trial count.
  void addCdfRow(const std::string &Label, const RankDistribution &D);

  /// The accumulated CSV text.
  const std::string &text() const { return Text; }

  /// Writes to `<PETAL_CSV_DIR>/<Name>.csv` if the env var is set. Returns
  /// true if a file was written; false (silently) otherwise.
  bool writeIfRequested(const std::string &Name) const;

  /// Header columns for a CDF report ("series", the cutoffs, "n").
  static std::vector<std::string> cdfColumns();

private:
  std::string Text;
  size_t NumColumns;
};

} // namespace petal

#endif // PETAL_EVAL_REPORT_H
