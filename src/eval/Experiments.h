//===- eval/Experiments.h - The paper's experiment drivers ------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drivers for the paper's three experiments (§5.1 predicting method names,
/// §5.2 predicting method arguments, §5.3 predicting field lookups) plus
/// the Intellisense comparison and the Table 2 sensitivity analysis. Each
/// driver replays harvested ground-truth expressions: it strips the
/// information the experiment removes, builds the corresponding partial
/// expression, runs the completion engine at the original code site (with
/// abstract type inference excluding the site and everything after it), and
/// records the rank of the ground truth.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_EVAL_EXPERIMENTS_H
#define PETAL_EVAL_EXPERIMENTS_H

#include "complete/BatchExecutor.h"
#include "complete/Engine.h"
#include "eval/Harvest.h"
#include "eval/Metrics.h"

#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

namespace petal {

/// Fig. 10 bookkeeping per call arity.
struct ArityStats {
  size_t Calls = 0;
  size_t SolvedWith1 = 0; ///< some 1-argument query ranks the callee <= 20
  size_t SolvedWith2 = 0; ///< some <=2-argument query ranks the callee <= 20
};

/// Results of the §5.1 experiment.
struct MethodPredictionData {
  RankDistribution Best;     ///< best rank over all <=2-arg queries (Fig. 9)
  RankDistribution Instance; ///< instance-call slice
  RankDistribution Static;   ///< static-call slice
  std::map<size_t, ArityStats> ByArity;    ///< Fig. 10
  std::vector<long> RankDiff;              ///< ours - Intellisense (Fig. 11)
  RankDistribution BestKnownReturn;        ///< with the return type known
  std::vector<long> RankDiffKnownReturn;   ///< Fig. 12
  size_t SkippedNoGuessableArgs = 0;
};

/// Results of the §5.2 experiment.
struct ArgumentPredictionData {
  RankDistribution All;    ///< Fig. 13, "Normal"
  RankDistribution NoVars; ///< Fig. 13, ignoring bare-local answers
  size_t FormCounts[6] = {}; ///< Fig. 14, indexed by ExprForm
  size_t TotalArgs = 0;
  size_t NotGuessable = 0;
};

/// Results of the §5.3 assignment experiment (Fig. 15).
struct AssignmentData {
  RankDistribution Target; ///< final lookup stripped from the target
  RankDistribution Source; ///< ... from the source
  RankDistribution Both;   ///< ... from both sides
};

/// Results of the §5.3 comparison experiment (Fig. 16).
struct ComparisonData {
  RankDistribution Left;
  RankDistribution Right;
  RankDistribution Both;
  RankDistribution TwoLeft;  ///< two lookups stripped from the left
  RankDistribution TwoRight; ///< two lookups stripped from the right
};

/// Wall-clock per-query timing (§5.1–5.3 "Speed" paragraphs).
struct LatencyData {
  std::vector<double> Millis;

  void add(double Ms) { Millis.push_back(Ms); }
  void addAll(const std::vector<double> &Ms) {
    Millis.insert(Millis.end(), Ms.begin(), Ms.end());
  }
  double fracUnder(double Ms) const;
  double percentile(double P) const; ///< P in [0, 100]
};

/// Runs the experiments over one corpus with one ranking configuration.
/// The CompletionIndexes are shared (they are ranking-independent), so the
/// Table 2 sensitivity analysis constructs one Evaluator per variant over
/// the same indexes.
///
/// Every driver executes through a BatchExecutor: harvested sites are
/// turned into an indexed trial list, the trials fan out over per-worker
/// CompletionEngines (per-site abstract-type solutions are precomputed in
/// parallel first), and the per-trial outcomes are folded into the result
/// structs strictly in input order — so the produced RankDistributions are
/// bit-identical whatever the thread count. \p Threads = 1 (the default)
/// runs everything on the calling thread; 0 means the PETAL_THREADS
/// environment variable / hardware concurrency.
class Evaluator {
public:
  Evaluator(Program &P, CompletionIndexes &Idx, RankingOptions Opts,
            size_t SearchLimit = 100, size_t Threads = 1);

  MethodPredictionData runMethodPrediction(bool WithIntellisense = true,
                                           bool WithKnownReturn = true);
  ArgumentPredictionData runArgumentPrediction();
  AssignmentData runAssignments();
  ComparisonData runComparisons();

  /// Per-query latencies accumulated across all run* calls (appended in
  /// deterministic trial order; the values themselves are wall-clock).
  const LatencyData &latency() const { return Latency; }

  const HarvestResult &harvest() const { return Sites; }

  size_t numThreads() const { return Batch.numThreads(); }

private:
  /// What one parallel trial works with: this worker's engine, the trial's
  /// scratch arena for partial-expression nodes, and the trial's private
  /// latency sink (folded into Latency afterwards, in trial order).
  struct QueryCtx {
    CompletionEngine &Engine;
    Arena &A;
    std::vector<double> &Lat;
  };

  /// Precomputes (in parallel) the abstract-type solutions of every site in
  /// \p SiteList that is not cached yet. Must be called before the trial
  /// fan-out; afterwards solutionFor is a read-only lookup.
  void prepareSolutions(const std::vector<CodeSite> &SiteList);

  /// The cached per-site solution (excluding the site statement and
  /// everything after it); null when abstract types are disabled.
  const AbsTypeSolution *solutionFor(const CodeSite &Site) const;

  /// Runs \p Query on \p Q's engine and returns the 1-based rank of the
  /// first completion accepted by \p Match (0 if absent from the top
  /// SearchLimit).
  size_t rankWhere(QueryCtx &Q, const PartialExpr *Query,
                   const CodeSite &Site,
                   const std::function<bool(const Expr *)> &Match,
                   TypeId ExpectedType = InvalidId) const;

  /// The call-signature argument list of \p Call (receiver first).
  std::vector<const Expr *> callSignatureArgs(const CallExpr *Call) const;

  Program &P;
  TypeSystem &TS;
  CompletionIndexes &Idx;
  RankingOptions Opts;
  size_t SearchLimit;
  BatchExecutor Batch;
  HarvestResult Sites;
  LatencyData Latency;
  std::unordered_map<const CodeMethod *,
                     std::unordered_map<size_t, AbsTypeSolution>>
      SolutionCache;
};

} // namespace petal

#endif // PETAL_EVAL_EXPERIMENTS_H
