//===- eval/Metrics.h - Rank distributions and CDF rows ---------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rank bookkeeping shared by all experiments: each trial records the
/// 1-based rank of the ground truth (0 = not found within the search
/// limit), and the figures report "proportion with rank <= k" series.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_EVAL_METRICS_H
#define PETAL_EVAL_METRICS_H

#include <cstddef>
#include <string>
#include <vector>

namespace petal {

/// A collection of ranks (0 = not found).
class RankDistribution {
public:
  void add(size_t Rank) { Ranks.push_back(Rank); }

  size_t total() const { return Ranks.size(); }

  /// Number of trials with 1 <= rank <= K.
  size_t withinTop(size_t K) const {
    size_t N = 0;
    for (size_t R : Ranks)
      if (R >= 1 && R <= K)
        ++N;
    return N;
  }

  /// Proportion of trials with rank <= K (0 when empty).
  double fracWithin(size_t K) const {
    return Ranks.empty()
               ? 0.0
               : static_cast<double>(withinTop(K)) /
                     static_cast<double>(Ranks.size());
  }

  /// Merges another distribution into this one.
  void merge(const RankDistribution &O) {
    Ranks.insert(Ranks.end(), O.Ranks.begin(), O.Ranks.end());
  }

  const std::vector<size_t> &ranks() const { return Ranks; }

private:
  std::vector<size_t> Ranks;
};

/// Formats the standard CDF series used by the paper's figures:
/// proportions at ranks 1, 2, 3, 5, 10, 20.
std::vector<std::string> cdfRowCells(const RankDistribution &D);

/// Header cells matching cdfRowCells.
std::vector<std::string> cdfHeaderCells();

} // namespace petal

#endif // PETAL_EVAL_METRICS_H
