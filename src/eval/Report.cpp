//===- eval/Report.cpp - Machine-readable experiment exports --------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "eval/Report.h"

#include "support/StrUtil.h"

#include <cassert>
#include <cstdlib>
#include <fstream>

using namespace petal;

static std::string escapeCell(const std::string &Cell) {
  if (Cell.find_first_of(",\"\n") == std::string::npos)
    return Cell;
  std::string Out = "\"";
  for (char C : Cell) {
    if (C == '"')
      Out += "\"\"";
    else
      Out.push_back(C);
  }
  Out.push_back('"');
  return Out;
}

CsvReport::CsvReport(std::vector<std::string> Columns)
    : NumColumns(Columns.size()) {
  addRow(Columns);
}

void CsvReport::addRow(const std::vector<std::string> &Cells) {
  assert(Cells.size() == NumColumns && "CSV row width mismatch");
  for (size_t I = 0; I != Cells.size(); ++I) {
    if (I)
      Text.push_back(',');
    Text += escapeCell(Cells[I]);
  }
  Text.push_back('\n');
}

void CsvReport::addCdfRow(const std::string &Label,
                          const RankDistribution &D) {
  std::vector<std::string> Row = {Label};
  for (const std::string &C : cdfRowCells(D))
    Row.push_back(C);
  Row.push_back(std::to_string(D.total()));
  addRow(Row);
}

std::vector<std::string> CsvReport::cdfColumns() {
  std::vector<std::string> Cols = {"series"};
  for (const std::string &C : cdfHeaderCells())
    Cols.push_back(C);
  Cols.push_back("n");
  return Cols;
}

bool CsvReport::writeIfRequested(const std::string &Name) const {
  const char *Dir = std::getenv("PETAL_CSV_DIR");
  if (!Dir || !*Dir)
    return false;
  std::ofstream Out(std::string(Dir) + "/" + Name + ".csv");
  if (!Out)
    return false;
  Out << Text;
  return true;
}
