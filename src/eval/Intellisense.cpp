//===- eval/Intellisense.cpp - The paper's Intellisense baseline ----------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "eval/Intellisense.h"

#include <algorithm>
#include <string>
#include <vector>

using namespace petal;

size_t petal::intellisenseRank(const TypeSystem &TS, const CallExpr *Call) {
  const MethodInfo &Target = TS.method(Call->method());
  bool WantStatic = Target.IsStatic;
  TypeId ListType = WantStatic
                        ? Target.Owner
                        : (Call->receiver() && isValidId(Call->receiver()->type())
                               ? Call->receiver()->type()
                               : Target.Owner);

  // Collect the member names Intellisense would show: methods and
  // fields/properties of the receiver type, instance/static filtered.
  // Overloads collapse into one list entry, as in the real UI.
  std::vector<std::string> Names;
  for (MethodId M : TS.visibleMethods(ListType))
    if (TS.method(M).IsStatic == WantStatic)
      Names.push_back(TS.method(M).Name);
  for (FieldId F : TS.visibleFields(ListType))
    if (TS.field(F).IsStatic == WantStatic)
      Names.push_back(TS.field(F).Name);

  std::sort(Names.begin(), Names.end());
  Names.erase(std::unique(Names.begin(), Names.end()), Names.end());

  auto It = std::lower_bound(Names.begin(), Names.end(), Target.Name);
  if (It == Names.end() || *It != Target.Name)
    return Names.size() + 1; // should not happen; rank past the end
  return static_cast<size_t>(It - Names.begin()) + 1;
}
