//===- eval/Harvest.cpp - Ground-truth site collection --------------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "eval/Harvest.h"

using namespace petal;

HarvestResult petal::harvestProgram(const Program &P) {
  HarvestResult Out;
  for (const auto &CC : P.classes()) {
    for (const auto &CM : CC->methods()) {
      for (size_t SI = 0; SI != CM->body().size(); ++SI) {
        const Stmt &St = CM->body()[SI];
        if (!St.Value)
          continue;
        CodeSite Site{CC.get(), CM.get(), SI};
        switch (St.Value->kind()) {
        case ExprKind::Call:
          Out.Calls.push_back({Site, cast<CallExpr>(St.Value)});
          break;
        case ExprKind::Assign:
          Out.Assigns.push_back({Site, cast<AssignExpr>(St.Value)});
          break;
        case ExprKind::Compare:
          Out.Compares.push_back({Site, cast<CompareExpr>(St.Value)});
          break;
        default:
          break;
        }
      }
    }
  }
  return Out;
}

bool petal::isGuessableExpr(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::Var:
  case ExprKind::This:
  case ExprKind::TypeRef:
    return true;
  case ExprKind::FieldAccess:
    return isGuessableExpr(cast<FieldAccessExpr>(E)->base());
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(E);
    if (!C->args().empty())
      return false; // the engine never synthesizes calls with arguments
    return !C->receiver() || isGuessableExpr(C->receiver());
  }
  default:
    return false;
  }
}

/// Counts lookup steps along the spine and reports whether any step is a
/// method call or a static (global) access.
static void spineInfo(const Expr *E, int &Steps, bool &SawMethod,
                      bool &SawStatic, const Expr *&Root) {
  switch (E->kind()) {
  case ExprKind::FieldAccess: {
    const auto *FA = cast<FieldAccessExpr>(E);
    if (isa<TypeRefExpr>(FA->base())) {
      SawStatic = true;
      Root = FA->base();
      ++Steps;
      return;
    }
    ++Steps;
    spineInfo(FA->base(), Steps, SawMethod, SawStatic, Root);
    return;
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(E);
    ++Steps;
    SawMethod = true;
    if (!C->receiver()) {
      SawStatic = true;
      Root = E;
      return;
    }
    spineInfo(C->receiver(), Steps, SawMethod, SawStatic, Root);
    return;
  }
  default:
    Root = E;
    return;
  }
}

ExprForm petal::classifyExprForm(const Expr *E) {
  if (!isGuessableExpr(E))
    return ExprForm::NotGuessable;
  if (isa<VarExpr>(E))
    return ExprForm::LocalVar;
  if (isa<ThisExpr>(E))
    return ExprForm::This;

  int Steps = 0;
  bool SawMethod = false, SawStatic = false;
  const Expr *Root = nullptr;
  spineInfo(E, Steps, SawMethod, SawStatic, Root);
  if (SawStatic && Steps <= 1)
    return ExprForm::Global;
  if (Steps == 1 && !SawMethod)
    return ExprForm::FieldLookup;
  return ExprForm::DeepLookup;
}
