//===- eval/Metrics.cpp - Rank distributions and CDF rows -----------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "eval/Metrics.h"

#include "support/StrUtil.h"

using namespace petal;

static const size_t CdfPoints[] = {1, 2, 3, 5, 10, 20};

std::vector<std::string> petal::cdfHeaderCells() {
  std::vector<std::string> Cells;
  for (size_t K : CdfPoints)
    Cells.push_back("<=" + std::to_string(K));
  return Cells;
}

std::vector<std::string> petal::cdfRowCells(const RankDistribution &D) {
  std::vector<std::string> Cells;
  for (size_t K : CdfPoints)
    Cells.push_back(formatFixed(D.fracWithin(K), 3));
  return Cells;
}
