//===- eval/Attribution.h - Term attribution of ranking misses --*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 2 answers "how much does each term help overall"; this module
/// answers the per-site question behind it: when the ground-truth answer is
/// *not* ranked first, which Fig. 7 terms put it there? Each harvested call
/// site is replayed as a §5.1-style unknown-method query with per-term
/// score breakdowns enabled, and the ground truth's ScoreCard is compared
/// against the rank-1 candidate's: every term where the truth pays strictly
/// more is a *separating* term, and the sum of those positive differences
/// is exactly the score gap (the cards decompose the same scalar score).
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_EVAL_ATTRIBUTION_H
#define PETAL_EVAL_ATTRIBUTION_H

#include "complete/Engine.h"
#include "rank/ScoreCard.h"

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace petal {

class Program;

/// Aggregated term attribution over one corpus replay.
struct TermAttributionReport {
  /// Call sites replayed (those with at least one guessable argument).
  size_t Sites = 0;
  size_t OracleAtRank1 = 0; ///< ground truth won outright
  /// Ground truth scored the same total as rank 1 and lost only the
  /// deterministic tie order — no term separates it.
  size_t OracleTied = 0;
  size_t OracleBelow = 0;   ///< found, but a cheaper candidate won
  size_t OracleMissing = 0; ///< not in the top SearchLimit completions

  /// Per term: at how many OracleBelow sites the ground truth paid
  /// strictly more than the winner on this term.
  std::array<size_t, NumScoreTerms> SeparatingSites{};
  /// Per term: the summed positive (truth - winner) cost differences.
  /// Across terms these margins sum to the total score gap of every
  /// OracleBelow site (negative differences, where the truth was cheaper,
  /// are tracked separately below).
  std::array<int64_t, NumScoreTerms> MarginSum{};
  /// Per term: summed cost the truth *saved* relative to the winner at
  /// OracleBelow sites (the other side of the ledger).
  std::array<int64_t, NumScoreTerms> SavingsSum{};

  /// Renders the report as an aligned text table.
  std::string toString() const;
};

/// Replays every harvested call site of \p P as an unknown-method query
/// (all guessable call-signature arguments given, capped at six) and
/// attributes each ranking miss to the terms that caused it. Uses per-site
/// abstract-type exclusion exactly like the §5.1 experiment. \p Threads
/// follows the Evaluator convention (1 = serial, 0 = auto); results are
/// folded in site order and therefore thread-count independent.
TermAttributionReport runTermAttribution(Program &P, CompletionIndexes &Idx,
                                         RankingOptions Opts,
                                         size_t SearchLimit = 20,
                                         size_t Threads = 1);

} // namespace petal

#endif // PETAL_EVAL_ATTRIBUTION_H
