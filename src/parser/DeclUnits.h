//===- parser/DeclUnits.h - Declaration-unit content hashing ----*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Splits a parsed file into its top-level declaration units (one per
/// SynType) and content-hashes each at two granularities:
///
///  * **SigHash** covers everything that feeds the *type graph*: the type's
///    kind, names, bases, enumerators, and every member signature
///    (including parameter names — they become method locals and printed
///    completions). Two files whose ordered SigHash sequences agree
///    register byte-for-byte identical TypeSystems.
///
///  * **BodyHash** covers the method bodies: a canonical walk of every
///    SynStmt/SynExpr tree. Sig + body together determine the resolved
///    code layer of the unit.
///
/// Hashing happens on the *syntax* tree, after lexing, so whitespace and
/// comments never perturb a hash — a reformat is a no-op edit by
/// construction. The ordered combination matters: TypeIds are assigned in
/// declaration order, so the type-graph fingerprint hashes the sequence,
/// not the set. The service diffs these shapes across versions to decide
/// how much of the previous DocumentState an edit can share (see
/// DESIGN.md §12, "Incremental session builds").
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_PARSER_DECLUNITS_H
#define PETAL_PARSER_DECLUNITS_H

#include "parser/Syntax.h"

#include <cstdint>
#include <string>
#include <vector>

namespace petal {

/// One top-level declaration unit: a type plus its content fingerprints.
struct DeclUnit {
  /// Qualified name ("Ns.Sub.Name"); the stable identity an entry in the
  /// result cache is scoped to.
  std::string QualName;
  uint64_t SigHash = 0;  ///< type-graph-affecting content
  uint64_t BodyHash = 0; ///< method-body content
};

/// The delta-comparable fingerprint of one document version.
struct DocumentShape {
  std::vector<DeclUnit> Units; ///< in declaration order
  /// Ordered combination of every unit's SigHash. Equal graphs ⇒ the
  /// resolver registers identical TypeSystems (same ids in the same
  /// order), which is what licenses sharing the previous version's frozen
  /// type-graph indexes.
  uint64_t TypeGraphHash = 0;
  /// Ordered combination of every unit's (SigHash, BodyHash). Equal ⇒ the
  /// two versions are token-identical modulo whitespace/comments, so even
  /// the abstract-type solution (a whole-corpus artifact) carries over.
  uint64_t CodeHash = 0;

  /// The unit with the given qualified name; null if absent.
  const DeclUnit *findUnit(const std::string &QualName) const;

  /// True when \p QualName names a unit in both shapes with equal SigHash
  /// *and* BodyHash — the unit-local inputs of a query inside that type
  /// are unchanged.
  bool unitUnchanged(const DocumentShape &Prev,
                     const std::string &QualName) const;
};

/// Computes the shape of a parsed file.
DocumentShape shapeOfFile(const SynFile &File);

} // namespace petal

#endif // PETAL_PARSER_DECLUNITS_H
