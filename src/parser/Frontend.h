//===- parser/Frontend.h - One-call parsing entry points --------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience wrappers tying the lexer, parser, and resolver together:
/// load a source buffer into a Program, parse a partial-expression query at
/// a code site, and locate code sites by name.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_PARSER_FRONTEND_H
#define PETAL_PARSER_FRONTEND_H

#include "parser/Resolver.h"

#include <string_view>

namespace petal {

/// Parses and resolves \p Source into \p P (whose TypeSystem is extended).
/// Returns false and leaves diagnostics in \p Diags on error.
bool loadProgramText(std::string_view Source, Program &P,
                     DiagnosticEngine &Diags);

/// Parses and resolves a partial-expression query (e.g. "?({img, size})")
/// posed at \p Scope. Returns null on error.
const PartialExpr *parseQueryText(std::string_view Query, Program &P,
                                  const QueryScope &Scope,
                                  DiagnosticEngine &Diags);

/// Finds the CodeClass for the type named \p TypeName (simple or qualified).
const CodeClass *findCodeClass(const Program &P, const std::string &TypeName);

/// Finds the first method named \p MethodName in \p Class.
const CodeMethod *findCodeMethod(const Program &P, const CodeClass &Class,
                                 const std::string &MethodName);

/// A scope at the end of \p Method (all locals visible).
inline QueryScope scopeAtEnd(const CodeClass *Class, const CodeMethod *Method) {
  return {Class, Method, static_cast<size_t>(-1)};
}

} // namespace petal

#endif // PETAL_PARSER_FRONTEND_H
