//===- parser/Frontend.h - One-call parsing entry points --------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience wrappers tying the lexer, parser, and resolver together:
/// load a source buffer into a Program, parse a partial-expression query at
/// a code site, and locate code sites by name.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_PARSER_FRONTEND_H
#define PETAL_PARSER_FRONTEND_H

#include "parser/Resolver.h"

#include <string_view>

namespace petal {

/// Parses and resolves \p Source into \p P (whose TypeSystem is extended).
/// Returns false and leaves diagnostics in \p Diags on error.
bool loadProgramText(std::string_view Source, Program &P,
                     DiagnosticEngine &Diags);

/// Parses \p Source to a syntax tree without resolving it. The split entry
/// point for callers that need the SynFile itself — the service hashes it
/// into a DocumentShape (see DeclUnits.h) before deciding between
/// resolveParsedFile and resolveParsedFileReusingDecls, so the text is
/// lexed and parsed exactly once per edit.
bool parseSourceFile(std::string_view Source, SynFile &File,
                     DiagnosticEngine &Diags);

/// Resolves an already-parsed file into \p P (full build: extends the
/// TypeSystem with the file's declarations).
bool resolveParsedFile(const SynFile &File, Program &P,
                       DiagnosticEngine &Diags);

/// Resolves an already-parsed file's method bodies against a TypeSystem
/// that already holds declaration-identical types (lookup-only; never
/// mutates the type system). False on any structural mismatch — the
/// caller should fall back to resolveParsedFile on a fresh Program.
bool resolveParsedFileReusingDecls(const SynFile &File, Program &P,
                                   DiagnosticEngine &Diags);

/// Parses and resolves a partial-expression query (e.g. "?({img, size})")
/// posed at \p Scope. Returns null on error.
const PartialExpr *parseQueryText(std::string_view Query, Program &P,
                                  const QueryScope &Scope,
                                  DiagnosticEngine &Diags);

/// Finds the CodeClass for the type named \p TypeName (simple or qualified).
const CodeClass *findCodeClass(const Program &P, const std::string &TypeName);

/// Finds the first method named \p MethodName in \p Class.
const CodeMethod *findCodeMethod(const Program &P, const CodeClass &Class,
                                 const std::string &MethodName);

/// A scope at the end of \p Method (all locals visible).
inline QueryScope scopeAtEnd(const CodeClass *Class, const CodeMethod *Method) {
  return {Class, Method, static_cast<size_t>(-1)};
}

} // namespace petal

#endif // PETAL_PARSER_FRONTEND_H
