//===- parser/Resolver.cpp - Name resolution and lowering -----------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "parser/Resolver.h"

#include "support/StrUtil.h"

#include <algorithm>

using namespace petal;

//===----------------------------------------------------------------------===//
// Phase drivers
//===----------------------------------------------------------------------===//

bool Resolver::resolveFile(const SynFile &File) {
  unsigned Before = Diags.errorCount();
  if (!registerTypes(File))
    return false;
  resolveBases(File);
  resolveMembers(File);
  resolveBodies(File);
  return Diags.errorCount() == Before;
}

bool Resolver::resolveFileReusingDecls(const SynFile &File) {
  unsigned Before = Diags.errorCount();
  // Declaration phases in lookup-only mode. A false return here means the
  // existing model does not structurally match the file — the caller must
  // not trust RegisteredTypes/MemberMethodIds and should rebuild fully.
  if (!registerTypesReusing(File))
    return false;
  if (!resolveMembersReusing(File))
    return false;
  resolveBodies(File);
  return Diags.errorCount() == Before;
}

bool Resolver::registerTypesReusing(const SynFile &File) {
  RegisteredTypes.assign(File.Types.size(), InvalidId);
  for (size_t I = 0; I != File.Types.size(); ++I) {
    const SynType &ST = File.Types[I];
    std::string Qual = ST.NamespaceName.empty()
                           ? ST.Name
                           : ST.NamespaceName + "." + ST.Name;
    TypeId T = TS.findType(Qual);
    if (!isValidId(T) || TS.type(T).Kind != ST.Kind)
      return false;
    RegisteredTypes[I] = T;
  }
  return true;
}

bool Resolver::resolveMembersReusing(const SynFile &File) {
  MemberMethodIds.assign(File.Types.size(), {});
  for (size_t I = 0; I != File.Types.size(); ++I) {
    const SynType &ST = File.Types[I];
    TypeId T = RegisteredTypes[I];
    MemberMethodIds[I].assign(ST.Members.size(), InvalidId);
    const TypeInfo &TI = TS.type(T);

    // Members were registered in declaration order, so pairing is two
    // order cursors — with the names re-verified, because a cheap check
    // here buys a full-build fallback instead of a miscompiled reuse.
    size_t FC = 0, MC = 0;
    // resolveBases() materializes enum members as static fields before
    // resolveMembers() ran; skip past them first.
    if (ST.Kind == TypeKind::Enum) {
      if (TI.Fields.size() < ST.Enumerators.size())
        return false;
      for (const std::string &Name : ST.Enumerators)
        if (TS.field(TI.Fields[FC++]).Name != Name)
          return false;
    }
    for (size_t MI = 0; MI != ST.Members.size(); ++MI) {
      const SynMember &M = ST.Members[MI];
      switch (M.Kind) {
      case SynMember::Field:
      case SynMember::Property: {
        if (FC == TI.Fields.size())
          return false;
        const FieldInfo &FI = TS.field(TI.Fields[FC++]);
        if (FI.Name != M.Name || FI.IsStatic != M.IsStatic)
          return false;
        break;
      }
      case SynMember::Method: {
        if (MC == TI.Methods.size())
          return false;
        MethodId Id = TI.Methods[MC++];
        const MethodInfo &MInfo = TS.method(Id);
        if (MInfo.Name != M.Name || MInfo.IsStatic != M.IsStatic ||
            MInfo.Params.size() != M.Params.size())
          return false;
        for (size_t PI = 0; PI != M.Params.size(); ++PI)
          if (MInfo.Params[PI].Name != M.Params[PI].Name)
            return false;
        MemberMethodIds[I][MI] = Id;
        break;
      }
      }
    }
    if (FC != TI.Fields.size() || MC != TI.Methods.size())
      return false;
  }
  return true;
}

bool Resolver::registerTypes(const SynFile &File) {
  RegisteredTypes.assign(File.Types.size(), InvalidId);
  for (size_t I = 0; I != File.Types.size(); ++I) {
    const SynType &ST = File.Types[I];
    NamespaceId Ns = TS.getOrAddNamespace(ST.NamespaceName);
    std::string Qual = ST.NamespaceName.empty()
                           ? ST.Name
                           : ST.NamespaceName + "." + ST.Name;
    if (isValidId(TS.findType(Qual))) {
      Diags.error(ST.Loc, "redefinition of type '" + Qual + "'");
      continue;
    }
    RegisteredTypes[I] = TS.addType(ST.Name, Ns, ST.Kind);
    if (ST.Comparable)
      TS.setComparable(RegisteredTypes[I]);
  }
  return true;
}

bool Resolver::resolveBases(const SynFile &File) {
  for (size_t I = 0; I != File.Types.size(); ++I) {
    const SynType &ST = File.Types[I];
    TypeId T = RegisteredTypes[I];
    if (!isValidId(T))
      continue;

    bool SawClassBase = false;
    for (const auto &BaseSegs : ST.Bases) {
      TypeId Base = requireTypeName(BaseSegs, ST.NamespaceName, ST.Loc);
      if (!isValidId(Base))
        continue;
      TypeKind BK = TS.type(Base).Kind;
      if (BK == TypeKind::Interface) {
        TS.addInterface(T, Base);
        continue;
      }
      if (BK != TypeKind::Class) {
        Diags.error(ST.Loc, "type '" + TS.qualifiedName(Base) +
                                "' cannot be used as a base");
        continue;
      }
      if (ST.Kind == TypeKind::Interface) {
        Diags.error(ST.Loc, "an interface can only extend interfaces");
        continue;
      }
      if (SawClassBase) {
        Diags.error(ST.Loc, "multiple base classes for '" + ST.Name + "'");
        continue;
      }
      SawClassBase = true;
      TS.setBaseClass(T, Base);
    }

    // Enum members become literal static fields of the enum type, matching
    // .NET metadata; they then resolve and rank like any other global.
    if (ST.Kind == TypeKind::Enum)
      for (const std::string &Member : ST.Enumerators)
        TS.addField(T, Member, T, /*IsStatic=*/true);
  }
  return true;
}

bool Resolver::resolveMembers(const SynFile &File) {
  MemberMethodIds.assign(File.Types.size(), {});
  for (size_t I = 0; I != File.Types.size(); ++I) {
    const SynType &ST = File.Types[I];
    TypeId T = RegisteredTypes[I];
    MemberMethodIds[I].assign(ST.Members.size(), InvalidId);
    if (!isValidId(T))
      continue;

    for (size_t MI = 0; MI != ST.Members.size(); ++MI) {
      const SynMember &M = ST.Members[MI];
      TypeId MemberTy = InvalidId;
      if (M.IsVoid) {
        MemberTy = TS.voidType();
      } else {
        MemberTy = requireTypeName(M.TypeSegs, ST.NamespaceName, M.Loc);
        if (!isValidId(MemberTy))
          continue;
      }

      switch (M.Kind) {
      case SynMember::Field:
      case SynMember::Property:
        TS.addField(T, M.Name, MemberTy, M.IsStatic,
                    M.Kind == SynMember::Property);
        break;
      case SynMember::Method: {
        std::vector<ParamInfo> Params;
        bool ParamsOk = true;
        for (const SynParam &SP : M.Params) {
          TypeId PT = requireTypeName(SP.TypeSegs, ST.NamespaceName, SP.Loc);
          if (!isValidId(PT)) {
            ParamsOk = false;
            break;
          }
          Params.push_back({SP.Name, PT});
        }
        if (!ParamsOk)
          break;
        MemberMethodIds[I][MI] =
            TS.addMethod(T, M.Name, MemberTy, std::move(Params), M.IsStatic);
        break;
      }
      }
    }
  }
  return true;
}

bool Resolver::resolveBodies(const SynFile &File) {
  for (size_t I = 0; I != File.Types.size(); ++I) {
    const SynType &ST = File.Types[I];
    TypeId T = RegisteredTypes[I];
    if (!isValidId(T))
      continue;
    if (ST.Kind != TypeKind::Class && ST.Kind != TypeKind::Struct)
      continue;

    bool HasMethods = false;
    for (const SynMember &M : ST.Members)
      HasMethods |= M.Kind == SynMember::Method;
    if (!HasMethods)
      continue;

    CodeClass &CC = P.addClass(T);
    for (size_t MI = 0; MI != ST.Members.size(); ++MI) {
      const SynMember &M = ST.Members[MI];
      if (M.Kind != SynMember::Method || !isValidId(MemberMethodIds[I][MI]))
        continue;
      MethodId Decl = MemberMethodIds[I][MI];
      CodeMethod &CM = CC.addMethod(Decl);

      ExprScope Scope;
      Scope.SelfType = T;
      Scope.InStatic = M.IsStatic;
      Scope.Method = &CM;
      for (const ParamInfo &PI : TS.method(Decl).Params) {
        unsigned Slot = CM.addLocal(PI.Name, PI.Type, /*IsParam=*/true);
        Scope.LocalByName[PI.Name] = Slot;
      }

      for (const SynStmt &S : M.Body)
        resolveStmt(S, CM, Scope, ST.NamespaceName,
                    TS.method(Decl).ReturnType);
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Type-name resolution
//===----------------------------------------------------------------------===//

TypeId Resolver::resolveTypeName(const std::vector<std::string> &Segs,
                                 const std::string &ContextNs) {
  std::string Name = joinStrings(Segs, '.');
  // Search the context namespace and its ancestors, innermost first.
  std::vector<std::string> Ctx = splitString(ContextNs, '.');
  while (true) {
    std::string Prefix = joinStrings(Ctx, '.');
    std::string Qual = Prefix.empty() ? Name : Prefix + "." + Name;
    TypeId T = TS.findType(Qual);
    if (isValidId(T))
      return T;
    if (Ctx.empty())
      return InvalidId;
    Ctx.pop_back();
  }
}

TypeId Resolver::requireTypeName(const std::vector<std::string> &Segs,
                                 const std::string &ContextNs, SourceLoc Loc) {
  TypeId T = resolveTypeName(Segs, ContextNs);
  if (!isValidId(T))
    Diags.error(Loc, "unknown type '" + joinStrings(Segs, '.') + "'");
  return T;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

bool Resolver::resolveStmt(const SynStmt &S, CodeMethod &CM, ExprScope &Scope,
                           const std::string &ContextNs, TypeId ReturnType) {
  switch (S.Kind) {
  case SynStmtKind::VarDecl: {
    const Expr *Init = resolveValue(S.Value.get(), Scope);
    if (!Init)
      return false;
    if (Init->type() == TS.voidType()) {
      Diags.error(S.Loc, "cannot declare a variable of type void");
      return false;
    }
    TypeId VarTy =
        Init->type() == TS.nullType() ? TS.objectType() : Init->type();
    unsigned Slot = CM.addLocal(S.Name, VarTy, /*IsParam=*/false);
    Scope.LocalByName[S.Name] = Slot;
    CM.addStmt({StmtKind::LocalDecl, Slot, Init});
    return true;
  }
  case SynStmtKind::TypedDecl: {
    TypeId DeclTy = requireTypeName(S.DeclTypeSegs, ContextNs, S.Loc);
    if (!isValidId(DeclTy))
      return false;
    const Expr *Init = resolveValue(S.Value.get(), Scope);
    if (!Init)
      return false;
    if (!isa<DontCareExpr>(Init) && !TS.assignable(DeclTy, Init->type())) {
      Diags.error(S.Loc, "cannot initialize '" + TS.qualifiedName(DeclTy) +
                             "' from an expression of unrelated type");
      return false;
    }
    unsigned Slot = CM.addLocal(S.Name, DeclTy, /*IsParam=*/false);
    Scope.LocalByName[S.Name] = Slot;
    CM.addStmt({StmtKind::LocalDecl, Slot, Init});
    return true;
  }
  case SynStmtKind::Return: {
    const Expr *Value = nullptr;
    if (S.Value) {
      Value = resolveValue(S.Value.get(), Scope);
      if (!Value)
        return false;
      if (!TS.implicitlyConvertible(Value->type(), ReturnType)) {
        Diags.error(S.Loc, "return value type does not match the method");
        return false;
      }
    } else if (ReturnType != TS.voidType()) {
      Diags.error(S.Loc, "non-void method must return a value");
      return false;
    }
    CM.addStmt({StmtKind::Return, 0, Value});
    return true;
  }
  case SynStmtKind::ExprStmt: {
    const Expr *E = resolveValue(S.Value.get(), Scope);
    if (!E)
      return false;
    CM.addStmt({StmtKind::ExprStmt, 0, E});
    return true;
  }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Expressions (body mode)
//===----------------------------------------------------------------------===//

const Expr *Resolver::resolveValue(const SynExpr *E, ExprScope &Scope) {
  Entity Ent = resolveEntity(E, Scope);
  if (Ent.Kind == Entity::Value)
    return Ent.E;
  if (Ent.Kind == Entity::TypeE)
    Diags.error(E->Loc, "type name used where a value is required");
  else if (Ent.Kind == Entity::NamespaceE)
    Diags.error(E->Loc, "namespace name used where a value is required");
  return nullptr;
}

Resolver::Entity Resolver::resolveEntity(const SynExpr *E, ExprScope &Scope) {
  switch (E->Kind) {
  case SynExprKind::Name: {
    // Local?
    auto It = Scope.LocalByName.find(E->Name);
    if (It != Scope.LocalByName.end())
      return Entity::value(Factory.var(*Scope.Method, It->second));
    // Field of the enclosing type?
    if (isValidId(Scope.SelfType)) {
      FieldId F = TS.findField(Scope.SelfType, E->Name);
      if (isValidId(F)) {
        const FieldInfo &FI = TS.field(F);
        if (FI.IsStatic)
          return Entity::value(
              Factory.fieldAccess(Factory.typeRef(FI.Owner), F));
        if (Scope.InStatic) {
          Diags.error(E->Loc, "instance field '" + E->Name +
                                  "' used in a static context");
          return Entity::none();
        }
        return Entity::value(
            Factory.fieldAccess(Factory.thisRef(Scope.SelfType), F));
      }
    }
    // Type name?
    std::string ContextNs =
        isValidId(Scope.SelfType)
            ? TS.nspace(TS.type(Scope.SelfType).Namespace).FullName
            : std::string();
    TypeId T = resolveTypeName({E->Name}, ContextNs);
    if (isValidId(T))
      return Entity::type(T);
    // Namespace root?
    for (size_t I = 0; I != TS.numNamespaces(); ++I) {
      const NamespaceInfo &NI = TS.nspace(static_cast<NamespaceId>(I));
      if (NI.Segments.size() == 1 && NI.Segments[0] == E->Name)
        return Entity::nspace(E->Name);
    }
    Diags.error(E->Loc, "undeclared identifier '" + E->Name + "'");
    return Entity::none();
  }

  case SynExprKind::This:
    if (Scope.InStatic || !isValidId(Scope.SelfType)) {
      Diags.error(E->Loc, "'this' used in a static context");
      return Entity::none();
    }
    return Entity::value(Factory.thisRef(Scope.SelfType));

  case SynExprKind::Member: {
    Entity Base = resolveEntity(E->Base.get(), Scope);
    switch (Base.Kind) {
    case Entity::Value: {
      TypeId BaseTy = Base.E->type();
      FieldId F = TS.findField(BaseTy, E->Name);
      if (!isValidId(F)) {
        Diags.error(E->Loc, "type '" + TS.qualifiedName(BaseTy) +
                                "' has no field '" + E->Name + "'");
        return Entity::none();
      }
      if (TS.field(F).IsStatic) {
        Diags.error(E->Loc, "static field '" + E->Name +
                                "' accessed through a value");
        return Entity::none();
      }
      return Entity::value(Factory.fieldAccess(Base.E, F));
    }
    case Entity::TypeE: {
      FieldId F = TS.findField(Base.T, E->Name);
      if (isValidId(F) && TS.field(F).IsStatic)
        return Entity::value(
            Factory.fieldAccess(Factory.typeRef(TS.field(F).Owner), F));
      Diags.error(E->Loc, "type '" + TS.qualifiedName(Base.T) +
                              "' has no static field '" + E->Name + "'");
      return Entity::none();
    }
    case Entity::NamespaceE: {
      std::string Path = Base.NsPath + "." + E->Name;
      TypeId T = TS.findType(Path);
      if (isValidId(T))
        return Entity::type(T);
      for (size_t I = 0; I != TS.numNamespaces(); ++I)
        if (TS.nspace(static_cast<NamespaceId>(I)).FullName == Path)
          return Entity::nspace(Path);
      Diags.error(E->Loc, "unknown name '" + Path + "'");
      return Entity::none();
    }
    case Entity::None:
      return Entity::none();
    }
    return Entity::none();
  }

  case SynExprKind::Call: {
    const Expr *Call = resolveCall(E, Scope);
    return Call ? Entity::value(Call) : Entity::none();
  }

  case SynExprKind::IntLit:
    return Entity::value(Factory.intLit(E->IntValue));
  case SynExprKind::FloatLit:
    return Entity::value(Factory.floatLit(E->FloatValue));
  case SynExprKind::BoolLit:
    return Entity::value(Factory.boolLit(E->BoolValue));
  case SynExprKind::StringLit:
    return Entity::value(Factory.stringLit(E->StrValue));
  case SynExprKind::NullLit:
    return Entity::value(Factory.nullLit());

  case SynExprKind::Compare: {
    const Expr *L = resolveValue(E->Base.get(), Scope);
    const Expr *R = resolveValue(E->Rhs.get(), Scope);
    if (!L || !R)
      return Entity::none();
    if (!TS.comparable(L->type(), R->type())) {
      Diags.error(E->Loc, "comparison between incomparable types");
      return Entity::none();
    }
    return Entity::value(Factory.compare(E->CmpOp, L, R));
  }

  case SynExprKind::Assign: {
    const Expr *L = resolveValue(E->Base.get(), Scope);
    const Expr *R = resolveValue(E->Rhs.get(), Scope);
    if (!L || !R)
      return Entity::none();
    if (!isLValue(L)) {
      Diags.error(E->Loc, "assignment target is not assignable");
      return Entity::none();
    }
    if (!TS.assignable(L->type(), R->type())) {
      Diags.error(E->Loc, "assignment between incompatible types");
      return Entity::none();
    }
    return Entity::value(Factory.assign(L, R));
  }

  case SynExprKind::Hole:
  case SynExprKind::UnknownCall:
  case SynExprKind::Suffix:
    Diags.error(E->Loc, "partial-expression syntax is not allowed here");
    return Entity::none();
  }
  return Entity::none();
}

MethodId Resolver::selectOverload(const std::vector<MethodId> &Candidates,
                                  TypeId ReceiverTy,
                                  const std::vector<TypeId> &ArgTys,
                                  bool WantStatic) {
  MethodId Best = InvalidId;
  int BestCost = -1;
  for (MethodId M : Candidates) {
    const MethodInfo &MI = TS.method(M);
    if (MI.IsStatic != WantStatic)
      continue;
    if (MI.Params.size() != ArgTys.size())
      continue;
    int Cost = 0;
    if (!MI.IsStatic) {
      auto D = TS.typeDistance(ReceiverTy, MI.Owner);
      if (!D)
        continue;
      Cost += *D;
    }
    bool Match = true;
    for (size_t I = 0; I != ArgTys.size(); ++I) {
      auto D = TS.typeDistance(ArgTys[I], MI.Params[I].Type);
      if (!D) {
        Match = false;
        break;
      }
      Cost += *D;
    }
    if (!Match)
      continue;
    if (!isValidId(Best) || Cost < BestCost) {
      Best = M;
      BestCost = Cost;
    }
  }
  return Best;
}

const Expr *Resolver::resolveCall(const SynExpr *E, ExprScope &Scope) {
  // Resolve the arguments first.
  std::vector<const Expr *> Args;
  std::vector<TypeId> ArgTys;
  for (const SynExprPtr &A : E->Args) {
    const Expr *Arg = resolveValue(A.get(), Scope);
    if (!Arg)
      return nullptr;
    Args.push_back(Arg);
    ArgTys.push_back(Arg->type());
  }

  const Expr *Receiver = nullptr;
  std::vector<MethodId> Candidates;
  bool WantStatic = false;

  if (!E->Base) {
    // Unqualified call: members of the enclosing type.
    if (!isValidId(Scope.SelfType)) {
      Diags.error(E->Loc, "unqualified call outside a type");
      return nullptr;
    }
    Candidates = TS.findMethods(Scope.SelfType, E->Name);
    // Prefer an instance method when allowed, otherwise a static one.
    if (!Scope.InStatic) {
      MethodId M = selectOverload(Candidates, Scope.SelfType, ArgTys,
                                  /*WantStatic=*/false);
      if (isValidId(M))
        return Factory.call(M, Factory.thisRef(Scope.SelfType), Args);
    }
    MethodId M = selectOverload(Candidates, InvalidId, ArgTys,
                                /*WantStatic=*/true);
    if (isValidId(M))
      return Factory.call(M, nullptr, Args);
    Diags.error(E->Loc, "no matching method '" + E->Name + "' in scope");
    return nullptr;
  }

  Entity Base = resolveEntity(E->Base.get(), Scope);
  switch (Base.Kind) {
  case Entity::Value:
    Receiver = Base.E;
    Candidates = TS.findMethods(Receiver->type(), E->Name);
    WantStatic = false;
    break;
  case Entity::TypeE:
    Candidates = TS.findMethods(Base.T, E->Name);
    WantStatic = true;
    break;
  case Entity::NamespaceE:
    Diags.error(E->Loc, "namespace name used as a call receiver");
    return nullptr;
  case Entity::None:
    return nullptr;
  }

  MethodId M = selectOverload(
      Candidates, Receiver ? Receiver->type() : InvalidId, ArgTys, WantStatic);
  if (!isValidId(M)) {
    Diags.error(E->Loc, "no matching overload of '" + E->Name + "'");
    return nullptr;
  }
  return Factory.call(M, Receiver, Args);
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

Resolver::ExprScope Resolver::scopeFor(const QueryScope &Q) const {
  ExprScope Scope;
  if (Q.Class)
    Scope.SelfType = Q.Class->type();
  Scope.Method = Q.Method;
  if (Q.Method) {
    const MethodInfo &MI = TS.method(Q.Method->decl());
    Scope.InStatic = MI.IsStatic;
    size_t Limit = std::min(Q.StmtIndex, Q.Method->body().size());
    for (unsigned Slot : Q.Method->localsInScopeAt(Limit))
      Scope.LocalByName[Q.Method->locals()[Slot].Name] = Slot;
  }
  return Scope;
}

const PartialExpr *Resolver::resolveQuery(const SynExpr *Q,
                                          const QueryScope &Scope) {
  ExprScope S = scopeFor(Scope);
  return resolvePartial(Q, S);
}

std::vector<MethodId> Resolver::methodsByName(const std::string &Name,
                                              size_t NumCallArgs) {
  std::vector<MethodId> Result;
  for (size_t M = 0; M != TS.numMethods(); ++M) {
    MethodId Id = static_cast<MethodId>(M);
    if (TS.method(Id).Name == Name && TS.numCallParams(Id) == NumCallArgs)
      Result.push_back(Id);
  }
  return Result;
}

const PartialExpr *Resolver::resolvePartial(const SynExpr *E,
                                            ExprScope &Scope) {
  Arena &A = P.arena();
  switch (E->Kind) {
  case SynExprKind::Hole:
    return A.create<HolePE>();

  case SynExprKind::IntLit:
    // In queries, the literal `0` is the don't-care marker (Fig. 5b).
    if (E->IntValue == 0)
      return A.create<DontCarePE>();
    return A.create<ConcretePE>(Factory.intLit(E->IntValue));

  case SynExprKind::FloatLit:
  case SynExprKind::BoolLit:
  case SynExprKind::StringLit:
  case SynExprKind::NullLit:
  case SynExprKind::Name:
  case SynExprKind::This:
  case SynExprKind::Member: {
    const Expr *V = resolveValue(E, Scope);
    if (!V)
      return nullptr;
    return A.create<ConcretePE>(V);
  }

  case SynExprKind::Suffix: {
    const PartialExpr *Base = resolvePartial(E->Base.get(), Scope);
    if (!Base)
      return nullptr;
    return A.create<SuffixPE>(Base, E->Sfx);
  }

  case SynExprKind::UnknownCall: {
    std::vector<const PartialExpr *> Args;
    for (const SynExprPtr &Arg : E->Args) {
      const PartialExpr *PA = resolvePartial(Arg.get(), Scope);
      if (!PA)
        return nullptr;
      Args.push_back(PA);
    }
    return A.create<UnknownCallPE>(std::move(Args));
  }

  case SynExprKind::Call:
    return resolvePartialCall(E, Scope);

  case SynExprKind::Compare: {
    const PartialExpr *L = resolvePartial(E->Base.get(), Scope);
    const PartialExpr *R = resolvePartial(E->Rhs.get(), Scope);
    if (!L || !R)
      return nullptr;
    return A.create<ComparePE>(E->CmpOp, L, R);
  }

  case SynExprKind::Assign: {
    const PartialExpr *L = resolvePartial(E->Base.get(), Scope);
    const PartialExpr *R = resolvePartial(E->Rhs.get(), Scope);
    if (!L || !R)
      return nullptr;
    return A.create<AssignPE>(L, R);
  }
  }
  return nullptr;
}

const PartialExpr *Resolver::resolvePartialCall(const SynExpr *E,
                                                ExprScope &Scope) {
  Arena &A = P.arena();

  // Resolve the arguments as partials.
  std::vector<const PartialExpr *> Args;
  bool AllConcrete = true;
  for (const SynExprPtr &Arg : E->Args) {
    const PartialExpr *PA = resolvePartial(Arg.get(), Scope);
    if (!PA)
      return nullptr;
    AllConcrete &= isa<ConcretePE>(PA);
    Args.push_back(PA);
  }

  // Resolve the callee context. Per the receiver-as-first-argument
  // convention (§3), an instance receiver becomes argument 0.
  std::vector<MethodId> Resolved;
  if (E->Base) {
    Entity Base = resolveEntity(E->Base.get(), Scope);
    switch (Base.Kind) {
    case Entity::Value: {
      Args.insert(Args.begin(), A.create<ConcretePE>(Base.E));
      AllConcrete &= true;
      for (MethodId M : TS.findMethods(Base.E->type(), E->Name))
        if (!TS.method(M).IsStatic &&
            TS.numCallParams(M) == Args.size())
          Resolved.push_back(M);
      break;
    }
    case Entity::TypeE:
      for (MethodId M : TS.findMethods(Base.T, E->Name))
        if (TS.method(M).IsStatic && TS.numCallParams(M) == Args.size())
          Resolved.push_back(M);
      break;
    case Entity::NamespaceE:
      Diags.error(E->Loc, "namespace name used as a call receiver");
      return nullptr;
    case Entity::None:
      return nullptr;
    }
  } else {
    // Unqualified: any method with this simple name whose call signature
    // matches the argument count (the paper's Distance(point, ?) treats the
    // callee name as a global search key).
    Resolved = methodsByName(E->Name, Args.size());
  }

  if (Resolved.empty()) {
    Diags.error(E->Loc, "no method named '" + E->Name + "' accepts " +
                            std::to_string(Args.size()) + " argument(s)");
    return nullptr;
  }

  // If everything is concrete and exactly resolvable, produce a concrete
  // call so it can be used verbatim inside larger queries.
  if (AllConcrete) {
    std::vector<const Expr *> ArgExprs;
    for (const PartialExpr *PA : Args)
      ArgExprs.push_back(cast<ConcretePE>(PA)->expr());
    for (MethodId M : Resolved) {
      const MethodInfo &MI = TS.method(M);
      bool Match = true;
      size_t Offset = MI.IsStatic ? 0 : 1;
      if (!MI.IsStatic &&
          !TS.implicitlyConvertible(ArgExprs[0]->type(), MI.Owner))
        continue;
      for (size_t I = 0; I + Offset < ArgExprs.size() && Match; ++I)
        Match = TS.implicitlyConvertible(ArgExprs[I + Offset]->type(),
                                         MI.Params[I].Type);
      if (!Match)
        continue;
      const Expr *Receiver = MI.IsStatic ? nullptr : ArgExprs[0];
      std::vector<const Expr *> DeclArgs(ArgExprs.begin() + Offset,
                                         ArgExprs.end());
      return A.create<ConcretePE>(Factory.call(M, Receiver, DeclArgs));
    }
    // Fall through: keep it as a known call; the engine will find nothing,
    // which is the honest answer for a type-incorrect concrete call.
  }

  return A.create<KnownCallPE>(E->Name, std::move(Args), std::move(Resolved));
}
