//===- parser/Lexer.cpp - Tokenizer for the mini-C# surface ---------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace petal;

const char *petal::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Ident:
    return "identifier";
  case TokKind::IntLit:
    return "integer literal";
  case TokKind::FloatLit:
    return "float literal";
  case TokKind::StringLit:
    return "string literal";
  case TokKind::KwNamespace:
    return "'namespace'";
  case TokKind::KwClass:
    return "'class'";
  case TokKind::KwInterface:
    return "'interface'";
  case TokKind::KwStruct:
    return "'struct'";
  case TokKind::KwEnum:
    return "'enum'";
  case TokKind::KwStatic:
    return "'static'";
  case TokKind::KwVoid:
    return "'void'";
  case TokKind::KwVar:
    return "'var'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwThis:
    return "'this'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::KwNull:
    return "'null'";
  case TokKind::KwComparable:
    return "'comparable'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Dot:
    return "'.'";
  case TokKind::Question:
    return "'?'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Colon:
    return "':'";
  case TokKind::Assign:
    return "'='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Ge:
    return "'>='";
  case TokKind::Error:
    return "invalid token";
  }
  return "unknown token";
}

static const std::unordered_map<std::string_view, TokKind> &keywordMap() {
  static const std::unordered_map<std::string_view, TokKind> Map = {
      {"namespace", TokKind::KwNamespace},
      {"class", TokKind::KwClass},
      {"interface", TokKind::KwInterface},
      {"struct", TokKind::KwStruct},
      {"enum", TokKind::KwEnum},
      {"static", TokKind::KwStatic},
      {"void", TokKind::KwVoid},
      {"var", TokKind::KwVar},
      {"return", TokKind::KwReturn},
      {"this", TokKind::KwThis},
      {"true", TokKind::KwTrue},
      {"false", TokKind::KwFalse},
      {"null", TokKind::KwNull},
      {"comparable", TokKind::KwComparable},
  };
  return Map;
}

Lexer::Lexer(std::string_view Source, DiagnosticEngine &Diags)
    : Source(Source), Diags(Diags) {}

char Lexer::peek(size_t Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = here();
      advance();
      advance();
      bool Closed = false;
      while (!atEnd()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    return;
  }
}

Token Lexer::next() {
  skipTrivia();
  Token T;
  T.Loc = here();
  if (atEnd()) {
    T.Kind = TokKind::Eof;
    return T;
  }

  char C = advance();

  // Identifiers and keywords.
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text(1, C);
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
      Text.push_back(advance());
    auto It = keywordMap().find(Text);
    if (It != keywordMap().end()) {
      T.Kind = It->second;
    } else {
      T.Kind = TokKind::Ident;
    }
    T.Text = std::move(Text);
    return T;
  }

  // Numeric literals.
  if (std::isdigit(static_cast<unsigned char>(C))) {
    std::string Text(1, C);
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      Text.push_back(advance());
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      Text.push_back(advance());
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        Text.push_back(advance());
      T.Kind = TokKind::FloatLit;
      T.FloatValue = std::stod(Text);
    } else {
      T.Kind = TokKind::IntLit;
      T.IntValue = std::stoll(Text);
    }
    T.Text = std::move(Text);
    return T;
  }

  // String literals.
  if (C == '"') {
    std::string Text;
    bool Closed = false;
    while (!atEnd()) {
      char D = advance();
      if (D == '"') {
        Closed = true;
        break;
      }
      if (D == '\\' && !atEnd())
        D = advance();
      Text.push_back(D);
    }
    if (!Closed)
      Diags.error(T.Loc, "unterminated string literal");
    T.Kind = Closed ? TokKind::StringLit : TokKind::Error;
    T.Text = std::move(Text);
    return T;
  }

  switch (C) {
  case '{':
    T.Kind = TokKind::LBrace;
    return T;
  case '}':
    T.Kind = TokKind::RBrace;
    return T;
  case '(':
    T.Kind = TokKind::LParen;
    return T;
  case ')':
    T.Kind = TokKind::RParen;
    return T;
  case ',':
    T.Kind = TokKind::Comma;
    return T;
  case ';':
    T.Kind = TokKind::Semi;
    return T;
  case '.':
    T.Kind = TokKind::Dot;
    return T;
  case '?':
    T.Kind = TokKind::Question;
    return T;
  case '*':
    T.Kind = TokKind::Star;
    return T;
  case ':':
    T.Kind = TokKind::Colon;
    return T;
  case '=':
    if (peek() == '=') {
      advance();
      T.Kind = TokKind::EqEq;
    } else {
      T.Kind = TokKind::Assign;
    }
    return T;
  case '!':
    if (peek() == '=') {
      advance();
      T.Kind = TokKind::NotEq;
      return T;
    }
    break;
  case '<':
    if (peek() == '=') {
      advance();
      T.Kind = TokKind::Le;
    } else {
      T.Kind = TokKind::Lt;
    }
    return T;
  case '>':
    if (peek() == '=') {
      advance();
      T.Kind = TokKind::Ge;
    } else {
      T.Kind = TokKind::Gt;
    }
    return T;
  default:
    break;
  }

  Diags.error(T.Loc, std::string("unexpected character '") + C + "'");
  T.Kind = TokKind::Error;
  return T;
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokKind::Eof))
      return Tokens;
  }
}
