//===- parser/DeclUnits.cpp - Declaration-unit content hashing ------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "parser/DeclUnits.h"

using namespace petal;

namespace {

/// FNV-1a, 64-bit. Every hashed datum is prefixed with a small tag (or its
/// length, for strings) so that adjacent fields cannot alias — e.g. the
/// member lists ("ab","c") and ("a","bc") hash differently.
class Hasher {
public:
  void byte(uint8_t B) { H = (H ^ B) * 0x100000001b3ull; }

  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      byte(static_cast<uint8_t>(V >> (I * 8)));
  }

  void tag(char C) { byte(static_cast<uint8_t>(C)); }

  void str(const std::string &S) {
    u64(S.size());
    for (char C : S)
      byte(static_cast<uint8_t>(C));
  }

  void segs(const std::vector<std::string> &Path) {
    u64(Path.size());
    for (const std::string &S : Path)
      str(S);
  }

  uint64_t get() const { return H; }

private:
  uint64_t H = 0xcbf29ce484222325ull; // FNV offset basis
};

void hashExpr(Hasher &H, const SynExpr *E) {
  if (!E) {
    H.tag('0');
    return;
  }
  H.tag('E');
  H.byte(static_cast<uint8_t>(E->Kind));
  H.str(E->Name);
  H.byte(static_cast<uint8_t>(E->CmpOp));
  H.byte(static_cast<uint8_t>(E->Sfx));
  H.byte(E->HasParens ? 1 : 0);
  H.u64(static_cast<uint64_t>(E->IntValue));
  // Bit-pattern the double so canonical hashing never depends on printing.
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(E->FloatValue));
  __builtin_memcpy(&Bits, &E->FloatValue, sizeof(Bits));
  H.u64(Bits);
  H.byte(E->BoolValue ? 1 : 0);
  H.str(E->StrValue);
  hashExpr(H, E->Base.get());
  hashExpr(H, E->Rhs.get());
  H.u64(E->Args.size());
  for (const SynExprPtr &A : E->Args)
    hashExpr(H, A.get());
}

void hashStmt(Hasher &H, const SynStmt &S) {
  H.tag('S');
  H.byte(static_cast<uint8_t>(S.Kind));
  H.segs(S.DeclTypeSegs);
  H.str(S.Name);
  hashExpr(H, S.Value.get());
}

/// Everything about a member except its body. Parameter *names* are
/// included deliberately: they become method locals, appear in printed
/// completions, and scope query identifiers — a rename is not body-local.
void hashMemberSig(Hasher &H, const SynMember &M) {
  H.tag('M');
  H.byte(static_cast<uint8_t>(M.Kind));
  H.byte(M.IsStatic ? 1 : 0);
  H.byte(M.IsVoid ? 1 : 0);
  H.segs(M.TypeSegs);
  H.str(M.Name);
  H.u64(M.Params.size());
  for (const SynParam &P : M.Params) {
    H.segs(P.TypeSegs);
    H.str(P.Name);
  }
  H.byte(M.HasBody ? 1 : 0);
}

uint64_t sigHashOf(const SynType &T) {
  Hasher H;
  H.tag('T');
  H.byte(static_cast<uint8_t>(T.Kind));
  H.byte(T.Comparable ? 1 : 0);
  H.str(T.Name);
  H.str(T.NamespaceName);
  H.u64(T.Bases.size());
  for (const auto &B : T.Bases)
    H.segs(B);
  H.segs(T.Enumerators);
  H.u64(T.Members.size());
  for (const SynMember &M : T.Members)
    hashMemberSig(H, M);
  return H.get();
}

uint64_t bodyHashOf(const SynType &T) {
  Hasher H;
  H.tag('B');
  H.u64(T.Members.size());
  for (const SynMember &M : T.Members) {
    H.u64(M.Body.size());
    for (const SynStmt &S : M.Body)
      hashStmt(H, S);
  }
  return H.get();
}

} // namespace

const DeclUnit *DocumentShape::findUnit(const std::string &QualName) const {
  for (const DeclUnit &U : Units)
    if (U.QualName == QualName)
      return &U;
  return nullptr;
}

bool DocumentShape::unitUnchanged(const DocumentShape &Prev,
                                  const std::string &QualName) const {
  const DeclUnit *Now = findUnit(QualName);
  const DeclUnit *Was = Prev.findUnit(QualName);
  return Now && Was && Now->SigHash == Was->SigHash &&
         Now->BodyHash == Was->BodyHash;
}

DocumentShape petal::shapeOfFile(const SynFile &File) {
  DocumentShape Shape;
  Shape.Units.reserve(File.Types.size());
  Hasher Graph, Code;
  for (const SynType &T : File.Types) {
    DeclUnit U;
    U.QualName = T.NamespaceName.empty()
                     ? T.Name
                     : T.NamespaceName + "." + T.Name;
    U.SigHash = sigHashOf(T);
    U.BodyHash = bodyHashOf(T);
    Graph.u64(U.SigHash);
    Code.u64(U.SigHash);
    Code.u64(U.BodyHash);
    Shape.Units.push_back(std::move(U));
  }
  Shape.TypeGraphHash = Graph.get();
  Shape.CodeHash = Code.get();
  return Shape;
}
