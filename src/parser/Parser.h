//===- parser/Parser.h - Recursive-descent parser ---------------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the mini-C# surface language (namespaces, classes, interfaces,
/// structs, enums, fields, properties, methods with statement bodies) and,
/// in query mode, the partial-expression language of Fig. 5b. Produces a
/// purely syntactic tree (Syntax.h); the Resolver lowers it afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_PARSER_PARSER_H
#define PETAL_PARSER_PARSER_H

#include "parser/Lexer.h"
#include "parser/Syntax.h"
#include "support/Diagnostics.h"

#include <vector>

namespace petal {

/// Recursive-descent parser over a pre-lexed token stream.
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Toks(std::move(Tokens)), Diags(Diags) {}

  /// Parses a whole declaration file. Returns false if any error diagnostic
  /// was emitted (a partial tree is still produced for recovery).
  bool parseFile(SynFile &Out);

  /// Parses a single partial-expression query (with an optional top-level
  /// comparison or assignment). Returns null on error.
  SynExprPtr parseQuery();

private:
  // Token-stream primitives.
  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  const Token &advance() {
    const Token &T = Toks[Pos];
    if (Pos + 1 < Toks.size())
      ++Pos;
    return T;
  }
  bool at(TokKind K) const { return peek().is(K); }
  bool accept(TokKind K) {
    if (!at(K))
      return false;
    advance();
    return true;
  }
  bool expect(TokKind K, const char *What);
  void syncTo(TokKind K);

  // Declarations.
  bool parseNamespaceBody(const std::string &NsName, SynFile &Out);
  bool parseTypeDecl(const std::string &NsName, SynFile &Out);
  bool parseEnumDecl(const std::string &NsName, SynFile &Out);
  bool parseMember(SynType &Ty);
  bool parseQualifiedName(std::vector<std::string> &Segs);
  bool parseParams(std::vector<SynParam> &Params);

  // Statements.
  bool parseBlock(std::vector<SynStmt> &Body);
  bool parseStmt(std::vector<SynStmt> &Body);
  bool typedDeclAhead() const;

  // Expressions. QueryMode admits `?`, `0`-as-don't-care, `.?` suffixes and
  // `?({...})`; body mode rejects them.
  SynExprPtr parseExpr(bool QueryMode);
  SynExprPtr parsePostfix(bool QueryMode);
  SynExprPtr parsePrimary(bool QueryMode);
  bool parseCallArgs(std::vector<SynExprPtr> &Args, bool QueryMode);

  SynExprPtr makeNode(SynExprKind Kind, SourceLoc Loc) {
    auto E = std::make_unique<SynExpr>();
    E->Kind = Kind;
    E->Loc = Loc;
    return E;
  }

  std::vector<Token> Toks;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace petal

#endif // PETAL_PARSER_PARSER_H
