//===- parser/Frontend.cpp - One-call parsing entry points ----------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "parser/Frontend.h"

#include "parser/Lexer.h"
#include "parser/Parser.h"

using namespace petal;

bool petal::loadProgramText(std::string_view Source, Program &P,
                            DiagnosticEngine &Diags) {
  SynFile File;
  return parseSourceFile(Source, File, Diags) &&
         resolveParsedFile(File, P, Diags);
}

bool petal::parseSourceFile(std::string_view Source, SynFile &File,
                            DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  Parser Parse(Lex.lexAll(), Diags);
  return Parse.parseFile(File);
}

bool petal::resolveParsedFile(const SynFile &File, Program &P,
                              DiagnosticEngine &Diags) {
  Resolver R(P, Diags);
  return R.resolveFile(File);
}

bool petal::resolveParsedFileReusingDecls(const SynFile &File, Program &P,
                                          DiagnosticEngine &Diags) {
  Resolver R(P, Diags);
  return R.resolveFileReusingDecls(File);
}

const PartialExpr *petal::parseQueryText(std::string_view Query, Program &P,
                                         const QueryScope &Scope,
                                         DiagnosticEngine &Diags) {
  Lexer Lex(Query, Diags);
  Parser Parse(Lex.lexAll(), Diags);
  SynExprPtr Syn = Parse.parseQuery();
  if (!Syn)
    return nullptr;
  Resolver R(P, Diags);
  return R.resolveQuery(Syn.get(), Scope);
}

const CodeClass *petal::findCodeClass(const Program &P,
                                      const std::string &TypeName) {
  const TypeSystem &TS = P.typeSystem();
  for (const auto &C : P.classes()) {
    if (TS.type(C->type()).Name == TypeName ||
        TS.qualifiedName(C->type()) == TypeName)
      return C.get();
  }
  return nullptr;
}

const CodeMethod *petal::findCodeMethod(const Program &P,
                                        const CodeClass &Class,
                                        const std::string &MethodName) {
  const TypeSystem &TS = P.typeSystem();
  for (const auto &M : Class.methods())
    if (TS.method(M->decl()).Name == MethodName)
      return M.get();
  return nullptr;
}
