//===- parser/Syntax.h - Name-level syntax tree -----------------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parser's output: a purely syntactic tree in which all names are
/// uninterpreted strings. The resolver lowers this to the TypeSystem /
/// Program / PartialExpr representations in separate phases so that
/// declarations may reference types defined later in the file.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_PARSER_SYNTAX_H
#define PETAL_PARSER_SYNTAX_H

#include "code/Expr.h"
#include "model/TypeSystem.h"
#include "partial/PartialExpr.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <vector>

namespace petal {

struct SynExpr;
using SynExprPtr = std::unique_ptr<SynExpr>;

/// Kinds of syntactic expressions. The query-only kinds (Hole, UnknownCall,
/// Suffix) are rejected by the body resolver.
enum class SynExprKind {
  Name,        ///< bare identifier
  This,        ///< `this`
  Member,      ///< `base.name`
  Call,        ///< `name(args)` or `base.name(args)`
  IntLit,
  FloatLit,
  BoolLit,
  StringLit,
  NullLit,
  Compare,     ///< `lhs op rhs`
  Assign,      ///< `lhs = rhs`
  Hole,        ///< `?` (queries only)
  UnknownCall, ///< `?({args})` (queries only)
  Suffix,      ///< `base.?f` etc. (queries only)
};

/// One syntactic expression node.
struct SynExpr {
  SynExprKind Kind;
  SourceLoc Loc;
  std::string Name;          ///< identifier / member / method name
  SynExprPtr Base;           ///< member/call/suffix base; binary lhs
  SynExprPtr Rhs;            ///< binary rhs
  std::vector<SynExprPtr> Args;
  CompareOp CmpOp = CompareOp::Lt;
  SuffixKind Sfx = SuffixKind::Field;
  bool HasParens = false;    ///< Call: distinguishes `f()` from `f`
  int64_t IntValue = 0;
  double FloatValue = 0;
  bool BoolValue = false;
  std::string StrValue;
};

/// Statement kinds.
enum class SynStmtKind { VarDecl, TypedDecl, ExprStmt, Return };

/// One syntactic statement.
struct SynStmt {
  SynStmtKind Kind;
  SourceLoc Loc;
  std::vector<std::string> DeclTypeSegs; ///< TypedDecl: the declared type path
  std::string Name;                      ///< declared local name
  SynExprPtr Value;                      ///< initializer / expression / return value
};

/// A formal parameter.
struct SynParam {
  std::vector<std::string> TypeSegs;
  std::string Name;
  SourceLoc Loc;
};

/// A member of a type: field, property, or method.
struct SynMember {
  enum MemberKind { Field, Property, Method } Kind = Field;
  SourceLoc Loc;
  bool IsStatic = false;
  bool IsVoid = false;                   ///< method with `void` return
  std::vector<std::string> TypeSegs;     ///< field type / return type
  std::string Name;
  std::vector<SynParam> Params;
  bool HasBody = false;
  std::vector<SynStmt> Body;
};

/// A type declaration.
struct SynType {
  TypeKind Kind = TypeKind::Class;
  SourceLoc Loc;
  bool Comparable = false;
  std::string Name;
  std::string NamespaceName;                   ///< dotted; empty for root
  std::vector<std::vector<std::string>> Bases; ///< base class / interfaces
  std::vector<SynMember> Members;
  std::vector<std::string> Enumerators;        ///< for enums
};

/// A parsed source file.
struct SynFile {
  std::vector<SynType> Types;
};

} // namespace petal

#endif // PETAL_PARSER_SYNTAX_H
