//===- parser/Parser.cpp - Recursive-descent parser -----------------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

using namespace petal;

bool Parser::expect(TokKind K, const char *What) {
  if (accept(K))
    return true;
  Diags.error(peek().Loc, std::string("expected ") + tokKindName(K) +
                              " in " + What + ", found " +
                              tokKindName(peek().Kind));
  return false;
}

void Parser::syncTo(TokKind K) {
  while (!at(TokKind::Eof) && !at(K))
    advance();
  accept(K);
}

bool Parser::parseQualifiedName(std::vector<std::string> &Segs) {
  if (!at(TokKind::Ident)) {
    Diags.error(peek().Loc, "expected identifier, found " +
                                std::string(tokKindName(peek().Kind)));
    return false;
  }
  Segs.push_back(advance().Text);
  while (at(TokKind::Dot) && peek(1).is(TokKind::Ident)) {
    advance();
    Segs.push_back(advance().Text);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

bool Parser::parseFile(SynFile &Out) {
  bool Ok = true;
  while (!at(TokKind::Eof)) {
    if (accept(TokKind::KwNamespace)) {
      std::vector<std::string> Segs;
      if (!parseQualifiedName(Segs)) {
        syncTo(TokKind::RBrace);
        Ok = false;
        continue;
      }
      std::string NsName;
      for (size_t I = 0; I != Segs.size(); ++I) {
        if (I)
          NsName.push_back('.');
        NsName += Segs[I];
      }
      if (!expect(TokKind::LBrace, "namespace declaration")) {
        Ok = false;
        continue;
      }
      Ok &= parseNamespaceBody(NsName, Out);
      continue;
    }
    if (!parseTypeDecl(/*NsName=*/"", Out))
      Ok = false;
  }
  return Ok && !Diags.hasErrors();
}

bool Parser::parseNamespaceBody(const std::string &NsName, SynFile &Out) {
  bool Ok = true;
  while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
    if (accept(TokKind::KwNamespace)) {
      // Nested namespace: name relative to the enclosing one.
      std::vector<std::string> Segs;
      if (!parseQualifiedName(Segs) ||
          !expect(TokKind::LBrace, "namespace declaration")) {
        syncTo(TokKind::RBrace);
        Ok = false;
        continue;
      }
      std::string Inner = NsName;
      for (const std::string &S : Segs) {
        if (!Inner.empty())
          Inner.push_back('.');
        Inner += S;
      }
      Ok &= parseNamespaceBody(Inner, Out);
      continue;
    }
    if (!parseTypeDecl(NsName, Out))
      Ok = false;
  }
  expect(TokKind::RBrace, "namespace body");
  return Ok;
}

bool Parser::parseTypeDecl(const std::string &NsName, SynFile &Out) {
  bool Comparable = accept(TokKind::KwComparable);

  if (at(TokKind::KwEnum)) {
    if (Comparable)
      Diags.warning(peek().Loc, "enums are always comparable");
    return parseEnumDecl(NsName, Out);
  }

  TypeKind Kind;
  if (accept(TokKind::KwClass)) {
    Kind = TypeKind::Class;
  } else if (accept(TokKind::KwInterface)) {
    Kind = TypeKind::Interface;
  } else if (accept(TokKind::KwStruct)) {
    Kind = TypeKind::Struct;
  } else {
    Diags.error(peek().Loc, "expected a type declaration, found " +
                                std::string(tokKindName(peek().Kind)));
    advance();
    return false;
  }

  SynType Ty;
  Ty.Kind = Kind;
  Ty.Comparable = Comparable;
  Ty.NamespaceName = NsName;
  Ty.Loc = peek().Loc;
  if (!at(TokKind::Ident)) {
    Diags.error(peek().Loc, "expected type name");
    syncTo(TokKind::RBrace);
    return false;
  }
  Ty.Name = advance().Text;

  if (accept(TokKind::Colon)) {
    do {
      std::vector<std::string> Base;
      if (!parseQualifiedName(Base)) {
        syncTo(TokKind::LBrace);
        Out.Types.push_back(std::move(Ty));
        return false;
      }
      Ty.Bases.push_back(std::move(Base));
    } while (accept(TokKind::Comma));
  }

  if (!expect(TokKind::LBrace, "type declaration")) {
    Out.Types.push_back(std::move(Ty));
    return false;
  }

  bool Ok = true;
  while (!at(TokKind::RBrace) && !at(TokKind::Eof))
    if (!parseMember(Ty))
      Ok = false;
  expect(TokKind::RBrace, "type body");
  Out.Types.push_back(std::move(Ty));
  return Ok;
}

bool Parser::parseEnumDecl(const std::string &NsName, SynFile &Out) {
  advance(); // 'enum'
  SynType Ty;
  Ty.Kind = TypeKind::Enum;
  Ty.NamespaceName = NsName;
  Ty.Loc = peek().Loc;
  if (!at(TokKind::Ident)) {
    Diags.error(peek().Loc, "expected enum name");
    syncTo(TokKind::RBrace);
    return false;
  }
  Ty.Name = advance().Text;
  if (!expect(TokKind::LBrace, "enum declaration"))
    return false;
  while (at(TokKind::Ident)) {
    Ty.Enumerators.push_back(advance().Text);
    if (!accept(TokKind::Comma))
      break;
  }
  bool Ok = expect(TokKind::RBrace, "enum body");
  Out.Types.push_back(std::move(Ty));
  return Ok;
}

bool Parser::parseMember(SynType &Ty) {
  SynMember M;
  M.Loc = peek().Loc;
  M.IsStatic = accept(TokKind::KwStatic);

  if (accept(TokKind::KwVoid)) {
    M.IsVoid = true;
  } else if (!parseQualifiedName(M.TypeSegs)) {
    syncTo(TokKind::Semi);
    return false;
  }

  if (!at(TokKind::Ident)) {
    Diags.error(peek().Loc, "expected member name");
    syncTo(TokKind::Semi);
    return false;
  }
  M.Name = advance().Text;

  // Field: `T name;`
  if (accept(TokKind::Semi)) {
    if (M.IsVoid) {
      Diags.error(M.Loc, "field cannot have type void");
      return false;
    }
    M.Kind = SynMember::Field;
    Ty.Members.push_back(std::move(M));
    return true;
  }

  // Property: `T name { get; [set;] }`
  if (at(TokKind::LBrace) && peek(1).isIdent("get")) {
    if (M.IsVoid) {
      Diags.error(M.Loc, "property cannot have type void");
      syncTo(TokKind::RBrace);
      return false;
    }
    advance(); // '{'
    advance(); // 'get'
    expect(TokKind::Semi, "property accessor");
    if (peek().isIdent("set")) {
      advance();
      expect(TokKind::Semi, "property accessor");
    }
    if (!expect(TokKind::RBrace, "property declaration"))
      return false;
    M.Kind = SynMember::Property;
    Ty.Members.push_back(std::move(M));
    return true;
  }

  // Method: `T name(params);` or `T name(params) { body }`
  if (!expect(TokKind::LParen, "method declaration")) {
    syncTo(TokKind::Semi);
    return false;
  }
  M.Kind = SynMember::Method;
  if (!parseParams(M.Params)) {
    syncTo(TokKind::Semi);
    return false;
  }
  if (accept(TokKind::Semi)) {
    Ty.Members.push_back(std::move(M));
    return true;
  }
  if (!expect(TokKind::LBrace, "method body")) {
    syncTo(TokKind::Semi);
    return false;
  }
  M.HasBody = true;
  bool Ok = parseBlock(M.Body);
  Ty.Members.push_back(std::move(M));
  return Ok;
}

bool Parser::parseParams(std::vector<SynParam> &Params) {
  if (accept(TokKind::RParen))
    return true;
  do {
    SynParam P;
    P.Loc = peek().Loc;
    if (!parseQualifiedName(P.TypeSegs))
      return false;
    if (!at(TokKind::Ident)) {
      Diags.error(peek().Loc, "expected parameter name");
      return false;
    }
    P.Name = advance().Text;
    Params.push_back(std::move(P));
  } while (accept(TokKind::Comma));
  return expect(TokKind::RParen, "parameter list");
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

bool Parser::parseBlock(std::vector<SynStmt> &Body) {
  bool Ok = true;
  while (!at(TokKind::RBrace) && !at(TokKind::Eof))
    if (!parseStmt(Body))
      Ok = false;
  expect(TokKind::RBrace, "method body");
  return Ok;
}

bool Parser::typedDeclAhead() const {
  // A typed local declaration is `Ident (. Ident)* Ident =`.
  if (!peek().is(TokKind::Ident))
    return false;
  size_t I = 1;
  while (peek(I).is(TokKind::Dot) && peek(I + 1).is(TokKind::Ident))
    I += 2;
  return peek(I).is(TokKind::Ident) && peek(I + 1).is(TokKind::Assign);
}

bool Parser::parseStmt(std::vector<SynStmt> &Body) {
  SynStmt S;
  S.Loc = peek().Loc;

  if (accept(TokKind::KwVar)) {
    S.Kind = SynStmtKind::VarDecl;
    if (!at(TokKind::Ident)) {
      Diags.error(peek().Loc, "expected variable name after 'var'");
      syncTo(TokKind::Semi);
      return false;
    }
    S.Name = advance().Text;
    if (!expect(TokKind::Assign, "variable declaration")) {
      syncTo(TokKind::Semi);
      return false;
    }
    S.Value = parseExpr(/*QueryMode=*/false);
    if (!S.Value) {
      syncTo(TokKind::Semi);
      return false;
    }
    Body.push_back(std::move(S));
    return expect(TokKind::Semi, "variable declaration");
  }

  if (accept(TokKind::KwReturn)) {
    S.Kind = SynStmtKind::Return;
    if (!at(TokKind::Semi)) {
      S.Value = parseExpr(/*QueryMode=*/false);
      if (!S.Value) {
        syncTo(TokKind::Semi);
        return false;
      }
    }
    Body.push_back(std::move(S));
    return expect(TokKind::Semi, "return statement");
  }

  if (typedDeclAhead()) {
    S.Kind = SynStmtKind::TypedDecl;
    parseQualifiedName(S.DeclTypeSegs);
    S.Name = advance().Text;
    advance(); // '='
    S.Value = parseExpr(/*QueryMode=*/false);
    if (!S.Value) {
      syncTo(TokKind::Semi);
      return false;
    }
    Body.push_back(std::move(S));
    return expect(TokKind::Semi, "variable declaration");
  }

  S.Kind = SynStmtKind::ExprStmt;
  S.Value = parseExpr(/*QueryMode=*/false);
  if (!S.Value) {
    syncTo(TokKind::Semi);
    return false;
  }
  Body.push_back(std::move(S));
  return expect(TokKind::Semi, "statement");
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

SynExprPtr Parser::parseExpr(bool QueryMode) {
  SynExprPtr Lhs = parsePostfix(QueryMode);
  if (!Lhs)
    return nullptr;

  CompareOp Op;
  bool IsCompare = true;
  switch (peek().Kind) {
  case TokKind::Lt:
    Op = CompareOp::Lt;
    break;
  case TokKind::Le:
    Op = CompareOp::Le;
    break;
  case TokKind::Gt:
    Op = CompareOp::Gt;
    break;
  case TokKind::Ge:
    Op = CompareOp::Ge;
    break;
  case TokKind::EqEq:
    Op = CompareOp::Eq;
    break;
  case TokKind::NotEq:
    Op = CompareOp::Ne;
    break;
  case TokKind::Assign:
    IsCompare = false;
    Op = CompareOp::Lt; // unused
    break;
  default:
    return Lhs;
  }

  SourceLoc Loc = advance().Loc;
  SynExprPtr Rhs = parsePostfix(QueryMode);
  if (!Rhs)
    return nullptr;
  auto E = makeNode(IsCompare ? SynExprKind::Compare : SynExprKind::Assign,
                    Loc);
  E->CmpOp = Op;
  E->Base = std::move(Lhs);
  E->Rhs = std::move(Rhs);
  return E;
}

SynExprPtr Parser::parsePostfix(bool QueryMode) {
  SynExprPtr E = parsePrimary(QueryMode);
  if (!E)
    return nullptr;

  while (at(TokKind::Dot)) {
    SourceLoc Loc = advance().Loc;

    // `.?f`, `.?*f`, `.?m`, `.?*m`.
    if (at(TokKind::Question)) {
      if (!QueryMode) {
        Diags.error(peek().Loc,
                    "'.?' suffixes are only allowed in partial expressions");
        return nullptr;
      }
      advance(); // '?'
      bool Star = accept(TokKind::Star);
      if (!at(TokKind::Ident) ||
          (peek().Text != "f" && peek().Text != "m")) {
        Diags.error(peek().Loc, "expected 'f' or 'm' after '.?'");
        return nullptr;
      }
      bool IsField = advance().Text == "f";
      auto S = makeNode(SynExprKind::Suffix, Loc);
      S->Sfx = IsField ? (Star ? SuffixKind::FieldStar : SuffixKind::Field)
                       : (Star ? SuffixKind::MemberStar : SuffixKind::Member);
      S->Base = std::move(E);
      E = std::move(S);
      continue;
    }

    if (!at(TokKind::Ident)) {
      Diags.error(peek().Loc, "expected member name after '.'");
      return nullptr;
    }
    std::string Name = advance().Text;
    if (at(TokKind::LParen)) {
      auto C = makeNode(SynExprKind::Call, Loc);
      C->Name = std::move(Name);
      C->Base = std::move(E);
      C->HasParens = true;
      advance(); // '('
      if (!parseCallArgs(C->Args, QueryMode))
        return nullptr;
      E = std::move(C);
    } else {
      auto M = makeNode(SynExprKind::Member, Loc);
      M->Name = std::move(Name);
      M->Base = std::move(E);
      E = std::move(M);
    }
  }
  return E;
}

bool Parser::parseCallArgs(std::vector<SynExprPtr> &Args, bool QueryMode) {
  if (accept(TokKind::RParen))
    return true;
  do {
    SynExprPtr Arg = parseExpr(QueryMode);
    if (!Arg)
      return false;
    Args.push_back(std::move(Arg));
  } while (accept(TokKind::Comma));
  return expect(TokKind::RParen, "argument list");
}

SynExprPtr Parser::parsePrimary(bool QueryMode) {
  const Token &T = peek();
  switch (T.Kind) {
  case TokKind::Question: {
    if (!QueryMode) {
      Diags.error(T.Loc, "'?' is only allowed in partial expressions");
      return nullptr;
    }
    SourceLoc Loc = advance().Loc;
    // `?({e1, ..., en})` — unknown method call.
    if (at(TokKind::LParen) && peek(1).is(TokKind::LBrace)) {
      advance(); // '('
      advance(); // '{'
      auto U = makeNode(SynExprKind::UnknownCall, Loc);
      if (!at(TokKind::RBrace)) {
        do {
          SynExprPtr Arg = parseExpr(QueryMode);
          if (!Arg)
            return nullptr;
          U->Args.push_back(std::move(Arg));
        } while (accept(TokKind::Comma));
      }
      if (!expect(TokKind::RBrace, "unknown-call argument set") ||
          !expect(TokKind::RParen, "unknown-call query"))
        return nullptr;
      return U;
    }
    return makeNode(SynExprKind::Hole, Loc);
  }
  case TokKind::KwThis:
    return makeNode(SynExprKind::This, advance().Loc);
  case TokKind::IntLit: {
    auto E = makeNode(SynExprKind::IntLit, T.Loc);
    E->IntValue = advance().IntValue;
    return E;
  }
  case TokKind::FloatLit: {
    auto E = makeNode(SynExprKind::FloatLit, T.Loc);
    E->FloatValue = advance().FloatValue;
    return E;
  }
  case TokKind::KwTrue:
  case TokKind::KwFalse: {
    auto E = makeNode(SynExprKind::BoolLit, T.Loc);
    E->BoolValue = advance().Kind == TokKind::KwTrue;
    return E;
  }
  case TokKind::StringLit: {
    auto E = makeNode(SynExprKind::StringLit, T.Loc);
    E->StrValue = advance().Text;
    return E;
  }
  case TokKind::KwNull:
    return makeNode(SynExprKind::NullLit, advance().Loc);
  case TokKind::LParen: {
    advance();
    SynExprPtr Inner = parseExpr(QueryMode);
    if (!Inner)
      return nullptr;
    if (!expect(TokKind::RParen, "parenthesized expression"))
      return nullptr;
    return Inner;
  }
  case TokKind::Ident: {
    SourceLoc Loc = T.Loc;
    std::string Name = advance().Text;
    if (at(TokKind::LParen)) {
      auto C = makeNode(SynExprKind::Call, Loc);
      C->Name = std::move(Name);
      C->HasParens = true;
      advance(); // '('
      if (!parseCallArgs(C->Args, QueryMode))
        return nullptr;
      return C;
    }
    auto E = makeNode(SynExprKind::Name, Loc);
    E->Name = std::move(Name);
    return E;
  }
  default:
    Diags.error(T.Loc, "expected an expression, found " +
                           std::string(tokKindName(T.Kind)));
    return nullptr;
  }
}

SynExprPtr Parser::parseQuery() {
  SynExprPtr E = parseExpr(/*QueryMode=*/true);
  if (!E)
    return nullptr;
  if (!at(TokKind::Eof)) {
    Diags.error(peek().Loc, "unexpected trailing tokens after query");
    return nullptr;
  }
  return E;
}
