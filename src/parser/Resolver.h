//===- parser/Resolver.h - Name resolution and lowering ---------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the syntactic tree to the semantic model in phases: (1) register
/// namespaces and types, (2) resolve bases and enum members, (3) resolve
/// member signatures, (4) resolve method bodies to typed expressions. Also
/// resolves partial-expression queries against a code site (a class, method,
/// and statement index), producing PartialExpr trees for the completion
/// engine.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_PARSER_RESOLVER_H
#define PETAL_PARSER_RESOLVER_H

#include "code/Code.h"
#include "code/ExprFactory.h"
#include "parser/Syntax.h"
#include "partial/PartialExpr.h"
#include "support/Diagnostics.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace petal {

/// Where a query is posed: inside \p Method of \p Class, just before the
/// statement at \p StmtIndex ("code after the query site does not exist
/// yet"). StmtIndex == SIZE_MAX means "at the end of the method".
struct QueryScope {
  const CodeClass *Class = nullptr;
  const CodeMethod *Method = nullptr;
  size_t StmtIndex = static_cast<size_t>(-1);
};

/// Lowers syntax to the semantic model.
class Resolver {
public:
  Resolver(Program &P, DiagnosticEngine &Diags)
      : P(P), TS(P.typeSystem()), Factory(P.typeSystem(), P.arena()),
        Diags(Diags) {}

  /// Runs all four phases over \p File. Returns false if any error was
  /// emitted; already-resolved entities remain in the program.
  bool resolveFile(const SynFile &File);

  /// Incremental-rebuild variant: resolves \p File's method bodies against
  /// a TypeSystem that *already contains* this file's declarations (from a
  /// previous resolveFile of a declaration-identical version — see
  /// DeclUnits.h). The declaration phases run in lookup-only mode, pairing
  /// each syntactic member with its existing FieldId/MethodId by
  /// declaration order and verifying names as it goes; the type system is
  /// never mutated, so a frozen, concurrently shared instance is safe to
  /// pass. Any pairing mismatch returns false *before* body resolution —
  /// the caller then falls back to a full build on a fresh TypeSystem.
  bool resolveFileReusingDecls(const SynFile &File);

  /// Resolves a parsed query against \p Scope. Returns null on error.
  const PartialExpr *resolveQuery(const SynExpr *Q, const QueryScope &Scope);

private:
  /// Expression-resolution scope: the enclosing type, staticness, and the
  /// set of visible locals.
  struct ExprScope {
    TypeId SelfType = InvalidId;
    bool InStatic = true;
    const CodeMethod *Method = nullptr;
    std::unordered_map<std::string, unsigned> LocalByName;
  };

  /// Result of resolving a (possibly partial) name path: a value, a type, a
  /// namespace prefix, or failure.
  struct Entity {
    enum EntityKind { None, Value, TypeE, NamespaceE } Kind = None;
    const Expr *E = nullptr;
    TypeId T = InvalidId;
    std::string NsPath;

    static Entity value(const Expr *E) { return {Value, E, InvalidId, {}}; }
    static Entity type(TypeId T) { return {TypeE, nullptr, T, {}}; }
    static Entity nspace(std::string Path) {
      return {NamespaceE, nullptr, InvalidId, std::move(Path)};
    }
    static Entity none() { return {}; }
  };

  // Phase helpers.
  bool registerTypes(const SynFile &File);
  bool resolveBases(const SynFile &File);
  bool resolveMembers(const SynFile &File);
  bool resolveBodies(const SynFile &File);

  // Lookup-only twins of the declaration phases (resolveFileReusingDecls):
  // they fill RegisteredTypes / MemberMethodIds from the existing model
  // instead of extending it, and report any structural mismatch by
  // returning false.
  bool registerTypesReusing(const SynFile &File);
  bool resolveMembersReusing(const SynFile &File);

  /// Resolves a dotted type name against \p ContextNs (innermost-out), the
  /// root namespace, and the built-ins. InvalidId if not found.
  TypeId resolveTypeName(const std::vector<std::string> &Segs,
                         const std::string &ContextNs);

  /// As above, but emits a diagnostic on failure.
  TypeId requireTypeName(const std::vector<std::string> &Segs,
                         const std::string &ContextNs, SourceLoc Loc);

  bool resolveStmt(const SynStmt &S, CodeMethod &CM, ExprScope &Scope,
                   const std::string &ContextNs, TypeId ReturnType);

  // Expression resolution (body mode).
  Entity resolveEntity(const SynExpr *E, ExprScope &Scope);
  const Expr *resolveValue(const SynExpr *E, ExprScope &Scope);
  const Expr *resolveCall(const SynExpr *E, ExprScope &Scope);

  /// Chooses the best overload among \p Candidates for the given receiver
  /// type (InvalidId when no receiver value is available) and argument
  /// types, minimizing summed type distance. InvalidId when none match.
  MethodId selectOverload(const std::vector<MethodId> &Candidates,
                          TypeId ReceiverTy, const std::vector<TypeId> &ArgTys,
                          bool WantStatic);

  // Query resolution.
  const PartialExpr *resolvePartial(const SynExpr *E, ExprScope &Scope);
  const PartialExpr *resolvePartialCall(const SynExpr *E, ExprScope &Scope);

  /// All methods in the type system with the given simple name and a call
  /// signature of \p NumCallArgs parameters (receiver included).
  std::vector<MethodId> methodsByName(const std::string &Name,
                                      size_t NumCallArgs);

  ExprScope scopeFor(const QueryScope &Q) const;

  Program &P;
  TypeSystem &TS;
  ExprFactory Factory;
  DiagnosticEngine &Diags;

  /// SynFile type index -> registered TypeId for the current resolveFile.
  std::vector<TypeId> RegisteredTypes;
  /// Per type, per member index, the MethodId (InvalidId for fields).
  std::vector<std::vector<MethodId>> MemberMethodIds;
};

} // namespace petal

#endif // PETAL_PARSER_RESOLVER_H
