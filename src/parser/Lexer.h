//===- parser/Lexer.h - Tokenizer for the mini-C# surface ------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer shared by the declaration/code parser and the partial-expression
/// query parser. The query language needs `?` and `*` as first-class tokens
/// (`.?*m` lexes as DOT QUESTION STAR IDENT), so the lexer is deliberately
/// simple and context-free; all disambiguation happens in the parser.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_PARSER_LEXER_H
#define PETAL_PARSER_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace petal {

/// Token kinds. Keywords are distinguished from identifiers during lexing.
enum class TokKind {
  Eof,
  Ident,
  IntLit,
  FloatLit,
  StringLit,
  // Keywords.
  KwNamespace,
  KwClass,
  KwInterface,
  KwStruct,
  KwEnum,
  KwStatic,
  KwVoid,
  KwVar,
  KwReturn,
  KwThis,
  KwTrue,
  KwFalse,
  KwNull,
  KwComparable, ///< petal extension: flags a type as supporting `<`.
  // Punctuation and operators.
  LBrace,
  RBrace,
  LParen,
  RParen,
  Comma,
  Semi,
  Dot,
  Question,
  Star,
  Colon,
  Assign, ///< `=`
  EqEq,
  NotEq,
  Lt,
  Le,
  Gt,
  Ge,
  Error,
};

/// Human-readable token-kind name for diagnostics.
const char *tokKindName(TokKind Kind);

/// One lexed token. Text holds the identifier/literal spelling.
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  int64_t IntValue = 0;
  double FloatValue = 0;
  SourceLoc Loc;

  bool is(TokKind K) const { return Kind == K; }
  bool isIdent(const char *S) const {
    return Kind == TokKind::Ident && Text == S;
  }
};

/// Tokenizes a whole buffer up front. `//` line and `/* */` block comments
/// are skipped. Unterminated strings/comments produce Error tokens and a
/// diagnostic.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags);

  /// Lexes the entire buffer; the result always ends with an Eof token.
  std::vector<Token> lexAll();

private:
  Token next();
  char peek(size_t Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  SourceLoc here() const { return {Line, Col}; }
  void skipTrivia();

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

} // namespace petal

#endif // PETAL_PARSER_LEXER_H
