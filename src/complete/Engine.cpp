//===- complete/Engine.cpp - The completion engine ------------------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "complete/Engine.h"

#include "complete/BaseCorpus.h"

#include <cstddef>

using namespace petal;

CompletionIndexes::CompletionIndexes(Program &P,
                                     std::shared_ptr<const BaseCorpus> BaseIn)
    : MethodsPtr(std::make_shared<MethodIndex>(
          P.typeSystem(),
          std::shared_ptr<const MethodIndex>(BaseIn->Idx->MethodsPtr))),
      MembersPtr(std::make_shared<MemberCache>(
          P.typeSystem(),
          std::shared_ptr<const MemberCache>(BaseIn->Idx->MembersPtr))),
      ReachPtr(std::make_shared<ReachabilityIndex>(
          P.typeSystem(), *MembersPtr,
          std::shared_ptr<const ReachabilityIndex>(BaseIn->Idx->ReachPtr))),
      InferPtr(std::make_shared<AbstractTypeInference>(
          P,
          std::shared_ptr<const AbstractTypeInference>(BaseIn->Idx->InferPtr),
          BaseIn->Solution)),
      Methods(*MethodsPtr), Members(*MembersPtr), Reach(*ReachPtr),
      Infer(*InferPtr), TS(P.typeSystem()), Base(std::move(BaseIn)) {
  assert(Base->Idx && Base->Idx->frozen() &&
         "the base corpus must be frozen before overlays attach");
  assert(P.typeSystem().baseLayer() == Base->TS.get() &&
         "the overlay TypeSystem must layer over the base corpus's");
}

CompletionIndexes::CompletionIndexes(Program &P, const CompletionIndexes &Prev)
    : MethodsPtr(Prev.MethodsPtr), MembersPtr(Prev.MembersPtr),
      ReachPtr(Prev.ReachPtr),
      InferPtr(Prev.Base
                   ? std::make_shared<AbstractTypeInference>(
                         P,
                         std::shared_ptr<const AbstractTypeInference>(
                             Prev.Base->Idx->InferPtr),
                         Prev.Base->Solution)
                   : std::make_shared<AbstractTypeInference>(P)),
      Methods(*MethodsPtr), Members(*MembersPtr), Reach(*ReachPtr),
      Infer(*InferPtr), TS(P.typeSystem()), Base(Prev.Base),
      SharedTypeGraph(true) {
  assert(Prev.frozen() &&
         "type-graph tables can only be shared after freeze()");
  assert(&P.typeSystem() == &Prev.TS &&
         "shared indexes must read the same TypeSystem they were built "
         "over");
}

void CompletionIndexes::freeze(const FreezeOptions &Opts) {
  // Reach is constructed with a reference to Members and consults it for
  // the whole lifetime of the indexes; enforce the declaration
  // (= construction / reverse-destruction) order at compile time. offsetof
  // on this non-standard-layout struct is conditionally supported, which
  // GCC and Clang both honor; member access is fine from inside a member
  // function.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winvalid-offsetof"
  static_assert(offsetof(CompletionIndexes, MembersPtr) <
                    offsetof(CompletionIndexes, ReachPtr),
                "MembersPtr must be declared before ReachPtr: Reach holds "
                "a reference to Members");
#pragma GCC diagnostic pop
  if (Frozen)
    return;
  if (SharedTypeGraph) {
    // The sharing constructor aliased an already-frozen set of type-graph
    // tables (asserted there), and the fresh Infer is immutable after
    // construction — nothing left to compile. Skipping the warm/freeze
    // pass is what makes an incremental document build cheap. (An overlay
    // TypeSystem never dense-freezes — base×base queries go through the
    // base's matrix — so its frozen member tables are expected without one.)
    assert(TS.denseDistancesFrozen() || TS.baseLayer() || !Members.frozen());
    Frozen = true;
    return;
  }
  TS.warmRelationCaches();
  Members.warmAll();
  Methods.warmAll();
  Reach.warmAll();
  if (Opts.MaxDenseBytes != 0) {
    // Compile the warmed caches into dense storage. Order matters only for
    // speed: Reach.freeze() performs N² convertibility checks that become
    // single int16 loads once the type system's matrix is in place, and it
    // walks member edges, which the CSR layout serves linearly.
    TS.freezeDenseDistances(Opts.MaxDenseBytes);
    Members.freeze();
    Methods.freeze();
    Reach.freeze(Opts.MaxDenseBytes);
  }
  Frozen = true;
}

size_t CompletionIndexes::memoryBytes() const {
  // After the sharing constructor the type-graph tables belong to the
  // previous version (or the base); only the fresh inference is new heap.
  size_t Bytes = Infer.memoryBytes();
  if (!SharedTypeGraph)
    Bytes += Methods.memoryBytes() + Members.memoryBytes() +
             Reach.memoryBytes();
  return Bytes;
}

void CompletionIndexes::adoptFrozenTables() {
  assert(!Frozen && "indexes already frozen");
  assert(TS.denseDistancesFrozen() && Members.frozen() && Methods.frozen() &&
         Reach.frozen() &&
         "adoptFrozenTables() requires every sub-index to hold adopted "
         "tables already");
  Frozen = true;
}

std::vector<Completion>
CompletionEngine::complete(const PartialExpr *Query, const CodeSite &Site,
                           size_t N, const CompletionOptions &Opts,
                           const AbsTypeSolution *Solution) {
  TypeSystem &TS = P.typeSystem();
  Stats = {};
  if (Opts.Abort && Opts.Abort->aborted()) {
    Stats.Abandoned = true;
    return {};
  }

  // Fresh arena for this query's synthesized expressions. A second,
  // *scratch* arena backs everything the enumeration allocates but the
  // caller never sees — stream buckets, expansion pools, pending heaps,
  // and the scorers' per-call argument buffers. Keeping them separate
  // matters for batching: the result arena is handed off with the
  // completions (takeQueryArena), and must not drag dead enumeration
  // storage along with it. Scratch dies at the end of this call.
  QueryArena = std::make_unique<Arena>();
  Arena Scratch;
  ExprFactory Factory(TS, *QueryArena);

  Ranker Rank(TS, Opts.Rank);
  Rank.setScratchArena(&Scratch);
  if (Site.Class)
    Rank.setSelfType(Site.Class->type());
  if (Opts.Rank.UseAbstractTypes && Opts.UseAbstractTypes) {
    if (!Solution) {
      if (!FullSolution)
        FullSolution =
            std::make_unique<AbsTypeSolution>(Idx.Infer.solve());
      Solution = FullSolution.get();
    }
    Rank.setAbstractTypes(&Idx.Infer, Solution, Site.Method);
  }

  EngineState ES;
  ES.TS = &TS;
  ES.Factory = &Factory;
  ES.Rank = &Rank;
  ES.MIndex = &Idx.Methods;
  ES.Members = &Idx.Members;
  ES.Reach = Opts.UseReachabilityPruning ? &Idx.Reach : nullptr;
  ES.Class = Site.Class;
  ES.Method = Site.Method;
  ES.StmtIndex = Site.StmtIndex;
  // The ceiling bounds memory even against hostile MaxScore values: the
  // loop below and every stream's bucket storage stop there.
  int EffMaxScore = std::min(Opts.MaxScore, Opts.ScoreCeiling);
  ES.MaxScore = EffMaxScore;
  ES.MaxChainLen = Opts.MaxChainLen;
  ES.ScoreCeiling = Opts.ScoreCeiling;
  ES.Scratch = &Scratch;

  std::unique_ptr<CandidateStream> Top =
      buildStream(ES, Query, Opts.ExpectedType);
  if (!Top)
    return {};

  std::vector<Completion> Results;
  for (int S = 0; S <= EffMaxScore; ++S) {
    // Cooperative abandonment: a cancelled/expired request stops at the
    // next bucket boundary. Partial results are discarded — an abandoned
    // query must never look like a short-but-valid answer.
    if (Opts.Abort && Opts.Abort->aborted()) {
      Stats.Abandoned = true;
      return {};
    }
    Stats.LastBucket = S;
    for (const Candidate &C : Top->bucket(S)) {
      // Top-level expected-type filter for candidates whose stream did not
      // already apply it (streams treat their Target as an emission filter,
      // so this is usually a no-op; don't-cares always pass).
      if (isValidId(Opts.ExpectedType) && isValidId(C.Type)) {
        if (Opts.ExpectedType == TS.voidType()) {
          if (C.Type != TS.voidType())
            continue;
        } else if (!TS.implicitlyConvertible(C.Type, Opts.ExpectedType)) {
          continue;
        }
      }
      Results.push_back({C.E, C.Score});
    }
    if (Results.size() >= N)
      break;
  }
  // The ceiling "hit" stat means it was the binding constraint: the caller
  // asked for deeper exploration than the ceiling allows and still came up
  // short. Running out at the caller's own MaxScore is normal operation.
  Stats.ScoreCeilingHit =
      Results.size() < N && Opts.MaxScore > Opts.ScoreCeiling;
  if (Results.size() > N)
    Results.resize(N);
  if (Opts.Explain) {
    // Cards are exact by construction: scoreCard() is the same traversal
    // scoreExpr() (the streams' emission oracle) runs, with a structured
    // accumulator. Computed only for the N survivors, in the query arena,
    // so results stay self-contained when the arena is handed off.
    for (Completion &C : Results)
      C.Card = QueryArena->create<ScoreCard>(Rank.scoreCard(C.E));
  }
  return Results;
}

size_t CompletionEngine::rankOf(const PartialExpr *Query, const CodeSite &Site,
                                const Expr *Expected, size_t Limit,
                                const CompletionOptions &Opts,
                                const AbsTypeSolution *Solution) {
  std::vector<Completion> Results =
      complete(Query, Site, Limit, Opts, Solution);
  for (size_t I = 0; I != Results.size(); ++I)
    if (exprEquals(Results[I].E, Expected))
      return I + 1;
  return 0;
}
