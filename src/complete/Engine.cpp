//===- complete/Engine.cpp - The completion engine ------------------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "complete/Engine.h"

using namespace petal;

std::vector<Completion>
CompletionEngine::complete(const PartialExpr *Query, const CodeSite &Site,
                           size_t N, const CompletionOptions &Opts,
                           const AbsTypeSolution *Solution) {
  TypeSystem &TS = P.typeSystem();

  // Fresh arena for this query's synthesized expressions.
  QueryArena = std::make_unique<Arena>();
  ExprFactory Factory(TS, *QueryArena);

  Ranker Rank(TS, Opts.Rank);
  if (Site.Class)
    Rank.setSelfType(Site.Class->type());
  if (Opts.Rank.UseAbstractTypes && Opts.UseAbstractTypes) {
    if (!Solution) {
      if (!FullSolution)
        FullSolution =
            std::make_unique<AbsTypeSolution>(Idx.Infer.solve());
      Solution = FullSolution.get();
    }
    Rank.setAbstractTypes(&Idx.Infer, Solution, Site.Method);
  }

  EngineState ES;
  ES.TS = &TS;
  ES.Factory = &Factory;
  ES.Rank = &Rank;
  ES.MIndex = &Idx.Methods;
  ES.Members = &Idx.Members;
  ES.Reach = Opts.UseReachabilityPruning ? &Idx.Reach : nullptr;
  ES.Class = Site.Class;
  ES.Method = Site.Method;
  ES.StmtIndex = Site.StmtIndex;
  ES.MaxScore = Opts.MaxScore;
  ES.MaxChainLen = Opts.MaxChainLen;

  std::unique_ptr<CandidateStream> Top =
      buildStream(ES, Query, Opts.ExpectedType);
  if (!Top)
    return {};

  std::vector<Completion> Results;
  for (int S = 0; S <= Opts.MaxScore; ++S) {
    for (const Candidate &C : Top->bucket(S)) {
      // Top-level expected-type filter for candidates whose stream did not
      // already apply it (streams treat their Target as an emission filter,
      // so this is usually a no-op; don't-cares always pass).
      if (isValidId(Opts.ExpectedType) && isValidId(C.Type)) {
        if (Opts.ExpectedType == TS.voidType()) {
          if (C.Type != TS.voidType())
            continue;
        } else if (!TS.implicitlyConvertible(C.Type, Opts.ExpectedType)) {
          continue;
        }
      }
      Results.push_back({C.E, C.Score});
    }
    if (Results.size() >= N)
      break;
  }
  if (Results.size() > N)
    Results.resize(N);
  return Results;
}

size_t CompletionEngine::rankOf(const PartialExpr *Query, const CodeSite &Site,
                                const Expr *Expected, size_t Limit,
                                const CompletionOptions &Opts,
                                const AbsTypeSolution *Solution) {
  std::vector<Completion> Results =
      complete(Query, Site, Limit, Opts, Solution);
  for (size_t I = 0; I != Results.size(); ++I)
    if (exprEquals(Results[I].E, Expected))
      return I + 1;
  return 0;
}
