//===- complete/Streams.h - Concrete candidate streams ----------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stream classes the engine composes to realize each partial
/// expression form:
///
///   ConcreteStream     a complete expression used verbatim
///   DontCareStream     `0`
///   VarsStream         locals, parameters, `this`, and globals (the `vars`
///                      of §4.2's interpretation of `?` as `vars.?*m`)
///   SuffixStream       `.?f` / `.?*f` / `.?m` / `.?*m` frontier expansion
///   UnknownCallStream  `?({...})` over the method index
///   KnownCallStream    `name(...)` over a resolved overload set
///   BinaryStream       `ee := ee` and `ee < ee` pairing
///   MergeStream        union of streams
///
/// These are internal to the engine but exposed for white-box testing.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_COMPLETE_STREAMS_H
#define PETAL_COMPLETE_STREAMS_H

#include "code/Code.h"
#include "code/ExprFactory.h"
#include "complete/Candidate.h"
#include "index/MemberCache.h"
#include "index/MethodIndex.h"
#include "index/ReachabilityIndex.h"
#include "partial/PartialExpr.h"
#include "rank/Ranking.h"

#include <memory>
#include <queue>
#include <vector>

namespace petal {

/// Shared, per-query state threaded through all streams.
struct EngineState {
  TypeSystem *TS = nullptr;
  ExprFactory *Factory = nullptr; ///< allocates into the query arena
  const Ranker *Rank = nullptr;
  const MethodIndex *MIndex = nullptr;
  const MemberCache *Members = nullptr;
  const ReachabilityIndex *Reach = nullptr; ///< optional pruning index
  const CodeClass *Class = nullptr;
  const CodeMethod *Method = nullptr;
  size_t StmtIndex = static_cast<size_t>(-1);
  /// Exploration cap: buckets beyond this score are never requested.
  int MaxScore = 48;
  /// Hard ceiling stamped onto every stream (CandidateStream::setCeiling):
  /// bucket storage cannot grow past it regardless of MaxScore, so a
  /// hostile or misconfigured MaxScore cannot exhaust memory. The engine
  /// clamps its own loop to min(MaxScore, ScoreCeiling).
  int ScoreCeiling = 256;
  /// Star-suffix chain-length cap. The paper's generator is unbounded; a
  /// practical engine must bound the frontier because the number of chains
  /// grows exponentially with length. Values the experiments strip are at
  /// most three lookups deep, so this does not affect measured ranks.
  int MaxChainLen = 4;
  /// Safety valve on the per-bucket expansion frontier of one star suffix.
  size_t MaxPoolPerBucket = 4096;
  /// Per-query scratch arena backing the streams' bucket storage, expansion
  /// pools, and pending heaps (see CandidateVec). Distinct from the query
  /// *result* arena (ExprFactory's): the result arena is handed to the
  /// caller with the completions, while scratch dies with the query, so
  /// batched results do not retain dead enumeration storage. Null = heap.
  Arena *Scratch = nullptr;
};

/// Builds the stream for a partial expression. \p Target, when valid,
/// restricts *emitted* candidates to those implicitly convertible to it
/// (expansion may still pass through other types) and enables
/// reachability pruning.
std::unique_ptr<CandidateStream>
buildStream(EngineState &ES, const PartialExpr *PE, TypeId Target = InvalidId);

/// A single complete expression, emitted at its ranking score.
class ConcreteStream : public CandidateStream {
public:
  ConcreteStream(EngineState &ES, const Expr *E, TypeId Target);

private:
  void fillBucket(int S, CandidateVec &Out) override;
  Candidate C;
  bool Suppressed;
};

/// The `0` placeholder: one DontCareExpr at score 0.
class DontCareStream : public CandidateStream {
public:
  explicit DontCareStream(EngineState &ES);

private:
  void fillBucket(int S, CandidateVec &Out) override;
  Candidate C;
};

/// Locals, parameters, `this`, and globals (static fields and nullary
/// static methods of every type). Locals score 0; globals pay one lookup
/// step (`Type.Member` is one dot).
class VarsStream : public CandidateStream {
public:
  explicit VarsStream(EngineState &ES);

private:
  void fillBucket(int S, CandidateVec &Out) override;
  EngineState &ES;
  bool EmittedLocals = false;
  bool EmittedGlobals = false;
};

/// `base.?f` / `.?*f` / `.?m` / `.?*m`: emits the base candidates (any
/// suffix may complete to nothing) plus one or, for the star forms, any
/// number of lookup steps. With a Target and a ReachabilityIndex, states
/// that can never reach a convertible type are pruned.
class SuffixStream : public CandidateStream {
public:
  SuffixStream(EngineState &ES, std::unique_ptr<CandidateStream> Base,
               SuffixKind Kind, TypeId Target);

private:
  void fillBucket(int S, CandidateVec &Out) override;
  /// Appends the single-step expansions of \p C to \p Out (score += step).
  void expand(const Candidate &C, CandidateVec &Out);
  bool emits(const Candidate &C) const;
  bool worthExpanding(const Candidate &C) const;

  EngineState &ES;
  std::unique_ptr<CandidateStream> Base;
  SuffixKind Kind;
  TypeId Target;
  /// Pool[S]: all chain states (emitted or not) of score S, the expansion
  /// frontier for score S + step. Arena-backed like the buckets.
  std::vector<CandidateVec> Pool;
};

/// Shared helper for composite call/binary streams: a min-heap of
/// completions discovered early (the "out of score order" buffer). The
/// heap's backing vector allocates from the query scratch arena when one
/// is supplied (default-constructed heaps use the global allocator).
class PendingHeap {
public:
  PendingHeap() = default;
  explicit PendingHeap(Arena *A)
      : Heap(std::greater<Entry>(), EntryVec(ArenaAllocator<Entry>(A))) {}

  void push(int Score, uint64_t Tie, Candidate C) {
    Heap.push({Score, Tie, std::move(C)});
  }

  /// Pops every pending candidate of score exactly \p S into \p Out.
  void drain(int S, CandidateVec &Out) {
    while (!Heap.empty() && Heap.top().Score <= S) {
      assert(Heap.top().Score == S && "pending candidate was skipped");
      Out.push_back(Heap.top().C);
      Heap.pop();
    }
  }

private:
  struct Entry {
    int Score;
    uint64_t Tie;
    Candidate C;
    bool operator>(const Entry &O) const {
      if (Score != O.Score)
        return Score > O.Score;
      return Tie > O.Tie;
    }
  };
  using EntryVec = std::vector<Entry, ArenaAllocator<Entry>>;
  std::priority_queue<Entry, EntryVec, std::greater<Entry>> Heap;
};

/// `?({e1, ..., en})`: unknown-method calls over the method index. For each
/// new combination of argument candidates, the index bucket of the
/// most-selective argument type is scanned, arguments are placed injectively
/// into call-signature positions (best-scoring placement per method), and
/// unfilled positions become `0`.
class UnknownCallStream : public CandidateStream {
public:
  UnknownCallStream(EngineState &ES,
                    std::vector<std::unique_ptr<CandidateStream>> Args,
                    TypeId Target);

private:
  void fillBucket(int S, CandidateVec &Out) override;
  void processCombosWithSum(int Sum);
  void enumerateMethods(const std::vector<Candidate> &Combo, int ArgScore);
  void tryMethod(MethodId M, const std::vector<Candidate> &Combo,
                 int ArgScore);

  EngineState &ES;
  std::vector<std::unique_ptr<CandidateStream>> Args;
  TypeId Target;
  PendingHeap Pending;
  int CombosDone = -1; ///< all combos with sum <= this were processed
  uint64_t Seq = 0;
};

/// `name(e1, ..., en)` for one resolved method: positional matching of the
/// call-signature arguments.
class KnownCallStream : public CandidateStream {
public:
  KnownCallStream(EngineState &ES, MethodId M,
                  std::vector<std::unique_ptr<CandidateStream>> Args,
                  TypeId Target);

private:
  void fillBucket(int S, CandidateVec &Out) override;
  void processCombosWithSum(int Sum);
  void emitCombo(const std::vector<Candidate> &Combo, int ArgScore);

  EngineState &ES;
  MethodId M;
  std::vector<std::unique_ptr<CandidateStream>> Args;
  TypeId Target;
  PendingHeap Pending;
  int CombosDone = -1;
  uint64_t Seq = 0;
};

/// `ee := ee` / `ee < ee`: pairs left and right candidates, grouped by
/// type so compatibility is checked once per type pair.
class BinaryStream : public CandidateStream {
public:
  /// \p IsCompare selects comparison semantics; otherwise assignment.
  BinaryStream(EngineState &ES, bool IsCompare, CompareOp Op,
               std::unique_ptr<CandidateStream> Lhs,
               std::unique_ptr<CandidateStream> Rhs, TypeId Target);

private:
  void fillBucket(int S, CandidateVec &Out) override;
  void crossJoin(const CandidateVec &L, const CandidateVec &R);
  void emitPair(const Candidate &L, const Candidate &R);

  EngineState &ES;
  bool IsCompare;
  CompareOp Op;
  std::unique_ptr<CandidateStream> Lhs, Rhs;
  TypeId Target;
  PendingHeap Pending;
  int DiagDone = -1;
  uint64_t Seq = 0;
};

/// Union of several streams (used for overload sets of known calls).
class MergeStream : public CandidateStream {
public:
  MergeStream(EngineState &ES,
              std::vector<std::unique_ptr<CandidateStream>> Children)
      : Children(std::move(Children)) {
    setCeiling(ES.ScoreCeiling);
    setScratch(ES.Scratch);
  }

private:
  void fillBucket(int S, CandidateVec &Out) override {
    for (auto &C : Children) {
      const auto &B = C->bucket(S);
      Out.insert(Out.end(), B.begin(), B.end());
    }
  }
  std::vector<std::unique_ptr<CandidateStream>> Children;
};

} // namespace petal

#endif // PETAL_COMPLETE_STREAMS_H
