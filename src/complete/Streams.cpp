//===- complete/Streams.cpp - Concrete candidate streams ------------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "complete/Streams.h"

#include <algorithm>
#include <functional>
#include <optional>

using namespace petal;

//===----------------------------------------------------------------------===//
// ConcreteStream
//===----------------------------------------------------------------------===//

ConcreteStream::ConcreteStream(EngineState &ES, const Expr *E, TypeId Target) {
  setCeiling(ES.ScoreCeiling);
  setScratch(ES.Scratch);
  C.E = E;
  C.Score = ES.Rank->scoreExpr(E);
  C.Type = E->type();
  Suppressed = isValidId(Target) && !isa<DontCareExpr>(E) &&
               !ES.TS->implicitlyConvertible(C.Type, Target);
}

void ConcreteStream::fillBucket(int S, CandidateVec &Out) {
  if (!Suppressed && S == C.Score)
    Out.push_back(C);
}

//===----------------------------------------------------------------------===//
// DontCareStream
//===----------------------------------------------------------------------===//

DontCareStream::DontCareStream(EngineState &ES) {
  setCeiling(ES.ScoreCeiling);
  setScratch(ES.Scratch);
  C.E = ES.Factory->dontCare();
  C.Score = 0;
  C.Type = InvalidId;
}

void DontCareStream::fillBucket(int S, CandidateVec &Out) {
  if (S == 0)
    Out.push_back(C);
}

//===----------------------------------------------------------------------===//
// VarsStream
//===----------------------------------------------------------------------===//

VarsStream::VarsStream(EngineState &ES) : ES(ES) {
  setCeiling(ES.ScoreCeiling);
  setScratch(ES.Scratch);
}

void VarsStream::fillBucket(int S, CandidateVec &Out) {
  const TypeSystem &TS = *ES.TS;
  int GlobalScore = ES.Rank->lookupStepCost(); // `Type.Member` is one dot

  if (S == 0 && !EmittedLocals) {
    EmittedLocals = true;
    if (ES.Method) {
      size_t Limit = std::min(ES.StmtIndex, ES.Method->body().size());
      for (unsigned Slot : ES.Method->localsInScopeAt(Limit)) {
        const Expr *V = ES.Factory->var(*ES.Method, Slot);
        Out.push_back({V, 0, V->type()});
      }
      if (!TS.method(ES.Method->decl()).IsStatic) {
        const Expr *This = ES.Factory->thisRef(ES.Method->owner());
        Out.push_back({This, 0, This->type()});
      }
    }
  }

  if (S == GlobalScore && !EmittedGlobals) {
    EmittedGlobals = true;
    // Globals: every static field (enum members included) and every
    // parameterless static method returning a value (§4.2).
    for (size_t F = 0; F != TS.numFields(); ++F) {
      const FieldInfo &FI = TS.field(static_cast<FieldId>(F));
      if (!FI.IsStatic)
        continue;
      const Expr *Access = ES.Factory->fieldAccess(
          ES.Factory->typeRef(FI.Owner), static_cast<FieldId>(F));
      Out.push_back({Access, GlobalScore, FI.Type});
    }
    for (size_t M = 0; M != TS.numMethods(); ++M) {
      const MethodInfo &MI = TS.method(static_cast<MethodId>(M));
      if (!MI.IsStatic || !MI.Params.empty() ||
          MI.ReturnType == TS.voidType())
        continue;
      const Expr *Call =
          ES.Factory->call(static_cast<MethodId>(M), nullptr, {});
      Out.push_back({Call, GlobalScore, MI.ReturnType});
    }
  }
}

//===----------------------------------------------------------------------===//
// SuffixStream
//===----------------------------------------------------------------------===//

SuffixStream::SuffixStream(EngineState &ES,
                           std::unique_ptr<CandidateStream> Base,
                           SuffixKind Kind, TypeId Target)
    : ES(ES), Base(std::move(Base)), Kind(Kind), Target(Target) {
  setCeiling(ES.ScoreCeiling);
  setScratch(ES.Scratch);
}

bool SuffixStream::emits(const Candidate &C) const {
  if (!isValidId(Target))
    return true;
  if (!isValidId(C.Type)) // don't-care passes any expected type
    return true;
  return ES.TS->implicitlyConvertible(C.Type, Target);
}

bool SuffixStream::worthExpanding(const Candidate &C) const {
  if (!isValidId(C.Type))
    return false; // cannot look up members on a don't-care
  if (C.Depth >= ES.MaxChainLen)
    return false; // chain-length exploration bound
  if (!isValidId(Target) || !ES.Reach)
    return true;
  // Reachability pruning: drop states that can never produce a value
  // convertible to the target, no matter how many lookups follow.
  return ES.Reach
      ->minLookupsToConvertible(C.Type, Target, suffixAllowsMethods(Kind))
      .has_value();
}

void SuffixStream::expand(const Candidate &C, CandidateVec &Out) {
  int Step = ES.Rank->lookupStepCost();
  const auto Edges = ES.Members->edges(C.Type);
  size_t Limit = suffixAllowsMethods(Kind) ? Edges.size()
                                           : ES.Members->numFieldEdges(C.Type);
  for (size_t I = 0; I != Limit; ++I) {
    const LookupEdge &E = Edges[I];
    const Expr *Next = E.IsField
                           ? static_cast<const Expr *>(
                                 ES.Factory->fieldAccess(C.E, E.Field))
                           : ES.Factory->call(E.Method, C.E, {});
    Out.push_back({Next, C.Score + Step, E.ResultType, C.Depth + 1});
  }
}

void SuffixStream::fillBucket(int S, CandidateVec &Out) {
  int Step = ES.Rank->lookupStepCost();
  const CandidateVec &BaseBucket = Base->bucket(S);
  ArenaAllocator<Candidate> Alloc(scratch());

  if (Step == 0) {
    // Depth term disabled: chains no longer change the score, so bound the
    // expansion by chain length instead of by score.
    CandidateVec Frontier(Alloc);
    for (const Candidate &C : BaseBucket) {
      if (emits(C))
        Out.push_back(C);
      if (worthExpanding(C))
        Frontier.push_back(C);
    }
    int MaxLen = isStarSuffix(Kind) ? ES.MaxChainLen : 1;
    for (int Len = 0; Len != MaxLen && !Frontier.empty(); ++Len) {
      CandidateVec Next(Alloc);
      for (const Candidate &C : Frontier)
        expand(C, Next);
      Frontier.clear();
      for (const Candidate &C : Next) {
        if (emits(C))
          Out.push_back(C);
        if (worthExpanding(C))
          Frontier.push_back(C);
      }
    }
    return;
  }

  while (Pool.size() <= static_cast<size_t>(S))
    Pool.emplace_back(Alloc);

  // Base candidates: emitted as-is (a `.?` suffix may complete to nothing)
  // and pooled as chain starting points.
  for (const Candidate &C : BaseBucket) {
    if (emits(C))
      Out.push_back(C);
    if (worthExpanding(C))
      Pool[S].push_back(C);
  }

  // Lookup expansions of the frontier one step below.
  if (S - Step >= 0) {
    CandidateVec Expanded(Alloc);
    for (const Candidate &C : Pool[S - Step])
      expand(C, Expanded);
    for (const Candidate &C : Expanded) {
      if (emits(C))
        Out.push_back(C);
      if (isStarSuffix(Kind) && worthExpanding(C) &&
          Pool[S].size() < ES.MaxPoolPerBucket)
        Pool[S].push_back(C);
    }
  }
}

//===----------------------------------------------------------------------===//
// UnknownCallStream
//===----------------------------------------------------------------------===//

UnknownCallStream::UnknownCallStream(
    EngineState &ES, std::vector<std::unique_ptr<CandidateStream>> Args,
    TypeId Target)
    : ES(ES), Args(std::move(Args)), Target(Target), Pending(ES.Scratch) {
  setCeiling(ES.ScoreCeiling);
  setScratch(ES.Scratch);
}

void UnknownCallStream::fillBucket(int S, CandidateVec &Out) {
  for (int Sum = CombosDone + 1; Sum <= S; ++Sum)
    processCombosWithSum(Sum);
  CombosDone = S;
  Pending.drain(S, Out);
}

void UnknownCallStream::processCombosWithSum(int Sum) {
  if (Args.empty()) {
    if (Sum == 0)
      enumerateMethods({}, 0);
    return;
  }
  // Choose one candidate per argument such that the scores sum to Sum.
  std::vector<Candidate> Combo(Args.size());
  std::function<void(size_t, int)> Rec = [&](size_t I, int Remaining) {
    if (I + 1 == Args.size()) {
      for (const Candidate &C : Args[I]->bucket(Remaining)) {
        Combo[I] = C;
        enumerateMethods(Combo, Sum);
      }
      return;
    }
    for (int S = 0; S <= Remaining; ++S) {
      const auto &B = Args[I]->bucket(S);
      if (B.empty())
        continue;
      for (const Candidate &C : B) {
        Combo[I] = C;
        Rec(I + 1, Remaining - S);
      }
    }
  };
  Rec(0, Sum);
}

void UnknownCallStream::enumerateMethods(const std::vector<Candidate> &Combo,
                                         int ArgScore) {
  // Scan the index bucket of the most selective argument type (§4.2).
  // Don't-cares and null literals constrain nothing, so they cannot drive
  // the index choice.
  MethodCandidates Methods;
  bool Constrained = false;
  for (const Candidate &C : Combo) {
    if (!isValidId(C.Type) || C.Type == ES.TS->nullType())
      continue;
    MethodCandidates Set = ES.MIndex->candidatesForArgType(C.Type);
    if (!Constrained || Set.size() < Methods.size()) {
      Methods = Set;
      Constrained = true;
    }
  }
  if (!Constrained)
    Methods = ES.MIndex->allMethods();
  for (MethodId M : Methods)
    tryMethod(M, Combo, ArgScore);
}

void UnknownCallStream::tryMethod(MethodId M,
                                  const std::vector<Candidate> &Combo,
                                  int ArgScore) {
  const TypeSystem &TS = *ES.TS;
  const MethodInfo &MI = TS.method(M);
  size_t NP = TS.numCallParams(M);
  size_t K = Combo.size();
  if (NP < K || NP > 62)
    return;

  if (isValidId(Target)) {
    // Known expected type: filter by return type (void must match void).
    if (Target == TS.voidType()) {
      if (MI.ReturnType != TS.voidType())
        return;
    } else if (!TS.implicitlyConvertible(MI.ReturnType, Target)) {
      return;
    }
  } else if (MI.ReturnType == TS.voidType()) {
    // Void methods are still valid statement completions.
  }

  // Find the cheapest injective placement of the K argument candidates into
  // the NP call-signature positions. An instance method's receiver slot
  // (position 0) must be filled by a real argument, never by `0`.
  struct Placement {
    int Cost;
    std::vector<int> PosOfArg;
  };
  std::optional<Placement> Best;
  std::vector<int> PosOfArg(K, -1);
  uint64_t UsedMask = 0;

  std::function<void(size_t, int)> Search = [&](size_t I, int Cost) {
    if (Best && Cost >= Best->Cost)
      return; // branch-and-bound
    if (I == K) {
      if (!MI.IsStatic && !(UsedMask & 1))
        return; // receiver unfilled
      Best = Placement{Cost, PosOfArg};
      return;
    }
    const Candidate &C = Combo[I];
    for (size_t Pos = 0; Pos != NP; ++Pos) {
      if (UsedMask & (1ull << Pos))
        continue;
      int StepCost = 0;
      if (isValidId(C.Type)) {
        auto D = TS.typeDistance(C.Type, TS.callParamType(M, Pos));
        if (!D)
          continue;
        StepCost += ES.Rank->options().UseTypeDistance ? *D : 0;
        StepCost += ES.Rank->abstractArgCost(C.E, M, Pos, MI.Owner);
      }
      UsedMask |= 1ull << Pos;
      PosOfArg[I] = static_cast<int>(Pos);
      Search(I + 1, Cost + StepCost);
      UsedMask &= ~(1ull << Pos);
      PosOfArg[I] = -1;
    }
  };
  Search(0, 0);
  if (!Best)
    return;

  // Materialize the call: mapped positions take the argument expressions,
  // the rest become `0` (the paper makes no attempt to fill them, §3).
  std::vector<const Expr *> CallArgs(NP, nullptr);
  for (size_t I = 0; I != K; ++I)
    CallArgs[Best->PosOfArg[I]] = Combo[I].E;
  for (const Expr *&Slot : CallArgs)
    if (!Slot)
      Slot = ES.Factory->dontCare();

  const Expr *Receiver = nullptr;
  std::vector<const Expr *> DeclArgs;
  if (!MI.IsStatic) {
    Receiver = CallArgs[0];
    DeclArgs.assign(CallArgs.begin() + 1, CallArgs.end());
  } else {
    DeclArgs = CallArgs;
  }
  const Expr *Call = ES.Factory->call(M, Receiver, DeclArgs);

  // Score through the standalone scorer so the engine's result provably
  // matches the Fig. 7 specification (Ranker::scoreExpr). The placement
  // search above already minimized the variable part, so this evaluates the
  // same sum. (void)ArgScore documents that argument scores are subsumed.
  (void)ArgScore;
  int Score = ES.Rank->scoreExpr(Call);
  // Ties break towards fewer parameters (fewer `0` fills), then by method
  // declaration order. Deliberately NOT by index-visit order: the index BFS
  // visits nearer types first, which would smuggle a type-distance signal
  // into tie-breaking and mask the Table 2 ablation of the t term.
  uint64_t Tie = (static_cast<uint64_t>(NP) << 56) |
                 (static_cast<uint64_t>(static_cast<uint32_t>(M)) << 24) |
                 (Seq++ & 0xFFFFFF);
  Pending.push(Score, Tie, {Call, Score, MI.ReturnType});
}

//===----------------------------------------------------------------------===//
// KnownCallStream
//===----------------------------------------------------------------------===//

KnownCallStream::KnownCallStream(
    EngineState &ES, MethodId M,
    std::vector<std::unique_ptr<CandidateStream>> Args, TypeId Target)
    : ES(ES), M(M), Args(std::move(Args)), Target(Target),
      Pending(ES.Scratch) {
  setCeiling(ES.ScoreCeiling);
  setScratch(ES.Scratch);
  assert(this->Args.size() == ES.TS->numCallParams(M) &&
         "argument count must match the call signature");
}

void KnownCallStream::fillBucket(int S, CandidateVec &Out) {
  for (int Sum = CombosDone + 1; Sum <= S; ++Sum)
    processCombosWithSum(Sum);
  CombosDone = S;
  Pending.drain(S, Out);
}

void KnownCallStream::processCombosWithSum(int Sum) {
  if (Args.empty()) {
    if (Sum == 0)
      emitCombo({}, 0);
    return;
  }
  std::vector<Candidate> Combo(Args.size());
  std::function<void(size_t, int)> Rec = [&](size_t I, int Remaining) {
    if (I + 1 == Args.size()) {
      for (const Candidate &C : Args[I]->bucket(Remaining)) {
        Combo[I] = C;
        emitCombo(Combo, Sum);
      }
      return;
    }
    for (int S = 0; S <= Remaining; ++S) {
      const auto &B = Args[I]->bucket(S);
      if (B.empty())
        continue;
      for (const Candidate &C : B) {
        Combo[I] = C;
        Rec(I + 1, Remaining - S);
      }
    }
  };
  Rec(0, Sum);
}

void KnownCallStream::emitCombo(const std::vector<Candidate> &Combo,
                                int ArgScore) {
  const TypeSystem &TS = *ES.TS;
  const MethodInfo &MI = TS.method(M);

  if (isValidId(Target) && !TS.implicitlyConvertible(MI.ReturnType, Target))
    return;

  TypeId RecvTy = MI.Owner;
  if (!MI.IsStatic && !Combo.empty() && isValidId(Combo[0].Type))
    RecvTy = Combo[0].Type;

  int Extra = 0;
  for (size_t I = 0; I != Combo.size(); ++I) {
    const Candidate &C = Combo[I];
    if (!isValidId(C.Type))
      continue; // don't-care argument
    auto D = TS.typeDistance(C.Type, TS.callParamType(M, I));
    if (!D)
      return; // type-incorrect combination
    Extra += ES.Rank->options().UseTypeDistance ? *D : 0;
    Extra += ES.Rank->abstractArgCost(C.E, M, I, RecvTy);
  }

  std::vector<const Expr *> CallArgs;
  CallArgs.reserve(Combo.size());
  for (const Candidate &C : Combo)
    CallArgs.push_back(C.E);

  const Expr *Receiver = nullptr;
  std::vector<const Expr *> DeclArgs;
  if (!MI.IsStatic) {
    if (CallArgs.empty())
      return;
    Receiver = CallArgs[0];
    DeclArgs.assign(CallArgs.begin() + 1, CallArgs.end());
  } else {
    DeclArgs = CallArgs;
  }
  const Expr *Call = ES.Factory->call(M, Receiver, DeclArgs);

  (void)ArgScore;
  (void)Extra; // the combination was validated above; score via the oracle
  int Score = ES.Rank->scoreExpr(Call);
  Pending.push(Score, Seq++, {Call, Score, MI.ReturnType});
}

//===----------------------------------------------------------------------===//
// BinaryStream
//===----------------------------------------------------------------------===//

BinaryStream::BinaryStream(EngineState &ES, bool IsCompare, CompareOp Op,
                           std::unique_ptr<CandidateStream> Lhs,
                           std::unique_ptr<CandidateStream> Rhs, TypeId Target)
    : ES(ES), IsCompare(IsCompare), Op(Op), Lhs(std::move(Lhs)),
      Rhs(std::move(Rhs)), Target(Target), Pending(ES.Scratch) {
  setCeiling(ES.ScoreCeiling);
  setScratch(ES.Scratch);
}

void BinaryStream::fillBucket(int S, CandidateVec &Out) {
  for (int Diag = DiagDone + 1; Diag <= S; ++Diag)
    for (int SL = 0; SL <= Diag; ++SL)
      crossJoin(Lhs->bucket(SL), Rhs->bucket(Diag - SL));
  DiagDone = S;
  Pending.drain(S, Out);
}

void BinaryStream::crossJoin(const CandidateVec &L, const CandidateVec &R) {
  if (L.empty() || R.empty())
    return;
  for (const Candidate &CL : L)
    for (const Candidate &CR : R)
      emitPair(CL, CR);
}

void BinaryStream::emitPair(const Candidate &L, const Candidate &R) {
  const TypeSystem &TS = *ES.TS;
  bool LWild = !isValidId(L.Type);
  bool RWild = !isValidId(R.Type);

  int Extra = 0;
  if (IsCompare) {
    if (!LWild && !RWild) {
      if (!TS.comparable(L.Type, R.Type))
        return;
      Extra += ES.Rank->operandDistanceCost(L.Type, R.Type);
      Extra += ES.Rank->abstractOperandCost(L.E, R.E);
      Extra += ES.Rank->compareNameCost(L.E, R.E);
    }
  } else {
    if (!LWild && !isLValue(L.E))
      return; // assignment target must be assignable
    if (!LWild && !RWild) {
      if (!TS.assignable(L.Type, R.Type))
        return;
      Extra += ES.Rank->typeDistanceCost(R.Type, L.Type);
      Extra += ES.Rank->abstractOperandCost(L.E, R.E);
    }
  }

  Arena &A = ES.Factory->arena();
  const Expr *E;
  TypeId ResultTy;
  if (IsCompare) {
    E = A.create<CompareExpr>(Op, L.E, R.E, TS.boolType());
    ResultTy = TS.boolType();
  } else {
    E = A.create<AssignExpr>(L.E, R.E);
    ResultTy = L.Type;
  }

  if (isValidId(Target) && isValidId(ResultTy) &&
      !TS.implicitlyConvertible(ResultTy, Target))
    return;

  (void)Extra; // validated above; score via the oracle for consistency
  int Score = ES.Rank->scoreExpr(E);
  Pending.push(Score, Seq++, {E, Score, ResultTy});
}

//===----------------------------------------------------------------------===//
// buildStream
//===----------------------------------------------------------------------===//

/// Methods in the whole type system named \p Name with \p NumCallArgs
/// call-signature parameters (engine-side fallback when a KnownCallPE was
/// built programmatically without a resolved overload set).
static std::vector<MethodId> resolveByName(const TypeSystem &TS,
                                           const std::string &Name,
                                           size_t NumCallArgs) {
  std::vector<MethodId> Out;
  for (size_t M = 0; M != TS.numMethods(); ++M) {
    MethodId Id = static_cast<MethodId>(M);
    if (TS.method(Id).Name == Name && TS.numCallParams(Id) == NumCallArgs)
      Out.push_back(Id);
  }
  return Out;
}

std::unique_ptr<CandidateStream>
petal::buildStream(EngineState &ES, const PartialExpr *PE, TypeId Target) {
  switch (PE->kind()) {
  case PartialKind::Hole:
    // `?` is interpreted as vars.?*m (§4.2).
    return std::make_unique<SuffixStream>(
        ES, std::make_unique<VarsStream>(ES), SuffixKind::MemberStar, Target);

  case PartialKind::DontCare:
    return std::make_unique<DontCareStream>(ES);

  case PartialKind::Concrete:
    return std::make_unique<ConcreteStream>(
        ES, cast<ConcretePE>(PE)->expr(), Target);

  case PartialKind::Suffix: {
    const auto *S = cast<SuffixPE>(PE);
    return std::make_unique<SuffixStream>(ES, buildStream(ES, S->base()),
                                          S->suffix(), Target);
  }

  case PartialKind::UnknownCall: {
    const auto *U = cast<UnknownCallPE>(PE);
    std::vector<std::unique_ptr<CandidateStream>> Args;
    for (const PartialExpr *Arg : U->args())
      Args.push_back(buildStream(ES, Arg));
    return std::make_unique<UnknownCallStream>(ES, std::move(Args), Target);
  }

  case PartialKind::KnownCall: {
    const auto *K = cast<KnownCallPE>(PE);
    std::vector<MethodId> Methods = K->resolved();
    if (Methods.empty())
      Methods = resolveByName(*ES.TS, K->name(), K->args().size());
    std::vector<std::unique_ptr<CandidateStream>> PerMethod;
    for (MethodId M : Methods) {
      if (ES.TS->numCallParams(M) != K->args().size())
        continue;
      std::vector<std::unique_ptr<CandidateStream>> Args;
      for (size_t I = 0; I != K->args().size(); ++I)
        Args.push_back(
            buildStream(ES, K->args()[I], ES.TS->callParamType(M, I)));
      PerMethod.push_back(
          std::make_unique<KnownCallStream>(ES, M, std::move(Args), Target));
    }
    return std::make_unique<MergeStream>(ES, std::move(PerMethod));
  }

  case PartialKind::Compare: {
    const auto *C = cast<ComparePE>(PE);
    return std::make_unique<BinaryStream>(ES, /*IsCompare=*/true, C->op(),
                                          buildStream(ES, C->lhs()),
                                          buildStream(ES, C->rhs()), Target);
  }

  case PartialKind::Assign: {
    const auto *A = cast<AssignPE>(PE);
    return std::make_unique<BinaryStream>(
        ES, /*IsCompare=*/false, CompareOp::Lt, buildStream(ES, A->lhs()),
        buildStream(ES, A->rhs()), Target);
  }
  }
  return nullptr;
}
