//===- complete/Engine.h - The completion engine ----------------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the library: given a partial expression and a
/// code site, produce the top-n completions in ascending score order
/// (Algorithm 1 of the paper, realized as score-bucketed streams).
///
/// Typical use:
/// \code
///   TypeSystem TS;            Program P(TS);
///   loadProgramText(Source, P, Diags);        // or build programmatically
///   CompletionIndexes Idx(P);                 // shared across queries
///   CompletionEngine Engine(P, Idx);
///   auto Results = Engine.complete(Query, Site, /*N=*/10);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_COMPLETE_ENGINE_H
#define PETAL_COMPLETE_ENGINE_H

#include "code/Code.h"
#include "complete/Streams.h"
#include "index/MemberCache.h"
#include "index/MethodIndex.h"
#include "index/ReachabilityIndex.h"
#include "infer/AbstractTypes.h"
#include "partial/PartialExpr.h"
#include "rank/Ranking.h"
#include "support/Abort.h"

#include <memory>
#include <vector>

namespace petal {

struct BaseCorpus;

/// Controls how CompletionIndexes::freeze() compiles the lazy caches into
/// dense storage (see DESIGN.md, "Frozen index memory layout").
struct FreezeOptions {
  /// Byte budget for each family of dense TypeId×TypeId int16 matrices
  /// (the type system's conversion distances, and the reachability index's
  /// exact- and convertible-distance tables). Corpora whose matrices would
  /// exceed the budget keep the warmed lazy path for that index instead.
  /// 0 disables dense compilation entirely — freeze() then only warms the
  /// lazy caches, which is the legacy behavior the equivalence tests
  /// compare against.
  size_t MaxDenseBytes = 256u << 20;
};

/// The shared, query-independent indexes: the method index (§4.2), the
/// member-lookup cache, the reachability index, and the abstract type
/// inference. Build once per corpus.
///
/// Concurrency: several of the indexes populate caches lazily on first
/// query, which is only safe single-threaded. Call freeze() once before
/// sharing an instance across threads (BatchExecutor does this for you);
/// afterwards every index read is a pure load from immutable storage —
/// there is no lock anywhere on the post-freeze query read path. See
/// DESIGN.md, "Concurrency model".
///
/// Ownership: the four indexes are held by shared_ptr internally and
/// exposed as references. The split exists for incremental document
/// rebuilds (DESIGN.md §12): the type-graph-derived indexes (Methods,
/// Members, Reach) depend only on the TypeSystem, so when an edit leaves
/// the type graph untouched the sharing constructor aliases the previous
/// version's *frozen* tables — immutable, hence race-free across the old
/// and new document — while Infer, which reads every method body, is
/// rebuilt against the new Program.
///
/// In overlay mode (base/overlay workspace, DESIGN.md §14) the four index
/// objects hold only the document's entities and answer base-entity
/// queries from the shared BaseCorpus's frozen tables; the overlay
/// constructor wires each sub-index to its base counterpart. The engine
/// reads the same four references either way.
struct CompletionIndexes {
  explicit CompletionIndexes(Program &P)
      : MethodsPtr(std::make_shared<MethodIndex>(P.typeSystem())),
        MembersPtr(std::make_shared<MemberCache>(P.typeSystem())),
        ReachPtr(std::make_shared<ReachabilityIndex>(P.typeSystem(),
                                                     *MembersPtr)),
        InferPtr(std::make_shared<AbstractTypeInference>(P)),
        Methods(*MethodsPtr), Members(*MembersPtr), Reach(*ReachPtr),
        Infer(*InferPtr), TS(P.typeSystem()) {}

  /// Overlay constructor: \p P is a document program resolved against
  /// \p BaseIn's symbol tables (its TypeSystem was built with the overlay
  /// TypeSystem constructor over BaseIn->TS). Builds overlay layers over
  /// the base's frozen indexes; freeze() then compacts only the overlay
  /// deltas. Defined in Engine.cpp (needs BaseCorpus's definition).
  CompletionIndexes(Program &P, std::shared_ptr<const BaseCorpus> BaseIn);

  /// Sharing constructor: adopts \p Prev's frozen type-graph tables and
  /// builds a fresh abstract-type inference over \p P. Requires \p Prev to
  /// be frozen (sharing lazily-filling caches across documents would race)
  /// and \p P to use the same TypeSystem instance \p Prev was built over —
  /// the caller (the incremental session build) guarantees both. When
  /// \p Prev is an overlay, the new instance shares the same base and the
  /// fresh inference extends the base solution again.
  CompletionIndexes(Program &P, const CompletionIndexes &Prev);

  /// Eagerly populates every lazily filled cache (the type system's
  /// ancestor distances, the member edges, the method-index supertype
  /// unions, and the reachability distance maps), then — budget permitting
  /// — compiles them into immutable dense tables: TypeId×TypeId int16
  /// distance matrices, CSR member edges, and contiguous pre-merged
  /// method-index spans. Idempotent; required before concurrent use,
  /// harmless (and often useful — first-touch cost moves out of the
  /// measured path) in single-threaded use.
  void freeze() { freeze(FreezeOptions{}); }
  void freeze(const FreezeOptions &Opts);
  bool frozen() const { return Frozen; }

  /// Marks the indexes frozen after the snapshot loader has installed
  /// mapped tables into every sub-index via their adoptFrozen hooks.
  /// freeze() must NOT run on this path — it would redo the warm passes
  /// whose absence is the whole point of warm-starting. Requires all four
  /// dense stores to be populated already.
  void adoptFrozenTables();

  /// True when this instance aliases a previous version's type-graph
  /// tables (built by the sharing constructor). Telemetry only.
  bool sharesTypeGraphTables() const { return SharedTypeGraph; }

  /// The TypeSystem every index reads (the snapshot writer serializes its
  /// dense distance table alongside the index tables).
  const TypeSystem &typeSystem() const { return TS; }

  /// The shared base layer these indexes overlay; null for a monolithic
  /// corpus.
  const std::shared_ptr<const BaseCorpus> &baseCorpus() const { return Base; }

  /// Approximate heap bytes owned by the four index layers (a shared base
  /// or a previous version's aliased tables are not re-counted).
  size_t memoryBytes() const;

private:
  // NOTE on member order: Reach holds a reference to Members (its BFS
  // walks the member edges), so MembersPtr must be declared — and
  // therefore constructed — before ReachPtr, and destroyed after it.
  // Engine.cpp static_asserts this ordering; do not reorder these fields.
  // The reference members below must follow the pointers they bind to.
  std::shared_ptr<MethodIndex> MethodsPtr;
  std::shared_ptr<MemberCache> MembersPtr;
  std::shared_ptr<ReachabilityIndex> ReachPtr;
  std::shared_ptr<AbstractTypeInference> InferPtr;

public:
  MethodIndex &Methods;
  MemberCache &Members;
  ReachabilityIndex &Reach;
  AbstractTypeInference &Infer;

private:
  const TypeSystem &TS;
  /// The shared base layer (overlay mode); keeps the base alive for as
  /// long as any overlay index can reach into its tables.
  std::shared_ptr<const BaseCorpus> Base;
  bool Frozen = false;
  bool SharedTypeGraph = false;
};

/// Per-query knobs.
struct CompletionOptions {
  RankingOptions Rank;
  /// Optional expected type of the completion; results are filtered to
  /// those convertible to it (void requires void), as in Fig. 12.
  TypeId ExpectedType = InvalidId;
  /// Exploration cap on the ranking score.
  int MaxScore = 48;
  /// Hard ceiling on candidate enumeration, independent of MaxScore: the
  /// effective exploration cap is min(MaxScore, ScoreCeiling), and bucket
  /// storage inside the streams cannot grow past it (see
  /// CandidateStream::setCeiling). The generous default means it only
  /// binds when a caller raises MaxScore past it — it exists so untrusted
  /// MaxScore values (e.g. from a service request) bound memory. Reported
  /// in QueryStats when it terminates an unfinished enumeration.
  int ScoreCeiling = 256;
  /// Star-suffix chain-length cap (see EngineState::MaxChainLen).
  int MaxChainLen = 4;
  /// Disable to measure the effect of the reachability index (an ablation;
  /// the paper describes the index but did not implement it).
  bool UseReachabilityPruning = true;
  /// Disable to skip the abstract-type term without rebuilding options.
  bool UseAbstractTypes = true;
  /// Attach a per-term ScoreCard to every returned completion (see
  /// Completion::Card). Off by default: the hot path ranks by the scalar
  /// score alone, and cards are computed only for the N results actually
  /// returned, so explain costs nothing until asked for.
  bool Explain = false;
  /// Optional cooperative cancellation: the engine polls this at each
  /// score-bucket boundary and abandons the query (empty results,
  /// QueryStats::Abandoned set) once it reports aborted. Abandoned results
  /// are never returned to clients or cached, so the signal cannot perturb
  /// the bit-identical-results contract. Null (the default) disables
  /// polling entirely.
  const AbortSignal *Abort = nullptr;
};

/// One result: the completion and its ranking score (lower = better).
struct Completion {
  const Expr *E = nullptr;
  int Score = 0;
  /// The per-term breakdown of Score, present iff the query ran with
  /// CompletionOptions::Explain. Allocated in the same query arena as E,
  /// so it has exactly E's lifetime; Card->total() == Score always.
  const ScoreCard *Card = nullptr;
};

/// The completion engine. Holds shared indexes by reference; each call to
/// complete() allocates result expressions in an internal arena that is
/// reset on the next call, so results must be consumed (or printed) before
/// the engine is reused.
class CompletionEngine {
public:
  CompletionEngine(Program &P, CompletionIndexes &Idx)
      : P(P), Idx(Idx) {}

  /// Telemetry about one complete() call (see lastQueryStats()).
  struct QueryStats {
    /// The enumeration stopped at the score ceiling with fewer than N
    /// results — deeper candidates exist that MaxScore alone would have
    /// reached. Surfaced by the service in $/stats.
    bool ScoreCeilingHit = false;
    /// The last score bucket scanned (-1 if the query built no stream).
    int LastBucket = -1;
    /// The query was abandoned mid-enumeration because
    /// CompletionOptions::Abort reported aborted (deadline passed, request
    /// cancelled, or watchdog fired). The returned results are incomplete
    /// and must not be cached or served.
    bool Abandoned = false;
  };

  /// Completes \p Query at \p Site, returning at most \p N results in
  /// ascending score order (ties in discovery order, deterministically).
  ///
  /// \p Solution optionally supplies a solved abstract-type partition (the
  /// evaluation passes per-site exclusions); when null and the abstract
  /// term is enabled, the full corpus solution is computed and cached.
  std::vector<Completion> complete(const PartialExpr *Query,
                                   const CodeSite &Site, size_t N,
                                   const CompletionOptions &Opts = {},
                                   const AbsTypeSolution *Solution = nullptr);

  /// The rank (1-based) of the first result structurally equal to
  /// \p Expected within the top \p Limit completions; 0 if absent. A thin
  /// wrapper over complete() used by the evaluation harness and tests.
  size_t rankOf(const PartialExpr *Query, const CodeSite &Site,
                const Expr *Expected, size_t Limit,
                const CompletionOptions &Opts = {},
                const AbsTypeSolution *Solution = nullptr);

  /// Releases ownership of the arena holding the most recent complete()
  /// call's result expressions, so they can outlive the next query on this
  /// engine. Used by BatchExecutor to hand batched results to the caller.
  std::unique_ptr<Arena> takeQueryArena() { return std::move(QueryArena); }

  /// Telemetry for the most recent complete() call (reset per call).
  const QueryStats &lastQueryStats() const { return Stats; }

private:
  Program &P;
  CompletionIndexes &Idx;
  std::unique_ptr<Arena> QueryArena;
  QueryStats Stats;
  /// Cached full-corpus abstract-type solution (no exclusions).
  std::unique_ptr<AbsTypeSolution> FullSolution;
};

} // namespace petal

#endif // PETAL_COMPLETE_ENGINE_H
