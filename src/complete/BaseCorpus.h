//===- complete/BaseCorpus.h - Shared frozen framework corpus ---*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The base layer of a base/overlay workspace (DESIGN.md §14): one framework
/// corpus parsed, resolved, solved, and frozen exactly once — or adopted
/// zero-copy from a snapshot mapping — and then shared read-only by every
/// document session in the process. Each open document contributes only an
/// *overlay*: its own types and methods resolved against the base symbol
/// tables, overlay index layers answering from the base's frozen tables plus
/// small local deltas, and an abstract-type solution extending the frozen
/// base partition. Overlay entity ids continue after the base's, so an
/// overlay build is bit-identical to resolving base source and document
/// source into one monolithic corpus — enforced by workspace_overlay_test's
/// fresh-twin property test.
///
/// Builders live one layer up (snapshot/Snapshot.h: baseCorpusFromSource,
/// baseCorpusFromSnapshot) because constructing a BaseCorpus needs the
/// parser, which this library does not link.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_COMPLETE_BASECORPUS_H
#define PETAL_COMPLETE_BASECORPUS_H

#include "complete/Engine.h"
#include "parser/DeclUnits.h"

#include <memory>
#include <string>

namespace petal {

/// Everything the base layer owns. Immutable after construction: the
/// indexes are frozen, the solution is compressed, and every overlay read
/// is a pure load — which is what lets any number of session strands share
/// one instance with no locking.
struct BaseCorpus {
  std::string SourceText;
  DocumentShape Shape;

  // Declaration order is construction order: the Program refers to the
  // TypeSystem, the indexes to the Program. Overlay TypeSystems and
  // CompletionIndexes hold shared_ptrs into these, so a base outlives
  // every overlay built over it regardless of teardown order.
  std::shared_ptr<TypeSystem> TS;
  std::shared_ptr<Program> P;
  std::shared_ptr<CompletionIndexes> Idx; ///< frozen, every dense store built
  std::shared_ptr<const AbsTypeSolution> Solution; ///< full-corpus solve

  /// Pins the snapshot file mapping when the base was adopted from one
  /// (the indexes pin it too; this keeps the provenance visible).
  std::shared_ptr<const void> Backing;

  double BuildMillis = 0; ///< parse + resolve + freeze + solve (or load)

  /// Approximate heap bytes owned by the base layer. Snapshot-adopted
  /// tables alias the file mapping and are deliberately not counted — this
  /// reports what the process heap actually pays for the layer, which is
  /// what $/stats' memory block wants.
  size_t memoryBytes() const;
};

} // namespace petal

#endif // PETAL_COMPLETE_BASECORPUS_H
