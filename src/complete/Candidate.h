//===- complete/Candidate.h - Score-bucketed candidate streams --*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine realizes the paper's Algorithm 1 ("foreach score in [0, inf)")
/// with *score-bucketed candidate streams*: every partial expression
/// compiles to a stream that can produce, for each integer score S in
/// increasing order, exactly the completions whose total score is S.
/// Composite streams (unknown calls, comparisons, ...) combine child
/// buckets whose sums fit under S and buffer any overshoot in a pending
/// min-heap — the paper's "compute completions not in score order" and
/// "cache subexpression scores" optimizations fall out of this design.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_COMPLETE_CANDIDATE_H
#define PETAL_COMPLETE_CANDIDATE_H

#include "code/Expr.h"
#include "model/Ids.h"
#include "support/Arena.h"

#include <cassert>
#include <vector>

namespace petal {

/// One completion candidate: an expression, its total ranking score, its
/// static type (InvalidId for don't-cares), and the number of lookup steps
/// already chained onto it (bounds star-suffix exploration).
struct Candidate {
  const Expr *E = nullptr;
  int Score = 0;
  TypeId Type = InvalidId;
  int Depth = 0;
};

/// The bucket container: candidates are POD, so backing these vectors with
/// the engine's per-query scratch arena makes the whole enumeration phase
/// allocate from bump storage that is reclaimed wholesale when the query
/// ends. A default-constructed CandidateVec (no arena) uses the heap,
/// which keeps streams usable standalone in tests.
using CandidateVec = std::vector<Candidate, ArenaAllocator<Candidate>>;

/// Base class of all candidate streams. bucket(S) returns the candidates of
/// exactly score S; buckets are computed on demand, strictly in order, and
/// cached so a stream may be consumed by several parents.
///
/// Bucket storage grows with the highest score requested, so every stream
/// carries a *score ceiling* (set from EngineState::ScoreCeiling at
/// construction): buckets beyond it are permanently empty and allocate
/// nothing, which cleanly terminates enumeration no matter how large a
/// MaxScore a caller asks for.
class CandidateStream {
public:
  virtual ~CandidateStream() = default;

  /// All candidates with score exactly \p S (deterministic order). Beyond
  /// the ceiling the bucket is empty and the hit flag latches.
  const CandidateVec &bucket(int S) {
    assert(S >= 0 && "negative score bucket");
    if (Ceiling >= 0 && S > Ceiling) {
      CeilingHit = true;
      return EmptyBucket;
    }
    while (static_cast<int>(Buckets.size()) <= S) {
      int Cur = static_cast<int>(Buckets.size());
      Buckets.emplace_back(ArenaAllocator<Candidate>(Scratch));
      fillBucket(Cur, Buckets.back());
    }
    return Buckets[S];
  }

  /// Caps bucket growth at score \p C (-1 = unlimited).
  void setCeiling(int C) { Ceiling = C; }
  int ceiling() const { return Ceiling; }

  /// Backs all future bucket storage with \p A (nullptr = heap). Streams
  /// set this from EngineState::Scratch at construction, so every bucket a
  /// query fills lives in the query's scratch arena.
  void setScratch(Arena *A) { Scratch = A; }
  Arena *scratch() const { return Scratch; }

  /// Whether a bucket beyond the ceiling was ever requested.
  bool ceilingHit() const { return CeilingHit; }

protected:
  /// Computes the candidates of score \p S into \p Out. Called exactly once
  /// per S, in increasing order.
  virtual void fillBucket(int S, CandidateVec &Out) = 0;

private:
  std::vector<CandidateVec> Buckets;
  Arena *Scratch = nullptr;
  int Ceiling = -1;
  bool CeilingHit = false;
  static inline const CandidateVec EmptyBucket{};
};

} // namespace petal

#endif // PETAL_COMPLETE_CANDIDATE_H
