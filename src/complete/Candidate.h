//===- complete/Candidate.h - Score-bucketed candidate streams --*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine realizes the paper's Algorithm 1 ("foreach score in [0, inf)")
/// with *score-bucketed candidate streams*: every partial expression
/// compiles to a stream that can produce, for each integer score S in
/// increasing order, exactly the completions whose total score is S.
/// Composite streams (unknown calls, comparisons, ...) combine child
/// buckets whose sums fit under S and buffer any overshoot in a pending
/// min-heap — the paper's "compute completions not in score order" and
/// "cache subexpression scores" optimizations fall out of this design.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_COMPLETE_CANDIDATE_H
#define PETAL_COMPLETE_CANDIDATE_H

#include "code/Expr.h"
#include "model/Ids.h"

#include <cassert>
#include <vector>

namespace petal {

/// One completion candidate: an expression, its total ranking score, its
/// static type (InvalidId for don't-cares), and the number of lookup steps
/// already chained onto it (bounds star-suffix exploration).
struct Candidate {
  const Expr *E = nullptr;
  int Score = 0;
  TypeId Type = InvalidId;
  int Depth = 0;
};

/// Base class of all candidate streams. bucket(S) returns the candidates of
/// exactly score S; buckets are computed on demand, strictly in order, and
/// cached so a stream may be consumed by several parents.
///
/// Bucket storage grows with the highest score requested, so every stream
/// carries a *score ceiling* (set from EngineState::ScoreCeiling at
/// construction): buckets beyond it are permanently empty and allocate
/// nothing, which cleanly terminates enumeration no matter how large a
/// MaxScore a caller asks for.
class CandidateStream {
public:
  virtual ~CandidateStream() = default;

  /// All candidates with score exactly \p S (deterministic order). Beyond
  /// the ceiling the bucket is empty and the hit flag latches.
  const std::vector<Candidate> &bucket(int S) {
    assert(S >= 0 && "negative score bucket");
    if (Ceiling >= 0 && S > Ceiling) {
      CeilingHit = true;
      return EmptyBucket;
    }
    while (static_cast<int>(Buckets.size()) <= S) {
      int Cur = static_cast<int>(Buckets.size());
      Buckets.emplace_back();
      fillBucket(Cur, Buckets.back());
    }
    return Buckets[S];
  }

  /// Caps bucket growth at score \p C (-1 = unlimited).
  void setCeiling(int C) { Ceiling = C; }
  int ceiling() const { return Ceiling; }

  /// Whether a bucket beyond the ceiling was ever requested.
  bool ceilingHit() const { return CeilingHit; }

protected:
  /// Computes the candidates of score \p S into \p Out. Called exactly once
  /// per S, in increasing order.
  virtual void fillBucket(int S, std::vector<Candidate> &Out) = 0;

private:
  std::vector<std::vector<Candidate>> Buckets;
  int Ceiling = -1;
  bool CeilingHit = false;
  static inline const std::vector<Candidate> EmptyBucket{};
};

} // namespace petal

#endif // PETAL_COMPLETE_CANDIDATE_H
