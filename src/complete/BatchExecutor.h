//===- complete/BatchExecutor.h - Parallel batch queries --------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fans independent completion queries out over a fixed pool of worker
/// threads. The shared, read-mostly state is one frozen CompletionIndexes
/// (freeze() is called on construction); the unit of isolation is the
/// CompletionEngine — each worker owns one, and each engine owns its own
/// result arena. Results always come back in input order, so batched runs
/// are bit-identical to serial ones regardless of scheduling.
///
/// Two entry points:
///  * completeBatch() — a plain vector of (query, site) requests in, a
///    vector of completion lists out, with the arenas that own the result
///    expressions carried alongside so they outlive the batch;
///  * forEach() — the generic fan-out used by the evaluation drivers: the
///    body gets a per-worker engine plus a per-task scratch arena for
///    building partial expressions, and must fold its findings into
///    per-index slots (never shared accumulators).
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_COMPLETE_BATCHEXECUTOR_H
#define PETAL_COMPLETE_BATCHEXECUTOR_H

#include "complete/Engine.h"
#include "support/ThreadPool.h"

#include <functional>
#include <memory>
#include <vector>

namespace petal {

/// Executes batches of independent queries over per-worker engines.
class BatchExecutor {
public:
  /// \p Threads = 0 means ThreadPool::defaultThreadCount() (the
  /// PETAL_THREADS environment variable, else the hardware concurrency).
  /// Construction freezes \p Idx (see CompletionIndexes::freeze()).
  BatchExecutor(Program &P, CompletionIndexes &Idx, size_t Threads = 0);

  size_t numThreads() const { return Pool.numThreads(); }

  /// What a forEach task gets to work with.
  struct TaskContext {
    CompletionEngine &Engine; ///< this worker's engine
    Arena &Scratch;           ///< per-task arena (partial-expression nodes)
    size_t Worker;            ///< dense id in [0, numThreads())
  };

  /// Runs Fn(Ctx, Index) for every Index in [0, N) across the pool and
  /// blocks until done. Deterministic outputs are the caller's contract:
  /// write results into Out[Index]-style slots only.
  void forEach(size_t N,
               const std::function<void(TaskContext &, size_t)> &Fn);

  /// One batched completion request. Leaving Solution null with abstract
  /// types enabled uses one shared full-corpus solution computed once per
  /// executor (not once per worker).
  struct Request {
    const PartialExpr *Query = nullptr;
    CodeSite Site;
    size_t N = 10;
    CompletionOptions Opts = {};
    const AbsTypeSolution *Solution = nullptr;
  };

  /// Batched results; Results[i] answers Requests[i]. The expression nodes
  /// (and, under CompletionOptions::Explain, the ScoreCards) are owned by
  /// the carried arenas, so a BatchResult can be moved around and consumed
  /// long after the executor ran other batches. Stats[i] is the engine
  /// telemetry for Requests[i].
  struct BatchResult {
    std::vector<std::vector<Completion>> Results;
    std::vector<std::unique_ptr<Arena>> Arenas;
    std::vector<CompletionEngine::QueryStats> Stats;
  };

  BatchResult completeBatch(const std::vector<Request> &Requests);

  /// The shared full-corpus abstract-type solution (computed on first use).
  const AbsTypeSolution &fullSolution();

  /// fullSolution() with shared ownership, for handing the solution to
  /// another executor over a token-identical corpus (see adoptSolution).
  std::shared_ptr<const AbsTypeSolution> sharedSolution();

  /// Seeds the full-corpus solution instead of computing it. Only sound
  /// when this executor's corpus is *token-identical* to the one the
  /// solution was solved over: abstract-type variables are numbered by a
  /// deterministic structural walk of every method body, so the partition
  /// carries over exactly — the no-op-edit case of an incremental session
  /// build. No-op when a solution was already computed or adopted.
  void adoptSolution(std::shared_ptr<const AbsTypeSolution> Solution);

  ThreadPool &pool() { return Pool; }

private:
  Program &P;
  CompletionIndexes &Idx;
  ThreadPool Pool;
  std::vector<std::unique_ptr<CompletionEngine>> Engines; // one per worker
  std::shared_ptr<const AbsTypeSolution> FullSolution;
};

} // namespace petal

#endif // PETAL_COMPLETE_BATCHEXECUTOR_H
