//===- complete/BaseCorpus.cpp - Shared frozen framework corpus -----------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "complete/BaseCorpus.h"

using namespace petal;

size_t BaseCorpus::memoryBytes() const {
  size_t Bytes = SourceText.capacity();
  for (const DeclUnit &U : Shape.Units)
    Bytes += sizeof(DeclUnit) + U.QualName.capacity();
  if (TS)
    Bytes += TS->memoryBytes();
  if (Idx)
    Bytes += Idx->memoryBytes();
  if (Solution)
    Bytes += Solution->parents().size() * sizeof(uint32_t);
  return Bytes;
}
