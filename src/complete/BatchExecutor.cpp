//===- complete/BatchExecutor.cpp - Parallel batch queries ----------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "complete/BatchExecutor.h"

using namespace petal;

BatchExecutor::BatchExecutor(Program &P, CompletionIndexes &Idx,
                             size_t Threads)
    : P(P), Idx(Idx), Pool(Threads) {
  // Shared lazily-filled caches are only safe under one thread; pre-warm
  // them all before any worker can touch them.
  Idx.freeze();
  Engines.reserve(Pool.numThreads());
  for (size_t W = 0; W != Pool.numThreads(); ++W)
    Engines.push_back(std::make_unique<CompletionEngine>(P, Idx));
}

void BatchExecutor::forEach(
    size_t N, const std::function<void(TaskContext &, size_t)> &Fn) {
  Pool.parallelFor(N, [&](size_t Index, size_t Worker) {
    Arena Scratch;
    TaskContext Ctx{*Engines[Worker], Scratch, Worker};
    Fn(Ctx, Index);
  });
}

const AbsTypeSolution &BatchExecutor::fullSolution() {
  if (!FullSolution)
    FullSolution = std::make_shared<const AbsTypeSolution>(Idx.Infer.solve());
  return *FullSolution;
}

std::shared_ptr<const AbsTypeSolution> BatchExecutor::sharedSolution() {
  fullSolution();
  return FullSolution;
}

void BatchExecutor::adoptSolution(
    std::shared_ptr<const AbsTypeSolution> Solution) {
  if (!FullSolution)
    FullSolution = std::move(Solution);
}

BatchExecutor::BatchResult
BatchExecutor::completeBatch(const std::vector<Request> &Requests) {
  BatchResult Out;
  Out.Results.resize(Requests.size());
  Out.Arenas.resize(Requests.size());
  Out.Stats.resize(Requests.size());

  // If any request will fall back to the full-corpus solution, compute it
  // once up front (serially) instead of once per worker engine.
  const AbsTypeSolution *Shared = nullptr;
  for (const Request &R : Requests) {
    if (!R.Solution && R.Opts.UseAbstractTypes && R.Opts.Rank.UseAbstractTypes) {
      Shared = &fullSolution();
      break;
    }
  }

  Pool.parallelFor(Requests.size(), [&](size_t Index, size_t Worker) {
    const Request &R = Requests[Index];
    CompletionEngine &Engine = *Engines[Worker];
    const AbsTypeSolution *Sol = R.Solution ? R.Solution : Shared;
    Out.Results[Index] = Engine.complete(R.Query, R.Site, R.N, R.Opts, Sol);
    Out.Stats[Index] = Engine.lastQueryStats();
    // Steal the arena holding this query's result expressions so the next
    // query on this worker does not free them.
    Out.Arenas[Index] = Engine.takeQueryArena();
  });
  return Out;
}
