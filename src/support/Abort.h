//===- support/Abort.h - Cooperative abort + deadline signal ----*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cooperative cancellation token threaded from the service's request
/// control block down into document builds (phase boundaries) and the
/// completion engine (per score bucket). Work holding a pointer to one
/// polls aborted() at natural checkpoints and abandons cleanly — partial
/// results are discarded, never returned or cached, so abandonment can
/// never violate the bit-identical-results contract.
///
/// A null AbortSignal pointer means "never abandon" and costs nothing; a
/// live one costs a relaxed atomic load per poll, plus a clock read when a
/// deadline is set. Writers set Stop via abort() ($/cancelRequest on an
/// executing request, the watchdog); the deadline is fixed at request
/// admission and needs no writer at all.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SUPPORT_ABORT_H
#define PETAL_SUPPORT_ABORT_H

#include <atomic>
#include <chrono>

namespace petal {

struct AbortSignal {
  std::atomic<bool> Stop{false};
  std::chrono::steady_clock::time_point Deadline{};
  bool HasDeadline = false;

  void abort() { Stop.store(true, std::memory_order_release); }

  /// True once abort() was called or the deadline passed. Safe to poll
  /// from any thread; HasDeadline/Deadline are written once before the
  /// signal is shared.
  bool aborted() const {
    if (Stop.load(std::memory_order_acquire))
      return true;
    return HasDeadline && std::chrono::steady_clock::now() >= Deadline;
  }
};

} // namespace petal

#endif // PETAL_SUPPORT_ABORT_H
