//===- support/FaultInjector.h - Deterministic fault injection --*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide, seed-driven fault injector for the robustness tests and
/// the chaos CI leg. Injection points are compiled into the production
/// binary but guarded by a single relaxed atomic load (armed()), so a
/// disarmed daemon pays one predictable branch per site and nothing else.
///
/// Determinism is the design center: whether the Nth occurrence of a fault
/// fires depends only on (seed, fault kind, N) — never on wall clock,
/// thread ids, or rand(). A chaos run that crashes can therefore be
/// replayed exactly by re-arming with the same seed, even though the
/// *interleaving* of occurrences across threads still varies. Each fault
/// kind keeps its own occurrence counter, so enabling one fault never
/// shifts another's schedule.
///
/// Arming:
///  * programmatically: FaultInjector::instance().arm(Seed, Permille, Mask)
///  * from a spec string (the --faults flag):  "seed[:permille[:names]]"
///    where names is a comma list of fault names (or "all"), e.g.
///    "42", "42:250", "42:1000:build,snapshot-crc".
///  * from the PETAL_FAULTS environment variable (same spec grammar),
///    consulted once when the singleton is first touched.
///
/// Every injection site pairs with a recovery path (DESIGN.md §15);
/// noteRecovered() is called where that path engages, so
/// injectedTotal() == recoveredTotal() after a clean run is the contract
/// the chaos tests assert. Both totals surface in $/stats "health".
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SUPPORT_FAULTINJECTOR_H
#define PETAL_SUPPORT_FAULTINJECTOR_H

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace petal {

/// The injectable fault kinds, one per injection point family.
enum class Fault : unsigned {
  TransportShortRead = 0, ///< a frame payload read returns fewer bytes
  TransportEintr,         ///< an fd read/write is interrupted (EINTR)
  TransportGarbageFrame,  ///< the reader yields a non-JSON payload
  SnapshotTruncate,       ///< the snapshot image appears half its size
  SnapshotCrcFlip,        ///< one payload bit of the image is flipped
  SnapshotMmapFail,       ///< mmap is unavailable; buffered read instead
  BuildThrow,             ///< a document build throws mid-flight
  OverlayBuild,           ///< an overlay build fails before completion
  FreezeDenseBudget,      ///< the dense freeze budget is exhausted
};
inline constexpr unsigned NumFaults = 9;

inline const char *faultName(Fault F) {
  switch (F) {
  case Fault::TransportShortRead: return "transport-short-read";
  case Fault::TransportEintr: return "transport-eintr";
  case Fault::TransportGarbageFrame: return "transport-garbage";
  case Fault::SnapshotTruncate: return "snapshot-truncate";
  case Fault::SnapshotCrcFlip: return "snapshot-crc";
  case Fault::SnapshotMmapFail: return "snapshot-mmap";
  case Fault::BuildThrow: return "build";
  case Fault::OverlayBuild: return "overlay";
  case Fault::FreezeDenseBudget: return "freeze-budget";
  }
  return "unknown";
}

/// The exception type every throwing injection site uses, so recovery
/// paths can tell a deliberate fault from a genuine bug when deciding
/// whether a degradation (as opposed to an error report) is in order.
struct InjectedFault : std::runtime_error {
  explicit InjectedFault(const std::string &What)
      : std::runtime_error("injected fault: " + What) {}
};

class FaultInjector {
public:
  static FaultInjector &instance() {
    static FaultInjector I;
    return I;
  }

  /// The one check production hot paths pay: a relaxed atomic load.
  static bool armed() {
    return instance().IsArmed.load(std::memory_order_relaxed);
  }

  /// Arms with \p Permille out-of-1000 firing rate for every fault whose
  /// bit is set in \p Mask (bit index = enum value). Resets all counters.
  void arm(uint64_t SeedIn, unsigned PermilleIn,
           uint32_t Mask = ~uint32_t(0)) {
    Seed = SeedIn;
    Permille = PermilleIn > 1000 ? 1000 : PermilleIn;
    EnabledMask = Mask;
    for (unsigned I = 0; I != NumFaults; ++I) {
      Occurred[I].store(0, std::memory_order_relaxed);
      Injected[I].store(0, std::memory_order_relaxed);
      Recovered[I].store(0, std::memory_order_relaxed);
    }
    IsArmed.store(true, std::memory_order_release);
  }

  void disarm() { IsArmed.store(false, std::memory_order_release); }

  /// Parses "seed[:permille[:names]]" and arms. Returns false (with a
  /// message) on a malformed spec.
  bool armFromSpec(const std::string &Spec, std::string &Error) {
    uint64_t SeedV = 0;
    unsigned PermilleV = 100;
    uint32_t Mask = ~uint32_t(0);
    size_t C1 = Spec.find(':');
    std::string SeedStr = Spec.substr(0, C1);
    if (SeedStr.empty() || !parseU64(SeedStr, SeedV)) {
      Error = "fault spec needs a numeric seed, got '" + Spec + "'";
      return false;
    }
    if (C1 != std::string::npos) {
      size_t C2 = Spec.find(':', C1 + 1);
      std::string PermStr = Spec.substr(C1 + 1, C2 == std::string::npos
                                                    ? std::string::npos
                                                    : C2 - C1 - 1);
      uint64_t P = 0;
      if (PermStr.empty() || !parseU64(PermStr, P) || P > 1000) {
        Error = "fault permille must be in [0, 1000], got '" + PermStr + "'";
        return false;
      }
      PermilleV = static_cast<unsigned>(P);
      if (C2 != std::string::npos) {
        Mask = 0;
        std::string Names = Spec.substr(C2 + 1);
        size_t Pos = 0;
        while (Pos <= Names.size()) {
          size_t Comma = Names.find(',', Pos);
          std::string Name = Names.substr(
              Pos, Comma == std::string::npos ? std::string::npos
                                              : Comma - Pos);
          if (Name == "all") {
            Mask = ~uint32_t(0);
          } else {
            bool Found = false;
            for (unsigned I = 0; I != NumFaults; ++I)
              if (Name == faultName(static_cast<Fault>(I))) {
                Mask |= 1u << I;
                Found = true;
              }
            if (!Found) {
              Error = "unknown fault name '" + Name + "'";
              return false;
            }
          }
          if (Comma == std::string::npos)
            break;
          Pos = Comma + 1;
        }
      }
    }
    arm(SeedV, PermilleV, Mask);
    return true;
  }

  /// Should this occurrence of \p F fire? Counts the occurrence either
  /// way; bumps the injected counter when it fires.
  bool fire(Fault F) {
    if (!IsArmed.load(std::memory_order_acquire))
      return false;
    unsigned I = static_cast<unsigned>(F);
    if (!(EnabledMask & (1u << I)))
      return false;
    uint64_t N = Occurred[I].fetch_add(1, std::memory_order_relaxed);
    // splitmix64 over (seed, fault, occurrence): deterministic, well-mixed,
    // no shared RNG state to contend on.
    uint64_t X = Seed ^ (uint64_t(I + 1) * 0x9e3779b97f4a7c15ull) ^
                 (N * 0xbf58476d1ce4e5b9ull);
    X ^= X >> 30;
    X *= 0xbf58476d1ce4e5b9ull;
    X ^= X >> 27;
    X *= 0x94d049bb133111ebull;
    X ^= X >> 31;
    if (X % 1000 >= Permille)
      return false;
    Injected[I].fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Records that the degradation path for \p F engaged cleanly.
  void noteRecovered(Fault F) {
    Recovered[static_cast<unsigned>(F)].fetch_add(1,
                                                  std::memory_order_relaxed);
  }

  uint64_t injected(Fault F) const {
    return Injected[static_cast<unsigned>(F)].load(std::memory_order_relaxed);
  }
  uint64_t recovered(Fault F) const {
    return Recovered[static_cast<unsigned>(F)].load(
        std::memory_order_relaxed);
  }
  uint64_t injectedTotal() const {
    uint64_t T = 0;
    for (unsigned I = 0; I != NumFaults; ++I)
      T += Injected[I].load(std::memory_order_relaxed);
    return T;
  }
  uint64_t recoveredTotal() const {
    uint64_t T = 0;
    for (unsigned I = 0; I != NumFaults; ++I)
      T += Recovered[I].load(std::memory_order_relaxed);
    return T;
  }

private:
  FaultInjector() {
    if (const char *Spec = std::getenv("PETAL_FAULTS")) {
      std::string Error;
      armFromSpec(Spec, Error); // a bad env spec leaves the injector off
    }
  }

  static bool parseU64(const std::string &S, uint64_t &Out) {
    if (S.empty())
      return false;
    uint64_t V = 0;
    for (char C : S) {
      if (C < '0' || C > '9')
        return false;
      V = V * 10 + static_cast<uint64_t>(C - '0');
    }
    Out = V;
    return true;
  }

  std::atomic<bool> IsArmed{false};
  uint64_t Seed = 0;
  unsigned Permille = 0;
  uint32_t EnabledMask = ~uint32_t(0);
  std::atomic<uint64_t> Occurred[NumFaults] = {};
  std::atomic<uint64_t> Injected[NumFaults] = {};
  std::atomic<uint64_t> Recovered[NumFaults] = {};
};

} // namespace petal

#endif // PETAL_SUPPORT_FAULTINJECTOR_H
