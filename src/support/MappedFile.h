//===- support/MappedFile.h - Read-only file mapping ------------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A read-only view of a whole file, preferring mmap (PROT_READ /
/// MAP_PRIVATE: pages are shared, demand-paged, and never written — N
/// petald replicas mapping one snapshot share one copy of the tables in
/// page cache) with a buffered read() into heap memory as the fallback for
/// filesystems that cannot map. Opened instances are immutable and handed
/// around by shared_ptr: every index that adopts a pointer into the
/// mapping keeps one as its keep-alive, so the bytes outlive whichever
/// document version dies last.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SUPPORT_MAPPEDFILE_H
#define PETAL_SUPPORT_MAPPEDFILE_H

#include <cerrno>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace petal {

/// An open, read-only file image. Construction is private; use open().
class MappedFile {
public:
  /// Opens \p Path and maps (or reads) its full contents. Returns null
  /// with a description in \p Error on any failure. \p ForceBufferedRead
  /// skips mmap — the degraded path some filesystems force, kept
  /// reachable so tests cover it.
  static std::shared_ptr<const MappedFile>
  open(const std::string &Path, std::string &Error,
       bool ForceBufferedRead = false) {
    int Fd = ::open(Path.c_str(), O_RDONLY);
    if (Fd < 0) {
      Error = "cannot open '" + Path + "': " + std::strerror(errno);
      return nullptr;
    }
    struct stat St = {};
    if (::fstat(Fd, &St) != 0 || !S_ISREG(St.st_mode)) {
      Error = "cannot stat '" + Path + "' (or not a regular file)";
      ::close(Fd);
      return nullptr;
    }
    auto File = std::shared_ptr<MappedFile>(new MappedFile());
    File->Size_ = static_cast<size_t>(St.st_size);
    if (File->Size_ == 0) {
      // A zero-byte mapping is invalid; an empty buffer represents it.
      File->Buffer.clear();
      File->Data_ = File->Buffer.data();
      ::close(Fd);
      return File;
    }
    if (!ForceBufferedRead) {
      void *Map = ::mmap(nullptr, File->Size_, PROT_READ, MAP_PRIVATE, Fd, 0);
      if (Map != MAP_FAILED) {
        File->Data_ = static_cast<const char *>(Map);
        File->Mapped_ = true;
        ::close(Fd);
        return File;
      }
    }
    // Fallback: buffered read of the whole file.
    File->Buffer.resize(File->Size_);
    size_t Got = 0;
    while (Got != File->Size_) {
      ssize_t N =
          ::read(Fd, File->Buffer.data() + Got, File->Size_ - Got);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0) {
        Error = "short read of '" + Path + "'";
        ::close(Fd);
        return nullptr;
      }
      Got += static_cast<size_t>(N);
    }
    File->Data_ = File->Buffer.data();
    ::close(Fd);
    return File;
  }

  ~MappedFile() {
    if (Mapped_)
      ::munmap(const_cast<char *>(Data_), Size_);
  }

  MappedFile(const MappedFile &) = delete;
  MappedFile &operator=(const MappedFile &) = delete;

  const char *data() const { return Data_; }
  size_t size() const { return Size_; }
  /// True when the contents are mmap'd pages rather than a heap copy.
  bool mapped() const { return Mapped_; }

private:
  MappedFile() = default;

  const char *Data_ = nullptr;
  size_t Size_ = 0;
  bool Mapped_ = false;
  std::vector<char> Buffer; ///< backing store on the read() fallback
};

} // namespace petal

#endif // PETAL_SUPPORT_MAPPEDFILE_H
