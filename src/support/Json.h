//===- support/Json.h - Minimal JSON reader/writer --------------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, self-contained JSON value type with a recursive-descent parser
/// and a deterministic writer, used by the completion service's JSON-RPC
/// transport (service/). Design points, in keeping with the rest of the
/// library:
///
///  * no exceptions — parsing returns an error message through an out
///    parameter instead of throwing;
///  * objects preserve insertion order (a vector of pairs, not a map), so
///    serialization is deterministic and responses are byte-stable across
///    runs — which the result cache and the bit-identical service bench
///    rely on;
///  * numbers are stored as double; JSON-RPC ids and protocol counters fit
///    in the 2^53 exact-integer range, and the writer prints integral
///    doubles without a fraction part so they round-trip textually.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SUPPORT_JSON_H
#define PETAL_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace petal {
namespace json {

/// Discriminator for Value.
enum class Kind { Null, Bool, Number, String, Array, Object };

/// One JSON value. Copyable, movable; arrays and objects own their
/// children by value.
class Value {
public:
  using Member = std::pair<std::string, Value>;

  Value() : K(Kind::Null) {}
  Value(std::nullptr_t) : K(Kind::Null) {}
  Value(bool B) : K(Kind::Bool), BoolV(B) {}
  Value(double N) : K(Kind::Number), NumV(N) {}
  Value(int N) : K(Kind::Number), NumV(N) {}
  Value(int64_t N) : K(Kind::Number), NumV(static_cast<double>(N)) {}
  Value(uint64_t N) : K(Kind::Number), NumV(static_cast<double>(N)) {}
  Value(const char *S) : K(Kind::String), StrV(S) {}
  Value(std::string S) : K(Kind::String), StrV(std::move(S)) {}
  Value(std::string_view S) : K(Kind::String), StrV(S) {}

  static Value array() {
    Value V;
    V.K = Kind::Array;
    return V;
  }
  static Value object() {
    Value V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolValue() const { return BoolV; }
  double numberValue() const { return NumV; }
  int64_t intValue() const { return static_cast<int64_t>(NumV); }
  const std::string &stringValue() const { return StrV; }

  const std::vector<Value> &elements() const { return Elems; }
  const std::vector<Member> &members() const { return Membs; }

  /// Appends \p V to an array (the value must be an array).
  void push(Value V);

  /// Appends or overwrites member \p Name of an object (the value must be
  /// an object). Insertion order is preserved; overwriting keeps the
  /// original position.
  void set(std::string_view Name, Value V);

  /// Member lookup; null if absent or not an object.
  const Value *find(std::string_view Name) const;

  /// Typed convenience getters over find(): the fallback is returned when
  /// the member is absent or has the wrong kind.
  bool getBool(std::string_view Name, bool Default) const;
  double getNumber(std::string_view Name, double Default) const;
  int64_t getInt(std::string_view Name, int64_t Default) const;
  std::string getString(std::string_view Name,
                        std::string_view Default = "") const;

  /// Serializes this value to compact JSON (no whitespace). Deterministic:
  /// object members in insertion order, integral numbers without fraction.
  std::string write() const;
  void writeTo(std::string &Out) const;

  bool operator==(const Value &O) const;
  bool operator!=(const Value &O) const { return !(*this == O); }

private:
  Kind K = Kind::Null;
  bool BoolV = false;
  double NumV = 0;
  std::string StrV;
  std::vector<Value> Elems;
  std::vector<Member> Membs;
};

/// Parses \p Text into \p Out. On failure returns false and describes the
/// problem in \p Error ("offset N: message"). Trailing non-whitespace after
/// the top-level value is an error; nesting depth is capped (64) to keep
/// the recursive parser safe on adversarial input.
bool parse(std::string_view Text, Value &Out, std::string &Error);

/// Escapes \p S as the inside of a JSON string literal (no surrounding
/// quotes), handling the two mandatory escapes plus control characters.
void escapeString(std::string_view S, std::string &Out);

} // namespace json
} // namespace petal

#endif // PETAL_SUPPORT_JSON_H
