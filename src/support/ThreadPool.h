//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately simple fixed-size thread pool for data-parallel index
/// loops: one blocking parallelFor at a time, indexes handed out through a
/// shared atomic counter (no work stealing — completion queries are
/// milliseconds each, so a fetch_add per index is noise). The calling
/// thread participates as worker 0, so a pool of size N spawns N-1 threads
/// and a pool of size 1 degenerates to a plain serial loop with zero
/// threading overhead — the property BatchExecutor uses to make its
/// single-threaded mode bit-identical to (and as cheap as) serial code.
///
/// The worker id passed to the body is stable and dense in [0, size()), so
/// callers can maintain per-worker state (e.g. one CompletionEngine per
/// worker) without locks.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SUPPORT_THREADPOOL_H
#define PETAL_SUPPORT_THREADPOOL_H

#include <atomic>
#include <cassert>
#include <cctype>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace petal {

/// Fixed-size pool. Threads are spawned once in the constructor and parked
/// on a condition variable between jobs.
class ThreadPool {
public:
  /// The hard upper bound on a PETAL_THREADS request. Anything larger is
  /// treated as a configuration mistake (a stray value pasted into the
  /// environment), not a real pool size: spawning thousands of threads
  /// would only thrash.
  static constexpr size_t MaxSaneThreads = 512;

  /// The pool size used when none is requested: the PETAL_THREADS
  /// environment variable if it holds a plausible positive integer,
  /// otherwise std::thread::hardware_concurrency() (at least 1).
  ///
  /// PETAL_THREADS is untrusted input. It must be numeric in its entirety
  /// ("8" yes, "8x" or "fast" no), at least 1, and at most MaxSaneThreads;
  /// any other value — including empty, zero, negative, overflowing, or
  /// trailing garbage — falls back to the hardware concurrency instead of
  /// being passed to the pool verbatim.
  static size_t defaultThreadCount() {
    if (const char *S = std::getenv("PETAL_THREADS")) {
      // strtol would skip leading whitespace; "entirety" means the first
      // character must already be a digit.
      char *End = nullptr;
      errno = 0;
      long N = std::strtol(S, &End, 10);
      bool WholeString = std::isdigit(static_cast<unsigned char>(S[0])) &&
                         End != S && *End == '\0';
      if (WholeString && errno != ERANGE && N >= 1 &&
          N <= static_cast<long>(MaxSaneThreads))
        return static_cast<size_t>(N);
    }
    unsigned HW = std::thread::hardware_concurrency();
    return HW ? HW : 1;
  }

  /// \p Threads = 0 means defaultThreadCount().
  explicit ThreadPool(size_t Threads = 0) {
    if (Threads == 0)
      Threads = defaultThreadCount();
    NumThreads = Threads;
    Workers.reserve(Threads > 0 ? Threads - 1 : 0);
    for (size_t W = 1; W < Threads; ++W)
      Workers.emplace_back([this, W] { workerLoop(W); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> L(M);
      Stop = true;
    }
    WorkCV.notify_all();
    for (std::thread &T : Workers)
      T.join();
  }

  size_t numThreads() const { return NumThreads; }

  /// Every exception a body ever threw on this pool (the first per
  /// parallelFor is rethrown to the caller; any further ones are counted
  /// here instead of vanishing).
  uint64_t exceptionCount() const {
    std::lock_guard<std::mutex> L(M);
    return ExceptionCount;
  }

  /// The message of the most recent body exception ("" if none yet) —
  /// observable even for exceptions the caller's rethrow never saw.
  std::string lastError() const {
    std::lock_guard<std::mutex> L(M);
    return LastErrorMsg;
  }

  /// Runs Fn(Index, Worker) for every Index in [0, N), distributing
  /// indexes over all workers, and blocks until every call returned. The
  /// calling thread participates as worker 0. Not reentrant: bodies must
  /// not call parallelFor on the same pool. If a body throws, the first
  /// exception is rethrown on the caller after the loop drains.
  void parallelFor(size_t N,
                   const std::function<void(size_t, size_t)> &Fn) {
    if (N == 0)
      return;
    if (NumThreads == 1 || N == 1) {
      for (size_t I = 0; I != N; ++I)
        Fn(I, 0);
      return;
    }

    Job J;
    J.Fn = &Fn;
    J.N = N;
    {
      std::lock_guard<std::mutex> L(M);
      assert(!Cur && "parallelFor is not reentrant");
      Cur = &J;
      ++JobGen;
    }
    WorkCV.notify_all();

    runJob(J, /*Worker=*/0);

    std::unique_lock<std::mutex> L(M);
    DoneCV.wait(L, [&] { return J.Active == 0; });
    Cur = nullptr;
    if (J.Error)
      std::rethrow_exception(J.Error);
  }

private:
  struct Job {
    const std::function<void(size_t, size_t)> *Fn = nullptr;
    size_t N = 0;
    std::atomic<size_t> Next{0};
    /// Workers currently inside runJob (guarded by M).
    size_t Active = 0;
    std::exception_ptr Error; // first exception (guarded by M)
  };

  /// Renders the in-flight exception; only callable inside a catch block.
  static std::string describeCurrentException() {
    try {
      throw;
    } catch (const std::exception &E) {
      return E.what();
    } catch (...) {
      return "unknown exception type";
    }
  }

  void runJob(Job &J, size_t Worker) {
    for (;;) {
      size_t I = J.Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= J.N)
        break;
      try {
        (*J.Fn)(I, Worker);
      } catch (...) {
        std::lock_guard<std::mutex> L(M);
        ++ExceptionCount;
        LastErrorMsg = describeCurrentException();
        if (!J.Error) {
          J.Error = std::current_exception();
        } else {
          // A second exception in the same job has nowhere to propagate —
          // the caller can rethrow only one. It stays visible through
          // exceptionCount()/lastError(), and in debug builds it is a
          // hard stop: silently losing exceptions is how bugs vanish.
          assert(false && "ThreadPool body exception swallowed: another "
                          "exception is already pending for this job");
        }
        // Drain the remaining indexes without running them.
        J.Next.store(J.N, std::memory_order_relaxed);
      }
    }
  }

  void workerLoop(size_t Worker) {
    uint64_t SeenGen = 0;
    for (;;) {
      Job *J;
      {
        std::unique_lock<std::mutex> L(M);
        WorkCV.wait(L, [&] { return Stop || (Cur && JobGen != SeenGen); });
        if (Stop)
          return;
        SeenGen = JobGen;
        J = Cur;
        ++J->Active;
      }
      runJob(*J, Worker);
      {
        std::lock_guard<std::mutex> L(M);
        if (--J->Active == 0)
          DoneCV.notify_all();
      }
    }
  }

  size_t NumThreads = 1;
  std::vector<std::thread> Workers;
  mutable std::mutex M;
  std::condition_variable WorkCV;
  std::condition_variable DoneCV;
  Job *Cur = nullptr;
  uint64_t JobGen = 0;
  bool Stop = false;
  uint64_t ExceptionCount = 0; ///< every body throw ever seen (guarded by M)
  std::string LastErrorMsg;    ///< message of the latest throw (guarded by M)
};

} // namespace petal

#endif // PETAL_SUPPORT_THREADPOOL_H
