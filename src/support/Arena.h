//===- support/Arena.h - Bump-pointer arena allocator -----------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple monotonic arena. AST nodes for expressions are allocated here and
/// live for the lifetime of the arena; they are never individually freed.
/// Destructors of allocated objects are NOT run, so only trivially
/// destructible payloads (or payloads whose destructor is safe to skip)
/// should be placed in the arena. petal AST nodes store children as raw
/// pointers into the same arena and interned data by value, which satisfies
/// this constraint for all practical purposes (std::string members leak their
/// heap buffer only when the arena itself is destroyed mid-program; arenas in
/// petal live as long as the query engine, so we accept this and free the
/// strings explicitly via registered destructors below).
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SUPPORT_ARENA_H
#define PETAL_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace petal {

/// A monotonic bump allocator with destructor registration.
///
/// Objects created via create<T>() have their destructors run when the arena
/// is destroyed (in reverse order of creation), so arena-allocated nodes may
/// safely own std::string or std::vector members.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  ~Arena() {
    // Run registered destructors in reverse creation order.
    for (auto It = Dtors.rbegin(), E = Dtors.rend(); It != E; ++It)
      It->Destroy(It->Object);
  }

  /// Allocates and constructs a T with the given arguments. The object is
  /// destroyed when the arena is destroyed.
  template <typename T, typename... Args> T *create(Args &&...A) {
    void *Mem = allocate(sizeof(T), alignof(T));
    T *Obj = new (Mem) T(std::forward<Args>(A)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      Dtors.push_back({Obj, [](void *P) { static_cast<T *>(P)->~T(); }});
    return Obj;
  }

  /// Raw aligned allocation from the arena.
  void *allocate(size_t Size, size_t Align) {
    size_t Cur = reinterpret_cast<uintptr_t>(Ptr);
    size_t Aligned = (Cur + Align - 1) & ~(Align - 1);
    size_t Needed = (Aligned - Cur) + Size;
    if (!Ptr || Needed > Remaining) {
      newSlab(Size + Align);
      Cur = reinterpret_cast<uintptr_t>(Ptr);
      Aligned = (Cur + Align - 1) & ~(Align - 1);
      Needed = (Aligned - Cur) + Size;
    }
    Ptr += Needed;
    Remaining -= Needed;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Total bytes reserved across all slabs (for statistics).
  size_t bytesReserved() const {
    size_t Total = 0;
    for (const auto &S : Slabs)
      Total += S.Size;
    return Total;
  }

  /// Number of objects with registered destructors.
  size_t numManagedObjects() const { return Dtors.size(); }

private:
  struct Slab {
    std::unique_ptr<char[]> Mem;
    size_t Size;
  };
  struct DtorEntry {
    void *Object;
    void (*Destroy)(void *);
  };

  void newSlab(size_t AtLeast) {
    size_t Size = SlabSize;
    if (Size < AtLeast)
      Size = AtLeast;
    Slabs.push_back({std::make_unique<char[]>(Size), Size});
    Ptr = Slabs.back().Mem.get();
    Remaining = Size;
    // Exponential-ish growth, capped, to keep slab count low.
    if (SlabSize < 1u << 20)
      SlabSize *= 2;
  }

  static constexpr size_t InitialSlabSize = 4096;
  size_t SlabSize = InitialSlabSize;
  char *Ptr = nullptr;
  size_t Remaining = 0;
  std::vector<Slab> Slabs;
  std::vector<DtorEntry> Dtors;
};

/// A std-compatible allocator that bump-allocates from an Arena, so
/// short-lived containers (the engine's per-query candidate buckets and
/// expansion pools) stop hitting the global allocator on the hot path.
/// deallocate() is a no-op — memory is reclaimed wholesale when the arena
/// dies — so only use it for containers whose lifetime is bounded by the
/// arena's. Default-constructed (arena-less) instances fall back to the
/// global allocator, which keeps container types usable in contexts that
/// have no arena (tests, the static empty bucket).
template <typename T> class ArenaAllocator {
public:
  using value_type = T;

  ArenaAllocator() = default;
  explicit ArenaAllocator(Arena *A) : A(A) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U> &O) : A(O.arena()) {}

  T *allocate(size_t N) {
    if (A)
      return static_cast<T *>(A->allocate(N * sizeof(T), alignof(T)));
    return static_cast<T *>(::operator new(N * sizeof(T)));
  }
  void deallocate(T *P, size_t) {
    if (!A)
      ::operator delete(P);
    // Arena memory is reclaimed when the arena is destroyed.
  }

  Arena *arena() const { return A; }

  template <typename U> bool operator==(const ArenaAllocator<U> &O) const {
    return A == O.arena();
  }
  template <typename U> bool operator!=(const ArenaAllocator<U> &O) const {
    return A != O.arena();
  }

private:
  Arena *A = nullptr;
};

} // namespace petal

#endif // PETAL_SUPPORT_ARENA_H
