//===- support/UnionFind.h - Disjoint-set forest ----------------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Union-find with path compression and union by rank. Used by abstract type
/// inference (the paper's Lackwit-style analysis, §4.1) where all constraints
/// are equalities on atoms.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SUPPORT_UNIONFIND_H
#define PETAL_SUPPORT_UNIONFIND_H

#include <cassert>
#include <cstdint>
#include <numeric>
#include <vector>

namespace petal {

/// Disjoint-set forest over dense integer ids [0, size).
class UnionFind {
public:
  UnionFind() = default;
  explicit UnionFind(size_t Size) { grow(Size); }

  /// Reconstructs a forest from a serialized parent array (the snapshot
  /// store persists solved abstract-type partitions this way). The caller
  /// must have validated every entry is < Parents.size(). Ranks reset to
  /// zero, which only biases future unions — the partition itself is
  /// exactly the one the array encodes.
  explicit UnionFind(std::vector<uint32_t> Parents)
      : Parent(std::move(Parents)), Rank(Parent.size(), 0) {}

  /// Ensures ids [0, Size) exist, each initially its own singleton set.
  void grow(size_t Size) {
    size_t Old = Parent.size();
    if (Size <= Old)
      return;
    Parent.resize(Size);
    Rank.resize(Size, 0);
    std::iota(Parent.begin() + Old, Parent.end(), static_cast<uint32_t>(Old));
  }

  size_t size() const { return Parent.size(); }

  /// Returns the canonical representative of \p X's set.
  uint32_t find(uint32_t X) const {
    assert(X < Parent.size() && "find() id out of range");
    // Iterative find with path halving; Parent is mutable for compression.
    // The store is skipped when the entry is already fully compressed, so
    // find() on a compress()ed forest never writes — the property that
    // makes a frozen forest safe for concurrent readers.
    for (;;) {
      uint32_t P = Parent[X];
      if (P == X)
        return X;
      uint32_t GP = Parent[P];
      if (GP == P)
        return P;
      Parent[X] = GP;
      X = GP;
    }
  }

  /// Fully compresses the forest: every node points directly at its root.
  /// Afterwards find() performs no stores (see above), so a compressed
  /// forest may be queried from many threads concurrently — until the next
  /// unite() or grow(), which reintroduce single-writer semantics.
  void compress() {
    for (uint32_t I = 0, E = static_cast<uint32_t>(Parent.size()); I != E; ++I)
      Parent[I] = find(I);
  }

  /// Merges the sets of \p A and \p B; returns the new representative.
  uint32_t unite(uint32_t A, uint32_t B) {
    uint32_t RA = find(A), RB = find(B);
    if (RA == RB)
      return RA;
    if (Rank[RA] < Rank[RB])
      std::swap(RA, RB);
    Parent[RB] = RA;
    if (Rank[RA] == Rank[RB])
      ++Rank[RA];
    return RA;
  }

  /// Returns true if \p A and \p B are in the same set.
  bool connected(uint32_t A, uint32_t B) const { return find(A) == find(B); }

  /// The raw parent array — after compress(), a dense encoding of the
  /// whole partition (node I's class is Parent[I]). What the snapshot
  /// store serializes; feed it back through the vector constructor.
  const std::vector<uint32_t> &parents() const { return Parent; }

  /// Number of distinct sets among all ids.
  size_t numSets() const {
    size_t N = 0;
    for (uint32_t I = 0, E = static_cast<uint32_t>(Parent.size()); I != E; ++I)
      if (find(I) == I)
        ++N;
    return N;
  }

private:
  mutable std::vector<uint32_t> Parent;
  std::vector<uint8_t> Rank;
};

} // namespace petal

#endif // PETAL_SUPPORT_UNIONFIND_H
