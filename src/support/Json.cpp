//===- support/Json.cpp - Minimal JSON reader/writer ----------------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace petal;
using namespace petal::json;

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

void Value::push(Value V) {
  if (K == Kind::Null)
    K = Kind::Array;
  Elems.push_back(std::move(V));
}

void Value::set(std::string_view Name, Value V) {
  if (K == Kind::Null)
    K = Kind::Object;
  for (Member &M : Membs)
    if (M.first == Name) {
      M.second = std::move(V);
      return;
    }
  Membs.emplace_back(std::string(Name), std::move(V));
}

const Value *Value::find(std::string_view Name) const {
  if (K != Kind::Object)
    return nullptr;
  for (const Member &M : Membs)
    if (M.first == Name)
      return &M.second;
  return nullptr;
}

bool Value::getBool(std::string_view Name, bool Default) const {
  const Value *V = find(Name);
  return V && V->isBool() ? V->boolValue() : Default;
}

double Value::getNumber(std::string_view Name, double Default) const {
  const Value *V = find(Name);
  return V && V->isNumber() ? V->numberValue() : Default;
}

int64_t Value::getInt(std::string_view Name, int64_t Default) const {
  const Value *V = find(Name);
  return V && V->isNumber() ? V->intValue() : Default;
}

std::string Value::getString(std::string_view Name,
                             std::string_view Default) const {
  const Value *V = find(Name);
  return V && V->isString() ? V->stringValue() : std::string(Default);
}

bool Value::operator==(const Value &O) const {
  if (K != O.K)
    return false;
  switch (K) {
  case Kind::Null:
    return true;
  case Kind::Bool:
    return BoolV == O.BoolV;
  case Kind::Number:
    return NumV == O.NumV;
  case Kind::String:
    return StrV == O.StrV;
  case Kind::Array:
    return Elems == O.Elems;
  case Kind::Object:
    return Membs == O.Membs;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

void json::escapeString(std::string_view S, std::string &Out) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C; // UTF-8 bytes pass through unmodified
      }
    }
  }
}

static void writeNumber(double N, std::string &Out) {
  if (std::isfinite(N) && N == std::floor(N) && std::fabs(N) < 9.0e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(N));
    Out += Buf;
    return;
  }
  if (!std::isfinite(N)) { // not representable in JSON
    Out += "null";
    return;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", N);
  Out += Buf;
}

void Value::writeTo(std::string &Out) const {
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += BoolV ? "true" : "false";
    break;
  case Kind::Number:
    writeNumber(NumV, Out);
    break;
  case Kind::String:
    Out += '"';
    escapeString(StrV, Out);
    Out += '"';
    break;
  case Kind::Array:
    Out += '[';
    for (size_t I = 0; I != Elems.size(); ++I) {
      if (I)
        Out += ',';
      Elems[I].writeTo(Out);
    }
    Out += ']';
    break;
  case Kind::Object:
    Out += '{';
    for (size_t I = 0; I != Membs.size(); ++I) {
      if (I)
        Out += ',';
      Out += '"';
      escapeString(Membs[I].first, Out);
      Out += "\":";
      Membs[I].second.writeTo(Out);
    }
    Out += '}';
    break;
  }
}

std::string Value::write() const {
  std::string Out;
  writeTo(Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

constexpr int MaxDepth = 64;

/// Recursive-descent parser over a string_view; Pos is the cursor.
struct Parser {
  std::string_view Text;
  size_t Pos = 0;
  std::string Error;

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = "offset " + std::to_string(Pos) + ": " + Msg;
    return false;
  }

  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void skipWs() {
    while (!atEnd() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                        Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (atEnd() || Text[Pos] != C)
      return false;
    ++Pos;
    return true;
  }

  bool parseLiteral(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return fail("invalid literal");
    Pos += Word.size();
    return true;
  }

  bool parseHex4(unsigned &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I != 4; ++I) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<unsigned>(C - 'A' + 10);
      else
        return fail("invalid \\u escape");
    }
    return true;
  }

  void appendUtf8(unsigned CP, std::string &Out) {
    if (CP < 0x80) {
      Out += static_cast<char>(CP);
    } else if (CP < 0x800) {
      Out += static_cast<char>(0xC0 | (CP >> 6));
      Out += static_cast<char>(0x80 | (CP & 0x3F));
    } else if (CP < 0x10000) {
      Out += static_cast<char>(0xE0 | (CP >> 12));
      Out += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (CP & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (CP >> 18));
      Out += static_cast<char>(0x80 | ((CP >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (CP & 0x3F));
    }
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return fail("expected string");
    for (;;) {
      if (atEnd())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (atEnd())
        return fail("truncated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        unsigned CP;
        if (!parseHex4(CP))
          return false;
        // Surrogate pair?
        if (CP >= 0xD800 && CP <= 0xDBFF && Pos + 1 < Text.size() &&
            Text[Pos] == '\\' && Text[Pos + 1] == 'u') {
          size_t Save = Pos;
          Pos += 2;
          unsigned Low;
          if (!parseHex4(Low))
            return false;
          if (Low >= 0xDC00 && Low <= 0xDFFF)
            CP = 0x10000 + ((CP - 0xD800) << 10) + (Low - 0xDC00);
          else
            Pos = Save; // lone high surrogate; emit as-is
        }
        appendUtf8(CP, Out);
        break;
      }
      default:
        return fail("invalid escape character");
      }
    }
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    consume('-');
    if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail("invalid number");
    // JSON forbids leading zeros: "0" and "0.5" yes, "01" no.
    if (peek() == '0') {
      ++Pos;
      if (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        return fail("invalid number (leading zero)");
    }
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      ++Pos;
    if (!atEnd() && peek() == '.') {
      ++Pos;
      if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("invalid number");
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      ++Pos;
      if (!atEnd() && (peek() == '+' || peek() == '-'))
        ++Pos;
      if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("invalid number");
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    std::string Num(Text.substr(Start, Pos - Start));
    Out = Value(std::strtod(Num.c_str(), nullptr));
    return true;
  }

  bool parseValue(Value &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (atEnd())
      return fail("unexpected end of input");
    switch (peek()) {
    case 'n':
      Out = Value();
      return parseLiteral("null");
    case 't':
      Out = Value(true);
      return parseLiteral("true");
    case 'f':
      Out = Value(false);
      return parseLiteral("false");
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value(std::move(S));
      return true;
    }
    case '[': {
      ++Pos;
      Out = Value::array();
      skipWs();
      if (consume(']'))
        return true;
      for (;;) {
        Value Elem;
        if (!parseValue(Elem, Depth + 1))
          return false;
        Out.push(std::move(Elem));
        skipWs();
        if (consume(']'))
          return true;
        if (!consume(','))
          return fail("expected ',' or ']' in array");
      }
    }
    case '{': {
      ++Pos;
      Out = Value::object();
      skipWs();
      if (consume('}'))
        return true;
      for (;;) {
        skipWs();
        std::string Name;
        if (!parseString(Name))
          return false;
        skipWs();
        if (!consume(':'))
          return fail("expected ':' after object key");
        Value Member;
        if (!parseValue(Member, Depth + 1))
          return false;
        Out.set(Name, std::move(Member));
        skipWs();
        if (consume('}'))
          return true;
        if (!consume(','))
          return fail("expected ',' or '}' in object");
      }
    }
    default:
      return parseNumber(Out);
    }
  }
};

} // namespace

bool json::parse(std::string_view Text, Value &Out, std::string &Error) {
  Parser P{Text, 0, {}};
  if (!P.parseValue(Out, 0)) {
    Error = P.Error;
    return false;
  }
  P.skipWs();
  if (!P.atEnd()) {
    P.fail("trailing characters after value");
    Error = P.Error;
    return false;
  }
  return true;
}
