//===- support/Table.cpp - Aligned text table printer ---------------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>

using namespace petal;

void TextTable::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back({std::move(Cells), /*IsRule=*/false});
}

void TextTable::addRule() { Rows.push_back({{}, /*IsRule=*/true}); }

void TextTable::print(std::ostream &OS) const {
  // Compute column widths over the header and all rows.
  std::vector<size_t> Widths;
  auto Account = [&Widths](const std::vector<std::string> &Cells) {
    if (Cells.size() > Widths.size())
      Widths.resize(Cells.size(), 0);
    for (size_t I = 0; I != Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], Cells[I].size());
  };
  Account(Header);
  for (const Row &R : Rows)
    if (!R.IsRule)
      Account(R.Cells);

  size_t TotalWidth = 0;
  for (size_t W : Widths)
    TotalWidth += W;
  if (!Widths.empty())
    TotalWidth += 2 * (Widths.size() - 1);

  auto PrintCells = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I != Widths.size(); ++I) {
      const std::string &Cell = I < Cells.size() ? Cells[I] : std::string();
      OS << Cell;
      if (I + 1 != Widths.size())
        OS << std::string(Widths[I] - Cell.size() + 2, ' ');
    }
    OS << '\n';
  };

  if (!Header.empty()) {
    PrintCells(Header);
    OS << std::string(TotalWidth, '-') << '\n';
  }
  for (const Row &R : Rows) {
    if (R.IsRule)
      OS << std::string(TotalWidth, '-') << '\n';
    else
      PrintCells(R.Cells);
  }
}
