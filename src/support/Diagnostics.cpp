//===- support/Diagnostics.cpp - Parser/front-end diagnostics -------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace petal;

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

void DiagnosticEngine::print(std::ostream &OS) const {
  for (const Diagnostic &D : Diags) {
    if (D.Loc.isValid())
      OS << D.Loc.Line << ':' << D.Loc.Col << ": ";
    OS << kindName(D.Kind) << ": " << D.Message << '\n';
  }
}
