//===- support/Diagnostics.h - Parser/front-end diagnostics ----*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal diagnostic engine: errors and warnings with source locations,
/// collected rather than thrown (the library does not use exceptions).
/// Message style follows the LLVM convention: lowercase first word, no
/// trailing period.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SUPPORT_DIAGNOSTICS_H
#define PETAL_SUPPORT_DIAGNOSTICS_H

#include <ostream>
#include <string>
#include <vector>

namespace petal {

/// A location within a source buffer (1-based line and column; 0 means
/// "unknown").
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  bool isValid() const { return Line != 0; }
};

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One collected diagnostic.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics emitted by the lexer, parser, and resolver.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }

  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }

  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics, one per line, as "line:col: kind: message".
  void print(std::ostream &OS) const;

  /// Drops all collected diagnostics.
  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace petal

#endif // PETAL_SUPPORT_DIAGNOSTICS_H
