//===- support/StrUtil.cpp - Small string helpers -------------------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/StrUtil.h"

#include <cstdio>

using namespace petal;

std::vector<std::string> petal::splitString(std::string_view S, char Sep) {
  std::vector<std::string> Parts;
  if (S.empty())
    return Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Parts.emplace_back(S.substr(Start));
      return Parts;
    }
    Parts.emplace_back(S.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string petal::joinStrings(const std::vector<std::string> &Parts,
                               char Sep) {
  std::string Out;
  for (size_t I = 0; I != Parts.size(); ++I) {
    if (I)
      Out.push_back(Sep);
    Out += Parts[I];
  }
  return Out;
}

size_t petal::commonPrefixLength(const std::vector<std::string> &A,
                                 const std::vector<std::string> &B) {
  size_t N = std::min(A.size(), B.size());
  for (size_t I = 0; I != N; ++I)
    if (A[I] != B[I])
      return I;
  return N;
}

bool petal::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

std::string petal::formatFixed(double Value, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  return Buf;
}

std::string petal::formatPercent(size_t Num, size_t Den) {
  if (Den == 0)
    return "n/a";
  return formatFixed(100.0 * static_cast<double>(Num) /
                         static_cast<double>(Den),
                     2) +
         "%";
}
