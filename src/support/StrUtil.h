//===- support/StrUtil.h - Small string helpers -----------------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String splitting/joining and the namespace-prefix computation used by the
/// common-namespace ranking term (§4.1).
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SUPPORT_STRUTIL_H
#define PETAL_SUPPORT_STRUTIL_H

#include <string>
#include <string_view>
#include <vector>

namespace petal {

/// Splits \p S on \p Sep; empty segments are preserved except that splitting
/// an empty string yields no segments.
std::vector<std::string> splitString(std::string_view S, char Sep);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Parts, char Sep);

/// Length of the longest common prefix of two segment lists (element-wise).
size_t commonPrefixLength(const std::vector<std::string> &A,
                          const std::vector<std::string> &B);

/// True if \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

/// Formats \p Value as a fixed-point decimal with \p Digits fraction digits.
std::string formatFixed(double Value, int Digits);

/// Formats a ratio Num/Den as a percentage with two fraction digits; "n/a"
/// when Den is zero.
std::string formatPercent(size_t Num, size_t Den);

} // namespace petal

#endif // PETAL_SUPPORT_STRUTIL_H
