//===- support/Span.h - Non-owning contiguous range -------------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal non-owning view over a contiguous range, used by the frozen
/// index accessors: after CompletionIndexes::freeze() compacts the member
/// edges and method-index buckets into CSR arrays, per-type lookups return
/// a Span into the shared flat storage instead of a reference to a
/// per-type heap vector. Unlike std::span it asserts on out-of-range
/// element access, matching the rest of the support layer.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SUPPORT_SPAN_H
#define PETAL_SUPPORT_SPAN_H

#include <cassert>
#include <cstddef>
#include <type_traits>
#include <vector>

namespace petal {

/// A pointer + length view of immutable contiguous elements. Cheap to copy;
/// never owns. The viewed storage must outlive the span (frozen index
/// storage lives as long as the index, which satisfies every petal use).
template <typename T> class Span {
public:
  Span() = default;
  Span(const T *Data, size_t Size) : Data_(Data), Size_(Size) {}
  /// Views a whole vector, any allocator (implicit: lets un-frozen
  /// accessors that still keep per-type vectors return the same type as
  /// frozen ones, and lets arena-backed vectors pass where a Span is
  /// expected).
  template <typename Alloc>
  Span(const std::vector<std::remove_cv_t<T>, Alloc> &V)
      : Data_(V.data()), Size_(V.size()) {}

  const T *begin() const { return Data_; }
  const T *end() const { return Data_ + Size_; }
  const T *data() const { return Data_; }
  size_t size() const { return Size_; }
  bool empty() const { return Size_ == 0; }

  const T &operator[](size_t I) const {
    assert(I < Size_ && "Span index out of range");
    return Data_[I];
  }
  const T &front() const { return (*this)[0]; }
  const T &back() const { return (*this)[Size_ - 1]; }

  Span subspan(size_t Offset, size_t Count) const {
    assert(Offset + Count <= Size_ && "Span subspan out of range");
    return Span(Data_ + Offset, Count);
  }

private:
  const T *Data_ = nullptr;
  size_t Size_ = 0;
};

} // namespace petal

#endif // PETAL_SUPPORT_SPAN_H
