//===- support/Rng.h - Deterministic pseudo-random generation --*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fully deterministic PRNG (SplitMix64) used by the synthetic
/// corpus generator. std::mt19937 distributions are implementation-defined,
/// so every draw here is hand-rolled to guarantee identical corpora across
/// standard libraries and platforms.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SUPPORT_RNG_H
#define PETAL_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace petal {

/// SplitMix64: tiny, fast, high-quality 64-bit generator.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State += 0x9E3779B97F4A7C15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "below() requires a positive bound");
    // Rejection-free modulo is fine here: corpora do not need perfect
    // uniformity, only determinism.
    return next() % Bound;
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "range() bounds inverted");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Uniform double in [0, 1).
  double unit() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability \p P of returning true.
  bool chance(double P) { return unit() < P; }

  /// Picks a uniformly random element of \p V (must be non-empty).
  template <typename T> const T &pick(const std::vector<T> &V) {
    assert(!V.empty() && "pick() from empty vector");
    return V[below(V.size())];
  }

  /// Draws an index from a discrete distribution given by non-negative
  /// weights. At least one weight must be positive.
  size_t weighted(const std::vector<double> &Weights) {
    double Total = 0;
    for (double W : Weights)
      Total += W;
    assert(Total > 0 && "weighted() requires a positive total weight");
    double X = unit() * Total;
    for (size_t I = 0; I != Weights.size(); ++I) {
      X -= Weights[I];
      if (X < 0)
        return I;
    }
    return Weights.size() - 1;
  }

  /// Forks an independent generator; the fork's stream is a pure function of
  /// this generator's state, so forked corpora remain deterministic.
  Rng fork() { return Rng(next() ^ 0xD1B54A32D192ED03ull); }

private:
  uint64_t State;
};

} // namespace petal

#endif // PETAL_SUPPORT_RNG_H
