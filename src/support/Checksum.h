//===- support/Checksum.h - CRC32 over byte ranges --------------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRC32 (the reflected IEEE 802.3 polynomial, 0xEDB88320 — the same
/// function zlib's crc32() computes), used by the snapshot store to
/// checksum every serialized section so truncation and bit corruption are
/// detected before any table is adopted. Incremental: feed the previous
/// return value back as \p Seed to checksum a discontiguous range.
///
/// Implemented slice-by-8: eight derived tables let the loop fold eight
/// input bytes per iteration instead of one. The snapshot loader checksums
/// the entire multi-megabyte image on every warm start, so this sits
/// directly on the start-to-query-ready path (bench/cold_start.cpp); the
/// slicing is worth ~6x there. The produced values are bit-identical to
/// the classic byte-at-a-time form — snapshot files do not re-version —
/// which support_test pins against both a reference implementation and
/// the standard test vector.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SUPPORT_CHECKSUM_H
#define PETAL_SUPPORT_CHECKSUM_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace petal {

namespace detail {
/// Tables[0] is the classic CRC32 byte table; Tables[K][B] extends it to
/// the CRC of byte B followed by K zero bytes, which is what lets eight
/// table lookups advance the state over eight input bytes at once.
inline const std::array<std::array<uint32_t, 256>, 8> &crc32Tables() {
  static const std::array<std::array<uint32_t, 256>, 8> Tables = [] {
    std::array<std::array<uint32_t, 256>, 8> T{};
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[0][I] = C;
    }
    for (uint32_t I = 0; I != 256; ++I)
      for (size_t K = 1; K != 8; ++K)
        T[K][I] = (T[K - 1][I] >> 8) ^ T[0][T[K - 1][I] & 0xFFu];
    return T;
  }();
  return Tables;
}
} // namespace detail

/// CRC32 of \p Size bytes at \p Data, continued from \p Seed (pass the
/// previous call's result to extend a checksum across several buffers; the
/// default seed starts a fresh one).
inline uint32_t crc32(const void *Data, size_t Size, uint32_t Seed = 0) {
  const std::array<std::array<uint32_t, 256>, 8> &T = detail::crc32Tables();
  const auto *P = static_cast<const uint8_t *>(Data);
  uint32_t C = ~Seed;
  // Byte-assembled loads keep the function endian-agnostic: the snapshot
  // format refuses cross-endian files for its *payload* layout, but the
  // checksum itself must not care.
  while (Size >= 8) {
    uint32_t Lo = C ^ (static_cast<uint32_t>(P[0]) |
                       static_cast<uint32_t>(P[1]) << 8 |
                       static_cast<uint32_t>(P[2]) << 16 |
                       static_cast<uint32_t>(P[3]) << 24);
    uint32_t Hi = static_cast<uint32_t>(P[4]) |
                  static_cast<uint32_t>(P[5]) << 8 |
                  static_cast<uint32_t>(P[6]) << 16 |
                  static_cast<uint32_t>(P[7]) << 24;
    C = T[7][Lo & 0xFFu] ^ T[6][(Lo >> 8) & 0xFFu] ^
        T[5][(Lo >> 16) & 0xFFu] ^ T[4][Lo >> 24] ^ T[3][Hi & 0xFFu] ^
        T[2][(Hi >> 8) & 0xFFu] ^ T[1][(Hi >> 16) & 0xFFu] ^ T[0][Hi >> 24];
    P += 8;
    Size -= 8;
  }
  while (Size--)
    C = T[0][(C ^ *P++) & 0xFFu] ^ (C >> 8);
  return ~C;
}

} // namespace petal

#endif // PETAL_SUPPORT_CHECKSUM_H
