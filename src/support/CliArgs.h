//===- support/CliArgs.h - Tiny command-line flag parser --------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small flag parser shared by the example binaries (repl,
/// corpus_explorer, petal_serve) so they agree on the basics: a generated
/// --help, flags spelled `--name value` or `--name=value`, at most one free
/// positional argument, and a hard error — never a silent ignore — on
/// anything that looks like a flag but is not registered.
///
/// Header-only; no allocation beyond the registration vectors.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SUPPORT_CLIARGS_H
#define PETAL_SUPPORT_CLIARGS_H

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

namespace petal {

/// Declarative flag registry + parser. Usage:
/// \code
///   FlagParser Flags("repl", "interactive completion shell",
///                    "[source.cs]");
///   Flags.addFlag("threads", "N", "worker threads (0 = auto)",
///                 [&](const std::string &V) { ... });
///   if (!Flags.parse(argc, argv)) return Flags.exitCode();
/// \endcode
class FlagParser {
public:
  FlagParser(std::string Program, std::string OneLiner,
             std::string PositionalUsage = "")
      : Program(std::move(Program)), OneLiner(std::move(OneLiner)),
        PositionalUsage(std::move(PositionalUsage)) {}

  /// Registers `--name <valueName>`; \p Apply returns false (after printing
  /// its own message) to reject the value.
  void addFlag(std::string Name, std::string ValueName, std::string Help,
               std::function<bool(const std::string &)> Apply) {
    Flags.push_back({std::move(Name), std::move(ValueName), std::move(Help),
                     std::move(Apply), /*TakesValue=*/true});
  }

  /// Registers a valueless `--name` switch.
  void addSwitch(std::string Name, std::string Help,
                 std::function<bool()> Apply) {
    Flags.push_back({std::move(Name), "", std::move(Help),
                     [Fn = std::move(Apply)](const std::string &) {
                       return Fn();
                     },
                     /*TakesValue=*/false});
  }

  /// Accepts one free (non-flag) argument, e.g. a file name or a scale.
  void addPositional(std::string Help,
                     std::function<bool(const std::string &)> Apply) {
    PositionalHelp = std::move(Help);
    Positional = std::move(Apply);
  }

  /// Parses argv. Returns true to continue running; false means "exit now"
  /// with exitCode() — 0 for --help, 1 for a usage error (which is printed
  /// to stderr along with a pointer to --help).
  bool parse(int Argc, char **Argv) {
    for (int I = 1; I < Argc; ++I) {
      std::string Arg = Argv[I];
      if (Arg == "--help" || Arg == "-h") {
        printHelp(std::cout);
        Code = 0;
        return false;
      }
      if (Arg.size() >= 2 && Arg[0] == '-' && Arg[1] == '-') {
        // `--name value` and `--name=value` are equivalent; the split is
        // at the *first* '=' so values may themselves contain one.
        std::string Body = Arg.substr(2);
        std::string Inline;
        bool HasInline = false;
        if (size_t Eq = Body.find('='); Eq != std::string::npos) {
          Inline = Body.substr(Eq + 1);
          Body = Body.substr(0, Eq);
          HasInline = true;
        }
        Flag *F = findFlag(Body);
        if (!F)
          return usageError("unknown flag '--" + Body + "'");
        std::string Value;
        if (F->TakesValue) {
          if (HasInline) {
            Value = std::move(Inline); // may legitimately be empty
          } else {
            if (I + 1 == Argc)
              return usageError("--" + F->Name + " needs a <" + F->ValueName +
                                "> value");
            Value = Argv[++I];
          }
        } else if (HasInline) {
          return usageError("--" + F->Name + " does not take a value");
        }
        if (!F->Apply(Value)) {
          Code = 1;
          return false;
        }
        continue;
      }
      if (!Arg.empty() && Arg[0] == '-' && Arg.size() > 1 &&
          !std::isdigit(static_cast<unsigned char>(Arg[1])))
        return usageError("unknown flag '" + Arg + "'");
      if (!Positional)
        return usageError("unexpected argument '" + Arg + "'");
      if (SawPositional)
        return usageError("more than one positional argument ('" + Arg +
                          "')");
      SawPositional = true;
      if (!Positional(Arg)) {
        Code = 1;
        return false;
      }
    }
    return true;
  }

  int exitCode() const { return Code; }

  void printHelp(std::ostream &OS) const {
    OS << Program << " — " << OneLiner << "\n\n"
       << "usage: " << Program << " [flags]"
       << (PositionalUsage.empty() ? "" : " " + PositionalUsage) << "\n\n"
       << "flags:\n";
    for (const Flag &F : Flags) {
      std::string Head = "  --" + F.Name;
      if (F.TakesValue)
        Head += " <" + F.ValueName + ">";
      OS << Head;
      for (size_t Pad = Head.size(); Pad < 26; ++Pad)
        OS << ' ';
      OS << F.Help << "\n";
    }
    OS << "  --help";
    for (size_t Pad = 8; Pad < 26; ++Pad)
      OS << ' ';
    OS << "this text\n";
    if (!PositionalHelp.empty())
      OS << "\n" << PositionalHelp << "\n";
  }

private:
  struct Flag {
    std::string Name;
    std::string ValueName;
    std::string Help;
    std::function<bool(const std::string &)> Apply;
    bool TakesValue;
  };

  Flag *findFlag(const std::string &Name) {
    for (Flag &F : Flags)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }

  bool usageError(const std::string &Msg) {
    std::cerr << Program << ": error: " << Msg << " (try --help)\n";
    Code = 1;
    return false;
  }

  std::string Program;
  std::string OneLiner;
  std::string PositionalUsage;
  std::string PositionalHelp;
  std::vector<Flag> Flags;
  std::function<bool(const std::string &)> Positional;
  bool SawPositional = false;
  int Code = 0;
};

/// Parses a non-negative integer flag value; returns false and prints an
/// error when \p S is not a whole number.
inline bool parseCount(const std::string &S, const std::string &FlagName,
                       size_t &Out) {
  char *End = nullptr;
  errno = 0;
  long N = std::strtol(S.c_str(), &End, 10);
  if (End == S.c_str() || *End != '\0' || errno == ERANGE || N < 0) {
    std::cerr << "error: --" << FlagName << " expects a non-negative "
              << "integer, got '" << S << "'\n";
    return false;
  }
  Out = static_cast<size_t>(N);
  return true;
}

} // namespace petal

#endif // PETAL_SUPPORT_CLIARGS_H
