//===- support/Casting.h - classof-based isa/cast/dyn_cast ------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style opt-in runtime type discrimination. A class hierarchy exposes a
/// Kind enumeration and each subclass provides `static bool classof(const
/// Base *)`; these templates then provide checked downcasts without RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SUPPORT_CASTING_H
#define PETAL_SUPPORT_CASTING_H

#include <cassert>

namespace petal {

/// Returns true if \p Val is an instance of type \p To, as reported by
/// `To::classof`. \p Val must be non-null.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val is a \p To.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checked downcast, mutable overload.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Downcast that returns null when \p Val is not a \p To.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Downcast that returns null when \p Val is not a \p To, mutable overload.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Like dyn_cast, but tolerates a null input (returns null).
template <typename To, typename From> const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace petal

#endif // PETAL_SUPPORT_CASTING_H
