//===- support/Table.h - Aligned text table printer -------------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders rows of strings as a column-aligned text table. The benchmark
/// harness uses this to print each of the paper's tables and figure series.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SUPPORT_TABLE_H
#define PETAL_SUPPORT_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace petal {

/// A text table with a header row and aligned columns.
class TextTable {
public:
  /// Sets the header row; establishes the column count.
  void setHeader(std::vector<std::string> Cells);

  /// Appends a data row. Rows shorter than the header are padded with empty
  /// cells; longer rows extend the column count.
  void addRow(std::vector<std::string> Cells);

  /// Inserts a horizontal rule at the current position.
  void addRule();

  /// Renders the table to \p OS with two-space column gutters.
  void print(std::ostream &OS) const;

  size_t numRows() const { return Rows.size(); }

private:
  struct Row {
    std::vector<std::string> Cells;
    bool IsRule = false;
  };
  std::vector<std::string> Header;
  std::vector<Row> Rows;
};

} // namespace petal

#endif // PETAL_SUPPORT_TABLE_H
