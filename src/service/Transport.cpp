//===- service/Transport.cpp - Content-Length framed messages -------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "service/Transport.h"

#include <cctype>
#include <istream>
#include <ostream>

using namespace petal;

/// Reads one header line up to "\r\n" (tolerating a bare "\n" from sloppy
/// clients). Returns false on EOF before any byte was read.
static bool readHeaderLine(std::istream &In, std::string &Line, bool &Eof) {
  Line.clear();
  Eof = false;
  int C = In.get();
  if (C == std::char_traits<char>::eof()) {
    Eof = true;
    return false;
  }
  for (; C != std::char_traits<char>::eof(); C = In.get()) {
    if (C == '\n')
      break;
    Line += static_cast<char>(C);
  }
  if (!Line.empty() && Line.back() == '\r')
    Line.pop_back();
  return true;
}

FramedReader::Status FramedReader::read(std::string &Payload) {
  // Header block: one or more "Name: value" lines, then a blank line.
  bool SawLength = false;
  size_t Length = 0;
  for (;;) {
    std::string Line;
    bool Eof;
    if (!readHeaderLine(In, Line, Eof)) {
      if (Eof && !SawLength)
        return Status::Eof; // clean EOF between messages
      return fail("unexpected end of stream inside header block");
    }
    if (Line.empty())
      break; // end of headers
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos)
      return fail("malformed header line '" + Line + "'");
    std::string Name = Line.substr(0, Colon);
    size_t ValueBegin = Colon + 1;
    while (ValueBegin < Line.size() && Line[ValueBegin] == ' ')
      ++ValueBegin;
    std::string Value = Line.substr(ValueBegin);
    if (Name == "Content-Length") {
      if (SawLength)
        return fail("duplicate Content-Length header");
      if (Value.empty())
        return fail("empty Content-Length value");
      size_t N = 0;
      for (char Ch : Value) {
        if (!std::isdigit(static_cast<unsigned char>(Ch)))
          return fail("non-numeric Content-Length '" + Value + "'");
        N = N * 10 + static_cast<size_t>(Ch - '0');
        if (N > MaxPayloadBytes)
          return fail("Content-Length " + Value + " exceeds the " +
                      std::to_string(MaxPayloadBytes) + " byte cap");
      }
      Length = N;
      SawLength = true;
    }
    // Other headers (Content-Type, ...) are tolerated and ignored.
  }
  if (!SawLength)
    return fail("header block without Content-Length");

  Payload.resize(Length);
  In.read(Payload.data(), static_cast<std::streamsize>(Length));
  if (static_cast<size_t>(In.gcount()) != Length)
    return fail("truncated payload: expected " + std::to_string(Length) +
                " bytes, got " + std::to_string(In.gcount()));
  return Status::Ok;
}

void FramedWriter::write(std::string_view Payload) {
  std::lock_guard<std::mutex> L(M);
  Out << "Content-Length: " << Payload.size() << "\r\n\r\n";
  Out.write(Payload.data(), static_cast<std::streamsize>(Payload.size()));
  Out.flush();
}
