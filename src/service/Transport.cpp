//===- service/Transport.cpp - Content-Length framed messages -------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "service/Transport.h"

#include "support/FaultInjector.h"

#include <cctype>
#include <cerrno>
#include <istream>
#include <ostream>

#include <unistd.h>

using namespace petal;

/// Reads one header line up to "\r\n" (tolerating a bare "\n" from sloppy
/// clients). Returns false on EOF before any byte was read.
static bool readHeaderLine(std::istream &In, std::string &Line, bool &Eof) {
  Line.clear();
  Eof = false;
  int C = In.get();
  if (C == std::char_traits<char>::eof()) {
    Eof = true;
    return false;
  }
  for (; C != std::char_traits<char>::eof(); C = In.get()) {
    if (C == '\n')
      break;
    Line += static_cast<char>(C);
  }
  if (!Line.empty() && Line.back() == '\r')
    Line.pop_back();
  return true;
}

FramedReader::Status FramedReader::read(std::string &Payload) {
  // Fault: hand the service a garbage frame. The synthetic payload is
  // yielded *without consuming the stream*, so the real message is still
  // next in line — the service answers the garbage with a JSON-RPC parse
  // error and the connection keeps working, which is exactly the recovery
  // the chaos tests assert.
  if (FaultInjector::armed() &&
      FaultInjector::instance().fire(Fault::TransportGarbageFrame)) {
    FaultInjector::instance().noteRecovered(Fault::TransportGarbageFrame);
    Payload = "\x01{not json";
    return Status::Ok;
  }

  // Header block: one or more "Name: value" lines, then a blank line.
  bool SawLength = false;
  size_t Length = 0;
  for (;;) {
    std::string Line;
    bool Eof;
    if (!readHeaderLine(In, Line, Eof)) {
      if (Eof && !SawLength)
        return Status::Eof; // clean EOF between messages
      return fail("unexpected end of stream inside header block");
    }
    if (Line.empty())
      break; // end of headers
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos)
      return fail("malformed header line '" + Line + "'");
    std::string Name = Line.substr(0, Colon);
    size_t ValueBegin = Colon + 1;
    while (ValueBegin < Line.size() && Line[ValueBegin] == ' ')
      ++ValueBegin;
    std::string Value = Line.substr(ValueBegin);
    if (Name == "Content-Length") {
      if (SawLength)
        return fail("duplicate Content-Length header");
      if (Value.empty())
        return fail("empty Content-Length value");
      size_t N = 0;
      for (char Ch : Value) {
        if (!std::isdigit(static_cast<unsigned char>(Ch)))
          return fail("non-numeric Content-Length '" + Value + "'");
        N = N * 10 + static_cast<size_t>(Ch - '0');
        if (N > MaxPayload)
          return fail("Content-Length " + Value + " exceeds the " +
                      std::to_string(MaxPayload) + " byte cap");
      }
      Length = N;
      SawLength = true;
    }
    // Other headers (Content-Type, ...) are tolerated and ignored.
  }
  if (!SawLength)
    return fail("header block without Content-Length");

  // Chunked payload read: sockets (and the short-read fault below) may
  // deliver fewer bytes than asked without that being an error — only a
  // read that makes no progress means the stream truly ended mid-payload.
  Payload.resize(Length);
  size_t Got = 0;
  while (Got < Length) {
    size_t Chunk = Length - Got;
    if (FaultInjector::armed() && Chunk > 1 &&
        FaultInjector::instance().fire(Fault::TransportShortRead)) {
      // Deliberately undersized read; the loop itself is the recovery.
      FaultInjector::instance().noteRecovered(Fault::TransportShortRead);
      Chunk = 1 + Chunk / 2;
    }
    In.read(Payload.data() + Got, static_cast<std::streamsize>(Chunk));
    size_t N = static_cast<size_t>(In.gcount());
    if (N == 0)
      return fail("truncated payload: expected " + std::to_string(Length) +
                  " bytes, got " + std::to_string(Got));
    Got += N;
    if (Got < Length && In.eof())
      return fail("truncated payload: expected " + std::to_string(Length) +
                  " bytes, got " + std::to_string(Got));
  }
  return Status::Ok;
}

void FramedWriter::write(std::string_view Payload) {
  std::lock_guard<std::mutex> L(M);
  Out << "Content-Length: " << Payload.size() << "\r\n\r\n";
  Out.write(Payload.data(), static_cast<std::streamsize>(Payload.size()));
  Out.flush();
}

FdStreamBuf::FdStreamBuf(int Fd) : Fd(Fd) {
  setg(InBuf, InBuf, InBuf);
  setp(OutBuf, OutBuf + sizeof(OutBuf));
}

FdStreamBuf::int_type FdStreamBuf::underflow() {
  ssize_t N;
  do {
    // Fault: behave as if a signal interrupted the read before any byte
    // moved — the retry loop below is the recovery, same as a real EINTR.
    if (FaultInjector::armed() &&
        FaultInjector::instance().fire(Fault::TransportEintr)) {
      FaultInjector::instance().noteRecovered(Fault::TransportEintr);
      errno = EINTR;
      N = -1;
      continue;
    }
    N = ::read(Fd, InBuf, sizeof(InBuf));
  } while (N < 0 && errno == EINTR);
  if (N <= 0)
    return traits_type::eof(); // EOF or hard error
  setg(InBuf, InBuf, InBuf + N);
  return traits_type::to_int_type(*gptr());
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type C) {
  if (sync() == -1)
    return traits_type::eof();
  if (!traits_type::eq_int_type(C, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(C);
    pbump(1);
  }
  return traits_type::not_eof(C);
}

int FdStreamBuf::sync() {
  // A write may legally consume fewer bytes than asked (socket buffers) or
  // be interrupted by a signal before transferring anything; neither is a
  // stream failure. Advance past whatever was accepted and keep going —
  // only a genuine error (or a 0-byte result, which a blocking fd should
  // never produce for a nonzero count) aborts.
  char *P = pbase();
  while (P != pptr()) {
    ssize_t N = ::write(Fd, P, static_cast<size_t>(pptr() - P));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (N == 0)
      return -1;
    P += N;
  }
  setp(OutBuf, OutBuf + sizeof(OutBuf));
  return 0;
}
