//===- service/Client.h - In-process service client -------------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A synchronous client that talks to a PetalService in the same process,
/// skipping the wire framing. It owns the service, routes responses back
/// to callers by request id, and is safe to share across threads — the
/// service throughput bench drives one service from N client threads
/// through a single InProcessClient.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SERVICE_CLIENT_H
#define PETAL_SERVICE_CLIENT_H

#include "service/Service.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <unordered_map>

namespace petal {

/// Owns a PetalService and offers blocking request/response calls.
class InProcessClient {
public:
  explicit InProcessClient(const PetalService::Options &Opts);

  PetalService &service() { return S; }

  /// Sends a request and blocks until its response arrives. Returns the
  /// full response message ("result" or "error" member). Thread-safe.
  json::Value call(std::string_view Method, json::Value Params);

  /// Sends a request without waiting; the response is retrieved later
  /// with await(). Returns the assigned id.
  int64_t send(std::string_view Method, json::Value Params);

  /// Blocks until the response for \p Id arrives and returns it.
  json::Value await(int64_t Id);

  /// Sends a notification (no id, no response).
  void notify(std::string_view Method, json::Value Params);

  /// Convenience: call() and return the "result" member (null on error).
  json::Value callResult(std::string_view Method, json::Value Params);

  /// call() with honest backpressure handling: on a ServerOverloaded
  /// error the client sleeps for the error's retryAfterMs hint (clamped
  /// to [1, 100] ms so tests cannot stall) and retries with a fresh id,
  /// up to \p MaxAttempts total attempts. Every other response — success
  /// or error — is returned as-is. The well-behaved-client loop the
  /// robustness tests and the chaos harness drive.
  json::Value callWithRetry(std::string_view Method, json::Value Params,
                            size_t MaxAttempts = 4);

  /// How many ServerOverloaded retries callWithRetry has performed.
  size_t overloadRetries() const;

  /// Responses to requests the client did not send (server pushes); none
  /// are expected today, but the count is observable for tests.
  size_t strayResponses() const;

private:
  void onResponse(const json::Value &Message);

  mutable std::mutex PM;
  std::condition_variable PCV;
  std::unordered_map<int64_t, json::Value> Ready;
  size_t Strays = 0;
  std::atomic<int64_t> NextId{1};
  std::atomic<uint64_t> OverloadRetries{0};

  // Declared last: workers may call onResponse until the service (and its
  // worker threads) are torn down, which happens before the members above.
  PetalService S;
};

} // namespace petal

#endif // PETAL_SERVICE_CLIENT_H
