//===- service/Session.cpp - Versioned document sessions ------------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "service/Session.h"

#include "code/ExprPrinter.h"
#include "complete/BaseCorpus.h"
#include "service/Protocol.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <sstream>

using namespace petal;

size_t DocumentState::memoryBytes() const {
  size_t Bytes = Text.capacity();
  for (const DeclUnit &U : Shape.Units)
    Bytes += sizeof(DeclUnit) + U.QualName.capacity();
  // Each layer's memoryBytes counts only storage that layer owns: an
  // overlay TypeSystem reports its local tables (not the base's), and
  // indexes built by the sharing constructor or over adopted snapshot
  // mappings report only their fresh parts.
  if (TS)
    Bytes += TS->memoryBytes();
  if (Idx)
    Bytes += Idx->memoryBytes();
  return Bytes;
}

/// Tries the incremental path: share \p Prev's TypeSystem and frozen
/// type-graph tables, re-resolve only the code layer of \p File into a new
/// Program. Returns false (leaving \p Doc's engine layers unset) when the
/// existing declarations don't pair up with the file — the caller then
/// runs the full build. Body-resolution *errors* also return false; the
/// full build reproduces and reports them.
static bool tryIncrementalBuild(DocumentState &Doc, const SynFile &File,
                                const DocumentState &Prev,
                                size_t DocThreads) {
  if (!Prev.TS || !Prev.Idx || !Prev.Idx->frozen() || !Prev.Exec)
    return false;
  if (Prev.Shape.TypeGraphHash != Doc.Shape.TypeGraphHash ||
      Prev.Shape.Units.size() != Doc.Shape.Units.size())
    return false;

  auto P = std::make_shared<Program>(*Prev.TS);
  [[maybe_unused]] TypeSystem::Fingerprint Before = Prev.TS->fingerprint();
  DiagnosticEngine Diags;
  if (!resolveParsedFileReusingDecls(File, *P, Diags))
    return false;
  assert(Prev.TS->fingerprint() == Before &&
         "reuse resolution mutated the shared TypeSystem");

  Doc.TS = Prev.TS;
  Doc.P = std::move(P);
  Doc.Base = Prev.Base;
  Doc.Idx = std::make_shared<CompletionIndexes>(*Doc.P, *Prev.Idx);
  Doc.Idx->freeze(FreezeOptions{}); // no-op compile: tables are shared
  Doc.Exec = std::make_shared<BatchExecutor>(*Doc.P, *Doc.Idx, DocThreads);
  if (Doc.Shape.CodeHash == Prev.Shape.CodeHash) {
    // Token-identical text: the whole-corpus abstract-type solution is a
    // function of the (unchanged) method bodies, so it carries over.
    // Abstract-type variables are numbered by a deterministic structural
    // walk, which is what makes the old partition valid verbatim.
    Doc.Exec->adoptSolution(Prev.Exec->sharedSolution());
    Doc.Kind = DocumentState::BuildKind::IncrementalNoop;
  } else {
    // Bodies changed: the solution is a whole-corpus artifact (constraints
    // are harvested from *every* method body), so sharing it across a real
    // body edit would break bit-identity with a fresh build. Recompute it;
    // the expensive dense freeze is still skipped.
    Doc.Kind = DocumentState::BuildKind::IncrementalBody;
  }
  Doc.Exec->fullSolution();
  return true;
}

/// One full (non-incremental) build of \p Doc from the already-parsed
/// \p File: fresh TypeSystem (layered over \p Base when given), resolve,
/// index, freeze, executor, solution. Returns false with \p Error set on
/// resolution failure. Factored out so the overlay degradation path can
/// re-run it monolithically.
static bool runFullBuild(DocumentState &Doc, const SynFile &File,
                         std::shared_ptr<const BaseCorpus> Base,
                         size_t DocThreads, std::string &Error) {
  DiagnosticEngine Diags;
  // With a base corpus the "full" build is an overlay build: the
  // TypeSystem layers over the base's (document entity ids continue
  // after the base's), resolution looks the framework types up through
  // the layered symbol tables, and the overlay index constructor wires
  // each sub-index to its frozen base counterpart. Only the document's
  // own entities are processed below; the base is read, never touched.
  Doc.Base = Base;
  Doc.TS = Base ? std::make_shared<TypeSystem>(Base->TS)
                : std::make_shared<TypeSystem>();
  Doc.P = std::make_shared<Program>(*Doc.TS);
  if (!resolveParsedFile(File, *Doc.P, Diags)) {
    std::ostringstream OS;
    Diags.print(OS);
    Error = OS.str();
    if (Error.empty())
      Error = "document failed to resolve";
    return false;
  }
  Doc.Idx = Base ? std::make_shared<CompletionIndexes>(*Doc.P, Base)
                 : std::make_shared<CompletionIndexes>(*Doc.P);
  // Freeze explicitly at document build time: per-document corpora are
  // small, so the dense distance matrices always fit the default budget,
  // and every query this document serves — at any DocThreads — then runs
  // against lock-free flat tables. (The executor would freeze anyway;
  // this keeps the full freeze cost inside BuildMillis and makes the
  // dense-mode decision visible here.) Computing the shared
  // abstract-type solution moves that cost out of the first query's
  // latency too.
  FreezeOptions FO{};
  // Fault: pretend the dense budget is exhausted, exercising the lazy
  // warmed-cache fallback freeze() already supports. Only safe where the
  // lazy path is actually legal: a monolithic document on a serial
  // executor (lazy caches fill on first query, single-threaded only).
  if (!Base && DocThreads == 1 && FaultInjector::armed() &&
      FaultInjector::instance().fire(Fault::FreezeDenseBudget)) {
    FaultInjector::instance().noteRecovered(Fault::FreezeDenseBudget);
    FO.MaxDenseBytes = 0;
  }
  Doc.Idx->freeze(FO);
  Doc.Exec = std::make_shared<BatchExecutor>(*Doc.P, *Doc.Idx, DocThreads);
  Doc.Exec->fullSolution();
  return true;
}

std::unique_ptr<DocumentState>
petal::buildDocumentState(const std::string &Name, const std::string &Text,
                          int64_t Version, size_t DocThreads,
                          std::string &Error, const DocumentState *Prev,
                          std::shared_ptr<const BaseCorpus> Base,
                          const AbortSignal *Abort) {
  auto Start = std::chrono::steady_clock::now();
  auto Doc = std::make_unique<DocumentState>();
  Doc->Name = Name;
  Doc->Version = Version;
  Doc->Text = Text;

  if (Abort && Abort->aborted()) {
    Error = "build abandoned before parse (deadline or cancellation)";
    return nullptr;
  }

  // Fault: a build that throws mid-flight. The service's per-request
  // isolation catches it, answers this request with an error, and keeps
  // the session on its previous version — that catch is the recovery.
  if (FaultInjector::armed() &&
      FaultInjector::instance().fire(Fault::BuildThrow))
    throw InjectedFault("document build for '" + Name + "'");

  DiagnosticEngine Diags;
  SynFile File;
  if (!parseSourceFile(Text, File, Diags)) {
    std::ostringstream OS;
    Diags.print(OS);
    Error = OS.str();
    if (Error.empty())
      Error = "document failed to parse";
    return nullptr;
  }
  Doc->Shape = shapeOfFile(File);

  if (Abort && Abort->aborted()) {
    Error = "build abandoned after parse (deadline or cancellation)";
    return nullptr;
  }

  // A previous version built against a different base — in practice a
  // degraded-monolithic predecessor (Base == null) in an overlay workspace
  // — cannot seed an incremental build. Treat it as absent: the full build
  // below runs against the *requested* base, healing the session back onto
  // the overlay path.
  if (Prev && Prev->Base != Base)
    Prev = nullptr;

  if (!(Prev && tryIncrementalBuild(*Doc, File, *Prev, DocThreads))) {
    Doc->Kind = DocumentState::BuildKind::Full;
    bool Ok;
    try {
      // Fault: the overlay build path fails before completing. Modeled as
      // a throw out of the overlay attempt; recovery is the monolithic
      // rebuild in the catch below.
      if (Base && FaultInjector::armed() &&
          FaultInjector::instance().fire(Fault::OverlayBuild))
        throw InjectedFault("overlay build for '" + Name + "'");
      Ok = runFullBuild(*Doc, File, Base, DocThreads, Error);
    } catch (const InjectedFault &) {
      // Degradation ladder, bottom rung: rebuild monolithically from base
      // source + document source. Same completions (the overlay
      // equivalence property), higher cost, no shared tables. The next
      // edit's Prev/Base mismatch check above self-heals back to overlay.
      FaultInjector::instance().noteRecovered(Fault::OverlayBuild);
      SynFile MonoFile;
      DiagnosticEngine MonoDiags;
      std::string MonoText = Base->SourceText + "\n" + Text;
      if (!parseSourceFile(MonoText, MonoFile, MonoDiags)) {
        Error = "degraded monolithic build failed to parse";
        return nullptr;
      }
      Doc->Shape = shapeOfFile(MonoFile);
      Ok = runFullBuild(*Doc, MonoFile, nullptr, DocThreads, Error);
      Doc->DegradedMonolithic = Ok;
    }
    if (!Ok)
      return nullptr;
    if (Abort && Abort->aborted()) {
      Error = "build abandoned after resolve (deadline or cancellation)";
      return nullptr;
    }
  }

  Doc->BuildMillis =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - Start)
          .count();
  return Doc;
}

std::shared_ptr<const DocumentState>
petal::documentFromSnapshot(const snapshot::LoadedSnapshot &Snap,
                            size_t DocThreads) {
  auto Doc = std::make_shared<DocumentState>();
  Doc->Name = "<snapshot>";
  Doc->Version = 0;
  Doc->Text = Snap.SourceText;
  Doc->Kind = DocumentState::BuildKind::Full;
  Doc->Shape = Snap.Shape;
  Doc->TS = Snap.TS;
  Doc->P = Snap.P;
  Doc->Idx = Snap.Idx;
  Doc->Exec = std::make_shared<BatchExecutor>(*Doc->P, *Doc->Idx, DocThreads);
  // Seed the deserialized solution and pin it now: tryIncrementalBuild
  // reads it via sharedSolution() from whichever worker opens a matching
  // document, and a pinned solution makes that a pure read.
  Doc->Exec->adoptSolution(Snap.Solution);
  Doc->Exec->fullSolution();
  Doc->BuildMillis = Snap.LoadMillis;
  return Doc;
}

bool petal::parseCompleteSpec(const json::Value &Params, CompleteSpec &Out,
                              std::string &Error) {
  if (!Params.isObject()) {
    Error = "params must be an object";
    return false;
  }
  Out.Class = Params.getString("class");
  Out.Method = Params.getString("method");
  Out.Query = Params.getString("query");
  if (Out.Class.empty() || Out.Method.empty() || Out.Query.empty()) {
    Error = "petal/complete needs string params 'class', 'method', "
            "and 'query'";
    return false;
  }
  int64_t N = Params.getInt("n", 10);
  if (N < 1 || N > 1000) {
    Error = "'n' must be between 1 and 1000";
    return false;
  }
  Out.N = static_cast<size_t>(N);

  CompletionOptions &O = Out.Opts;
  if (const json::Value *Rank = Params.find("rank")) {
    if (!Rank->isString()) {
      Error = "'rank' must be a Table 2 style spec string";
      return false;
    }
    std::string SpecError;
    if (!RankingOptions::fromSpec(Rank->stringValue(), O.Rank, SpecError)) {
      Error = "invalid 'rank': " + SpecError;
      return false;
    }
  }
  // maxScore is client-controlled. The engine already clamps exploration
  // (and bucket memory) to the score ceiling, so any value above it
  // behaves identically to ScoreCeiling + 1: exploration stops at the
  // ceiling and the ceiling-hit stat may fire. Canonicalize to that one
  // representative so equivalent requests share a cache key.
  int64_t MaxScore = Params.getInt("maxScore", O.MaxScore);
  O.MaxScore = static_cast<int>(
      std::clamp<int64_t>(MaxScore, 0, int64_t(O.ScoreCeiling) + 1));
  O.MaxChainLen =
      static_cast<int>(Params.getInt("maxChainLen", O.MaxChainLen));
  O.UseReachabilityPruning =
      Params.getBool("reachability", O.UseReachabilityPruning);
  O.UseAbstractTypes = Params.getBool("abstractTypes", O.UseAbstractTypes);
  O.Explain = Params.getBool("explain", false);
  return true;
}

std::string petal::encodeSpecKey(const CompleteSpec &Spec) {
  // '\x1f' (unit separator) cannot occur in identifiers or query syntax,
  // so the concatenation is unambiguous.
  std::string Key;
  Key += Spec.Class;
  Key += '\x1f';
  Key += Spec.Method;
  Key += '\x1f';
  Key += Spec.Query;
  Key += '\x1f';
  Key += std::to_string(Spec.N);
  Key += '\x1f';
  Key += Spec.Opts.Rank.spec();
  Key += '\x1f';
  Key += std::to_string(Spec.Opts.MaxScore);
  Key += '\x1f';
  Key += std::to_string(Spec.Opts.MaxChainLen);
  Key += Spec.Opts.UseReachabilityPruning ? 'R' : 'r';
  Key += Spec.Opts.UseAbstractTypes ? 'A' : 'a';
  Key += Spec.Opts.Explain ? 'E' : 'e';
  return Key;
}

QueryOutcome petal::runCompletion(DocumentState &Doc,
                                  const CompleteSpec &Spec) {
  QueryOutcome Out;
  const CodeClass *Class = findCodeClass(*Doc.P, Spec.Class);
  if (!Class) {
    Out.ErrCode = rpc::InvalidParams;
    Out.ErrMsg = "no class '" + Spec.Class + "' with code in document '" +
                 Doc.Name + "'";
    return Out;
  }
  const CodeMethod *Method = findCodeMethod(*Doc.P, *Class, Spec.Method);
  if (!Method) {
    Out.ErrCode = rpc::InvalidParams;
    Out.ErrMsg =
        "no method '" + Spec.Method + "' in class '" + Spec.Class + "'";
    return Out;
  }

  QueryScope Scope = scopeAtEnd(Class, Method);
  DiagnosticEngine Diags;
  const PartialExpr *Query =
      parseQueryText(Spec.Query, *Doc.P, Scope, Diags);
  if (!Query) {
    std::ostringstream OS;
    Diags.print(OS);
    Out.ErrCode = rpc::InvalidParams;
    Out.ErrMsg = "query failed to parse: " + OS.str();
    return Out;
  }

  CodeSite Site{Class, Method, Scope.StmtIndex};
  BatchExecutor::BatchResult Batch =
      Doc.Exec->completeBatch({{Query, Site, Spec.N, Spec.Opts, nullptr}});

  json::Value List = json::Value::array();
  for (const Completion &C : Batch.Results.front()) {
    json::Value Item = json::Value::object();
    Item.set("expr", printExpr(*Doc.TS, C.E));
    Item.set("score", static_cast<int64_t>(C.Score));
    if (C.Card) {
      assert(C.Card->total() == C.Score &&
             "ScoreCard must decompose the ranking score exactly");
      // Keys in Table 2 letter order; all six terms always present so the
      // payload shape (and the cached bytes) are deterministic.
      json::Value Terms = json::Value::object();
      for (ScoreTerm Term : AllScoreTerms)
        Terms.set(std::string(1, scoreTermLetter(Term)),
                  static_cast<int64_t>(C.Card->term(Term)));
      Item.set("terms", std::move(Terms));
      Item.set("subexpr", static_cast<int64_t>(C.Card->Subexpr));
      for (size_t I = 0; I != NumScoreTerms; ++I)
        Out.TermTotals[I] += static_cast<uint64_t>(C.Card->Terms[I]);
    }
    List.push(std::move(Item));
  }
  Out.Ok = true;
  Out.Completions = std::move(List);
  Out.Stats = Batch.Stats.front();
  Out.Explained = Spec.Opts.Explain;
  Out.ClassQualName = Doc.TS->qualifiedName(Class->type());
  return Out;
}
