//===- service/Session.h - Versioned document sessions ----------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One open document in the petald service: its source text, its version,
/// and the engine-side state derived from it — a freshly parsed Program, a
/// frozen CompletionIndexes, and a BatchExecutor that routes this
/// document's queries onto the existing parallel execution layer. A
/// DocumentState is immutable once built; an edit builds a *new* state (on
/// a service worker, never the transport thread) and atomically swaps it
/// in, so a query always runs against exactly one consistent version and
/// stale versions can be rejected by number.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SERVICE_SESSION_H
#define PETAL_SERVICE_SESSION_H

#include "complete/BatchExecutor.h"
#include "parser/Frontend.h"
#include "support/Json.h"

#include <array>
#include <memory>
#include <string>

namespace petal {

/// Everything derived from one (document, version) pair. Queries against a
/// DocumentState go through runCompletion() below; the service guarantees
/// at most one query per DocumentState runs at a time (sessions are
/// strands), which is what makes the per-state engine reuse safe.
struct DocumentState {
  std::string Name;
  int64_t Version = 0;
  std::string Text;

  // Declaration order is construction order: the Program refers to the
  // TypeSystem, the indexes to the Program, the executor to both.
  std::unique_ptr<TypeSystem> TS;
  std::unique_ptr<Program> P;
  std::unique_ptr<CompletionIndexes> Idx;
  std::unique_ptr<BatchExecutor> Exec;

  double BuildMillis = 0; ///< parse + index + warm-up time
};

/// Parses \p Text and builds the full query-ready state for it.
/// \p DocThreads sizes the per-document BatchExecutor (1 = serial).
/// Returns null on parse/resolve failure with the diagnostics rendered
/// into \p Error.
std::unique_ptr<DocumentState>
buildDocumentState(const std::string &Name, const std::string &Text,
                   int64_t Version, size_t DocThreads, std::string &Error);

/// A petal/complete request after parameter validation: where, what, and
/// the per-query knobs.
struct CompleteSpec {
  std::string Class;
  std::string Method;
  std::string Query;
  size_t N = 10;
  CompletionOptions Opts;
};

/// Extracts a CompleteSpec from JSON-RPC params. Returns false with a
/// message when a required field is missing or malformed.
bool parseCompleteSpec(const json::Value &Params, CompleteSpec &Out,
                       std::string &Error);

/// A deterministic encoding of everything in \p Spec that affects the
/// answer, used (together with document name and version) as the result
/// cache key.
std::string encodeSpecKey(const CompleteSpec &Spec);

/// Outcome of one completion query.
struct QueryOutcome {
  bool Ok = false;
  int ErrCode = 0;
  std::string ErrMsg;
  /// Array of {"expr", "score"}; with explain also {"terms", "subexpr"}.
  json::Value Completions;
  /// Engine telemetry for the query (score-ceiling hit, deepest bucket).
  CompletionEngine::QueryStats Stats;
  /// Summed per-term costs over the returned completions (all zero unless
  /// the query ran with explain). Feeds the service's $/stats aggregates.
  std::array<uint64_t, NumScoreTerms> TermTotals{};
  bool Explained = false;
};

/// Runs \p Spec against \p Doc through its BatchExecutor. The caller must
/// hold the session strand (no concurrent call on the same DocumentState).
QueryOutcome runCompletion(DocumentState &Doc, const CompleteSpec &Spec);

} // namespace petal

#endif // PETAL_SERVICE_SESSION_H
