//===- service/Session.h - Versioned document sessions ----------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One open document in the petald service: its source text, its version,
/// and the engine-side state derived from it — a parsed Program, a frozen
/// CompletionIndexes, and a BatchExecutor that routes this document's
/// queries onto the existing parallel execution layer. A DocumentState is
/// immutable once built; an edit builds a *new* state (on a service
/// worker, never the transport thread — the session strand serializes the
/// swap against this document's queries), so a query always runs against
/// exactly one consistent version and stale versions can be rejected by
/// number.
///
/// A build takes one of three routes, cheapest first:
///
///  * **Overlay** (base/overlay workspace, DESIGN.md §14): when the
///    service carries a shared BaseCorpus, the document's TypeSystem,
///    indexes, and abstract-type solution are thin overlays extending the
///    base's frozen, immutable tables. Only the document's own entities
///    are parsed, resolved, indexed, and solved; the framework corpus is
///    never re-processed, and every open session reads the same base.
///  * **Incremental** (DESIGN.md §12): an edit whose type-graph
///    fingerprint matches the previous version shares that version's
///    TypeSystem and frozen type-graph tables and re-resolves only the
///    code layer. Composes with overlays — the shared layers may
///    themselves be overlay layers.
///  * **Full**: everything from source, used for opens without a base and
///    as the fallback when reuse pairing fails.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SERVICE_SESSION_H
#define PETAL_SERVICE_SESSION_H

#include "complete/BatchExecutor.h"
#include "parser/DeclUnits.h"
#include "parser/Frontend.h"
#include "snapshot/Snapshot.h"
#include "support/Json.h"

#include <array>
#include <memory>
#include <string>

namespace petal {

/// Everything derived from one (document, version) pair. Queries against a
/// DocumentState go through runCompletion() below; the service guarantees
/// at most one query per DocumentState runs at a time (sessions are
/// strands), which is what makes the per-state engine reuse safe.
struct DocumentState {
  std::string Name;
  int64_t Version = 0;
  std::string Text;

  /// How this state was built relative to the previous version (see
  /// buildDocumentState and DESIGN.md §12). The classification is exact:
  /// it records what was actually shared, not what the edit looked like.
  enum class BuildKind {
    /// Fresh TypeSystem, indexes, and abstract-type solution (open, a
    /// type-graph-affecting edit, or a reuse-pairing fallback).
    Full,
    /// The edit changed method bodies only: the TypeSystem and the frozen
    /// type-graph index tables are shared with the previous version; the
    /// code layer and the abstract-type solution were rebuilt.
    IncrementalBody,
    /// The edit was token-identical (whitespace/comments): additionally
    /// the abstract-type solution carries over.
    IncrementalNoop,
  };
  BuildKind Kind = BuildKind::Full;

  /// Per-declaration-unit content hashes of this version, diffed against
  /// the successor's on the next edit (parser/DeclUnits.h).
  DocumentShape Shape;

  // Declaration order is construction order: the Program refers to the
  // TypeSystem, the indexes to the Program, the executor to both. Each
  // layer is a shared_ptr so an incremental successor can alias the
  // immutable upper layers (the TypeSystem and the frozen type-graph
  // tables) while owning its own code layer; whichever version dies last
  // frees them, and member order still guarantees the TypeSystem outlives
  // everything that references it.
  std::shared_ptr<TypeSystem> TS;
  std::shared_ptr<Program> P;
  std::shared_ptr<CompletionIndexes> Idx;
  std::shared_ptr<BatchExecutor> Exec;

  /// The shared base layer this document overlays; null for a monolithic
  /// build. Also pinned through Idx, held here so the service can tell an
  /// overlay session apart without reaching into the indexes.
  std::shared_ptr<const BaseCorpus> Base;

  /// True when this build *should* have been an overlay but degraded to a
  /// monolithic build (base source + document source, Base left null)
  /// because the overlay path failed — the bottom rung of the degradation
  /// ladder (DESIGN.md §15). Queries answer identically (the overlay
  /// equivalence property); the next edit self-heals back to overlay.
  bool DegradedMonolithic = false;

  double BuildMillis = 0; ///< parse + index + warm-up time

  bool incremental() const { return Kind != BuildKind::Full; }
  /// True when this build reused the previous version's abstract-type
  /// solution (the third shareable component in $/stats).
  bool sharedSolution() const { return Kind == BuildKind::IncrementalNoop; }

  /// Approximate heap bytes owned by this document alone: text, shape,
  /// and the per-layer index storage. Tables shared with a base corpus or
  /// a snapshot mapping are not counted — the gap between this and a
  /// monolithic build's footprint is the point of the overlay design,
  /// surfaced per session in $/stats "memory".
  size_t memoryBytes() const;
};

/// Parses \p Text and builds the full query-ready state for it.
/// \p DocThreads sizes the per-document BatchExecutor (1 = serial).
/// Returns null on parse/resolve failure with the diagnostics rendered
/// into \p Error.
///
/// \p Prev, when non-null, is the session's previous version. If the new
/// text's type-graph fingerprint matches \p Prev's, the build goes
/// incremental: it shares Prev's TypeSystem and frozen index tables and
/// re-resolves only the method bodies (falling back to a full build if
/// declaration pairing fails); a token-identical text additionally adopts
/// Prev's abstract-type solution. Incremental and full builds of the same
/// text produce bit-identical completions — enforced by
/// session_incremental_test's fresh-twin property test.
///
/// \p Base, when non-null, is the workspace's shared frozen framework
/// corpus: full builds go through the overlay path (the document's
/// TypeSystem, indexes, and solution extend the base's frozen tables), and
/// incremental builds of overlay documents stay overlay-aware through the
/// sharing constructor. Overlay and monolithic builds of the same
/// (base + document) source produce bit-identical completions — enforced
/// by workspace_overlay_test's fresh-twin property test. A \p Prev built
/// against a *different* base (e.g. a degraded-monolithic predecessor) is
/// ignored rather than rejected: the build runs full against \p Base,
/// which is what heals a degraded session back onto the overlay path.
///
/// \p Abort, when non-null, is polled at phase boundaries (after parse,
/// after resolve); an aborted build stops early and returns null with
/// \p Error noting the abandonment. The caller distinguishes abandonment
/// from a genuine build failure by checking the signal itself.
std::unique_ptr<DocumentState>
buildDocumentState(const std::string &Name, const std::string &Text,
                   int64_t Version, size_t DocThreads, std::string &Error,
                   const DocumentState *Prev = nullptr,
                   std::shared_ptr<const BaseCorpus> Base = nullptr,
                   const AbortSignal *Abort = nullptr);

/// Wraps a loaded snapshot as a query-ready DocumentState, the service's
/// warm-start baseline: petal/open passes it to buildDocumentState as
/// \p Prev, so a document whose type graph matches the snapshot corpus goes
/// through the ordinary incremental path — sharing the mapped TypeSystem
/// and frozen tables, and (for token-identical text) the deserialized
/// abstract-type solution — and any mismatch degrades to a full build
/// automatically. Safe to share across sessions: the solution is pinned
/// here, so every later read through it is pure.
std::shared_ptr<const DocumentState>
documentFromSnapshot(const snapshot::LoadedSnapshot &Snap, size_t DocThreads);

/// A petal/complete request after parameter validation: where, what, and
/// the per-query knobs.
struct CompleteSpec {
  std::string Class;
  std::string Method;
  std::string Query;
  size_t N = 10;
  CompletionOptions Opts;
};

/// Extracts a CompleteSpec from JSON-RPC params. Returns false with a
/// message when a required field is missing or malformed.
bool parseCompleteSpec(const json::Value &Params, CompleteSpec &Out,
                       std::string &Error);

/// A deterministic encoding of everything in \p Spec that affects the
/// answer, used (together with document name and version) as the result
/// cache key.
std::string encodeSpecKey(const CompleteSpec &Spec);

/// Outcome of one completion query.
struct QueryOutcome {
  bool Ok = false;
  int ErrCode = 0;
  std::string ErrMsg;
  /// Array of {"expr", "score"}; with explain also {"terms", "subexpr"}.
  json::Value Completions;
  /// Engine telemetry for the query (score-ceiling hit, deepest bucket).
  CompletionEngine::QueryStats Stats;
  /// Summed per-term costs over the returned completions (all zero unless
  /// the query ran with explain). Feeds the service's $/stats aggregates.
  std::array<uint64_t, NumScoreTerms> TermTotals{};
  bool Explained = false;
  /// The resolved qualified name of the class the query ran in (the spec
  /// may have used the simple name). Scopes the result-cache entry to its
  /// declaration unit for edit-survival decisions.
  std::string ClassQualName;
};

/// Runs \p Spec against \p Doc through its BatchExecutor. The caller must
/// hold the session strand (no concurrent call on the same DocumentState).
QueryOutcome runCompletion(DocumentState &Doc, const CompleteSpec &Spec);

} // namespace petal

#endif // PETAL_SERVICE_SESSION_H
