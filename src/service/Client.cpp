//===- service/Client.cpp - In-process service client ---------------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

using namespace petal;
using json::Value;

InProcessClient::InProcessClient(const PetalService::Options &Opts)
    : S(Opts, [this](const Value &Message) { onResponse(Message); }) {}

void InProcessClient::onResponse(const Value &Message) {
  const Value *Id = Message.find("id");
  std::lock_guard<std::mutex> L(PM);
  if (!Id || !Id->isNumber()) {
    ++Strays; // parse errors and the like carry a null id
  } else {
    Ready[Id->intValue()] = Message;
  }
  PCV.notify_all();
}

int64_t InProcessClient::send(std::string_view Method, Value Params) {
  int64_t Id = NextId.fetch_add(1, std::memory_order_relaxed);
  rpc::RequestId Rid;
  Rid.Present = true;
  Rid.Num = Id;
  S.handleParsed(rpc::makeRequest(Rid, Method, std::move(Params)));
  return Id;
}

json::Value InProcessClient::await(int64_t Id) {
  std::unique_lock<std::mutex> L(PM);
  PCV.wait(L, [&] { return Ready.count(Id) != 0; });
  Value Response = std::move(Ready[Id]);
  Ready.erase(Id);
  return Response;
}

json::Value InProcessClient::call(std::string_view Method, Value Params) {
  return await(send(Method, std::move(Params)));
}

void InProcessClient::notify(std::string_view Method, Value Params) {
  S.handleParsed(
      rpc::makeRequest(rpc::RequestId(), Method, std::move(Params)));
}

json::Value InProcessClient::callResult(std::string_view Method,
                                        Value Params) {
  Value Response = call(Method, std::move(Params));
  const Value *R = Response.find("result");
  return R ? *R : Value();
}

size_t InProcessClient::strayResponses() const {
  std::lock_guard<std::mutex> L(PM);
  return Strays;
}
