//===- service/Client.cpp - In-process service client ---------------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace petal;
using json::Value;

InProcessClient::InProcessClient(const PetalService::Options &Opts)
    : S(Opts, [this](const Value &Message) { onResponse(Message); }) {}

void InProcessClient::onResponse(const Value &Message) {
  const Value *Id = Message.find("id");
  std::lock_guard<std::mutex> L(PM);
  if (!Id || !Id->isNumber()) {
    ++Strays; // parse errors and the like carry a null id
  } else {
    Ready[Id->intValue()] = Message;
  }
  PCV.notify_all();
}

int64_t InProcessClient::send(std::string_view Method, Value Params) {
  int64_t Id = NextId.fetch_add(1, std::memory_order_relaxed);
  rpc::RequestId Rid;
  Rid.Present = true;
  Rid.Num = Id;
  S.handleParsed(rpc::makeRequest(Rid, Method, std::move(Params)));
  return Id;
}

json::Value InProcessClient::await(int64_t Id) {
  std::unique_lock<std::mutex> L(PM);
  PCV.wait(L, [&] { return Ready.count(Id) != 0; });
  Value Response = std::move(Ready[Id]);
  Ready.erase(Id);
  return Response;
}

json::Value InProcessClient::call(std::string_view Method, Value Params) {
  return await(send(Method, std::move(Params)));
}

void InProcessClient::notify(std::string_view Method, Value Params) {
  S.handleParsed(
      rpc::makeRequest(rpc::RequestId(), Method, std::move(Params)));
}

json::Value InProcessClient::callResult(std::string_view Method,
                                        Value Params) {
  Value Response = call(Method, std::move(Params));
  const Value *R = Response.find("result");
  return R ? *R : Value();
}

json::Value InProcessClient::callWithRetry(std::string_view Method,
                                           Value Params,
                                           size_t MaxAttempts) {
  MaxAttempts = std::max<size_t>(1, MaxAttempts);
  for (size_t Attempt = 1;; ++Attempt) {
    Value Response = call(Method, Params);
    const Value *E = Response.find("error");
    if (!E || E->getInt("code", 0) != rpc::ServerOverloaded ||
        Attempt == MaxAttempts)
      return Response;
    OverloadRetries.fetch_add(1, std::memory_order_relaxed);
    double RetryMs = 1;
    if (const Value *D = E->find("data"))
      RetryMs = D->getNumber("retryAfterMs", 1);
    RetryMs = std::clamp(RetryMs, 1.0, 100.0);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(RetryMs));
  }
}

size_t InProcessClient::overloadRetries() const {
  return static_cast<size_t>(OverloadRetries.load(std::memory_order_relaxed));
}

size_t InProcessClient::strayResponses() const {
  std::lock_guard<std::mutex> L(PM);
  return Strays;
}
