//===- service/Transport.h - Content-Length framed messages -----*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LSP-style wire framing used by the petald completion service: each
/// message is a JSON payload preceded by a header block,
///
///   Content-Length: <bytes>\r\n
///   \r\n
///   <payload>
///
/// FramedReader pulls messages off a std::istream (strict about the header
/// grammar, tolerant about unknown header fields, hard-capped on payload
/// size so a corrupt length cannot allocate unboundedly); FramedWriter
/// serializes messages onto a std::ostream behind a mutex so responses from
/// concurrent service workers never interleave. Both work over any iostream
/// — stdio for the daemon, stringstreams in the wire tests, and a socket
/// streambuf for --tcp.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SERVICE_TRANSPORT_H
#define PETAL_SERVICE_TRANSPORT_H

#include <iosfwd>
#include <mutex>
#include <streambuf>
#include <string>
#include <string_view>

namespace petal {

/// Reads Content-Length framed messages. Not thread-safe; a transport has
/// exactly one reader loop.
class FramedReader {
public:
  /// The default payload cap: anything above is rejected as corrupt (the
  /// daemon would rather drop a connection than trust a multi-gigabyte
  /// length field). Configurable per reader (petal_serve
  /// --max-frame-bytes) for deployments with known larger documents.
  static constexpr size_t DefaultMaxPayloadBytes = 16u << 20;

  enum class Status {
    Ok,    ///< a message was read into the payload
    Eof,   ///< clean end of stream at a message boundary
    Error, ///< framing violation; message() describes it
  };

  explicit FramedReader(std::istream &In,
                        size_t MaxPayload = DefaultMaxPayloadBytes)
      : In(In),
        MaxPayload(MaxPayload ? MaxPayload : DefaultMaxPayloadBytes) {}

  /// Reads one message; on Error the stream position is unspecified and
  /// the connection should be dropped.
  Status read(std::string &Payload);

  /// The description of the last Error.
  const std::string &message() const { return Err; }

private:
  Status fail(std::string Message) {
    Err = std::move(Message);
    return Status::Error;
  }

  std::istream &In;
  size_t MaxPayload;
  std::string Err;
};

/// Writes Content-Length framed messages; write() is safe to call from any
/// thread.
class FramedWriter {
public:
  explicit FramedWriter(std::ostream &Out) : Out(Out) {}

  void write(std::string_view Payload);

private:
  std::ostream &Out;
  std::mutex M;
};

/// A read/write std::streambuf over a POSIX file descriptor, so fd-based
/// transports (petal_serve --tcp, socketpair tests) reuse the same
/// iostream-based framing as stdio. Robust against the realities of
/// sockets: reads and writes interrupted by a signal (EINTR) are retried,
/// and short writes advance and continue instead of being treated as
/// stream failure — only EOF/error surfaces to the iostream layer. Does
/// not own the fd.
class FdStreamBuf : public std::streambuf {
public:
  explicit FdStreamBuf(int Fd);

protected:
  int_type underflow() override;
  int_type overflow(int_type C) override;
  int sync() override;

private:
  int Fd;
  char InBuf[16384];
  char OutBuf[16384];
};

} // namespace petal

#endif // PETAL_SERVICE_TRANSPORT_H
