//===- service/ResultCache.h - LRU completion-result cache ------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded LRU cache from query keys to serialized completion results.
/// The key encodes everything that determines the answer — document name,
/// document *version*, query text, result count, and every CompletionOptions
/// knob — so a hit is by construction bit-identical to recomputing. Entries
/// are additionally tagged with their document so an edit can drop the
/// dead version's entries eagerly instead of waiting for LRU pressure.
///
/// Thread-safe: the service's workers probe and fill it concurrently; one
/// mutex suffices because entries are small (a serialized JSON array) and
/// the hit path is a hash lookup plus a list splice.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SERVICE_RESULTCACHE_H
#define PETAL_SERVICE_RESULTCACHE_H

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace petal {

/// LRU map of query key -> serialized result, with per-document
/// invalidation and hit/miss counters.
class ResultCache {
public:
  explicit ResultCache(size_t Capacity = 1024) : Capacity(Capacity) {}

  /// Probes for \p Key; on hit copies the cached payload into \p Out,
  /// promotes the entry to most-recently-used, and bumps the hit counter.
  bool lookup(const std::string &Key, std::string &Out) {
    std::lock_guard<std::mutex> L(M);
    auto It = Index.find(Key);
    if (It == Index.end()) {
      ++Misses;
      return false;
    }
    Order.splice(Order.begin(), Order, It->second);
    Out = It->second->Payload;
    ++Hits;
    return true;
  }

  /// Inserts (or refreshes) \p Key, evicting the least-recently-used entry
  /// when full. \p Doc tags the entry for invalidate().
  void insert(const std::string &Key, const std::string &Doc,
              std::string Payload) {
    std::lock_guard<std::mutex> L(M);
    if (Capacity == 0)
      return;
    auto It = Index.find(Key);
    if (It != Index.end()) {
      Order.splice(Order.begin(), Order, It->second);
      It->second->Payload = std::move(Payload);
      return;
    }
    if (Order.size() == Capacity) {
      Index.erase(Order.back().Key);
      Order.pop_back();
    }
    Order.push_front(Entry{Key, Doc, std::move(Payload)});
    Index[Key] = Order.begin();
  }

  /// Drops every entry belonging to \p Doc (called on change/close: the
  /// old version's results can never be served again).
  size_t invalidate(const std::string &Doc) {
    std::lock_guard<std::mutex> L(M);
    size_t Dropped = 0;
    for (auto It = Order.begin(); It != Order.end();) {
      if (It->Doc == Doc) {
        Index.erase(It->Key);
        It = Order.erase(It);
        ++Dropped;
      } else {
        ++It;
      }
    }
    return Dropped;
  }

  void clear() {
    std::lock_guard<std::mutex> L(M);
    Order.clear();
    Index.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> L(M);
    return Order.size();
  }
  size_t capacity() const { return Capacity; }
  uint64_t hits() const {
    std::lock_guard<std::mutex> L(M);
    return Hits;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> L(M);
    return Misses;
  }

private:
  struct Entry {
    std::string Key;
    std::string Doc;
    std::string Payload;
  };

  size_t Capacity;
  mutable std::mutex M;
  std::list<Entry> Order; ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> Index;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace petal

#endif // PETAL_SERVICE_RESULTCACHE_H
