//===- service/ResultCache.h - LRU completion-result cache ------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded LRU cache from query keys to serialized completion results.
/// The key is the (document, version, spec) triple — the spec encodes the
/// query text, result count, and every CompletionOptions knob — so a hit
/// is by construction bit-identical to recomputing. The payload is the
/// serialized *completions array* alone; the service stamps the current
/// document/version around it on replay, which is what lets an entry
/// outlive an edit.
///
/// Entries carry metadata scoping them to the declaration unit (class) and
/// method the query ran in, plus whether the abstract-type ranking term —
/// the only term that reads *other* methods' bodies — was live. On an
/// incremental edit the service calls retarget() with a survival predicate
/// derived from the decl-unit diff: surviving entries are re-keyed to the
/// new version in place (keeping their LRU position), everything else is
/// dropped. A full rebuild still drops the document wholesale via
/// invalidate().
///
/// Thread-safe: the service's workers probe and fill it concurrently; one
/// mutex suffices because entries are small (a serialized JSON array) and
/// the hit path is a hash lookup plus a list splice.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SERVICE_RESULTCACHE_H
#define PETAL_SERVICE_RESULTCACHE_H

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace petal {

/// LRU map of (document, version, spec) -> serialized completions, with
/// scoped per-document invalidation and hit/miss counters.
class ResultCache {
public:
  /// What scopes an entry for edit-survival decisions. Class is the
  /// *resolved qualified* name of the declaration unit the query site
  /// lives in (the request may have used the simple name).
  struct EntryMeta {
    std::string Class;
    std::string Method;
    /// The abstract-type term was enabled — the answer may depend on
    /// method bodies *outside* Class's declaration unit.
    bool UsesAbstract = false;
  };

  explicit ResultCache(size_t Capacity = 1024) : Capacity(Capacity) {}

  /// Probes for (\p Doc, \p Version, \p SpecKey); on hit copies the cached
  /// payload into \p Out, promotes the entry to most-recently-used, and
  /// bumps the hit counter. A failed probe counts nothing: one request may
  /// probe several keys (the service tries the explain-variant key after
  /// the exact key), so the caller records its one logical miss via
  /// noteMiss() once every probe has failed. This keeps
  /// hits + misses == logical requests, which is what hitRate divides by.
  bool probe(const std::string &Doc, int64_t Version,
             const std::string &SpecKey, std::string &Out) {
    std::lock_guard<std::mutex> L(M);
    auto It = Index.find(composeKey(Doc, Version, SpecKey));
    if (It == Index.end())
      return false;
    Order.splice(Order.begin(), Order, It->second);
    Out = It->second->Payload;
    ++Hits;
    return true;
  }

  /// Records one logical miss (see probe()).
  void noteMiss() {
    std::lock_guard<std::mutex> L(M);
    ++Misses;
  }

  /// Inserts (or refreshes) the entry, evicting the least-recently-used
  /// when full.
  void insert(const std::string &Doc, int64_t Version,
              const std::string &SpecKey, EntryMeta Meta,
              std::string Payload) {
    std::lock_guard<std::mutex> L(M);
    if (Capacity == 0)
      return;
    std::string Key = composeKey(Doc, Version, SpecKey);
    auto It = Index.find(Key);
    if (It != Index.end()) {
      Order.splice(Order.begin(), Order, It->second);
      It->second->Meta = std::move(Meta);
      It->second->Payload = std::move(Payload);
      return;
    }
    if (Order.size() == Capacity) {
      Index.erase(Order.back().Key);
      Order.pop_back();
    }
    Order.push_front(Entry{std::move(Key), Doc, Version, SpecKey,
                           std::move(Meta), std::move(Payload)});
    Index[Order.front().Key] = Order.begin();
  }

  /// Scoped invalidation for an incremental edit: every entry of \p Doc
  /// for which \p Survives(meta) holds is re-keyed to \p NewVersion in
  /// place (keeping its LRU position and payload); the rest are dropped.
  /// Returns the number of surviving entries.
  size_t retarget(const std::string &Doc, int64_t NewVersion,
                  const std::function<bool(const EntryMeta &)> &Survives) {
    std::lock_guard<std::mutex> L(M);
    size_t Kept = 0;
    for (auto It = Order.begin(); It != Order.end();) {
      if (It->Doc != Doc) {
        ++It;
        continue;
      }
      Index.erase(It->Key);
      if (!Survives(It->Meta)) {
        It = Order.erase(It);
        continue;
      }
      It->Version = NewVersion;
      It->Key = composeKey(It->Doc, NewVersion, It->SpecKey);
      // All live entries of a document share one version (every edit
      // retargets or drops them), so the rebuilt key cannot collide; be
      // defensive anyway and drop the loser instead of corrupting Index.
      if (Index.count(It->Key)) {
        It = Order.erase(It);
        continue;
      }
      Index[It->Key] = It;
      ++Kept;
      ++It;
    }
    return Kept;
  }

  /// Drops every entry belonging to \p Doc (full rebuild or close: none of
  /// the old version's results can be proven valid).
  size_t invalidate(const std::string &Doc) {
    std::lock_guard<std::mutex> L(M);
    size_t Dropped = 0;
    for (auto It = Order.begin(); It != Order.end();) {
      if (It->Doc == Doc) {
        Index.erase(It->Key);
        It = Order.erase(It);
        ++Dropped;
      } else {
        ++It;
      }
    }
    return Dropped;
  }

  void clear() {
    std::lock_guard<std::mutex> L(M);
    Order.clear();
    Index.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> L(M);
    return Order.size();
  }
  size_t capacity() const { return Capacity; }
  uint64_t hits() const {
    std::lock_guard<std::mutex> L(M);
    return Hits;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> L(M);
    return Misses;
  }

private:
  struct Entry {
    std::string Key; ///< composeKey(Doc, Version, SpecKey)
    std::string Doc;
    int64_t Version = 0;
    std::string SpecKey;
    EntryMeta Meta;
    std::string Payload;
  };

  /// '\x1f' cannot occur in document names (they are validated upstream as
  /// non-empty printable identifiers) or in encodeSpecKey output, so the
  /// concatenation is unambiguous.
  static std::string composeKey(const std::string &Doc, int64_t Version,
                                const std::string &SpecKey) {
    std::string Key;
    Key.reserve(Doc.size() + SpecKey.size() + 24);
    Key += Doc;
    Key += '\x1f';
    Key += std::to_string(Version);
    Key += '\x1f';
    Key += SpecKey;
    return Key;
  }

  size_t Capacity;
  mutable std::mutex M;
  std::list<Entry> Order; ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> Index;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace petal

#endif // PETAL_SERVICE_RESULTCACHE_H
