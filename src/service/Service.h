//===- service/Service.h - The petald completion service --------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resident completion daemon behind `petal_serve`: JSON-RPC requests
/// in (already unframed — see Transport.h), responses out through a
/// thread-safe sink. The design:
///
///  * **Dispatch** is cheap and synchronous: the transport thread parses
///    the message, answers trivial requests (initialize, $/stats,
///    $/cancelRequest) inline, and enqueues everything else. Document
///    parsing and completion queries never run on the transport thread.
///
///  * **Sessions are strands.** Each open document owns a FIFO of pending
///    tasks; a session is enqueued on the global run queue only while it
///    has work, and at most one worker executes a given session's tasks at
///    a time. This serializes open → change → complete per document (so
///    version bookkeeping needs no locks around the engine) while letting
///    different documents proceed in parallel across the worker pool.
///    Queries themselves are routed through the session's BatchExecutor,
///    i.e. onto the existing ThreadPool execution layer.
///
///  * **One base, many overlays.** With Options::Base set (petal_serve
///    --base / --base-snapshot), the daemon holds one shared frozen
///    framework corpus, and every session's document builds as a thin
///    overlay over it (Session.h, DESIGN.md §14). The base is immutable
///    after construction, so concurrent strands read it without locks;
///    per-session memory is the overlay delta, reported in $/stats
///    "memory". Options::MaxSessions caps the number of open sessions:
///    when an open would exceed it, the least-recently-touched *idle*
///    sessions (no queued or running strand work) are evicted, exactly as
///    if the client had closed them.
///
///  * **Versioned rejection.** Every edit builds a fresh DocumentState
///    with a client-supplied monotonic version; a petal/complete carrying
///    a version other than the current one is rejected with
///    ContentModified rather than silently answered from the wrong text.
///
///  * **Cancellation and deadlines.** $/cancelRequest marks a queued
///    request; workers check the mark (and the request's deadlineMs
///    budget) when they pick a task up, answering RequestCancelled /
///    DeadlineExceeded without touching the engine. A request that
///    already started carries an AbortSignal threaded into its build and
///    query: cancelling it (or its deadline passing) makes the work
///    abandon at the next phase/bucket boundary instead of running to
///    completion. Abandoned partial results are never returned or cached.
///
///  * **Backpressure and isolation** (DESIGN.md §15). Options::MaxQueue /
///    MaxStrandDepth shed excess load at dispatch with ServerOverloaded
///    (+retryAfterMs); an optional watchdog fails tasks that exceed
///    Options::WatchdogMs; every strand task runs inside an isolation
///    wrapper that converts an escaped exception into an InternalError on
///    that request alone; and each id-bearing request is answered exactly
///    once, enforced by an atomic claim on its control block. The $/stats
///    "health" block reports what this machinery is doing.
///
///  * **Result cache.** An LRU keyed by (document, version, query, every
///    option knob) fronts the engine. A hit replays the stored serialized
///    completions — byte-identical to recomputing — stamped with the
///    current version. Invalidation is scoped to what an edit could have
///    changed: a full rebuild drops the document's entries wholesale,
///    while an incremental rebuild keeps entries whose declaration unit
///    is untouched (and whose abstract-type term, if enabled, is backed
///    by an unchanged corpus-wide solution), re-keying them to the new
///    version. An explain=true entry strictly contains the explain=false
///    answer, so a non-explain miss is served from the explain variant by
///    stripping the per-term breakdowns on replay.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SERVICE_SERVICE_H
#define PETAL_SERVICE_SERVICE_H

#include "service/Protocol.h"
#include "service/ResultCache.h"
#include "service/Session.h"
#include "support/Abort.h"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace petal {

/// The service. Construct one per connection (sessions are per-service
/// state); handleMessage() is the wire entry point, handleParsed() the
/// in-process one.
class PetalService {
public:
  /// Warm-start state from a snapshot file (see snapshot/Snapshot.h and
  /// --snapshot in petal_serve). The caller loads the snapshot, wraps it
  /// via documentFromSnapshot, and records the telemetry here; on load
  /// failure it leaves WarmStart null and notes why in FallbackReason.
  struct SnapshotConfig {
    /// petal/open passes this as the incremental baseline; null = every
    /// open builds cold.
    std::shared_ptr<const DocumentState> WarmStart;
    bool Loaded = false;    ///< a snapshot is active
    double LoadMillis = 0;  ///< validate + parse + adopt time
    size_t Bytes = 0;       ///< snapshot file size
    bool Mapped = false;    ///< mmap'd vs buffered-read fallback
    /// Why a requested snapshot was not used (empty when none was
    /// requested or it loaded cleanly). Surfaced in $/stats.
    std::string FallbackReason;
  };

  struct Options {
    /// Service worker threads executing session tasks (builds + queries).
    size_t Workers = 2;
    /// BatchExecutor threads per document (1 = serial per-query).
    size_t DocThreads = 1;
    /// Result cache capacity in entries; 0 disables caching.
    size_t CacheCapacity = 1024;
    /// Enables $/test/block and $/test/release, the deterministic
    /// scheduling hooks the cancellation/deadline tests use. Off in
    /// production daemons.
    bool EnableTestHooks = false;
    /// Snapshot warm-start state (default: no snapshot).
    SnapshotConfig Snapshot;
    /// The workspace's shared frozen framework corpus; when set, every
    /// document build is an overlay build (and the snapshot warm-start
    /// baseline is not used — the base already serves that role).
    std::shared_ptr<const BaseCorpus> Base;
    /// Cap on concurrently open sessions (0 = unlimited). On an open that
    /// would exceed it, least-recently-touched idle sessions are evicted.
    size_t MaxSessions = 0;
    /// Admission control: cap on globally outstanding tasks (0 = no cap).
    /// A session request arriving while Outstanding >= MaxQueue is shed
    /// at dispatch with ServerOverloaded (error data: {retryAfterMs}),
    /// deterministically — admission is decided under the service lock
    /// before any state is created, so the admitted set depends only on
    /// arrival order, never on worker timing.
    size_t MaxQueue = 0;
    /// Cap on one session's pending strand depth (0 = no cap); requests
    /// beyond it shed with ServerOverloaded, so one hot document cannot
    /// monopolize the run queue.
    size_t MaxStrandDepth = 0;
    /// Watchdog budget in ms (0 = disabled): a strand task executing
    /// longer than this is failed with InternalError on its behalf and
    /// its abort signal raised, so a hung build or query cannot wedge the
    /// daemon silently.
    double WatchdogMs = 0;
    /// Per-frame payload cap handed to the transport by serveStream
    /// (0 = FramedReader::DefaultMaxPayloadBytes).
    size_t MaxFrameBytes = 0;
  };

  /// Receives every outgoing response message. Called from worker threads
  /// and the dispatch thread concurrently; must be thread-safe.
  using ResponseSink = std::function<void(const json::Value &)>;

  PetalService(const Options &Opts, ResponseSink Sink);
  ~PetalService();

  PetalService(const PetalService &) = delete;
  PetalService &operator=(const PetalService &) = delete;

  /// Parses one framed payload and dispatches it. Returns false once the
  /// client sent `exit` (the transport loop should stop).
  bool handleMessage(std::string_view Payload);

  /// Dispatches an already-parsed message (the in-process client path).
  bool handleParsed(const json::Value &Message);

  /// Blocks until every enqueued task has finished. Used by tests, the
  /// bench driver, and the daemon's drain-on-exit.
  void waitIdle();

  bool exitRequested() const { return Exit.load(std::memory_order_relaxed); }
  const Options &options() const { return Opts; }

  /// Opens a named test gate, releasing any $/test/block waiting on it
  /// (tests may also do this via the $/test/release request).
  void releaseGate(const std::string &Token);

private:
  /// Per-request control block, created for every id-bearing task at
  /// admission. It is the request's identity across threads: the abort
  /// signal builds and queries poll, the exactly-one-response claim flag,
  /// and the execution timestamp the watchdog measures against. Shared
  /// between the owning worker, the dispatch thread ($/cancelRequest),
  /// and the watchdog — every field is a plain atomic or written once
  /// before sharing.
  struct RequestCtl {
    AbortSignal Sig;
    /// Set (exchange) by whoever answers the request first — the worker,
    /// the watchdog, or the isolation wrapper. Losers drop their response.
    std::atomic<bool> Responded{false};
    rpc::RequestId Id;
    std::string Method;
    /// When the task started executing (set at worker pickup, under M).
    std::chrono::steady_clock::time_point Started{};
    /// The error code an aborter wants reported (RequestCancelled for
    /// $/cancelRequest; 0 = abort came from the deadline alone).
    std::atomic<int> AbortCode{0};
  };

  /// One queued request.
  struct Task {
    rpc::RequestId Id;
    std::string Method;
    json::Value Params;
    std::chrono::steady_clock::time_point Enqueued;
    double DeadlineMs = 0; ///< <= 0 means no deadline
    /// Control block; null for notifications (no response expected, so
    /// nothing to claim, cancel, or watch).
    std::shared_ptr<RequestCtl> Ctl;
  };

  /// One open document: the strand of pending tasks plus the current
  /// built state. Pending/Scheduled/Open are guarded by M; Doc is only
  /// touched by the worker currently running this session's strand.
  struct SessionState {
    std::string Name;
    bool Open = true;
    std::shared_ptr<DocumentState> Doc;
    std::deque<Task> Pending;
    bool Scheduled = false;
    /// Monotonic enqueue stamp (from TouchCounter, under M); the
    /// --max-sessions eviction order. 0 = never touched.
    uint64_t LastTouched = 0;
  };

  /// A named condition the test hooks block on.
  struct Gate {
    std::mutex GM;
    std::condition_variable GCV;
    bool Opened = false;
  };

  /// An entry on the global run queue: either a session with pending
  /// strand work, or a free-standing task (test gates without a document).
  struct RunItem {
    std::shared_ptr<SessionState> Session; ///< null for global tasks
    Task Global;
  };

  // Dispatch (transport thread).
  void dispatch(const json::Value &Message, const rpc::RequestId &Id,
                const std::string &Method, const json::Value &Params);
  void enqueueSession(const std::shared_ptr<SessionState> &S, Task T);
  void enqueueGlobal(Task T);
  json::Value statsJson();
  /// Evicts least-recently-touched idle sessions until at most
  /// Opts.MaxSessions remain, sparing \p Keep (the session being opened).
  /// Called from dispatch with no locks held.
  void enforceSessionCap(const SessionState *Keep);

  /// Makes \p T's control block for id-bearing requests (deadline baked
  /// into the abort signal) — call once, at admission.
  void attachCtl(Task &T);
  /// Sheds \p Id with ServerOverloaded + {retryAfterMs}. \p QueueDepth is
  /// the Outstanding value observed when the shed was decided.
  void shed(const rpc::RequestId &Id, size_t QueueDepth,
            const std::string &Why);

  // Execution (worker threads).
  void workerLoop();
  void watchdogLoop();
  void runTask(const std::shared_ptr<SessionState> &S, Task &T);
  void execOpenChange(SessionState &S, Task &T, bool IsChange);
  void execClose(SessionState &S, Task &T);
  void execComplete(SessionState &S, Task &T);
  void execBlock(Task &T);
  /// Responds to an aborted-in-flight task with the aborter's code (or
  /// DeadlineExceeded when the abort came from the deadline alone, which
  /// also counts as a deadline abandonment).
  void respondAborted(Task &T, const std::string &What);

  // Response plumbing. taskResult/taskError are the only response paths
  // workers use: they claim the control block first, so a request the
  // watchdog (or the isolation wrapper) already answered is never
  // answered twice.
  void respond(const json::Value &Message);
  void respondResult(const rpc::RequestId &Id, json::Value Result);
  void respondError(const rpc::RequestId &Id, int Code,
                    const std::string &Message);
  static bool claim(Task &T) {
    return !T.Ctl || !T.Ctl->Responded.exchange(true);
  }
  void taskResult(Task &T, json::Value Result);
  void taskError(Task &T, int Code, const std::string &Message);
  void recordLatency(const Task &T);

  Options Opts;
  ResponseSink Sink;
  ResultCache Cache;

  std::mutex M;
  std::condition_variable WorkCV;
  std::condition_variable IdleCV;
  std::deque<RunItem> RunQueue;
  std::unordered_map<std::string, std::shared_ptr<SessionState>> Sessions;
  std::unordered_set<std::string> QueuedIds;    ///< ids awaiting execution
  std::unordered_set<std::string> CancelledIds; ///< marked via $/cancelRequest
  /// Control blocks of tasks currently executing, by id key — what
  /// $/cancelRequest aborts in flight and the watchdog patrols.
  std::unordered_map<std::string, std::shared_ptr<RequestCtl>> Executing;
  std::unordered_map<std::string, std::shared_ptr<Gate>> Gates;
  size_t Outstanding = 0;
  size_t QueueHighWater = 0;  ///< max Outstanding ever (guarded by M)
  size_t StrandHighWater = 0; ///< max one session's Pending depth (M)
  uint64_t TouchCounter = 0; ///< feeds SessionState::LastTouched
  bool ShuttingDown = false;
  bool StopWorkers = false;
  std::atomic<bool> Exit{false};

  // Counters (guarded by StatsM; latencies only for petal/complete).
  mutable std::mutex StatsM;
  uint64_t ReceivedCount = 0;
  uint64_t QueryCount = 0;
  uint64_t CancelledCount = 0;
  uint64_t DeadlineCount = 0;
  uint64_t StaleCount = 0;
  uint64_t ErrorCount = 0;
  uint64_t BuildCount = 0;
  uint64_t BuildFailCount = 0;
  // Document-build telemetry ($/stats "documents"): how many builds went
  // incremental, which shared components they reused, and the build-time
  // distribution. Reuse counters are per component per build: an
  // incremental build bumps typesystem + indexes, a no-op edit bumps
  // solution too.
  uint64_t FullBuildCount = 0;
  uint64_t IncrementalBuildCount = 0;
  uint64_t ReuseTypeSystemCount = 0;
  uint64_t ReuseIndexesCount = 0;
  uint64_t ReuseSolutionCount = 0;
  uint64_t CacheRetainedCount = 0; ///< entries surviving edits via retarget
  uint64_t WarmStartCount = 0; ///< opens served incrementally off the snapshot
  uint64_t EvictedCount = 0;   ///< sessions closed by the --max-sessions cap
  // Robustness telemetry ($/stats "health"): what the backpressure,
  // isolation, and degradation machinery is actually doing.
  uint64_t ShedCount = 0;              ///< requests refused at admission
  uint64_t DeadlineAbandonedCount = 0; ///< started, then abandoned mid-work
  uint64_t IsolatedErrorCount = 0;     ///< exceptions confined to one request
  uint64_t WatchdogFiredCount = 0;     ///< tasks failed by the watchdog
  uint64_t CancelledInFlightCount = 0; ///< $/cancelRequest hit a running task
  uint64_t DegradedBuildCount = 0;     ///< overlay builds served monolithically
  /// EWMA of task execution time, the retryAfterMs estimator backpressure
  /// hands shed clients.
  double EwmaTaskMs = 0;
  /// Per-open-session overlay heap bytes (DocumentState::memoryBytes of
  /// the current build), keyed by document name. Maintained by the build
  /// and close paths so statsJson never dereferences SessionState::Doc —
  /// that pointer belongs to the session strand.
  std::unordered_map<std::string, size_t> SessionBytes;
  std::vector<double> BuildMs;
  uint64_t ExplainedCount = 0;     ///< queries answered with explain on
  uint64_t ScoreCeilingHitCount = 0; ///< queries the score ceiling cut short
  /// Summed per-term costs over every explained completion served (cache
  /// replays excluded — they repeat bytes, not work).
  std::array<uint64_t, NumScoreTerms> TermTotals{};
  std::vector<double> LatencyMs;

  std::vector<std::thread> WorkerThreads;
  std::thread WatchdogThread; ///< running iff Opts.WatchdogMs > 0
  std::condition_variable WatchdogCV; ///< waits on M; dtor wakes it
};

/// The daemon's transport loop: reads Content-Length framed messages from
/// \p In (cap: Options::MaxFrameBytes), dispatches each into a PetalService
/// whose responses are framed onto \p Out, and returns when the client
/// sends `exit` or the stream ends — after draining in-flight work. One
/// connection per call. Crash-safe: a framing violation is answered with a
/// ParseError before the connection drops, a dispatch-time exception is
/// answered with InternalError and the loop continues — a poisoned request
/// never takes the daemon down.
void serveStream(std::istream &In, std::ostream &Out,
                 const PetalService::Options &Opts);

} // namespace petal

#endif // PETAL_SERVICE_SERVICE_H
