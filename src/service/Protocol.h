//===- service/Protocol.h - JSON-RPC message helpers ------------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The petald protocol: JSON-RPC 2.0 messages over the Content-Length
/// framing of Transport.h. Methods:
///
///   initialize / shutdown / exit            lifecycle
///   petal/open    {doc, text, version}      open a document session
///   petal/change  {doc, text, version}      replace a document's text
///   petal/close   {doc}                     drop a session
///   petal/complete{doc, version?, class, method, query, n?, rank?, ...}
///   $/cancelRequest {id}                    cancel a queued or executing
///                                           request
///   $/stats                                 service counters + latency +
///                                           health
///
/// petal/open and petal/change answer {doc, version, types, methods,
/// buildMs, build, cacheRetained}: `build` classifies how the state was
/// constructed ("full", "incremental-body" when the edit touched method
/// bodies only and the previous version's type system and frozen index
/// tables were shared, or "incremental-noop" for token-identical text,
/// which additionally carries the abstract-type solution over), and
/// `cacheRetained` counts result-cache entries that survived the edit
/// under scoped invalidation. $/stats exposes the running aggregates
/// under "documents" (build counts, per-component reuse counters, build
/// latency percentiles).
///
/// Error codes follow JSON-RPC / LSP where codes exist and extend them in
/// the -330xx range where they do not.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_SERVICE_PROTOCOL_H
#define PETAL_SERVICE_PROTOCOL_H

#include "support/Json.h"

#include <string>

namespace petal {
namespace rpc {

/// JSON-RPC and LSP error codes used by the service.
enum ErrorCode {
  ParseError = -32700,        ///< payload was not valid JSON
  InvalidRequest = -32600,    ///< not a well-formed JSON-RPC request
  MethodNotFound = -32601,    ///< unknown method
  InvalidParams = -32602,     ///< params missing or of the wrong shape
  InternalError = -32603,     ///< request failed inside the service; the
                              ///< failure was isolated to this request
  RequestCancelled = -32800,  ///< LSP: cancelled via $/cancelRequest
  ContentModified = -32801,   ///< LSP: document changed under the request
  UnknownDocument = -33000,   ///< no open session for the named document
  DeadlineExceeded = -33001,  ///< request could not start before deadline
  BuildFailed = -33002,       ///< document text failed to parse/resolve
  ShuttingDown = -33003,      ///< request arrived after shutdown
  ServerOverloaded = -33004,  ///< shed at admission: queue or strand full;
                              ///< error data carries {retryAfterMs}
};

/// A parsed request id: JSON-RPC allows numbers and strings; requests
/// without an id are notifications and get no response.
struct RequestId {
  bool Present = false;
  bool IsString = false;
  int64_t Num = 0;
  std::string Str;

  static RequestId of(const json::Value &Message) {
    RequestId Id;
    const json::Value *V = Message.find("id");
    if (!V)
      return Id;
    if (V->isNumber()) {
      Id.Present = true;
      Id.Num = V->intValue();
    } else if (V->isString()) {
      Id.Present = true;
      Id.IsString = true;
      Id.Str = V->stringValue();
    }
    return Id;
  }

  json::Value toJson() const {
    if (!Present)
      return json::Value();
    if (IsString)
      return json::Value(Str);
    return json::Value(Num);
  }

  bool operator==(const RequestId &O) const {
    return Present == O.Present && IsString == O.IsString && Num == O.Num &&
           Str == O.Str;
  }

  /// A printable key for maps and logs.
  std::string key() const {
    if (!Present)
      return "<none>";
    return IsString ? "s:" + Str : "n:" + std::to_string(Num);
  }
};

inline json::Value makeRequest(RequestId Id, std::string_view Method,
                               json::Value Params) {
  json::Value M = json::Value::object();
  M.set("jsonrpc", "2.0");
  if (Id.Present)
    M.set("id", Id.toJson());
  M.set("method", json::Value(Method));
  if (!Params.isNull())
    M.set("params", std::move(Params));
  return M;
}

inline json::Value makeResult(const RequestId &Id, json::Value Result) {
  json::Value M = json::Value::object();
  M.set("jsonrpc", "2.0");
  M.set("id", Id.toJson());
  M.set("result", std::move(Result));
  return M;
}

inline json::Value makeError(const RequestId &Id, int Code,
                             std::string_view Message) {
  json::Value E = json::Value::object();
  E.set("code", Code);
  E.set("message", json::Value(Message));
  json::Value M = json::Value::object();
  M.set("jsonrpc", "2.0");
  M.set("id", Id.toJson());
  M.set("error", std::move(E));
  return M;
}

/// Error with a structured data member (e.g. ServerOverloaded carries
/// {"retryAfterMs": n} so clients can back off without guessing).
inline json::Value makeError(const RequestId &Id, int Code,
                             std::string_view Message, json::Value Data) {
  json::Value E = json::Value::object();
  E.set("code", Code);
  E.set("message", json::Value(Message));
  E.set("data", std::move(Data));
  json::Value M = json::Value::object();
  M.set("jsonrpc", "2.0");
  M.set("id", Id.toJson());
  M.set("error", std::move(E));
  return M;
}

} // namespace rpc
} // namespace petal

#endif // PETAL_SERVICE_PROTOCOL_H
