//===- service/Service.cpp - The petald completion service ----------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "service/Transport.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <istream>
#include <ostream>

using namespace petal;
using json::Value;

//===----------------------------------------------------------------------===//
// Construction / teardown
//===----------------------------------------------------------------------===//

PetalService::PetalService(const Options &Opts, ResponseSink Sink)
    : Opts(Opts), Sink(std::move(Sink)), Cache(Opts.CacheCapacity) {
  size_t Workers = std::max<size_t>(1, this->Opts.Workers);
  this->Opts.Workers = Workers;
  WorkerThreads.reserve(Workers);
  for (size_t W = 0; W != Workers; ++W)
    WorkerThreads.emplace_back([this] { workerLoop(); });
  if (this->Opts.WatchdogMs > 0)
    WatchdogThread = std::thread([this] { watchdogLoop(); });
}

PetalService::~PetalService() {
  {
    std::lock_guard<std::mutex> L(M);
    StopWorkers = true;
    // Open every gate so a blocked $/test/block cannot wedge the join.
    for (auto &[Token, G] : Gates) {
      std::lock_guard<std::mutex> GL(G->GM);
      G->Opened = true;
      G->GCV.notify_all();
    }
  }
  WorkCV.notify_all();
  WatchdogCV.notify_all();
  for (std::thread &T : WorkerThreads)
    T.join();
  if (WatchdogThread.joinable())
    WatchdogThread.join();
}

//===----------------------------------------------------------------------===//
// Response plumbing
//===----------------------------------------------------------------------===//

void PetalService::respond(const Value &Message) {
  if (Sink)
    Sink(Message);
}

void PetalService::respondResult(const rpc::RequestId &Id, Value Result) {
  if (!Id.Present)
    return; // notification: no response channel
  respond(rpc::makeResult(Id, std::move(Result)));
}

void PetalService::respondError(const rpc::RequestId &Id, int Code,
                                const std::string &Message) {
  {
    std::lock_guard<std::mutex> L(StatsM);
    ++ErrorCount;
  }
  if (!Id.Present)
    return;
  respond(rpc::makeError(Id, Code, Message));
}

void PetalService::taskResult(Task &T, Value Result) {
  if (claim(T))
    respondResult(T.Id, std::move(Result));
}

void PetalService::taskError(Task &T, int Code, const std::string &Message) {
  if (claim(T))
    respondError(T.Id, Code, Message);
}

void PetalService::recordLatency(const Task &T) {
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - T.Enqueued)
                  .count();
  std::lock_guard<std::mutex> L(StatsM);
  ++QueryCount;
  if (LatencyMs.size() < (1u << 20))
    LatencyMs.push_back(Ms);
}

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

bool PetalService::handleMessage(std::string_view Payload) {
  Value Message;
  std::string Error;
  if (!json::parse(Payload, Message, Error)) {
    {
      std::lock_guard<std::mutex> L(StatsM);
      ++ReceivedCount;
    }
    respond(rpc::makeError(rpc::RequestId(), rpc::ParseError,
                           "invalid JSON: " + Error));
    return true;
  }
  return handleParsed(Message);
}

bool PetalService::handleParsed(const Value &Message) {
  {
    std::lock_guard<std::mutex> L(StatsM);
    ++ReceivedCount;
  }
  if (!Message.isObject()) {
    respond(rpc::makeError(rpc::RequestId(), rpc::InvalidRequest,
                           "message is not an object"));
    return true;
  }
  rpc::RequestId Id = rpc::RequestId::of(Message);
  std::string Method = Message.getString("method");
  if (Method.empty()) {
    respondError(Id, rpc::InvalidRequest, "missing 'method'");
    return true;
  }
  const Value *ParamsPtr = Message.find("params");
  Value Params = ParamsPtr ? *ParamsPtr : Value::object();
  try {
    dispatch(Message, Id, Method, Params);
  } catch (const std::exception &E) {
    // Crash-safe dispatch: a request that blows up while being routed
    // fails alone; the connection (and every other session) keeps going.
    {
      std::lock_guard<std::mutex> L(StatsM);
      ++IsolatedErrorCount;
    }
    respondError(Id, rpc::InternalError,
                 std::string("internal error during dispatch: ") + E.what());
  }
  return !exitRequested();
}

void PetalService::attachCtl(Task &T) {
  if (!T.Id.Present)
    return; // notification: nothing to answer, cancel, or watch
  auto Ctl = std::make_shared<RequestCtl>();
  Ctl->Id = T.Id;
  Ctl->Method = T.Method;
  if (T.DeadlineMs > 0) {
    Ctl->Sig.Deadline =
        T.Enqueued + std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             T.DeadlineMs));
    Ctl->Sig.HasDeadline = true;
  }
  T.Ctl = std::move(Ctl);
}

void PetalService::shed(const rpc::RequestId &Id, size_t QueueDepth,
                        const std::string &Why) {
  double RetryMs;
  {
    std::lock_guard<std::mutex> L(StatsM);
    ++ShedCount;
    ++ErrorCount;
    // Little's-law flavored estimate: with Outstanding tasks ahead and
    // Workers draining at ~EwmaTaskMs each, the backlog clears in about
    // Outstanding x EwmaTaskMs / Workers. Never less than 1ms — "retry
    // immediately" defeats the point of shedding.
    RetryMs = std::max(
        1.0, EwmaTaskMs * static_cast<double>(QueueDepth) /
                 static_cast<double>(std::max<size_t>(1, Opts.Workers)));
  }
  if (!Id.Present)
    return;
  Value Data = Value::object();
  Data.set("retryAfterMs", RetryMs);
  respond(rpc::makeError(Id, rpc::ServerOverloaded,
                         "server overloaded: " + Why, std::move(Data)));
}

void PetalService::dispatch(const Value &, const rpc::RequestId &Id,
                            const std::string &Method, const Value &Params) {
  if (Method == "initialize") {
    Value Caps = Value::object();
    Caps.set("documentSync", "full");
    Caps.set("completion", true);
    Caps.set("cancel", true);
    Caps.set("stats", true);
    Value R = Value::object();
    R.set("name", "petald");
    R.set("version", "0.1.0");
    R.set("capabilities", std::move(Caps));
    respondResult(Id, std::move(R));
    return;
  }
  if (Method == "shutdown") {
    {
      std::lock_guard<std::mutex> L(M);
      ShuttingDown = true;
    }
    respondResult(Id, Value());
    return;
  }
  if (Method == "exit") {
    Exit.store(true, std::memory_order_relaxed);
    return;
  }
  if (Method == "$/cancelRequest") {
    rpc::RequestId Target = rpc::RequestId::of(Params);
    if (Target.Present) {
      bool InFlight = false;
      {
        std::lock_guard<std::mutex> L(M);
        // A currently-executing request gets its abort signal raised, so
        // in-flight deadline/abort checks abandon it at the next phase or
        // bucket boundary — not just queued ones, as LSP would allow.
        auto It = Executing.find(Target.key());
        if (It != Executing.end()) {
          It->second->AbortCode.store(rpc::RequestCancelled,
                                      std::memory_order_relaxed);
          It->second->Sig.abort();
          InFlight = true;
        } else if (QueuedIds.count(Target.key())) {
          // Only requests known to be waiting are marked; marking unknown
          // ids would let a hostile client grow the set without bound.
          CancelledIds.insert(Target.key());
        }
      }
      if (InFlight) {
        std::lock_guard<std::mutex> L(StatsM);
        ++CancelledInFlightCount;
      }
    }
    return; // notification
  }
  if (Method == "$/stats") {
    respondResult(Id, statsJson());
    return;
  }

  bool Rejected;
  {
    std::lock_guard<std::mutex> L(M);
    Rejected = ShuttingDown;
  }
  if (Rejected) {
    respondError(Id, rpc::ShuttingDown, "service is shutting down");
    return;
  }

  if (Method == "$/test/block" || Method == "$/test/release") {
    if (!Opts.EnableTestHooks) {
      respondError(Id, rpc::MethodNotFound,
                   "test hooks are disabled (" + Method + ")");
      return;
    }
    if (Method == "$/test/release") {
      releaseGate(Params.getString("token"));
      respondResult(Id, Value());
      return;
    }
    Task T{Id, Method, Params, std::chrono::steady_clock::now(),
           Params.getNumber("deadlineMs", 0)};
    attachCtl(T);
    std::string Doc = Params.getString("doc");
    if (Doc.empty()) {
      enqueueGlobal(std::move(T));
      return;
    }
    std::shared_ptr<SessionState> S;
    {
      std::lock_guard<std::mutex> L(M);
      auto It = Sessions.find(Doc);
      if (It != Sessions.end())
        S = It->second;
    }
    if (!S) {
      respondError(Id, rpc::UnknownDocument, "no open document '" + Doc + "'");
      return;
    }
    enqueueSession(S, std::move(T));
    return;
  }

  bool IsOpen = Method == "petal/open";
  bool IsChange = Method == "petal/change";
  bool IsClose = Method == "petal/close";
  bool IsComplete = Method == "petal/complete";
  if (!IsOpen && !IsChange && !IsClose && !IsComplete) {
    respondError(Id, rpc::MethodNotFound, "unknown method '" + Method + "'");
    return;
  }

  std::string Doc = Params.getString("doc");
  if (Doc.empty()) {
    respondError(Id, rpc::InvalidParams, "missing string param 'doc'");
    return;
  }
  if (IsOpen || IsChange) {
    const Value *Text = Params.find("text");
    const Value *Version = Params.find("version");
    if (!Text || !Text->isString() || !Version || !Version->isNumber()) {
      respondError(Id, rpc::InvalidParams,
                   Method + " needs 'text' (string) and 'version' (number)");
      return;
    }
  }

  Task T{Id, Method, Params, std::chrono::steady_clock::now(),
         Params.getNumber("deadlineMs", 0)};

  // Admission control, decided under the service lock *before* any session
  // state is created, so the admitted set is a pure function of arrival
  // order. FIFO-fair: admission never reorders — the first MaxQueue
  // arrivals are admitted, everything after them is shed until capacity
  // frees up.
  if (Opts.MaxQueue != 0) {
    size_t Depth;
    bool Shed;
    {
      std::lock_guard<std::mutex> L(M);
      Depth = Outstanding;
      Shed = Outstanding >= Opts.MaxQueue;
    }
    if (Shed) {
      shed(Id, Depth, "run queue is full (" + std::to_string(Depth) + "/" +
                          std::to_string(Opts.MaxQueue) + " outstanding)");
      return;
    }
  }

  std::shared_ptr<SessionState> S;
  bool AlreadyOpen = false;
  bool StrandFull = false;
  size_t StrandDepth = 0;
  {
    std::lock_guard<std::mutex> L(M);
    auto It = Sessions.find(Doc);
    if (It != Sessions.end())
      S = It->second;
    if (IsOpen) {
      if (S) {
        AlreadyOpen = true;
      } else {
        S = std::make_shared<SessionState>();
        S->Name = Doc;
        Sessions[Doc] = S;
      }
    }
    if (S && Opts.MaxStrandDepth != 0 &&
        S->Pending.size() >= Opts.MaxStrandDepth) {
      StrandFull = true;
      StrandDepth = S->Pending.size();
    }
  }
  if (AlreadyOpen) {
    respondError(Id, rpc::InvalidParams,
                 "document '" + Doc + "' is already open");
    return;
  }
  if (!S) {
    respondError(Id, rpc::UnknownDocument, "no open document '" + Doc + "'");
    return;
  }
  if (StrandFull) {
    shed(Id, StrandDepth,
         "session '" + Doc + "' strand is full (" +
             std::to_string(StrandDepth) + "/" +
             std::to_string(Opts.MaxStrandDepth) + " pending)");
    return;
  }
  if (IsOpen && Opts.MaxSessions != 0)
    enforceSessionCap(S.get());
  attachCtl(T);
  enqueueSession(S, std::move(T));
}

void PetalService::enforceSessionCap(const SessionState *Keep) {
  std::vector<std::shared_ptr<SessionState>> Evicted;
  {
    std::lock_guard<std::mutex> L(M);
    while (Sessions.size() > Opts.MaxSessions) {
      // Least-recently-touched *idle* victim: nothing queued and no worker
      // on its strand, so nobody but us can reach its DocumentState. Busy
      // sessions are spared even if older — evicting one would yank state
      // out from under its running strand; the cap is then temporarily
      // exceeded until they drain.
      SessionState *Victim = nullptr;
      for (auto &[Name, SS] : Sessions) {
        if (SS.get() == Keep || !SS->Pending.empty() || SS->Scheduled)
          continue;
        if (!Victim || SS->LastTouched < Victim->LastTouched)
          Victim = SS.get();
      }
      if (!Victim)
        break;
      Victim->Open = false;
      auto It = Sessions.find(Victim->Name);
      Evicted.push_back(std::move(It->second));
      Sessions.erase(It);
    }
  }
  for (const std::shared_ptr<SessionState> &S : Evicted) {
    S->Doc.reset();
    Cache.invalidate(S->Name);
  }
  if (!Evicted.empty()) {
    std::lock_guard<std::mutex> L(StatsM);
    EvictedCount += Evicted.size();
    for (const std::shared_ptr<SessionState> &S : Evicted)
      SessionBytes.erase(S->Name);
  }
}

void PetalService::enqueueSession(const std::shared_ptr<SessionState> &S,
                                  Task T) {
  {
    std::lock_guard<std::mutex> L(M);
    if (T.Id.Present)
      QueuedIds.insert(T.Id.key());
    ++Outstanding;
    QueueHighWater = std::max(QueueHighWater, Outstanding);
    S->LastTouched = ++TouchCounter; // recency for --max-sessions eviction
    S->Pending.push_back(std::move(T));
    StrandHighWater = std::max(StrandHighWater, S->Pending.size());
    if (!S->Scheduled) {
      S->Scheduled = true;
      RunQueue.push_back(RunItem{S, Task{}});
    }
  }
  WorkCV.notify_one();
}

void PetalService::enqueueGlobal(Task T) {
  {
    std::lock_guard<std::mutex> L(M);
    if (T.Id.Present)
      QueuedIds.insert(T.Id.key());
    ++Outstanding;
    QueueHighWater = std::max(QueueHighWater, Outstanding);
    RunQueue.push_back(RunItem{nullptr, std::move(T)});
  }
  WorkCV.notify_one();
}

void PetalService::waitIdle() {
  std::unique_lock<std::mutex> L(M);
  IdleCV.wait(L, [&] { return Outstanding == 0; });
}

void PetalService::releaseGate(const std::string &Token) {
  std::shared_ptr<Gate> G;
  {
    std::lock_guard<std::mutex> L(M);
    auto It = Gates.find(Token);
    if (It == Gates.end()) {
      // Release-before-block: create the gate already opened so the
      // upcoming block falls straight through.
      G = std::make_shared<Gate>();
      Gates[Token] = G;
    } else {
      G = It->second;
    }
  }
  std::lock_guard<std::mutex> GL(G->GM);
  G->Opened = true;
  G->GCV.notify_all();
}

//===----------------------------------------------------------------------===//
// Workers
//===----------------------------------------------------------------------===//

void PetalService::workerLoop() {
  for (;;) {
    std::shared_ptr<SessionState> S;
    Task T;
    {
      std::unique_lock<std::mutex> L(M);
      WorkCV.wait(L, [&] { return StopWorkers || !RunQueue.empty(); });
      if (RunQueue.empty())
        return; // StopWorkers and fully drained
      RunItem Item = std::move(RunQueue.front());
      RunQueue.pop_front();
      if (Item.Session) {
        S = std::move(Item.Session);
        T = std::move(S->Pending.front());
        S->Pending.pop_front();
      } else {
        T = std::move(Item.Global);
      }
      if (T.Ctl) {
        // Publish the task as executing: from here until the erase below,
        // $/cancelRequest aborts it in flight and the watchdog patrols it.
        T.Ctl->Started = std::chrono::steady_clock::now();
        Executing[T.Id.key()] = T.Ctl;
      }
    }

    auto RunStart = std::chrono::steady_clock::now();
    // Per-request isolation: an exception escaping a task — a genuine bug
    // or an injected build fault — becomes an InternalError on *this*
    // request; the worker, the session, and every other request live on.
    try {
      runTask(S, T);
    } catch (const InjectedFault &E) {
      // The only injected fault that propagates this far is BuildThrow
      // (the others recover inside their own layer); surviving it cleanly
      // IS its recovery path.
      FaultInjector::instance().noteRecovered(Fault::BuildThrow);
      {
        std::lock_guard<std::mutex> L(StatsM);
        ++IsolatedErrorCount;
      }
      taskError(T, rpc::InternalError,
                std::string("internal error: ") + E.what());
    } catch (const std::exception &E) {
      {
        std::lock_guard<std::mutex> L(StatsM);
        ++IsolatedErrorCount;
      }
      taskError(T, rpc::InternalError,
                std::string("internal error: ") + E.what());
    } catch (...) {
      {
        std::lock_guard<std::mutex> L(StatsM);
        ++IsolatedErrorCount;
      }
      taskError(T, rpc::InternalError, "internal error: unknown exception");
    }
    // Exactly-one-response backstop: a task that slipped through every
    // response path still answers (claim() makes the double-response
    // direction impossible; this closes the zero-response one).
    if (T.Ctl && !T.Ctl->Responded.load(std::memory_order_acquire))
      taskError(T, rpc::InternalError,
                "internal error: task finished without a response");

    {
      double TaskMs = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - RunStart)
                          .count();
      std::lock_guard<std::mutex> L(StatsM);
      EwmaTaskMs = EwmaTaskMs == 0 ? TaskMs : 0.8 * EwmaTaskMs + 0.2 * TaskMs;
    }

    {
      std::lock_guard<std::mutex> L(M);
      if (S) {
        if (!S->Pending.empty())
          RunQueue.push_back(RunItem{S, Task{}});
        else
          S->Scheduled = false;
      }
      if (T.Id.Present) {
        QueuedIds.erase(T.Id.key());
        CancelledIds.erase(T.Id.key());
        Executing.erase(T.Id.key());
      }
      if (--Outstanding == 0)
        IdleCV.notify_all();
      if (!RunQueue.empty())
        WorkCV.notify_one();
    }
  }
}

void PetalService::watchdogLoop() {
  std::unique_lock<std::mutex> L(M);
  for (;;) {
    // Patrol at a fraction of the budget so an overrun is caught within
    // ~1.25x WatchdogMs of starting, without busy-polling.
    WatchdogCV.wait_for(
        L, std::chrono::duration<double, std::milli>(
               std::max(1.0, Opts.WatchdogMs / 4.0)),
        [&] { return StopWorkers; });
    if (StopWorkers)
      return;
    auto Now = std::chrono::steady_clock::now();
    std::vector<std::shared_ptr<RequestCtl>> Victims;
    for (auto &[Key, Ctl] : Executing) {
      double RanMs = std::chrono::duration<double, std::milli>(
                         Now - Ctl->Started)
                         .count();
      if (RanMs > Opts.WatchdogMs &&
          !Ctl->Responded.load(std::memory_order_acquire))
        Victims.push_back(Ctl);
    }
    if (Victims.empty())
      continue;
    // Respond outside M: the sink may block, and lock order is sink-free.
    L.unlock();
    uint64_t Fired = 0;
    for (const std::shared_ptr<RequestCtl> &Ctl : Victims) {
      Ctl->AbortCode.store(rpc::InternalError, std::memory_order_relaxed);
      Ctl->Sig.abort();
      if (!Ctl->Responded.exchange(true)) {
        ++Fired;
        respondError(Ctl->Id, rpc::InternalError,
                     "watchdog: " + Ctl->Method + " exceeded the " +
                         std::to_string(Opts.WatchdogMs) +
                         " ms execution budget");
      }
    }
    if (Fired) {
      std::lock_guard<std::mutex> SL(StatsM);
      WatchdogFiredCount += Fired;
    }
    L.lock();
  }
}

void PetalService::respondAborted(Task &T, const std::string &What) {
  int Code = T.Ctl ? T.Ctl->AbortCode.load(std::memory_order_relaxed) : 0;
  if (Code == 0) {
    // No explicit aborter: the deadline itself expired mid-execution.
    Code = rpc::DeadlineExceeded;
    std::lock_guard<std::mutex> L(StatsM);
    ++DeadlineAbandonedCount;
  }
  taskError(T, Code, What + " abandoned mid-execution (" +
                         (Code == rpc::RequestCancelled ? "cancelled"
                          : Code == rpc::DeadlineExceeded
                              ? "deadline expired"
                              : "aborted") +
                         ")");
}

void PetalService::runTask(const std::shared_ptr<SessionState> &S, Task &T) {
  if (T.Id.Present) {
    bool Cancelled;
    {
      std::lock_guard<std::mutex> L(M);
      Cancelled = CancelledIds.count(T.Id.key()) != 0;
    }
    if (Cancelled) {
      {
        std::lock_guard<std::mutex> L(StatsM);
        ++CancelledCount;
      }
      taskError(T, rpc::RequestCancelled, "request cancelled");
      return;
    }
  }
  if (T.DeadlineMs > 0) {
    double WaitedMs = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - T.Enqueued)
                          .count();
    if (WaitedMs > T.DeadlineMs) {
      {
        std::lock_guard<std::mutex> L(StatsM);
        ++DeadlineCount;
      }
      taskError(T, rpc::DeadlineExceeded,
                "deadline of " + std::to_string(T.DeadlineMs) +
                    " ms expired before execution");
      return;
    }
  }

  if (T.Method == "$/test/block") {
    execBlock(T);
    return;
  }
  if (!S) {
    taskError(T, rpc::InvalidRequest,
              "internal: session task without session");
    return;
  }
  if (T.Method == "petal/open")
    execOpenChange(*S, T, /*IsChange=*/false);
  else if (T.Method == "petal/change")
    execOpenChange(*S, T, /*IsChange=*/true);
  else if (T.Method == "petal/close")
    execClose(*S, T);
  else if (T.Method == "petal/complete")
    execComplete(*S, T);
  else
    taskError(T, rpc::MethodNotFound,
              "unknown session method '" + T.Method + "'");
}

void PetalService::execOpenChange(SessionState &S, Task &T, bool IsChange) {
  {
    std::lock_guard<std::mutex> L(M);
    if (!S.Open) {
      // Closed while this task was queued behind the close.
      taskError(T, rpc::UnknownDocument,
                "document '" + S.Name + "' was closed");
      return;
    }
  }
  std::string Text = T.Params.getString("text");
  int64_t Version = T.Params.getInt("version", 0);
  if (IsChange && S.Doc && Version <= S.Doc->Version) {
    taskError(T, rpc::InvalidParams,
              "version must increase (current " +
                  std::to_string(S.Doc->Version) + ", got " +
                  std::to_string(Version) + ")");
    return;
  }

  std::string Error;
  // An edit hands the previous state in as the incremental-build baseline.
  // An open's baseline depends on the workspace mode: with a shared base
  // corpus the document builds as a fresh overlay (the base plays the
  // role a warm-start baseline would); without one, it uses the snapshot
  // warm-start state (null without --snapshot), so a document matching
  // the snapshot corpus shares its mapped tables instead of building
  // cold. S.Doc is safe to read here: session strands serialize
  // everything that touches it.
  const DocumentState *Prev =
      IsChange ? S.Doc.get()
               : (Opts.Base ? nullptr : Opts.Snapshot.WarmStart.get());
  const AbortSignal *Sig = T.Ctl ? &T.Ctl->Sig : nullptr;
  std::unique_ptr<DocumentState> Built;
  bool Threw = false;
  try {
    Built = buildDocumentState(S.Name, Text, Version, Opts.DocThreads,
                               Error, Prev, Opts.Base, Sig);
  } catch (const InjectedFault &E) {
    // BuildThrow's recovery path: surviving with the session in a defined
    // state IS the recovery (DESIGN.md §15).
    FaultInjector::instance().noteRecovered(Fault::BuildThrow);
    Threw = true;
    Error = E.what();
  } catch (const std::exception &E) {
    Threw = true;
    Error = E.what();
  }
  if (Threw) {
    // A build that threw (rather than returning an error) is still
    // confined to this request, with the same session guarantees a failed
    // build gives: an open holds no session (the name is immediately
    // reusable), a change keeps answering from its previous version. The
    // generic workerLoop wrapper would catch this too, but could not
    // clean up the half-opened session.
    {
      std::lock_guard<std::mutex> L(StatsM);
      ++IsolatedErrorCount;
    }
    if (!IsChange) {
      std::lock_guard<std::mutex> L(M);
      S.Open = false;
      auto It = Sessions.find(S.Name);
      if (It != Sessions.end() && It->second.get() == &S)
        Sessions.erase(It);
    }
    taskError(T, rpc::InternalError,
              "internal error: " +
                  std::string(IsChange ? "change" : "open") + " of '" +
                  S.Name + "' threw (" + Error + "); document " +
                  (IsChange ? "keeps version " +
                                  std::to_string(S.Doc ? S.Doc->Version : 0)
                            : "not opened"));
    return;
  }
  if (!Built && Sig && Sig->aborted()) {
    // Abandoned, not failed: the session state is exactly what it was —
    // an open holds no session, a change keeps its previous version.
    if (!IsChange) {
      std::lock_guard<std::mutex> L(M);
      S.Open = false;
      auto It = Sessions.find(S.Name);
      if (It != Sessions.end() && It->second.get() == &S)
        Sessions.erase(It);
    }
    respondAborted(T, std::string(IsChange ? "change" : "open") + " of '" +
                          S.Name + "'");
    return;
  }
  if (!Built) {
    {
      std::lock_guard<std::mutex> L(StatsM);
      ++BuildFailCount;
    }
    if (!IsChange) {
      // A document that never had a good build holds no session open.
      std::lock_guard<std::mutex> L(M);
      S.Open = false;
      auto It = Sessions.find(S.Name);
      if (It != Sessions.end() && It->second.get() == &S)
        Sessions.erase(It);
    }
    // On change: the previous DocumentState — text, version, indexes — is
    // untouched; the session keeps answering queries against it.
    taskError(T, rpc::BuildFailed,
              std::string(IsChange ? "change" : "open") +
                  " failed; document " +
                  (IsChange
                       ? "keeps version " +
                             std::to_string(S.Doc ? S.Doc->Version : 0)
                       : "not opened") +
                  ": " + Error);
    return;
  }

  size_t Retained = 0;
  if (IsChange) {
    if (Built->incremental() && S.Doc) {
      // Scoped invalidation: an entry survives the version bump iff its
      // engine inputs are provably unchanged — the type graph matched
      // (or we would not be incremental), its declaration unit's
      // signature *and* bodies are hash-identical, and, when the entry's
      // ranking read the corpus-wide abstract-type solution, that
      // solution carried over (no-op edits only). Survivors are re-keyed
      // to the new version and replayed with it stamped in.
      const bool SolutionShared = Built->sharedSolution();
      const DocumentShape &OldShape = S.Doc->Shape;
      const DocumentShape &NewShape = Built->Shape;
      Retained = Cache.retarget(
          S.Name, Version, [&](const ResultCache::EntryMeta &E) {
            if (E.UsesAbstract && !SolutionShared)
              return false;
            return NewShape.unitUnchanged(OldShape, E.Class);
          });
    } else {
      Cache.invalidate(S.Name);
    }
  }
  double BuiltMs = Built->BuildMillis;
  size_t NumTypes = Built->TS->numTypes();
  size_t NumMethods = Built->TS->numMethods();
  size_t DocBytes = Built->memoryBytes();
  DocumentState::BuildKind Kind = Built->Kind;
  bool Degraded = Built->DegradedMonolithic;
  S.Doc = std::move(Built);
  {
    std::lock_guard<std::mutex> L(StatsM);
    SessionBytes[S.Name] = DocBytes;
    ++BuildCount;
    if (Degraded)
      ++DegradedBuildCount;
    if (Kind == DocumentState::BuildKind::Full) {
      ++FullBuildCount;
    } else {
      ++IncrementalBuildCount;
      ++ReuseTypeSystemCount;
      ++ReuseIndexesCount;
      if (Kind == DocumentState::BuildKind::IncrementalNoop)
        ++ReuseSolutionCount;
      if (!IsChange)
        ++WarmStartCount; // an *open* went incremental: snapshot hit
    }
    CacheRetainedCount += Retained;
    BuildMs.push_back(BuiltMs);
  }

  Value R = Value::object();
  R.set("doc", S.Name);
  R.set("version", Version);
  R.set("types", NumTypes);
  R.set("methods", NumMethods);
  R.set("buildMs", BuiltMs);
  R.set("build", Kind == DocumentState::BuildKind::Full ? "full"
                 : Kind == DocumentState::BuildKind::IncrementalBody
                     ? "incremental-body"
                     : "incremental-noop");
  R.set("cacheRetained", Retained);
  if (Degraded)
    R.set("degraded", "monolithic");
  taskResult(T, std::move(R));
}

void PetalService::execClose(SessionState &S, Task &T) {
  {
    std::lock_guard<std::mutex> L(M);
    if (!S.Open) {
      taskError(T, rpc::UnknownDocument,
                "document '" + S.Name + "' was closed");
      return;
    }
    S.Open = false;
    auto It = Sessions.find(S.Name);
    if (It != Sessions.end() && It->second.get() == &S)
      Sessions.erase(It);
  }
  S.Doc.reset();
  Cache.invalidate(S.Name);
  {
    std::lock_guard<std::mutex> L(StatsM);
    SessionBytes.erase(S.Name);
  }
  taskResult(T, Value());
}

void PetalService::execComplete(SessionState &S, Task &T) {
  {
    std::lock_guard<std::mutex> L(M);
    if (!S.Open) {
      taskError(T, rpc::UnknownDocument,
                "document '" + S.Name + "' was closed");
      return;
    }
  }
  if (!S.Doc) {
    taskError(T, rpc::UnknownDocument,
              "document '" + S.Name + "' has no built version");
    return;
  }

  CompleteSpec Spec;
  std::string Error;
  if (!parseCompleteSpec(T.Params, Spec, Error)) {
    taskError(T, rpc::InvalidParams, Error);
    return;
  }

  if (const Value *V = T.Params.find("version")) {
    if (V->isNumber() && V->intValue() != S.Doc->Version) {
      {
        std::lock_guard<std::mutex> L(StatsM);
        ++StaleCount;
      }
      taskError(T, rpc::ContentModified,
                "stale version " + std::to_string(V->intValue()) +
                    " (current " + std::to_string(S.Doc->Version) + ")");
      return;
    }
  }

  std::string SpecKey = encodeSpecKey(Spec);
  int64_t DocVersion = S.Doc->Version;
  std::string CachedPayload;
  bool Hit = Cache.probe(S.Name, DocVersion, SpecKey, CachedPayload);
  bool FromExplain = false;
  if (!Hit && !Spec.Opts.Explain) {
    // An explain=true payload strictly contains the explain=false answer
    // (same expressions, same scores, plus the per-term breakdowns), so a
    // plain request can be served from the explain variant's entry by
    // stripping the extras on replay.
    CompleteSpec Twin = Spec;
    Twin.Opts.Explain = true;
    Hit = Cache.probe(S.Name, DocVersion, encodeSpecKey(Twin),
                      CachedPayload);
    FromExplain = Hit;
  }
  if (!Hit)
    Cache.noteMiss();
  if (Hit) {
    Value Completions;
    std::string ParseErr;
    bool Ok = json::parse(CachedPayload, Completions, ParseErr);
    (void)Ok;
    assert(Ok && "cache holds only service-serialized results");
    if (FromExplain) {
      // Keep exactly the members a plain run would have produced, in the
      // order it produces them, so the replayed bytes stay identical to a
      // computed plain answer.
      Value Plain = Value::array();
      for (const Value &Item : Completions.elements()) {
        Value P = Value::object();
        if (const Value *E = Item.find("expr"))
          P.set("expr", *E);
        if (const Value *Sc = Item.find("score"))
          P.set("score", *Sc);
        Plain.push(std::move(P));
      }
      Completions = std::move(Plain);
    }
    Value R = Value::object();
    R.set("doc", S.Name);
    R.set("version", DocVersion);
    R.set("completions", std::move(Completions));
    recordLatency(T);
    taskResult(T, std::move(R));
    return;
  }

  // Thread the request's abort signal into the engine: a cancel, expired
  // deadline, or watchdog strike abandons the enumeration at the next
  // score-bucket boundary. Set only now — after the cache key was
  // computed — so the signal can never leak into keying or replay.
  if (T.Ctl)
    Spec.Opts.Abort = &T.Ctl->Sig;
  QueryOutcome O = runCompletion(*S.Doc, Spec);
  if (O.Stats.Abandoned) {
    respondAborted(T, "petal/complete on '" + S.Name + "'");
    return; // partial results: never cached, never returned
  }
  if (!O.Ok) {
    taskError(T, O.ErrCode, O.ErrMsg);
    return;
  }
  {
    std::lock_guard<std::mutex> L(StatsM);
    if (O.Stats.ScoreCeilingHit)
      ++ScoreCeilingHitCount;
    if (O.Explained) {
      ++ExplainedCount;
      for (size_t I = 0; I != NumScoreTerms; ++I)
        TermTotals[I] += O.TermTotals[I];
    }
  }
  // The cached payload is the completions array alone; doc and version are
  // stamped on at replay time, which is what lets retarget() carry an
  // entry across an edit without rewriting its bytes.
  bool UsesAbstract =
      Spec.Opts.UseAbstractTypes && Spec.Opts.Rank.UseAbstractTypes;
  Cache.insert(S.Name, DocVersion, SpecKey,
               {O.ClassQualName, Spec.Method, UsesAbstract},
               O.Completions.write());
  Value R = Value::object();
  R.set("doc", S.Name);
  R.set("version", DocVersion);
  R.set("completions", std::move(O.Completions));
  recordLatency(T);
  taskResult(T, std::move(R));
}

void PetalService::execBlock(Task &T) {
  std::string Token = T.Params.getString("token");
  std::shared_ptr<Gate> G;
  {
    std::lock_guard<std::mutex> L(M);
    auto It = Gates.find(Token);
    if (It == Gates.end()) {
      G = std::make_shared<Gate>();
      Gates[Token] = G;
    } else {
      G = It->second;
    }
  }
  {
    // Poll rather than wait unconditionally: an aborter (cancel, deadline,
    // watchdog) cannot know which gate this task sits on, so the task
    // itself must notice the signal and walk away.
    std::unique_lock<std::mutex> GL(G->GM);
    while (!G->Opened) {
      if (T.Ctl && T.Ctl->Sig.aborted()) {
        GL.unlock();
        respondAborted(T, "$/test/block on '" + Token + "'");
        return;
      }
      G->GCV.wait_for(GL, std::chrono::milliseconds(2));
    }
  }
  Value R = Value::object();
  R.set("released", Token);
  taskResult(T, std::move(R));
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

/// The \p Q-th percentile (nearest-rank) of \p Samples; 0 when empty.
static double percentileOf(std::vector<double> Samples, double Q) {
  if (Samples.empty())
    return 0;
  size_t Rank = static_cast<size_t>(Q / 100.0 *
                                    static_cast<double>(Samples.size() - 1));
  std::nth_element(Samples.begin(),
                   Samples.begin() + static_cast<ptrdiff_t>(Rank),
                   Samples.end());
  return Samples[Rank];
}

json::Value PetalService::statsJson() {
  size_t NumSessions;
  size_t QueueDepth;
  size_t QueueHigh, StrandHigh, ExecutingNow;
  {
    std::lock_guard<std::mutex> L(M);
    NumSessions = Sessions.size();
    QueueDepth = Outstanding;
    QueueHigh = QueueHighWater;
    StrandHigh = StrandHighWater;
    ExecutingNow = Executing.size();
  }
  uint64_t Received, Queries, Cancelled, Deadline, Stale, Errors, Builds,
      BuildFails, Explained, CeilingHits, FullBuilds, IncBuilds, ReuseTS,
      ReuseIdx, ReuseSol, Retained, WarmStarts, Evictions;
  uint64_t Shed, Abandoned, Isolated, Watchdogged, CancelledLive, Degraded;
  size_t OverlayBytes = 0;
  std::array<uint64_t, NumScoreTerms> Terms{};
  std::vector<double> Lat, Bld;
  {
    std::lock_guard<std::mutex> L(StatsM);
    Received = ReceivedCount;
    Queries = QueryCount;
    Cancelled = CancelledCount;
    Deadline = DeadlineCount;
    Stale = StaleCount;
    Errors = ErrorCount;
    Builds = BuildCount;
    BuildFails = BuildFailCount;
    Explained = ExplainedCount;
    CeilingHits = ScoreCeilingHitCount;
    FullBuilds = FullBuildCount;
    IncBuilds = IncrementalBuildCount;
    ReuseTS = ReuseTypeSystemCount;
    ReuseIdx = ReuseIndexesCount;
    ReuseSol = ReuseSolutionCount;
    Retained = CacheRetainedCount;
    WarmStarts = WarmStartCount;
    Evictions = EvictedCount;
    Shed = ShedCount;
    Abandoned = DeadlineAbandonedCount;
    Isolated = IsolatedErrorCount;
    Watchdogged = WatchdogFiredCount;
    CancelledLive = CancelledInFlightCount;
    Degraded = DegradedBuildCount;
    for (const auto &[Name, Bytes] : SessionBytes)
      OverlayBytes += Bytes;
    Terms = TermTotals;
    Lat = LatencyMs;
    Bld = BuildMs;
  }
  uint64_t Hits = Cache.hits(), Misses = Cache.misses();

  Value CacheV = Value::object();
  CacheV.set("size", Cache.size());
  CacheV.set("capacity", Cache.capacity());
  CacheV.set("hits", Hits);
  CacheV.set("misses", Misses);
  CacheV.set("hitRate", Hits + Misses == 0
                            ? 0.0
                            : static_cast<double>(Hits) /
                                  static_cast<double>(Hits + Misses));

  Value LatV = Value::object();
  LatV.set("count", Lat.size());
  LatV.set("p50", percentileOf(Lat, 50));
  LatV.set("p90", percentileOf(Lat, 90));
  LatV.set("p99", percentileOf(Lat, 99));
  LatV.set("max", Lat.empty() ? 0.0
                              : *std::max_element(Lat.begin(), Lat.end()));

  Value R = Value::object();
  R.set("service", "petald");
  R.set("workers", Opts.Workers);
  R.set("docThreads", Opts.DocThreads);
  R.set("sessions", NumSessions);
  R.set("maxSessions", Opts.MaxSessions);
  R.set("evictions", Evictions);
  R.set("outstanding", QueueDepth);
  R.set("received", Received);
  R.set("queries", Queries);
  R.set("cancelled", Cancelled);
  R.set("deadlineExpired", Deadline);
  R.set("staleRejected", Stale);
  R.set("errors", Errors);
  R.set("builds", Builds);
  R.set("buildFailures", BuildFails);
  R.set("scoreCeilingHits", CeilingHits);

  // Per-term cost aggregates over explained completions: the live
  // sensitivity view — which Fig. 7 terms are actually separating
  // candidates in this workload.
  Value TermsV = Value::object();
  for (ScoreTerm Term : AllScoreTerms)
    TermsV.set(std::string(1, scoreTermLetter(Term)),
               Terms[static_cast<size_t>(Term)]);
  Value ExplainV = Value::object();
  ExplainV.set("queries", Explained);
  ExplainV.set("termTotals", std::move(TermsV));
  R.set("explain", std::move(ExplainV));

  // Document-build telemetry: how edits are being served. Healthy editing
  // sessions show builds.incremental tracking body-only edits, the reuse
  // counters confirming which layers carried over, and buildMs.p50 far
  // below the full-build cost (the point of DESIGN.md §12).
  Value BuildsV = Value::object();
  BuildsV.set("total", Builds);
  BuildsV.set("full", FullBuilds);
  BuildsV.set("incremental", IncBuilds);
  Value ReuseV = Value::object();
  ReuseV.set("typesystem", ReuseTS);
  ReuseV.set("indexes", ReuseIdx);
  ReuseV.set("solution", ReuseSol);
  Value BuildMsV = Value::object();
  BuildMsV.set("count", Bld.size());
  BuildMsV.set("p50", percentileOf(Bld, 50));
  BuildMsV.set("p95", percentileOf(Bld, 95));
  Value DocsV = Value::object();
  DocsV.set("builds", std::move(BuildsV));
  DocsV.set("reuse", std::move(ReuseV));
  DocsV.set("buildMs", std::move(BuildMsV));
  DocsV.set("cacheRetained", Retained);
  R.set("documents", std::move(DocsV));

  // Snapshot warm-start telemetry: whether a snapshot is live, what it
  // cost to load, and how many opens it has served incrementally. When a
  // requested snapshot was rejected, fallbackReason says why the daemon is
  // running cold.
  Value SnapV = Value::object();
  SnapV.set("loaded", Opts.Snapshot.Loaded);
  SnapV.set("loadMs", Opts.Snapshot.LoadMillis);
  SnapV.set("bytes", Opts.Snapshot.Bytes);
  SnapV.set("mapped", Opts.Snapshot.Mapped);
  SnapV.set("warmStarts", WarmStarts);
  if (!Opts.Snapshot.FallbackReason.empty())
    SnapV.set("fallbackReason", Opts.Snapshot.FallbackReason);
  R.set("snapshot", std::move(SnapV));

  // Workspace memory accounting: the shared base corpus is one copy no
  // matter how many sessions are open; each session adds only its overlay
  // delta. The base figure is a property of Opts (immutable after
  // construction), the overlay figure sums the per-session bytes the
  // build path records.
  size_t BaseBytes = Opts.Base ? Opts.Base->memoryBytes() : 0;
  Value MemV = Value::object();
  MemV.set("baseBytes", BaseBytes);
  MemV.set("overlayBytes", OverlayBytes);
  MemV.set("totalBytes", BaseBytes + OverlayBytes);
  R.set("memory", std::move(MemV));

  // Robustness telemetry: what the backpressure, isolation, watchdog, and
  // degradation machinery is doing, plus the fault injector's ledger (the
  // injected == recovered invariant is the chaos tests' core assertion).
  Value HealthV = Value::object();
  HealthV.set("shedRequests", Shed);
  HealthV.set("deadlineAbandoned", Abandoned);
  HealthV.set("isolatedErrors", Isolated);
  HealthV.set("watchdogFired", Watchdogged);
  HealthV.set("cancelledInFlight", CancelledLive);
  HealthV.set("degradedBuilds", Degraded);
  HealthV.set("faultsInjected", FaultInjector::instance().injectedTotal());
  HealthV.set("faultsRecovered", FaultInjector::instance().recoveredTotal());
  HealthV.set("queueHighWater", QueueHigh);
  HealthV.set("strandHighWater", StrandHigh);
  HealthV.set("executing", ExecutingNow);
  R.set("health", std::move(HealthV));

  R.set("cache", std::move(CacheV));
  R.set("latencyMs", std::move(LatV));
  return R;
}

//===----------------------------------------------------------------------===//
// Transport loop
//===----------------------------------------------------------------------===//

void petal::serveStream(std::istream &In, std::ostream &Out,
                        const PetalService::Options &Opts) {
  FramedWriter Writer(Out);
  PetalService Service(Opts, [&Writer](const Value &Message) {
    Writer.write(Message.write());
  });
  FramedReader Reader(In, Opts.MaxFrameBytes);
  std::string Payload;
  for (;;) {
    FramedReader::Status St = Reader.read(Payload);
    if (St == FramedReader::Status::Eof)
      break;
    if (St == FramedReader::Status::Error) {
      // A framing violation leaves the stream position unknown — tell the
      // client why, then drop the connection. (Garbage *payloads* inside
      // well-formed frames are answered with ParseError by handleMessage
      // and the connection continues; only broken framing is fatal.)
      Writer.write(rpc::makeError(rpc::RequestId(), rpc::ParseError,
                                  "framing error: " + Reader.message())
                       .write());
      break;
    }
    if (!Service.handleMessage(Payload))
      break; // exit requested
  }
  Service.waitIdle(); // drain in-flight work before tearing down
}
