//===- partial/Semantics.cpp - Executable Fig. 6 semantics ----------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "partial/Semantics.h"

#include "code/ExprPrinter.h"
#include "model/TypeSystem.h"

#include <algorithm>
#include <limits>

using namespace petal;

namespace {

/// One trailing lookup step of a candidate spine.
struct SpineStep {
  bool IsField;
};

/// Derivability checker for one (program, site) context.
class Checker {
public:
  Checker(const Program &P, const CodeSite &Site)
      : TS(P.typeSystem()), Site(Site) {}

  bool check(const PartialExpr *Q, const Expr *C) {
    switch (Q->kind()) {
    case PartialKind::DontCare:
      // `0` is never filled in (Fig. 6 treats it as inert).
      return isa<DontCareExpr>(C) || fail("a 0 subexpression was filled in");

    case PartialKind::Concrete:
      return exprEquals(cast<ConcretePE>(Q)->expr(), C) ||
             fail("concrete subexpression was changed");

    case PartialKind::Hole: {
      // ? ~> v.?*m for a live local or global v: any number of member
      // steps over an in-scope root.
      const Expr *Root = C;
      while (isLookupStep(Root, /*MethodsAllowed=*/true))
        Root = stepBase(Root);
      return isLiveRoot(Root) ||
             fail("hole completed from a value not in scope");
    }

    case PartialKind::Suffix: {
      const auto *S = cast<SuffixPE>(Q);
      bool Methods = suffixAllowsMethods(S->suffix());
      size_t MaxSteps = isStarSuffix(S->suffix())
                            ? std::numeric_limits<size_t>::max()
                            : 1;
      // Try every admissible split: strip 0..MaxSteps trailing lookups and
      // check the remaining prefix against the base.
      const Expr *Prefix = C;
      size_t Steps = 0;
      while (true) {
        if (check(S->base(), Prefix))
          return true;
        if (Steps == MaxSteps || !isLookupStep(Prefix, Methods))
          break;
        Prefix = stepBase(Prefix);
        ++Steps;
      }
      return fail("no admissible suffix split");
    }

    case PartialKind::UnknownCall: {
      const auto *U = cast<UnknownCallPE>(Q);
      const auto *Call = dyn_cast<CallExpr>(C);
      if (!Call)
        return fail("unknown-call query completed to a non-call");
      std::vector<const Expr *> Slots = callSignatureArgs(Call);
      if (Slots.size() < U->args().size())
        return fail("call has fewer positions than given arguments");
      // Injective assignment of query args to positions; every unassigned
      // position must be `0` (Fig. 6: e_j = 0 for j > n).
      std::vector<bool> Used(Slots.size(), false);
      if (!assignArgs(U->args(), 0, Slots, Used))
        return fail("no injective placement of the given arguments");
      return true;
    }

    case PartialKind::KnownCall: {
      const auto *K = cast<KnownCallPE>(Q);
      const auto *Call = dyn_cast<CallExpr>(C);
      if (!Call)
        return fail("known-call query completed to a non-call");
      if (TS.method(Call->method()).Name != K->name())
        return fail("completed call has a different method name");
      std::vector<const Expr *> Slots = callSignatureArgs(Call);
      if (Slots.size() != K->args().size())
        return fail("argument count mismatch");
      for (size_t I = 0; I != Slots.size(); ++I)
        if (!check(K->args()[I], Slots[I]))
          return false;
      return true;
    }

    case PartialKind::Compare: {
      const auto *Cmp = cast<ComparePE>(Q);
      const auto *CC = dyn_cast<CompareExpr>(C);
      if (!CC || CC->op() != Cmp->op())
        return fail("comparison shape mismatch");
      return check(Cmp->lhs(), CC->lhs()) && check(Cmp->rhs(), CC->rhs());
    }

    case PartialKind::Assign: {
      const auto *As = cast<AssignPE>(Q);
      const auto *AC = dyn_cast<AssignExpr>(C);
      if (!AC)
        return fail("assignment shape mismatch");
      return check(As->lhs(), AC->lhs()) && check(As->rhs(), AC->rhs());
    }
    }
    return fail("unknown partial-expression kind");
  }

  std::string reason() const { return Reason; }

private:
  bool fail(std::string Why) {
    if (Reason.empty())
      Reason = std::move(Why);
    return false;
  }

  /// True if \p E's outermost node is a `.?`-style lookup step: an instance
  /// field access or (when \p MethodsAllowed) a nullary instance call.
  bool isLookupStep(const Expr *E, bool MethodsAllowed) const {
    if (const auto *FA = dyn_cast<FieldAccessExpr>(E))
      return !isa<TypeRefExpr>(FA->base());
    if (!MethodsAllowed)
      return false;
    if (const auto *C = dyn_cast<CallExpr>(E))
      return C->args().empty() && C->receiver() != nullptr;
    return false;
  }

  const Expr *stepBase(const Expr *E) const {
    if (const auto *FA = dyn_cast<FieldAccessExpr>(E))
      return FA->base();
    return cast<CallExpr>(E)->receiver();
  }

  /// The "live local or global variable" roots of the `?` rule.
  bool isLiveRoot(const Expr *E) const {
    switch (E->kind()) {
    case ExprKind::Var: {
      if (!Site.Method)
        return false;
      size_t Limit = std::min(Site.StmtIndex, Site.Method->body().size());
      std::vector<unsigned> Scope = Site.Method->localsInScopeAt(Limit);
      return std::find(Scope.begin(), Scope.end(),
                       cast<VarExpr>(E)->slot()) != Scope.end();
    }
    case ExprKind::This:
      return Site.Method && !TS.method(Site.Method->decl()).IsStatic;
    case ExprKind::FieldAccess: {
      const auto *FA = cast<FieldAccessExpr>(E);
      return isa<TypeRefExpr>(FA->base()) && TS.field(FA->field()).IsStatic;
    }
    case ExprKind::Call: {
      const auto *C = cast<CallExpr>(E);
      return !C->receiver() && C->args().empty();
    }
    default:
      return false;
    }
  }

  static std::vector<const Expr *> callSignatureArgs(const CallExpr *Call) {
    std::vector<const Expr *> Out;
    if (Call->receiver())
      Out.push_back(Call->receiver());
    Out.insert(Out.end(), Call->args().begin(), Call->args().end());
    return Out;
  }

  /// Backtracking search: assign query args [I..) to unused slots such that
  /// each slot completion is derivable, and finally every unused slot is 0.
  bool assignArgs(const std::vector<const PartialExpr *> &Args, size_t I,
                  const std::vector<const Expr *> &Slots,
                  std::vector<bool> &Used) {
    if (I == Args.size()) {
      for (size_t S = 0; S != Slots.size(); ++S)
        if (!Used[S] && !isa<DontCareExpr>(Slots[S]))
          return false;
      return true;
    }
    for (size_t S = 0; S != Slots.size(); ++S) {
      if (Used[S])
        continue;
      std::string Saved = std::move(Reason);
      Reason.clear();
      bool Ok = check(Args[I], Slots[S]);
      Reason = std::move(Saved);
      if (!Ok)
        continue;
      Used[S] = true;
      if (assignArgs(Args, I + 1, Slots, Used))
        return true;
      Used[S] = false;
    }
    return false;
  }

  const TypeSystem &TS;
  CodeSite Site;
  std::string Reason;
};

} // namespace

bool petal::isDerivableCompletion(const Program &P, const CodeSite &Site,
                                  const PartialExpr *Query,
                                  const Expr *Candidate, std::string *Why) {
  Checker C(P, Site);
  bool Ok = C.check(Query, Candidate);
  if (!Ok && Why)
    *Why = C.reason();
  return Ok;
}
