//===- partial/PartialExpr.h - Partial-expression AST -----------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The partial expression language of the paper (Fig. 5b):
///
///   ee     ::= ea | ? | 0
///   ea     ::= e | ea.?f | ea.?*f | ea.?m | ea.?*m | ccall
///            | ee := ee | ee < ee
///   ccall  ::= ?({ee1, ..., een}) | methodName(ee1, ..., een)
///
/// `?` is a hole to fill with any reachable value; `0` is a don't-care to be
/// left alone; the `.?` suffixes ask for zero or one (`.?f`/`.?m`) or any
/// number (`.?*f`/`.?*m`) of trailing field lookups (`f`) or field lookups
/// and zero-argument instance method calls (`m`); `?({...})` is a call to an
/// unknown method whose given arguments may be reordered and interleaved
/// with extra `0` arguments.
///
/// Nodes are immutable and arena-allocated, like the complete-expression AST.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_PARTIAL_PARTIALEXPR_H
#define PETAL_PARTIAL_PARTIALEXPR_H

#include "code/Expr.h"
#include "model/Ids.h"
#include "support/Casting.h"

#include <string>
#include <vector>

namespace petal {

/// Discriminator for the PartialExpr hierarchy.
enum class PartialKind {
  Hole,        ///< `?`
  DontCare,    ///< `0`
  Concrete,    ///< a complete expression used verbatim
  Suffix,      ///< `base.?f` / `base.?*f` / `base.?m` / `base.?*m`
  UnknownCall, ///< `?({ee1, ..., een})`
  KnownCall,   ///< `methodName(ee1, ..., een)`
  Compare,     ///< `ee < ee` (any comparison operator)
  Assign,      ///< `ee := ee`
};

/// The four lookup-suffix forms (§3).
enum class SuffixKind {
  Field,      ///< `.?f`  — zero or one field lookup
  FieldStar,  ///< `.?*f` — any number of field lookups
  Member,     ///< `.?m`  — zero or one field lookup or 0-arg method call
  MemberStar, ///< `.?*m` — any number of the above
};

/// True for the `*`-forms that complete to arbitrarily long chains.
inline bool isStarSuffix(SuffixKind K) {
  return K == SuffixKind::FieldStar || K == SuffixKind::MemberStar;
}

/// True for the `m`-forms that also admit zero-argument instance methods.
inline bool suffixAllowsMethods(SuffixKind K) {
  return K == SuffixKind::Member || K == SuffixKind::MemberStar;
}

/// Surface spelling of a suffix (".?f", ".?*m", ...).
const char *suffixSpelling(SuffixKind K);

/// Base class of all partial expressions.
class PartialExpr {
public:
  PartialKind kind() const { return Kind; }

protected:
  explicit PartialExpr(PartialKind Kind) : Kind(Kind) {}

private:
  PartialKind Kind;
};

/// `?` — fill in any reachable value. Interpreted as `vars.?*m` where `vars`
/// ranges over locals, parameters, `this`, and globals (§4.2).
class HolePE : public PartialExpr {
public:
  HolePE() : PartialExpr(PartialKind::Hole) {}

  static bool classof(const PartialExpr *P) {
    return P->kind() == PartialKind::Hole;
  }
};

/// `0` — leave alone; completes to a DontCareExpr.
class DontCarePE : public PartialExpr {
public:
  DontCarePE() : PartialExpr(PartialKind::DontCare) {}

  static bool classof(const PartialExpr *P) {
    return P->kind() == PartialKind::DontCare;
  }
};

/// A complete expression used verbatim inside a query.
class ConcretePE : public PartialExpr {
public:
  explicit ConcretePE(const Expr *E)
      : PartialExpr(PartialKind::Concrete), E(E) {}

  const Expr *expr() const { return E; }

  static bool classof(const PartialExpr *P) {
    return P->kind() == PartialKind::Concrete;
  }

private:
  const Expr *E;
};

/// `base.?f`, `base.?*f`, `base.?m`, `base.?*m`.
class SuffixPE : public PartialExpr {
public:
  SuffixPE(const PartialExpr *Base, SuffixKind Suffix)
      : PartialExpr(PartialKind::Suffix), Base(Base), Suffix(Suffix) {}

  const PartialExpr *base() const { return Base; }
  SuffixKind suffix() const { return Suffix; }

  static bool classof(const PartialExpr *P) {
    return P->kind() == PartialKind::Suffix;
  }

private:
  const PartialExpr *Base;
  SuffixKind Suffix;
};

/// `?({ee1, ..., een})` — a call to an unknown method taking the given
/// arguments in some order, possibly with extra don't-care arguments.
class UnknownCallPE : public PartialExpr {
public:
  explicit UnknownCallPE(std::vector<const PartialExpr *> Args)
      : PartialExpr(PartialKind::UnknownCall), Args(std::move(Args)) {}

  const std::vector<const PartialExpr *> &args() const { return Args; }

  static bool classof(const PartialExpr *P) {
    return P->kind() == PartialKind::UnknownCall;
  }

private:
  std::vector<const PartialExpr *> Args;
};

/// `methodName(ee1, ..., een)` — a call to a known method name with ordered
/// (possibly partial) arguments. The receiver, if any, is argument 0, per
/// the receiver-as-first-argument convention. The name is resolved against
/// the query context; `Resolved` may pre-seed the overload set (used by the
/// evaluation harness, which knows the ground-truth callee).
class KnownCallPE : public PartialExpr {
public:
  KnownCallPE(std::string Name, std::vector<const PartialExpr *> Args,
              std::vector<MethodId> Resolved = {})
      : PartialExpr(PartialKind::KnownCall), Name(std::move(Name)),
        Args(std::move(Args)), Resolved(std::move(Resolved)) {}

  const std::string &name() const { return Name; }
  const std::vector<const PartialExpr *> &args() const { return Args; }
  const std::vector<MethodId> &resolved() const { return Resolved; }

  static bool classof(const PartialExpr *P) {
    return P->kind() == PartialKind::KnownCall;
  }

private:
  std::string Name;
  std::vector<const PartialExpr *> Args;
  std::vector<MethodId> Resolved;
};

/// `ee1 op ee2` for a comparison operator.
class ComparePE : public PartialExpr {
public:
  ComparePE(CompareOp Op, const PartialExpr *Lhs, const PartialExpr *Rhs)
      : PartialExpr(PartialKind::Compare), Op(Op), Lhs(Lhs), Rhs(Rhs) {}

  CompareOp op() const { return Op; }
  const PartialExpr *lhs() const { return Lhs; }
  const PartialExpr *rhs() const { return Rhs; }

  static bool classof(const PartialExpr *P) {
    return P->kind() == PartialKind::Compare;
  }

private:
  CompareOp Op;
  const PartialExpr *Lhs;
  const PartialExpr *Rhs;
};

/// `ee1 := ee2`.
class AssignPE : public PartialExpr {
public:
  AssignPE(const PartialExpr *Lhs, const PartialExpr *Rhs)
      : PartialExpr(PartialKind::Assign), Lhs(Lhs), Rhs(Rhs) {}

  const PartialExpr *lhs() const { return Lhs; }
  const PartialExpr *rhs() const { return Rhs; }

  static bool classof(const PartialExpr *P) {
    return P->kind() == PartialKind::Assign;
  }

private:
  const PartialExpr *Lhs;
  const PartialExpr *Rhs;
};

/// Renders a partial expression in query syntax (`?({img, size})`,
/// `point.?*m >= this.?*m`, ...).
std::string printPartialExpr(const TypeSystem &TS, const PartialExpr *P);

/// True if \p P contains no holes, suffixes, or unknown calls anywhere —
/// i.e. it denotes exactly one complete expression.
bool isFullyConcrete(const PartialExpr *P);

} // namespace petal

#endif // PETAL_PARTIAL_PARTIALEXPR_H
