//===- partial/Semantics.h - Executable Fig. 6 semantics --------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Fig. 6 gives the semantics of partial expressions as a
/// nondeterministic small-step relation  ee ~> ee  whose normal forms are
/// complete expressions (with `0` subexpressions allowed to remain). This
/// module implements the relation *as a checker*: given a partial
/// expression and a candidate complete expression, decide whether the
/// candidate is derivable, rule by rule:
///
///   e.?         ~> e                    (any suffix may be dropped)
///   e.?m        ~> e.m()  |  e.?f
///   e.?f        ~> e.f
///   e.?*f       ~> e.?f.?*f             (unbounded repetition)
///   e.?*m       ~> e.?m.?*m
///   ?({es})     ~> m(e_s1, ..., e_sk)   (some ordering; 0-padded)
///   ?           ~> v.?*m                (v a live local or global)
///
/// The completion engine must only ever produce derivable completions; the
/// tests verify this over engine output, making Fig. 6 an executable
/// specification rather than documentation.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_PARTIAL_SEMANTICS_H
#define PETAL_PARTIAL_SEMANTICS_H

#include "code/Code.h"
#include "partial/PartialExpr.h"

#include <string>

namespace petal {

/// Decides whether \p Candidate is a Fig. 6 completion of \p Query at
/// \p Site (the site supplies the live locals/globals the `?` rule may
/// introduce). On rejection, \p Why (if non-null) receives the reason.
///
/// This checks *derivability only*; type-correctness is a separate
/// side-condition checked by verifyExpr.
bool isDerivableCompletion(const Program &P, const CodeSite &Site,
                           const PartialExpr *Query, const Expr *Candidate,
                           std::string *Why = nullptr);

} // namespace petal

#endif // PETAL_PARTIAL_SEMANTICS_H
