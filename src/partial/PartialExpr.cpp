//===- partial/PartialExpr.cpp - Partial-expression AST -------------------===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "partial/PartialExpr.h"

#include "code/ExprPrinter.h"

using namespace petal;

const char *petal::suffixSpelling(SuffixKind K) {
  switch (K) {
  case SuffixKind::Field:
    return ".?f";
  case SuffixKind::FieldStar:
    return ".?*f";
  case SuffixKind::Member:
    return ".?m";
  case SuffixKind::MemberStar:
    return ".?*m";
  }
  return ".?";
}

static void printInto(const TypeSystem &TS, const PartialExpr *P,
                      std::string &Out) {
  switch (P->kind()) {
  case PartialKind::Hole:
    Out.push_back('?');
    return;
  case PartialKind::DontCare:
    Out.push_back('0');
    return;
  case PartialKind::Concrete:
    Out += printExpr(TS, cast<ConcretePE>(P)->expr());
    return;
  case PartialKind::Suffix: {
    const auto *S = cast<SuffixPE>(P);
    printInto(TS, S->base(), Out);
    Out += suffixSpelling(S->suffix());
    return;
  }
  case PartialKind::UnknownCall: {
    const auto *U = cast<UnknownCallPE>(P);
    Out += "?({";
    for (size_t I = 0; I != U->args().size(); ++I) {
      if (I)
        Out += ", ";
      printInto(TS, U->args()[I], Out);
    }
    Out += "})";
    return;
  }
  case PartialKind::KnownCall: {
    const auto *K = cast<KnownCallPE>(P);
    Out += K->name();
    Out.push_back('(');
    for (size_t I = 0; I != K->args().size(); ++I) {
      if (I)
        Out += ", ";
      printInto(TS, K->args()[I], Out);
    }
    Out.push_back(')');
    return;
  }
  case PartialKind::Compare: {
    const auto *C = cast<ComparePE>(P);
    printInto(TS, C->lhs(), Out);
    Out.push_back(' ');
    Out += compareOpSpelling(C->op());
    Out.push_back(' ');
    printInto(TS, C->rhs(), Out);
    return;
  }
  case PartialKind::Assign: {
    const auto *A = cast<AssignPE>(P);
    printInto(TS, A->lhs(), Out);
    Out += " = ";
    printInto(TS, A->rhs(), Out);
    return;
  }
  }
}

std::string petal::printPartialExpr(const TypeSystem &TS,
                                    const PartialExpr *P) {
  std::string Out;
  printInto(TS, P, Out);
  return Out;
}

bool petal::isFullyConcrete(const PartialExpr *P) {
  switch (P->kind()) {
  case PartialKind::Hole:
  case PartialKind::Suffix:
  case PartialKind::UnknownCall:
    return false;
  case PartialKind::DontCare:
  case PartialKind::Concrete:
    return true;
  case PartialKind::KnownCall: {
    const auto *K = cast<KnownCallPE>(P);
    for (const PartialExpr *Arg : K->args())
      if (!isFullyConcrete(Arg))
        return false;
    return true;
  }
  case PartialKind::Compare: {
    const auto *C = cast<ComparePE>(P);
    return isFullyConcrete(C->lhs()) && isFullyConcrete(C->rhs());
  }
  case PartialKind::Assign: {
    const auto *A = cast<AssignPE>(P);
    return isFullyConcrete(A->lhs()) && isFullyConcrete(A->rhs());
  }
  }
  return false;
}
