//===- model/TypeSystem.h - Framework metadata model ------------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framework-metadata substrate: namespaces, types (classes, interfaces,
/// structs, enums, primitives), fields/properties, and methods, together with
/// the subtype / implicit-conversion relation and the paper's *type distance*
/// function td(a, b) (§4.1):
///
///   td(a, b) = 0                          if a == b
///            = 1 + min over declared immediate supertypes s of td(s, b)
///            = undefined                  if there is no implicit conversion
///
/// Primitive types participate through their widening chain (byte -> short ->
/// int -> long -> float -> double, char -> int), whose final element's
/// supertype is Object (modelling boxing), so td is total on convertible
/// pairs. The paper's authors consumed this information from .NET binaries
/// via CCI; petal exposes the same facts from an in-memory model that the
/// parser and the synthetic corpus generator populate.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_MODEL_TYPESYSTEM_H
#define PETAL_MODEL_TYPESYSTEM_H

#include "model/Ids.h"
#include "support/Span.h"

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace petal {

/// Classification of a type declaration.
enum class TypeKind {
  Class,
  Interface,
  Struct,
  Enum,
  Primitive,
  Void,
};

/// A namespace; namespaces form a forest rooted at the global namespace
/// (id 0, empty name).
struct NamespaceInfo {
  std::string FullName;              ///< Dotted path; empty for the root.
  std::vector<std::string> Segments; ///< FullName split on '.'.
  NamespaceId Parent = InvalidId;    ///< Enclosing namespace; InvalidId for root.
};

/// A field or property. Properties are, per the paper (footnote 1), treated
/// exactly like fields.
struct FieldInfo {
  std::string Name;
  TypeId Owner = InvalidId;
  TypeId Type = InvalidId;
  bool IsStatic = false;
  bool IsProperty = false;
};

/// A formal parameter of a method.
struct ParamInfo {
  std::string Name;
  TypeId Type = InvalidId;
};

/// A method. `Params` holds the declared parameters only; for instance
/// methods the receiver is exposed as an implicit first argument of the
/// *call signature* (see TypeSystem::callParamTypes), matching the paper's
/// receiver-as-first-argument convention (§3).
struct MethodInfo {
  std::string Name;
  TypeId Owner = InvalidId;
  TypeId ReturnType = InvalidId;
  std::vector<ParamInfo> Params;
  bool IsStatic = false;
};

/// A type declaration.
struct TypeInfo {
  std::string Name;                 ///< Simple (unqualified) name.
  NamespaceId Namespace = 0;
  TypeKind Kind = TypeKind::Class;
  TypeId BaseClass = InvalidId;     ///< Direct base; InvalidId for Object/void.
  std::vector<TypeId> Interfaces;   ///< Directly implemented interfaces.
  std::vector<FieldId> Fields;      ///< Declared fields (not inherited).
  std::vector<MethodId> Methods;    ///< Declared methods (not inherited).
  /// For primitives: the next type in the widening chain (InvalidId at the
  /// chain end, where the supertype becomes Object).
  TypeId WideningTarget = InvalidId;
  /// True if values of this type support the relational operators. Numeric
  /// primitives and enums are comparable implicitly; classes/structs can be
  /// flagged (modelling IComparable / user-defined operators).
  bool IsComparable = false;
};

/// The mutable framework model. Construction installs Object, void, and the
/// primitive types; the parser and corpus generator add everything else.
///
/// A TypeSystem can also be constructed as an *overlay* over a frozen base
/// layer (the base/overlay workspace model, DESIGN.md §14): the overlay
/// starts out holding every entity of the base — same ids, same builtins —
/// but stores locally only what is added afterwards. Entity ids continue
/// the base numbering, so an overlay plus its base is indistinguishable
/// from one monolithic model that resolved the base source first; accessors
/// dispatch on the id range. The base is shared read-only (many overlays,
/// concurrent queries) and must have had warmRelationCaches() or
/// freezeDenseDistances() run before overlays attach; mutators assert they
/// only ever touch overlay-layer entities.
class TypeSystem {
public:
  TypeSystem();

  /// Constructs an overlay extending \p BaseLayer (non-null). The overlay
  /// answers base×base relation queries from the base (dense matrix or
  /// warmed lazy caches) and keeps sparse local caches for overlay types
  /// only; it never mutates the base.
  explicit TypeSystem(std::shared_ptr<const TypeSystem> BaseLayer);

  //===--------------------------------------------------------------------===
  // Construction
  //===--------------------------------------------------------------------===

  /// Interns the namespace with the given dotted \p FullName (creating all
  /// ancestors) and returns its id. The empty name is the root namespace.
  NamespaceId getOrAddNamespace(const std::string &FullName);

  /// Adds a type with simple name \p Name in \p Ns. Classes default to base
  /// Object; pass an explicit \p Base to override. Returns the new id.
  /// Adding a type whose qualified name already exists is a programming
  /// error (asserts).
  TypeId addType(const std::string &Name, NamespaceId Ns, TypeKind Kind,
                 TypeId Base = InvalidId);

  /// Adds a field/property to \p Owner.
  FieldId addField(TypeId Owner, const std::string &Name, TypeId Type,
                   bool IsStatic = false, bool IsProperty = false);

  /// Adds a method to \p Owner.
  MethodId addMethod(TypeId Owner, const std::string &Name, TypeId ReturnType,
                     std::vector<ParamInfo> Params, bool IsStatic = false);

  /// Marks \p T as supporting relational comparison.
  void setComparable(TypeId T, bool Value = true);

  /// Re-points the base class of \p T (used by the resolver, which registers
  /// all types before resolving base-class names).
  void setBaseClass(TypeId T, TypeId Base);

  /// Adds \p Iface to the interface list of \p T.
  void addInterface(TypeId T, TypeId Iface);

  //===--------------------------------------------------------------------===
  // Entity access
  //===--------------------------------------------------------------------===

  const TypeInfo &type(TypeId T) const {
    return static_cast<size_t>(T) < NumBaseTypes ? Base->Types[T]
                                                 : Types[T - NumBaseTypes];
  }
  const FieldInfo &field(FieldId F) const {
    return static_cast<size_t>(F) < NumBaseFields ? Base->Fields[F]
                                                  : Fields[F - NumBaseFields];
  }
  const MethodInfo &method(MethodId M) const {
    return static_cast<size_t>(M) < NumBaseMethods
               ? Base->Methods[M]
               : Methods[M - NumBaseMethods];
  }
  const NamespaceInfo &nspace(NamespaceId N) const {
    return static_cast<size_t>(N) < NumBaseNamespaces
               ? Base->Namespaces[N]
               : Namespaces[N - NumBaseNamespaces];
  }

  /// The shared base layer this model overlays, or null for a monolithic
  /// model. Overlay entity ids start at numBaseTypes()/numBaseFields()/...
  const TypeSystem *baseLayer() const { return Base.get(); }
  size_t numBaseTypes() const { return NumBaseTypes; }
  size_t numBaseFields() const { return NumBaseFields; }
  size_t numBaseMethods() const { return NumBaseMethods; }
  size_t numBaseNamespaces() const { return NumBaseNamespaces; }

  /// A cheap structural fingerprint: the entity counts. Every mutator grows
  /// one of them, so an unchanged fingerprint across an operation that was
  /// *supposed* to be read-only (e.g. re-resolving method bodies against a
  /// type system shared with a previous document version — see
  /// Resolver::resolveFileReusingDecls) is a usable "nothing was added"
  /// check. It deliberately stays O(1); content equality is the job of the
  /// declaration-unit hashes (parser/DeclUnits.h).
  struct Fingerprint {
    size_t Types = 0;
    size_t Fields = 0;
    size_t Methods = 0;
    size_t Namespaces = 0;
    bool operator==(const Fingerprint &) const = default;
  };
  Fingerprint fingerprint() const {
    return {numTypes(), numFields(), numMethods(), numNamespaces()};
  }

  // Entity counts are totals (base + overlay), so id-order iteration loops
  // over [0, numX()) enumerate both layers exactly as a monolithic model
  // would — the property the bit-identity guarantee rests on.
  size_t numTypes() const { return NumBaseTypes + Types.size(); }
  size_t numFields() const { return NumBaseFields + Fields.size(); }
  size_t numMethods() const { return NumBaseMethods + Methods.size(); }
  size_t numNamespaces() const { return NumBaseNamespaces + Namespaces.size(); }

  /// Approximate heap bytes owned by *this layer* (an overlay reports only
  /// its delta; the shared base is not re-counted). Feeds the $/stats
  /// "memory" block.
  size_t memoryBytes() const;

  /// Built-in type ids.
  TypeId objectType() const { return ObjectTy; }
  TypeId voidType() const { return VoidTy; }
  TypeId intType() const { return IntTy; }
  TypeId longType() const { return LongTy; }
  TypeId shortType() const { return ShortTy; }
  TypeId byteType() const { return ByteTy; }
  TypeId charType() const { return CharTy; }
  TypeId floatType() const { return FloatTy; }
  TypeId doubleType() const { return DoubleTy; }
  TypeId boolType() const { return BoolTy; }
  TypeId stringType() const { return StringTy; }

  /// The pseudo-type of the `null` literal, implicitly convertible to every
  /// reference type (classes, interfaces, string, Object).
  TypeId nullType() const { return NullTy; }

  /// True for class/interface types (including Object and string), the
  /// targets a `null` may convert to.
  bool isReferenceType(TypeId T) const {
    TypeKind K = type(T).Kind;
    return K == TypeKind::Class || K == TypeKind::Interface;
  }

  /// True for the types installed by the constructor (object, void, the
  /// primitives, string, and the null pseudo-type).
  bool isBuiltinType(TypeId T) const { return T >= 0 && T <= NullTy; }

  /// The qualified name "Ns.Sub.Name" (no namespace prefix for the root).
  std::string qualifiedName(TypeId T) const;

  /// Looks up a type by qualified name; InvalidId if absent.
  TypeId findType(const std::string &QualifiedName) const;

  /// Looks up a declared (not inherited) field of \p T by name.
  FieldId findDeclaredField(TypeId T, const std::string &Name) const;

  /// Looks up a field of \p T by name, searching base classes.
  FieldId findField(TypeId T, const std::string &Name) const;

  /// All methods named \p Name declared on \p T or a base class.
  std::vector<MethodId> findMethods(TypeId T, const std::string &Name) const;

  /// All fields visible on \p T: declared plus inherited (base-class fields
  /// shadowed by a same-named derived field are excluded).
  std::vector<FieldId> visibleFields(TypeId T) const;

  /// All methods visible on \p T: declared plus inherited (an inherited
  /// method is excluded if the derived type declares one with the same name
  /// and parameter types — an override).
  std::vector<MethodId> visibleMethods(TypeId T) const;

  //===--------------------------------------------------------------------===
  // Relations
  //===--------------------------------------------------------------------===

  bool isPrimitive(TypeId T) const {
    return type(T).Kind == TypeKind::Primitive;
  }

  /// Primitive *or string*: the common-namespace ranking term ignores these
  /// (§4.1, "Primitive types, including string, are ignored").
  bool isPrimitiveLike(TypeId T) const {
    return isPrimitive(T) || T == StringTy;
  }

  bool isNumeric(TypeId T) const;

  /// True if a value of type \p From may be used where \p To is expected
  /// (identity, subclassing, interface implementation, primitive widening,
  /// boxing to Object).
  bool implicitlyConvertible(TypeId From, TypeId To) const;

  /// The paper's type distance td(From, To): number of supertype steps from
  /// \p From up to \p To, or nullopt when no implicit conversion exists.
  /// Results are memoized; the model must not be mutated after the first
  /// query (asserted in debug builds via a revision counter).
  std::optional<int> typeDistance(TypeId From, TypeId To) const;

  /// Distance between two operand types of a binary operator: the paper
  /// treats the operator as a method whose two parameters both have the more
  /// general type, so this is td(A, B) if defined, otherwise td(B, A),
  /// otherwise nullopt.
  std::optional<int> operandDistance(TypeId A, TypeId B) const;

  /// True if `<` / `>=` between values of types \p A and \p B type-checks:
  /// both numeric (or char), or the same enum, or convertible with the more
  /// general type flagged comparable.
  bool comparable(TypeId A, TypeId B) const;

  /// True if a value of type \p ValueTy may be assigned into a location of
  /// type \p TargetTy.
  bool assignable(TypeId TargetTy, TypeId ValueTy) const;

  /// Eagerly computes the ancestor-distance cache of every type. After this
  /// (and absent further model mutation) typeDistance, operandDistance,
  /// implicitlyConvertible, comparable, and assignable are pure reads and
  /// safe to call from concurrent threads. Invoked by
  /// CompletionIndexes::freeze(); idempotent.
  void warmRelationCaches() const;

  /// Compiles the lazy ancestor-distance maps into a dense TypeId×TypeId
  /// int16 matrix (sentinel -1 = no implicit conversion), after which
  /// typeDistance / implicitlyConvertible / operandDistance are single
  /// array reads with no hashing and no pointer chasing. Skipped (returns
  /// false) when numTypes()² entries would exceed \p MaxBytes — the lazy
  /// hash-map path then stays in effect, which is still lock-free after
  /// warmRelationCaches(). Idempotent; the model must not be mutated
  /// afterwards (asserted by the mutators).
  bool freezeDenseDistances(size_t MaxBytes) const;
  bool denseDistancesFrozen() const { return DenseN != 0; }

  /// The frozen dense distance matrix as flat row-major storage
  /// (numTypes()² int16 cells, sentinel -1 = no conversion); empty before
  /// freezeDenseDistances(). Snapshot-writer access.
  Span<const int16_t> denseDistanceTable() const {
    return Span<const int16_t>(DistData, DenseN * DenseN);
  }

  /// Installs an externally owned dense distance matrix (the snapshot
  /// loader's zero-copy path: \p Table points into a read-only file
  /// mapping whose lifetime \p KeepAlive pins). The model must already
  /// hold exactly \p N types, built from the same source the table was
  /// computed over — the caller validates this via the snapshot's content
  /// hashes. Equivalent to freezeDenseDistances() without the O(N²) BFS:
  /// afterwards denseDistancesFrozen() is true and mutation asserts.
  void adoptDenseDistances(const int16_t *Table, size_t N,
                           std::shared_ptr<const void> KeepAlive) const;

  /// The declared immediate supertypes of \p T used by td: base class and
  /// interfaces for classes/structs, widening target (or Object) for
  /// primitives, Object for enums/interfaces without bases.
  std::vector<TypeId> immediateSupertypes(TypeId T) const;

  /// Namespace segments of the namespace containing \p T.
  const std::vector<std::string> &namespaceSegmentsOf(TypeId T) const {
    return nspace(type(T).Namespace).Segments;
  }

  /// The number of parameters in the *call signature* of \p M: declared
  /// parameters plus one receiver slot for instance methods.
  size_t numCallParams(MethodId M) const {
    const MethodInfo &MI = method(M);
    return MI.Params.size() + (MI.IsStatic ? 0 : 1);
  }

  /// Type of call-signature parameter \p I of \p M (parameter 0 of an
  /// instance method is the receiver, typed as the owner).
  TypeId callParamType(MethodId M, size_t I) const {
    const MethodInfo &MI = method(M);
    if (!MI.IsStatic) {
      if (I == 0)
        return MI.Owner;
      return MI.Params[I - 1].Type;
    }
    return MI.Params[I].Type;
  }

private:
  /// Distances from a type to each of its (transitive) supertypes, computed
  /// by BFS over immediateSupertypes and cached. This is the legacy lazy
  /// path; after freezeDenseDistances() the relation queries read the dense
  /// matrix instead (the maps are kept as the equivalence oracle). In an
  /// overlay the cache covers overlay types only (indexed T - NumBaseTypes);
  /// base types delegate to the base layer's warmed cache.
  const std::unordered_map<TypeId, int> &ancestorDistances(TypeId T) const;

  /// Mutable access to an overlay-layer (or monolithic) TypeInfo; asserts
  /// the target is not a base-layer entity.
  TypeInfo &mutableType(TypeId T) {
    assert(static_cast<size_t>(T) >= NumBaseTypes &&
           "overlay must not mutate base-layer types");
    return Types[T - NumBaseTypes];
  }

  /// Sentinel in DistMatrix for "no implicit conversion".
  static constexpr int16_t NoConversion = -1;

  /// Dense cell td(From, To), or NoConversion. Only valid when DenseN != 0.
  int16_t denseDistance(TypeId From, TypeId To) const {
    return DistData[static_cast<size_t>(From) * DenseN +
                    static_cast<size_t>(To)];
  }

  /// The frozen base layer (null for a monolithic model) and the entity
  /// counts it held when this overlay attached. Local vectors below store
  /// only overlay-layer entities; id I lives at index I - NumBaseX.
  std::shared_ptr<const TypeSystem> Base;
  size_t NumBaseTypes = 0;
  size_t NumBaseFields = 0;
  size_t NumBaseMethods = 0;
  size_t NumBaseNamespaces = 0;

  std::vector<NamespaceInfo> Namespaces;
  std::vector<TypeInfo> Types;
  std::vector<FieldInfo> Fields;
  std::vector<MethodInfo> Methods;
  /// Name maps hold *absolute* ids, overlay-layer entities only; lookups
  /// consult the base maps first.
  std::unordered_map<std::string, NamespaceId> NamespaceByName;
  std::unordered_map<std::string, TypeId> TypeByName;
  mutable std::vector<std::unordered_map<TypeId, int>> AncestorCache;
  mutable std::vector<bool> AncestorCacheValid;
  /// Row-major numTypes()×numTypes() distance matrix (see
  /// freezeDenseDistances); empty until frozen. Readers go through
  /// DistData, which either aliases this vector (in-process freeze) or an
  /// adopted snapshot mapping pinned by DenseKeepAlive.
  mutable std::vector<int16_t> DistMatrix;
  mutable const int16_t *DistData = nullptr;
  mutable size_t DenseN = 0;
  mutable std::shared_ptr<const void> DenseKeepAlive;

  TypeId ObjectTy, VoidTy, IntTy, LongTy, ShortTy, ByteTy, CharTy, FloatTy,
      DoubleTy, BoolTy, StringTy, NullTy;
};

} // namespace petal

#endif // PETAL_MODEL_TYPESYSTEM_H
