//===- model/Ids.h - Dense entity identifiers -------------------*- C++ -*-===//
//
// Part of the petal project, an open-source reproduction of "Type-Directed
// Completion of Partial Expressions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense integer ids for framework entities. All of petal's indexes and the
/// abstract-type-inference tables key on these instead of pointers so that
/// iteration order (and therefore every experiment) is deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef PETAL_MODEL_IDS_H
#define PETAL_MODEL_IDS_H

#include <cstdint>

namespace petal {

using TypeId = int32_t;
using MethodId = int32_t;
using FieldId = int32_t;
using NamespaceId = int32_t;

/// Sentinel for "no entity".
inline constexpr int32_t InvalidId = -1;

/// True if \p Id refers to an actual entity.
inline bool isValidId(int32_t Id) { return Id >= 0; }

} // namespace petal

#endif // PETAL_MODEL_IDS_H
